GO ?= go

.PHONY: all build vet test race bench bench-scanner bench-world bench-cluster bench-tga bench-grid bench-serve bench-daemon bench-wire cover experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The telemetry registry, tracer, scanner, and experiment grids are
# exercised concurrently; the race detector is the tier-1 gate for them.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate the committed scanner hot-path baseline (see README.md for
# the JSON format). Fails if the batched path drops below 2x the legacy
# per-packet dispatch shape.
bench-scanner:
	$(GO) test -run '^TestWriteScannerBenchBaseline$$' -count=1 -v \
		-scanner-bench-out BENCH_scanner.json .

# Regenerate the committed world reply-path baseline: the arena-batched
# flat-LPM world vs the legacy per-packet trie-routed shape, plus the
# SizeScale × workers scaling grid through the cluster path. Fails if the
# batched path drops below 3x legacy, a batched row exceeds 125 allocs/op,
# or a 10^8-host world takes over 2s to fully materialize.
bench-world:
	$(GO) test -run '^TestWriteWorldBenchBaseline$$' -count=1 -v \
		-world-bench-out BENCH_world.json .

# Regenerate the committed cluster scaling baseline: aggregate throughput
# for 1→8 workers, each behind its own rate-capped link. Fails if 4
# workers fall below 2x one worker's throughput.
bench-cluster:
	$(GO) test -run '^TestWriteClusterBenchBaseline$$' -count=1 -v \
		-cluster-bench-out BENCH_cluster.json .

# Regenerate the committed TGA driver baseline: the offline-generator ×
# protocol grid, serial-and-uncached vs pipelined-and-cached. Fails if
# the optimized driver falls below 1.5x the serial grid.
bench-tga:
	$(GO) test -run '^TestWriteTGABenchBaseline$$' -count=1 -v \
		-tga-bench-out BENCH_tga.json .

# Regenerate the committed grid engine baseline: the ICMP evaluation
# suite executed per-RQ (no dedup) vs through the shared cell-grid
# engine, plus a warm-store resume pass. Fails if the engine stops
# deduping cells or the wall-clock win falls below 1.05x the per-RQ
# drivers (the low floor reflects the batched world path making the
# deduped scans themselves cheap).
bench-grid:
	$(GO) test -run '^TestWriteGridBenchBaseline$$' -count=1 -v \
		-grid-bench-out BENCH_grid.json .

# Regenerate the committed serve-daemon load baseline: client-observed
# lookup latency quantiles, bulk lookup throughput, and snapshot open
# time over a real build. Fails if lookup p99 exceeds 50ms or bulk
# throughput drops below 10k addresses/sec.
bench-serve:
	$(GO) test -run '^TestWriteServeBenchBaseline$$' -count=1 -v \
		-serve-bench-out BENCH_serve.json .

# Regenerate the committed longitudinal-daemon baseline: epoch cycle
# time, probes saved by volatility-prioritized scheduling vs a full
# per-epoch re-scan, stale-detection recall for both, and the
# publish-to-serve generation swap cost. Fails if prioritization stops
# saving probes or its recall falls below the full re-scan's.
bench-daemon:
	$(GO) test -run '^TestWriteDaemonBenchBaseline$$' -count=1 -v \
		-daemon-bench-out BENCH_daemon.json .

# Regenerate the committed wire-layer baseline: the canonical arena link
# bare vs behind an empty chain and each middleware. Fails if composing
# an empty chain costs more than 5% of bare-link throughput (the
# zero-overhead guarantee), measured in the same run.
bench-wire:
	$(GO) test -run '^TestWriteWireBenchBaseline$$' -count=1 -v \
		-wire-bench-out BENCH_wire.json .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# A small end-to-end smoke run: the quickstart with a JSONL trace.
smoke:
	$(GO) run ./examples/quickstart -trace /tmp/seedscan-trace.jsonl
	@head -3 /tmp/seedscan-trace.jsonl

experiments:
	$(GO) run ./cmd/experiments

clean:
	rm -f cover.out
