// Command experiments reproduces the paper's evaluation: every table and
// figure, rendered as text. Individual experiments are selectable; sizes
// are scaled-down defaults that preserve the paper's shape.
//
// Usage:
//
//	experiments [-budget N] [-ases N] [-scale F] [-seed N] [-run LIST]
//	            [-only LIST] [-resume DIR] [-list-cells] [-gens SET]
//
// -gens picks the generator sweep: "paper" (default, the eight studied
// TGAs), "extended" (adds AddrMiner and 6Prob), or an explicit
// comma-separated list.
//
// where LIST is a comma-separated subset of:
// table1,table3,table4,table5,table6,fig1,fig2,fig3,fig4,fig5,fig6,fig7,
// raw,rq5,rq5time,raw912,ablation (default: all except raw912 and
// ablation, which run only when named). rq5time is the longitudinal
// metrics-over-time table: a multi-epoch daemon run reporting seed decay,
// TGA hit persistence, and alias-set drift. -only is -run under its grid-era name and takes
// precedence. -resume DIR checkpoints every completed grid cell to
// DIR/cells.jsonl and resumes from it on restart; -list-cells prints the
// deduplicated cell plan for the selection and exits without scanning.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"seedscan/internal/experiment"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga/all"
)

func main() {
	budget := flag.Int("budget", 20000, "per-TGA generation budget")
	ases := flag.Int("ases", 300, "number of ASes in the simulated Internet")
	scale := flag.Float64("scale", 1, "seed collection scale factor")
	seed := flag.Uint64("seed", 42, "world seed")
	runList := flag.String("run", "all", "comma-separated experiments to run")
	protosFlag := flag.String("protos", "icmp", "protocols for the TGA sweeps (comma-separated, or 'all')")
	gensFlag := flag.String("gens", "paper", "generators to sweep: 'paper' (the study set), 'extended' (adds AddrMiner and 6Prob), or a comma-separated list")
	trace := flag.String("trace", "", "write a JSONL telemetry event log to this file")
	metrics := flag.Bool("metrics", false, "print final metric values on exit")
	clusterWorkers := flag.Int("cluster-workers", 0, "fan scanning out across N in-process cluster workers (results unchanged)")
	only := flag.String("only", "", "comma-separated specs to run (overrides -run)")
	resumeDir := flag.String("resume", "", "checkpoint completed grid cells under this directory and resume from them")
	listCells := flag.Bool("list-cells", false, "print the deduplicated cell plan for the selection and exit")
	flag.Parse()

	if *only != "" {
		*runList = *only
	}
	want := map[string]bool{}
	for _, r := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(r)] = true
	}
	sel := func(name string) bool {
		if name == "raw912" || name == "ablation" {
			return want[name] // opt-in only: heavy extras
		}
		return want["all"] || want[name]
	}

	var protos []proto.Protocol
	if *protosFlag == "all" {
		protos = proto.All[:]
	} else {
		for _, s := range strings.Split(*protosFlag, ",") {
			p, err := proto.Parse(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			protos = append(protos, p)
		}
	}

	gens := all.Names
	switch *gensFlag {
	case "paper":
	case "extended":
		gens = all.ExtendedNames
	default:
		gens = nil
		for _, s := range strings.Split(*gensFlag, ",") {
			name := strings.TrimSpace(s)
			if _, err := all.New(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			gens = append(gens, name)
		}
	}

	start := time.Now()
	fmt.Printf("# seedscan experiments — budget=%d ases=%d scale=%g seed=%d gens=%s\n\n",
		*budget, *ases, *scale, *seed, *gensFlag)

	var sinks []telemetry.Sink
	if *trace != "" {
		s, err := telemetry.CreateJSONLFile(*trace)
		check(err)
		sinks = append(sinks, s)
	}
	tr := telemetry.NewTracer(nil, sinks...)
	closeTrace = func() { tr.Close() }
	defer tr.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var store grid.Store
	if *resumeDir != "" {
		check(os.MkdirAll(*resumeDir, 0o755))
		js, err := grid.OpenJSONL(filepath.Join(*resumeDir, "cells.jsonl"))
		check(err)
		defer js.Close()
		store = js
	}

	env := experiment.NewEnv(experiment.EnvConfig{
		WorldSeed: *seed, NumASes: *ases, CollectScale: *scale, Budget: *budget,
		Telemetry: tr, ClusterWorkers: *clusterWorkers, GridStore: store,
	})

	if *listCells {
		printCellPlan(env, sel, protos, gens, *budget, store)
		return
	}
	fmt.Printf("world: %d regions, %d ASes, %d ground-truth aliased prefixes (%d listed offline)\n",
		len(env.World.Regions()), env.World.ASDB().Len(),
		len(env.World.AliasedPrefixes()), env.Offline.Len())
	fmt.Printf("seeds: %s unique across %d sources\n\n",
		comma(env.Full.Len()), len(env.Sources))

	if sel("table1") {
		fmt.Println(experiment.RenderPriorWork())
	}
	if sel("table3") {
		sum := env.DatasetSummary()
		fmt.Println(sum.Render())
		fmt.Println(sum.RenderWithPaper())
	}
	if sel("table7") {
		fmt.Println(experiment.RenderTable7())
	}
	if sel("fig1") {
		ips, ases := env.SourceOverlaps(false)
		fmt.Println(experiment.RenderOverlap("Figure 1a: seed source overlap by IP", ips))
		fmt.Println(experiment.RenderOverlap("Figure 1b: seed source overlap by AS", ases))
	}
	if sel("fig2") {
		ips, ases := env.SourceOverlaps(true)
		fmt.Println(experiment.RenderOverlap("Figure 2a: responsive overlap by IP", ips))
		fmt.Println(experiment.RenderOverlap("Figure 2b: responsive overlap by AS", ases))
	}
	if sel("fig3") {
		res, err := env.RunRQ1aCtx(ctx, protos, gens, *budget)
		check(err)
		fmt.Println(res.Render())
		fmt.Println(res.RenderFigure())
	}
	if sel("table4") {
		res, err := env.RunTable4Ctx(ctx, gens, *budget)
		check(err)
		fmt.Println(res.Render())
	}
	if sel("fig4") {
		res, err := env.RunRQ1bCtx(ctx, protos, gens, *budget)
		check(err)
		fmt.Println(res.Render())
	}
	if sel("fig5") {
		res, err := env.RunRQ2Ctx(ctx, protos, gens, *budget)
		check(err)
		fmt.Println(res.Render())
		fmt.Println(res.RenderFigure())
	}
	var rq3 *experiment.RQ3Result
	if sel("table5") || sel("table6") || sel("raw") {
		var err error
		rq3, err = env.RunRQ3Ctx(ctx, protos, gens, seeds.AllSources, *budget/4)
		check(err)
	}
	if sel("table5") {
		res, err := env.RunTable5Ctx(ctx, rq3)
		check(err)
		fmt.Println(res.Render())
	}
	if sel("table6") {
		fmt.Println(env.Table6(rq3, 3).Render())
	}
	if sel("raw") {
		for _, p := range protos {
			fmt.Println(rq3.RenderRaw(p))
		}
	}
	if sel("fig6") {
		res, err := env.RunRQ4Ctx(ctx, protos, gens, *budget)
		check(err)
		fmt.Println(res.Render())
		for _, p := range protos {
			fmt.Println(res.RenderCumulativeFigure(p))
		}
	}
	if sel("fig7") {
		res, err := env.RunCrossPortCtx(ctx, gens, *budget/4)
		check(err)
		fmt.Println(res.Render())
	}
	if sel("rq5") {
		recs, err := env.RunRecommendationsCtx(ctx, gens, *budget)
		check(err)
		fmt.Println(experiment.RenderRecommendations(recs))
	}
	if sel("rq5time") {
		res, err := env.RunRQ5TimeCtx(ctx, gens, *budget, 0)
		check(err)
		fmt.Println(res.Render())
	}
	if sel("raw912") {
		grid, err := env.RunRawGridCtx(ctx, protos, gens, nil, *budget)
		check(err)
		for _, p := range protos {
			fmt.Println(grid.Render(p))
		}
	}
	if sel("ablation") {
		targets := env.AllActiveSeeds().Slice()
		if len(targets) > 5000 {
			targets = targets[:5000]
		}
		fmt.Printf("Ablation: packet-path vs oracle agreement on %d targets: %.2f%%\n",
			len(targets), 100*env.ScanAgreement(targets, proto.ICMP))
		sizes := []int{256, 1024, 4096, *budget}
		hits, err := env.BatchSizeAblation("DET", proto.ICMP, *budget, sizes)
		check(err)
		fmt.Println("Ablation: DET hits by feedback batch size:")
		for _, bs := range sizes {
			fmt.Printf("  batch %5d -> %d hits\n", bs, hits[bs])
		}
		fmt.Println()
	}

	fmt.Printf("done in %v; %s probe packets sent (virtual scan time %.1fs at 10k pps)\n",
		time.Since(start).Round(time.Millisecond),
		comma(int(env.Scanner.Stats().PacketsSent.Load())),
		env.Scanner.VirtualElapsed())
	if *metrics {
		fmt.Print(tr.Registry().Snapshot().Render())
	}
}

// selectedSpecs compiles the selected experiments into their grid specs,
// mirroring the budgets the run loop uses (RQ3 and Figure 7 run at a
// quarter budget; RQ5's evidence runs are single-protocol).
func selectedSpecs(env *experiment.Env, sel func(string) bool,
	protos []proto.Protocol, gens []string, budget int) []grid.Spec {
	var specs []grid.Spec
	if sel("fig3") {
		specs = append(specs, env.SpecRQ1a(protos, gens, budget))
	}
	if sel("table4") {
		specs = append(specs, env.SpecTable4(gens, budget))
	}
	if sel("fig4") {
		specs = append(specs, env.SpecRQ1b(protos, gens, budget))
	}
	if sel("fig5") {
		specs = append(specs, env.SpecRQ2(protos, gens, budget))
	}
	if sel("table5") || sel("table6") || sel("raw") {
		specs = append(specs, env.SpecRQ3(protos, gens, nil, budget/4))
	}
	if sel("table5") {
		specs = append(specs, env.SpecTable5(gens, len(seeds.AllSources), budget/4))
	}
	if sel("fig6") {
		specs = append(specs, env.SpecRQ4(protos, gens, budget))
	}
	if sel("fig7") {
		specs = append(specs, env.SpecCrossPort(gens, budget/4))
	}
	if sel("rq5") {
		icmp := []proto.Protocol{proto.ICMP}
		specs = append(specs,
			env.SpecRQ1a(icmp, gens, budget),
			env.SpecRQ1b(icmp, gens, budget),
			env.SpecRQ2([]proto.Protocol{proto.TCP443}, gens, budget),
			env.SpecRQ4(icmp, gens, budget))
	}
	if sel("rq5time") {
		specs = append(specs, env.SpecRQ5Time(gens, budget))
	}
	if sel("raw912") {
		specs = append(specs, env.SpecRawGrid(protos, gens, nil, budget))
	}
	if sel("ablation") {
		specs = append(specs, env.SpecBatchAblation("DET", proto.ICMP, budget, []int{256, 1024, 4096, budget}))
	}
	return specs
}

// printCellPlan renders the deduplicated worklist the selection would
// execute: one line per unique cell with the specs that request it, plus
// how many are already checkpointed in the resume store.
func printCellPlan(env *experiment.Env, sel func(string) bool,
	protos []proto.Protocol, gens []string, budget int, store grid.Store) {
	specs := selectedSpecs(env, sel, protos, gens, budget)
	plan := grid.Plan(specs...)
	planned := 0
	for _, s := range specs {
		planned += len(s.Cells)
	}
	fp := env.Fingerprint()
	resumed := 0
	for _, pc := range plan {
		marker := " "
		if store != nil {
			if _, ok := store.Get(pc.Cell.Key(fp)); ok {
				marker = "*"
				resumed++
			}
		}
		fmt.Printf("%s %-52s <- %s\n", marker, pc.Cell.ID(), strings.Join(pc.Specs, ", "))
	}
	fmt.Printf("\n%d cells planned across %d specs, %d unique after dedup", planned, len(specs), len(plan))
	if store != nil {
		fmt.Printf(", %d already checkpointed (*)", resumed)
	}
	fmt.Printf("\nfingerprint: %s\n", fp)
}

// closeTrace flushes the telemetry trace before an error exit (os.Exit
// skips deferred calls).
var closeTrace = func() {}

func check(err error) {
	if err != nil {
		closeTrace()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func comma(n int) string {
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return strings.Join(append([]string{s}, parts...), ",")
}
