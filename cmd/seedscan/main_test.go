package main

import (
	"path/filepath"
	"testing"
)

// The command functions run end to end against small environments; these
// tests cover argument validation and the success paths (output goes to
// stdout, which `go test` swallows).

var smallEnv = []string{"-ases", "50", "-scale", "0.15"}

func TestCmdWorld(t *testing.T) {
	if err := cmdWorld([]string{"-ases", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCollect(t *testing.T) {
	args := append([]string{"-source", "Scamper", "-show", "1"}, smallEnv...)
	if err := cmdCollect(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCollectUnknownSource(t *testing.T) {
	if err := cmdCollect(append([]string{"-source", "NotASource"}, smallEnv...)); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestCmdCollectExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.txt")
	args := append([]string{"-source", "Umbrella", "-o", out}, smallEnv...)
	if err := cmdCollect(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRun(t *testing.T) {
	args := append([]string{"-tga", "6Tree", "-proto", "icmp", "-budget", "1500", "-seeds", "allactive"}, smallEnv...)
	if err := cmdRun(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunBadArgs(t *testing.T) {
	if err := cmdRun(append([]string{"-proto", "gopher"}, smallEnv...)); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if err := cmdRun(append([]string{"-seeds", "everything"}, smallEnv...)); err == nil {
		t.Fatal("bad treatment accepted")
	}
	if err := cmdRun(append([]string{"-tga", "9Tree", "-budget", "100"}, smallEnv...)); err == nil {
		t.Fatal("bad generator accepted")
	}
}

func TestCmdScan(t *testing.T) {
	args := append([]string{"-source", "Umbrella", "-proto", "tcp443"}, smallEnv...)
	if err := cmdScan(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDealias(t *testing.T) {
	args := append([]string{"-source", "AddrMiner", "-mode", "joint"}, smallEnv...)
	if err := cmdDealias(args); err != nil {
		t.Fatal(err)
	}
	if err := cmdDealias(append([]string{"-mode", "sideways"}, smallEnv...)); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestCmdHitlist(t *testing.T) {
	dir := t.TempDir()
	args := append([]string{
		"-o", filepath.Join(dir, "responsive.txt"),
		"-aliases", filepath.Join(dir, "aliases.txt"),
	}, smallEnv...)
	if err := cmdHitlist(args); err != nil {
		t.Fatal(err)
	}
}

func TestParseSource(t *testing.T) {
	if _, err := parseSource("ipv6 hitlist"); err != nil {
		t.Fatal("case-insensitive match failed")
	}
	if _, err := parseSource(""); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestCmdResolve(t *testing.T) {
	out := filepath.Join(t.TempDir(), "resolved.txt")
	if err := cmdResolve([]string{"-ases", "40", "-n", "2000", "-rate", "0.2", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdResolve([]string{"-ases", "40", "-rate", "0"}); err == nil {
		t.Fatal("zero rate accepted")
	}
}
