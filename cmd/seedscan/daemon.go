package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"seedscan/internal/experiment/grid"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/longitudinal"
	"seedscan/internal/proto"
)

// cmdDaemon runs the longitudinal scanning service: it re-scans a budgeted,
// volatility-prioritized slice of the seed universe as the world's epoch
// clock advances, confirms stale seeds with a cool-down, and publishes each
// epoch's believed-alive view as a new hitlistdb generation — the producer
// half of a live pipeline whose consumer is `seedscan serve -watch`.
//
// Epoch scans are checkpointed as grid cells under -state, so a killed
// daemon re-run with the same flags replays completed epochs byte-identically
// and resumes scanning where it died, without re-publishing generations the
// store already has.
func cmdDaemon(args []string) error {
	fs := flag.NewFlagSet("daemon", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	trace, metrics := teleFlags(fs)
	protoName := fs.String("proto", "icmp", "probing protocol: icmp, tcp80, tcp443, udp53")
	epochs := fs.Int("epochs", 5, "consecutive epochs to run")
	budget := fs.Int("budget", 0, "probe budget per epoch (0 = unlimited)")
	staleAfter := fs.Int("stale-after", longitudinal.DefaultStaleAfter, "consecutive down observations confirming an address stale")
	stableEvery := fs.Int("stable-every", longitudinal.DefaultStableEvery, "stable-host refresh period in epochs (1 = full re-scan)")
	alpha := fs.Float64("alpha", longitudinal.DefaultAlpha, "volatility EWMA weight of the newest observation")
	state := fs.String("state", "daemon-state", "checkpoint directory; re-running resumes from it")
	publish := fs.String("publish", "hitlistdb", "hitlistdb store directory to publish each epoch into (empty disables publishing)")
	keep := fs.Int("keep", 3, "published generation files to retain on disk")
	wo := wireFlags(fs)
	fs.Parse(args)

	p, err := proto.Parse(*protoName)
	if err != nil {
		return err
	}
	if *epochs <= 0 {
		return fmt.Errorf("daemon: -epochs must be positive, got %d", *epochs)
	}
	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	ctx, stop := signalContext()
	defer stop()

	wc, err := wo.build(*seed, tr.Registry())
	if err != nil {
		return err
	}
	// Fault-injecting chains change scan outcomes but not the environment
	// fingerprint, so -state checkpoints written under different -wire-*
	// flags would replay stale cells; point faulted runs at a fresh -state.
	env := buildEnvWire(*seed, *ases, *scale, 0, tr, wc.mws)

	if err := os.MkdirAll(*state, 0o755); err != nil {
		return err
	}
	store, err := grid.OpenJSONL(filepath.Join(*state, "cells.jsonl"))
	if err != nil {
		return err
	}
	defer store.Close()

	var pub *hitlistdb.Store
	if *publish != "" {
		pub, err = hitlistdb.OpenStore(*publish,
			hitlistdb.KeepGenerations(*keep),
			hitlistdb.StoreTelemetry(tr.Registry()))
		if err != nil {
			return err
		}
	}

	d, err := longitudinal.New(longitudinal.Config{
		World:           env.World,
		Prober:          env.Prober,
		Corpus:          env.Full.SortedSlice(),
		Proto:           p,
		Epochs:          *epochs,
		Budget:          *budget,
		StaleAfter:      *staleAfter,
		StableEvery:     *stableEvery,
		Alpha:           *alpha,
		Fingerprint:     env.Fingerprint(),
		Store:           store,
		Publish:         pub,
		AliasedPrefixes: env.Offline.Prefixes(),
		Telemetry:       tr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("daemon: %d-address universe, %d epochs, %s, stale-after %d, stable-every %d (resumed %d cells from %s)\n",
		len(d.Universe()), *epochs, p, *staleAfter, *stableEvery, store.Len(), *state)

	reps, runErr := d.Run(ctx)
	totalProbed, totalSaved := 0, 0
	for _, r := range reps {
		totalProbed += r.Probed
		totalSaved += r.Saved
		fmt.Printf("epoch %d: probed %d (new %d, pending %d, volatile %d, refresh %d; saved %d) hits %d flaps %d stale %d alive %d",
			r.Epoch, r.Probed, r.New, r.PendingStale, r.Volatile, r.StableRefresh, r.Saved,
			r.Hits, r.Flaps, r.ConfirmedStale, r.Alive)
		if r.Generation > 0 {
			fmt.Printf(" gen %d", r.Generation)
		}
		fmt.Printf(" [%s]\n", r.Duration.Round(time.Millisecond))
	}
	if runErr != nil {
		return fmt.Errorf("daemon: %w (completed %d epochs; re-run to resume)", runErr, len(reps))
	}
	live := d.LiveSeeds()
	fmt.Printf("done: %d probes sent, %d saved vs full re-scan; %d seeds live, %d confirmed stale\n",
		totalProbed, totalSaved, len(live), len(d.Tracker().ConfirmedStale()))
	wc.summary()
	return nil
}
