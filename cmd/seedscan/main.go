// Command seedscan is the operator CLI for the seedscan library: it builds
// a simulated IPv6 Internet, collects seed datasets, preprocesses them,
// runs Target Generation Algorithms, scans, and dealiases — the same
// pipeline the experiments use, exposed piecewise.
//
// Subcommands:
//
//	world     print the simulated Internet's composition
//	collect   collect one seed source and print its statistics
//	run       run one TGA end-to-end (generate, scan, dealias, measure)
//	scan      scan a dataset's addresses on one protocol
//	dealias   split a dataset into clean and aliased addresses
//	build-db  build a hitlist and publish it into a hitlistdb store
//	serve     answer hitlist queries over HTTP from a hitlistdb store
//	daemon    run the longitudinal epoch-driven scanning service
//	worker    serve shards to a cluster coordinator over TCP
//
// scan can also coordinate a sharded cluster scan: -cluster-workers N
// fans out across N in-process workers, -cluster host:port,... drives
// remote `seedscan worker` processes over the wire protocol. Either way
// the merged output is byte-identical to the single-scanner scan.
//
// Every subcommand accepts -seed/-ases/-scale to shape the environment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"

	"seedscan/internal/alias"
	"seedscan/internal/cluster"
	"seedscan/internal/experiment"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/hitlist"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga/all"
	"seedscan/internal/wire"
	"seedscan/internal/world"
	"seedscan/internal/zdns"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "world":
		err = cmdWorld(args)
	case "collect":
		err = cmdCollect(args)
	case "run":
		err = cmdRun(args)
	case "scan":
		err = cmdScan(args)
	case "dealias":
		err = cmdDealias(args)
	case "hitlist":
		err = cmdHitlist(args)
	case "build-db":
		err = cmdBuildDB(args)
	case "serve":
		err = cmdServe(args)
	case "daemon":
		err = cmdDaemon(args)
	case "resolve":
		err = cmdResolve(args)
	case "worker":
		err = cmdWorker(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "seedscan: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedscan:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: seedscan <command> [flags]

commands:
  world     print the simulated Internet's composition
  collect   collect one seed source and print its statistics
  run       run one TGA end-to-end (generate, scan, dealias, measure)
  scan      scan a dataset's addresses on one protocol
  dealias   split a dataset into clean and aliased addresses
  hitlist   run the full hitlist-service pipeline and publish artifacts
  build-db  build a hitlist and publish it into a hitlistdb store directory
  serve     answer hitlist queries over HTTP from a hitlistdb store
  daemon    run the longitudinal epoch-driven scanning service
  resolve   simulate a ZDNS AAAA-resolution campaign over synthetic domains
  worker    serve shards to a cluster coordinator over TCP

run 'seedscan <command> -h' for per-command flags`)
}

// envFlags wires the shared environment flags into fs.
func envFlags(fs *flag.FlagSet) (seed *uint64, ases *int, scale *float64) {
	seed = fs.Uint64("seed", 42, "world seed")
	ases = fs.Int("ases", 200, "number of ASes")
	scale = fs.Float64("scale", 0.5, "seed collection scale")
	return
}

func buildEnv(seed uint64, ases int, scale float64, budget int) *experiment.Env {
	return buildEnvTele(seed, ases, scale, budget, nil)
}

func buildEnvTele(seed uint64, ases int, scale float64, budget int, tr *telemetry.Tracer) *experiment.Env {
	return buildEnvWire(seed, ases, scale, budget, tr, nil)
}

// buildEnvWire is buildEnvTele plus a wire middleware chain composed onto
// the environment's link (see the -wire-* flags).
func buildEnvWire(seed uint64, ases int, scale float64, budget int, tr *telemetry.Tracer, chain []wire.Middleware) *experiment.Env {
	return experiment.NewEnv(experiment.EnvConfig{
		WorldSeed: seed, NumASes: ases, CollectScale: scale, Budget: budget,
		Telemetry: tr, Chain: chain,
	})
}

// teleFlags wires the shared telemetry flags into fs.
func teleFlags(fs *flag.FlagSet) (trace *string, metrics *bool) {
	trace = fs.String("trace", "", "write a JSONL telemetry event log to this file")
	metrics = fs.Bool("metrics", false, "print final metric values on exit")
	return
}

// newTracer builds a tracer for the parsed telemetry flags. The returned
// finish func closes the trace (flushing the JSONL file and appending the
// final metrics snapshot) and, with -metrics, prints every counter, gauge,
// and histogram.
func newTracer(trace string, metrics bool) (*telemetry.Tracer, func(), error) {
	var sinks []telemetry.Sink
	if trace != "" {
		s, err := telemetry.CreateJSONLFile(trace)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, s)
	}
	tr := telemetry.NewTracer(nil, sinks...)
	finish := func() {
		tr.Close()
		if metrics {
			fmt.Print(tr.Registry().Snapshot().Render())
		}
	}
	return tr, finish, nil
}

// signalContext returns a context cancelled by Ctrl-C.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func cmdWorld(args []string) error {
	fs := flag.NewFlagSet("world", flag.ExitOnError)
	seed, ases, _ := envFlags(fs)
	fs.Parse(args)

	w := world.New(world.Config{Seed: *seed, NumASes: *ases})
	byClass := map[string]int{}
	aliased := 0
	var hosts float64
	for _, r := range w.Regions() {
		if r.Aliased {
			aliased++
			continue
		}
		byClass[r.Class.String()]++
		hosts += r.ExpectedHosts()
	}
	fmt.Printf("world seed=%d: %d ASes, %d regions (%d aliased), ~%.0f hosts\n",
		*seed, w.ASDB().Len(), len(w.Regions()), aliased, hosts)
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Printf("  %-12s %d regions\n", c, byClass[c])
	}
	byOrg := map[string]int{}
	for _, as := range w.ASDB().All() {
		byOrg[as.Type.String()]++
	}
	orgs := make([]string, 0, len(byOrg))
	for o := range byOrg {
		orgs = append(orgs, o)
	}
	sort.Strings(orgs)
	for _, o := range orgs {
		fmt.Printf("  %-12s %d ASes\n", o, byOrg[o])
	}
	return nil
}

func parseSource(name string) (seeds.Source, error) {
	for _, s := range seeds.AllSources {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown source %q (one of: %v)", name, seeds.AllSources)
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	src := fs.String("source", "IPv6 Hitlist", "seed source name")
	show := fs.Int("show", 5, "sample addresses to print")
	out := fs.String("o", "", "write the dataset to this file (.gz for gzip)")
	fs.Parse(args)

	s, err := parseSource(*src)
	if err != nil {
		return err
	}
	env := buildEnv(*seed, *ases, *scale, 0)
	ds := env.Sources[s]
	fmt.Printf("%s: %d unique addresses, %d ASes\n", ds.Name, ds.Len(), ds.ASCount(env.World.ASDB()))
	aliasedN, activeN := 0, 0
	ds.Addrs.Each(func(a ipaddrAddr) {
		if env.World.IsAliased(a) {
			aliasedN++
		}
		if env.World.ActiveOnAny(a, world.ScanEpoch) {
			activeN++
		}
	})
	fmt.Printf("  aliased: %d (%.1f%%), responsive at scan time: %d (%.1f%%)\n",
		aliasedN, 100*float64(aliasedN)/float64(ds.Len()),
		activeN, 100*float64(activeN)/float64(ds.Len()))
	for i, a := range ds.Addrs.Sorted() {
		if i >= *show {
			break
		}
		fmt.Println(" ", a)
	}
	if *out != "" {
		if err := ds.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %d addresses to %s\n", ds.Len(), *out)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	gen := fs.String("tga", "6Tree", "generator: "+strings.Join(all.ExtendedNames, ", "))
	protoName := fs.String("proto", "icmp", "protocol: icmp, tcp80, tcp443, udp53")
	budget := fs.Int("budget", 20000, "generation budget")
	dataset := fs.String("seeds", "allactive", "seed treatment: full, dealiased, allactive, port")
	dealias := fs.String("dealias", "joint", "dealias mode for -seeds dealiased: none, offline, online, joint, cooldown")
	checkpoint := fs.String("checkpoint", "", "checkpoint the run as a grid cell in this JSONL store (reruns load instead of scanning)")
	trace, metrics := teleFlags(fs)
	fs.Parse(args)

	p, err := proto.Parse(*protoName)
	if err != nil {
		return err
	}
	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	ctx, stop := signalContext()
	defer stop()

	cfg := experiment.EnvConfig{
		WorldSeed: *seed, NumASes: *ases, CollectScale: *scale, Budget: *budget,
		Telemetry: tr,
	}
	if *checkpoint != "" {
		store, err := grid.OpenJSONL(*checkpoint)
		if err != nil {
			return err
		}
		defer store.Close()
		cfg.GridStore = store
	}
	env := experiment.NewEnv(cfg)
	var treatment grid.Treatment
	switch *dataset {
	case "full":
		treatment = experiment.TreatmentFull
	case "dealiased":
		mode, err := alias.ParseMode(*dealias)
		if err != nil {
			return err
		}
		treatment = experiment.TreatmentDealiased(mode)
	case "allactive":
		treatment = experiment.TreatmentAllActive
	case "port":
		treatment = experiment.TreatmentPortActive(p)
	default:
		return fmt.Errorf("unknown seed treatment %q", *dataset)
	}
	spec := env.SpecOneCell(*gen, treatment, p, *budget)
	fmt.Printf("running %s on seed treatment %q, %s, budget %d\n", *gen, treatment, p, *budget)
	rs, err := env.Grid().Run(ctx, spec)
	if err != nil {
		return err
	}
	res := rs.Of(spec.Cells[0])
	fmt.Printf("hits: %d dealiased active addresses in %d ASes; %d aliased discarded\n",
		res.Outcome.Hits, res.Outcome.ASes, res.Outcome.Aliases)
	fmt.Printf("scanner: %d packets sent, %.1fs virtual scan time at 10k pps\n",
		env.Scanner.Stats().PacketsSent.Load(), env.Scanner.VirtualElapsed())
	return nil
}

func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	src := fs.String("source", "IPv6 Hitlist", "seed source to scan")
	protoName := fs.String("proto", "icmp", "protocol")
	clusterAddrs := fs.String("cluster", "", "coordinate over remote workers at these comma-separated host:port addresses")
	clusterN := fs.Int("cluster-workers", 0, "coordinate over this many in-process workers")
	wopts := wireFlags(fs)
	trace, metrics := teleFlags(fs)
	fs.Parse(args)

	p, err := proto.Parse(*protoName)
	if err != nil {
		return err
	}
	s, err := parseSource(*src)
	if err != nil {
		return err
	}
	if *clusterAddrs != "" && !wopts.empty() {
		// Chains wrap a local link; remote workers own theirs. The same
		// flags on each `seedscan worker` give the distributed equivalent.
		return errors.New("scan: -wire-* flags do not reach remote workers; pass them to each seedscan worker instead")
	}
	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	wc, err := wopts.build(*seed, tr.Registry())
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	// The in-process cluster path composes the chain through the pool
	// (cluster.Config.Chain); the single-scanner path composes it onto the
	// environment's link. Either way every probe crosses the same stack.
	var envChain []wire.Middleware
	if *clusterN <= 0 {
		envChain = wc.mws
	}
	env := buildEnvWire(*seed, *ases, *scale, 0, tr, envChain)
	ds := env.Sources[s]
	ccfg := cluster.Config{
		Secret:    env.Cfg.ScanSecret,
		Telemetry: tr.Registry(),
		Chain:     wc.mws,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	}

	var results []scanner.Result
	switch {
	case *clusterAddrs != "":
		var workers []cluster.Worker
		for _, addr := range strings.Split(*clusterAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			rw, err := cluster.DialWorker(addr)
			if err != nil {
				return err
			}
			defer rw.Close()
			workers = append(workers, rw)
		}
		if len(workers) == 0 {
			return errors.New("scan: -cluster lists no worker addresses")
		}
		run, err := cluster.NewCoordinator(ccfg).Run(ctx, workers, ds.Slice(), p)
		if err != nil {
			return err
		}
		printClusterRun(run)
		results = run.Results
	case *clusterN > 0:
		run, err := cluster.NewLocalPool(*clusterN, env.World.Link(), ccfg).Run(ctx, ds.Slice(), p)
		if err != nil {
			return err
		}
		printClusterRun(run)
		results = run.Results
	default:
		results, err = env.Scanner.ScanContext(ctx, ds.Slice(), p)
		if err != nil {
			return err
		}
	}
	counts := map[string]int{}
	for _, r := range results {
		counts[r.Status.String()]++
	}
	fmt.Printf("scanned %s on %s: %d targets\n", ds.Name, p, len(results))
	for _, k := range []string{"active", "silent", "rst", "unreachable", "blocked"} {
		if counts[k] > 0 {
			fmt.Printf("  %-12s %d\n", k, counts[k])
		}
	}
	wc.summary()
	return nil
}

// printClusterRun summarizes a coordinated scan: shard accounting first,
// then the per-worker contributions in worker-ID order.
func printClusterRun(run *cluster.RunResult) {
	fmt.Printf("cluster: %d shards across %d workers (%d reassigned)\n",
		run.Shards, len(run.Workers), run.Reassigned)
	ids := make([]string, 0, len(run.Workers))
	for id := range run.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := run.Workers[id]
		fmt.Printf("  %-20s %3d shards, %8d packets, %8.0f pps\n",
			id, r.ShardsCompleted, r.PacketsSent, r.PPS())
	}
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	seed, ases, _ := envFlags(fs)
	listen := fs.String("listen", "127.0.0.1:9653", "address to serve the cluster wire protocol on")
	id := fs.String("id", "", "worker id announced to coordinators (default: the listen address)")
	wopts := wireFlags(fs)
	trace, metrics := teleFlags(fs)
	fs.Parse(args)

	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	wc, err := wopts.build(*seed, tr.Registry())
	if err != nil {
		return err
	}

	// The worker rebuilds the same deterministic world as the coordinator's
	// environment; the job frame carries the secret/retries/rate needed for
	// its shards to merge byte-identically.
	w := world.New(world.Config{Seed: *seed, NumASes: *ases})
	w.SetEpoch(world.ScanEpoch)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *id == "" {
		*id = ln.Addr().String()
	}
	fmt.Printf("seedscan worker %q: serving on %s (world seed=%d, %d ASes)\n",
		*id, ln.Addr(), *seed, *ases)

	ctx, stop := signalContext()
	defer stop()
	// Every job's scanner probes through this worker's chain: a remote
	// coordinator cannot ship middlewares over the wire protocol, so the
	// -wire-* flags here are the per-worker half of a distributed chain.
	link := wire.Chain(w.Link(), wc.mws...)
	err = cluster.Serve(ctx, ln, cluster.ServeConfig{
		WorkerID: *id,
		NewScanner: func(job cluster.Job) (*scanner.Scanner, error) {
			return scanner.New(link,
				scanner.WithSecret(job.Secret),
				scanner.WithRetries(job.Retries),
				scanner.WithRatePPS(job.RatePPS),
				scanner.WithTelemetry(tr.Registry())), nil
		},
		Telemetry: tr.Registry(),
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	wc.summary()
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

func cmdDealias(args []string) error {
	fs := flag.NewFlagSet("dealias", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	src := fs.String("source", "AddrMiner", "seed source to dealias")
	modeName := fs.String("mode", "joint", "mode: none, offline, online, joint, cooldown")
	trace, metrics := teleFlags(fs)
	fs.Parse(args)

	mode, err := alias.ParseMode(*modeName)
	if err != nil {
		return err
	}
	s, err := parseSource(*src)
	if err != nil {
		return err
	}
	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	env := buildEnvTele(*seed, *ases, *scale, 0, tr)
	ds := env.Sources[s]
	d := alias.New(mode, env.Offline, env.Scanner, proto.ICMP, *seed)
	d.SetTelemetry(tr.Registry())
	clean, aliased := d.Split(ds.Slice())
	fmt.Printf("%s under %s dealiasing: %d clean, %d aliased (%d /96s tested, %d probes)\n",
		ds.Name, mode, len(clean), len(aliased), d.PrefixesTested(), d.ProbesSent())
	return nil
}

func cmdHitlist(args []string) error {
	fs := flag.NewFlagSet("hitlist", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	outAddrs := fs.String("o", "", "write the responsive list to this file (.gz for gzip)")
	outAliases := fs.String("aliases", "", "write the aliased-prefix list to this file")
	fs.Parse(args)

	env := buildEnv(*seed, *ases, *scale, 0)
	svc, err := hitlist.New(
		hitlist.WithProber(env.Scanner),
		hitlist.WithKnownAliases(env.Offline),
		hitlist.WithSeed(*seed),
	)
	if err != nil {
		return err
	}
	inputs := make([]*seeds.Dataset, 0, len(env.Sources))
	for _, src := range seeds.AllSources {
		inputs = append(inputs, env.Sources[src])
	}
	snap, err := svc.Build(inputs...)
	if err != nil {
		return err
	}
	fmt.Print(snap.Summary())
	if *outAddrs != "" {
		if err := snap.ResponsiveDataset().WriteFile(*outAddrs); err != nil {
			return err
		}
		fmt.Printf("wrote responsive list to %s\n", *outAddrs)
	}
	if *outAliases != "" {
		f, err := os.Create(*outAliases)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := seeds.WritePrefixes(f, snap.AliasedPrefixes); err != nil {
			return err
		}
		fmt.Printf("wrote %d aliased prefixes to %s\n", len(snap.AliasedPrefixes), *outAliases)
	}
	return nil
}

func cmdResolve(args []string) error {
	fs := flag.NewFlagSet("resolve", flag.ExitOnError)
	seed, ases, _ := envFlags(fs)
	n := fs.Int("n", 20000, "number of synthetic domains to resolve")
	rate := fs.Float64("rate", 0.047, "AAAA response rate (CT-log default; toplists ~0.25)")
	out := fs.String("o", "", "write resolved addresses to this file")
	fs.Parse(args)

	w := world.New(world.Config{Seed: *seed, NumASes: *ases})
	w.SetEpoch(world.CollectEpoch)
	zone, err := zdns.NewZone(w, zdns.ZoneConfig{Seed: *seed + 1, AAAARate: *rate})
	if err != nil {
		return err
	}
	names := zdns.GenerateNames(*seed+2, *n)
	set, stats := (&zdns.Resolver{Zone: zone}).ResolveAll(names)
	fmt.Printf("resolved %d domains: %d AAAA responses, %d records, %d unique IPv6 addresses\n",
		stats.Domains, stats.AAAAs, stats.Records, stats.UniqueIPs)
	if *out != "" {
		ds := seeds.FromSet("resolved", set)
		if err := ds.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %d addresses to %s\n", ds.Len(), *out)
	}
	return nil
}

// ipaddrAddr shortens the address type name in this file.
type ipaddrAddr = ipaddr.Addr
