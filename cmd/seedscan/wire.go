package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"seedscan/internal/ipaddr"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
)

// wireOpts carries the shared wire-layer flags: every probing subcommand
// (scan, worker, daemon) can compose taps, pacing, source rotation, and
// fault injection onto its link without the command knowing how the chain
// is built. Middleware order is fixed — tap outermost (it observes what
// the scanner sees), then shaper, then source rotation, with fault
// injection innermost (so the tap still counts probes the faults drop).
type wireOpts struct {
	taps   *bool
	shape  *string
	rotate *string
	faults *string
}

// wireFlags wires the shared -wire-* flags into fs.
func wireFlags(fs *flag.FlagSet) *wireOpts {
	return &wireOpts{
		taps:   fs.Bool("wire-taps", false, "attach a counting wire tap and print probe/reply totals on exit"),
		shape:  fs.String("wire-shape", "", "virtual egress pacing, e.g. pps=100000,jitter=0.2[,seed=N]"),
		rotate: fs.String("wire-rotate", "", "rotate probe source addresses across this comma-separated pool"),
		faults: fs.String("wire-faults", "", "deterministic fault injection, e.g. loss=0.05,dup=0.01,delay=0.02[,seed=N]"),
	}
}

// wireChain is a built middleware stack plus handles to the pieces worth
// reporting on after a run.
type wireChain struct {
	mws    []wire.Middleware
	tap    *wire.Tap
	shaper *wire.Shaper
	faults *wire.Faults
}

// empty reports whether no -wire-* flag asked for anything.
func (o *wireOpts) empty() bool {
	return !*o.taps && *o.shape == "" && *o.rotate == "" && *o.faults == ""
}

// build assembles the middleware chain. seed defaults the deterministic
// knobs (rotation, faults, jitter) when their flag value carries no
// explicit seed=, so a whole run is reproducible from the world seed
// alone. reg may be nil.
func (o *wireOpts) build(seed uint64, reg *telemetry.Registry) (*wireChain, error) {
	c := &wireChain{}
	if *o.taps {
		c.tap = wire.NewTap(nil)
		c.tap.SetTelemetry(reg)
		c.mws = append(c.mws, c.tap)
	}
	if *o.shape != "" {
		kv, err := parseWireKV("wire-shape", *o.shape, "pps", "jitter", "seed")
		if err != nil {
			return nil, err
		}
		pps := int(kv.num("pps", 0))
		if pps <= 0 {
			return nil, fmt.Errorf("-wire-shape: pps must be positive, got %v", kv.num("pps", 0))
		}
		c.shaper = wire.NewShaper(pps, kv.num("jitter", 0), kv.seed(seed))
		c.shaper.SetTelemetry(reg)
		c.mws = append(c.mws, c.shaper)
	}
	if *o.rotate != "" {
		var pool []ipaddr.Addr
		for _, f := range strings.Split(*o.rotate, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			a, err := ipaddr.Parse(f)
			if err != nil {
				return nil, fmt.Errorf("-wire-rotate: %w", err)
			}
			pool = append(pool, a)
		}
		rot, err := wire.NewSourceRotator(seed, pool...)
		if err != nil {
			return nil, fmt.Errorf("-wire-rotate: %w", err)
		}
		rot.SetTelemetry(reg)
		c.mws = append(c.mws, rot)
	}
	if *o.faults != "" {
		kv, err := parseWireKV("wire-faults", *o.faults, "loss", "dup", "delay", "seed")
		if err != nil {
			return nil, err
		}
		for _, k := range []string{"loss", "dup", "delay"} {
			if v := kv.num(k, 0); v < 0 || v > 1 {
				return nil, fmt.Errorf("-wire-faults: %s=%v out of [0,1]", k, v)
			}
		}
		f := wire.NewFaults(wire.FaultsConfig{
			Seed:  kv.seed(seed),
			Loss:  kv.num("loss", 0),
			Dupe:  kv.num("dup", 0),
			Delay: kv.num("delay", 0),
		})
		f.SetTelemetry(reg)
		c.faults = f
		c.mws = append(c.mws, f)
	}
	return c, nil
}

// summary prints what the chain observed, one line per attached piece.
func (c *wireChain) summary() {
	if c == nil {
		return
	}
	if c.tap != nil {
		fmt.Printf("wire tap: %d probes, %d replies\n", c.tap.Probes(), c.tap.Replies())
	}
	if c.shaper != nil {
		fmt.Printf("wire shaper: %d packets, %.2fs virtual egress time\n",
			c.shaper.Packets(), c.shaper.VirtualElapsed())
	}
	if c.faults != nil {
		fmt.Printf("wire faults: %d dropped, %d duplicated, %d delayed\n",
			c.faults.Dropped(), c.faults.Duplicated(), c.faults.Delayed())
	}
}

// wireKV is a parsed key=value flag payload.
type wireKV map[string]float64

// parseWireKV parses "k=v,k=v" flag syntax, rejecting unknown keys.
func parseWireKV(flagName, s string, allowed ...string) (wireKV, error) {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	kv := wireKV{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, v, found := strings.Cut(f, "=")
		if !found || !ok[k] {
			return nil, fmt.Errorf("-%s: bad field %q (want %s)", flagName, f, strings.Join(allowed, "=,")+"=")
		}
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %s: %w", flagName, k, err)
		}
		kv[k] = n
	}
	return kv, nil
}

func (kv wireKV) num(k string, def float64) float64 {
	if v, found := kv[k]; found {
		return v
	}
	return def
}

// seed returns the payload's explicit seed= or the fallback.
func (kv wireKV) seed(def uint64) uint64 {
	if v, found := kv["seed"]; found {
		return uint64(v)
	}
	return def
}
