package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"seedscan/internal/hitlistdb"
	"seedscan/internal/serve"
)

// daemonArgs builds a cmdDaemon invocation over temp state/publish dirs.
func daemonArgs(state, publish string, extra ...string) []string {
	args := append([]string{"-state", state, "-publish", publish, "-epochs", "5", "-keep", "10"}, smallEnv...)
	return append(args, extra...)
}

// TestCmdDaemonServeEndToEnd is the full producer/consumer loop from the
// issue's acceptance bar: the daemon runs five epochs, publishing one
// generation per epoch, while a concurrent serve loop with a short
// -watch-interval swaps each one in live.
func TestCmdDaemonServeEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	state := filepath.Join(tmp, "state")
	publish := filepath.Join(tmp, "store")

	// Seed the store with an empty directory and start the watcher first,
	// as a deployment would: serve comes up on 503s, the daemon feeds it.
	st, err := hitlistdb.OpenStore(publish)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(st)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, addr, srv, st, 20*time.Millisecond) }()

	if err := cmdDaemon(daemonArgs(state, publish)); err != nil {
		t.Fatal(err)
	}

	// The watcher observes the final generation; healthz reports the
	// epoch the daemon stamped on it.
	base := "http://" + addr
	waitGeneration(t, base, 5)
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Generation uint64  `json:"generation"`
		Epoch      int     `json:"epoch"`
		Age        float64 `json:"generation_age_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Generation != 5 || health.Epoch != 5 {
		t.Fatalf("healthz = %+v, want generation 5 epoch 5", health)
	}
	if health.Age < 0 || health.Age > 600 {
		t.Fatalf("generation age %v implausible", health.Age)
	}

	// One generation per epoch: with -keep 10 all five files survive, each
	// stamped with the epoch that produced it.
	for gen := 1; gen <= 5; gen++ {
		db, err := hitlistdb.Open(filepath.Join(publish, fmt.Sprintf("gen-%08d.hldb", gen)))
		if err != nil {
			t.Fatalf("generation %d not retained: %v", gen, err)
		}
		if db.Epoch() != gen {
			t.Fatalf("generation %d stamped epoch %d", gen, db.Epoch())
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServe did not shut down")
	}
}

// TestCmdDaemonResume re-runs cmdDaemon over the same state directory: the
// second run replays every epoch from checkpoints (no new scanner traffic
// is observable here, but no new generations may appear either) and exits
// cleanly.
func TestCmdDaemonResume(t *testing.T) {
	tmp := t.TempDir()
	state := filepath.Join(tmp, "state")
	publish := filepath.Join(tmp, "store")

	if err := cmdDaemon(daemonArgs(state, publish)); err != nil {
		t.Fatal(err)
	}
	st, err := hitlistdb.OpenStore(publish)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 5 {
		t.Fatalf("first run published generation %d, want 5", st.Generation())
	}

	if err := cmdDaemon(daemonArgs(state, publish)); err != nil {
		t.Fatal(err)
	}
	if _, swapped, err := st.Refresh(); err != nil {
		t.Fatal(err)
	} else if swapped {
		t.Fatal("resumed run republished generations for replayed epochs")
	}
	if st.Generation() != 5 {
		t.Fatalf("generation after resume = %d, want 5", st.Generation())
	}
}

func TestCmdDaemonBadFlags(t *testing.T) {
	tmp := t.TempDir()
	if err := cmdDaemon(daemonArgs(tmp, "", "-proto", "gopher")); err == nil {
		t.Fatal("daemon accepted an unknown protocol")
	}
	if err := cmdDaemon(daemonArgs(tmp, "", "-epochs", "0")); err == nil {
		t.Fatal("daemon accepted zero epochs")
	}
}
