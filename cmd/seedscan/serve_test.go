package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seedscan/internal/hitlistdb"
	"seedscan/internal/serve"
	"seedscan/internal/telemetry"
)

func TestCmdBuildDB(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := append([]string{"-dir", dir}, smallEnv...)
	if err := cmdBuildDB(args); err != nil {
		t.Fatal(err)
	}
	st, err := hitlistdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := st.Current()
	if db == nil || db.Generation() != 1 || db.AddrCount() == 0 {
		t.Fatalf("build-db published nothing usable: %+v", db)
	}

	// A second build publishes generation 2.
	if err := cmdBuildDB(args); err != nil {
		t.Fatal(err)
	}
	if _, swapped, err := st.Refresh(); err != nil || !swapped {
		t.Fatalf("refresh after rebuild: swapped=%v err=%v", swapped, err)
	}
	if st.Generation() != 2 {
		t.Fatalf("generation after rebuild = %d", st.Generation())
	}
}

// TestRunServeEndToEnd drives the daemon loop the way cmdServe does:
// build-db publishes, runServe serves, a watch tick picks up a second
// publish, and context cancellation shuts the daemon down cleanly.
func TestRunServeEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := cmdBuildDB(append([]string{"-dir", dir}, smallEnv...)); err != nil {
		t.Fatal(err)
	}

	// Daemon's own store handle (the watch target)...
	st, err := hitlistdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(st)
	if err != nil {
		t.Fatal(err)
	}
	// ...and an independent writer handle, as in a real deployment.
	writer, err := hitlistdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, addr, srv, st, 20*time.Millisecond) }()

	base := "http://" + addr
	waitGeneration(t, base, 1)

	if _, err := writer.Publish(st.Current().Snapshot()); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, base, 2)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServe did not shut down")
	}
}

// waitGeneration polls healthz until the daemon serves generation want.
func waitGeneration(t *testing.T, base string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var body struct {
				Generation uint64 `json:"generation"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && body.Generation == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never served generation %d", want)
}

// TestRunServeListenFailureStopsWatcher is the regression test for the
// -watch goroutine leak: when ListenAndServe fails immediately (port in
// use), runServe returns an error, and the refresh ticker must die with
// it instead of polling until the parent context is cancelled. The store's
// refresh counter is the watcher's observable heartbeat. Run under -race.
func TestRunServeListenFailureStopsWatcher(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := cmdBuildDB(append([]string{"-dir", dir}, smallEnv...)); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	st, err := hitlistdb.OpenStore(dir, hitlistdb.StoreTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(st)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the port so ListenAndServe fails at once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The parent context stays live: only runServe's return may stop the
	// watcher.
	const watch = 5 * time.Millisecond
	err = runServe(context.Background(), ln.Addr().String(), srv, st, watch)
	if err == nil {
		t.Fatal("runServe succeeded on an occupied port")
	}

	refreshes := func() int64 { return reg.Snapshot().Counters["hitlistdb.store.refreshes"] }
	// Let any leaked ticker fire many times; the count must settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := refreshes()
		time.Sleep(20 * watch)
		if refreshes() == before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("watch goroutine still refreshing after runServe returned")
		}
	}
}

func TestCmdServeBadDir(t *testing.T) {
	// A file where the store directory should be must fail fast.
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-dir", f}); err == nil {
		t.Fatal("serve accepted a non-directory store")
	}
}
