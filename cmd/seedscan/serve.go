package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/seeds"
	"seedscan/internal/serve"
)

// cmdBuildDB runs the hitlist pipeline over every seed source and publishes
// the result as the next generation of a hitlistdb store directory — the
// producer half of the hitlist service. Re-running it against the same
// directory publishes a new generation; a concurrent `seedscan serve -watch`
// daemon picks it up without restarting.
func cmdBuildDB(args []string) error {
	fs := flag.NewFlagSet("build-db", flag.ExitOnError)
	seed, ases, scale := envFlags(fs)
	trace, metrics := teleFlags(fs)
	dir := fs.String("dir", "hitlistdb", "store directory to publish into")
	keep := fs.Int("keep", 3, "generation files to retain on disk")
	fs.Parse(args)

	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()
	ctx, stop := signalContext()
	defer stop()

	env := buildEnvTele(*seed, *ases, *scale, 0, tr)
	svc, err := hitlist.New(
		hitlist.WithProber(env.Scanner),
		hitlist.WithKnownAliases(env.Offline),
		hitlist.WithSeed(*seed),
		hitlist.WithTelemetry(tr.Registry()),
	)
	if err != nil {
		return err
	}
	inputs := make([]*seeds.Dataset, 0, len(env.Sources))
	for _, src := range seeds.AllSources {
		inputs = append(inputs, env.Sources[src])
	}
	snap, err := svc.BuildContext(ctx, inputs...)
	if err != nil {
		return err
	}
	fmt.Print(snap.Summary())

	st, err := hitlistdb.OpenStore(*dir,
		hitlistdb.KeepGenerations(*keep),
		hitlistdb.StoreTelemetry(tr.Registry()))
	if err != nil {
		return err
	}
	db, err := st.Publish(snap)
	if err != nil {
		return err
	}
	fmt.Printf("published generation %d to %s (%d records, %d aliased prefixes, %d bytes)\n",
		db.Generation(), *dir, db.AddrCount(), db.PrefixCount(), len(db.Bytes()))
	return nil
}

// cmdServe runs the hitlist query daemon over a store directory published
// by build-db. With -watch it polls the manifest and atomically swaps in
// new generations while continuing to serve; in-flight requests finish on
// the generation they started on.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	trace, metrics := teleFlags(fs)
	dir := fs.String("dir", "hitlistdb", "store directory to serve")
	addr := fs.String("addr", "127.0.0.1:8674", "listen address")
	watch := fs.Bool("watch", false, "poll the store for new generations and swap them in live")
	watchInterval := fs.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
	maxBulk := fs.Int("max-bulk", 4096, "maximum addresses per /v1/bulk request")
	maxWalk := fs.Int("max-walk", 65536, "maximum records per /v1/prefix-walk response")
	fs.Parse(args)
	if *watchInterval <= 0 {
		return fmt.Errorf("serve: -watch-interval must be positive, got %v", *watchInterval)
	}

	tr, finish, err := newTracer(*trace, *metrics)
	if err != nil {
		return err
	}
	defer finish()

	st, err := hitlistdb.OpenStore(*dir, hitlistdb.StoreTelemetry(tr.Registry()))
	if err != nil {
		return err
	}
	srv, err := serve.New(st,
		serve.WithTelemetry(tr.Registry()),
		serve.WithMaxBulk(*maxBulk),
		serve.WithMaxWalk(*maxWalk))
	if err != nil {
		return err
	}
	if gen := st.Generation(); gen > 0 {
		fmt.Printf("serving generation %d from %s on %s\n", gen, *dir, *addr)
	} else {
		fmt.Printf("store %s is empty; serving 503s on %s until a build is published\n", *dir, *addr)
	}

	ctx, stop := signalContext()
	defer stop()
	interval := time.Duration(0)
	if *watch {
		interval = *watchInterval
	}
	return runServe(ctx, *addr, srv, st, interval)
}

// runServe is the daemon loop behind cmdServe, split out so tests can drive
// it with their own context and listen address.
func runServe(ctx context.Context, addr string, handler http.Handler, st *hitlistdb.Store, watch time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: handler}

	// The watcher's lifetime is tied to runServe itself, not the parent
	// context: when ListenAndServe fails immediately (port in use) the
	// ticker goroutine must die with the call, not poll until the caller
	// cancels.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	if watch > 0 {
		go func() {
			tick := time.NewTicker(watch)
			defer tick.Stop()
			for {
				select {
				case <-wctx.Done():
					return
				case <-tick.C:
					if db, swapped, err := st.Refresh(); err != nil {
						fmt.Fprintf(os.Stderr, "refresh: %v\n", err)
					} else if swapped {
						fmt.Printf("swapped in generation %d (%d records)\n", db.Generation(), db.AddrCount())
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
