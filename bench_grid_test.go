// Cell-grid engine benchmarks and the BENCH_grid.json baseline writer.
//
// Before the grid engine, every RQ harness drove its own cells directly:
// RQ1.b, RQ2, and RQ4 each re-scanned the All Active × generator cells,
// and nothing survived the process. The engine plans all specs over one
// content-addressed cell space, so shared cells execute exactly once and
// every finished cell is checkpointed. The bench measures exactly that
// workload — the ICMP evaluation suite (RQ1.a, RQ1.b, RQ2, Table 4, RQ4)
// over the offline generators — executed per-RQ with no dedup versus
// through the shared engine, plus a warm-store resume pass.
//
// `make bench-grid` regenerates BENCH_grid.json from these measurements;
// see README.md for the format.
package seedscan

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"seedscan/internal/experiment"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
)

// gridBenchGens mirrors the TGA bench: the offline generators, whose
// model mining and candidate generation dominate cell cost.
var gridBenchGens = []string{"EIP", "6Gen", "6Tree", "6Graph"}

// gridBenchSpecs is the ICMP evaluation suite. Per generator it plans 11
// cells of which 7 are unique — joint-dealiased is shared by RQ1.a,
// RQ1.b, and Table 4; All Active by RQ1.b, RQ2, and RQ4 — so perfect
// dedup bounds the speedup at 11/7 ≈ 1.57x.
func gridBenchSpecs(env *experiment.Env, gens []string, budget int) []grid.Spec {
	protos := []proto.Protocol{proto.ICMP}
	return []grid.Spec{
		env.SpecRQ1a(protos, gens, budget),
		env.SpecRQ1b(protos, gens, budget),
		env.SpecRQ2(protos, gens, budget),
		env.SpecTable4(gens, budget),
		env.SpecRQ4(protos, gens, budget),
	}
}

func gridBenchEnv(cfg experiment.EnvConfig) *experiment.Env {
	return experiment.NewEnv(cfg)
}

// runSpecsPerRQ executes every spec the way the pre-engine harnesses
// did: each spec fans its own cells out over the worker pool and runs
// them all, shared or not. Returns wall time and total hits across all
// planned cells (the cross-mode sanity metric).
func runSpecsPerRQ(tb testing.TB, env *experiment.Env, specs []grid.Spec) (time.Duration, int) {
	tb.Helper()
	hits := 0
	start := time.Now()
	for _, s := range specs {
		cells := s.Cells
		results := make([]grid.CellResult, len(cells))
		err := grid.RunParallel(context.Background(), env.Workers(), len(cells),
			func(ctx context.Context, i int) error {
				r, err := env.RunCell(ctx, cells[i])
				if err != nil {
					return err
				}
				results[i] = r
				return nil
			})
		if err != nil {
			tb.Fatalf("%s: %v", s.Name, err)
		}
		for _, r := range results {
			hits += r.Outcome.Hits
		}
	}
	return time.Since(start), hits
}

// runSpecsEngine executes the same specs through the env's shared grid
// engine, which dedups cells across specs and checkpoints each result
// into the env's store.
func runSpecsEngine(tb testing.TB, env *experiment.Env, specs []grid.Spec) (time.Duration, int) {
	tb.Helper()
	hits := 0
	start := time.Now()
	for _, s := range specs {
		rs, err := env.Grid().Run(context.Background(), s)
		if err != nil {
			tb.Fatalf("%s: %v", s.Name, err)
		}
		for _, c := range s.Cells {
			hits += rs.Of(c).Outcome.Hits
		}
	}
	return time.Since(start), hits
}

// TestGridBenchSmoke is the always-on CI shape of the bench: a tiny
// suite in every mode, asserting only that per-RQ execution, the dedup
// engine, and a warm-store resume all report identical hit totals — no
// timing gate, so it cannot flake on loaded runners.
func TestGridBenchSmoke(t *testing.T) {
	cfg := experiment.EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 800}
	gens := []string{"6Tree", "EIP"}

	perRQEnv := gridBenchEnv(cfg)
	_, perRQHits := runSpecsPerRQ(t, perRQEnv, gridBenchSpecs(perRQEnv, gens, 800))

	store := grid.NewMemStore()
	ecfg := cfg
	ecfg.GridStore = store
	engEnv := gridBenchEnv(ecfg)
	_, engHits := runSpecsEngine(t, engEnv, gridBenchSpecs(engEnv, gens, 800))
	if perRQHits != engHits {
		t.Fatalf("hit totals diverge: per-RQ %d, engine %d", perRQHits, engHits)
	}

	// A fresh env over the populated store must replay every cell.
	resEnv := gridBenchEnv(ecfg)
	_, resHits := runSpecsEngine(t, resEnv, gridBenchSpecs(resEnv, gens, 800))
	if resHits != engHits {
		t.Fatalf("hit totals diverge: engine %d, warm resume %d", engHits, resHits)
	}
}

// BenchmarkGridSuite reports wall time per evaluation suite for both
// execution modes. Each iteration builds a fresh env: the engine
// memoizes completed cells for the life of the env, so reusing one
// would measure a no-op.
func BenchmarkGridSuite(b *testing.B) {
	cfg := experiment.EnvConfig{NumASes: 100, CollectScale: 0.3, Budget: 2000}
	gens := []string{"6Tree", "EIP"}
	b.Run("per-rq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := gridBenchEnv(cfg)
			runSpecsPerRQ(b, env, gridBenchSpecs(env, gens, 2000))
		}
	})
	b.Run("engine-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := gridBenchEnv(cfg)
			runSpecsEngine(b, env, gridBenchSpecs(env, gens, 2000))
		}
	})
}

// --- BENCH_grid.json baseline writer ---

var gridBenchOut = flag.String("grid-bench-out", "",
	"write the grid engine baseline JSON to this path (see make bench-grid)")

// gridBenchBaseline is the BENCH_grid.json schema; the suite speedup is
// the acceptance metric.
type gridBenchBaseline struct {
	Schema            string   `json:"schema"`
	GoVersion         string   `json:"go_version"`
	CPUs              int      `json:"cpus"`
	Generators        []string `json:"generators"`
	Specs             []string `json:"specs"`
	BudgetPerCell     int      `json:"budget_per_cell"`
	PlannedCells      int      `json:"planned_cells"`
	UniqueCells       int      `json:"unique_cells"`
	PerRQSeconds      float64  `json:"per_rq_seconds"`
	EngineSeconds     float64  `json:"engine_dedup_seconds"`
	WarmResumeSeconds float64  `json:"warm_resume_seconds"`
	Speedup           float64  `json:"speedup"`
	HitsPerSuite      int      `json:"hits_per_suite"`
}

// TestWriteGridBenchBaseline regenerates BENCH_grid.json when run with
// -grid-bench-out (wired to `make bench-grid`); otherwise it is skipped.
// It measures the ICMP evaluation suite executed per-RQ (every spec runs
// all of its own cells, as the pre-engine harnesses did) versus through
// the shared dedup engine, then times a warm-store resume of the whole
// suite in a fresh env. One pass per mode — the workload is virtual-time
// deterministic, and the engine memoizes cells for the life of an env,
// so a second engine pass would not be the same workload. Fails if the
// engine stops structurally deduping (every planned cell runs) or the
// dedup stops paying for itself in wall clock. The wall-clock floor is
// deliberately low: the shared cells' repeated cost is almost entirely
// scanning (treatment caches and the model cache already dedup
// generation within an env), and the arena-batched world reply path cut
// per-scan cost ~4x, compressing the suite-level speedup from ~1.5x to
// ~1.1-1.2x on 1 vCPU even though the engine skips the same 16 of 48
// cells.
func TestWriteGridBenchBaseline(t *testing.T) {
	if *gridBenchOut == "" {
		t.Skip("pass -grid-bench-out to regenerate BENCH_grid.json")
	}
	cfg := experiment.EnvConfig{NumASes: 150, CollectScale: 0.4, Budget: 6000}
	const budget = 6000

	// Per-RQ pass: its own env, so it builds (and pays for) its own
	// treatment caches exactly as the engine env does.
	perRQEnv := gridBenchEnv(cfg)
	perRQSpecs := gridBenchSpecs(perRQEnv, gridBenchGens, budget)
	perRQDur, perRQHits := runSpecsPerRQ(t, perRQEnv, perRQSpecs)

	// Engine pass: same config, shared engine, checkpointing into a
	// store (the Put cost is part of the measured path).
	store := grid.NewMemStore()
	tr := telemetry.NewTracer(nil)
	ecfg := cfg
	ecfg.GridStore = store
	ecfg.Telemetry = tr
	engEnv := gridBenchEnv(ecfg)
	engSpecs := gridBenchSpecs(engEnv, gridBenchGens, budget)
	engDur, engHits := runSpecsEngine(t, engEnv, engSpecs)
	if perRQHits != engHits {
		t.Fatalf("hit totals diverge: per-RQ %d, engine %d", perRQHits, engHits)
	}
	snap := tr.Registry().Snapshot()
	planned := int(snap.Counters["grid.cells.planned"])
	unique := int(snap.Counters["grid.cells.run"])

	// Warm resume: a fresh env (fresh process, same store) replays the
	// whole suite from checkpoints without scanning.
	resEnv := gridBenchEnv(ecfg)
	resStart := time.Now()
	_, resHits := runSpecsEngine(t, resEnv, gridBenchSpecs(resEnv, gridBenchGens, budget))
	resDur := time.Since(resStart)
	if resHits != engHits {
		t.Fatalf("hit totals diverge: engine %d, warm resume %d", engHits, resHits)
	}

	specNames := make([]string, len(engSpecs))
	for i, s := range engSpecs {
		specNames[i] = s.Name
	}
	out := gridBenchBaseline{
		Schema:            "seedscan-bench-grid/v1",
		GoVersion:         runtime.Version(),
		CPUs:              runtime.NumCPU(),
		Generators:        gridBenchGens,
		Specs:             specNames,
		BudgetPerCell:     budget,
		PlannedCells:      planned,
		UniqueCells:       unique,
		PerRQSeconds:      perRQDur.Seconds(),
		EngineSeconds:     engDur.Seconds(),
		WarmResumeSeconds: resDur.Seconds(),
		Speedup:           perRQDur.Seconds() / engDur.Seconds(),
		HitsPerSuite:      perRQHits,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*gridBenchOut, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: per-RQ %.2fs, engine %.2fs (%d/%d cells), resume %.3fs, speedup %.2fx\n",
		*gridBenchOut, out.PerRQSeconds, out.EngineSeconds, unique, planned,
		out.WarmResumeSeconds, out.Speedup)
	if unique >= planned {
		t.Errorf("engine deduped nothing: %d unique of %d planned cells", unique, planned)
	}
	if out.Speedup < 1.05 {
		t.Errorf("suite speedup %.2fx below the 1.05x acceptance floor", out.Speedup)
	}
}
