// Serve-daemon load benchmarks and the BENCH_serve.json baseline writer.
//
// The hitlist service's contract is cheap reads: a point lookup is two
// binary searches over an immutable byte image, so the HTTP round trip —
// not the store — should dominate latency. The bench drives a real
// `internal/serve` server over a real hitlist build through the loopback
// HTTP stack and records what a client sees: p50/p99 lookup latency, bulk
// lookup throughput (addresses answered per second), and how long opening
// a published snapshot takes.
//
// `make bench-serve` regenerates BENCH_serve.json from these measurements;
// see README.md for the format.
package seedscan

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/serve"
	"seedscan/internal/world"
)

var serveBenchOut = flag.String("serve-bench-out", "",
	"write the serve load baseline JSON to this path (see make bench-serve)")

// serveBenchBaseline is the BENCH_serve.json schema. The committed file is
// the PR's acceptance artifact: lookup p99 and bulk throughput are gated.
type serveBenchBaseline struct {
	Schema          string  `json:"schema"`
	GoVersion       string  `json:"go_version"`
	CPUs            int     `json:"cpus"`
	Addrs           int     `json:"addrs"`
	Prefixes        int     `json:"aliased_prefixes"`
	SnapshotBytes   int     `json:"snapshot_bytes"`
	OpenMillis      float64 `json:"snapshot_open_ms"`
	LookupRequests  int     `json:"lookup_requests"`
	LookupP50Micros float64 `json:"lookup_p50_us"`
	LookupP99Micros float64 `json:"lookup_p99_us"`
	LookupQPS       float64 `json:"lookup_qps"`
	BulkBatch       int     `json:"bulk_batch"`
	BulkAddrsPerSec float64 `json:"bulk_addrs_per_sec"`
}

// serveBenchWorld publishes one real hitlist build into a store and returns
// a test server over it. Bigger than the unit-test worlds so the record
// section spans many index blocks.
func serveBenchWorld(t testing.TB) (*httptest.Server, *hitlistdb.Store, string) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 150, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.4})
	w.SetEpoch(world.ScanEpoch)
	sc := scanner.New(w.Link(), scanner.WithSecret(3))
	svc, err := hitlist.New(hitlist.WithProber(sc), hitlist.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*seeds.Dataset, 0, len(srcs))
	for _, src := range seeds.AllSources {
		inputs = append(inputs, srcs[src])
	}
	snap, err := svc.Build(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := hitlistdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := st.Publish(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, st, filepath.Join(dir, fmt.Sprintf("gen-%08d.hldb", db.Generation()))
}

// benchProbeAddrs returns a query mix over the published records: mostly
// hits spread across the whole address range, with a share of misses.
func benchProbeAddrs(db *hitlistdb.DB, n int) []ipaddr.Addr {
	addrs := db.Snapshot().Responsive.Sorted()
	out := make([]ipaddr.Addr, 0, n)
	for i := 0; i < n; i++ {
		if i%8 == 7 { // miss
			out = append(out, ipaddr.MustParse("2001:db8:ffff::1").AddLo(uint64(i)))
			continue
		}
		out = append(out, addrs[(i*7919)%len(addrs)])
	}
	return out
}

// TestWriteServeBenchBaseline regenerates BENCH_serve.json when run with
// -serve-bench-out (wired to `make bench-serve`); otherwise it is skipped.
// It fails when lookup p99 exceeds 50ms or bulk throughput falls below
// 10k addresses/sec — generous CI-runner floors; interactive machines land
// orders of magnitude better.
func TestWriteServeBenchBaseline(t *testing.T) {
	if *serveBenchOut == "" {
		t.Skip("pass -serve-bench-out to regenerate BENCH_serve.json")
	}
	ts, st, dbPath := serveBenchWorld(t)
	db := st.Current()

	// Snapshot open time: the cost a daemon pays per generation swap.
	openStart := time.Now()
	reopened, err := hitlistdb.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	openMillis := float64(time.Since(openStart).Microseconds()) / 1000
	if reopened.AddrCount() != db.AddrCount() {
		t.Fatal("reopened snapshot diverges")
	}

	// Point-lookup latency: 4 clients, sequential requests each, client-
	// observed latency over the full loopback HTTP round trip.
	const clients = 4
	const perClient = 500
	probes := benchProbeAddrs(db, clients*perClient)
	latencies := make([]float64, clients*perClient)
	lookupStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				idx := c*perClient + i
				reqStart := time.Now()
				resp, err := client.Get(ts.URL + "/v1/lookup?addr=" + probes[idx].String())
				if err == nil {
					resp.Body.Close()
				}
				latencies[idx] = float64(time.Since(reqStart).Microseconds())
			}
		}(c)
	}
	wg.Wait()
	lookupWall := time.Since(lookupStart).Seconds()
	sort.Float64s(latencies)
	quantile := func(q float64) float64 { return latencies[int(q*float64(len(latencies)-1))] }

	// Bulk throughput: full batches through /v1/bulk, counted in addresses
	// answered per second.
	const bulkBatch = 1024
	const bulkRounds = 20
	bulkAddrs := benchProbeAddrs(db, bulkBatch)
	raw := make([]string, len(bulkAddrs))
	for i, a := range bulkAddrs {
		raw[i] = a.String()
	}
	body, _ := json.Marshal(map[string][]string{"addrs": raw})
	client := ts.Client()
	bulkStart := time.Now()
	for i := 0; i < bulkRounds; i++ {
		resp, err := client.Post(ts.URL+"/v1/bulk", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bulk status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	bulkWall := time.Since(bulkStart).Seconds()

	out := serveBenchBaseline{
		Schema:          "seedscan-bench-serve/v1",
		GoVersion:       runtime.Version(),
		CPUs:            runtime.NumCPU(),
		Addrs:           db.AddrCount(),
		Prefixes:        db.PrefixCount(),
		SnapshotBytes:   len(db.Bytes()),
		OpenMillis:      openMillis,
		LookupRequests:  len(latencies),
		LookupP50Micros: quantile(0.50),
		LookupP99Micros: quantile(0.99),
		LookupQPS:       float64(len(latencies)) / lookupWall,
		BulkBatch:       bulkBatch,
		BulkAddrsPerSec: float64(bulkBatch*bulkRounds) / bulkWall,
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*serveBenchOut, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: %d addrs, lookup p50 %.0fus p99 %.0fus (%.0f qps), bulk %.0f addrs/sec, open %.1fms\n",
		*serveBenchOut, out.Addrs, out.LookupP50Micros, out.LookupP99Micros,
		out.LookupQPS, out.BulkAddrsPerSec, out.OpenMillis)

	if out.LookupP99Micros > 50_000 {
		t.Errorf("lookup p99 %.0fus above the 50ms acceptance ceiling", out.LookupP99Micros)
	}
	if out.BulkAddrsPerSec < 10_000 {
		t.Errorf("bulk throughput %.0f addrs/sec below the 10k floor", out.BulkAddrsPerSec)
	}
}

// BenchmarkServeLookup measures one loopback point lookup end to end.
func BenchmarkServeLookup(b *testing.B) {
	ts, st, _ := serveBenchWorld(b)
	probes := benchProbeAddrs(st.Current(), 1024)
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/v1/lookup?addr=" + probes[i%len(probes)].String())
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkSnapshotOpen measures the per-swap cost of validating and
// indexing a published snapshot image.
func BenchmarkSnapshotOpen(b *testing.B) {
	_, st, dbPath := serveBenchWorld(b)
	_ = st
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hitlistdb.Open(dbPath); err != nil {
			b.Fatal(err)
		}
	}
}
