package hitlist

import (
	"context"
	"strings"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
	"seedscan/internal/world"
)

func buildEnv(t testing.TB) (*world.World, *scanner.Scanner, map[seeds.Source]*seeds.Dataset) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.2})
	w.SetEpoch(world.ScanEpoch)
	return w, scanner.New(w.Link(), scanner.WithSecret(3)), srcs
}

func TestNewRequiresProber(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("nil prober accepted")
	}
	if _, err := New(WithSeed(1), WithTelemetry(telemetry.NewRegistry())); err == nil {
		t.Fatal("option set without prober accepted")
	}
}

func TestBuildRequiresSources(t *testing.T) {
	_, sc, _ := buildEnv(t)
	svc, err := New(WithProber(sc), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Build(); err == nil {
		t.Fatal("zero-source build accepted")
	}
}

// TestBuildEmptyInput pins the empty-build contract: sources with zero
// addresses produce a valid empty snapshot, and Summary and
// ResponsiveFraction stay finite instead of dividing by zero.
func TestBuildEmptyInput(t *testing.T) {
	_, sc, _ := buildEnv(t)
	svc, err := New(WithProber(sc), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(seeds.NewDataset("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Input != 0 || snap.Responsive.Len() != 0 || snap.AliasedAddrs != 0 {
		t.Fatalf("empty build produced %+v", snap)
	}
	if f := snap.ResponsiveFraction(); f != 0 {
		t.Fatalf("ResponsiveFraction on empty build = %v, want 0", f)
	}
	if sum := snap.Summary(); !strings.Contains(sum, "0 input") {
		t.Fatalf("Summary on empty build: %q", sum)
	}
	for _, p := range proto.All {
		if snap.PerProtocol[p].Len() != 0 {
			t.Fatalf("%v set non-empty on empty build", p)
		}
	}
}

// TestZeroSnapshotIsReadable pins that a zero-value Snapshot (as a decoder
// might leave one) renders without panicking: nil sets read as empty.
func TestZeroSnapshotIsReadable(t *testing.T) {
	var snap Snapshot
	if f := snap.ResponsiveFraction(); f != 0 {
		t.Fatalf("zero snapshot fraction = %v", f)
	}
	if sum := snap.Summary(); !strings.Contains(sum, "hitlist build") {
		t.Fatalf("zero snapshot summary = %q", sum)
	}
	if n := snap.ResponsiveDataset().Len(); n != 0 {
		t.Fatalf("zero snapshot dataset has %d addrs", n)
	}
}

func TestBuildPipeline(t *testing.T) {
	w, sc, srcs := buildEnv(t)
	svc, err := New(WithProber(sc), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceAddrMiner], srcs[seeds.SourceScamper])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Input == 0 || snap.Responsive.Len() == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	// AddrMiner pollution guarantees aliased discards.
	if snap.AliasedAddrs == 0 || len(snap.AliasedPrefixes) == 0 {
		t.Fatal("no aliases filtered")
	}
	// Published prefixes must cover genuinely aliased space.
	for _, p := range snap.AliasedPrefixes[:min(5, len(snap.AliasedPrefixes))] {
		if !w.IsAliased(p.Addr().AddLo(12345)) {
			t.Fatalf("published prefix %v is not aliased ground truth", p)
		}
	}
	// Responsive addresses answer on at least one protocol.
	checked := 0
	snap.Responsive.Each(func(a ipaddr.Addr) {
		if checked >= 100 {
			return
		}
		checked++
		if !w.ActiveOnAny(a, world.ScanEpoch) {
			t.Errorf("published %v not actually responsive", a)
		}
	})
	// Per-protocol subsets stay within the responsive set.
	for _, p := range proto.All {
		if snap.PerProtocol[p].Diff(snap.Responsive).Len() != 0 {
			t.Fatalf("%v subset escapes responsive set", p)
		}
	}
	if f := snap.ResponsiveFraction(); f <= 0 || f > 1 {
		t.Fatalf("responsive fraction = %v", f)
	}
	if !strings.Contains(snap.Summary(), "hitlist build") {
		t.Fatal("summary wrong")
	}
}

// TestConfigAdapterMatchesOptions pins the deprecated NewWithConfig
// adapter: a Config-built service must produce the identical snapshot to
// the equivalent option-built one.
func TestConfigAdapterMatchesOptions(t *testing.T) {
	w, sc, srcs := buildEnv(t)
	known := alias.NewOfflineList(w.AliasedPrefixes())
	oldSvc, err := NewWithConfig(Config{Prober: sc, KnownAliases: known, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	newSvc, err := New(WithProber(sc), WithKnownAliases(known), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	oldSnap, err := oldSvc.Build(srcs[seeds.SourceHitlist])
	if err != nil {
		t.Fatal(err)
	}
	newSnap, err := newSvc.Build(srcs[seeds.SourceHitlist])
	if err != nil {
		t.Fatal(err)
	}
	if oldSnap.Input != newSnap.Input ||
		oldSnap.AliasedAddrs != newSnap.AliasedAddrs ||
		oldSnap.Responsive.Len() != newSnap.Responsive.Len() ||
		len(oldSnap.AliasedPrefixes) != len(newSnap.AliasedPrefixes) {
		t.Fatalf("adapter diverges from options:\n old %s\n new %s", oldSnap.Summary(), newSnap.Summary())
	}
	if _, err := NewWithConfig(Config{}); err == nil {
		t.Fatal("adapter accepted nil prober")
	}
}

func TestBuildContextCancellation(t *testing.T) {
	_, sc, srcs := buildEnv(t)
	svc, err := New(WithProber(sc), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.BuildContext(ctx, srcs[seeds.SourceHitlist]); err == nil {
		t.Fatal("cancelled build returned a snapshot")
	} else if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBuildTelemetry(t *testing.T) {
	_, sc, srcs := buildEnv(t)
	reg := telemetry.NewRegistry()
	svc, err := New(WithProber(sc), WithSeed(1), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist])
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("hitlist.builds").Load(); n != 1 {
		t.Fatalf("hitlist.builds = %d", n)
	}
	if n := reg.Counter("hitlist.responsive_addrs").Load(); n != int64(snap.Responsive.Len()) {
		t.Fatalf("hitlist.responsive_addrs = %d, want %d", n, snap.Responsive.Len())
	}
	if reg.Histogram("hitlist.build.seconds").Stats().Count != 1 {
		t.Fatal("build duration not observed")
	}
}

func TestKnownAliasesSaveProbes(t *testing.T) {
	w, sc, srcs := buildEnv(t)
	known := alias.NewOfflineList(w.AliasedPrefixes())

	build := func(list *alias.OfflineList) int64 {
		before := sc.Stats().PacketsSent.Load()
		svc, err := New(WithProber(sc), WithKnownAliases(list), WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Build(srcs[seeds.SourceAddrMiner]); err != nil {
			t.Fatal(err)
		}
		return sc.Stats().PacketsSent.Load() - before
	}
	withList := build(known)
	withoutList := build(nil)
	if withList >= withoutList {
		t.Fatalf("known aliases did not save probes: %d vs %d", withList, withoutList)
	}
}

func TestStalenessAcrossEpochs(t *testing.T) {
	// Build at the collection epoch, then advance the clock: churn makes
	// part of the published list stale — §6.2's 16% phenomenon.
	w, sc, srcs := buildEnv(t)
	w.SetEpoch(world.CollectEpoch)
	svc, err := New(WithProber(sc), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceRIPEAtlas])
	if err != nil {
		t.Fatal(err)
	}
	w.SetEpoch(world.ScanEpoch)
	stale := 0
	snap.Responsive.Each(func(a ipaddr.Addr) {
		if !w.ActiveOnAny(a, world.ScanEpoch) {
			stale++
		}
	})
	frac := float64(stale) / float64(snap.Responsive.Len())
	if frac <= 0 {
		t.Fatal("no staleness across epochs")
	}
	if frac > 0.5 {
		t.Fatalf("staleness %.2f implausibly high", frac)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
