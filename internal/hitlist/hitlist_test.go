package hitlist

import (
	"strings"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/world"
)

func buildEnv(t testing.TB) (*world.World, *scanner.Scanner, map[seeds.Source]*seeds.Dataset) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.2})
	w.SetEpoch(world.ScanEpoch)
	return w, scanner.New(w.Link(), scanner.WithSecret(3)), srcs
}

func TestNewRequiresProber(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil prober accepted")
	}
}

func TestBuildRequiresSources(t *testing.T) {
	_, sc, _ := buildEnv(t)
	svc, err := New(Config{Prober: sc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Build(); err == nil {
		t.Fatal("empty build accepted")
	}
}

func TestBuildPipeline(t *testing.T) {
	w, sc, srcs := buildEnv(t)
	svc, err := New(Config{Prober: sc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceAddrMiner], srcs[seeds.SourceScamper])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Input == 0 || snap.Responsive.Len() == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	// AddrMiner pollution guarantees aliased discards.
	if snap.AliasedAddrs == 0 || len(snap.AliasedPrefixes) == 0 {
		t.Fatal("no aliases filtered")
	}
	// Published prefixes must cover genuinely aliased space.
	for _, p := range snap.AliasedPrefixes[:min(5, len(snap.AliasedPrefixes))] {
		if !w.IsAliased(p.Addr().AddLo(12345)) {
			t.Fatalf("published prefix %v is not aliased ground truth", p)
		}
	}
	// Responsive addresses answer on at least one protocol.
	checked := 0
	snap.Responsive.Each(func(a ipaddr.Addr) {
		if checked >= 100 {
			return
		}
		checked++
		if !w.ActiveOnAny(a, world.ScanEpoch) {
			t.Errorf("published %v not actually responsive", a)
		}
	})
	// Per-protocol subsets stay within the responsive set.
	for _, p := range proto.All {
		if snap.PerProtocol[p].Diff(snap.Responsive).Len() != 0 {
			t.Fatalf("%v subset escapes responsive set", p)
		}
	}
	if f := snap.ResponsiveFraction(); f <= 0 || f > 1 {
		t.Fatalf("responsive fraction = %v", f)
	}
	if !strings.Contains(snap.Summary(), "hitlist build") {
		t.Fatal("summary wrong")
	}
}

func TestKnownAliasesSaveProbes(t *testing.T) {
	w, sc, srcs := buildEnv(t)
	known := alias.NewOfflineList(w.AliasedPrefixes())

	build := func(list *alias.OfflineList) int64 {
		before := sc.Stats().PacketsSent.Load()
		svc, err := New(Config{Prober: sc, KnownAliases: list, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Build(srcs[seeds.SourceAddrMiner]); err != nil {
			t.Fatal(err)
		}
		return sc.Stats().PacketsSent.Load() - before
	}
	withList := build(known)
	withoutList := build(nil)
	if withList >= withoutList {
		t.Fatalf("known aliases did not save probes: %d vs %d", withList, withoutList)
	}
}

func TestStalenessAcrossEpochs(t *testing.T) {
	// Build at the collection epoch, then advance the clock: churn makes
	// part of the published list stale — §6.2's 16% phenomenon.
	w, sc, srcs := buildEnv(t)
	w.SetEpoch(world.CollectEpoch)
	svc, err := New(Config{Prober: sc, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceRIPEAtlas])
	if err != nil {
		t.Fatal(err)
	}
	w.SetEpoch(world.ScanEpoch)
	stale := 0
	snap.Responsive.Each(func(a ipaddr.Addr) {
		if !w.ActiveOnAny(a, world.ScanEpoch) {
			stale++
		}
	})
	frac := float64(stale) / float64(snap.Responsive.Len())
	if frac <= 0 {
		t.Fatal("no staleness across epochs")
	}
	if frac > 0.5 {
		t.Fatalf("staleness %.2f implausibly high", frac)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
