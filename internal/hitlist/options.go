package hitlist

import (
	"seedscan/internal/alias"
	"seedscan/internal/telemetry"
)

// Option configures a Service at construction time, following the same
// functional-options convention as scanner.New: every setting is explicit,
// defaults are pinned in defaultSettings, and the old Config struct
// survives only as a deprecated adapter.
type Option func(*settings)

// settings is the resolved configuration an option set produces.
type settings struct {
	prober Prober
	known  *alias.OfflineList
	seed   uint64
	tele   *telemetry.Registry
}

// defaultSettings returns the pinned defaults: no known-alias list, seed 0,
// no telemetry. The prober has no default — New rejects a nil prober.
func defaultSettings() settings {
	return settings{}
}

// WithProber sets the scanning dependency used to verify responsiveness
// and to power the online alias test. Required.
func WithProber(p Prober) Option {
	return func(s *settings) { s.prober = p }
}

// WithKnownAliases seeds the offline tier of the alias filter. A nil list
// is accepted and leaves the offline tier empty.
func WithKnownAliases(list *alias.OfflineList) Option {
	return func(s *settings) { s.known = list }
}

// WithSeed keys the online dealiaser's probe generation.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithTelemetry wires a metrics registry into the service: build counters,
// per-stage histograms, and the dealiaser's alias.* counters. A nil
// registry is accepted and leaves telemetry off.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *settings) { s.tele = reg }
}

// Config assembles a Service.
//
// Deprecated: use New with functional options (WithProber, WithKnownAliases,
// WithSeed, WithTelemetry). Config remains only as an adapter for old call
// sites, mirroring scanner.Config.
type Config struct {
	// Prober verifies responsiveness and powers the online alias test.
	Prober Prober
	// KnownAliases seeds the alias filter (may be nil).
	KnownAliases *alias.OfflineList
	// Seed keys the online dealiaser's probe generation.
	Seed uint64
}

// Options converts the legacy Config to the equivalent option list.
func (c Config) Options() []Option {
	opts := []Option{WithProber(c.Prober), WithSeed(c.Seed)}
	if c.KnownAliases != nil {
		opts = append(opts, WithKnownAliases(c.KnownAliases))
	}
	return opts
}

// NewWithConfig builds a Service from the legacy Config struct.
//
// Deprecated: use New with functional options.
func NewWithConfig(cfg Config) (*Service, error) {
	return New(cfg.Options()...)
}
