// Package hitlist implements an IPv6 Hitlist service in the style of
// Gasser et al.: it aggregates seed sources, deduplicates, filters known
// aliases, verifies responsiveness per protocol, runs the online alias
// test over the responsive remainder, and publishes three artifacts — the
// responsive address list, the per-protocol breakdowns, and the aliased
// prefix list.
//
// The paper both consumes the real service's outputs (seeds, offline
// alias list) and criticizes their staleness (§6.2: 16% of the published
// "responsive" list no longer answers). This package closes the loop:
// seedscan can regenerate hitlist-style artifacts from any world, and the
// staleness phenomenon reappears whenever the world's epoch advances
// between builds.
//
// Snapshots are served on disk by internal/hitlistdb and over HTTP by
// internal/serve; a build is published with hitlistdb.Store.Publish.
package hitlist

import (
	"context"
	"fmt"
	"sort"
	"time"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
)

// Prober is the scanning dependency (satisfied by *scanner.Scanner) — an
// alias of the shared scanner.Prober definition.
type Prober = scanner.Prober

// ContextProber is the cancellable prober variant. When the configured
// Prober also implements it (as *scanner.Scanner does), BuildContext scans
// through it so cancellation lands mid-scan instead of only between
// pipeline stages.
type ContextProber = scanner.ContextProber

// Snapshot is one published hitlist build.
type Snapshot struct {
	// BuiltAt records the build time (informational).
	BuiltAt time.Time
	// Epoch is the world epoch the build scanned at. Batch builds leave it
	// zero; the longitudinal daemon stamps each epoch's publish so serving
	// staleness is visible all the way to /v1/healthz.
	Epoch int
	// Input is the number of unique input addresses.
	Input int
	// Responsive lists addresses answering on at least one protocol,
	// dealiased.
	Responsive *ipaddr.Set
	// PerProtocol breaks the responsive set down by protocol.
	PerProtocol [proto.Count]*ipaddr.Set
	// AliasedPrefixes is the /96 (or coarser, from the known list) alias
	// set discovered during the build — the publishable offline list.
	AliasedPrefixes []ipaddr.Prefix
	// AliasedAddrs counts input addresses discarded as aliased.
	AliasedAddrs int
}

// Service builds hitlist snapshots.
type Service struct {
	set settings
}

// New returns a Service configured by opts. A prober (WithProber) is
// required.
func New(opts ...Option) (*Service, error) {
	set := defaultSettings()
	for _, o := range opts {
		o(&set)
	}
	if set.prober == nil {
		return nil, fmt.Errorf("hitlist: prober required")
	}
	return &Service{set: set}, nil
}

// Build runs the full pipeline over the given source datasets. It is the
// context-free wrapper for BuildContext.
func (s *Service) Build(sources ...*seeds.Dataset) (*Snapshot, error) {
	return s.BuildContext(context.Background(), sources...)
}

// BuildContext runs the full pipeline over the given source datasets:
// aggregate, dealias (two-tier), verify responsiveness per protocol, and
// publish the aliased-prefix artifact. Cancelling ctx stops the build at
// the next stage boundary (or mid-scan when the prober implements
// ContextProber) and returns ctx's error; no partial snapshot is returned.
//
// Sources may be empty datasets: the result is a valid, empty snapshot.
// Calling with no sources at all is an error — it is almost always a bug
// at the call site.
func (s *Service) BuildContext(ctx context.Context, sources ...*seeds.Dataset) (*Snapshot, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("hitlist: no input sources")
	}
	ctx, span := telemetry.StartSpan(ctx, "hitlist.build", telemetry.Attrs{"sources": len(sources)})
	defer span.End()
	timer := s.set.tele.StartTimer("hitlist.build.seconds")
	defer timer.Stop()

	// 1. Aggregate and deduplicate.
	input := ipaddr.NewSet()
	for _, src := range sources {
		input.AddSet(src.Addrs)
	}
	s.set.tele.Counter("hitlist.builds").Inc()
	s.set.tele.Counter("hitlist.input_addrs").Add(int64(input.Len()))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 2. Two-tier dealiasing over the whole input.
	dspan := span.Child("hitlist.dealias", nil)
	d := alias.New(alias.ModeJoint, s.set.known, s.set.prober, proto.ICMP, s.set.seed)
	d.SetTelemetry(s.set.tele)
	clean, aliased := d.Split(input.Slice())
	dspan.EndWith(telemetry.Attrs{"clean": len(clean), "aliased": len(aliased)})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	snap := &Snapshot{
		BuiltAt:      time.Now(),
		Input:        input.Len(),
		Responsive:   ipaddr.NewSet(),
		AliasedAddrs: len(aliased),
	}

	// 3. Verify responsiveness per protocol.
	for _, p := range proto.All {
		vspan := span.Child("hitlist.verify", telemetry.Attrs{"proto": p.String()})
		active, err := s.scanActive(ctx, clean, p)
		if err != nil {
			vspan.End()
			return nil, err
		}
		set := ipaddr.NewSet(active...)
		snap.PerProtocol[p] = set
		snap.Responsive.AddSet(set)
		vspan.EndWith(telemetry.Attrs{"active": set.Len()})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	s.set.tele.Counter("hitlist.responsive_addrs").Add(int64(snap.Responsive.Len()))
	s.set.tele.Counter("hitlist.aliased_addrs").Add(int64(snap.AliasedAddrs))

	// 4. Publish the aliased prefixes: every /96 the online test flagged
	// plus the known list's contribution, deduplicated and sorted.
	prefixSet := make(map[ipaddr.Prefix]struct{})
	for _, a := range aliased {
		prefixSet[ipaddr.PrefixFrom(a, alias.AliasPrefixBits)] = struct{}{}
	}
	snap.AliasedPrefixes = make([]ipaddr.Prefix, 0, len(prefixSet))
	for p := range prefixSet {
		snap.AliasedPrefixes = append(snap.AliasedPrefixes, p)
	}
	SortPrefixes(snap.AliasedPrefixes)
	s.set.tele.Counter("hitlist.aliased_prefixes").Add(int64(len(snap.AliasedPrefixes)))
	return snap, nil
}

// scanActive verifies one protocol, through the cancellable path when the
// prober offers one. The target slice is copied because scanners shuffle
// their input plan in place.
func (s *Service) scanActive(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]ipaddr.Addr, error) {
	dup := append([]ipaddr.Addr(nil), targets...)
	if cp, ok := s.set.prober.(ContextProber); ok {
		return cp.ScanActiveContext(ctx, dup, p)
	}
	return s.set.prober.ScanActive(dup, p), nil
}

// SortPrefixes sorts prefixes by (base address, bits) — the canonical
// published order of the aliased-prefix artifact.
func SortPrefixes(prefixes []ipaddr.Prefix) {
	sort.Slice(prefixes, func(i, j int) bool {
		a, b := prefixes[i], prefixes[j]
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
}

// ResponsiveDataset exports the responsive list as a named dataset (for
// file output or as TGA seeds).
func (s *Snapshot) ResponsiveDataset() *seeds.Dataset {
	set := s.Responsive
	if set == nil {
		set = ipaddr.NewSet()
	}
	return seeds.FromSet("hitlist-responsive", set)
}

// ResponsiveFraction reports what share of the (dealiased) input was
// responsive — the freshness figure §6.2 puts at 84% for the real
// service. An empty build (no input, or everything aliased) reports 0
// rather than dividing by zero.
func (s *Snapshot) ResponsiveFraction() float64 {
	clean := s.Input - s.AliasedAddrs
	if clean <= 0 {
		return 0
	}
	return float64(s.Responsive.Len()) / float64(clean)
}

// Summary renders a one-build report. It is safe on an empty or zero-value
// snapshot (nil sets read as empty).
func (s *Snapshot) Summary() string {
	out := fmt.Sprintf("hitlist build: %d input, %d aliased discarded (%d prefixes), %d responsive (%.1f%% of clean)\n",
		s.Input, s.AliasedAddrs, len(s.AliasedPrefixes), s.Responsive.Len(), 100*s.ResponsiveFraction())
	for _, p := range proto.All {
		out += fmt.Sprintf("  %-7s %d\n", p, s.PerProtocol[p].Len())
	}
	return out
}
