// Package hitlist implements an IPv6 Hitlist service in the style of
// Gasser et al.: it aggregates seed sources, deduplicates, filters known
// aliases, verifies responsiveness per protocol, runs the online alias
// test over the responsive remainder, and publishes three artifacts — the
// responsive address list, the per-protocol breakdowns, and the aliased
// prefix list.
//
// The paper both consumes the real service's outputs (seeds, offline
// alias list) and criticizes their staleness (§6.2: 16% of the published
// "responsive" list no longer answers). This package closes the loop:
// seedscan can regenerate hitlist-style artifacts from any world, and the
// staleness phenomenon reappears whenever the world's epoch advances
// between builds.
package hitlist

import (
	"fmt"
	"sort"
	"time"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
)

// Prober is the scanning dependency (satisfied by *scanner.Scanner).
type Prober interface {
	ScanActive(targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr
}

// Config assembles a Service.
type Config struct {
	// Prober verifies responsiveness and powers the online alias test.
	Prober Prober
	// KnownAliases seeds the alias filter (may be nil).
	KnownAliases *alias.OfflineList
	// Seed keys the online dealiaser's probe generation.
	Seed uint64
}

// Snapshot is one published hitlist build.
type Snapshot struct {
	// BuiltAt records the build time (informational).
	BuiltAt time.Time
	// Input is the number of unique input addresses.
	Input int
	// Responsive lists addresses answering on at least one protocol,
	// dealiased.
	Responsive *ipaddr.Set
	// PerProtocol breaks the responsive set down by protocol.
	PerProtocol [proto.Count]*ipaddr.Set
	// AliasedPrefixes is the /96 (or coarser, from the known list) alias
	// set discovered during the build — the publishable offline list.
	AliasedPrefixes []ipaddr.Prefix
	// AliasedAddrs counts input addresses discarded as aliased.
	AliasedAddrs int
}

// Service builds hitlist snapshots.
type Service struct {
	cfg Config
}

// New returns a Service. Prober must be non-nil.
func New(cfg Config) (*Service, error) {
	if cfg.Prober == nil {
		return nil, fmt.Errorf("hitlist: prober required")
	}
	return &Service{cfg: cfg}, nil
}

// Build runs the full pipeline over the given source datasets.
func (s *Service) Build(sources ...*seeds.Dataset) (*Snapshot, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("hitlist: no input sources")
	}
	// 1. Aggregate and deduplicate.
	input := ipaddr.NewSet()
	for _, src := range sources {
		input.AddSet(src.Addrs)
	}

	// 2. Two-tier dealiasing over the whole input.
	d := alias.New(alias.ModeJoint, s.cfg.KnownAliases, s.cfg.Prober, proto.ICMP, s.cfg.Seed)
	clean, aliased := d.Split(input.Slice())

	snap := &Snapshot{
		BuiltAt:      time.Now(),
		Input:        input.Len(),
		Responsive:   ipaddr.NewSet(),
		AliasedAddrs: len(aliased),
	}

	// 3. Verify responsiveness per protocol.
	for _, p := range proto.All {
		active := s.cfg.Prober.ScanActive(append([]ipaddr.Addr(nil), clean...), p)
		set := ipaddr.NewSet(active...)
		snap.PerProtocol[p] = set
		snap.Responsive.AddSet(set)
	}

	// 4. Publish the aliased prefixes: every /96 the online test flagged
	// plus the known list's contribution, deduplicated and sorted.
	prefixSet := make(map[ipaddr.Prefix]struct{})
	for _, a := range aliased {
		prefixSet[ipaddr.PrefixFrom(a, alias.AliasPrefixBits)] = struct{}{}
	}
	snap.AliasedPrefixes = make([]ipaddr.Prefix, 0, len(prefixSet))
	for p := range prefixSet {
		snap.AliasedPrefixes = append(snap.AliasedPrefixes, p)
	}
	sort.Slice(snap.AliasedPrefixes, func(i, j int) bool {
		a, b := snap.AliasedPrefixes[i], snap.AliasedPrefixes[j]
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	return snap, nil
}

// ResponsiveDataset exports the responsive list as a named dataset (for
// file output or as TGA seeds).
func (s *Snapshot) ResponsiveDataset() *seeds.Dataset {
	return seeds.FromSet("hitlist-responsive", s.Responsive)
}

// ResponsiveFraction reports what share of the (dealiased) input was
// responsive — the freshness figure §6.2 puts at 84% for the real
// service.
func (s *Snapshot) ResponsiveFraction() float64 {
	clean := s.Input - s.AliasedAddrs
	if clean <= 0 {
		return 0
	}
	return float64(s.Responsive.Len()) / float64(clean)
}

// Summary renders a one-build report.
func (s *Snapshot) Summary() string {
	out := fmt.Sprintf("hitlist build: %d input, %d aliased discarded (%d prefixes), %d responsive (%.1f%% of clean)\n",
		s.Input, s.AliasedAddrs, len(s.AliasedPrefixes), s.Responsive.Len(), 100*s.ResponsiveFraction())
	for _, p := range proto.All {
		out += fmt.Sprintf("  %-7s %d\n", p, s.PerProtocol[p].Len())
	}
	return out
}
