package experiment

import (
	"context"
	"sync"
	"testing"

	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
)

func TestGridPreCancelledContext(t *testing.T) {
	e := testEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gens := []string{"6Tree", "EIP"}

	if _, err := e.RunRQ1aCtx(ctx, []proto.Protocol{proto.ICMP}, gens, 500); err != context.Canceled {
		t.Fatalf("RQ1a err = %v, want context.Canceled", err)
	}
	if _, err := e.RunRQ3Ctx(ctx, []proto.Protocol{proto.ICMP}, gens, nil, 500); err != context.Canceled {
		t.Fatalf("RQ3 err = %v, want context.Canceled", err)
	}
	if _, err := e.RunRawGridCtx(ctx, []proto.Protocol{proto.ICMP}, gens, []string{"All"}, 500); err != context.Canceled {
		t.Fatalf("RawGrid err = %v, want context.Canceled", err)
	}
	if _, err := e.RunCrossPortCtx(ctx, gens, 500); err != context.Canceled {
		t.Fatalf("CrossPort err = %v, want context.Canceled", err)
	}
}

func TestGridCancellationMidRun(t *testing.T) {
	e := testEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	gens := []string{"6Tree", "EIP", "DET", "6Gen"}
	// Cancel as soon as the first run completes; the grid must not start
	// them all.
	started := 0
	var mu sync.Mutex
	err := runParallel(ctx, 1, len(gens), func(ctx context.Context, i int) error {
		mu.Lock()
		started++
		mu.Unlock()
		cancel()
		_, err := e.RunTGACtx(ctx, gens[i], e.Full.Slice(), proto.ICMP, 500)
		return err
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started != 1 {
		t.Fatalf("started = %d runs after cancellation, want 1", started)
	}
}

type memSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (m *memSink) Emit(ev telemetry.Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

func (m *memSink) Close() error { return nil }

// TestEnvTelemetryFlow checks that an Env-level tracer sees grid progress
// events, TGA run spans, and scanner/alias counters from one comparison.
func TestEnvTelemetryFlow(t *testing.T) {
	sink := &memSink{}
	tr := telemetry.NewTracer(nil, sink)
	e := NewEnv(EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 1000, Telemetry: tr})

	gens := []string{"6Tree"}
	if _, err := e.RunRQ1a([]proto.Protocol{proto.ICMP}, gens, 1000); err != nil {
		t.Fatal(err)
	}

	var progress, runSpans int
	for _, ev := range sink.events {
		switch {
		case ev.Type == "progress":
			progress++
			// One progress event per completed grid cell; the comparison has
			// two unique cells (original + changed treatment) per generator.
			if ev.Total != 2*len(gens) {
				t.Fatalf("progress total = %d, want %d", ev.Total, 2*len(gens))
			}
		case ev.Type == "span_start" && ev.Name == "run":
			runSpans++
		}
	}
	if progress == 0 {
		t.Fatal("no progress events")
	}
	if runSpans != 2 {
		t.Fatalf("run spans = %d, want 2 (original + changed)", runSpans)
	}

	snap := tr.Registry().Snapshot()
	if snap.Counters["scanner.probes_sent.ICMP"] == 0 {
		t.Fatal("scanner counters not wired into env registry")
	}
	if snap.Counters["alias.prefixes_tested"] == 0 {
		t.Fatal("alias counters not wired into env registry")
	}
	if snap.Counters["tga.generated"] == 0 {
		t.Fatal("tga counters not wired into env registry")
	}
}
