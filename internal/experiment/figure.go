package experiment

import (
	"fmt"
	"math"
	"strings"

	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// Figures 3-5 are grouped bar charts of Performance Ratios. RenderFigure
// draws them as horizontal ASCII bars so the text output reads like the
// paper's figures: zero in the middle, improvement to the right,
// degradation to the left.

// barWidth is the half-width of a ratio bar in characters.
const barWidth = 24

// barScale is the Performance Ratio magnitude that saturates a bar.
const barScale = 4.0

func ratioBar(v float64) string {
	mag := math.Abs(v) / barScale
	if mag > 1 {
		mag = 1
	}
	n := int(math.Round(mag * barWidth))
	left := strings.Repeat(" ", barWidth)
	right := strings.Repeat(" ", barWidth)
	if v < 0 {
		left = strings.Repeat(" ", barWidth-n) + strings.Repeat("#", n)
	} else if n > 0 {
		right = strings.Repeat("#", n) + strings.Repeat(" ", barWidth-n)
	}
	return left + "|" + right
}

// RenderFigure draws the comparison's hits and ASes Performance Ratios as
// bars per protocol, Figure 3/4/5-style.
func (r *ComparisonResult) RenderFigure() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s vs. %s (Performance Ratio; bar full scale ±%.0f)\n",
		r.Name, r.Changed, r.Original, barScale)
	for _, p := range proto.All {
		rows, ok := r.Ratios[p]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n[%s]%*s-%s 0 +%s\n", p, 10, "",
			strings.Repeat(" ", barWidth-4), strings.Repeat(" ", barWidth-4))
		for _, row := range rows {
			fmt.Fprintf(&sb, "%-8s hits %s %+6.2f\n", row.Generator, ratioBar(row.Hits), row.Hits)
			fmt.Fprintf(&sb, "%-8s ases %s %+6.2f\n", "", ratioBar(row.ASes), row.ASes)
		}
	}
	return sb.String()
}

// RenderCumulativeFigure draws Figure 6's cumulative curves as text bars:
// each generator's share of the combined total.
func (r *RQ4Result) RenderCumulativeFigure(p proto.Protocol) string {
	order, ok := r.HitOrder[p]
	if !ok || len(order) == 0 {
		return ""
	}
	total := order[len(order)-1].Total
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6 (%s): cumulative unique hits, combined total %s\n", p, fmtInt(total))
	for _, c := range order {
		frac := 0.0
		if total > 0 {
			frac = float64(c.Total) / float64(total)
		}
		n := int(frac * 48)
		fmt.Fprintf(&sb, "%-8s %s %5.1f%% (+%s)\n", c.Name,
			strings.Repeat("#", n)+strings.Repeat(".", 48-n), 100*frac, fmtInt(c.New))
	}
	return sb.String()
}

// RatioSummary reduces a set of ratio rows to their mean — handy for
// headlines ("dealiasing buys +1.7 PR on average").
func RatioSummary(rows []metrics.RatioRow) (hits, ases, aliases float64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range rows {
		hits += r.Hits
		ases += r.ASes
		aliases += r.Aliases
	}
	n := float64(len(rows))
	return hits / n, ases / n, aliases / n
}
