package experiment

import (
	"testing"

	"seedscan/internal/cluster"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// TestClusterEnvMatchesSingleScanner runs the same TGA experiment through
// a plain single-scanner environment and a 3-worker clustered one: seed
// preprocessing, generation, scanning, and dealiasing must all land on
// identical results, because the cluster's merged scans are byte-identical
// to the reference scanner's.
func TestClusterEnvMatchesSingleScanner(t *testing.T) {
	cfg := EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 1500}
	single := NewEnv(cfg)
	cfg.ClusterWorkers = 3
	clustered := NewEnv(cfg)

	if _, ok := clustered.Prober.(*cluster.Pool); !ok {
		t.Fatalf("clustered env prober is %T, want *cluster.Pool", clustered.Prober)
	}

	// Seed preprocessing scans through the prober: the derived datasets
	// must agree before any TGA runs.
	sa, sc := single.AllActiveSeeds(), clustered.AllActiveSeeds()
	if sa.Len() != sc.Len() {
		t.Fatalf("All Active seeds: single %d, clustered %d", sa.Len(), sc.Len())
	}
	// Dataset.Slice() order is unspecified (map iteration); feed both runs
	// the same sorted list so any divergence below is the cluster's fault.
	seedsSingle, seedsClustered := sa.Addrs.Sorted(), sc.Addrs.Sorted()
	for i, a := range seedsSingle {
		if b := seedsClustered[i]; a != b {
			t.Fatalf("All Active seed %d: single %v, clustered %v", i, a, b)
		}
	}

	for _, gen := range []string{"6Tree", "EIP"} {
		rs, err := single.RunTGA(gen, seedsSingle, proto.ICMP, 1500)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := clustered.RunTGA(gen, seedsClustered, proto.ICMP, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Outcome != rc.Outcome {
			t.Fatalf("%s outcome: single %+v, clustered %+v", gen, rs.Outcome, rc.Outcome)
		}
		// Hit order is unspecified (map iteration inside generators and
		// the dealiaser — single-scanner runs differ between themselves
		// too), so compare the hit sets.
		hs := ipaddr.NewSet(rs.Run.Hits...).Sorted()
		hc := ipaddr.NewSet(rc.Run.Hits...).Sorted()
		if len(hs) != len(hc) {
			t.Fatalf("%s hits: single %d, clustered %d", gen, len(hs), len(hc))
		}
		for i := range hs {
			if hs[i] != hc[i] {
				t.Fatalf("%s hit %d: single %v, clustered %v", gen, i, hs[i], hc[i])
			}
		}
	}
}
