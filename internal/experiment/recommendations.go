package experiment

import (
	"context"
	"fmt"
	"strings"

	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// RQ5 (§10) distills the study into operational recommendations. This
// harness re-derives each recommendation from a small set of live
// measurements on the current environment, so the printed guidance always
// carries the evidence that produced it.

// Recommendation is one best-practice item with its supporting numbers.
type Recommendation struct {
	Title    string
	Guidance string
	Evidence string
}

// RunRecommendations evaluates the evidence behind each of the paper's
// §10 recommendations on this environment, using the given generators and
// budget for the measurement runs.
func (e *Env) RunRecommendations(gens []string, budget int) ([]Recommendation, error) {
	return e.RunRecommendationsCtx(context.Background(), gens, budget)
}

// RunRecommendationsCtx is RunRecommendations under a context.
func (e *Env) RunRecommendationsCtx(ctx context.Context, gens []string, budget int) ([]Recommendation, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	var out []Recommendation

	// 1. Dealiasing.
	rq1a, err := e.RunRQ1aCtx(ctx, []proto.Protocol{proto.ICMP}, gens, budget)
	if err != nil {
		return nil, err
	}
	meanHits, meanAliases := meanRatios(rq1a.Ratios[proto.ICMP])
	out = append(out, Recommendation{
		Title: "Dealiasing",
		Guidance: "Dealias seed datasets with BOTH the published offline list and " +
			"the online /96 test before generation.",
		Evidence: fmt.Sprintf("joint-dealiased seeds changed ICMP hits by %+.2f PR on average "+
			"and cut generated aliases by %+.2f PR across %d generators", meanHits, meanAliases, len(gens)),
	})

	// 2. Unresponsive addresses.
	rq1b, err := e.RunRQ1bCtx(ctx, []proto.Protocol{proto.ICMP}, gens, budget)
	if err != nil {
		return nil, err
	}
	bHits, _ := meanRatios(rq1b.Ratios[proto.ICMP])
	out = append(out, Recommendation{
		Title:    "Unresponsive Addresses",
		Guidance: "Pre-scan seeds and drop addresses that no longer respond on any protocol.",
		Evidence: fmt.Sprintf("responsive-only seeds changed ICMP hits by %+.2f PR on average", bHits),
	})

	// 3. Port-specific seeds.
	rq2, err := e.RunRQ2Ctx(ctx, []proto.Protocol{proto.TCP443}, gens, budget)
	if err != nil {
		return nil, err
	}
	pHits, pASes := meanRatiosHitsASes(rq2.Ratios[proto.TCP443])
	out = append(out, Recommendation{
		Title: "Port-Specific Seeds",
		Guidance: "Restrict seeds to the scanned port for more application-layer hits, " +
			"but blend ICMP-active seeds back in when network coverage matters.",
		Evidence: fmt.Sprintf("TCP443-specific seeds: hits %+.2f PR but ASes %+.2f PR on average "+
			"— the hits-vs-diversity tradeoff", pHits, pASes),
	})

	// 4. Multiple ports.
	out = append(out, Recommendation{
		Title:    "Ports",
		Guidance: "Evaluate TGAs on multiple ports/protocols; per-port topology differs.",
		Evidence: fmt.Sprintf("seed responsiveness in this environment: ICMP %d, TCP80 %d, TCP443 %d, UDP53 %d",
			e.PortActiveSeeds(proto.ICMP).Len(), e.PortActiveSeeds(proto.TCP80).Len(),
			e.PortActiveSeeds(proto.TCP443).Len(), e.PortActiveSeeds(proto.UDP53).Len()),
	})

	// 5-6. Generator choice and combination.
	rq4, err := e.RunRQ4Ctx(ctx, []proto.Protocol{proto.ICMP}, gens, budget)
	if err != nil {
		return nil, err
	}
	hitOrder := rq4.HitOrder[proto.ICMP]
	asOrder := rq4.ASOrder[proto.ICMP]
	topShare := 0.0
	if total := hitOrder[len(hitOrder)-1].Total; total > 0 {
		topShare = float64(hitOrder[0].New) / float64(total)
	}
	out = append(out, Recommendation{
		Title: "Generators",
		Guidance: "No single TGA wins both metrics; pick per metric " +
			"(hits vs network diversity) or run several.",
		Evidence: fmt.Sprintf("best on hits: %s; best on ASes: %s", hitOrder[0].Name, asOrder[0].Name),
	})
	out = append(out, Recommendation{
		Title:    "Combining Generators",
		Guidance: "Run multiple TGAs and union their output for representative coverage.",
		Evidence: fmt.Sprintf("the top generator alone covers %.0f%% of combined hits (%s of %s); "+
			"each additional TGA adds unique addresses",
			100*topShare, fmtInt(hitOrder[0].New), fmtInt(hitOrder[len(hitOrder)-1].Total)),
	})
	return out, nil
}

func meanRatios(rows []metrics.RatioRow) (hits, aliases float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		hits += r.Hits
		aliases += r.Aliases
	}
	n := float64(len(rows))
	return hits / n, aliases / n
}

func meanRatiosHitsASes(rows []metrics.RatioRow) (hits, ases float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		hits += r.Hits
		ases += r.ASes
	}
	n := float64(len(rows))
	return hits / n, ases / n
}

// RenderRecommendations prints §10's list with evidence.
func RenderRecommendations(recs []Recommendation) string {
	var sb strings.Builder
	sb.WriteString("RQ5 (§10): Recommendations and best practices, with measured evidence\n")
	sb.WriteString(strings.Repeat("-", 70))
	sb.WriteByte('\n')
	for i, r := range recs {
		fmt.Fprintf(&sb, "%d. %s\n   %s\n   evidence: %s\n", i+1, r.Title, r.Guidance, r.Evidence)
	}
	return sb.String()
}
