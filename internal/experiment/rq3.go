package experiment

import (
	"context"

	"seedscan/internal/asdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
	"seedscan/internal/world"
)

// RQ3Result holds the per-source TGA runs behind Tables 5, 6, and 13-15.
type RQ3Result struct {
	Budget  int
	Protos  []proto.Protocol
	Gens    []string
	Sources []seeds.Source
	// Outcome[src][p][gen] is the measured outcome of one run.
	Outcome map[seeds.Source]map[proto.Protocol]map[string]metrics.Outcome
	// Hits[src][p][gen] is the dealiased hit list of that run, kept so the
	// combined analyses (Tables 5-6) can union them.
	Hits map[seeds.Source]map[proto.Protocol]map[string][]ipaddr.Addr
}

// RunRQ3 runs every generator on every source-specific active dataset for
// the given protocols.
func (e *Env) RunRQ3(protos []proto.Protocol, gens []string, sources []seeds.Source, budget int) (*RQ3Result, error) {
	return e.RunRQ3Ctx(context.Background(), protos, gens, sources, budget)
}

// RunRQ3Ctx is RunRQ3 under a context. Sources whose active dataset is
// empty yield zero outcomes without running (the grid executor's skip).
func (e *Env) RunRQ3Ctx(ctx context.Context, protos []proto.Protocol, gens []string, sources []seeds.Source, budget int) (*RQ3Result, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if sources == nil {
		sources = seeds.AllSources
	}
	rs, err := e.Grid().Run(ctx, e.SpecRQ3(protos, gens, sources, budget))
	if err != nil {
		return nil, err
	}
	res := &RQ3Result{
		Budget: budget, Protos: protos, Gens: gens, Sources: sources,
		Outcome: make(map[seeds.Source]map[proto.Protocol]map[string]metrics.Outcome),
		Hits:    make(map[seeds.Source]map[proto.Protocol]map[string][]ipaddr.Addr),
	}
	for _, src := range sources {
		res.Outcome[src] = make(map[proto.Protocol]map[string]metrics.Outcome)
		res.Hits[src] = make(map[proto.Protocol]map[string][]ipaddr.Addr)
		for _, p := range protos {
			res.Outcome[src][p] = make(map[string]metrics.Outcome)
			res.Hits[src][p] = make(map[string][]ipaddr.Addr)
			for _, g := range gens {
				c := rs.Of(e.cell(g, TreatmentSourceActive(src), p, budget, 0))
				res.Outcome[src][p][g] = c.Outcome
				res.Hits[src][p][g] = c.Hits
			}
		}
	}
	return res, nil
}

// Table5Row compares one generator's combined per-source output with one
// big-budget run on the All Active dataset (ICMP).
type Table5Row struct {
	Generator                string
	CombinedHits, BigHits    int
	CombinedASes, BigASes    int
	BigBudget, SourceBudgets int
}

// Table5Result reproduces Table 5.
type Table5Result struct{ Rows []Table5Row }

// RunTable5 reproduces Table 5: the union of each generator's twelve
// source-specific ICMP runs versus one run with a 12× budget on All
// Active. rq3 must contain ICMP runs for every source.
func (e *Env) RunTable5(rq3 *RQ3Result) (*Table5Result, error) {
	return e.RunTable5Ctx(context.Background(), rq3)
}

// RunTable5Ctx is RunTable5 under a context.
func (e *Env) RunTable5Ctx(ctx context.Context, rq3 *RQ3Result) (*Table5Result, error) {
	db := e.World.ASDB()
	bigBudget := rq3.Budget * len(rq3.Sources)
	rs, err := e.Grid().Run(ctx, e.SpecTable5(rq3.Gens, len(rq3.Sources), rq3.Budget))
	if err != nil {
		return nil, err
	}
	res := &Table5Result{}
	for _, g := range rq3.Gens {
		combined := ipaddr.NewSet()
		for _, src := range rq3.Sources {
			combined.AddAll(rq3.Hits[src][proto.ICMP][g])
		}
		combinedAddrs := filterASN(combined.Slice(), db, world.PathologicalASN)

		big := rs.Of(e.cell(g, TreatmentAllActive, proto.ICMP, bigBudget, 0))
		res.Rows = append(res.Rows, Table5Row{
			Generator:     g,
			CombinedHits:  len(combinedAddrs),
			CombinedASes:  db.CountASes(combinedAddrs),
			BigHits:       big.Outcome.Hits,
			BigASes:       big.Outcome.ASes,
			BigBudget:     bigBudget,
			SourceBudgets: rq3.Budget,
		})
	}
	return res, nil
}

func filterASN(addrs []ipaddr.Addr, db *asdb.DB, asn int) []ipaddr.Addr {
	out := addrs[:0:0]
	for _, a := range addrs {
		if got, ok := db.Lookup(a); ok && got == asn {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Render prints Table 5.
func (r *Table5Result) Render() string {
	t := &Table{
		Title:  "Table 5: Combined per-source ICMP output vs. one big-budget All Active run",
		Header: []string{"Generator", "Hits(Combined)", "Hits(Big)", "ASes(Combined)", "ASes(Big)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Generator, fmtInt(row.CombinedHits), fmtInt(row.BigHits),
			fmtInt(row.CombinedASes), fmtInt(row.BigASes))
	}
	return t.String()
}

// Table6Cell is one (source, protocol) cell of Table 6: the top ASes among
// the combined discovered actives of all generators, with organization
// labels, plus the total AS count.
type Table6Cell struct {
	Top   []asdb.ASCount
	Total int
}

// Table6Result reproduces Table 6.
type Table6Result struct {
	Sources []seeds.Source
	Protos  []proto.Protocol
	Cells   map[seeds.Source]map[proto.Protocol]Table6Cell
}

// Table6 derives the AS characterization from RQ3's runs.
func (e *Env) Table6(rq3 *RQ3Result, topN int) *Table6Result {
	db := e.World.ASDB()
	res := &Table6Result{
		Sources: rq3.Sources, Protos: rq3.Protos,
		Cells: make(map[seeds.Source]map[proto.Protocol]Table6Cell),
	}
	for _, src := range rq3.Sources {
		res.Cells[src] = make(map[proto.Protocol]Table6Cell)
		for _, p := range rq3.Protos {
			combined := ipaddr.NewSet()
			for _, g := range rq3.Gens {
				combined.AddAll(rq3.Hits[src][p][g])
			}
			addrs := combined.Slice()
			if p == proto.ICMP {
				addrs = filterASN(addrs, db, world.PathologicalASN)
			}
			top := db.TopASes(addrs)
			cell := Table6Cell{Total: len(db.ASSet(addrs))}
			if len(top) > topN {
				top = top[:topN]
			}
			cell.Top = top
			res.Cells[src][p] = cell
		}
	}
	return res
}

// Render prints Table 6.
func (r *Table6Result) Render() string {
	out := ""
	for _, p := range r.Protos {
		t := &Table{
			Title:  "Table 6 (" + p.String() + "): top ASes and total ASes per source",
			Header: []string{"Source", "1st", "2nd", "3rd", "Total"},
		}
		for _, src := range r.Sources {
			cell := r.Cells[src][p]
			cols := make([]string, 3)
			for i := range cols {
				if i < len(cell.Top) {
					tc := cell.Top[i]
					cols[i] = fmtPct(tc.Share) + " " + tc.AS.Type.String()
				} else {
					cols[i] = "-"
				}
			}
			t.AddRow(src.String(), cols[0], cols[1], cols[2], fmtInt(cell.Total))
		}
		out += t.String() + "\n"
	}
	return out
}

// RenderRaw prints Tables 13-15: raw hits and ASes per source × generator
// for one protocol.
func (r *RQ3Result) RenderRaw(p proto.Protocol) string {
	hits := &Table{
		Title:  "Raw Hits per source (" + p.String() + ") — Tables 13/14",
		Header: append([]string{"Dataset"}, r.Gens...),
	}
	ases := &Table{
		Title:  "Raw ASes per source (" + p.String() + ") — Tables 13/15",
		Header: append([]string{"Dataset"}, r.Gens...),
	}
	for _, src := range r.Sources {
		hr := []string{src.String()}
		ar := []string{src.String()}
		for _, g := range r.Gens {
			o := r.Outcome[src][p][g]
			hr = append(hr, fmtInt(o.Hits))
			ar = append(ar, fmtInt(o.ASes))
		}
		hits.AddRow(hr...)
		ases.AddRow(ar...)
	}
	return hits.String() + "\n" + ases.String()
}
