package experiment

import (
	"strings"
	"testing"

	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

func TestRatioBarShapes(t *testing.T) {
	zero := ratioBar(0)
	if len(zero) != 2*barWidth+1 || strings.Contains(zero, "#") {
		t.Fatalf("zero bar = %q", zero)
	}
	pos := ratioBar(barScale)
	if !strings.HasSuffix(strings.TrimRight(pos, " "), "#") || strings.Contains(pos[:barWidth], "#") {
		t.Fatalf("positive bar = %q", pos)
	}
	neg := ratioBar(-barScale)
	if !strings.Contains(neg[:barWidth], "#") || strings.Contains(neg[barWidth+1:], "#") {
		t.Fatalf("negative bar = %q", neg)
	}
	// Saturation.
	if ratioBar(100) != ratioBar(barScale) {
		t.Fatal("positive saturation broken")
	}
}

func TestRenderFigure(t *testing.T) {
	r := &ComparisonResult{
		Name: "RQ-test", Original: "A", Changed: "B",
		Ratios: map[proto.Protocol][]metrics.RatioRow{
			proto.ICMP: {{Generator: "6Tree", Hits: 1.5, ASes: -0.5}},
		},
		Raw: map[proto.Protocol]map[string][2]metrics.Outcome{},
	}
	out := r.RenderFigure()
	if !strings.Contains(out, "6Tree") || !strings.Contains(out, "#") {
		t.Fatalf("figure render:\n%s", out)
	}
}

func TestRenderCumulativeFigure(t *testing.T) {
	r := &RQ4Result{
		HitOrder: map[proto.Protocol][]metrics.Contribution{
			proto.ICMP: {
				{Name: "6Sense", New: 60, Total: 60},
				{Name: "6Tree", New: 40, Total: 100},
			},
		},
	}
	out := r.RenderCumulativeFigure(proto.ICMP)
	if !strings.Contains(out, "6Sense") || !strings.Contains(out, "100.0%") {
		t.Fatalf("cumulative figure:\n%s", out)
	}
	if (&RQ4Result{HitOrder: map[proto.Protocol][]metrics.Contribution{}}).RenderCumulativeFigure(proto.ICMP) != "" {
		t.Fatal("missing protocol should render empty")
	}
}

func TestRatioSummary(t *testing.T) {
	rows := []metrics.RatioRow{
		{Hits: 1, ASes: 2, Aliases: -1},
		{Hits: 3, ASes: 0, Aliases: -1},
	}
	h, a, al := RatioSummary(rows)
	if h != 2 || a != 1 || al != -1 {
		t.Fatalf("summary = %v %v %v", h, a, al)
	}
	if h, _, _ := RatioSummary(nil); h != 0 {
		t.Fatal("empty summary nonzero")
	}
}
