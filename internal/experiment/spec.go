package experiment

import (
	"fmt"
	"strings"

	"seedscan/internal/alias"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
)

// The symbolic treatment vocabulary. Treatments are the grid's seed-axis
// keys: pure names here, resolved to address lists only when a cell
// executes, so specs (and `experiments -list-cells`) enumerate without
// scanning.
const (
	// TreatmentFull is the full collected dataset (Table 2's "All").
	TreatmentFull grid.Treatment = "full"
	// TreatmentAllActive is RQ1.b's joint-dealiased responsive-on-any-
	// protocol dataset.
	TreatmentAllActive grid.Treatment = "all-active"
)

// TreatmentDealiased names the full dataset under one of Table 2's
// dealiasing treatments.
func TreatmentDealiased(m alias.Mode) grid.Treatment {
	return grid.Treatment("dealiased:" + m.String())
}

// TreatmentPortActive names RQ2's port-specific dataset.
func TreatmentPortActive(p proto.Protocol) grid.Treatment {
	return grid.Treatment("port-active:" + p.String())
}

// TreatmentSourceActive names RQ3's per-source active dataset.
func TreatmentSourceActive(src seeds.Source) grid.Treatment {
	return grid.Treatment("source-active:" + src.String())
}

// TreatmentSeeds resolves a treatment to its canonical (sorted) seed
// list, building and caching the underlying dataset on first use. Safe
// for concurrent cold calls — every cache on the resolution path is
// per-key singleflight.
func (e *Env) TreatmentSeeds(t grid.Treatment) ([]ipaddr.Addr, error) {
	s := string(t)
	switch {
	case t == TreatmentFull:
		return e.Full.SortedSlice(), nil
	case t == TreatmentAllActive:
		return e.AllActiveSeeds().SortedSlice(), nil
	case strings.HasPrefix(s, "dealiased:"):
		rest := strings.TrimPrefix(s, "dealiased:")
		for _, m := range alias.Modes {
			if m.String() == rest {
				return e.DealiasedSeeds(m).SortedSlice(), nil
			}
		}
	case strings.HasPrefix(s, "port-active:"):
		rest := strings.TrimPrefix(s, "port-active:")
		for _, p := range proto.All {
			if p.String() == rest {
				return e.PortActiveSeeds(p).SortedSlice(), nil
			}
		}
	case strings.HasPrefix(s, "source-active:"):
		rest := strings.TrimPrefix(s, "source-active:")
		for _, src := range seeds.AllSources {
			if src.String() == rest {
				return e.SourceActiveSeeds(src).SortedSlice(), nil
			}
		}
	}
	return nil, fmt.Errorf("experiment: unknown treatment %q", t)
}

// cell builds a fully normalized grid cell: defaults are resolved here so
// equal work always has equal identity (a zero budget and the explicit
// default budget dedup to the same cell).
func (e *Env) cell(gen string, t grid.Treatment, p proto.Protocol, budget, batch int) grid.Cell {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if batch <= 0 {
		batch = experimentBatchSize
	}
	return grid.Cell{Gen: gen, Treatment: t, Proto: p, Budget: budget, BatchSize: batch}
}

// compareSpec enumerates a "changed vs. original" comparison: both
// treatments for every generator × protocol.
func (e *Env) compareSpec(name string, orig, chg func(proto.Protocol) grid.Treatment,
	protos []proto.Protocol, gens []string, budget int) grid.Spec {
	spec := grid.Spec{Name: name}
	for _, p := range protos {
		for _, g := range gens {
			spec.Cells = append(spec.Cells,
				e.cell(g, orig(p), p, budget, 0),
				e.cell(g, chg(p), p, budget, 0))
		}
	}
	return spec
}

// The comparison axes of Figures 3-5, shared by the Run* harnesses and
// the spec builders.
var (
	treatFull      = func(proto.Protocol) grid.Treatment { return TreatmentFull }
	treatJoint     = func(proto.Protocol) grid.Treatment { return TreatmentDealiased(alias.ModeJoint) }
	treatAllActive = func(proto.Protocol) grid.Treatment { return TreatmentAllActive }
	treatPort      = func(p proto.Protocol) grid.Treatment { return TreatmentPortActive(p) }
)

// SpecRQ1a enumerates RQ1.a / Figure 3: full vs. joint-dealiased seeds.
func (e *Env) SpecRQ1a(protos []proto.Protocol, gens []string, budget int) grid.Spec {
	return e.compareSpec("RQ1.a / Figure 3", treatFull, treatJoint, protos, gens, budget)
}

// SpecRQ1b enumerates RQ1.b / Figure 4: joint-dealiased vs. All Active.
func (e *Env) SpecRQ1b(protos []proto.Protocol, gens []string, budget int) grid.Spec {
	return e.compareSpec("RQ1.b / Figure 4", treatJoint, treatAllActive, protos, gens, budget)
}

// SpecRQ2 enumerates RQ2 / Figure 5: All Active vs. port-specific seeds.
func (e *Env) SpecRQ2(protos []proto.Protocol, gens []string, budget int) grid.Spec {
	return e.compareSpec("RQ2 / Figure 5", treatAllActive, treatPort, protos, gens, budget)
}

// SpecTable4 enumerates Table 4: every generator on every seed-dealiasing
// treatment, ICMP.
func (e *Env) SpecTable4(gens []string, budget int) grid.Spec {
	spec := grid.Spec{Name: "Table 4"}
	for _, g := range gens {
		for _, m := range alias.Modes {
			spec.Cells = append(spec.Cells, e.cell(g, TreatmentDealiased(m), proto.ICMP, budget, 0))
		}
	}
	return spec
}

// SpecRQ3 enumerates the per-source runs behind Tables 5, 6, and 13-15.
// Nil sources means all of Table 3's.
func (e *Env) SpecRQ3(protos []proto.Protocol, gens []string, sources []seeds.Source, budget int) grid.Spec {
	if sources == nil {
		sources = seeds.AllSources
	}
	spec := grid.Spec{Name: "RQ3"}
	for _, src := range sources {
		for _, p := range protos {
			for _, g := range gens {
				spec.Cells = append(spec.Cells, e.cell(g, TreatmentSourceActive(src), p, budget, 0))
			}
		}
	}
	return spec
}

// SpecTable5 enumerates Table 5's big-budget side: one All Active ICMP
// run per generator at nSources × the per-source budget.
func (e *Env) SpecTable5(gens []string, nSources, srcBudget int) grid.Spec {
	if srcBudget <= 0 {
		srcBudget = e.Cfg.Budget
	}
	spec := grid.Spec{Name: "Table 5"}
	for _, g := range gens {
		spec.Cells = append(spec.Cells, e.cell(g, TreatmentAllActive, proto.ICMP, srcBudget*nSources, 0))
	}
	return spec
}

// SpecRQ4 enumerates RQ4 / Figure 6: every generator on All Active per
// protocol.
func (e *Env) SpecRQ4(protos []proto.Protocol, gens []string, budget int) grid.Spec {
	spec := grid.Spec{Name: "RQ4"}
	for _, p := range protos {
		for _, g := range gens {
			spec.Cells = append(spec.Cells, e.cell(g, TreatmentAllActive, p, budget, 0))
		}
	}
	return spec
}

// crossPortInputs lists Figure 7's input datasets in row order, matching
// InputLabels.
func crossPortInputs() []grid.Treatment {
	inputs := make([]grid.Treatment, 0, proto.Count+1)
	for _, p := range proto.All {
		inputs = append(inputs, TreatmentPortActive(p))
	}
	return append(inputs, TreatmentAllActive)
}

// SpecCrossPort enumerates Appendix D's Figure 7: each input dataset
// scanned on every protocol, summed over generators.
func (e *Env) SpecCrossPort(gens []string, budget int) grid.Spec {
	spec := grid.Spec{Name: "Figure 7"}
	for _, in := range crossPortInputs() {
		for _, scanP := range proto.All {
			for _, g := range gens {
				spec.Cells = append(spec.Cells, e.cell(g, in, scanP, budget, 0))
			}
		}
	}
	return spec
}

// SpecRawGrid enumerates the appendix's Tables 9-12 (nil datasets = all
// nine treatment rows).
func (e *Env) SpecRawGrid(protos []proto.Protocol, gens, datasets []string, budget int) grid.Spec {
	if datasets == nil {
		datasets = GridDatasets
	}
	spec := grid.Spec{Name: "Raw grid"}
	for _, p := range protos {
		for _, ds := range datasets {
			for _, g := range gens {
				spec.Cells = append(spec.Cells, e.cell(g, gridTreatment(ds), p, budget, 0))
			}
		}
	}
	return spec
}

// SpecOneCell wraps a single ad-hoc run as a one-cell spec, so one-off
// CLI runs (`seedscan run`) share the engine's dedup, checkpointing, and
// resume.
func (e *Env) SpecOneCell(gen string, t grid.Treatment, p proto.Protocol, budget int) grid.Spec {
	return grid.Spec{Name: gen + " on " + string(t), Cells: []grid.Cell{e.cell(gen, t, p, budget, 0)}}
}

// SpecBatchAblation enumerates the feedback batch-size ablation: one
// generator on All Active at several batch sizes.
func (e *Env) SpecBatchAblation(gen string, p proto.Protocol, budget int, sizes []int) grid.Spec {
	spec := grid.Spec{Name: "Batch ablation"}
	for _, bs := range sizes {
		spec.Cells = append(spec.Cells, e.cell(gen, TreatmentAllActive, p, budget, bs))
	}
	return spec
}
