package experiment

import (
	"fmt"
	"strings"
)

// Table is a minimal text table for rendering paper-style results.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// fmtInt renders n with thousands separators, as the paper's tables do.
func fmtInt(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// fmtRatio renders a Performance Ratio with sign and two decimals.
func fmtRatio(f float64) string { return fmt.Sprintf("%+.2f", f) }

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
