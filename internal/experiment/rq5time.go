package experiment

import (
	"context"
	"fmt"

	"seedscan/internal/experiment/grid"
	"seedscan/internal/ipaddr"
	"seedscan/internal/longitudinal"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/world"
)

// DefaultRQ5Epochs is how many consecutive epochs the RQ5 daemon runs.
const DefaultRQ5Epochs = 6

// RQ5TimeResult holds "RQ5: metrics over time" — what happens to a
// published hitlist's quality metrics as the Internet churns under it.
// The paper's snapshot tables measure one scan epoch; this table runs the
// longitudinal daemon over several and reports seed decay, TGA hit
// persistence, and alias-set drift per epoch.
//
// Every field is a pure function of the environment configuration: the
// reports are normalized (no wall-clock durations, no store generation
// numbers), so a run resumed from checkpoints renders byte-identically.
type RQ5TimeResult struct {
	Gens       []string
	CorpusSize int
	Epochs     []longitudinal.EpochReport
	// AliasAdded/AliasRemoved[i] count /96s entering and leaving the
	// observed alias set at transition i-1 → i (index 0 is always zero):
	// the alias-set drift a point-in-time offline list cannot track.
	AliasAdded, AliasRemoved []int
}

// SpecRQ5Time enumerates the TGA cohort cells RQ5 tracks over time: one
// All Active run per generator on ICMP, whose hits become the persistence
// cohorts. The daemon's own per-epoch cells are created dynamically (they
// depend on tracker state) and are not part of the static plan.
func (e *Env) SpecRQ5Time(gens []string, budget int) grid.Spec {
	spec := grid.Spec{Name: "RQ5 / metrics over time"}
	for _, g := range gens {
		spec.Cells = append(spec.Cells, e.cell(g, TreatmentAllActive, proto.ICMP, budget, 0))
	}
	return spec
}

// RunRQ5Time reproduces the RQ5 metrics-over-time table.
func (e *Env) RunRQ5Time(gens []string, budget, epochs int) (*RQ5TimeResult, error) {
	return e.RunRQ5TimeCtx(context.Background(), gens, budget, epochs)
}

// RunRQ5TimeCtx runs the TGA cohort cells through the shared grid, then
// drives a longitudinal daemon over its own copy of the world for several
// epochs. The daemon scans a private world+scanner pair built from the
// same EnvConfig — byte-identical addresses and truth, but advancing its
// epoch clock never perturbs the shared Env other sections scan through.
// Daemon epoch cells checkpoint into the same grid store under an
// "rq5time"-suffixed fingerprint, so -resume covers this table too.
func (e *Env) RunRQ5TimeCtx(ctx context.Context, gens []string, budget, epochs int) (*RQ5TimeResult, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if epochs <= 0 {
		epochs = DefaultRQ5Epochs
	}
	spec := e.SpecRQ5Time(gens, budget)
	rs, err := e.Grid().Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	cohorts := make([]longitudinal.Cohort, 0, len(gens))
	for i, g := range gens {
		cohorts = append(cohorts, longitudinal.Cohort{Name: g, Addrs: rs.Of(spec.Cells[i]).Hits})
	}

	c := e.Cfg
	w := world.New(world.Config{Seed: c.WorldSeed, NumASes: c.NumASes, LossRate: c.LossRate})
	sc := scanner.New(w.Link(), scanner.WithSecret(c.ScanSecret), scanner.WithTelemetry(e.Tele.Registry()))
	d, err := longitudinal.New(longitudinal.Config{
		World:           w,
		Prober:          sc,
		Corpus:          e.Full.SortedSlice(),
		Cohorts:         cohorts,
		Proto:           proto.ICMP,
		Epochs:          epochs,
		Fingerprint:     e.Fingerprint() + "|rq5time",
		Store:           e.Cfg.GridStore,
		AliasedPrefixes: e.Offline.Prefixes(),
		Telemetry:       e.Tele,
	})
	if err != nil {
		return nil, err
	}
	reps, err := d.Run(ctx)
	if err != nil {
		return nil, err
	}

	res := &RQ5TimeResult{Gens: gens, CorpusSize: e.Full.Len(), Epochs: reps}
	for i := range res.Epochs {
		res.Epochs[i].Duration = 0
		res.Epochs[i].Generation = 0
	}
	res.AliasAdded = make([]int, len(reps))
	res.AliasRemoved = make([]int, len(reps))
	for i := 1; i < len(reps); i++ {
		prev := make(map[ipaddr.Prefix]bool, len(reps[i-1].AliasPrefixes))
		for _, p := range reps[i-1].AliasPrefixes {
			prev[p] = true
		}
		cur := make(map[ipaddr.Prefix]bool, len(reps[i].AliasPrefixes))
		for _, p := range reps[i].AliasPrefixes {
			cur[p] = true
			if !prev[p] {
				res.AliasAdded[i]++
			}
		}
		for _, p := range reps[i-1].AliasPrefixes {
			if !cur[p] {
				res.AliasRemoved[i]++
			}
		}
	}
	return res, nil
}

// Render prints the two RQ5 tables: the per-epoch decay/drift summary and
// the per-generator hit persistence matrix.
func (r *RQ5TimeResult) Render() string {
	t := &Table{
		Title: "RQ5 (metrics over time): seed decay, staleness, alias drift — ICMP",
		Header: []string{"Epoch", "Probed", "Saved", "Hits", "Alive",
			"Seeds Alive", "Seeds %", "Stale", "Alias /96s", "+Drift", "-Drift"},
	}
	for i, rep := range r.Epochs {
		t.AddRow(
			fmtInt(rep.Epoch), fmtInt(rep.Probed), fmtInt(rep.Saved),
			fmtInt(rep.Hits), fmtInt(rep.Alive),
			fmtInt(rep.AliveSeeds), fmtPct(float64(rep.AliveSeeds)/float64(r.CorpusSize)),
			fmtInt(rep.ConfirmedStale), fmtInt(len(rep.AliasPrefixes)),
			fmtInt(r.AliasAdded[i]), fmtInt(r.AliasRemoved[i]))
	}
	out := t.String() + "\n"

	p := &Table{
		Title:  "RQ5: TGA hit persistence (cohort members believed alive)",
		Header: append([]string{"Epoch"}, r.Gens...),
	}
	for _, rep := range r.Epochs {
		row := []string{fmtInt(rep.Epoch)}
		for _, g := range r.Gens {
			cell := "-"
			for _, cs := range rep.Cohorts {
				if cs.Name == g && cs.Total > 0 {
					cell = fmt.Sprintf("%s (%s)", fmtInt(cs.Alive), fmtPct(float64(cs.Alive)/float64(cs.Total)))
					break
				}
			}
			row = append(row, cell)
		}
		p.AddRow(row...)
	}
	return out + p.String()
}
