package experiment

import (
	"strings"
	"testing"

	"seedscan/internal/alias"
)

// TestTable4RenderExtendedModes pins that extending alias.Modes with the
// cool-down treatment extends Table 4 without breaking the golden rows:
// the paper's four columns keep their order and labels, the new column
// appends after them, and a row renders one value per mode.
func TestTable4RenderExtendedModes(t *testing.T) {
	paper := []alias.Mode{alias.ModeNone, alias.ModeOffline, alias.ModeOnline, alias.ModeJoint}
	for i, m := range paper {
		if alias.Modes[i] != m {
			t.Fatalf("Modes[%d] = %v, want %v — paper column order must not change", i, alias.Modes[i], m)
		}
	}
	if last := alias.Modes[len(alias.Modes)-1]; last != alias.ModeCooldown {
		t.Fatalf("extension column = %v, want cooldown appended last", last)
	}

	res := &Table4Result{
		Budget: 1000,
		Gens:   []string{"6Tree"},
		Aliases: map[string][]int{
			"6Tree": {500, 400, 30, 2, 7},
		},
	}
	got := res.Render()
	for _, label := range []string{"D_All", "D_offline", "D_online", "D_joint", "D_cooldown"} {
		if !strings.Contains(got, label) {
			t.Errorf("render missing column %q:\n%s", label, got)
		}
	}
	// Column order: the cool-down label comes after the paper's columns.
	if strings.Index(got, "D_cooldown") < strings.Index(got, "D_joint") {
		t.Errorf("D_cooldown must render after D_joint:\n%s", got)
	}
	for _, v := range []string{"500", "400", "30", "2", "7"} {
		if !strings.Contains(got, v) {
			t.Errorf("render missing value %q:\n%s", v, got)
		}
	}
}
