package experiment

import (
	"testing"

	"seedscan/internal/proto"
)

// The whole pipeline must be reproducible: two environments with the same
// configuration, each running experiments concurrently, must produce
// byte-identical results.
func TestEndToEndDeterminism(t *testing.T) {
	cfg := EnvConfig{NumASes: 70, CollectScale: 0.2, Budget: 2000}
	build := func() (string, string, string) {
		e := NewEnv(cfg)
		sum := e.DatasetSummary().Render()
		rq1a, err := e.RunRQ1a([]proto.Protocol{proto.ICMP}, []string{"6Tree", "6Sense", "DET"}, 2000)
		if err != nil {
			t.Fatal(err)
		}
		rq4, err := e.RunRQ4([]proto.Protocol{proto.ICMP}, []string{"6Tree", "6Gen"}, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return sum, rq1a.Render(), rq4.Render()
	}
	s1, a1, f1 := build()
	s2, a2, f2 := build()
	if s1 != s2 {
		t.Error("Table 3 not reproducible")
	}
	if a1 != a2 {
		t.Error("RQ1.a not reproducible")
	}
	if f1 != f2 {
		t.Error("RQ4 not reproducible")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	e1 := NewEnv(EnvConfig{WorldSeed: 5, NumASes: 70, CollectScale: 0.2})
	e2 := NewEnv(EnvConfig{WorldSeed: 6, NumASes: 70, CollectScale: 0.2})
	if e1.DatasetSummary().Render() == e2.DatasetSummary().Render() {
		t.Fatal("different world seeds produced identical summaries")
	}
}
