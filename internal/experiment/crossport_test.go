package experiment

import (
	"strings"
	"testing"

	"seedscan/internal/proto"
)

func TestCrossPortMatrix(t *testing.T) {
	e := testEnv(t)
	res, err := e.RunCrossPort([]string{"6Tree"}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Every input × scan cell must be populated for ICMP (the most
	// responsive protocol).
	for i := range InputLabels {
		if res.Hits[i][proto.ICMP] == 0 {
			t.Fatalf("input %q found no ICMP hits", InputLabels[i])
		}
	}
	// Appendix D's headline: the UDP53 column is maximized by the UDP53
	// input dataset.
	udpInput := res.Hits[int(proto.UDP53)][proto.UDP53]
	for i, label := range InputLabels {
		if i == int(proto.UDP53) {
			continue
		}
		if res.Hits[i][proto.UDP53] > udpInput {
			t.Errorf("input %q beat the UDP53-specific dataset on UDP53 (%d > %d)",
				label, res.Hits[i][proto.UDP53], udpInput)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "All Active") || !strings.Contains(out, "UDP53") {
		t.Fatal("render wrong")
	}
}
