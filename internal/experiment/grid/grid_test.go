package grid

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
)

func cell(gen string, t Treatment, p proto.Protocol, budget int) Cell {
	return Cell{Gen: gen, Treatment: t, Proto: p, Budget: budget, BatchSize: 1024}
}

func addr(b byte) ipaddr.Addr {
	var a [16]byte
	a[0], a[15] = 0x20, b
	return ipaddr.AddrFrom16(a)
}

func TestCellIdentity(t *testing.T) {
	a := cell("6Tree", "full", proto.ICMP, 1000)
	b := cell("6Tree", "full", proto.ICMP, 1000)
	if a.ID() != b.ID() {
		t.Fatalf("equal cells, different IDs: %q vs %q", a.ID(), b.ID())
	}
	variants := []Cell{
		cell("DET", "full", proto.ICMP, 1000),
		cell("6Tree", "all-active", proto.ICMP, 1000),
		cell("6Tree", "full", proto.TCP80, 1000),
		cell("6Tree", "full", proto.ICMP, 2000),
		{Gen: "6Tree", Treatment: "full", Proto: proto.ICMP, Budget: 1000, BatchSize: 512},
	}
	for _, v := range variants {
		if v.ID() == a.ID() {
			t.Fatalf("variant %+v collides with %+v", v, a)
		}
	}
	if a.Key("fp1") == a.Key("fp2") {
		t.Fatal("different fingerprints must give different keys")
	}
	if a.Key("fp1") != "fp1/"+a.ID() {
		t.Fatalf("key = %q", a.Key("fp1"))
	}
}

func TestPlanDedupsAcrossSpecs(t *testing.T) {
	shared := cell("6Tree", "all-active", proto.ICMP, 1000)
	s1 := Spec{Name: "A", Cells: []Cell{shared, cell("DET", "full", proto.ICMP, 1000), shared}}
	s2 := Spec{Name: "B", Cells: []Cell{shared, cell("EIP", "full", proto.ICMP, 1000)}}
	plan := Plan(s1, s2)
	if len(plan) != 3 {
		t.Fatalf("plan = %d cells, want 3", len(plan))
	}
	if plan[0].Cell.ID() != shared.ID() {
		t.Fatalf("plan not first-seen ordered: %q first", plan[0].Cell.ID())
	}
	if got := plan[0].Specs; len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("shared cell specs = %v", got)
	}
	if got := plan[1].Specs; len(got) != 1 || got[0] != "A" {
		t.Fatalf("A-only cell specs = %v", got)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	c := cell("6Tree", "full", proto.ICMP, 100)
	r := CellResult{Outcome: metrics.Outcome{Hits: 7, ASes: 3}, Hits: []ipaddr.Addr{addr(1)}}
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put("k", c, r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || got.Outcome.Hits != 7 || len(got.Hits) != 1 || got.Hits[0] != addr(1) {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestJSONLStoreRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	s, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := cell("6Tree", "full", proto.ICMP, 100)
	c2 := cell("DET", "all-active", proto.TCP80, 200)
	r1 := CellResult{Outcome: metrics.Outcome{Hits: 1}, Hits: []ipaddr.Addr{addr(1), addr(2)}}
	r2 := CellResult{Outcome: metrics.Outcome{Hits: 2, Aliases: 9}}
	if err := s.Put(c1.Key("fp"), c1, r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(c2.Key("fp"), c2, r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"fp/torn","outc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("replayed %d records, want 2", s2.Len())
	}
	got, ok := s2.Get(c1.Key("fp"))
	if !ok || got.Outcome.Hits != 1 || len(got.Hits) != 2 || got.Hits[1] != addr(2) {
		t.Fatalf("c1 after replay: ok=%v got=%+v", ok, got)
	}
	if _, ok := s2.Get("fp/torn"); ok {
		t.Fatal("torn record must not replay")
	}
	// The reopened store must still accept appends past the torn tail.
	c3 := cell("EIP", "full", proto.UDP53, 300)
	if err := s2.Put(c3.Key("fp"), c3, CellResult{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(c3.Key("fp")); !ok {
		t.Fatal("appended record missing")
	}
}

// countingEngine builds an engine whose Exec counts per-cell executions.
func countingEngine(store Store, tr *telemetry.Tracer) (*Engine, *sync.Map, *atomic.Int64) {
	var perCell sync.Map
	var total atomic.Int64
	e := NewEngine(Config{
		Fingerprint: "fp",
		Store:       store,
		Workers:     4,
		Telemetry:   tr,
		Exec: func(ctx context.Context, c Cell) (CellResult, error) {
			total.Add(1)
			n, _ := perCell.LoadOrStore(c.ID(), new(atomic.Int64))
			n.(*atomic.Int64).Add(1)
			return CellResult{Outcome: metrics.Outcome{Hits: c.Budget}}, nil
		},
	})
	return e, &perCell, &total
}

func TestEngineDedupsWithinAndAcrossSpecs(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	e, perCell, total := countingEngine(nil, tr)
	shared := cell("6Tree", "all-active", proto.ICMP, 10)
	s1 := Spec{Name: "A", Cells: []Cell{shared, shared, cell("DET", "full", proto.ICMP, 10)}}
	s2 := Spec{Name: "B", Cells: []Cell{shared, cell("EIP", "full", proto.ICMP, 10)}}

	var wg sync.WaitGroup
	for _, s := range []Spec{s1, s2} {
		wg.Add(1)
		go func(s Spec) {
			defer wg.Done()
			rs, err := e.Run(context.Background(), s)
			if err != nil {
				t.Error(err)
				return
			}
			if got := rs.Of(shared); got.Outcome.Hits != 10 {
				t.Errorf("shared cell result = %+v", got)
			}
		}(s)
	}
	wg.Wait()

	if total.Load() != 3 {
		t.Fatalf("executions = %d, want 3 unique cells", total.Load())
	}
	perCell.Range(func(id, n any) bool {
		if n.(*atomic.Int64).Load() != 1 {
			t.Errorf("cell %v executed %d times", id, n.(*atomic.Int64).Load())
		}
		return true
	})
	snap := tr.Registry().Snapshot()
	if snap.Counters["grid.cells.run"] != 3 {
		t.Fatalf("grid.cells.run = %d, want 3", snap.Counters["grid.cells.run"])
	}
	if snap.Counters["grid.cells.planned"] != 5 {
		t.Fatalf("grid.cells.planned = %d, want 5", snap.Counters["grid.cells.planned"])
	}
	// One in-spec duplicate plus the cross-spec share of the shared cell.
	if snap.Counters["grid.cells.deduped"] != 2 {
		t.Fatalf("grid.cells.deduped = %d, want 2", snap.Counters["grid.cells.deduped"])
	}
}

func TestEngineResumesFromStore(t *testing.T) {
	store := NewMemStore()
	spec := Spec{Name: "A", Cells: []Cell{
		cell("6Tree", "full", proto.ICMP, 10),
		cell("DET", "full", proto.ICMP, 20),
	}}

	tr1 := telemetry.NewTracer(nil)
	e1, _, total1 := countingEngine(store, tr1)
	want, err := e1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if total1.Load() != 2 || store.Len() != 2 {
		t.Fatalf("first run: %d execs, %d stored", total1.Load(), store.Len())
	}

	// A fresh engine (new process) with the same store executes nothing.
	tr2 := telemetry.NewTracer(nil)
	e2, _, total2 := countingEngine(store, tr2)
	got, err := e2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if total2.Load() != 0 {
		t.Fatalf("resumed run executed %d cells", total2.Load())
	}
	for _, c := range spec.Cells {
		if got.Of(c).Outcome != want.Of(c).Outcome {
			t.Fatalf("cell %s differs after resume", c.ID())
		}
	}
	snap := tr2.Registry().Snapshot()
	if snap.Counters["grid.cells.resumed"] != 2 || snap.Counters["grid.cells.run"] != 0 {
		t.Fatalf("resumed=%d run=%d", snap.Counters["grid.cells.resumed"], snap.Counters["grid.cells.run"])
	}
}

func TestEngineRetriesFailedCells(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	e := NewEngine(Config{
		Fingerprint: "fp",
		Workers:     1,
		Exec: func(ctx context.Context, c Cell) (CellResult, error) {
			if calls.Add(1) == 1 {
				return CellResult{}, boom
			}
			return CellResult{Outcome: metrics.Outcome{Hits: 1}}, nil
		},
	})
	spec := Spec{Name: "A", Cells: []Cell{cell("6Tree", "full", proto.ICMP, 10)}}
	if _, err := e.Run(context.Background(), spec); !errors.Is(err, boom) {
		t.Fatalf("first run err = %v", err)
	}
	// The failed flight must have been cleared so the cell retries.
	rs, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Of(spec.Cells[0]).Outcome.Hits != 1 {
		t.Fatal("retry did not produce the result")
	}
}

func TestEnginePropagatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(Config{
		Fingerprint: "fp",
		Workers:     1,
		Exec: func(ctx context.Context, c Cell) (CellResult, error) {
			return CellResult{}, ctx.Err()
		},
	})
	spec := Spec{Name: "A", Cells: []Cell{cell("6Tree", "full", proto.ICMP, 10)}}
	if _, err := e.Run(ctx, spec); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
