package grid

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
)

// Store checkpoints completed cells. Get and Put must be safe for
// concurrent use; the engine calls Put once per executed cell, as soon as
// the cell finishes, so a crash or cancel loses at most the cells still
// in flight.
type Store interface {
	// Get returns the checkpointed result for a content-addressed key.
	Get(key string) (CellResult, bool)
	// Put checkpoints one completed cell under its key.
	Put(key string, c Cell, r CellResult) error
	// Len reports the number of checkpointed cells.
	Len() int
	// Close flushes and releases the store.
	Close() error
}

// MemStore is an in-process Store: checkpoints survive across specs and
// engines within one process, not across processes.
type MemStore struct {
	mu sync.Mutex
	m  map[string]CellResult
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]CellResult)} }

// Get implements Store.
func (s *MemStore) Get(key string) (CellResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store.
func (s *MemStore) Put(key string, _ Cell, r CellResult) error {
	s.mu.Lock()
	s.m[key] = r
	s.mu.Unlock()
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// record is the JSONL on-disk schema: one completed cell per line. The
// cell parameters ride along for debuggability (the key alone already
// identifies the cell); hits are 32-hex-digit addresses so the stored
// form round-trips exactly.
type record struct {
	Key       string          `json:"key"`
	Gen       string          `json:"gen"`
	Treatment string          `json:"treatment"`
	Proto     string          `json:"proto"`
	Budget    int             `json:"budget"`
	Batch     int             `json:"batch"`
	Outcome   metrics.Outcome `json:"outcome"`
	Hits      []string        `json:"hits"`
}

// JSONLStore is an append-only on-disk Store: one JSON record per line.
// Opening replays the file into memory, skipping any truncated final line
// (the signature of a crash mid-append), so a store file is always safe
// to resume from.
type JSONLStore struct {
	mu   sync.Mutex
	m    map[string]CellResult
	f    *os.File
	path string
}

// OpenJSONL opens or creates the store file at path and loads every
// complete record in it.
func OpenJSONL(path string) (*JSONLStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("grid: open store: %w", err)
	}
	s := &JSONLStore{m: make(map[string]CellResult), f: f, path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn or corrupt line: everything before it is intact,
			// everything from here on is unusable — stop replaying.
			break
		}
		res, err := rec.result()
		if err != nil {
			break
		}
		s.m[rec.Key] = res
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return nil, fmt.Errorf("grid: replay store %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("grid: seek store %s: %w", path, err)
	}
	return s, nil
}

// Path returns the backing file path.
func (s *JSONLStore) Path() string { return s.path }

// Get implements Store.
func (s *JSONLStore) Get(key string) (CellResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store: appends one record and syncs it, so a completed
// cell survives anything short of disk failure.
func (s *JSONLStore) Put(key string, c Cell, r CellResult) error {
	rec := record{
		Key:       key,
		Gen:       c.Gen,
		Treatment: string(c.Treatment),
		Proto:     c.Proto.String(),
		Budget:    c.Budget,
		Batch:     c.BatchSize,
		Outcome:   r.Outcome,
		Hits:      make([]string, len(r.Hits)),
	}
	for i, a := range r.Hits {
		rec.Hits[i] = a.FullHex()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("grid: append store %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("grid: sync store %s: %w", s.path, err)
	}
	s.m[key] = r
	return nil
}

// Len implements Store.
func (s *JSONLStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Close implements Store.
func (s *JSONLStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// result decodes the record's hit list back into addresses.
func (r *record) result() (CellResult, error) {
	res := CellResult{Outcome: r.Outcome}
	if len(r.Hits) > 0 {
		res.Hits = make([]ipaddr.Addr, len(r.Hits))
		for i, h := range r.Hits {
			b, err := hex.DecodeString(h)
			if err != nil || len(b) != 16 {
				return CellResult{}, fmt.Errorf("grid: bad hit %q", h)
			}
			var a16 [16]byte
			copy(a16[:], b)
			res.Hits[i] = ipaddr.AddrFrom16(a16)
		}
	}
	return res, nil
}
