// Package grid is the declarative engine behind every experiment harness.
// The paper's evaluation is one big grid — (TGA × seed treatment ×
// protocol × budget) cells rendered into different tables and figures —
// and each RQ/table/figure compiles into a Spec: a named list of Cells.
// The Engine runs specs through a single scheduler that deduplicates
// identical cells across concurrently requested specs (singleflight, so a
// cell shared by Figure 3, Table 4, and the raw grid executes exactly
// once) and checkpoints every completed cell into a pluggable Store, so
// an interrupted run resumes where it stopped with byte-identical
// results.
//
// Cells are content-addressed: a cell's key is a pure function of the
// environment fingerprint (the EnvConfig knobs that determine outcomes,
// plus an ipaddr.Digest of the collected seed corpus) and the cell's own
// parameters. Two processes with the same configuration derive the same
// keys, which is what makes an on-disk Store shareable across runs — and
// what makes a stale store harmless under a different configuration: the
// fingerprints differ, so no key matches.
package grid

import (
	"fmt"

	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// Treatment names a seed-dataset treatment symbolically ("full",
// "dealiased:joint", "port-active:TCP443", ...). The engine treats it as
// an opaque key; the executor resolves it to an address list at run time,
// which keeps cell enumeration (planning, -list-cells) free of scanning.
type Treatment string

// Cell is one point of the evaluation grid: run Gen seeded with
// Treatment's dataset, scan its output on Proto, for Budget candidates,
// with BatchSize-addresses-per-feedback-round granularity. All fields are
// concrete (no zero-means-default): callers normalize defaults before
// building cells so equal work always has equal identity.
type Cell struct {
	Gen       string
	Treatment Treatment
	Proto     proto.Protocol
	Budget    int
	BatchSize int
}

// ID is the cell's canonical identity within one environment: every
// parameter, in fixed order. Specs naming the same (generator, treatment,
// protocol, budget, batch) produce the same ID and therefore share one
// execution.
func (c Cell) ID() string {
	return fmt.Sprintf("%s|%s|%s|b%d|bs%d", c.Gen, c.Treatment, c.Proto, c.Budget, c.BatchSize)
}

// Key is the cell's content address across environments: the environment
// fingerprint plus the cell ID. Store entries are keyed by it.
func (c Cell) Key(fingerprint string) string {
	return fingerprint + "/" + c.ID()
}

// CellResult is what one executed cell yields: the paper's measured
// outcome plus the raw dealiased hit list, which the combined analyses
// (Tables 5-6, Figure 6's greedy cover) union across cells. Hits are
// stored unfiltered; protocol-specific AS exclusions happen inside the
// Outcome, exactly as in the bespoke drivers this engine replaced.
type CellResult struct {
	Outcome metrics.Outcome
	Hits    []ipaddr.Addr
}

// Spec is a declarative experiment: the cells one table or figure needs.
// Order matters only for progress reporting; results are addressed by
// cell identity.
type Spec struct {
	Name  string
	Cells []Cell
}

// PlannedCell is one unique cell of a multi-spec plan, with the specs
// that requested it.
type PlannedCell struct {
	Cell  Cell
	Specs []string
}

// Plan deduplicates the specs' cells in first-seen order — the exact
// worklist an Engine.Run over the same specs would execute. It is the
// backing of `experiments -list-cells`.
func Plan(specs ...Spec) []PlannedCell {
	index := make(map[string]int)
	var out []PlannedCell
	for _, s := range specs {
		seenInSpec := make(map[string]bool)
		for _, c := range s.Cells {
			id := c.ID()
			i, ok := index[id]
			if !ok {
				index[id] = len(out)
				out = append(out, PlannedCell{Cell: c, Specs: []string{s.Name}})
				seenInSpec[id] = true
				continue
			}
			if !seenInSpec[id] {
				out[i].Specs = append(out[i].Specs, s.Name)
				seenInSpec[id] = true
			}
		}
	}
	return out
}
