package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"seedscan/internal/telemetry"
)

// Config assembles an Engine.
type Config struct {
	// Fingerprint is the environment's content address (see Cell.Key).
	Fingerprint string
	// Store checkpoints completed cells; nil disables persistence (the
	// engine still memoizes completed cells in-process, which is what
	// deduplicates cells across specs).
	Store Store
	// Workers bounds the cell fan-out (default: NumCPU-1, capped at 8 —
	// the experiment grid's historical width).
	Workers int
	// Telemetry receives grid.cells.* counters and per-spec progress
	// events; nil gets a silent tracer.
	Telemetry *telemetry.Tracer
	// Exec runs one cell. It must be safe for concurrent calls and
	// deterministic: the engine's dedup and resume guarantees are only as
	// good as the executor's reproducibility.
	Exec func(ctx context.Context, c Cell) (CellResult, error)
}

// flight is a singleflight slot for one cell: the first requester
// executes, everyone else waits on ready. Successful flights stay in the
// engine as the in-process memo; failed (or cancelled) flights are
// removed so a later request retries.
type flight struct {
	ready chan struct{}
	res   CellResult
	err   error
}

// Engine schedules cells: one merged worklist across every requested
// spec, deduplicated by cell identity, checkpointed through the Store.
type Engine struct {
	cfg Config
	tr  *telemetry.Tracer

	mu      sync.Mutex
	flights map[string]*flight
}

// NewEngine builds an engine. Config.Exec is required.
func NewEngine(cfg Config) *Engine {
	if cfg.Exec == nil {
		panic("grid: NewEngine requires Config.Exec")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU() - 1
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	tr := cfg.Telemetry
	if tr == nil {
		tr = telemetry.NewTracer(nil)
	}
	return &Engine{cfg: cfg, tr: tr, flights: make(map[string]*flight)}
}

// Results holds one Run's cell results, addressed by cell identity.
type Results struct {
	cells map[string]CellResult
}

// Of returns the result of cell c (the zero CellResult if c was not part
// of the run).
func (r Results) Of(c Cell) CellResult { return r.cells[c.ID()] }

// Len reports the number of unique cells in the run.
func (r Results) Len() int { return len(r.cells) }

// Run executes every cell of spec and returns their results. Duplicate
// cells — within the spec, across concurrent Run calls, or already
// completed earlier in the process — execute exactly once
// (grid.cells.deduped counts the skips); cells checkpointed in the Store
// are loaded instead of executed (grid.cells.resumed); everything else
// runs through Config.Exec on up to Config.Workers goroutines
// (grid.cells.run). The first error cancels the remaining cells and is
// returned; cancelled or failed cells are not checkpointed and will be
// retried by a later Run.
func (e *Engine) Run(ctx context.Context, spec Spec) (Results, error) {
	reg := e.tr.Registry()
	reg.Counter("grid.cells.planned").Add(int64(len(spec.Cells)))

	seen := make(map[string]struct{}, len(spec.Cells))
	unique := make([]Cell, 0, len(spec.Cells))
	for _, c := range spec.Cells {
		id := c.ID()
		if _, ok := seen[id]; ok {
			reg.Counter("grid.cells.deduped").Inc()
			continue
		}
		seen[id] = struct{}{}
		unique = append(unique, c)
	}

	results := make(map[string]CellResult, len(unique))
	var resMu sync.Mutex
	var done atomic.Int64
	err := RunParallel(ctx, e.cfg.Workers, len(unique), func(ctx context.Context, i int) error {
		c := unique[i]
		r, err := e.do(ctx, c)
		if err != nil {
			return err
		}
		resMu.Lock()
		results[c.ID()] = r
		resMu.Unlock()
		e.tr.Progress(spec.Name, int(done.Add(1)), len(unique))
		return nil
	})
	if err != nil {
		return Results{}, err
	}
	return Results{cells: results}, nil
}

// do resolves one cell: join an in-flight execution, load a checkpoint,
// or execute and checkpoint. If the flight owner fails (error or
// cancellation), waiters whose own context is still live retry the cell
// themselves.
func (e *Engine) do(ctx context.Context, c Cell) (CellResult, error) {
	id := c.ID()
	key := c.Key(e.cfg.Fingerprint)
	reg := e.tr.Registry()
	for {
		e.mu.Lock()
		if f, ok := e.flights[id]; ok {
			e.mu.Unlock()
			reg.Counter("grid.cells.deduped").Inc()
			select {
			case <-f.ready:
				if f.err == nil {
					return f.res, nil
				}
				if err := ctx.Err(); err != nil {
					return CellResult{}, err
				}
				continue // owner failed and cleared the slot; retry
			case <-ctx.Done():
				return CellResult{}, ctx.Err()
			}
		}
		f := &flight{ready: make(chan struct{})}
		e.flights[id] = f
		e.mu.Unlock()

		if st := e.cfg.Store; st != nil {
			if r, ok := st.Get(key); ok {
				f.res = r
				reg.Counter("grid.cells.resumed").Inc()
				close(f.ready)
				return r, nil
			}
		}
		res, err := e.cfg.Exec(ctx, c)
		if err != nil {
			f.err = err
			e.mu.Lock()
			if e.flights[id] == f {
				delete(e.flights, id)
			}
			e.mu.Unlock()
			close(f.ready)
			return CellResult{}, err
		}
		f.res = res
		reg.Counter("grid.cells.run").Inc()
		if st := e.cfg.Store; st != nil {
			if perr := st.Put(key, c, res); perr != nil {
				// The run itself succeeded; losing one checkpoint only
				// costs a re-run on resume.
				reg.Counter("grid.store.put_errors").Inc()
			}
		}
		close(f.ready)
		return res, nil
	}
}

// RunParallel executes fn(0..n-1) on up to `workers` goroutines and
// returns the first error. Every fn receives a grid context derived from
// ctx that is cancelled as soon as any sibling fails, so long-running
// siblings stop promptly instead of finishing doomed work; no further
// indices are dispatched after cancellation either. The parent's
// ctx.Err() is returned if it cut the grid short.
func RunParallel(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := gctx.Err(); err != nil {
				return err
			}
			if err := fn(gctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if gctx.Err() != nil {
					return
				}
				mu.Lock()
				if err != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(gctx, i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}
