package experiment

import (
	"context"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/world"
)

// Ablation helpers for the design decisions DESIGN.md calls out: the
// packet-level scan path versus a ground-truth oracle, and the batch-size
// sensitivity of online generators.

// OracleProber answers probes straight from the world's ground truth,
// bypassing packet construction, the wire, parsing, loss, and rate
// limits. It exists to quantify what the packet path costs and what
// fidelity it adds (rate-limited and lossy targets behave differently);
// experiments always use the real scanner.
type OracleProber struct {
	World *world.World
}

// Scan implements tga.Prober against ground truth.
func (o *OracleProber) Scan(targets []ipaddr.Addr, p proto.Protocol) []scanner.Result {
	epoch := o.World.Epoch()
	out := make([]scanner.Result, len(targets))
	for i, a := range targets {
		st := scanner.StatusSilent
		if o.World.ActiveOn(a, p, epoch) {
			st = scanner.StatusActive
		}
		out[i] = scanner.Result{Addr: a, Proto: p, Status: st, Attempts: 1}
	}
	return out
}

// ScanActive mirrors scanner.Scanner's convenience method so the oracle
// also satisfies alias.Prober.
func (o *OracleProber) ScanActive(targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr {
	var hits []ipaddr.Addr
	for _, r := range o.Scan(targets, p) {
		if r.Active() {
			hits = append(hits, r.Addr)
		}
	}
	return hits
}

// ScanAgreement scans targets with both the packet-path scanner and the
// oracle and returns the fraction of targets on which they agree about
// activity. Disagreements come from loss (bounded by retries) and
// rate-limited regions — the fidelity the packet path adds.
func (e *Env) ScanAgreement(targets []ipaddr.Addr, p proto.Protocol) float64 {
	if len(targets) == 0 {
		return 1
	}
	oracle := &OracleProber{World: e.World}
	oracleActive := ipaddr.NewSet(oracle.ScanActive(targets, p)...)
	scanActive := ipaddr.NewSet(e.Prober.ScanActive(append([]ipaddr.Addr(nil), targets...), p)...)
	agree := 0
	for _, a := range targets {
		if oracleActive.Contains(a) == scanActive.Contains(a) {
			agree++
		}
	}
	return float64(agree) / float64(len(targets))
}

// BatchSizeAblation runs one online generator at several feedback batch
// sizes and reports hits per size — quantifying how much online adaptation
// depends on feedback frequency (DESIGN.md decision 3). The runs go
// through the grid engine, so the experiment-default batch size dedups
// against the regular RQ cells and counts raw (unfiltered) hits from the
// checkpointed result.
func (e *Env) BatchSizeAblation(gen string, p proto.Protocol, budget int, sizes []int) (map[int]int, error) {
	rs, err := e.Grid().Run(context.Background(), e.SpecBatchAblation(gen, p, budget, sizes))
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(sizes))
	for _, bs := range sizes {
		out[bs] = len(rs.Of(e.cell(gen, TreatmentAllActive, p, budget, bs)).Hits)
	}
	return out, nil
}
