package experiment

import (
	"testing"

	"seedscan/internal/proto"
)

func TestOracleMatchesScannerOnCleanTargets(t *testing.T) {
	e := testEnv(t)
	targets := e.AllActiveSeeds().Slice()
	if len(targets) > 2000 {
		targets = targets[:2000]
	}
	agree := e.ScanAgreement(targets, proto.ICMP)
	// Loss (1%, recovered by retries) and rate-limited regions bound the
	// disagreement; anything below this signals a packet-path bug.
	if agree < 0.97 {
		t.Fatalf("scanner/oracle agreement = %.3f", agree)
	}
}

func TestOracleProberShape(t *testing.T) {
	e := testEnv(t)
	o := &OracleProber{World: e.World}
	targets := e.AllActiveSeeds().Slice()[:50]
	res := o.Scan(targets, proto.ICMP)
	if len(res) != 50 {
		t.Fatalf("results = %d", len(res))
	}
	active := o.ScanActive(targets, proto.ICMP)
	n := 0
	for _, r := range res {
		if r.Active() {
			n++
		}
	}
	if len(active) != n {
		t.Fatalf("ScanActive %d vs %d active results", len(active), n)
	}
}

func TestBatchSizeAblation(t *testing.T) {
	e := testEnv(t)
	hits, err := e.BatchSizeAblation("DET", proto.ICMP, 3000, []int{512, 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("sizes = %d", len(hits))
	}
	for bs, h := range hits {
		if h == 0 {
			t.Fatalf("batch %d found nothing", bs)
		}
	}
}

func TestRawGridShape(t *testing.T) {
	e := testEnv(t)
	grid, err := e.RunRawGrid([]proto.Protocol{proto.ICMP}, []string{"6Tree"},
		[]string{"All", "All Active"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	allOut := grid.Outcome[proto.ICMP]["All"]["6Tree"]
	activeOut := grid.Outcome[proto.ICMP]["All Active"]["6Tree"]
	if allOut.Hits == 0 || activeOut.Hits == 0 {
		t.Fatalf("grid zeros: %+v / %+v", allOut, activeOut)
	}
	// The recommended treatment must not be worse than raw seeds by much.
	if float64(activeOut.Hits) < 0.5*float64(allOut.Hits) {
		t.Fatalf("All Active (%d) collapsed vs All (%d)", activeOut.Hits, allOut.Hits)
	}
	if out := grid.Render(proto.ICMP); len(out) == 0 {
		t.Fatal("render empty")
	}
}

func TestGridSeedsResolveAllLabels(t *testing.T) {
	e := testEnv(t)
	for _, label := range GridDatasets {
		got, err := e.TreatmentSeeds(gridTreatment(label))
		if err != nil {
			t.Fatalf("treatment %q: %v", label, err)
		}
		if len(got) == 0 {
			t.Fatalf("treatment %q resolved to empty seeds", label)
		}
	}
	if _, err := e.TreatmentSeeds(gridTreatment("bogus")); err == nil {
		t.Fatal("bogus label resolved")
	}
}
