package experiment

import (
	"strings"
	"testing"
)

func TestRecommendationsEvidence(t *testing.T) {
	e := testEnv(t)
	recs, err := e.RunRecommendations([]string{"6Tree", "6Gen"}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("recommendations = %d", len(recs))
	}
	titles := map[string]bool{}
	for _, r := range recs {
		if r.Title == "" || r.Guidance == "" || r.Evidence == "" {
			t.Fatalf("incomplete recommendation: %+v", r)
		}
		titles[r.Title] = true
	}
	for _, want := range []string{"Dealiasing", "Unresponsive Addresses", "Port-Specific Seeds",
		"Ports", "Generators", "Combining Generators"} {
		if !titles[want] {
			t.Fatalf("missing recommendation %q", want)
		}
	}
	out := RenderRecommendations(recs)
	if !strings.Contains(out, "RQ5") || !strings.Contains(out, "evidence:") {
		t.Fatal("render wrong")
	}
}
