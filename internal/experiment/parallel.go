package experiment

import (
	"context"
	"runtime"

	"seedscan/internal/experiment/grid"
)

// Experiment grids run many independent TGA runs; each run is
// deterministic in isolation (its own generator, deterministic scanning
// and dealiasing), so running them concurrently changes wall-clock time
// and nothing else. Shared state (the scanner's atomic counters, the
// output dealiaser's verdict cache, the telemetry registry, the Env's
// per-key singleflight treatment caches) is concurrency-safe, so
// harnesses fan out without resolving seed lists first.

// Workers returns the experiment fan-out width: EnvConfig.Workers if
// set, else NumCPU-1 capped at 8.
func (e *Env) Workers() int {
	if e.Cfg.Workers > 0 {
		return e.Cfg.Workers
	}
	w := runtime.NumCPU() - 1
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// runParallel executes fn(0..n-1) on up to `workers` goroutines and
// returns the first error; see grid.RunParallel, whose semantics it
// shares (the implementation moved there with the grid engine).
func runParallel(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	return grid.RunParallel(ctx, workers, n, fn)
}
