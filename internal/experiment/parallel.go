package experiment

import (
	"context"
	"runtime"
	"sync"
)

// Experiment grids run many independent TGA runs; each run is
// deterministic in isolation (its own generator, deterministic scanning
// and dealiasing), so running them concurrently changes wall-clock time
// and nothing else. Shared state (the scanner's atomic counters, the
// output dealiaser's verdict cache, the telemetry registry) is
// concurrency-safe.
//
// Lazily cached seed treatments are NOT safe to build concurrently, so
// every harness resolves its seed lists before fanning out.

// Workers returns the experiment fan-out width.
func (e *Env) Workers() int {
	w := runtime.NumCPU() - 1
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// runParallel executes fn(0..n-1) on up to `workers` goroutines and
// returns the first error. Once ctx is cancelled no further indices are
// dispatched; already-running calls finish (each fn observes ctx itself),
// and ctx.Err() is returned if it cut the grid short.
func runParallel(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if err != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}
