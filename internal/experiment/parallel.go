package experiment

import (
	"context"
	"runtime"
	"sync"
)

// Experiment grids run many independent TGA runs; each run is
// deterministic in isolation (its own generator, deterministic scanning
// and dealiasing), so running them concurrently changes wall-clock time
// and nothing else. Shared state (the scanner's atomic counters, the
// output dealiaser's verdict cache, the telemetry registry) is
// concurrency-safe.
//
// Lazily cached seed treatments are NOT safe to build concurrently, so
// every harness resolves its seed lists before fanning out.

// Workers returns the experiment fan-out width.
func (e *Env) Workers() int {
	w := runtime.NumCPU() - 1
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// runParallel executes fn(0..n-1) on up to `workers` goroutines and
// returns the first error. Every fn receives a grid context derived from
// ctx that is cancelled as soon as any sibling fails, so long-running
// siblings stop promptly instead of finishing doomed work; no further
// indices are dispatched after cancellation either. The parent's
// ctx.Err() is returned if it cut the grid short.
func runParallel(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := gctx.Err(); err != nil {
				return err
			}
			if err := fn(gctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if gctx.Err() != nil {
					return
				}
				mu.Lock()
				if err != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(gctx, i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}
