package experiment

// Table 1 of the paper is a literature-survey matrix: which dataset
// construction and preprocessing choices each prior TGA made. It is static
// knowledge, reproduced here so the experiments binary prints the full
// evaluation section.

// PriorWorkRow is one preprocessing dimension of Table 1.
type PriorWorkRow struct {
	Included string
	// Applies maps generator name → whether the row applies (✓ in the
	// paper's table).
	Applies map[string]bool
}

// PriorWorkColumns is Table 1's generator order.
var PriorWorkColumns = []string{"6Sense", "DET", "6Scan", "6Hit", "6Graph", "6Tree", "6Gen", "EIP"}

// PriorWorkMatrix reproduces Table 1 verbatim.
func PriorWorkMatrix() []PriorWorkRow {
	mk := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	return []PriorWorkRow{
		{Included: "All", Applies: mk("6Gen", "EIP")},
		{Included: "No Dealiasing", Applies: mk("6Gen", "EIP")},
		{Included: "Offline Dealiasing", Applies: mk("6Sense", "DET", "6Scan", "6Hit", "6Graph", "6Tree")},
		{Included: "Online Dealiasing", Applies: mk("6Sense")},
		{Included: "Include Inactive", Applies: mk("6Tree", "6Gen", "EIP")},
		{Included: "Only Active", Applies: mk("6Sense", "DET", "6Hit", "6Graph", "6Tree")},
		{Included: "Port Spec.", Applies: mk("6Scan")},
	}
}

// RenderPriorWork prints Table 1.
func RenderPriorWork() string {
	t := &Table{
		Title:  "Table 1: Dataset construction and preprocessing methods by TGA",
		Header: append([]string{"Included"}, PriorWorkColumns...),
	}
	for _, row := range PriorWorkMatrix() {
		cells := []string{row.Included}
		for _, g := range PriorWorkColumns {
			if row.Applies[g] {
				cells = append(cells, "yes")
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}
