package experiment

import (
	"strings"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
)

// testEnv is a compact environment shared by the integration tests. Budgets
// are small; assertions check shape, not magnitude.
func testEnv(t testing.TB) *Env {
	t.Helper()
	return NewEnv(EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 4000})
}

func TestEnvConstruction(t *testing.T) {
	e := testEnv(t)
	if e.Full.Len() < 20000 {
		t.Fatalf("full dataset = %d", e.Full.Len())
	}
	if len(e.Sources) != len(seeds.AllSources) {
		t.Fatalf("sources = %d", len(e.Sources))
	}
	if e.Offline.Len() == 0 {
		t.Fatal("offline list empty")
	}
	// The offline list must be incomplete.
	if e.Offline.Len() >= len(e.World.AliasedPrefixes()) {
		t.Fatal("offline list should not cover all ground truth")
	}
}

func TestDealiasingTreatmentsShrinkMonotonically(t *testing.T) {
	e := testEnv(t)
	full := e.Full.Len()
	off := e.DealiasedSeeds(alias.ModeOffline).Len()
	joint := e.DealiasedSeeds(alias.ModeJoint).Len()
	if !(joint <= off && off < full) {
		t.Fatalf("sizes: full=%d offline=%d joint=%d", full, off, joint)
	}
	// Joint must remove a substantial share: the collectors pour in
	// aliases.
	if float64(joint) > 0.9*float64(full) {
		t.Fatalf("joint dealiasing removed too little: %d of %d", joint, full)
	}
}

func TestActiveSubsets(t *testing.T) {
	e := testEnv(t)
	allActive := e.AllActiveSeeds()
	joint := e.DealiasedSeeds(alias.ModeJoint)
	if allActive.Len() == 0 || allActive.Len() >= joint.Len() {
		t.Fatalf("allActive=%d joint=%d", allActive.Len(), joint.Len())
	}
	for _, p := range proto.All {
		port := e.PortActiveSeeds(p)
		if port.Len() == 0 {
			t.Fatalf("%v active empty", p)
		}
		// Port-specific ⊆ All Active.
		if port.Diff(allActive, "x").Len() != 0 {
			t.Fatalf("%v active not a subset of All Active", p)
		}
	}
	// ICMP dominates (the world is ping-friendlier than TCP).
	if e.PortActiveSeeds(proto.ICMP).Len() < e.PortActiveSeeds(proto.UDP53).Len() {
		t.Fatal("ICMP active should exceed UDP53 active")
	}
}

func TestDatasetSummaryShape(t *testing.T) {
	e := testEnv(t)
	sum := e.DatasetSummary()
	if len(sum.Rows) != len(seeds.AllSources)+4 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	byName := map[string]DatasetSummaryRow{}
	for _, r := range sum.Rows {
		byName[r.Source] = r
		if r.ActiveAny > r.Dealiased || r.Dealiased > r.Unique {
			t.Fatalf("%s: active %d > dealiased %d > unique %d invariant broken",
				r.Source, r.ActiveAny, r.Dealiased, r.Unique)
		}
		if r.ActiveASes > r.ASes {
			t.Fatalf("%s: activeASes %d > ASes %d", r.Source, r.ActiveASes, r.ASes)
		}
	}
	// Traceroute sources cover nearly all ASes; AddrMiner is alias-heavy.
	total := byName["All Sources"]
	scamper := byName["Scamper"]
	if float64(scamper.ASes) < 0.9*float64(total.ASes) {
		t.Fatalf("Scamper AS coverage %d of %d too low", scamper.ASes, total.ASes)
	}
	am := byName["AddrMiner"]
	if float64(am.Dealiased) > 0.5*float64(am.Unique) {
		t.Fatalf("AddrMiner should be mostly aliased: %d of %d clean", am.Dealiased, am.Unique)
	}
	hl := byName["IPv6 Hitlist"]
	if float64(hl.Dealiased) < 0.9*float64(hl.Unique) {
		t.Fatalf("Hitlist should be mostly clean: %d of %d", hl.Dealiased, hl.Unique)
	}
	if !strings.Contains(sum.Render(), "Scamper") {
		t.Fatal("render missing rows")
	}
}

func TestSourceOverlapsShape(t *testing.T) {
	e := testEnv(t)
	ips, ases := e.SourceOverlaps(false)
	if len(ips.Names) != len(seeds.AllSources) || len(ases.Names) != len(ips.Names) {
		t.Fatal("matrix dimensions wrong")
	}
	// Toplists overlap each other far more than with CAIDA DNS.
	idx := map[string]int{}
	for i, n := range ips.Names {
		idx[n] = i
	}
	u, tr, ca := idx["Umbrella"], idx["Tranco"], idx["CAIDA DNS"]
	if ips.Frac[u][tr] <= ips.Frac[u][ca] {
		t.Fatalf("Umbrella overlaps Tranco %.2f vs CAIDA %.2f — toplists should cluster",
			ips.Frac[u][tr], ips.Frac[u][ca])
	}
	// Responsive variant computes too.
	rips, _ := e.SourceOverlaps(true)
	if len(rips.Names) != len(ips.Names) {
		t.Fatal("responsive matrix wrong")
	}
}

func TestRQ1aShape(t *testing.T) {
	e := testEnv(t)
	gens := []string{"6Tree", "6Gen"}
	res, err := e.RunRQ1a([]proto.Protocol{proto.ICMP}, gens, 3000)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Ratios[proto.ICMP]
	if len(rows) != len(gens) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Dealiasing must slash generated aliases...
		if r.Aliases > -0.5 {
			t.Errorf("%s: aliases ratio %.2f, want deep negative", r.Generator, r.Aliases)
		}
		// ...and must not hurt hits.
		if r.Hits < -0.2 {
			t.Errorf("%s: hits ratio %.2f, dealiasing should help", r.Generator, r.Hits)
		}
	}
	if !strings.Contains(res.Render(), "ICMP") {
		t.Fatal("render empty")
	}
}

func TestTable4Shape(t *testing.T) {
	e := testEnv(t)
	gens := []string{"6Tree", "6Gen"}
	res, err := e.RunTable4(gens, 3000)
	if err != nil {
		t.Fatal(err)
	}
	totalRaw := 0
	for _, g := range gens {
		row := res.Aliases[g]
		totalRaw += row[0]
		// Aliases drop as dealiasing gets stricter: none >> joint.
		if row[0] > 0 && row[3] > row[0]/5 {
			t.Errorf("%s: joint %d vs none %d — joint must nearly eliminate aliases", g, row[3], row[0])
		}
	}
	if totalRaw == 0 {
		t.Error("no generator found aliases on raw seeds")
	}
	if !strings.Contains(res.Render(), "D_joint") {
		t.Fatal("render wrong")
	}
}

func TestRQ4GreedyOrdering(t *testing.T) {
	e := testEnv(t)
	gens := []string{"6Sense", "6Tree", "6Scan"}
	res, err := e.RunRQ4([]proto.Protocol{proto.ICMP}, gens, 3000)
	if err != nil {
		t.Fatal(err)
	}
	hits := res.HitOrder[proto.ICMP]
	if len(hits) != len(gens) {
		t.Fatalf("order entries = %d", len(hits))
	}
	// Greedy: marginal contributions must be non-increasing and totals
	// non-decreasing.
	for i := 1; i < len(hits); i++ {
		if hits[i].New > hits[i-1].New {
			t.Fatalf("greedy violated: %+v", hits)
		}
		if hits[i].Total < hits[i-1].Total {
			t.Fatal("cumulative total decreased")
		}
	}
	if !strings.Contains(res.Render(), "cumulative") {
		t.Fatal("render empty")
	}
}

func TestRQ3AndDerivedTables(t *testing.T) {
	e := testEnv(t)
	gens := []string{"6Tree"}
	srcs := []seeds.Source{seeds.SourceHitlist, seeds.SourceScamper}
	rq3, err := e.RunRQ3([]proto.Protocol{proto.ICMP}, gens, srcs, 1500)
	if err != nil {
		t.Fatal(err)
	}
	hitlistHits := rq3.Outcome[seeds.SourceHitlist][proto.ICMP]["6Tree"].Hits
	if hitlistHits == 0 {
		t.Fatal("hitlist-seeded run found nothing")
	}
	t5, err := e.RunTable5(rq3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 1 {
		t.Fatalf("table5 rows = %d", len(t5.Rows))
	}
	r := t5.Rows[0]
	if r.BigHits == 0 || r.CombinedHits == 0 {
		t.Fatalf("table5 zeros: %+v", r)
	}
	t6 := e.Table6(rq3, 3)
	cell := t6.Cells[seeds.SourceHitlist][proto.ICMP]
	if cell.Total == 0 || len(cell.Top) == 0 {
		t.Fatalf("table6 cell empty: %+v", cell)
	}
	if cell.Top[0].Share <= 0 || cell.Top[0].Share > 1 {
		t.Fatalf("share out of range: %v", cell.Top[0].Share)
	}
	if !strings.Contains(t6.Render(), "Total") || !strings.Contains(t5.Render(), "Generator") {
		t.Fatal("renders wrong")
	}
	if !strings.Contains(rq3.RenderRaw(proto.ICMP), "6Tree") {
		t.Fatal("raw render wrong")
	}
}

func TestPriorWorkMatrix(t *testing.T) {
	rows := PriorWorkMatrix()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check against Table 1.
	if !rows[0].Applies["6Gen"] || rows[0].Applies["DET"] {
		t.Fatal("'All' row wrong")
	}
	if !rows[3].Applies["6Sense"] || rows[3].Applies["DET"] {
		t.Fatal("'Online Dealiasing' row wrong")
	}
	if !rows[6].Applies["6Scan"] {
		t.Fatal("'Port Spec.' row wrong")
	}
	out := RenderPriorWork()
	if !strings.Contains(out, "6Sense") || !strings.Contains(out, "Port Spec.") {
		t.Fatal("render wrong")
	}
}

func TestRenderHelpers(t *testing.T) {
	if got := fmtInt(1234567); got != "1,234,567" {
		t.Fatalf("fmtInt = %q", got)
	}
	if got := fmtInt(-1234); got != "-1,234" {
		t.Fatalf("fmtInt neg = %q", got)
	}
	if got := fmtInt(7); got != "7" {
		t.Fatalf("fmtInt small = %q", got)
	}
	if got := fmtRatio(0.5); got != "+0.50" {
		t.Fatalf("fmtRatio = %q", got)
	}
	if got := fmtPct(0.123); got != "12.3%" {
		t.Fatalf("fmtPct = %q", got)
	}
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "bb") {
		t.Fatalf("table render: %q", s)
	}
}

func TestDomainVolumes(t *testing.T) {
	e := testEnv(t)
	rows := e.DomainVolumes()
	if len(rows) != 8 {
		t.Fatalf("domain sources = %d", len(rows))
	}
	for _, r := range rows {
		if r.Unique == 0 {
			t.Fatalf("%s empty", r.Source)
		}
	}
}
