package experiment

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunParallelErrorCancelsSiblings is the regression test for the grid
// fan-out bug where one job's failure left its siblings running to
// completion: the failing job must cancel the shared grid context so a
// blocked sibling unblocks promptly.
func TestRunParallelErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	unblocked := make(chan struct{})
	err := runParallel(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 0 {
			// Give the sibling time to start and block on its context.
			time.Sleep(10 * time.Millisecond)
			return boom
		}
		select {
		case <-ctx.Done():
			close(unblocked)
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return errors.New("sibling never saw the cancellation")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the first worker error", err)
	}
	select {
	case <-unblocked:
	default:
		t.Fatal("blocked sibling did not observe grid cancellation")
	}
}

// TestRunParallelSerialPathUsesGridContext covers the workers<=1 path:
// the fn context must be cancellable like the concurrent one.
func TestRunParallelSerialPathUsesGridContext(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := runParallel(context.Background(), 1, 3, func(ctx context.Context, i int) error {
		ran++
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d jobs after a serial failure, want 1", ran)
	}
}

// TestRunParallelParentCancelWins: a parent cancellation must surface as
// the parent's error even when no job failed.
func TestRunParallelParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := runParallel(ctx, 2, 4, func(ctx context.Context, i int) error {
		cancel()
		<-ctx.Done()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
