package experiment

import (
	"path/filepath"
	"strings"
	"testing"

	"seedscan/internal/experiment/grid"
)

// TestRQ5TimeResumeByteIdentical is the acceptance bar for the RQ5 table:
// a run resumed from a checkpoint store renders byte-identically to both
// the run that wrote the store and a fresh uncheckpointed run.
func TestRQ5TimeResumeByteIdentical(t *testing.T) {
	gens := []string{"6Tree", "DET"}
	render := func(store grid.Store) string {
		env := NewEnv(EnvConfig{NumASes: 40, CollectScale: 0.3, Budget: 3000, GridStore: store})
		res, err := env.RunRQ5Time(gens, 3000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Epochs) != 4 {
			t.Fatalf("ran %d epochs", len(res.Epochs))
		}
		return res.Render()
	}

	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st1, err := grid.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	first := render(st1)
	// The store holds the TGA cohort cells plus one cell per daemon epoch.
	if st1.Len() != len(gens)+4 {
		t.Fatalf("store holds %d cells, want %d", st1.Len(), len(gens)+4)
	}
	st1.Close()

	st2, err := grid.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumed := render(st2)
	fresh := render(nil)

	if first != resumed {
		t.Fatalf("resumed render diverges:\n%s\nvs\n%s", first, resumed)
	}
	if first != fresh {
		t.Fatalf("fresh render diverges:\n%s\nvs\n%s", first, fresh)
	}

	// Sanity on content: the table reports every epoch and some savings.
	if !strings.Contains(first, "RQ5 (metrics over time)") || !strings.Contains(first, "TGA hit persistence") {
		t.Fatalf("render missing tables:\n%s", first)
	}
}
