package experiment

import (
	"context"

	"seedscan/internal/proto"
)

// RunRQ2 answers RQ2 (Figure 5): does tailoring the seed dataset to the
// scanned port/protocol help? Original = All Active; changed = seeds
// active on the scanned protocol specifically.
func (e *Env) RunRQ2(protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.RunRQ2Ctx(context.Background(), protos, gens, budget)
}

// RunRQ2Ctx is RunRQ2 under a context.
func (e *Env) RunRQ2Ctx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.compare(ctx, e.SpecRQ2(protos, gens, budget), "All Active", "Port-Specific",
		treatAllActive, treatPort, protos, gens, budget)
}

// CrossPortResult holds Appendix D's Figure 7: hits per (input dataset
// active on X) × (scanned protocol Y), summed over generators.
type CrossPortResult struct {
	Budget int
	Gens   []string
	// Hits[input][scan] — input indexes proto.All plus the final "All
	// Active" row at index proto.Count.
	Hits [proto.Count + 1][proto.Count]int
}

// InputLabels names the cross-port input datasets in order.
var InputLabels = []string{"ICMP", "TCP80", "TCP443", "UDP53", "All Active"}

// RunCrossPort reproduces Figure 7: each input dataset (seeds active on
// one protocol, plus All Active) scanned on every protocol.
func (e *Env) RunCrossPort(gens []string, budget int) (*CrossPortResult, error) {
	return e.RunCrossPortCtx(context.Background(), gens, budget)
}

// RunCrossPortCtx is RunCrossPort under a context.
func (e *Env) RunCrossPortCtx(ctx context.Context, gens []string, budget int) (*CrossPortResult, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	rs, err := e.Grid().Run(ctx, e.SpecCrossPort(gens, budget))
	if err != nil {
		return nil, err
	}
	res := &CrossPortResult{Budget: budget, Gens: gens}
	for i, in := range crossPortInputs() {
		for _, scanP := range proto.All {
			total := 0
			for _, g := range gens {
				total += rs.Of(e.cell(g, in, scanP, budget, 0)).Outcome.Hits
			}
			res.Hits[i][scanP] = total
		}
	}
	return res, nil
}

// Render prints the cross-port matrix.
func (r *CrossPortResult) Render() string {
	t := &Table{
		Title:  "Figure 7: Active addresses per scanned protocol, by input dataset",
		Header: []string{"Input \\ Scan", "ICMP", "TCP80", "TCP443", "UDP53"},
	}
	for i, label := range InputLabels {
		t.AddRow(label,
			fmtInt(r.Hits[i][proto.ICMP]), fmtInt(r.Hits[i][proto.TCP80]),
			fmtInt(r.Hits[i][proto.TCP443]), fmtInt(r.Hits[i][proto.UDP53]))
	}
	return t.String()
}
