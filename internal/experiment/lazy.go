package experiment

import "sync"

// lazyCache is a per-key singleflight memo for the Env's lazily computed
// treatment artifacts (dealiased datasets, responsive subsets, output
// dealiasers). Many grid cells resolve the same treatment concurrently
// and cold; the first caller builds, everyone else blocks until the value
// is ready. Builders are infallible and must not re-enter the same key
// (cross-key recursion — seedActive building on DealiasedSeeds — is fine:
// no lock is held while building).
type lazyCache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*lazySlot[V]
}

type lazySlot[V any] struct {
	ready chan struct{}
	v     V
}

// get returns the cached value for k, building it exactly once.
func (l *lazyCache[K, V]) get(k K, build func() V) V {
	l.mu.Lock()
	if l.m == nil {
		l.m = make(map[K]*lazySlot[V])
	}
	if s, ok := l.m[k]; ok {
		l.mu.Unlock()
		<-s.ready
		return s.v
	}
	s := &lazySlot[V]{ready: make(chan struct{})}
	l.m[k] = s
	l.mu.Unlock()
	s.v = build()
	close(s.ready)
	return s.v
}
