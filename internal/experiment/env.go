// Package experiment orchestrates the paper's research questions end to
// end: it builds the world, collects and preprocesses seed datasets
// (Table 2's treatments), drives the eight TGAs through the scanner with
// two-tier output dealiasing, and renders every table and figure of the
// evaluation section. Every TGA-running harness compiles into a
// declarative grid.Spec and executes through the Env's shared grid
// engine, which deduplicates cells across specs and checkpoints completed
// cells for resume (see internal/experiment/grid).
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"seedscan/internal/alias"
	"seedscan/internal/cluster"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga"
	"seedscan/internal/tga/all"
	"seedscan/internal/tga/modelcache"
	"seedscan/internal/wire"
	"seedscan/internal/world"
)

// experimentBatchSize is the generate→scan→feedback granularity of every
// grid cell. Small batches give online generators enough feedback rounds
// to adapt at scaled-down budgets (the paper's 50M-budget runs see
// thousands of rounds).
const experimentBatchSize = 1024

// EnvConfig sizes an experimental environment. Zero values get defaults.
type EnvConfig struct {
	// WorldSeed / NumASes / LossRate configure the simulated Internet.
	WorldSeed uint64
	NumASes   int
	LossRate  float64
	// CollectSeed / CollectScale configure seed collection.
	CollectSeed  uint64
	CollectScale float64
	// Budget is the per-TGA generation budget (the paper's 50M, scaled;
	// default 20000).
	Budget int
	// OfflineCoverage is the fraction of ground-truth aliased prefixes on
	// the published offline list (default 0.6 — the list is incomplete,
	// as the paper stresses).
	OfflineCoverage float64
	// ScanSecret keys probe cookies.
	ScanSecret uint64
	// ClusterWorkers > 1 fans all scanning out across that many in-process
	// cluster workers; the merged results are byte-identical to the single
	// scanner's, so experiment outcomes do not change — only the scanning
	// topology does. 0 or 1 keeps the plain single scanner.
	ClusterWorkers int
	// Chain composes wire middlewares onto the world link before any
	// scanner (or cluster worker) is built over it: Chain[0] is outermost.
	// Taps and shapers are observation-only; fault injectors change scan
	// outcomes, and Chain is deliberately NOT part of Fingerprint — runs
	// whose chain alters results must use a fresh GridStore, or stale
	// checkpoints from an unfaulted run will be replayed as-is.
	Chain []wire.Middleware
	// Workers overrides the experiment fan-out width (default: NumCPU-1,
	// capped at 8). Deterministic outcomes do not depend on it.
	Workers int
	// GridStore checkpoints completed grid cells, letting an interrupted
	// run resume with byte-identical results. Nil keeps checkpoints
	// in-process only (cells are still deduplicated across specs).
	GridStore grid.Store
	// Telemetry receives the environment's spans, progress events, and
	// metrics. Nil gets a silent tracer, so instrumentation is always
	// wired and always cheap.
	Telemetry *telemetry.Tracer
}

func (c *EnvConfig) fillDefaults() {
	if c.WorldSeed == 0 {
		c.WorldSeed = 42
	}
	if c.NumASes == 0 {
		c.NumASes = 300
	}
	if c.LossRate == 0 {
		c.LossRate = 0.01
	}
	if c.CollectSeed == 0 {
		c.CollectSeed = 7
	}
	if c.CollectScale == 0 {
		c.CollectScale = 1
	}
	if c.Budget == 0 {
		c.Budget = 20000
	}
	if c.OfflineCoverage == 0 {
		c.OfflineCoverage = 0.6
	}
	if c.ScanSecret == 0 {
		c.ScanSecret = 0x5eed5ca9
	}
}

// ScanProber is the scanning surface experiments probe through — either
// the Env's reference scanner or an in-process cluster pool whose merged
// output is byte-identical to it. It is the union of the two shared
// prober surfaces (see scanner.Prober); *scanner.Scanner and
// *cluster.Pool both implement it.
type ScanProber interface {
	scanner.Prober
	scanner.ContextProber
}

// Env is a fully assembled experimental setup.
type Env struct {
	Cfg     EnvConfig
	World   *world.World
	Scanner *scanner.Scanner
	// Prober is what every experiment scans through: Scanner itself, or a
	// cluster pool over the same link when Cfg.ClusterWorkers > 1.
	Prober  ScanProber
	Sources map[seeds.Source]*seeds.Dataset
	Full    *seeds.Dataset
	Offline *alias.OfflineList
	// Tele is the environment's tracer (never nil; a silent tracer when
	// EnvConfig.Telemetry was not set).
	Tele *telemetry.Tracer

	// Lazily computed treatment caches, each per-key singleflight: grid
	// cells resolve treatments concurrently and cold, and the first
	// resolver builds while the rest wait (no caller-side pre-warming).
	dealiased   lazyCache[alias.Mode, *seeds.Dataset]
	activeByP   lazyCache[proto.Protocol, *ipaddr.Set]
	allActive   lazyCache[struct{}, *seeds.Dataset]
	outDealiase lazyCache[proto.Protocol, *alias.Dealiaser]
	// models caches mined TGA seed models across runs: grid cells that fix
	// the seed treatment and vary only the protocol (the paper's own
	// methodology) reuse the model instead of re-mining it per cell.
	models *modelcache.Cache

	// gridEngine schedules every spec's cells (lazily built: the
	// fingerprint digests the collected corpus).
	gridOnce   sync.Once
	gridEngine *grid.Engine
}

// NewEnv builds the world, collects all seed sources at the collection
// epoch, derives the (incomplete) offline alias list, and switches the
// world to the scan epoch.
func NewEnv(cfg EnvConfig) *Env {
	cfg.fillDefaults()
	tr := cfg.Telemetry
	if tr == nil {
		tr = telemetry.NewTracer(nil)
	}
	w := world.New(world.Config{Seed: cfg.WorldSeed, NumASes: cfg.NumASes, LossRate: cfg.LossRate})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: cfg.CollectSeed, Scale: cfg.CollectScale})
	full := seeds.CombineAll(srcs)

	// The published alias list covers only part of the truth; which part
	// is a deterministic function of the world seed.
	truth := w.AliasedPrefixes()
	sort.Slice(truth, func(i, j int) bool { return truth[i].Addr().Less(truth[j].Addr()) })
	rng := rand.New(rand.NewSource(int64(cfg.WorldSeed) + 0xa11a5))
	rng.Shuffle(len(truth), func(i, j int) { truth[i], truth[j] = truth[j], truth[i] })
	keep := int(float64(len(truth)) * cfg.OfflineCoverage)
	listed := append([]ipaddr.Prefix(nil), truth[:keep]...)

	w.SetEpoch(world.ScanEpoch)
	link := wire.Chain(w.Link(), cfg.Chain...)
	e := &Env{
		Cfg:   cfg,
		World: w,
		Scanner: scanner.New(link,
			scanner.WithSecret(cfg.ScanSecret),
			scanner.WithTelemetry(tr.Registry())),
		Tele:    tr,
		Sources: srcs,
		Full:    full,
		Offline: alias.NewOfflineList(listed),
		models:  modelcache.New(),
	}
	e.models.SetTelemetry(tr.Registry())
	e.Prober = e.Scanner
	if cfg.ClusterWorkers > 1 {
		// The pool's worker scanners replicate the reference scanner's
		// secret over the same (already chained) link, so everything scanned
		// through Prober merges byte-identically to a Scanner-only
		// environment.
		e.Prober = cluster.NewLocalPool(cfg.ClusterWorkers, link, cluster.Config{
			Secret:    cfg.ScanSecret,
			Telemetry: tr.Registry(),
		}, scanner.WithTelemetry(tr.Registry()))
	}
	return e
}

// Fingerprint is the environment's content address: every EnvConfig knob
// that determines experiment outcomes, plus an order-sensitive digest of
// the collected seed corpus. Grid cell keys are derived from it, so a
// checkpoint store only ever satisfies runs with an identical
// environment. ClusterWorkers and Workers are deliberately absent: the
// scanning topology and fan-out width change wall-clock, not results, so
// a store written by a cluster-backed run resumes a single-scanner run
// and vice versa.
func (e *Env) Fingerprint() string {
	c := e.Cfg
	return fmt.Sprintf("w%d-a%d-l%g-c%d-s%g-o%g-k%x-d%016x",
		c.WorldSeed, c.NumASes, c.LossRate, c.CollectSeed, c.CollectScale,
		c.OfflineCoverage, c.ScanSecret, ipaddr.Digest(e.Full.SortedSlice()))
}

// Grid returns the environment's cell engine, shared by every spec so
// identical cells across concurrently running harnesses execute once.
func (e *Env) Grid() *grid.Engine {
	e.gridOnce.Do(func() {
		e.gridEngine = grid.NewEngine(grid.Config{
			Fingerprint: e.Fingerprint(),
			Store:       e.Cfg.GridStore,
			Workers:     e.Workers(),
			Telemetry:   e.Tele,
			Exec:        e.RunCell,
		})
	})
	return e.gridEngine
}

// OutputDealiaser returns the shared joint (offline+online) dealiaser used
// to classify TGA output on protocol p, per §4.2. Safe for concurrent
// cold calls.
func (e *Env) OutputDealiaser(p proto.Protocol) *alias.Dealiaser {
	return e.outDealiase.get(p, func() *alias.Dealiaser {
		d := alias.New(alias.ModeJoint, e.Offline, e.Prober, p, e.Cfg.ScanSecret^uint64(p))
		d.SetTelemetry(e.Tele.Registry())
		return d
	})
}

// DealiasedSeeds returns the full dataset under one of Table 2's
// dealiasing treatments. Results are cached; concurrent cold calls for
// the same mode dealias once.
func (e *Env) DealiasedSeeds(mode alias.Mode) *seeds.Dataset {
	return e.dealiased.get(mode, func() *seeds.Dataset {
		d := alias.New(mode, e.Offline, e.Prober, proto.ICMP, e.Cfg.ScanSecret^0xa11a5)
		d.SetTelemetry(e.Tele.Registry())
		clean, _ := d.Split(e.Full.Slice())
		return seeds.FromAddrs("Full/"+mode.String(), clean)
	})
}

// seedActive scans the joint-dealiased seeds on p and caches the
// responsive subset; concurrent cold calls scan once.
func (e *Env) seedActive(p proto.Protocol) *ipaddr.Set {
	return e.activeByP.get(p, func() *ipaddr.Set {
		base := e.DealiasedSeeds(alias.ModeJoint)
		return ipaddr.NewSet(e.Prober.ScanActive(base.Slice(), p)...)
	})
}

// AllActiveSeeds returns RQ1.b's "All Active" dataset: joint-dealiased
// seeds responsive on at least one studied protocol at scan time.
func (e *Env) AllActiveSeeds() *seeds.Dataset {
	return e.allActive.get(struct{}{}, func() *seeds.Dataset {
		u := ipaddr.NewSet()
		for _, p := range proto.All {
			u.AddSet(e.seedActive(p))
		}
		return seeds.FromSet("All Active", u)
	})
}

// PortActiveSeeds returns RQ2's port-specific dataset: seeds responsive on
// exactly the probed protocol.
func (e *Env) PortActiveSeeds(p proto.Protocol) *seeds.Dataset {
	return seeds.FromSet("Active/"+p.String(), e.seedActive(p).Clone())
}

// SourceActiveSeeds returns RQ3's per-source dataset: the source's
// addresses that are in the All Active set.
func (e *Env) SourceActiveSeeds(src seeds.Source) *seeds.Dataset {
	return e.Sources[src].Restrict(src.String()+"/active", e.AllActiveSeeds().Addrs)
}

// TGAResult couples a run's raw output with its measured outcome.
type TGAResult struct {
	Run     *tga.RunResult
	Outcome metrics.Outcome
}

// RunTGA generates budget addresses with the named TGA from seedSet,
// scans them on p, dealiases the output with the shared joint dealiaser,
// and measures hits/ASes/aliases. ICMP outcomes exclude the pathological
// AS12322 analogue, as §4.1 prescribes. It is RunTGACtx with a background
// context.
func (e *Env) RunTGA(name string, seedSet []ipaddr.Addr, p proto.Protocol, budget int) (TGAResult, error) {
	return e.RunTGACtx(context.Background(), name, seedSet, p, budget)
}

// RunTGACtx is RunTGA under a context: cancellation stops the run between
// batches (and mid-scan), and the environment's tracer is attached to ctx
// so the TGA driver's span hierarchy lands in Env telemetry unless the
// caller brought a tracer of its own.
func (e *Env) RunTGACtx(ctx context.Context, name string, seedSet []ipaddr.Addr, p proto.Protocol, budget int) (TGAResult, error) {
	return e.runTGA(ctx, name, seedSet, p, budget, 0)
}

// runTGA is the common TGA runner behind RunTGACtx and grid cell
// execution; batchSize <= 0 selects the experiment default.
func (e *Env) runTGA(ctx context.Context, name string, seedSet []ipaddr.Addr, p proto.Protocol, budget, batchSize int) (TGAResult, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if batchSize <= 0 {
		batchSize = experimentBatchSize
	}
	ctx = telemetry.EnsureContext(ctx, e.Tele)
	g, err := all.New(name)
	if err != nil {
		return TGAResult{}, err
	}
	run, err := tga.RunContext(ctx, g, seedSet, tga.RunConfig{
		Budget:       budget,
		BatchSize:    batchSize,
		Proto:        p,
		Prober:       e.Prober,
		Dealiaser:    e.OutputDealiaser(p),
		ExcludeSeeds: true,
		Models:       e.models,
	})
	if err != nil {
		return TGAResult{}, err
	}
	exclude := 0
	if p == proto.ICMP {
		exclude = world.PathologicalASN
	}
	out := metrics.Measure(run.Hits, run.AliasedHits, e.World.ASDB(), exclude)
	return TGAResult{Run: run, Outcome: out}, nil
}

// RunCell executes one grid cell: resolve the treatment to its seed list,
// run the generator, and measure. An empty treatment (a seed source with
// no responsive addresses) yields the zero result without running — the
// same skip the bespoke per-RQ drivers applied. RunCell is the Env's
// grid executor; callers normally go through Grid().Run, which adds
// dedup, checkpointing, and resume.
func (e *Env) RunCell(ctx context.Context, c grid.Cell) (grid.CellResult, error) {
	seedSet, err := e.TreatmentSeeds(c.Treatment)
	if err != nil {
		return grid.CellResult{}, err
	}
	if len(seedSet) == 0 {
		return grid.CellResult{}, nil
	}
	r, err := e.runTGA(ctx, c.Gen, seedSet, c.Proto, c.Budget, c.BatchSize)
	if err != nil {
		return grid.CellResult{}, err
	}
	return grid.CellResult{Outcome: r.Outcome, Hits: r.Run.Hits}, nil
}
