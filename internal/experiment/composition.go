package experiment

import (
	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
)

// DatasetSummaryRow is one row of Table 3.
type DatasetSummaryRow struct {
	Source     string
	Category   string
	Unique     int
	ASes       int
	Dealiased  int
	Active     [proto.Count]int
	ActiveAny  int
	ActiveASes int
}

// DatasetSummary reproduces Table 3: per-source population, AS coverage,
// dealiased volume, and per-protocol responsiveness, plus the aggregate
// rows (All Domains / All Routers / All Hitlists / All Sources).
type DatasetSummary struct {
	Rows []DatasetSummaryRow
}

// DatasetSummary computes Table 3 for the environment.
func (e *Env) DatasetSummary() *DatasetSummary {
	dealiased := e.DealiasedSeeds(alias.ModeJoint)
	allActive := e.AllActiveSeeds()
	db := e.World.ASDB()

	row := func(name, cat string, ds *seeds.Dataset) DatasetSummaryRow {
		r := DatasetSummaryRow{Source: name, Category: cat}
		r.Unique = ds.Len()
		r.ASes = ds.ASCount(db)
		r.Dealiased = ds.Intersect(seeds.FromSet("", dealiased.Addrs), "").Len()
		for _, p := range proto.All {
			r.Active[p] = ds.Restrict("", e.seedActive(p)).Len()
		}
		act := ds.Restrict("", allActive.Addrs)
		r.ActiveAny = act.Len()
		r.ActiveASes = act.ASCount(db)
		return r
	}

	var out DatasetSummary
	domains := seeds.NewDataset("All Domains")
	routers := seeds.NewDataset("All Routers")
	hitlists := seeds.NewDataset("All Hitlists")
	for _, src := range seeds.AllSources {
		ds := e.Sources[src]
		out.Rows = append(out.Rows, row(src.String(), src.Category(), ds))
		switch src.Category() {
		case "D":
			domains.Addrs.AddSet(ds.Addrs)
		case "R":
			routers.Addrs.AddSet(ds.Addrs)
		default:
			hitlists.Addrs.AddSet(ds.Addrs)
		}
	}
	out.Rows = append(out.Rows,
		row("All Domains", "D", domains),
		row("All Routers", "R", routers),
		row("All Hitlists", "Both", hitlists),
		row("All Sources", "Both", e.Full),
	)
	return &out
}

// Render prints the summary in Table 3's layout.
func (s *DatasetSummary) Render() string {
	t := &Table{
		Title: "Table 3: Full summary of all seed data sources",
		Header: []string{"Source", "Pop.", "Unique", "ASes", "Dealiased",
			"ICMP", "TCP80", "TCP443", "UDP53", "Active", "ActiveASes"},
	}
	for _, r := range s.Rows {
		t.AddRow(r.Source, r.Category, fmtInt(r.Unique), fmtInt(r.ASes), fmtInt(r.Dealiased),
			fmtInt(r.Active[proto.ICMP]), fmtInt(r.Active[proto.TCP80]),
			fmtInt(r.Active[proto.TCP443]), fmtInt(r.Active[proto.UDP53]),
			fmtInt(r.ActiveAny), fmtInt(r.ActiveASes))
	}
	return t.String()
}

// SourceOverlaps reproduces Figure 1 (responsive=false) and Figure 2
// (responsive=true): pairwise overlap of the seed sources by IP and by AS.
func (e *Env) SourceOverlaps(responsive bool) (ips, ases metrics.OverlapMatrix) {
	names := make([]string, 0, len(seeds.AllSources))
	ipSets := make(map[string]map[ipaddr.Addr]struct{})
	asSets := make(map[string]map[int]struct{})
	var filter *ipaddr.Set
	if responsive {
		filter = e.AllActiveSeeds().Addrs
	}
	db := e.World.ASDB()
	for _, src := range seeds.AllSources {
		ds := e.Sources[src]
		if filter != nil {
			ds = ds.Restrict("", filter)
		}
		names = append(names, src.String())
		addrs := ds.Slice()
		ipSets[src.String()] = metrics.AddrSet(addrs)
		asSets[src.String()] = db.ASSet(addrs)
	}
	return metrics.Overlaps(names, ipSets), metrics.Overlaps(names, asSets)
}

// RenderOverlap prints an overlap matrix in Figure 1/2's layout.
func RenderOverlap(title string, m metrics.OverlapMatrix) string {
	t := &Table{Title: title, Header: append(append([]string{""}, m.Names...), "Overlap")}
	for i, n := range m.Names {
		cells := []string{n}
		for j := range m.Names {
			cells = append(cells, fmtPct(m.Frac[i][j]))
		}
		cells = append(cells, fmtPct(m.AnyOther[i]))
		t.AddRow(cells...)
	}
	return t.String()
}

// DomainVolumeRow is one row of Table 8 (the reproducible column: unique
// IPv6 addresses contributed by each domain-derived source).
type DomainVolumeRow struct {
	Source string
	Unique int
}

// DomainVolumes reproduces Table 8's unique-IP column for the domain
// sources.
func (e *Env) DomainVolumes() []DomainVolumeRow {
	var out []DomainVolumeRow
	for _, src := range seeds.AllSources {
		if src.Category() != "D" {
			continue
		}
		out = append(out, DomainVolumeRow{Source: src.String(), Unique: e.Sources[src].Len()})
	}
	return out
}

// RenderTable7 prints the paper's collection dates (Table 7) — facts of
// the authors' campaign, documented rather than simulated.
func RenderTable7() string {
	t := &Table{
		Title:  "Table 7: Date of dataset collection (paper's campaign)",
		Header: []string{"Source", "Collected", "Description"},
	}
	for _, src := range seeds.AllSources {
		m := seeds.Meta[src]
		t.AddRow(src.String(), m.Collected, m.Description)
	}
	return t.String()
}

// RenderWithPaper prints Table 3 with paper-vs-measured ratio columns:
// the fraction of each source that survives dealiasing and the fraction
// responsive, side by side with the paper's. Shape comparisons live here;
// absolute counts differ by the simulation's scale.
func (s *DatasetSummary) RenderWithPaper() string {
	t := &Table{
		Title:  "Table 3 (shape comparison): dealiased%% and active%% vs. the paper",
		Header: []string{"Source", "Unique", "Dealiased%", "Paper", "Active%", "Paper"},
	}
	pct := func(n, d int) string {
		if d == 0 {
			return "-"
		}
		return fmtPct(float64(n) / float64(d))
	}
	for _, src := range seeds.AllSources {
		var row *DatasetSummaryRow
		for i := range s.Rows {
			if s.Rows[i].Source == src.String() {
				row = &s.Rows[i]
				break
			}
		}
		if row == nil {
			continue
		}
		m := seeds.Meta[src]
		t.AddRow(row.Source, fmtInt(row.Unique),
			pct(row.Dealiased, row.Unique), pct(m.PaperDealiased, m.PaperUnique),
			pct(row.ActiveAny, row.Unique), pct(m.PaperActive, m.PaperUnique))
	}
	return t.String()
}
