package experiment

import (
	"context"

	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// RQ4Result holds RQ4 (Figure 6): every generator run on the All Active
// dataset per protocol, with the greedy cumulative-contribution orderings
// for hits and ASes.
type RQ4Result struct {
	Budget int
	Gens   []string
	// Outcome[p][gen] is the per-run measurement.
	Outcome map[proto.Protocol]map[string]metrics.Outcome
	// HitOrder[p] / ASOrder[p] are the greedy coverage orderings.
	HitOrder map[proto.Protocol][]metrics.Contribution
	ASOrder  map[proto.Protocol][]metrics.Contribution
}

// RunRQ4 reproduces Figure 6: combined-generator coverage on All Active.
func (e *Env) RunRQ4(protos []proto.Protocol, gens []string, budget int) (*RQ4Result, error) {
	return e.RunRQ4Ctx(context.Background(), protos, gens, budget)
}

// RunRQ4Ctx is RunRQ4 under a context.
func (e *Env) RunRQ4Ctx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*RQ4Result, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	rs, err := e.Grid().Run(ctx, e.SpecRQ4(protos, gens, budget))
	if err != nil {
		return nil, err
	}
	res := &RQ4Result{
		Budget:   budget,
		Gens:     gens,
		Outcome:  make(map[proto.Protocol]map[string]metrics.Outcome),
		HitOrder: make(map[proto.Protocol][]metrics.Contribution),
		ASOrder:  make(map[proto.Protocol][]metrics.Contribution),
	}
	db := e.World.ASDB()
	for _, p := range protos {
		res.Outcome[p] = make(map[string]metrics.Outcome)
		hitSets := make(map[string]map[ipaddr.Addr]struct{}, len(gens))
		asSets := make(map[string]map[int]struct{}, len(gens))
		for _, g := range gens {
			c := rs.Of(e.cell(g, TreatmentAllActive, p, budget, 0))
			res.Outcome[p][g] = c.Outcome
			hitSets[g] = metrics.AddrSet(c.Hits)
			asSets[g] = db.ASSet(c.Hits)
		}
		res.HitOrder[p] = metrics.GreedyCover(hitSets)
		res.ASOrder[p] = metrics.GreedyCover(asSets)
	}
	return res, nil
}

// Render prints Figure 6's cumulative contributions.
func (r *RQ4Result) Render() string {
	out := ""
	for _, p := range proto.All {
		hits, ok := r.HitOrder[p]
		if !ok {
			continue
		}
		t := &Table{
			Title:  "Figure 6 (" + p.String() + "): cumulative unique contributions",
			Header: []string{"Order", "Generator", "New Hits", "Cum Hits", "Generator", "New ASes", "Cum ASes"},
		}
		ases := r.ASOrder[p]
		for i := range hits {
			ag := "-"
			an, at := "-", "-"
			if i < len(ases) {
				ag = ases[i].Name
				an, at = fmtInt(ases[i].New), fmtInt(ases[i].Total)
			}
			t.AddRow(fmtInt(i+1), hits[i].Name, fmtInt(hits[i].New), fmtInt(hits[i].Total), ag, an, at)
		}
		out += t.String() + "\n"
	}
	return out
}
