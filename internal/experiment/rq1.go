package experiment

import (
	"context"

	"seedscan/internal/alias"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// ComparisonResult holds one "changed vs. original" experiment: the raw
// outcomes per protocol and generator under both treatments, plus the
// Performance Ratio rows that Figures 3-5 plot.
type ComparisonResult struct {
	Name     string
	Original string
	Changed  string
	Budget   int
	// Raw[p][gen] = [original, changed] outcomes.
	Raw map[proto.Protocol]map[string][2]metrics.Outcome
	// Ratios[p] lists a RatioRow per generator.
	Ratios map[proto.Protocol][]metrics.RatioRow
}

// compare executes a comparison spec through the grid engine and folds
// the cell outcomes into Performance Ratio rows. Cells shared with other
// specs (or already checkpointed) are not re-run; progress events carry
// the spec's unique-cell count.
func (e *Env) compare(ctx context.Context, spec grid.Spec, origName, chgName string,
	orig, chg func(p proto.Protocol) grid.Treatment,
	protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {

	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	rs, err := e.Grid().Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := &ComparisonResult{
		Name: spec.Name, Original: origName, Changed: chgName, Budget: budget,
		Raw:    make(map[proto.Protocol]map[string][2]metrics.Outcome),
		Ratios: make(map[proto.Protocol][]metrics.RatioRow),
	}
	for _, p := range protos {
		res.Raw[p] = make(map[string][2]metrics.Outcome)
		for _, g := range gens {
			ro := rs.Of(e.cell(g, orig(p), p, budget, 0)).Outcome
			rc := rs.Of(e.cell(g, chg(p), p, budget, 0)).Outcome
			res.Raw[p][g] = [2]metrics.Outcome{ro, rc}
			res.Ratios[p] = append(res.Ratios[p], metrics.RatioRow{
				Generator: g,
				Hits:      metrics.PerformanceRatio(float64(rc.Hits), float64(ro.Hits)),
				ASes:      metrics.PerformanceRatio(float64(rc.ASes), float64(ro.ASes)),
				Aliases:   metrics.PerformanceRatio(float64(rc.Aliases), float64(ro.Aliases)),
			})
		}
	}
	return res, nil
}

// RunRQ1a answers RQ1.a (Figure 3): how does dealiasing the seed dataset
// change TGA hits, ASes, and generated aliases? Original = full collected
// dataset; changed = joint (online+offline) dealiased dataset.
func (e *Env) RunRQ1a(protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.RunRQ1aCtx(context.Background(), protos, gens, budget)
}

// RunRQ1aCtx is RunRQ1a under a context.
func (e *Env) RunRQ1aCtx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.compare(ctx, e.SpecRQ1a(protos, gens, budget), "Full", "Dealiased",
		treatFull, treatJoint, protos, gens, budget)
}

// Table4Result holds Table 4: aliased addresses discovered by each TGA on
// an ICMP run, under every seed dealiasing treatment (the paper's four
// plus the cool-down extension).
type Table4Result struct {
	Budget int
	Gens   []string
	// Aliases[gen][i] for i indexing alias.Modes (none, offline, online,
	// joint, cooldown).
	Aliases map[string][]int
}

// RunTable4 reproduces Table 4.
func (e *Env) RunTable4(gens []string, budget int) (*Table4Result, error) {
	return e.RunTable4Ctx(context.Background(), gens, budget)
}

// RunTable4Ctx is RunTable4 under a context.
func (e *Env) RunTable4Ctx(ctx context.Context, gens []string, budget int) (*Table4Result, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	rs, err := e.Grid().Run(ctx, e.SpecTable4(gens, budget))
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Budget: budget, Gens: gens, Aliases: make(map[string][]int, len(gens))}
	for _, g := range gens {
		row := make([]int, len(alias.Modes))
		for i, m := range alias.Modes {
			row[i] = rs.Of(e.cell(g, TreatmentDealiased(m), proto.ICMP, budget, 0)).Outcome.Aliases
		}
		res.Aliases[g] = row
	}
	return res, nil
}

// table4ModeLabel names a dealiasing treatment's column in Table 4's
// layout ("D_All" for the untreated dataset).
func table4ModeLabel(m alias.Mode) string {
	if m == alias.ModeNone {
		return "D_All"
	}
	return "D_" + m.String()
}

// Render prints Table 4.
func (r *Table4Result) Render() string {
	header := make([]string, 0, len(alias.Modes)+1)
	header = append(header, "Model")
	for _, m := range alias.Modes {
		header = append(header, table4ModeLabel(m))
	}
	t := &Table{
		Title:  "Table 4: Aliased addresses discovered per seed-dealiasing treatment (ICMP)",
		Header: header,
	}
	for _, g := range r.Gens {
		cells := make([]string, 0, len(alias.Modes)+1)
		cells = append(cells, g)
		for _, v := range r.Aliases[g] {
			cells = append(cells, fmtInt(v))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// RunRQ1b answers RQ1.b (Figure 4): does restricting seeds to responsive
// addresses help? Original = joint-dealiased dataset (active+inactive);
// changed = All Active.
func (e *Env) RunRQ1b(protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.RunRQ1bCtx(context.Background(), protos, gens, budget)
}

// RunRQ1bCtx is RunRQ1b under a context.
func (e *Env) RunRQ1bCtx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.compare(ctx, e.SpecRQ1b(protos, gens, budget), "Dealiased", "All Active",
		treatJoint, treatAllActive, protos, gens, budget)
}

// Render prints the comparison's ratio rows per protocol.
func (r *ComparisonResult) Render() string {
	out := ""
	for _, p := range proto.All {
		rows, ok := r.Ratios[p]
		if !ok {
			continue
		}
		t := &Table{
			Title:  r.Name + " (" + p.String() + "): " + r.Changed + " vs. " + r.Original,
			Header: []string{"Generator", "Hits PR", "ASes PR", "Aliases PR", "Hits(orig)", "Hits(chg)", "ASes(orig)", "ASes(chg)"},
		}
		for _, row := range rows {
			raw := r.Raw[p][row.Generator]
			t.AddRow(row.Generator, fmtRatio(row.Hits), fmtRatio(row.ASes), fmtRatio(row.Aliases),
				fmtInt(raw[0].Hits), fmtInt(raw[1].Hits), fmtInt(raw[0].ASes), fmtInt(raw[1].ASes))
		}
		out += t.String() + "\n"
	}
	return out
}
