package experiment

import (
	"context"
	"sync/atomic"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// ComparisonResult holds one "changed vs. original" experiment: the raw
// outcomes per protocol and generator under both treatments, plus the
// Performance Ratio rows that Figures 3-5 plot.
type ComparisonResult struct {
	Name     string
	Original string
	Changed  string
	Budget   int
	// Raw[p][gen] = [original, changed] outcomes.
	Raw map[proto.Protocol]map[string][2]metrics.Outcome
	// Ratios[p] lists a RatioRow per generator.
	Ratios map[proto.Protocol][]metrics.RatioRow
}

// compare runs every generator on both seed treatments across protos and
// computes Performance Ratio rows. Progress events (one per completed
// generator×protocol pair) go to the environment's tracer.
func (e *Env) compare(ctx context.Context, name, origName, chgName string,
	original, changed func(p proto.Protocol) []ipaddr.Addr,
	protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {

	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	res := &ComparisonResult{
		Name: name, Original: origName, Changed: chgName, Budget: budget,
		Raw:    make(map[proto.Protocol]map[string][2]metrics.Outcome),
		Ratios: make(map[proto.Protocol][]metrics.RatioRow),
	}
	total := len(protos) * len(gens)
	var done atomic.Int64
	for _, p := range protos {
		res.Raw[p] = make(map[string][2]metrics.Outcome)
		orig := original(p)
		chg := changed(p)
		e.OutputDealiaser(p) // materialize the shared dealiaser before fan-out
		outcomes := make([][2]metrics.Outcome, len(gens))
		err := runParallel(ctx, e.Workers(), len(gens), func(ctx context.Context, i int) error {
			ro, err := e.RunTGACtx(ctx, gens[i], orig, p, budget)
			if err != nil {
				return err
			}
			rc, err := e.RunTGACtx(ctx, gens[i], chg, p, budget)
			if err != nil {
				return err
			}
			outcomes[i] = [2]metrics.Outcome{ro.Outcome, rc.Outcome}
			e.Tele.Progress(name, int(done.Add(1)), total)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, g := range gens {
			ro, rc := outcomes[i][0], outcomes[i][1]
			res.Raw[p][g] = outcomes[i]
			res.Ratios[p] = append(res.Ratios[p], metrics.RatioRow{
				Generator: g,
				Hits:      metrics.PerformanceRatio(float64(rc.Hits), float64(ro.Hits)),
				ASes:      metrics.PerformanceRatio(float64(rc.ASes), float64(ro.ASes)),
				Aliases:   metrics.PerformanceRatio(float64(rc.Aliases), float64(ro.Aliases)),
			})
		}
	}
	return res, nil
}

// RunRQ1a answers RQ1.a (Figure 3): how does dealiasing the seed dataset
// change TGA hits, ASes, and generated aliases? Original = full collected
// dataset; changed = joint (online+offline) dealiased dataset.
func (e *Env) RunRQ1a(protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.RunRQ1aCtx(context.Background(), protos, gens, budget)
}

// RunRQ1aCtx is RunRQ1a under a context.
func (e *Env) RunRQ1aCtx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.compare(ctx, "RQ1.a / Figure 3", "Full", "Dealiased",
		func(proto.Protocol) []ipaddr.Addr { return e.Full.SortedSlice() },
		func(proto.Protocol) []ipaddr.Addr { return e.DealiasedSeeds(alias.ModeJoint).SortedSlice() },
		protos, gens, budget)
}

// Table4Result holds Table 4: aliased addresses discovered by each TGA on
// an ICMP run, under the four seed dealiasing treatments.
type Table4Result struct {
	Budget int
	Gens   []string
	// Aliases[gen][i] for i indexing alias.Modes (none, offline, online,
	// joint).
	Aliases map[string][4]int
}

// RunTable4 reproduces Table 4.
func (e *Env) RunTable4(gens []string, budget int) (*Table4Result, error) {
	return e.RunTable4Ctx(context.Background(), gens, budget)
}

// RunTable4Ctx is RunTable4 under a context.
func (e *Env) RunTable4Ctx(ctx context.Context, gens []string, budget int) (*Table4Result, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	res := &Table4Result{Budget: budget, Gens: gens, Aliases: make(map[string][4]int)}
	// Materialize treatments and the dealiaser before fanning out.
	seedSets := make([][]ipaddr.Addr, len(alias.Modes))
	for i, mode := range alias.Modes {
		seedSets[i] = e.DealiasedSeeds(mode).SortedSlice()
	}
	e.OutputDealiaser(proto.ICMP)
	rows := make([][4]int, len(gens))
	var done atomic.Int64
	err := runParallel(ctx, e.Workers(), len(gens), func(ctx context.Context, gi int) error {
		for i := range alias.Modes {
			r, err := e.RunTGACtx(ctx, gens[gi], seedSets[i], proto.ICMP, budget)
			if err != nil {
				return err
			}
			rows[gi][i] = r.Outcome.Aliases
		}
		e.Tele.Progress("Table 4", int(done.Add(1)), len(gens))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, g := range gens {
		res.Aliases[g] = rows[i]
	}
	return res, nil
}

// Render prints Table 4.
func (r *Table4Result) Render() string {
	t := &Table{
		Title:  "Table 4: Aliased addresses discovered per seed-dealiasing treatment (ICMP)",
		Header: []string{"Model", "D_All", "D_offline", "D_online", "D_joint"},
	}
	for _, g := range r.Gens {
		row := r.Aliases[g]
		t.AddRow(g, fmtInt(row[0]), fmtInt(row[1]), fmtInt(row[2]), fmtInt(row[3]))
	}
	return t.String()
}

// RunRQ1b answers RQ1.b (Figure 4): does restricting seeds to responsive
// addresses help? Original = joint-dealiased dataset (active+inactive);
// changed = All Active.
func (e *Env) RunRQ1b(protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.RunRQ1bCtx(context.Background(), protos, gens, budget)
}

// RunRQ1bCtx is RunRQ1b under a context.
func (e *Env) RunRQ1bCtx(ctx context.Context, protos []proto.Protocol, gens []string, budget int) (*ComparisonResult, error) {
	return e.compare(ctx, "RQ1.b / Figure 4", "Dealiased", "All Active",
		func(proto.Protocol) []ipaddr.Addr { return e.DealiasedSeeds(alias.ModeJoint).SortedSlice() },
		func(proto.Protocol) []ipaddr.Addr { return e.AllActiveSeeds().SortedSlice() },
		protos, gens, budget)
}

// Render prints the comparison's ratio rows per protocol.
func (r *ComparisonResult) Render() string {
	out := ""
	for _, p := range proto.All {
		rows, ok := r.Ratios[p]
		if !ok {
			continue
		}
		t := &Table{
			Title:  r.Name + " (" + p.String() + "): " + r.Changed + " vs. " + r.Original,
			Header: []string{"Generator", "Hits PR", "ASes PR", "Aliases PR", "Hits(orig)", "Hits(chg)", "ASes(orig)", "ASes(chg)"},
		}
		for _, row := range rows {
			raw := r.Raw[p][row.Generator]
			t.AddRow(row.Generator, fmtRatio(row.Hits), fmtRatio(row.ASes), fmtRatio(row.Aliases),
				fmtInt(raw[0].Hits), fmtInt(raw[1].Hits), fmtInt(raw[0].ASes), fmtInt(raw[1].ASes))
		}
		out += t.String() + "\n"
	}
	return out
}
