package experiment

import (
	"context"

	"seedscan/internal/alias"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// The appendix's Tables 9-12 are the full grid behind RQ1-RQ2: every
// generator run on every dataset treatment, per protocol, reporting raw
// hits and ASes. GridDatasets lists the treatments in the tables' row
// order.
var GridDatasets = []string{
	"All",
	"Offline Dealiased",
	"Online Dealiased",
	"Active-Inactive",
	"All Active",
	"ICMP",
	"TCP80",
	"TCP443",
	"UDP53",
}

// gridTreatment resolves a treatment row label to its grid treatment.
// Rows shared with the RQ specs ("All", "Active-Inactive", "All Active",
// the port rows) map to the identical treatments, so their cells dedup
// against RQ1/RQ2/RQ4 runs.
func gridTreatment(label string) grid.Treatment {
	switch label {
	case "All":
		return TreatmentFull
	case "Offline Dealiased":
		return TreatmentDealiased(alias.ModeOffline)
	case "Online Dealiased":
		return TreatmentDealiased(alias.ModeOnline)
	case "Active-Inactive":
		// The paper's shorthand for the joint-dealiased dataset, which
		// still mixes responsive and unresponsive seeds.
		return TreatmentDealiased(alias.ModeJoint)
	case "All Active":
		return TreatmentAllActive
	case "ICMP":
		return TreatmentPortActive(proto.ICMP)
	case "TCP80":
		return TreatmentPortActive(proto.TCP80)
	case "TCP443":
		return TreatmentPortActive(proto.TCP443)
	case "UDP53":
		return TreatmentPortActive(proto.UDP53)
	}
	return grid.Treatment("unknown:" + label)
}

// RawGrid holds Tables 9-12: Outcome[p][dataset][gen].
type RawGrid struct {
	Budget   int
	Gens     []string
	Datasets []string
	Outcome  map[proto.Protocol]map[string]map[string]metrics.Outcome
}

// RunRawGrid reproduces Tables 9-12 for the given protocols and
// generators, optionally restricting the dataset rows (nil = all nine).
func (e *Env) RunRawGrid(protos []proto.Protocol, gens, datasets []string, budget int) (*RawGrid, error) {
	return e.RunRawGridCtx(context.Background(), protos, gens, datasets, budget)
}

// RunRawGridCtx is RunRawGrid under a context.
func (e *Env) RunRawGridCtx(ctx context.Context, protos []proto.Protocol, gens, datasets []string, budget int) (*RawGrid, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if datasets == nil {
		datasets = GridDatasets
	}
	rs, err := e.Grid().Run(ctx, e.SpecRawGrid(protos, gens, datasets, budget))
	if err != nil {
		return nil, err
	}
	rg := &RawGrid{
		Budget: budget, Gens: gens, Datasets: datasets,
		Outcome: make(map[proto.Protocol]map[string]map[string]metrics.Outcome),
	}
	for _, p := range protos {
		rg.Outcome[p] = make(map[string]map[string]metrics.Outcome)
		for _, ds := range datasets {
			rg.Outcome[p][ds] = make(map[string]metrics.Outcome)
			for _, g := range gens {
				rg.Outcome[p][ds][g] = rs.Of(e.cell(g, gridTreatment(ds), p, budget, 0)).Outcome
			}
		}
	}
	return rg, nil
}

// Render prints one protocol's grid in the layout of Tables 9-12: a Hits
// block then an ASes block, datasets as rows and generators as columns.
func (g *RawGrid) Render(p proto.Protocol) string {
	hits := &Table{
		Title:  "Raw Hits (" + p.String() + ") — Tables 9-12",
		Header: append([]string{"Dataset"}, g.Gens...),
	}
	ases := &Table{
		Title:  "Raw ASes (" + p.String() + ") — Tables 9-12",
		Header: append([]string{"Dataset"}, g.Gens...),
	}
	for _, ds := range g.Datasets {
		hr := []string{ds}
		ar := []string{ds}
		for _, gen := range g.Gens {
			o := g.Outcome[p][ds][gen]
			hr = append(hr, fmtInt(o.Hits))
			ar = append(ar, fmtInt(o.ASes))
		}
		hits.AddRow(hr...)
		ases.AddRow(ar...)
	}
	return hits.String() + "\n" + ases.String()
}
