package experiment

import (
	"context"
	"sync/atomic"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/metrics"
	"seedscan/internal/proto"
)

// The appendix's Tables 9-12 are the full grid behind RQ1-RQ2: every
// generator run on every dataset treatment, per protocol, reporting raw
// hits and ASes. GridDatasets lists the treatments in the tables' row
// order.
var GridDatasets = []string{
	"All",
	"Offline Dealiased",
	"Online Dealiased",
	"Active-Inactive",
	"All Active",
	"ICMP",
	"TCP80",
	"TCP443",
	"UDP53",
}

// gridSeeds resolves a treatment label to its seed list.
func (e *Env) gridSeeds(label string) []ipaddr.Addr {
	switch label {
	case "All":
		return e.Full.SortedSlice()
	case "Offline Dealiased":
		return e.DealiasedSeeds(alias.ModeOffline).SortedSlice()
	case "Online Dealiased":
		return e.DealiasedSeeds(alias.ModeOnline).SortedSlice()
	case "Active-Inactive":
		// The paper's shorthand for the joint-dealiased dataset, which
		// still mixes responsive and unresponsive seeds.
		return e.DealiasedSeeds(alias.ModeJoint).SortedSlice()
	case "All Active":
		return e.AllActiveSeeds().SortedSlice()
	case "ICMP":
		return e.PortActiveSeeds(proto.ICMP).SortedSlice()
	case "TCP80":
		return e.PortActiveSeeds(proto.TCP80).SortedSlice()
	case "TCP443":
		return e.PortActiveSeeds(proto.TCP443).SortedSlice()
	case "UDP53":
		return e.PortActiveSeeds(proto.UDP53).SortedSlice()
	}
	return nil
}

// RawGrid holds Tables 9-12: Outcome[p][dataset][gen].
type RawGrid struct {
	Budget   int
	Gens     []string
	Datasets []string
	Outcome  map[proto.Protocol]map[string]map[string]metrics.Outcome
}

// RunRawGrid reproduces Tables 9-12 for the given protocols and
// generators, optionally restricting the dataset rows (nil = all nine).
func (e *Env) RunRawGrid(protos []proto.Protocol, gens, datasets []string, budget int) (*RawGrid, error) {
	return e.RunRawGridCtx(context.Background(), protos, gens, datasets, budget)
}

// RunRawGridCtx is RunRawGrid under a context.
func (e *Env) RunRawGridCtx(ctx context.Context, protos []proto.Protocol, gens, datasets []string, budget int) (*RawGrid, error) {
	if budget <= 0 {
		budget = e.Cfg.Budget
	}
	if datasets == nil {
		datasets = GridDatasets
	}
	grid := &RawGrid{
		Budget: budget, Gens: gens, Datasets: datasets,
		Outcome: make(map[proto.Protocol]map[string]map[string]metrics.Outcome),
	}
	type job struct {
		p   proto.Protocol
		ds  string
		gen string
		set []ipaddr.Addr
	}
	var jobs []job
	for _, p := range protos {
		grid.Outcome[p] = make(map[string]map[string]metrics.Outcome)
		e.OutputDealiaser(p)
		for _, ds := range datasets {
			seedSet := e.gridSeeds(ds)
			grid.Outcome[p][ds] = make(map[string]metrics.Outcome)
			for _, g := range gens {
				jobs = append(jobs, job{p: p, ds: ds, gen: g, set: seedSet})
			}
		}
	}
	outs := make([]metrics.Outcome, len(jobs))
	var done atomic.Int64
	err := runParallel(ctx, e.Workers(), len(jobs), func(ctx context.Context, i int) error {
		r, err := e.RunTGACtx(ctx, jobs[i].gen, jobs[i].set, jobs[i].p, budget)
		if err != nil {
			return err
		}
		outs[i] = r.Outcome
		e.Tele.Progress("Raw grid", int(done.Add(1)), len(jobs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		grid.Outcome[j.p][j.ds][j.gen] = outs[i]
	}
	return grid, nil
}

// Render prints one protocol's grid in the layout of Tables 9-12: a Hits
// block then an ASes block, datasets as rows and generators as columns.
func (g *RawGrid) Render(p proto.Protocol) string {
	hits := &Table{
		Title:  "Raw Hits (" + p.String() + ") — Tables 9-12",
		Header: append([]string{"Dataset"}, g.Gens...),
	}
	ases := &Table{
		Title:  "Raw ASes (" + p.String() + ") — Tables 9-12",
		Header: append([]string{"Dataset"}, g.Gens...),
	}
	for _, ds := range g.Datasets {
		hr := []string{ds}
		ar := []string{ds}
		for _, gen := range g.Gens {
			o := g.Outcome[p][ds][gen]
			hr = append(hr, fmtInt(o.Hits))
			ar = append(ar, fmtInt(o.ASes))
		}
		hits.AddRow(hr...)
		ases.AddRow(ar...)
	}
	return hits.String() + "\n" + ases.String()
}
