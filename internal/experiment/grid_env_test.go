package experiment

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/proto"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
)

// TestTreatmentCachesColdConcurrent hits every lazy treatment cache from
// many goroutines with nothing pre-materialized. The per-key singleflight
// must build each artifact exactly once (pointer identity) and stay
// race-clean (run with -race).
func TestTreatmentCachesColdConcurrent(t *testing.T) {
	e := testEnv(t)
	const n = 16
	var wg sync.WaitGroup
	deal := make([]*seeds.Dataset, n)
	allA := make([]*seeds.Dataset, n)
	outd := make([]*alias.Dealiaser, n)
	port := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := proto.All[i%len(proto.All)]
			deal[i] = e.DealiasedSeeds(alias.ModeJoint)
			outd[i] = e.OutputDealiaser(p)
			port[i] = e.PortActiveSeeds(p).Len()
			allA[i] = e.AllActiveSeeds()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if deal[i] != deal[0] {
			t.Fatal("DealiasedSeeds(joint) built more than once")
		}
		if allA[i] != allA[0] {
			t.Fatal("AllActiveSeeds built more than once")
		}
		if j := i - len(proto.All); j >= 0 {
			if outd[i] != outd[j] {
				t.Fatalf("OutputDealiaser(%s) built more than once", proto.All[i%len(proto.All)])
			}
			if port[i] != port[j] {
				t.Fatalf("PortActiveSeeds(%s) disagrees across goroutines", proto.All[i%len(proto.All)])
			}
		}
	}
	if allA[0].Len() == 0 || deal[0].Len() == 0 {
		t.Fatal("caches resolved to empty datasets")
	}
}

// TestCrossSpecDedupRunsEachCellOnce asserts the engine's core guarantee
// through the telemetry counters: cells shared between specs (RQ1.b and
// RQ2 both run every generator on All Active; RQ4 runs only already-seen
// cells) execute exactly once.
func TestCrossSpecDedupRunsEachCellOnce(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	e := NewEnv(EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 1000, Telemetry: tr})
	gens := []string{"6Tree", "EIP"}
	protos := []proto.Protocol{proto.ICMP}

	if _, err := e.RunRQ1b(protos, gens, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunRQ2(protos, gens, 1000); err != nil {
		t.Fatal(err)
	}
	snap := tr.Registry().Snapshot()
	// RQ1.b plans (joint, all-active) per generator, RQ2 (all-active,
	// port-active): 8 planned, 6 unique, 2 deduped.
	if got := snap.Counters["grid.cells.planned"]; got != 8 {
		t.Fatalf("grid.cells.planned = %d, want 8", got)
	}
	if got := snap.Counters["grid.cells.run"]; got != 6 {
		t.Fatalf("grid.cells.run = %d, want 6", got)
	}
	if got := snap.Counters["grid.cells.deduped"]; got != 2 {
		t.Fatalf("grid.cells.deduped = %d, want 2", got)
	}

	// RQ4's cells (every generator on All Active, ICMP) were all run by
	// RQ1.b already — nothing new executes.
	if _, err := e.RunRQ4(protos, gens, 1000); err != nil {
		t.Fatal(err)
	}
	snap = tr.Registry().Snapshot()
	if got := snap.Counters["grid.cells.run"]; got != 6 {
		t.Fatalf("grid.cells.run after RQ4 = %d, want still 6", got)
	}
	if got := snap.Counters["grid.cells.deduped"]; got != 4 {
		t.Fatalf("grid.cells.deduped after RQ4 = %d, want 4", got)
	}
}

// cancelAfterStore wraps a Store and cancels a context once `trigger`
// cells have been checkpointed — a deterministic mid-flight interruption
// for the resume-equivalence test (the Env runs with Workers=1).
type cancelAfterStore struct {
	grid.Store
	cancel  context.CancelFunc
	puts    int
	trigger int
}

func (s *cancelAfterStore) Put(key string, c grid.Cell, r grid.CellResult) error {
	err := s.Store.Put(key, c, r)
	s.puts++
	if s.puts == s.trigger {
		s.cancel()
	}
	return err
}

// TestResumeEquivalence is the tentpole's acceptance test: a run
// cancelled mid-flight, resumed from its checkpoint store in a fresh
// environment, renders byte-identically to an uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	cfg := EnvConfig{NumASes: 80, CollectScale: 0.25, Budget: 800, Workers: 1}
	gens := []string{"6Tree", "EIP"}
	protos := []proto.Protocol{proto.ICMP}

	// Control: one uninterrupted run, no store.
	control, err := NewEnv(cfg).RunRQ1a(protos, gens, 800)
	if err != nil {
		t.Fatal(err)
	}
	want := control.Render()

	// Interrupted run: cancel after two of the four cells are
	// checkpointed.
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	js, err := grid.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := cfg
	icfg.GridStore = &cancelAfterStore{Store: js, cancel: cancel, trigger: 2}
	if _, err := NewEnv(icfg).RunRQ1aCtx(ctx, protos, gens, 800); err != context.Canceled {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: a fresh environment (fresh process, same config) over the
	// same store file must load the two finished cells and run the rest.
	js2, err := grid.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer js2.Close()
	if js2.Len() != 2 {
		t.Fatalf("checkpointed cells = %d, want 2", js2.Len())
	}
	tr := telemetry.NewTracer(nil)
	rcfg := cfg
	rcfg.GridStore = js2
	rcfg.Telemetry = tr
	resumed, err := NewEnv(rcfg).RunRQ1a(protos, gens, 800)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Render(); got != want {
		t.Fatalf("resumed render differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	snap := tr.Registry().Snapshot()
	if got := snap.Counters["grid.cells.resumed"]; got != 2 {
		t.Fatalf("grid.cells.resumed = %d, want 2", got)
	}
	if got := snap.Counters["grid.cells.run"]; got != 2 {
		t.Fatalf("grid.cells.run = %d, want 2", got)
	}
}
