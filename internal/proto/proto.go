// Package proto enumerates the scan targets studied in the paper: ICMPv6
// Echo, TCP/80, TCP/443, and UDP/53. The whole pipeline — seed datasets,
// scanner, world, metrics — is parameterized by these four protocols.
package proto

import "fmt"

// Protocol identifies one of the four probe types used across the study.
type Protocol uint8

const (
	// ICMP is ICMPv6 Echo Request/Reply.
	ICMP Protocol = iota
	// TCP80 is a TCP SYN probe to port 80.
	TCP80
	// TCP443 is a TCP SYN probe to port 443.
	TCP443
	// UDP53 is a DNS query over UDP to port 53.
	UDP53

	// Count is the number of protocols.
	Count = 4
)

// All lists every protocol in the paper's canonical order.
var All = [Count]Protocol{ICMP, TCP80, TCP443, UDP53}

// String returns the paper's label for p.
func (p Protocol) String() string {
	switch p {
	case ICMP:
		return "ICMP"
	case TCP80:
		return "TCP80"
	case TCP443:
		return "TCP443"
	case UDP53:
		return "UDP53"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// Port returns the transport port for TCP/UDP protocols and 0 for ICMP.
func (p Protocol) Port() uint16 {
	switch p {
	case TCP80:
		return 80
	case TCP443:
		return 443
	case UDP53:
		return 53
	}
	return 0
}

// IsTCP reports whether p is one of the TCP probe types.
func (p Protocol) IsTCP() bool { return p == TCP80 || p == TCP443 }

// Parse converts a label accepted case-insensitively ("icmp", "tcp80",
// "tcp443", "udp53") to a Protocol.
func Parse(s string) (Protocol, error) {
	switch s {
	case "ICMP", "icmp":
		return ICMP, nil
	case "TCP80", "tcp80":
		return TCP80, nil
	case "TCP443", "tcp443":
		return TCP443, nil
	case "UDP53", "udp53":
		return UDP53, nil
	}
	return 0, fmt.Errorf("proto: unknown protocol %q", s)
}
