package alias

import (
	"math/rand"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/world"
)

func testWorld(t testing.TB) (*world.World, *scanner.Scanner) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.ScanEpoch)
	return w, scanner.New(w.Link(), scanner.WithSecret(1))
}

// fullRateAlias returns an aliased region that answers at full rate.
func fullRateAlias(t *testing.T, w *world.World) *world.Region {
	t.Helper()
	for _, r := range w.Regions() {
		if r.Aliased && r.RespRate == 1 {
			return r
		}
	}
	t.Skip("no full-rate aliased region in this seed")
	return nil
}

func TestOfflineListFiltering(t *testing.T) {
	w, _ := testWorld(t)
	all := w.AliasedPrefixes()
	if len(all) == 0 {
		t.Fatal("world has no aliases")
	}
	list := NewOfflineList(all)
	if list.Len() != len(all) {
		t.Fatalf("Len = %d", list.Len())
	}
	rng := rand.New(rand.NewSource(1))
	inAlias := all[0].RandomWithin(rng)
	if !list.Contains(inAlias) {
		t.Fatal("aliased address not matched")
	}
	if list.Contains(ipaddr.MustParse("3fff::1")) {
		t.Fatal("clean address matched")
	}

	d := New(ModeOffline, list, nil, proto.ICMP, 9)
	clean, aliased := d.Split([]ipaddr.Addr{inAlias, ipaddr.MustParse("3fff::1")})
	if len(clean) != 1 || len(aliased) != 1 {
		t.Fatalf("split = %d clean, %d aliased", len(clean), len(aliased))
	}
}

func TestOnlineDetectsUnlistedAlias(t *testing.T) {
	w, sc := testWorld(t)
	r := fullRateAlias(t, w)
	rng := rand.New(rand.NewSource(2))

	var addrs []ipaddr.Addr
	for i := 0; i < 20; i++ {
		addrs = append(addrs, r.Prefix.RandomWithin(rng))
	}
	// Also one genuinely active, non-aliased address.
	samp := w.NewSampler(3)
	real := samp.ActiveHosts(30, proto.ICMP)
	var cleanWant []ipaddr.Addr
	for _, a := range real {
		rr, _ := w.RegionOf(a)
		if !rr.Aliased && rr.RespRate == 1 {
			cleanWant = append(cleanWant, a)
		}
	}
	if len(cleanWant) == 0 {
		t.Fatal("no clean active host")
	}

	d := New(ModeOnline, nil, sc, proto.ICMP, 5)
	clean, aliased := d.Split(append(addrs, cleanWant...))
	if len(aliased) != len(addrs) {
		t.Fatalf("aliased = %d, want %d", len(aliased), len(addrs))
	}
	if len(clean) != len(cleanWant) {
		t.Fatalf("clean = %d, want %d", len(clean), len(cleanWant))
	}
	if d.PrefixesTested() == 0 || d.ProbesSent() == 0 {
		t.Fatal("online test sent no probes")
	}
}

func TestOnlineVerdictCache(t *testing.T) {
	w, sc := testWorld(t)
	r := fullRateAlias(t, w)
	rng := rand.New(rand.NewSource(4))
	a := r.Prefix.RandomWithin(rng)
	// Two addresses in the same /96.
	b := ipaddr.PrefixFrom(a, AliasPrefixBits).Overlay(ipaddr.AddrFrom64s(0, 12345))

	d := New(ModeOnline, nil, sc, proto.ICMP, 5)
	d.Split([]ipaddr.Addr{a})
	probesAfterFirst := d.ProbesSent()
	d.Split([]ipaddr.Addr{b})
	if d.ProbesSent() != probesAfterFirst {
		t.Fatal("cached /96 was re-probed")
	}
}

func TestJointCombinesBoth(t *testing.T) {
	w, sc := testWorld(t)
	all := w.AliasedPrefixes()
	if len(all) < 2 {
		t.Skip("need 2+ aliased prefixes")
	}
	// Offline list knows only the first alias; online must catch others.
	list := NewOfflineList(all[:1])
	rng := rand.New(rand.NewSource(6))

	var known, unknown []ipaddr.Addr
	for i := 0; i < 10; i++ {
		known = append(known, all[0].RandomWithin(rng))
	}
	var unlisted ipaddr.Prefix
	for _, p := range all[1:] {
		// Pick a full-rate unlisted alias for reliable online detection.
		for _, r := range w.Regions() {
			if r.Aliased && r.Prefix == p && r.RespRate == 1 {
				unlisted = p
				break
			}
		}
		if unlisted.Bits() != 0 {
			break
		}
	}
	if unlisted.Bits() == 0 {
		t.Skip("no full-rate unlisted alias")
	}
	for i := 0; i < 10; i++ {
		unknown = append(unknown, unlisted.RandomWithin(rng))
	}

	d := New(ModeJoint, list, sc, proto.ICMP, 7)
	clean, aliased := d.Split(append(known, unknown...))
	if len(aliased) != 20 {
		t.Fatalf("aliased = %d, want 20 (clean=%d)", len(aliased), len(clean))
	}
	// Offline-known prefixes must not consume online probes: only the /96s
	// of the unlisted addresses may be tested.
	distinct := ipaddr.NewSet()
	for _, a := range unknown {
		distinct.Add(ipaddr.PrefixFrom(a, AliasPrefixBits).Addr())
	}
	if d.PrefixesTested() != distinct.Len() {
		t.Fatalf("prefixes tested = %d, want %d (offline-listed must be free)",
			d.PrefixesTested(), distinct.Len())
	}
}

func TestRateLimitedAliasEvadesOnline(t *testing.T) {
	w, sc := testWorld(t)
	var rl *world.Region
	for _, r := range w.Regions() {
		if r.Aliased && r.RespRate < 0.2 {
			rl = r
			break
		}
	}
	if rl == nil {
		t.Skip("no heavily rate-limited alias in this seed")
	}
	rng := rand.New(rand.NewSource(8))
	var addrs []ipaddr.Addr
	for i := 0; i < 60; i++ {
		// Spread over many /96s so we test many prefixes.
		addrs = append(addrs, rl.Prefix.RandomWithin(rng))
	}
	d := New(ModeOnline, nil, sc, proto.ICMP, 11)
	clean, _ := d.Split(addrs)
	// With RespRate ~0.12 most prefixes evade the 2-of-3 test: the paper's
	// EIP/Amazon effect.
	if len(clean) == 0 {
		t.Fatal("rate-limited alias fully detected; expected evasion")
	}
}

func TestModeNonePassesThrough(t *testing.T) {
	d := New(ModeNone, nil, nil, proto.ICMP, 1)
	in := []ipaddr.Addr{ipaddr.MustParse("::1"), ipaddr.MustParse("::2")}
	clean, aliased := d.Split(in)
	if len(clean) != 2 || len(aliased) != 0 {
		t.Fatal("ModeNone must pass everything through")
	}
	if d.IsAliased(in[0]) {
		t.Fatal("ModeNone IsAliased must be false")
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeNone: "none", ModeOffline: "offline", ModeOnline: "online",
		ModeJoint: "joint", ModeCooldown: "cooldown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
		got, err := ParseMode(s)
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if len(Modes) != 5 {
		t.Fatal("Modes must list all five treatments")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted an unknown name")
	}
}

func TestOnlineCleanRegionNotAliased(t *testing.T) {
	w, sc := testWorld(t)
	samp := w.NewSampler(12)
	var clean []ipaddr.Addr
	for _, a := range samp.ActiveHosts(100, proto.ICMP) {
		r, _ := w.RegionOf(a)
		if !r.Aliased {
			clean = append(clean, a)
		}
	}
	if len(clean) < 50 {
		t.Fatal("not enough clean actives")
	}
	d := New(ModeOnline, nil, sc, proto.ICMP, 13)
	got, aliased := d.Split(clean)
	// Sparse regions should essentially never have 2-of-3 random /96
	// neighbours active.
	if len(aliased) > len(clean)/20 {
		t.Fatalf("%d/%d clean addrs misclassified as aliased", len(aliased), len(clean))
	}
	if len(got)+len(aliased) != len(clean) {
		t.Fatal("split lost addresses")
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	// Split is a partition: clean ∪ aliased == input (as multisets of
	// unique addrs), clean ∩ aliased == ∅ — under every mode.
	w, sc := testWorld(t)
	list := NewOfflineList(w.AliasedPrefixes()[:1])
	samp := w.NewSampler(99)
	aliasSamp := w.NewSampler(100)
	input := append(samp.Hosts(300), aliasSamp.Aliased(200)...)
	input = ipaddr.Dedup(input)

	for _, mode := range Modes {
		d := New(mode, list, sc, proto.ICMP, 123)
		clean, aliased := d.Split(append([]ipaddr.Addr(nil), input...))
		if len(clean)+len(aliased) != len(input) {
			t.Fatalf("%v: %d + %d != %d", mode, len(clean), len(aliased), len(input))
		}
		cs := ipaddr.NewSet(clean...)
		for _, a := range aliased {
			if cs.Contains(a) {
				t.Fatalf("%v: %v in both partitions", mode, a)
			}
		}
	}
}

func TestSplitVerdictConsistentAcrossCalls(t *testing.T) {
	w, sc := testWorld(t)
	aliasSamp := w.NewSampler(101)
	addrs := aliasSamp.Aliased(50)
	d := New(ModeOnline, nil, sc, proto.ICMP, 5)
	_, a1 := d.Split(append([]ipaddr.Addr(nil), addrs...))
	_, a2 := d.Split(append([]ipaddr.Addr(nil), addrs...))
	if len(a1) != len(a2) {
		t.Fatalf("verdicts changed across calls: %d vs %d", len(a1), len(a2))
	}
}
