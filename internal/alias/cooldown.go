// Cool-down dealiasing (ModeCooldown): a non-saturating alternative to
// the online 6Gen test. The online mode 3-probes every new /96 up front,
// which is exhaustive but spends ProbesPerPrefix probes on every prefix a
// scan touches. The cool-down detector instead watches response density
// while results stream through Split: observations are accumulated per
// aggregation prefix (/64), and only when a prefix's density crosses
// CooldownTrigger — it is answering suspiciously often — are its /96s put
// through the standard probe confirmation. A confirmed-aliased /96 is
// "cooled down": every address in it, past and future, is discarded. A
// confirmed-clean /96 is whitelisted forever in the shared verdict cache.
//
// Reputation shortcuts the density ramp: the known-alias list's prefixes,
// plus candidate prefixes derived from the list's structure (siblings of
// nybble-groups the list already names), are suspicious on first sight.
//
// On inputs with no aliased addresses every confirmation comes back
// clean, so the partition is exactly ModeOnline's — the detector only
// changes how many probes that answer costs.
package alias

import (
	"math/bits"

	"seedscan/internal/ipaddr"
)

// CooldownAggrBits is the aggregation grain for density tracking. Aliased
// regions usually span many /96s, so counting per /96 would never
// accumulate; /64 — the conventional end-site boundary — is where a
// pattern of "everything answers" becomes visible.
const CooldownAggrBits = 64

// CooldownTrigger is the per-/64 observation count at which the detector
// confirms the aggregate's /96s. Below it prefixes stay untested (and
// their addresses kept), which is what makes the detector cheap on the
// sparse, genuinely-clean bulk of a scan.
const CooldownTrigger = 4

// MaxCandidatePrefixes caps structural candidate generation so a
// pathological known-alias list cannot blow up the suspicion trie.
const MaxCandidatePrefixes = 4096

// splitCooldown is Split under ModeCooldown. Three phases: account
// densities, confirm the suspicious /96s with the shared probe test, then
// classify by the /96 verdict cache exactly like the online walk.
func (d *Dealiaser) splitCooldown(addrs []ipaddr.Addr) (clean, aliased []ipaddr.Addr) {
	clean = make([]ipaddr.Addr, 0, len(addrs))

	// Phase 1 (under mu): bump per-/64 densities for the whole batch,
	// then claim the unknown /96s of addresses in hot aggregates or
	// candidate-listed prefixes. Claiming reuses the inflight
	// singleflight map, so concurrent Splits confirm each /96 once.
	d.mu.Lock()
	for _, a := range addrs {
		d.density[ipaddr.PrefixFrom(a, CooldownAggrBits)]++
	}
	var (
		claimed []ipaddr.Prefix
		waits   []chan struct{}
		taken   = make(map[ipaddr.Prefix]bool)
	)
	for _, a := range addrs {
		hot := d.density[ipaddr.PrefixFrom(a, CooldownAggrBits)] >= d.trigger ||
			(d.candidates != nil && d.candidates.Contains(a))
		if !hot {
			continue
		}
		p := ipaddr.PrefixFrom(a, AliasPrefixBits)
		if taken[p] {
			continue
		}
		taken[p] = true
		if _, ok := d.verdict[p]; ok {
			continue
		}
		if ch, ok := d.inflight[p]; ok {
			waits = append(waits, ch)
			continue
		}
		d.inflight[p] = make(chan struct{})
		claimed = append(claimed, p)
	}
	d.mu.Unlock()

	// Phase 2: the standard ProbesPerPrefix confirmation, shared with the
	// online mode (verdict cache, deterministic probe addresses).
	sortPrefixes(claimed)
	if len(claimed) > 0 {
		d.testPrefixes(claimed)
	}
	for _, ch := range waits {
		<-ch
	}

	// Phase 3: classify at /96. Untested prefixes have no verdict and
	// default clean; confirmed-aliased ones are cooled down.
	d.mu.Lock()
	newlyCooled := 0
	for _, p := range claimed {
		if d.verdict[p] {
			newlyCooled++
		}
	}
	for _, a := range addrs {
		if d.verdict[ipaddr.PrefixFrom(a, AliasPrefixBits)] {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	cooled := d.cCooled
	d.mu.Unlock()
	cooled.Add(int64(newlyCooled))
	return clean, aliased
}

// candidateTrie builds the suspicion trie: the known-alias list itself
// plus the structural candidates derived from it. Nil when there is no
// list to learn from.
func candidateTrie(offline *OfflineList) *ipaddr.Trie {
	if offline == nil || offline.Len() == 0 {
		return nil
	}
	t := ipaddr.NewTrie()
	for _, p := range offline.Prefixes() {
		t.Insert(p, true)
	}
	for _, p := range GenerateCandidatePrefixes(offline.Prefixes(), MaxCandidatePrefixes) {
		t.Insert(p, true)
	}
	return t
}

// GenerateCandidatePrefixes derives candidate alias prefixes from the
// structure of known ones. Operators allocate aliased prefixes in runs:
// when a known-alias list names two or more siblings of a nybble group
// (prefixes identical except in their final nybble), the unnamed sibling
// values are likely aliased too, just never observed. Those siblings are
// returned, deterministically ordered by the list, capped at max.
func GenerateCandidatePrefixes(known []ipaddr.Prefix, max int) []ipaddr.Prefix {
	type group struct {
		parent ipaddr.Prefix
		seen   uint16 // bitmask of final-nybble values named by the list
	}
	listed := make(map[ipaddr.Prefix]bool, len(known))
	for _, p := range known {
		listed[p] = true
	}
	idx := make(map[ipaddr.Prefix]int)
	var groups []group
	for _, p := range known {
		b := p.Bits()
		if b < 4 || b%4 != 0 {
			continue // candidate mining works on whole-nybble prefixes
		}
		last := b/4 - 1
		parent := ipaddr.PrefixFrom(p.Addr().WithNybble(last, 0), b)
		i, ok := idx[parent]
		if !ok {
			i = len(groups)
			idx[parent] = i
			groups = append(groups, group{parent: parent})
		}
		groups[i].seen |= 1 << p.Addr().Nybble(last)
	}
	var out []ipaddr.Prefix
	for _, g := range groups {
		if bits.OnesCount16(g.seen) < 2 {
			continue // one sibling is no pattern
		}
		last := g.parent.Bits()/4 - 1
		for v := byte(0); v < 16; v++ {
			if g.seen&(1<<v) != 0 {
				continue
			}
			cand := ipaddr.PrefixFrom(g.parent.Addr().WithNybble(last, v), g.parent.Bits())
			if listed[cand] {
				continue
			}
			out = append(out, cand)
			if len(out) == max {
				return out
			}
		}
	}
	return out
}
