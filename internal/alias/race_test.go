package alias

import (
	"fmt"
	"sync"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// countingProber records every ScanActive call so tests can assert how
// many online probes were actually issued. A configurable activeFn decides
// which targets answer.
type countingProber struct {
	mu       sync.Mutex
	calls    int
	targets  []ipaddr.Addr
	activeFn func(ipaddr.Addr) bool
}

func (p *countingProber) ScanActive(targets []ipaddr.Addr, _ proto.Protocol) []ipaddr.Addr {
	p.mu.Lock()
	p.calls++
	p.targets = append(p.targets, targets...)
	p.mu.Unlock()
	var out []ipaddr.Addr
	for _, a := range targets {
		if p.activeFn(a) {
			out = append(out, a)
		}
	}
	return out
}

// Scan completes the shared scanner.Prober surface; the dealiaser scans
// only through ScanActive, so this path stays uncounted.
func (p *countingProber) Scan(targets []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	out := make([]scanner.Result, len(targets))
	for i, a := range targets {
		st := scanner.StatusSilent
		if p.activeFn(a) {
			st = scanner.StatusActive
		}
		out[i] = scanner.Result{Addr: a, Proto: pr, Status: st, Attempts: 1}
	}
	return out
}

// TestConcurrentSplitTestsEachPrefixOnce is the regression test for the
// Split TOCTOU race: two concurrent Split calls could both observe the
// same /96 as unknown, both probe it, and double-count tested/probes and
// the alias.* counters. With singleflight claiming, every /96 must be
// online-tested exactly once no matter how many goroutines race. Run
// under -race.
func TestConcurrentSplitTestsEachPrefixOnce(t *testing.T) {
	const prefixes = 16
	base := ipaddr.MustParse("2001:db8:aaaa::")
	var addrs []ipaddr.Addr
	for i := 0; i < prefixes; i++ {
		// Two addresses per /96, all in distinct /96s (bits 64..96 vary).
		p := base.AddLo(uint64(i) << 32)
		addrs = append(addrs, p, p.AddLo(1))
	}

	// Every /96 answers all probes: all prefixes come back aliased.
	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return true }}
	d := New(ModeOnline, nil, prober, proto.ICMP, 9)
	reg := telemetry.NewRegistry()
	d.SetTelemetry(reg)

	const goroutines = 8
	var wg sync.WaitGroup
	aliasedCounts := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			clean, aliased := d.Split(addrs)
			aliasedCounts[g] = len(aliased)
			if len(clean)+len(aliased) != len(addrs) {
				t.Errorf("goroutine %d: partition lost addresses: %d+%d != %d",
					g, len(clean), len(aliased), len(addrs))
			}
		}(g)
	}
	wg.Wait()

	for g, n := range aliasedCounts {
		if n != len(addrs) {
			t.Errorf("goroutine %d: aliased = %d, want %d", g, n, len(addrs))
		}
	}
	if got := d.PrefixesTested(); got != prefixes {
		t.Errorf("PrefixesTested = %d, want %d (each /96 exactly once)", got, prefixes)
	}
	if got := d.ProbesSent(); got != prefixes*ProbesPerPrefix {
		t.Errorf("ProbesSent = %d, want %d", got, prefixes*ProbesPerPrefix)
	}
	prober.mu.Lock()
	probed := len(prober.targets)
	prober.mu.Unlock()
	if probed != prefixes*ProbesPerPrefix {
		t.Errorf("prober saw %d targets, want %d", probed, prefixes*ProbesPerPrefix)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["alias.prefixes_tested"]; got != prefixes {
		t.Errorf("alias.prefixes_tested = %d, want %d", got, prefixes)
	}
	if got := snap.Counters["alias.probes_sent"]; got != int64(prefixes*ProbesPerPrefix) {
		t.Errorf("alias.probes_sent = %d, want %d", got, prefixes*ProbesPerPrefix)
	}
	hits := snap.Counters["alias.verdict_cache.hits"]
	misses := snap.Counters["alias.verdict_cache.misses"]
	if misses != prefixes {
		t.Errorf("cache misses = %d, want %d (one claim per prefix)", misses, prefixes)
	}
	if hits+misses != int64(goroutines*prefixes) {
		t.Errorf("hits+misses = %d, want %d", hits+misses, goroutines*prefixes)
	}
}

// TestSetTelemetryDuringSplits is the regression test for the
// SetTelemetry data race: it used to write the counter fields without
// holding d.mu while concurrent Splits read them in claimUnknown and
// testPrefixes. Now both sides synchronize on the mutex. Run under -race;
// the assertion here is only that nothing is lost or crashed.
func TestSetTelemetryDuringSplits(t *testing.T) {
	base := ipaddr.MustParse("2001:db8:cccc::")
	var addrs []ipaddr.Addr
	for i := 0; i < 64; i++ {
		addrs = append(addrs, base.AddLo(uint64(i)<<32))
	}
	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return false }}

	for _, mode := range []Mode{ModeOnline, ModeCooldown} {
		d := New(mode, nil, prober, proto.ICMP, 17)
		stop := make(chan struct{})
		var setter sync.WaitGroup
		setter.Add(1)
		go func() {
			defer setter.Done()
			regs := []*telemetry.Registry{telemetry.NewRegistry(), nil}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					d.SetTelemetry(regs[i%len(regs)])
				}
			}
		}()
		var splits sync.WaitGroup
		for g := 0; g < 4; g++ {
			splits.Add(1)
			go func(g int) {
				defer splits.Done()
				lo := g * len(addrs) / 4
				hi := (g + 1) * len(addrs) / 4
				clean, aliased := d.Split(addrs[lo:hi])
				if len(clean)+len(aliased) != hi-lo {
					t.Errorf("%v: partition lost addresses", mode)
				}
			}(g)
		}
		splits.Wait()
		close(stop)
		setter.Wait()
	}
}

// TestConcurrentCooldownSplits races concurrent cool-down Splits over a
// shared dealiaser: every suspicious /96 must be confirmed exactly once
// (the cool-down path shares the singleflight claims), and each call's
// partition must stay lossless. Run under -race.
func TestConcurrentCooldownSplits(t *testing.T) {
	// 8 addresses per /64 so every aggregate crosses CooldownTrigger, in
	// distinct /96s so each needs its own confirmation.
	var addrs []ipaddr.Addr
	const aggs, per = 8, 8
	for i := 0; i < aggs; i++ {
		agg := ipaddr.MustParse(fmt.Sprintf("2001:db8:dddd:%x::", i))
		for k := 0; k < per; k++ {
			addrs = append(addrs, agg.AddLo(uint64(k)<<32))
		}
	}

	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return true }}
	d := New(ModeCooldown, nil, prober, proto.ICMP, 23)
	reg := telemetry.NewRegistry()
	d.SetTelemetry(reg)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clean, aliased := d.Split(addrs)
			if len(clean)+len(aliased) != len(addrs) {
				t.Error("partition lost addresses")
			}
		}()
	}
	wg.Wait()

	want := aggs * per // distinct /96s, all dense enough to confirm
	if got := d.PrefixesTested(); got != want {
		t.Errorf("PrefixesTested = %d, want %d (each /96 exactly once)", got, want)
	}
	if got := d.ProbesSent(); got != want*ProbesPerPrefix {
		t.Errorf("ProbesSent = %d, want %d", got, want*ProbesPerPrefix)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["alias.cooldown.cooled"]; got != int64(want) {
		t.Errorf("alias.cooldown.cooled = %d, want %d", got, want)
	}
}

// TestTestPrefixesRerollsDuplicateProbes is the regression test for the
// silent under-probing bug: when two generated probe addresses collided,
// the old code skipped the duplicate and judged the /96 on fewer than
// ProbesPerPrefix probes against an unchanged AliasThreshold. The salt
// must be re-rolled until the address is unique.
func TestTestPrefixesRerollsDuplicateProbes(t *testing.T) {
	orig := probeHostBits
	defer func() { probeHostBits = orig }()
	// Force the first ProbesPerPrefix salts to collide on the same host
	// bits; re-rolled salts (k + ProbesPerPrefix, ...) produce unique ones.
	probeHostBits = func(seed uint64, p ipaddr.Prefix, salt uint64) uint64 {
		if salt < ProbesPerPrefix {
			return 0x1234
		}
		return 0x1_0000 + salt
	}

	// The prefix answers exactly AliasThreshold of its distinct probes
	// (the colliding address plus the first re-rolled one, salt 1+3=4):
	// only full probing can reach the threshold.
	answered := map[uint64]bool{0x1234: true, 0x1_0004: true}
	prober := &countingProber{activeFn: func(a ipaddr.Addr) bool { return answered[a.Lo()&0xffffffff] }}
	d := New(ModeOnline, nil, prober, proto.ICMP, 5)

	addr := ipaddr.MustParse("2001:db8:bbbb::1")
	if !d.IsAliased(addr) {
		t.Fatal("prefix meeting AliasThreshold not flagged aliased (under-probed?)")
	}
	if got := d.ProbesSent(); got != ProbesPerPrefix {
		t.Fatalf("ProbesSent = %d, want %d distinct probes", got, ProbesPerPrefix)
	}
	prober.mu.Lock()
	defer prober.mu.Unlock()
	seen := make(map[ipaddr.Addr]bool)
	for _, a := range prober.targets {
		if seen[a] {
			t.Fatalf("duplicate probe target %v issued", a)
		}
		seen[a] = true
	}
	if len(seen) != ProbesPerPrefix {
		t.Fatalf("%d distinct targets probed, want %d", len(seen), ProbesPerPrefix)
	}
}
