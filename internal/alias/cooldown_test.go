package alias

import (
	"fmt"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// denseInput returns addrs dense enough per /64 to cross CooldownTrigger:
// aggs /64s with per addresses each, all in distinct /96s.
func denseInput(prefix string, aggs, per int) []ipaddr.Addr {
	var out []ipaddr.Addr
	for i := 0; i < aggs; i++ {
		agg := ipaddr.MustParse(fmt.Sprintf("%s:%x::", prefix, i))
		for k := 0; k < per; k++ {
			out = append(out, agg.AddLo(uint64(k)<<32))
		}
	}
	return out
}

// TestCooldownDetectsDenseAlias: an aliased region answers every probe;
// once its /64 density crosses the trigger, its /96s are confirmed and
// cooled down.
func TestCooldownDetectsDenseAlias(t *testing.T) {
	w, sc := testWorld(t)
	r := fullRateAlias(t, w)

	// Many addresses inside one /64 of the aliased region (distinct /96s).
	base := ipaddr.PrefixFrom(r.Prefix.Addr(), CooldownAggrBits).Addr()
	var addrs []ipaddr.Addr
	for k := 0; k < 12; k++ {
		addrs = append(addrs, base.AddLo(uint64(k+1)<<32))
	}
	d := New(ModeCooldown, nil, sc, proto.ICMP, 31)
	clean, aliased := d.Split(addrs)
	if len(aliased) != len(addrs) {
		t.Fatalf("aliased = %d, want %d (clean=%d)", len(aliased), len(addrs), len(clean))
	}
	if d.PrefixesTested() == 0 {
		t.Fatal("cool-down never confirmed anything")
	}
}

// TestCooldownSparsePrefixesStayUntested: below the density trigger no
// probes are spent and everything is kept — the detector's whole point.
func TestCooldownSparsePrefixesStayUntested(t *testing.T) {
	var addrs []ipaddr.Addr
	for i := 0; i < CooldownTrigger-1; i++ {
		addrs = append(addrs, ipaddr.MustParse(fmt.Sprintf("2001:db8:1:%x::1", i)))
	}
	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return true }}
	d := New(ModeCooldown, nil, prober, proto.ICMP, 7)
	clean, aliased := d.Split(addrs)
	if len(aliased) != 0 || len(clean) != len(addrs) {
		t.Fatalf("sparse input split %d/%d", len(clean), len(aliased))
	}
	if d.ProbesSent() != 0 {
		t.Fatalf("%d probes spent below the trigger", d.ProbesSent())
	}
}

// TestCooldownDeterministic: same seed, same input — byte-identical
// clean/aliased partition across fresh dealiasers.
func TestCooldownDeterministic(t *testing.T) {
	w, _ := testWorld(t)
	list := NewOfflineList(w.AliasedPrefixes()[:1])
	samp := w.NewSampler(55)
	aliasSamp := w.NewSampler(56)
	input := append(samp.Hosts(200), aliasSamp.Aliased(100)...)
	input = ipaddr.Dedup(input)

	run := func() (c, a []ipaddr.Addr) {
		_, sc := testWorld(t)
		d := New(ModeCooldown, list, sc, proto.ICMP, 77)
		return d.Split(append([]ipaddr.Addr(nil), input...))
	}
	c1, a1 := run()
	c2, a2 := run()
	if len(c1) != len(c2) || len(a1) != len(a2) {
		t.Fatalf("partition sizes differ: %d/%d vs %d/%d", len(c1), len(a1), len(c2), len(a2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("clean[%d] differs: %v vs %v", i, c1[i], c2[i])
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("aliased[%d] differs: %v vs %v", i, a1[i], a2[i])
		}
	}
}

// TestCooldownEquivalentToOnlineOnCleanInput pins the acceptance
// criterion: on inputs with no aliased addresses the cool-down partition
// is byte-identical to ModeOnline's (everything clean, input order), the
// detector just spends fewer probes getting there.
func TestCooldownEquivalentToOnlineOnCleanInput(t *testing.T) {
	w, _ := testWorld(t)
	samp := w.NewSampler(12)
	var input []ipaddr.Addr
	for _, a := range samp.ActiveHosts(150, proto.ICMP) {
		r, _ := w.RegionOf(a)
		if !r.Aliased && r.RespRate == 1 {
			input = append(input, a)
		}
	}
	if len(input) < 50 {
		t.Fatal("not enough clean actives")
	}

	_, sc1 := testWorld(t)
	on := New(ModeOnline, nil, sc1, proto.ICMP, 99)
	onClean, onAliased := on.Split(append([]ipaddr.Addr(nil), input...))

	_, sc2 := testWorld(t)
	cd := New(ModeCooldown, nil, sc2, proto.ICMP, 99)
	cdClean, cdAliased := cd.Split(append([]ipaddr.Addr(nil), input...))

	// The world's clean regions can in principle trip the 2-of-3 test;
	// this seed's sample must not, or the premise is wrong.
	if len(onAliased) != 0 {
		t.Fatalf("online flagged %d clean addrs; pick another sample", len(onAliased))
	}
	if len(cdAliased) != 0 {
		t.Fatalf("cooldown flagged %d clean addrs", len(cdAliased))
	}
	if len(cdClean) != len(onClean) {
		t.Fatalf("clean sizes differ: %d vs %d", len(cdClean), len(onClean))
	}
	for i := range onClean {
		if cdClean[i] != onClean[i] {
			t.Fatalf("clean[%d] differs: %v vs %v", i, cdClean[i], onClean[i])
		}
	}
	if cd.ProbesSent() > on.ProbesSent() {
		t.Fatalf("cooldown spent %d probes, online only %d", cd.ProbesSent(), on.ProbesSent())
	}
}

// TestCooldownCandidateListShortcut: addresses inside a known-alias
// prefix are suspicious on first sight (trigger 1), no density ramp.
func TestCooldownCandidateListShortcut(t *testing.T) {
	known := []ipaddr.Prefix{ipaddr.MustParsePrefix("2001:db8:f00d::/48")}
	list := NewOfflineList(known)
	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return true }}
	d := New(ModeCooldown, list, prober, proto.ICMP, 3)

	one := []ipaddr.Addr{ipaddr.MustParse("2001:db8:f00d::1")}
	clean, aliased := d.Split(one)
	if len(aliased) != 1 || len(clean) != 0 {
		t.Fatalf("known-alias addr not cooled down on first sight: %d/%d", len(clean), len(aliased))
	}
	if d.PrefixesTested() != 1 {
		t.Fatalf("PrefixesTested = %d, want 1", d.PrefixesTested())
	}
}

func TestGenerateCandidatePrefixes(t *testing.T) {
	known := []ipaddr.Prefix{
		// Three siblings of one nybble group: candidates are the other 13.
		ipaddr.MustParsePrefix("2001:db8:1::/48"),
		ipaddr.MustParsePrefix("2001:db8:2::/48"),
		ipaddr.MustParsePrefix("2001:db8:3::/48"),
		// A loner: no pattern, no candidates.
		ipaddr.MustParsePrefix("2001:db8:beef::/48"),
	}
	got := GenerateCandidatePrefixes(known, 1000)
	if len(got) != 13 {
		t.Fatalf("candidates = %d, want 13: %v", len(got), got)
	}
	seen := make(map[ipaddr.Prefix]bool)
	for _, p := range got {
		if p.Bits() != 48 {
			t.Fatalf("candidate %v has bits %d, want 48", p, p.Bits())
		}
		seen[p] = true
	}
	for _, p := range known {
		if seen[p] {
			t.Fatalf("listed prefix %v re-proposed", p)
		}
	}
	if !seen[ipaddr.MustParsePrefix("2001:db8:7::/48")] {
		t.Fatal("sibling 2001:db8:7::/48 not proposed")
	}

	// The cap truncates deterministically.
	if capped := GenerateCandidatePrefixes(known, 5); len(capped) != 5 {
		t.Fatalf("capped candidates = %d, want 5", len(capped))
	}

	// Structural candidates shortcut the density ramp just like listed
	// prefixes: an address in a never-listed sibling is confirmed at once.
	list := NewOfflineList(known)
	prober := &countingProber{activeFn: func(ipaddr.Addr) bool { return true }}
	d := New(ModeCooldown, list, prober, proto.ICMP, 3)
	sib := []ipaddr.Addr{ipaddr.MustParse("2001:db8:7::1")}
	_, aliased := d.Split(sib)
	if len(aliased) != 1 {
		t.Fatal("structural candidate not confirmed on first sight")
	}
}
