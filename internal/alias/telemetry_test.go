package alias

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// silentProber answers nothing, so every tested prefix is judged clean.
type silentProber struct{}

func (silentProber) ScanActive(ts []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr { return nil }

// Scan completes the shared scanner.Prober surface; a silent wire never
// answers.
func (silentProber) Scan(ts []ipaddr.Addr, p proto.Protocol) []scanner.Result {
	out := make([]scanner.Result, len(ts))
	for i, a := range ts {
		out[i] = scanner.Result{Addr: a, Proto: p, Status: scanner.StatusSilent, Attempts: 1}
	}
	return out
}

func TestDealiaserTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := New(ModeOnline, nil, silentProber{}, proto.ICMP, 7)
	d.SetTelemetry(reg)

	addrs := []ipaddr.Addr{
		ipaddr.MustParse("2001:db8:1::1"),
		ipaddr.MustParse("2001:db8:1::2"), // same /96 as above
		ipaddr.MustParse("2001:db8:2::1"),
	}
	d.Split(addrs)

	snap := reg.Snapshot()
	if got := snap.Counters["alias.verdict_cache.misses"]; got != 2 {
		t.Fatalf("misses = %d, want 2 (two distinct /96s)", got)
	}
	if got := snap.Counters["alias.verdict_cache.hits"]; got != 0 {
		t.Fatalf("hits = %d, want 0", got)
	}
	if got := snap.Counters["alias.prefixes_tested"]; got != int64(d.PrefixesTested()) {
		t.Fatalf("prefixes_tested = %d, want %d", got, d.PrefixesTested())
	}
	if got := snap.Counters["alias.probes_sent"]; got != int64(d.ProbesSent()) {
		t.Fatalf("probes_sent = %d, want %d", got, d.ProbesSent())
	}

	// Second split over the same prefixes: all verdicts cached.
	d.Split(addrs)
	snap = reg.Snapshot()
	if got := snap.Counters["alias.verdict_cache.hits"]; got != 2 {
		t.Fatalf("hits after resplit = %d, want 2", got)
	}
	if got := snap.Counters["alias.verdict_cache.misses"]; got != 2 {
		t.Fatalf("misses after resplit = %d, want 2", got)
	}
}

// TestDealiaserWithoutTelemetry pins the nil-safety of an unwired Dealiaser.
func TestDealiaserWithoutTelemetry(t *testing.T) {
	d := New(ModeOnline, nil, silentProber{}, proto.ICMP, 7)
	clean, aliased := d.Split([]ipaddr.Addr{ipaddr.MustParse("2001:db8::1")})
	if len(clean) != 1 || len(aliased) != 0 {
		t.Fatalf("split = %d/%d", len(clean), len(aliased))
	}
}
