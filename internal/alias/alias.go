// Package alias implements the paper's two dealiasing approaches (§2.2,
// §4.2) and their combination:
//
//   - Offline: filtering against a published list of known aliased
//     prefixes (the IPv6 Hitlist's list). The list is incomplete, so
//     offline filtering alone misses never-before-seen aliases.
//   - Online: the 6Gen method. For every new /96 prefix observed among
//     active addresses, probe 3 random addresses inside it (with retries);
//     if 2 or more answer, the whole /96 is an alias and every address in
//     it is discarded.
//   - Joint: offline first (free), then online for the rest — the
//     configuration the paper recommends.
//   - Cooldown: a non-saturating detector beyond the paper's pair (see
//     cooldown.go). Instead of 3-probing every new /96 up front, it
//     tracks per-prefix response density during scanning and only
//     confirms prefixes that answer suspiciously often, cooling them
//     down (discarding further addresses) once confirmed aliased.
package alias

import (
	"fmt"
	"sort"
	"sync"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// AliasPrefixBits is the prefix granularity of the online test. The paper
// keeps 6Gen's /96 (4 billion addresses per prefix).
const AliasPrefixBits = 96

// Online-test parameters from §4.2: 3 random addresses, aliased when 2+
// answer.
const (
	ProbesPerPrefix = 3
	AliasThreshold  = 2
)

// Mode selects a dealiasing treatment; the RQ1.a experiment sweeps all
// of them.
type Mode uint8

const (
	ModeNone Mode = iota
	ModeOffline
	ModeOnline
	ModeJoint
	ModeCooldown
)

// String names the mode using the paper's D_* notation.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeOffline:
		return "offline"
	case ModeOnline:
		return "online"
	case ModeJoint:
		return "joint"
	case ModeCooldown:
		return "cooldown"
	}
	return "mode?"
}

// Modes lists all treatments in Table 4 order: the paper's four, then
// the cool-down extension.
var Modes = []Mode{ModeNone, ModeOffline, ModeOnline, ModeJoint, ModeCooldown}

// ParseMode resolves a treatment name as printed by Mode.String.
func ParseMode(name string) (Mode, error) {
	for _, m := range Modes {
		if m.String() == name {
			return m, nil
		}
	}
	return ModeNone, fmt.Errorf("alias: unknown dealias mode %q", name)
}

// OfflineList is a static set of known aliased prefixes.
type OfflineList struct {
	trie     *ipaddr.Trie
	prefixes []ipaddr.Prefix
}

// NewOfflineList builds a list from known aliased prefixes.
func NewOfflineList(prefixes []ipaddr.Prefix) *OfflineList {
	t := ipaddr.NewTrie()
	for _, p := range prefixes {
		t.Insert(p, true)
	}
	return &OfflineList{trie: t, prefixes: append([]ipaddr.Prefix(nil), prefixes...)}
}

// Len returns the number of listed prefixes.
func (l *OfflineList) Len() int { return len(l.prefixes) }

// Prefixes returns the listed prefixes (read-only) — the structural input
// for cool-down candidate generation.
func (l *OfflineList) Prefixes() []ipaddr.Prefix { return l.prefixes }

// Contains reports whether a falls in a listed aliased prefix.
func (l *OfflineList) Contains(a ipaddr.Addr) bool { return l.trie.Contains(a) }

// Prober abstracts the scanner for the online test — an alias of the
// shared scanner.Prober definition.
type Prober = scanner.Prober

// Dealiaser splits address lists into clean and aliased parts under a
// given mode. The zero value is unusable; construct with New.
type Dealiaser struct {
	mode    Mode
	offline *OfflineList
	prober  Prober
	proto   proto.Protocol

	mu      sync.Mutex
	verdict map[ipaddr.Prefix]bool // online /96 verdict cache
	// inflight holds a done-channel per /96 currently being online-tested,
	// closed when its verdict lands. Claiming a prefix here under mu is
	// what guarantees each /96 is tested exactly once even when concurrent
	// Split calls observe it as unknown simultaneously.
	inflight map[ipaddr.Prefix]chan struct{}
	probes   int
	tested   int
	rngSeed  uint64

	// Cool-down state (ModeCooldown only): per-/96 observation counts,
	// the density at which a prefix is confirmed, and the candidate
	// prefixes (known aliases plus structural siblings) that are
	// confirmed on first sight. See cooldown.go.
	density    map[ipaddr.Prefix]int
	trigger    int
	candidates *ipaddr.Trie

	// Telemetry counters; all nil-safe, so an unwired Dealiaser pays only
	// a no-op method call. Guarded by mu: SetTelemetry may race with
	// in-flight Splits, so writers and readers synchronize on the same
	// lock (the counters themselves are atomic once read).
	cCacheHit   *telemetry.Counter
	cCacheMiss  *telemetry.Counter
	cTested     *telemetry.Counter
	cProbesSent *telemetry.Counter
	cCooled     *telemetry.Counter
}

// New builds a Dealiaser. offline may be nil for ModeNone/ModeOnline;
// prober may be nil for ModeNone/ModeOffline.
func New(mode Mode, offline *OfflineList, prober Prober, p proto.Protocol, seed uint64) *Dealiaser {
	d := &Dealiaser{
		mode:     mode,
		offline:  offline,
		prober:   prober,
		proto:    p,
		verdict:  make(map[ipaddr.Prefix]bool),
		inflight: make(map[ipaddr.Prefix]chan struct{}),
		rngSeed:  seed,
	}
	if mode == ModeCooldown {
		d.density = make(map[ipaddr.Prefix]int)
		d.trigger = CooldownTrigger
		d.candidates = candidateTrie(offline)
	}
	return d
}

// Mode returns the configured mode.
func (d *Dealiaser) Mode() Mode { return d.mode }

// SetTelemetry wires the dealiaser's alias.* counters (verdict-cache
// hits/misses, prefixes tested, probes sent, prefixes cooled down) into
// reg. A nil registry detaches them. Safe to call while Splits are in
// flight: the counter fields are guarded by the dealiaser's mutex.
func (d *Dealiaser) SetTelemetry(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cCacheHit = reg.Counter("alias.verdict_cache.hits")
	d.cCacheMiss = reg.Counter("alias.verdict_cache.misses")
	d.cTested = reg.Counter("alias.prefixes_tested")
	d.cProbesSent = reg.Counter("alias.probes_sent")
	d.cCooled = reg.Counter("alias.cooldown.cooled")
}

// ProbesSent reports how many dealiasing probe targets have been issued.
func (d *Dealiaser) ProbesSent() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.probes
}

// PrefixesTested reports how many /96s went through the online test.
func (d *Dealiaser) PrefixesTested() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tested
}

// Split separates addrs into clean (kept) and aliased (discarded)
// according to the mode. Online testing batches all unknown /96s into one
// scan. Both partitions preserve the input order (offline-listed aliases
// first under ModeJoint), so a run's hit list is reproducible.
func (d *Dealiaser) Split(addrs []ipaddr.Addr) (clean, aliased []ipaddr.Addr) {
	if d.mode == ModeNone || len(addrs) == 0 {
		return addrs, nil
	}
	if d.mode == ModeCooldown {
		return d.splitCooldown(addrs)
	}

	clean = make([]ipaddr.Addr, 0, len(addrs))
	pending := addrs
	if d.mode == ModeOffline || d.mode == ModeJoint {
		pending = pending[:0:0]
		for _, a := range addrs {
			if d.offline != nil && d.offline.Contains(a) {
				aliased = append(aliased, a)
			} else {
				pending = append(pending, a)
			}
		}
		if d.mode == ModeOffline {
			return append(clean, pending...), aliased
		}
	}

	// Online: gather unknown /96s. claimUnknown reserves the prefixes this
	// call will test (singleflight per prefix); prefixes another Split is
	// already testing come back as wait channels instead, so each /96 is
	// online-tested exactly once across concurrent calls.
	byPrefix := make(map[ipaddr.Prefix][]ipaddr.Addr)
	for _, a := range pending {
		p := ipaddr.PrefixFrom(a, AliasPrefixBits)
		byPrefix[p] = append(byPrefix[p], a)
	}
	claimed, waits := d.claimUnknown(byPrefix)
	if len(claimed) > 0 {
		d.testPrefixes(claimed)
	}
	for _, ch := range waits {
		<-ch
	}

	// Classify by walking pending, not byPrefix: map iteration order would
	// make the output order differ run to run.
	d.mu.Lock()
	for _, a := range pending {
		if d.verdict[ipaddr.PrefixFrom(a, AliasPrefixBits)] {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	d.mu.Unlock()
	return clean, aliased
}

// IsAliased runs the configured test for a single address (probing its /96
// if needed).
func (d *Dealiaser) IsAliased(a ipaddr.Addr) bool {
	_, aliased := d.Split([]ipaddr.Addr{a})
	return len(aliased) == 1
}

// claimUnknown partitions byPrefix's prefixes under the mutex: prefixes
// with no verdict and no in-flight test are claimed for this caller (and
// marked in-flight); prefixes another call is already testing come back as
// channels to wait on. Cached or in-flight-elsewhere prefixes count as
// cache hits — only a claim is a miss.
func (d *Dealiaser) claimUnknown(byPrefix map[ipaddr.Prefix][]ipaddr.Addr) (claimed []ipaddr.Prefix, waits []chan struct{}) {
	d.mu.Lock()
	for p := range byPrefix {
		if _, ok := d.verdict[p]; ok {
			continue
		}
		if ch, ok := d.inflight[p]; ok {
			waits = append(waits, ch)
			continue
		}
		d.inflight[p] = make(chan struct{})
		claimed = append(claimed, p)
	}
	hit, miss := d.cCacheHit, d.cCacheMiss
	d.mu.Unlock()
	miss.Add(int64(len(claimed)))
	hit.Add(int64(len(byPrefix) - len(claimed)))
	sortPrefixes(claimed) // deterministic probe generation order
	return claimed, waits
}

// sortPrefixes orders prefixes canonically (address, then length) so
// probe generation is reproducible.
func sortPrefixes(ps []ipaddr.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// probeHostBits derives the deterministic "random" host bits for probe k
// of a prefix. A package variable so tests can force address collisions.
var probeHostBits = func(seed uint64, p ipaddr.Prefix, salt uint64) uint64 {
	return mix64(seed, p.Addr().Hi(), p.Addr().Lo(), salt)
}

// testPrefixes probes ProbesPerPrefix random addresses in each claimed
// prefix and records verdicts, releasing the in-flight claims. Every
// prefix gets exactly ProbesPerPrefix distinct probe addresses: when a
// generated address collides with an earlier one the salt is re-rolled
// until unique, so no prefix is silently judged on fewer probes than the
// AliasThreshold assumes.
func (d *Dealiaser) testPrefixes(prefixes []ipaddr.Prefix) {
	targets := make([]ipaddr.Addr, 0, len(prefixes)*ProbesPerPrefix)
	owner := make(map[ipaddr.Addr]ipaddr.Prefix, cap(targets))
	for _, p := range prefixes {
		for k := 0; k < ProbesPerPrefix; k++ {
			salt := uint64(k)
			a := p.Overlay(ipaddr.AddrFrom64s(0, probeHostBits(d.rngSeed, p, salt)))
			for _, dup := owner[a]; dup; _, dup = owner[a] {
				salt += ProbesPerPrefix
				a = p.Overlay(ipaddr.AddrFrom64s(0, probeHostBits(d.rngSeed, p, salt)))
			}
			owner[a] = p
			targets = append(targets, a)
		}
	}

	activeCount := make(map[ipaddr.Prefix]int, len(prefixes))
	if d.prober != nil {
		for _, a := range d.prober.ScanActive(targets, d.proto) {
			activeCount[owner[a]]++
		}
	}

	d.mu.Lock()
	d.probes += len(targets)
	d.tested += len(prefixes)
	for _, p := range prefixes {
		d.verdict[p] = activeCount[p] >= AliasThreshold
		if ch, ok := d.inflight[p]; ok {
			close(ch)
			delete(d.inflight, p)
		}
	}
	probesSent, tested := d.cProbesSent, d.cTested
	d.mu.Unlock()
	probesSent.Add(int64(len(targets)))
	tested.Add(int64(len(prefixes)))
}

// mix64 is the deterministic fold used for probe address generation.
func mix64(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = smix(h ^ v)
	}
	return h
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
