package ipaddr

// Trie is a binary radix trie keyed by IPv6 prefixes. It supports exact
// insertion, longest-prefix match, and containment tests. Values are
// generic-free (any); callers assert their own types. The zero value is an
// empty trie ready to use: Insert allocates the root lazily and every
// read operation treats a nil root as empty. NewTrie remains for callers
// that prefer an explicit constructor.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	child [2]*trieNode
	// set marks a node that terminates an inserted prefix.
	set bool
	val any
}

// NewTrie returns an empty prefix trie.
func NewTrie() *Trie { return &Trie{root: &trieNode{}} }

// Len returns the number of prefixes stored.
func (t *Trie) Len() int { return t.size }

// Insert stores val at prefix p, replacing any existing value.
func (t *Trie) Insert(p Prefix, val any) {
	if t.root == nil {
		t.root = &trieNode{}
	}
	n := t.root
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := a.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.set = true
	n.val = val
}

// Lookup returns the value of the longest stored prefix containing a, or
// (nil, false) when no stored prefix contains a.
func (t *Trie) Lookup(a Addr) (any, bool) {
	var best any
	found := false
	n := t.root
	if n != nil && n.set {
		best, found = n.val, true
	}
	for i := 0; i < 128 && n != nil; i++ {
		n = n.child[a.Bit(i)]
		if n != nil && n.set {
			best, found = n.val, true
		}
	}
	return best, found
}

// LookupPrefix returns the longest stored prefix containing a along with its
// value.
func (t *Trie) LookupPrefix(a Addr) (Prefix, any, bool) {
	var (
		bestVal  any
		bestBits = -1
	)
	n := t.root
	if n != nil && n.set {
		bestVal, bestBits = n.val, 0
	}
	for i := 0; i < 128 && n != nil; i++ {
		n = n.child[a.Bit(i)]
		if n != nil && n.set {
			bestVal, bestBits = n.val, i+1
		}
	}
	if bestBits < 0 {
		return Prefix{}, nil, false
	}
	return PrefixFrom(a, bestBits), bestVal, true
}

// Contains reports whether any stored prefix contains a.
func (t *Trie) Contains(a Addr) bool {
	_, ok := t.Lookup(a)
	return ok
}

// ContainsExact reports whether prefix p itself was inserted.
func (t *Trie) ContainsExact(p Prefix) bool {
	n := t.root
	a := p.Addr()
	for i := 0; i < p.Bits() && n != nil; i++ {
		n = n.child[a.Bit(i)]
	}
	return n != nil && n.set
}

// Walk visits every stored prefix/value pair in lexical order. Returning
// false from fn stops the walk.
func (t *Trie) Walk(fn func(Prefix, any) bool) {
	t.walk(t.root, Addr{}, 0, fn)
}

func (t *Trie) walk(n *trieNode, a Addr, depth int, fn func(Prefix, any) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(PrefixFrom(a, depth), n.val) {
			return false
		}
	}
	if depth == 128 {
		return true
	}
	if !t.walk(n.child[0], a, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], a.WithBit(depth, 1), depth+1, fn)
}
