package ipaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"::",
		"::1",
		"2001:db8::1",
		"2600:9000:2000::ffff",
		"fe80::1:2:3:4",
		"2001:db8:1234:5678:9abc:def0:1234:5678",
	}
	for _, s := range cases {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{"", "1.2.3.4", "::ffff:1.2.3.4", "nonsense", "2001:db8::/32"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestNybbleAccess(t *testing.T) {
	a := MustParse("2001:db8:1234:5678:9abc:def0:1234:5678")
	want := "20010db8123456789abcdef012345678"
	if got := a.FullHex(); got != want {
		t.Fatalf("FullHex = %q, want %q", got, want)
	}
	for i := 0; i < NybbleCount; i++ {
		want := hexVal(want[i])
		if got := a.Nybble(i); got != want {
			t.Errorf("Nybble(%d) = %x, want %x", i, got, want)
		}
	}
}

func hexVal(c byte) byte {
	if c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}

func TestWithNybbleRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, idx uint8, val uint8) bool {
		a := AddrFrom64s(hi, lo)
		i := int(idx) % NybbleCount
		v := val & 0xf
		b := a.WithNybble(i, v)
		if b.Nybble(i) != v {
			return false
		}
		// All other nybbles unchanged.
		for j := 0; j < NybbleCount; j++ {
			if j != i && a.Nybble(j) != b.Nybble(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, idx uint8, val uint8) bool {
		a := AddrFrom64s(hi, lo)
		i := int(idx) % 128
		v := val & 1
		b := a.WithBit(i, v)
		if b.Bit(i) != v {
			return false
		}
		for j := 0; j < 128; j++ {
			if j != i && a.Bit(j) != b.Bit(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAs16RoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFrom64s(hi, lo)
		return AddrFrom16(a.As16()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"::", "::", 128},
		{"8000::", "::", 0},
		{"2001:db8::", "2001:db8::1", 127},
		{"2001:db8::", "2001:db9::", 31},
		{"2001:db8::", "2001:db8:0:1::", 63},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.CommonPrefixLen(b); got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.CommonPrefixLen(a); got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestCommonPrefixLenMatchesBits(t *testing.T) {
	f := func(hi, lo uint64, flipIdx uint8) bool {
		a := AddrFrom64s(hi, lo)
		i := int(flipIdx) % 128
		b := a.WithBit(i, a.Bit(i)^1)
		return a.CommonPrefixLen(b) <= i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddLoCarry(t *testing.T) {
	a := AddrFrom64s(1, ^uint64(0))
	b := a.AddLo(1)
	if b.Hi() != 2 || b.Lo() != 0 {
		t.Fatalf("AddLo carry: got hi=%d lo=%d", b.Hi(), b.Lo())
	}
}

func TestCompareAndLess(t *testing.T) {
	a := MustParse("2001:db8::1")
	b := MustParse("2001:db8::2")
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less ordering wrong")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare wrong")
	}
}

func TestNybbleDistance(t *testing.T) {
	a := MustParse("2001:db8::1")
	if d := a.NybbleDistance(a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	b := a.WithNybble(31, a.Nybble(31)^0xf).WithNybble(0, a.Nybble(0)^1)
	if d := a.NybbleDistance(b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestXorZeroIdentity(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFrom64s(hi, lo)
		return a.Xor(a).IsZero() && a.Xor(Addr{}) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNybble(b *testing.B) {
	a := MustParse("2001:db8:1234:5678:9abc:def0:1234:5678")
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += a.Nybble(i & 31)
	}
	_ = sink
}

func BenchmarkFullHex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = AddrFrom64s(rng.Uint64(), rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = addrs[i&1023].FullHex()
	}
}
