// Package ipaddr provides the IPv6 address primitives used throughout
// seedscan: a compact value type with nybble-level access, prefixes, sets,
// and a binary radix trie for longest-prefix matching.
//
// Target Generation Algorithms operate on the 32 hexadecimal digits
// ("nybbles") of an IPv6 address, so nybble indexing is a first-class
// operation here: nybble 0 is the most significant hex digit and nybble 31
// the least significant.
package ipaddr

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// NybbleCount is the number of hexadecimal digits in an IPv6 address.
const NybbleCount = 32

// Addr is a 128-bit IPv6 address. It is a comparable value type usable as a
// map key. The zero value is "::".
type Addr struct {
	hi, lo uint64
}

// AddrFrom64s builds an address from its high and low 64-bit halves.
func AddrFrom64s(hi, lo uint64) Addr { return Addr{hi: hi, lo: lo} }

// AddrFrom16 builds an address from a 16-byte slice or array in network
// (big-endian) order.
func AddrFrom16(b [16]byte) Addr {
	return Addr{
		hi: binary.BigEndian.Uint64(b[0:8]),
		lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Parse parses an IPv6 address in any textual form accepted by net/netip.
// IPv4 and IPv4-mapped forms are rejected: seedscan deals exclusively in
// native IPv6.
func Parse(s string) (Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return Addr{}, fmt.Errorf("ipaddr: parse %q: %w", s, err)
	}
	if !a.Is6() || a.Is4In6() {
		return Addr{}, fmt.Errorf("ipaddr: parse %q: not a native IPv6 address", s)
	}
	return AddrFrom16(a.As16()), nil
}

// MustParse is Parse but panics on error. For tests and constants.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Hi returns the high (most significant) 64 bits.
func (a Addr) Hi() uint64 { return a.hi }

// Lo returns the low (least significant) 64 bits.
func (a Addr) Lo() uint64 { return a.lo }

// As16 returns the address as a 16-byte array in network order.
func (a Addr) As16() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], a.hi)
	binary.BigEndian.PutUint64(b[8:16], a.lo)
	return b
}

// NetIP converts to a net/netip address, mainly for formatting.
func (a Addr) NetIP() netip.Addr { return netip.AddrFrom16(a.As16()) }

// String renders the address in canonical RFC 5952 form.
func (a Addr) String() string { return a.NetIP().String() }

// FullHex renders the address as 32 hex digits without separators, the
// representation TGAs mine patterns from.
func (a Addr) FullHex() string {
	var sb strings.Builder
	sb.Grow(NybbleCount)
	for i := 0; i < NybbleCount; i++ {
		sb.WriteByte(hexDigit(a.Nybble(i)))
	}
	return sb.String()
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

// Nybble returns hex digit i (0 = most significant, 31 = least).
func (a Addr) Nybble(i int) byte {
	if i < 16 {
		return byte(a.hi >> uint(60-4*i) & 0xf)
	}
	return byte(a.lo >> uint(60-4*(i-16)) & 0xf)
}

// WithNybble returns a copy of a with hex digit i set to v (low 4 bits used).
func (a Addr) WithNybble(i int, v byte) Addr {
	m := uint64(0xf)
	x := uint64(v & 0xf)
	if i < 16 {
		sh := uint(60 - 4*i)
		a.hi = a.hi&^(m<<sh) | x<<sh
	} else {
		sh := uint(60 - 4*(i-16))
		a.lo = a.lo&^(m<<sh) | x<<sh
	}
	return a
}

// Bit returns bit i of the address (0 = most significant, 127 = least).
func (a Addr) Bit(i int) byte {
	if i < 64 {
		return byte(a.hi >> uint(63-i) & 1)
	}
	return byte(a.lo >> uint(127-i) & 1)
}

// WithBit returns a copy of a with bit i set to the low bit of v.
func (a Addr) WithBit(i int, v byte) Addr {
	x := uint64(v & 1)
	if i < 64 {
		sh := uint(63 - i)
		a.hi = a.hi&^(1<<sh) | x<<sh
	} else {
		sh := uint(127 - i)
		a.lo = a.lo&^(1<<sh) | x<<sh
	}
	return a
}

// Less reports whether a sorts before b in numeric (big-endian) order.
func (a Addr) Less(b Addr) bool {
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.lo < b.lo
}

// Compare returns -1, 0, or +1 comparing a to b numerically.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// IsZero reports whether a is the unspecified address "::".
func (a Addr) IsZero() bool { return a.hi == 0 && a.lo == 0 }

// AddLo returns a with delta added to the low 64 bits, carrying into the
// high half on overflow.
func (a Addr) AddLo(delta uint64) Addr {
	lo := a.lo + delta
	if lo < a.lo {
		a.hi++
	}
	a.lo = lo
	return a
}

// Xor returns the bitwise exclusive-or of two addresses.
func (a Addr) Xor(b Addr) Addr { return Addr{hi: a.hi ^ b.hi, lo: a.lo ^ b.lo} }

// CommonPrefixLen returns the number of leading bits a and b share (0..128).
func (a Addr) CommonPrefixLen(b Addr) int {
	if x := a.hi ^ b.hi; x != 0 {
		return leadingZeros64(x)
	}
	if x := a.lo ^ b.lo; x != 0 {
		return 64 + leadingZeros64(x)
	}
	return 128
}

// NybbleDistance returns the number of hex digit positions where a and b
// differ — the Hamming distance over nybbles used by 6Gen's clustering.
func (a Addr) NybbleDistance(b Addr) int {
	d := 0
	for i := 0; i < NybbleCount; i++ {
		if a.Nybble(i) != b.Nybble(i) {
			d++
		}
	}
	return d
}

func leadingZeros64(x uint64) int {
	n := 0
	if x>>32 == 0 {
		n += 32
		x <<= 32
	}
	if x>>48 == 0 {
		n += 16
		x <<= 16
	}
	if x>>56 == 0 {
		n += 8
		x <<= 8
	}
	if x>>60 == 0 {
		n += 4
		x <<= 4
	}
	if x>>62 == 0 {
		n += 2
		x <<= 2
	}
	if x>>63 == 0 {
		n++
	}
	return n
}
