package ipaddr

import (
	"testing"
	"testing/quick"
)

func addrsFrom(ss ...string) []Addr {
	out := make([]Addr, len(ss))
	for i, s := range ss {
		out[i] = MustParse(s)
	}
	return out
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a := MustParse("2001:db8::1")
	if !s.Add(a) {
		t.Fatal("first Add should report new")
	}
	if s.Add(a) {
		t.Fatal("second Add should report existing")
	}
	if !s.Contains(a) || s.Len() != 1 {
		t.Fatal("Contains/Len wrong")
	}
	s.Remove(a)
	if s.Contains(a) || s.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(addrsFrom("::1", "::2", "::3")...)
	b := NewSet(addrsFrom("::2", "::3", "::4")...)

	if got := a.Intersect(b).Len(); got != 2 {
		t.Errorf("Intersect len = %d", got)
	}
	if got := a.Union(b).Len(); got != 4 {
		t.Errorf("Union len = %d", got)
	}
	if got := a.Diff(b).Len(); got != 1 || !a.Diff(b).Contains(MustParse("::1")) {
		t.Errorf("Diff wrong: len=%d", got)
	}
	if got := b.Diff(a).Len(); got != 1 || !b.Diff(a).Contains(MustParse("::4")) {
		t.Errorf("reverse Diff wrong: len=%d", got)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	a := NewSet(addrsFrom("::1")...)
	c := a.Clone()
	c.Add(MustParse("::2"))
	if a.Len() != 1 || c.Len() != 2 {
		t.Fatal("Clone not independent")
	}
}

func TestSetSortedOrder(t *testing.T) {
	s := NewSet(addrsFrom("::3", "::1", "::2")...)
	got := s.Sorted()
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("Sorted out of order at %d", i)
		}
	}
}

func TestSetFilter(t *testing.T) {
	s := NewSet(addrsFrom("::1", "::2", "::3", "::4")...)
	even := s.Filter(func(a Addr) bool { return a.Lo()%2 == 0 })
	if even.Len() != 2 {
		t.Fatalf("Filter len = %d", even.Len())
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	mk := func(xs []uint16) *Set {
		s := NewSet()
		for _, x := range xs {
			s.Add(AddrFrom64s(0, uint64(x)%64)) // small domain forces overlap
		}
		return s
	}
	inclusionExclusion := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(inclusionExclusion, nil); err != nil {
		t.Fatal(err)
	}
	diffDisjoint := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Diff(b).Intersect(b).Len() == 0
	}
	if err := quick.Check(diffDisjoint, nil); err != nil {
		t.Fatal(err)
	}
	partition := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Diff(b).Len()+a.Intersect(b).Len() == a.Len()
	}
	if err := quick.Check(partition, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	in := addrsFrom("::1", "::2", "::1", "::3", "::2")
	got := Dedup(in)
	want := addrsFrom("::1", "::2", "::3")
	if len(got) != len(want) {
		t.Fatalf("Dedup len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedup order wrong at %d: %v", i, got[i])
		}
	}
}
