package ipaddr

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Prefix is an IPv6 CIDR prefix: an address plus a prefix length in bits.
// The address is always stored masked to the prefix length.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom builds a prefix from an address and bit length, masking the
// address. It panics if bits is outside [0, 128].
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 || bits > 128 {
		panic(fmt.Sprintf("ipaddr: invalid prefix length %d", bits))
	}
	return Prefix{addr: mask(a, bits), bits: uint8(bits)}
}

// ParsePrefix parses "addr/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: prefix %q: missing '/'", s)
	}
	a, err := Parse(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 128 {
		return Prefix{}, fmt.Errorf("ipaddr: prefix %q: bad length", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix but panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(a Addr, bits int) Addr {
	switch {
	case bits <= 0:
		return Addr{}
	case bits >= 128:
		return a
	case bits <= 64:
		return Addr{hi: a.hi &^ (^uint64(0) >> uint(bits))}
	default:
		return Addr{hi: a.hi, lo: a.lo &^ (^uint64(0) >> uint(bits-64))}
	}
}

// Addr returns the (masked) base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length in bits.
func (p Prefix) Bits() int { return int(p.bits) }

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Contains reports whether a falls within p.
func (p Prefix) Contains(a Addr) bool { return mask(a, int(p.bits)) == p.addr }

// ContainsPrefix reports whether q is entirely within p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// Last returns the numerically highest address in p.
func (p Prefix) Last() Addr {
	bits := int(p.bits)
	a := p.addr
	switch {
	case bits >= 128:
		return a
	case bits <= 64:
		a.lo = ^uint64(0)
		if bits < 64 {
			a.hi |= ^uint64(0) >> uint(bits)
		}
		return a
	default:
		a.lo |= ^uint64(0) >> uint(bits-64)
		return a
	}
}

// RandomWithin returns a uniformly random address inside p using rng.
func (p Prefix) RandomWithin(rng *rand.Rand) Addr {
	r := Addr{hi: rng.Uint64(), lo: rng.Uint64()}
	return p.Overlay(r)
}

// Overlay keeps p's prefix bits and fills the host bits from a.
func (p Prefix) Overlay(a Addr) Addr {
	bits := int(p.bits)
	switch {
	case bits <= 0:
		return a
	case bits >= 128:
		return p.addr
	case bits <= 64:
		m := ^uint64(0) >> uint(bits)
		return Addr{hi: p.addr.hi | a.hi&m, lo: a.lo}
	default:
		m := ^uint64(0) >> uint(bits-64)
		return Addr{hi: p.addr.hi, lo: p.addr.lo | a.lo&m}
	}
}

// Parent returns the prefix one bit shorter. Parent of /0 is /0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		return p
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// Child returns the left (bit==0) or right (bit==1) half of p. It panics if
// p is already /128.
func (p Prefix) Child(bit byte) Prefix {
	if int(p.bits) >= 128 {
		panic("ipaddr: Child of /128")
	}
	a := p.addr
	if bit&1 == 1 {
		a = a.WithBit(int(p.bits), 1)
	}
	return Prefix{addr: a, bits: p.bits + 1}
}

// NumAddrsCapped returns the number of addresses in p, capped at 2^63-1 so
// it fits an int64 (a /65 or shorter saturates).
func (p Prefix) NumAddrsCapped() int64 {
	host := 128 - int(p.bits)
	if host >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(host)
}
