package ipaddr

import "sort"

// lpmLeaf marks an LPMTable entry as a terminal value rather than a child
// node reference. Values therefore carry at most 31 bits.
const lpmLeaf = 1 << 31

// LPMTable is a flat, array-backed longest-prefix-match table: a stride-4
// multibit trie whose nodes are 16 consecutive uint32 entries in one slice.
// Compared to Trie it trades insert flexibility for the lookup shape packet
// paths want — no pointer chasing, no interface boxing, one bounded loop of
// array indexing per lookup, and the whole table lives in a single cache-
// friendly allocation.
//
// An entry is either 0 (no route), a terminal (lpmLeaf | value), or the id
// of a child node (node ids are indexes into the node array; the root is
// node 0, so a nonzero entry below lpmLeaf is unambiguous).
//
// Build one from a Trie with BuildLPM; the table is immutable afterwards
// and safe for concurrent lookups.
type LPMTable struct {
	nodes   []uint32
	skipNyb int
}

// BuildLPM flattens t into an LPMTable. Every stored prefix is mapped
// through value to a table value, which must fit in 31 bits. skipBits (a
// multiple of 4) declares leading bits shared by all stored prefixes and
// all future lookups — a per-AS table over a /28 passes 28 and the table
// starts matching at nybble 7, keeping it shallow. Prefixes shorter than
// skipBits act as the table default.
//
// Lookup(a) returns exactly what t.Lookup(a) would for any a sharing the
// skipped bits, as long as every value is distinct per prefix.
func BuildLPM(t *Trie, skipBits int, value func(Prefix, any) uint32) *LPMTable {
	if skipBits%4 != 0 || skipBits < 0 || skipBits > 128 {
		panic("ipaddr: BuildLPM skipBits must be a multiple of 4 in [0, 128]")
	}
	type entry struct {
		p Prefix
		v uint32
	}
	var entries []entry
	t.Walk(func(p Prefix, val any) bool {
		v := value(p, val)
		if v&lpmLeaf != 0 {
			panic("ipaddr: BuildLPM value exceeds 31 bits")
		}
		entries = append(entries, entry{p: p, v: v})
		return true
	})
	// Insert shortest-first: a prefix's span then only ever overwrites empty
	// entries or terminals of shorter prefixes, never child nodes (children
	// are created solely by longer prefixes, which have not been inserted
	// yet). That keeps insertion a plain span write plus leaf-pushing on the
	// descent. Walk order is deterministic, so the stable sort is too.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].p.Bits() < entries[j].p.Bits() })
	lt := &LPMTable{nodes: make([]uint32, 16, 16*(len(entries)+1)), skipNyb: skipBits / 4}
	for _, e := range entries {
		lt.insert(e.p, e.v)
	}
	return lt
}

// newNode appends a node with every entry set to fill and returns its id.
func (t *LPMTable) newNode(fill uint32) int {
	id := len(t.nodes) / 16
	for i := 0; i < 16; i++ {
		t.nodes = append(t.nodes, fill)
	}
	return id
}

func (t *LPMTable) insert(p Prefix, v uint32) {
	leaf := v | lpmLeaf
	db := p.Bits() - t.skipNyb*4
	if db <= 0 {
		// At or above the skipped depth: the prefix covers the whole table.
		for i := 0; i < 16; i++ {
			if e := t.nodes[i]; e == 0 || e&lpmLeaf != 0 {
				t.nodes[i] = leaf
			}
		}
		return
	}
	a := p.Addr()
	n := 0
	full := (db - 1) / 4
	for i := 0; i < full; i++ {
		idx := n*16 + int(a.Nybble(t.skipNyb+i))
		switch e := t.nodes[idx]; {
		case e == 0:
			c := t.newNode(0)
			t.nodes[idx] = uint32(c)
			n = c
		case e&lpmLeaf != 0:
			// Leaf push: the covering shorter prefix becomes the new child
			// node's default, so addresses outside this prefix still match it.
			c := t.newNode(e)
			t.nodes[idx] = uint32(c)
			n = c
		default:
			n = int(e)
		}
	}
	// The final 1-4 bits select a span of entries in the last node.
	r := db - full*4
	width := 1 << (4 - r)
	ny := int(a.Nybble(t.skipNyb + full))
	start := ny &^ (width - 1)
	for i := start; i < start+width; i++ {
		t.nodes[n*16+i] = leaf
	}
}

// Lookup returns the value of the longest stored prefix containing a. The
// skipped leading nybbles are assumed to match (the caller routed a to this
// table); only the remaining nybbles are inspected.
func (t *LPMTable) Lookup(a Addr) (uint32, bool) {
	n := 0
	nodes := t.nodes
	for ny := t.skipNyb; ny < NybbleCount; ny++ {
		e := nodes[n*16+int(a.Nybble(ny))]
		if e&lpmLeaf != 0 {
			return e &^ lpmLeaf, true
		}
		if e == 0 {
			return 0, false
		}
		n = int(e)
	}
	return 0, false
}

// NumNodes reports how many 16-entry nodes the table holds — a size gauge
// for tests and telemetry.
func (t *LPMTable) NumNodes() int { return len(t.nodes) / 16 }
