package ipaddr

// OASet is an insert-only address set built on the same flat open
// addressing as Dedup: slots hold index+1 into the insertion-ordered
// backing slice (0 = empty), so membership tests touch one int32 table
// instead of hashing 16-byte keys through the runtime map. Unlike Dedup it
// grows, which makes it the right shape for the TGA driver's budget-sized
// dedup sets. The zero value is not usable; construct with NewOASet. Not
// safe for concurrent use.
type OASet struct {
	table []int32
	addrs []Addr
	mask  uint64
}

// NewOASet returns an empty set pre-sized for about capHint addresses.
func NewOASet(capHint int) *OASet {
	size := 16
	for size < 2*capHint {
		size <<= 1
	}
	return &OASet{
		table: make([]int32, size),
		addrs: make([]Addr, 0, capHint),
		mask:  uint64(size - 1),
	}
}

// NewOASetFrom returns a set holding the unique addresses of addrs.
func NewOASetFrom(addrs []Addr) *OASet {
	s := NewOASet(len(addrs))
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// Add inserts a, reporting whether it was newly added.
func (s *OASet) Add(a Addr) bool {
	if 2*(len(s.addrs)+1) > len(s.table) {
		s.grow()
	}
	h := dedupHash(a) & s.mask
	for {
		idx := s.table[h]
		if idx == 0 {
			s.table[h] = int32(len(s.addrs) + 1)
			s.addrs = append(s.addrs, a)
			return true
		}
		if s.addrs[idx-1] == a {
			return false
		}
		h = (h + 1) & s.mask
	}
}

// Contains reports membership.
func (s *OASet) Contains(a Addr) bool {
	h := dedupHash(a) & s.mask
	for {
		idx := s.table[h]
		if idx == 0 {
			return false
		}
		if s.addrs[idx-1] == a {
			return true
		}
		h = (h + 1) & s.mask
	}
}

// Len returns the number of addresses.
func (s *OASet) Len() int { return len(s.addrs) }

// Slice returns the addresses in insertion order. The slice is shared with
// the set; callers must not mutate it while the set is in use.
func (s *OASet) Slice() []Addr { return s.addrs }

// grow doubles the table and rehashes. The backing slice carries the
// insertion order, so rehashing just re-derives the slots.
func (s *OASet) grow() {
	size := 2 * len(s.table)
	s.table = make([]int32, size)
	s.mask = uint64(size - 1)
	for i, a := range s.addrs {
		h := dedupHash(a) & s.mask
		for s.table[h] != 0 {
			h = (h + 1) & s.mask
		}
		s.table[h] = int32(i + 1)
	}
}

// DedupSorted returns addrs with adjacent duplicates removed. On sorted
// input (the canonical seed order) that is full deduplication, in order,
// without hashing. Duplicate-free input is returned as-is, uncopied.
func DedupSorted(addrs []Addr) []Addr {
	for i := 1; i < len(addrs); i++ {
		if addrs[i] == addrs[i-1] {
			out := append([]Addr(nil), addrs[:i]...)
			for ; i < len(addrs); i++ {
				if addrs[i] != addrs[i-1] {
					out = append(out, addrs[i])
				}
			}
			return out
		}
	}
	return addrs
}

// Digest folds addrs into an order-sensitive 64-bit digest — the seed
// fingerprint the TGA model cache keys on. Callers that need a canonical
// digest (the cache does) must pass the seeds in canonical sorted order.
func Digest(addrs []Addr) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(len(addrs))
	for _, a := range addrs {
		h ^= dedupHash(a)
		h *= 0x100000001b3
		h ^= h >> 32
	}
	return h
}
