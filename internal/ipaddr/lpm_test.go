package ipaddr

import (
	"math/rand"
	"testing"
)

// lpmFromStrings builds a table whose values index the prefix list.
func lpmFromStrings(skipBits int, prefixes []string) (*LPMTable, []Prefix) {
	tr := NewTrie()
	ps := make([]Prefix, len(prefixes))
	for i, s := range prefixes {
		ps[i] = MustParsePrefix(s)
		tr.Insert(ps[i], i)
	}
	return BuildLPM(tr, skipBits, func(_ Prefix, v any) uint32 { return uint32(v.(int)) }), ps
}

func TestLPMLongestMatch(t *testing.T) {
	lt, _ := lpmFromStrings(0, []string{
		"2001:db8::/32",     // 0
		"2001:db8:1::/48",   // 1
		"2001:db8:1:2::/64", // 2
	})
	cases := []struct {
		addr string
		want uint32
		ok   bool
	}{
		{"2001:db8:1:2::99", 2, true},
		{"2001:db8:1:3::99", 1, true},
		{"2001:db8:9::1", 0, true},
		{"2600::1", 0, false},
	}
	for _, c := range cases {
		v, ok := lt.Lookup(MustParse(c.addr))
		if ok != c.ok || (ok && v != c.want) {
			t.Fatalf("Lookup(%s) = %d, %v; want %d, %v", c.addr, v, ok, c.want, c.ok)
		}
	}
}

func TestLPMNonNybblePrefixes(t *testing.T) {
	// /33 and /35 exercise the partial-nybble span writes.
	lt, _ := lpmFromStrings(0, []string{
		"2001:db8::/33",      // 0: covers 2001:db8:0000-7fff
		"2001:db8:8000::/33", // 1: covers 2001:db8:8000-ffff
		"2001:db8:2000::/35", // 2: covers 2001:db8:2000-3fff inside 0
	})
	cases := []struct {
		addr string
		want uint32
	}{
		{"2001:db8:0001::1", 0},
		{"2001:db8:7fff::1", 0},
		{"2001:db8:8000::1", 1},
		{"2001:db8:ffff::1", 1},
		{"2001:db8:2abc::1", 2},
		{"2001:db8:3fff::1", 2},
		{"2001:db8:4000::1", 0},
	}
	for _, c := range cases {
		v, ok := lt.Lookup(MustParse(c.addr))
		if !ok || v != c.want {
			t.Fatalf("Lookup(%s) = %d, %v; want %d", c.addr, v, ok, c.want)
		}
	}
}

func TestLPMSkipBits(t *testing.T) {
	// All prefixes inside 2001:db8::/32; skipBits=32 skips eight nybbles.
	lt, _ := lpmFromStrings(32, []string{
		"2001:db8::/32",
		"2001:db8:aa00::/40",
		"2001:db8:aa00:bb00::/56",
	})
	cases := []struct {
		addr string
		want uint32
	}{
		{"2001:db8:1::1", 0},
		{"2001:db8:aaff::1", 1},
		{"2001:db8:aa00:bb42::1", 2},
	}
	for _, c := range cases {
		v, ok := lt.Lookup(MustParse(c.addr))
		if !ok || v != c.want {
			t.Fatalf("Lookup(%s) = %d, %v; want %d", c.addr, v, ok, c.want)
		}
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	lt, _ := lpmFromStrings(0, []string{"::/0", "2001:db8::/32"})
	if v, ok := lt.Lookup(MustParse("abcd::1")); !ok || v != 0 {
		t.Fatalf("default route = %d, %v", v, ok)
	}
	if v, ok := lt.Lookup(MustParse("2001:db8::1")); !ok || v != 1 {
		t.Fatalf("specific route = %d, %v", v, ok)
	}
}

func TestLPMHostRoute(t *testing.T) {
	lt, _ := lpmFromStrings(0, []string{"2001:db8::/32", "2001:db8::7/128"})
	if v, ok := lt.Lookup(MustParse("2001:db8::7")); !ok || v != 1 {
		t.Fatalf("/128 route = %d, %v", v, ok)
	}
	if v, ok := lt.Lookup(MustParse("2001:db8::8")); !ok || v != 0 {
		t.Fatalf("neighbour of /128 = %d, %v", v, ok)
	}
}

// TestLPMMatchesTrieRandomized is the contract test: for random prefix sets
// and random probes, BuildLPM must agree with the Trie it flattened.
func TestLPMMatchesTrieRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 5; round++ {
		tr := NewTrie()
		var prefixes []Prefix
		for i := 0; i < 150; i++ {
			bits := 8 + rng.Intn(113)
			p := PrefixFrom(AddrFrom64s(rng.Uint64(), rng.Uint64()), bits)
			tr.Insert(p, i)
			prefixes = append(prefixes, p)
		}
		lt := BuildLPM(tr, 0, func(_ Prefix, v any) uint32 { return uint32(v.(int)) })
		for i := 0; i < 1000; i++ {
			var a Addr
			if rng.Intn(2) == 0 {
				a = prefixes[rng.Intn(len(prefixes))].RandomWithin(rng)
			} else {
				a = AddrFrom64s(rng.Uint64(), rng.Uint64())
			}
			wantV, wantOK := tr.Lookup(a)
			gotV, gotOK := lt.Lookup(a)
			if gotOK != wantOK || (gotOK && int(gotV) != wantV.(int)) {
				t.Fatalf("round %d addr %v: lpm = %d, %v; trie = %v, %v",
					round, a, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}

func TestTrieZeroValueUsable(t *testing.T) {
	// The documented contract: a zero-value Trie behaves as an empty trie
	// for every operation, and Insert brings it to life.
	var tr Trie
	if tr.Len() != 0 {
		t.Fatalf("zero trie Len = %d", tr.Len())
	}
	if _, ok := tr.Lookup(MustParse("2001:db8::1")); ok {
		t.Fatal("zero trie Lookup matched")
	}
	if _, _, ok := tr.LookupPrefix(MustParse("2001:db8::1")); ok {
		t.Fatal("zero trie LookupPrefix matched")
	}
	if tr.Contains(MustParse("2001:db8::1")) {
		t.Fatal("zero trie Contains matched")
	}
	if tr.ContainsExact(MustParsePrefix("2001:db8::/32")) {
		t.Fatal("zero trie ContainsExact matched")
	}
	tr.Walk(func(Prefix, any) bool { t.Fatal("zero trie Walk visited"); return false })

	tr.Insert(MustParsePrefix("2001:db8::/32"), "v")
	if v, ok := tr.Lookup(MustParse("2001:db8::1")); !ok || v != "v" {
		t.Fatalf("post-insert Lookup = %v, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("post-insert Len = %d", tr.Len())
	}
}

func BenchmarkLPMLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrie()
	for i := 0; i < 10000; i++ {
		tr.Insert(PrefixFrom(AddrFrom64s(rng.Uint64(), rng.Uint64()), 32+rng.Intn(33)), i)
	}
	lt := BuildLPM(tr, 0, func(_ Prefix, v any) uint32 { return uint32(v.(int)) })
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = AddrFrom64s(rng.Uint64(), rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Lookup(addrs[i&1023])
	}
}
