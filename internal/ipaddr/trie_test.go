package ipaddr

import (
	"math/rand"
	"testing"
)

func TestTrieLookupLongest(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("2001:db8::/32"), "short")
	tr.Insert(MustParsePrefix("2001:db8:1::/48"), "long")

	v, ok := tr.Lookup(MustParse("2001:db8:1::5"))
	if !ok || v != "long" {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	v, ok = tr.Lookup(MustParse("2001:db8:2::5"))
	if !ok || v != "short" {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if _, ok := tr.Lookup(MustParse("2600::1")); ok {
		t.Fatal("unexpected match")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("::/0"), "default")
	v, ok := tr.Lookup(MustParse("abcd::1"))
	if !ok || v != "default" {
		t.Fatalf("default route lookup = %v, %v", v, ok)
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	tr := NewTrie()
	p48 := MustParsePrefix("2001:db8:1::/48")
	tr.Insert(MustParsePrefix("2001:db8::/32"), 32)
	tr.Insert(p48, 48)
	got, v, ok := tr.LookupPrefix(MustParse("2001:db8:1::1"))
	if !ok || v != 48 || got != p48 {
		t.Fatalf("LookupPrefix = %v, %v, %v", got, v, ok)
	}
}

func TestTrieReplaceAndLen(t *testing.T) {
	tr := NewTrie()
	p := MustParsePrefix("2001:db8::/32")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Lookup(MustParse("2001:db8::1"))
	if v != 2 {
		t.Fatalf("value not replaced: %v", v)
	}
}

func TestTrieContainsExact(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("2001:db8::/32"), nil)
	if !tr.ContainsExact(MustParsePrefix("2001:db8::/32")) {
		t.Fatal("exact prefix missing")
	}
	if tr.ContainsExact(MustParsePrefix("2001:db8::/33")) {
		t.Fatal("sub-prefix should not be exact")
	}
	if tr.ContainsExact(MustParsePrefix("2001:db8::/31")) {
		t.Fatal("super-prefix should not be exact")
	}
}

func TestTrieWalkOrderAndCompleteness(t *testing.T) {
	tr := NewTrie()
	prefixes := []string{"::/0", "2001:db8::/32", "2001:db8:1::/48", "fe80::/10"}
	for _, s := range prefixes {
		tr.Insert(MustParsePrefix(s), s)
	}
	var seen []string
	tr.Walk(func(p Prefix, v any) bool {
		seen = append(seen, v.(string))
		return true
	})
	if len(seen) != len(prefixes) {
		t.Fatalf("walk visited %d, want %d", len(seen), len(prefixes))
	}
	// ::/0 must come first (shortest at root).
	if seen[0] != "::/0" {
		t.Fatalf("walk order: first = %s", seen[0])
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("2001:db8::/32"), 1)
	tr.Insert(MustParsePrefix("2600::/16"), 2)
	n := 0
	tr.Walk(func(Prefix, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("walk did not stop early: %d", n)
	}
}

func TestTrieRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTrie()
	var prefixes []Prefix
	for i := 0; i < 200; i++ {
		bits := 8 + rng.Intn(113)
		p := PrefixFrom(AddrFrom64s(rng.Uint64(), rng.Uint64()), bits)
		tr.Insert(p, p.String())
		prefixes = append(prefixes, p)
	}
	for i := 0; i < 500; i++ {
		var a Addr
		if rng.Intn(2) == 0 {
			// Random point inside a random stored prefix.
			a = prefixes[rng.Intn(len(prefixes))].RandomWithin(rng)
		} else {
			a = AddrFrom64s(rng.Uint64(), rng.Uint64())
		}
		// Linear reference: longest containing prefix.
		best, bestBits := "", -1
		for _, p := range prefixes {
			if p.Contains(a) && p.Bits() > bestBits {
				best, bestBits = p.String(), p.Bits()
			}
		}
		v, ok := tr.Lookup(a)
		if bestBits < 0 {
			if ok {
				t.Fatalf("addr %v: trie matched %v, linear matched nothing", a, v)
			}
			continue
		}
		if !ok || v.(string) != best {
			t.Fatalf("addr %v: trie = %v (%v), linear = %v", a, v, ok, best)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrie()
	for i := 0; i < 10000; i++ {
		tr.Insert(PrefixFrom(AddrFrom64s(rng.Uint64(), rng.Uint64()), 32+rng.Intn(33)), i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = AddrFrom64s(rng.Uint64(), rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}
