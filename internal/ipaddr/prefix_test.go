package ipaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrefixParseAndString(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 {
		t.Fatalf("Bits = %d", p.Bits())
	}
	if got := p.String(); got != "2001:db8::/32" {
		t.Fatalf("String = %q", got)
	}
	// Address must be masked on construction.
	q := MustParsePrefix("2001:db8:ffff::1/32")
	if q != p {
		t.Fatalf("masking failed: %v != %v", q, p)
	}
}

func TestPrefixParseErrors(t *testing.T) {
	for _, s := range []string{"2001:db8::", "2001:db8::/129", "2001:db8::/-1", "1.2.3.0/24", "x/32"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if !p.Contains(MustParse("2001:db8:1234::1")) {
		t.Error("should contain inside address")
	}
	if p.Contains(MustParse("2001:db9::1")) {
		t.Error("should not contain outside address")
	}
	all := MustParsePrefix("::/0")
	if !all.Contains(MustParse("ffff::")) {
		t.Error("/0 contains everything")
	}
	host := PrefixFrom(MustParse("2001:db8::1"), 128)
	if !host.Contains(MustParse("2001:db8::1")) || host.Contains(MustParse("2001:db8::2")) {
		t.Error("/128 containment wrong")
	}
}

func TestPrefixContainsPrefixAndOverlaps(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8:1::/48")
	c := MustParsePrefix("2001:db9::/48")
	if !a.ContainsPrefix(b) || b.ContainsPrefix(a) {
		t.Error("ContainsPrefix wrong")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) || a.Overlaps(c) {
		t.Error("Overlaps wrong")
	}
}

func TestPrefixLast(t *testing.T) {
	p := MustParsePrefix("2001:db8::/126")
	if got := p.Last(); got != MustParse("2001:db8::3") {
		t.Fatalf("Last = %v", got)
	}
	if got := MustParsePrefix("::/0").Last(); got != AddrFrom64s(^uint64(0), ^uint64(0)) {
		t.Fatalf("Last(/0) = %v", got)
	}
	host := PrefixFrom(MustParse("::5"), 128)
	if host.Last() != MustParse("::5") {
		t.Fatal("Last(/128) should be itself")
	}
}

func TestRandomWithinStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range []string{"::/0", "2001:db8::/32", "2001:db8::/64", "2001:db8::/96", "2001:db8::1/128"} {
		p := MustParsePrefix(s)
		for i := 0; i < 100; i++ {
			a := p.RandomWithin(rng)
			if !p.Contains(a) {
				t.Fatalf("RandomWithin(%s) produced %v outside prefix", s, a)
			}
		}
	}
}

func TestOverlayProperty(t *testing.T) {
	f := func(phi, plo, hhi, hlo uint64, bits uint8) bool {
		b := int(bits) % 129
		p := PrefixFrom(AddrFrom64s(phi, plo), b)
		a := p.Overlay(AddrFrom64s(hhi, hlo))
		return p.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParentChild(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	l, r := p.Child(0), p.Child(1)
	if l.Bits() != 33 || r.Bits() != 33 {
		t.Fatal("child bits wrong")
	}
	if l == r {
		t.Fatal("children identical")
	}
	if l.Parent() != p || r.Parent() != p {
		t.Fatal("Parent(Child) != self")
	}
	if !p.ContainsPrefix(l) || !p.ContainsPrefix(r) {
		t.Fatal("children not contained")
	}
	if MustParsePrefix("::/0").Parent() != MustParsePrefix("::/0") {
		t.Fatal("Parent of /0 should be /0")
	}
}

func TestNumAddrsCapped(t *testing.T) {
	if got := MustParsePrefix("2001:db8::/120").NumAddrsCapped(); got != 256 {
		t.Fatalf("/120 = %d", got)
	}
	if got := MustParsePrefix("2001:db8::/64").NumAddrsCapped(); got != 1<<63-1 {
		t.Fatalf("/64 should saturate, got %d", got)
	}
	if got := PrefixFrom(Addr{}, 128).NumAddrsCapped(); got != 1 {
		t.Fatalf("/128 = %d", got)
	}
}

func TestChildPartitionProperty(t *testing.T) {
	// Every address in p is in exactly one of p.Child(0), p.Child(1).
	f := func(phi, plo, ahi, alo uint64, bits uint8) bool {
		b := int(bits) % 128 // < 128 so Child is legal
		p := PrefixFrom(AddrFrom64s(phi, plo), b)
		a := p.Overlay(AddrFrom64s(ahi, alo))
		in0 := p.Child(0).Contains(a)
		in1 := p.Child(1).Contains(a)
		return in0 != in1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
