package ipaddr_test

import (
	"fmt"

	"seedscan/internal/ipaddr"
)

func ExampleParse() {
	a, err := ipaddr.Parse("2001:db8::1")
	if err != nil {
		panic(err)
	}
	fmt.Println(a)
	fmt.Println(a.FullHex())
	// Output:
	// 2001:db8::1
	// 20010db8000000000000000000000001
}

func ExampleAddr_Nybble() {
	a := ipaddr.MustParse("2001:db8::ff")
	fmt.Println(a.Nybble(0), a.Nybble(3), a.Nybble(31))
	// Output: 2 1 15
}

func ExamplePrefix_Contains() {
	p := ipaddr.MustParsePrefix("2001:db8::/32")
	fmt.Println(p.Contains(ipaddr.MustParse("2001:db8:1234::1")))
	fmt.Println(p.Contains(ipaddr.MustParse("2600::1")))
	// Output:
	// true
	// false
}

func ExampleTrie_Lookup() {
	t := ipaddr.NewTrie()
	t.Insert(ipaddr.MustParsePrefix("2001:db8::/32"), "lab")
	t.Insert(ipaddr.MustParsePrefix("2001:db8:1::/48"), "lab-subnet")

	v, _ := t.Lookup(ipaddr.MustParse("2001:db8:1::9"))
	fmt.Println(v) // longest match wins
	v, _ = t.Lookup(ipaddr.MustParse("2001:db8:2::9"))
	fmt.Println(v)
	// Output:
	// lab-subnet
	// lab
}

func ExampleSet() {
	s := ipaddr.NewSet()
	s.Add(ipaddr.MustParse("::1"))
	s.Add(ipaddr.MustParse("::2"))
	s.Add(ipaddr.MustParse("::1")) // duplicate
	fmt.Println(s.Len())
	// Output: 2
}
