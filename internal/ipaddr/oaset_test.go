package ipaddr

import (
	"math/rand"
	"testing"
)

func TestOASetAddContains(t *testing.T) {
	s := NewOASet(4)
	a := MustParse("2001:db8::1")
	b := MustParse("2001:db8::2")
	if !s.Add(a) {
		t.Fatal("first Add reported duplicate")
	}
	if s.Add(a) {
		t.Fatal("second Add reported new")
	}
	if !s.Contains(a) || s.Contains(b) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	// The zero address is a valid member (index+1 slots, 0 = empty).
	var zero Addr
	if s.Contains(zero) {
		t.Fatal("zero address reported present")
	}
	if !s.Add(zero) || !s.Contains(zero) {
		t.Fatal("zero address not storable")
	}
}

func TestOASetGrowMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewOASet(0) // force growth from the minimum table
	ref := make(map[Addr]bool)
	base := MustParse("2001:db8::")
	for i := 0; i < 20000; i++ {
		a := base.AddLo(uint64(rng.Intn(8000)))
		if got, want := s.Add(a), !ref[a]; got != want {
			t.Fatalf("Add(%v) = %v, want %v", a, got, want)
		}
		ref[a] = true
	}
	if s.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", s.Len(), len(ref))
	}
	for a := range ref {
		if !s.Contains(a) {
			t.Fatalf("lost %v after growth", a)
		}
	}
	// Insertion order is preserved across growth: Slice is duplicate-free
	// and complete.
	seen := make(map[Addr]bool)
	for _, a := range s.Slice() {
		if seen[a] {
			t.Fatalf("duplicate %v in Slice", a)
		}
		seen[a] = true
	}
	if len(seen) != len(ref) {
		t.Fatalf("Slice has %d unique, want %d", len(seen), len(ref))
	}
}

func TestOASetFrom(t *testing.T) {
	addrs := []Addr{MustParse("::1"), MustParse("::2"), MustParse("::1")}
	s := NewOASetFrom(addrs)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestDigestOrderAndContentSensitivity(t *testing.T) {
	a := []Addr{MustParse("::1"), MustParse("::2"), MustParse("::3")}
	b := []Addr{MustParse("::2"), MustParse("::1"), MustParse("::3")}
	c := []Addr{MustParse("::1"), MustParse("::2")}
	if Digest(a) != Digest(a) {
		t.Fatal("digest not deterministic")
	}
	if Digest(a) == Digest(b) {
		t.Fatal("digest ignores order")
	}
	if Digest(a) == Digest(c) {
		t.Fatal("digest ignores length")
	}
	if Digest(nil) != Digest([]Addr{}) {
		t.Fatal("empty digests differ")
	}
}
