package ipaddr

import "sort"

// Set is an unordered collection of unique addresses. The zero value is not
// usable for writes; construct with NewSet or NewSetCap. Read methods
// (Contains, Len, Each, Slice, Sorted) are nil-receiver safe and treat a
// nil set as empty, so snapshot consumers can read partially-populated
// records without guarding every access.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns an empty set, optionally pre-populated with addrs.
func NewSet(addrs ...Addr) *Set {
	s := &Set{m: make(map[Addr]struct{}, len(addrs))}
	for _, a := range addrs {
		s.m[a] = struct{}{}
	}
	return s
}

// NewSetCap returns an empty set with capacity hint n.
func NewSetCap(n int) *Set { return &Set{m: make(map[Addr]struct{}, n)} }

// Add inserts a, reporting whether it was newly added.
func (s *Set) Add(a Addr) bool {
	if _, ok := s.m[a]; ok {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// AddAll inserts every address in addrs.
func (s *Set) AddAll(addrs []Addr) {
	for _, a := range addrs {
		s.m[a] = struct{}{}
	}
}

// AddSet inserts every address in o (a nil o adds nothing).
func (s *Set) AddSet(o *Set) {
	if o == nil {
		return
	}
	for a := range o.m {
		s.m[a] = struct{}{}
	}
}

// Remove deletes a if present.
func (s *Set) Remove(a Addr) { delete(s.m, a) }

// Contains reports membership (false for a nil set).
func (s *Set) Contains(a Addr) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[a]
	return ok
}

// Len returns the number of addresses (0 for a nil set).
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Each calls fn for every address in unspecified order.
func (s *Set) Each(fn func(Addr)) {
	if s == nil {
		return
	}
	for a := range s.m {
		fn(a)
	}
}

// Slice returns the addresses in unspecified order.
func (s *Set) Slice() []Addr {
	if s == nil {
		return nil
	}
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	return out
}

// Sorted returns the addresses in ascending numeric order.
func (s *Set) Sorted() []Addr {
	out := s.Slice()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := NewSetCap(len(s.m))
	for a := range s.m {
		c.m[a] = struct{}{}
	}
	return c
}

// Intersect returns a new set containing addresses present in both s and o.
func (s *Set) Intersect(o *Set) *Set {
	small, big := s, o
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewSetCap(small.Len())
	for a := range small.m {
		if big.Contains(a) {
			out.m[a] = struct{}{}
		}
	}
	return out
}

// Union returns a new set containing addresses present in either set.
func (s *Set) Union(o *Set) *Set {
	out := NewSetCap(s.Len() + o.Len())
	out.AddSet(s)
	out.AddSet(o)
	return out
}

// Diff returns a new set with the addresses of s that are not in o.
func (s *Set) Diff(o *Set) *Set {
	out := NewSetCap(s.Len())
	for a := range s.m {
		if !o.Contains(a) {
			out.m[a] = struct{}{}
		}
	}
	return out
}

// Filter returns a new set with the addresses of s for which keep returns
// true.
func (s *Set) Filter(keep func(Addr) bool) *Set {
	out := NewSetCap(s.Len())
	for a := range s.m {
		if keep(a) {
			out.m[a] = struct{}{}
		}
	}
	return out
}

// Dedup returns the unique addresses of addrs, preserving first-seen order.
func Dedup(addrs []Addr) []Addr {
	// Flat open addressing instead of a Go map: the scanner dedups every
	// target list on its hot path, and hashing 16-byte keys through the
	// runtime map dominates for large lists. Slots hold index+1 into out
	// (0 = empty), so the table is a single int32 allocation.
	size := 1
	for size < 2*len(addrs) {
		size <<= 1
	}
	mask := uint64(size - 1)
	table := make([]int32, size)
	out := make([]Addr, 0, len(addrs))
	for _, a := range addrs {
		h := dedupHash(a) & mask
		for {
			idx := table[h]
			if idx == 0 {
				table[h] = int32(len(out) + 1)
				out = append(out, a)
				break
			}
			if out[idx-1] == a {
				break
			}
			h = (h + 1) & mask
		}
	}
	return out
}

// dedupHash folds an address to a table slot with two rounds of multiply-
// xor-shift mixing — enough to spread the structured low bits real target
// lists have (sequential hosts in one /64).
func dedupHash(a Addr) uint64 {
	h := a.hi*0x9e3779b97f4a7c15 ^ a.lo*0xbf58476d1ce4e5b9
	h = (h ^ h>>29) * 0x94d049bb133111eb
	return h ^ h>>32
}
