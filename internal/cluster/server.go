package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// ServeConfig parameterizes a worker-side protocol server — the process
// behind `seedscan worker`.
type ServeConfig struct {
	// WorkerID names this worker in handshakes and telemetry.
	WorkerID string
	// NewScanner builds the scanner for one job. It is called once per
	// job frame, so the worker replicates whatever secret/retries/rate
	// the coordinator announces.
	NewScanner func(Job) (*scanner.Scanner, error)
	// Telemetry counts served shards (nil: off).
	Telemetry *telemetry.Registry
	// Logf reports per-connection errors (nil: silent).
	Logf func(format string, args ...any)
}

// Serve accepts coordinator connections on ln until ctx is cancelled,
// handling each connection on its own goroutine. It always returns a
// non-nil reason; after cancellation that reason is ctx.Err().
func Serve(ctx context.Context, ln net.Listener, cfg ServeConfig) error {
	if cfg.NewScanner == nil {
		return errors.New("cluster: ServeConfig.NewScanner is required")
	}
	if cfg.WorkerID == "" {
		cfg.WorkerID = "worker"
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		go func() {
			if err := serveConn(ctx, conn, cfg); err != nil && cfg.Logf != nil {
				cfg.Logf("cluster worker: connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn speaks the worker side of one coordinator connection.
func serveConn(ctx context.Context, conn net.Conn, cfg ServeConfig) error {
	defer conn.Close()
	fr := newFramer(conn)

	typ, payload, err := fr.read()
	if err != nil {
		return err
	}
	if typ != msgHello {
		return fmt.Errorf("first frame is type %d, want hello", typ)
	}
	if _, err := decodeHello(payload); err != nil {
		return err
	}
	if err := fr.write(msgHello, encodeHello(cfg.WorkerID)); err != nil {
		return err
	}

	var worker *LocalWorker
	var job Job
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		typ, payload, err := fr.read()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		switch typ {
		case msgJob:
			if job, err = decodeJob(payload); err != nil {
				return err
			}
			s, err := cfg.NewScanner(job)
			if err != nil {
				if werr := fr.write(msgError, encodeError(err)); werr != nil {
					return werr
				}
				continue
			}
			worker = NewLocalWorker(cfg.WorkerID, s)
		case msgShard:
			if worker == nil {
				if err := fr.write(msgError, encodeError(errors.New("shard before job"))); err != nil {
					return err
				}
				continue
			}
			if err := serveShard(ctx, fr, worker, job, payload, cfg.Telemetry); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected frame type %d", typ)
		}
	}
}

// serveShard scans one shard, streaming heartbeats while the scan runs.
func serveShard(ctx context.Context, fr *framer, worker *LocalWorker, job Job, payload []byte, reg *telemetry.Registry) error {
	sh, err := decodeShard(payload)
	if err != nil {
		return err
	}
	reg.Counter("cluster.serve.shards").Inc()

	// The heartbeat goroutine is the only concurrent writer; the framer's
	// write mutex orders its beats against the final result frame.
	var progress atomic.Int64
	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	every := job.HeartbeatEvery
	if every <= 0 {
		every = time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if fr.write(msgBeat, encodeBeat(sh.ID, int(progress.Load()))) != nil {
					return
				}
			}
		}
	}()

	res, err := worker.RunShard(ctx, job, sh, func(done int) { progress.Store(int64(done)) })
	hbStop()
	<-hbDone
	if err != nil {
		reg.Counter("cluster.serve.shard_errors").Inc()
		return fr.write(msgError, encodeError(err))
	}
	reg.Counter("cluster.serve.packets_sent").Add(res.Stats.PacketsSent.Load())
	return fr.write(msgResult, encodeResult(res))
}
