package cluster

import (
	"context"
	"strconv"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
)

// Pool binds a Coordinator to a fixed worker set and exposes the
// scanner-shaped prober surface (Scan / ScanContext / ScanActive), so
// anything that probes through a *scanner.Scanner — the TGA driver, the
// dealiasers, experiment.Env — can fan out across a cluster unchanged.
type Pool struct {
	coord   *Coordinator
	workers []Worker
	stats   *scanner.Stats
}

// NewPool binds cfg's coordinator to workers.
func NewPool(cfg Config, workers ...Worker) *Pool {
	return &Pool{coord: NewCoordinator(cfg), workers: workers, stats: &scanner.Stats{}}
}

// NewLocalPool builds an n-worker in-process pool whose worker scanners
// all replicate the coordinator's reference configuration over link:
// merged cluster scans are byte-identical to one such scanner scanning
// alone. cfg.Chain middlewares are composed onto link once and shared by
// every worker, exactly as a single scanner shares its chain across its
// own probe workers — middlewares are concurrency-safe, so sharding
// changes nothing about what a tap or fault injector observes in
// aggregate. Extra scanner options (telemetry, rate, retries...) apply to
// every worker; options that diverge from cfg's Secret/Retries/RatePPS
// break the identity, so cfg is applied after opts.
func NewLocalPool(n int, link wire.Link, cfg Config, opts ...scanner.Option) *Pool {
	if n < 1 {
		n = 1
	}
	cfg.fillDefaults(n)
	link = wire.Chain(link, cfg.Chain...)
	workers := make([]Worker, n)
	for i := range workers {
		s := scanner.New(link, append(append([]scanner.Option(nil), opts...),
			scanner.WithSecret(cfg.Secret),
			scanner.WithRetries(cfg.Retries),
			scanner.WithRatePPS(cfg.RatePPS))...)
		workers[i] = NewLocalWorker(workerName(i), s)
	}
	return NewPool(cfg, workers...)
}

// workerName labels in-process workers w0, w1, ...
func workerName(i int) string { return "w" + strconv.Itoa(i) }

// Workers returns the pool's worker set (for direct Coordinator runs).
func (p *Pool) Workers() []Worker { return p.workers }

// Run executes one coordinated scan and returns the full merged result.
func (p *Pool) Run(ctx context.Context, targets []ipaddr.Addr, pr proto.Protocol) (*RunResult, error) {
	res, err := p.coord.Run(ctx, p.workers, targets, pr)
	if err != nil {
		return nil, err
	}
	p.stats.Add(res.Stats)
	return res, nil
}

// ScanContext implements the cancellable prober surface.
func (p *Pool) ScanContext(ctx context.Context, targets []ipaddr.Addr, pr proto.Protocol) ([]scanner.Result, error) {
	res, err := p.Run(ctx, targets, pr)
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// Scan implements the tga.Prober surface.
func (p *Pool) Scan(targets []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	res, _ := p.ScanContext(context.Background(), targets, pr)
	return res
}

// ScanActive implements the alias.Prober surface.
func (p *Pool) ScanActive(targets []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr {
	out, _ := p.ScanActiveContext(context.Background(), targets, pr)
	return out
}

// ScanActiveContext completes the scanner.ContextProber surface, so a
// pool drops in anywhere a cancellable scanner does (e.g. the
// longitudinal daemon).
func (p *Pool) ScanActiveContext(ctx context.Context, targets []ipaddr.Addr, pr proto.Protocol) ([]ipaddr.Addr, error) {
	res, err := p.ScanContext(ctx, targets, pr)
	if err != nil {
		return nil, err
	}
	var out []ipaddr.Addr
	for _, r := range res {
		if r.Active() {
			out = append(out, r.Addr)
		}
	}
	return out, nil
}

// Stats returns the pool's cumulative merged counters across every run —
// the cluster analogue of Scanner.Stats.
func (p *Pool) Stats() *scanner.Stats {
	snap := &scanner.Stats{}
	snap.Add(p.stats)
	return snap
}

// Telemetry returns the coordinator's registry (nil when none).
func (p *Pool) Telemetry() *telemetry.Registry { return p.coord.cfg.Telemetry }
