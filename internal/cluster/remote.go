package cluster

import (
	"context"
	"fmt"
	"net"
	"time"
)

// RemoteWorker drives one `seedscan worker` process over the wire
// protocol. It implements Worker: each RunShard ships the shard's targets,
// relays the worker's heartbeats into the coordinator's lease clock, and
// decodes the result frame.
//
// The connection is re-established lazily after any failure, so a worker
// process that restarts keeps serving later shards — the coordinator's
// lease machinery covers the gap in between.
type RemoteWorker struct {
	addr        string
	id          string
	dialTimeout time.Duration

	// Connection state, guarded by the coordinator's one-lease-per-worker
	// discipline: RunShard is never called concurrently on one worker.
	conn    net.Conn
	fr      *framer
	jobSent bool
	lastJob Job
}

// DialWorker connects to a worker process and performs the handshake,
// learning the worker's self-declared ID. The address doubles as an ID
// prefix so two workers announcing the same name stay distinguishable.
func DialWorker(addr string) (*RemoteWorker, error) {
	w := &RemoteWorker{addr: addr, dialTimeout: 10 * time.Second}
	if err := w.connect(); err != nil {
		return nil, err
	}
	return w, nil
}

// ID implements Worker.
func (w *RemoteWorker) ID() string { return w.id }

// Addr returns the worker's dial address.
func (w *RemoteWorker) Addr() string { return w.addr }

// Close tears down the connection.
func (w *RemoteWorker) Close() error {
	if w.conn == nil {
		return nil
	}
	err := w.conn.Close()
	w.conn = nil
	w.fr = nil
	w.jobSent = false
	return err
}

// connect dials and handshakes.
func (w *RemoteWorker) connect() error {
	conn, err := net.DialTimeout("tcp", w.addr, w.dialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: dial worker %s: %w", w.addr, err)
	}
	fr := newFramer(conn)
	if err := fr.write(msgHello, encodeHello("")); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Now().Add(w.dialTimeout))
	typ, payload, err := fr.read()
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: handshake with %s: %w", w.addr, err)
	}
	conn.SetReadDeadline(time.Time{})
	if typ != msgHello {
		conn.Close()
		return fmt.Errorf("cluster: handshake with %s: frame type %d, want hello", w.addr, typ)
	}
	name, err := decodeHello(payload)
	if err != nil {
		conn.Close()
		return err
	}
	w.conn = conn
	w.fr = fr
	w.jobSent = false
	if w.id == "" {
		w.id = name + "@" + w.addr
	}
	return nil
}

// RunShard implements Worker over the wire.
func (w *RemoteWorker) RunShard(ctx context.Context, job Job, shard Shard, beat func(done int)) (res *ShardResult, err error) {
	if w.conn == nil {
		if err := w.connect(); err != nil {
			return nil, err
		}
	}
	// Any protocol error poisons the half-duplex conversation: drop the
	// connection so the next lease starts clean.
	defer func() {
		if err != nil {
			w.Close()
		}
	}()

	// A cancelled lease pokes the blocked read via the deadline. The
	// watcher holds its own reference to the conn so the deferred Close
	// above can never nil it out from under the poke.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func(conn net.Conn) {
		select {
		case <-ctx.Done():
			conn.SetReadDeadline(time.Now())
		case <-watchDone:
		}
	}(w.conn)

	if !w.jobSent || job != w.lastJob {
		if err := w.fr.write(msgJob, encodeJob(job)); err != nil {
			return nil, err
		}
		w.jobSent = true
		w.lastJob = job
	}
	if err := w.fr.write(msgShard, encodeShard(shard)); err != nil {
		return nil, err
	}

	// The worker beats every job.HeartbeatEvery; three missed beats in a
	// row means the far side is gone regardless of the lease clock.
	patience := 3 * job.HeartbeatEvery
	if patience <= 0 {
		patience = 30 * time.Second
	}
	for {
		w.conn.SetReadDeadline(time.Now().Add(patience))
		typ, payload, err := w.fr.read()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		switch typ {
		case msgBeat:
			_, done, err := decodeBeat(payload)
			if err != nil {
				return nil, err
			}
			beat(done)
		case msgResult:
			w.conn.SetReadDeadline(time.Time{})
			return decodeResult(payload, job.Proto)
		case msgError:
			return nil, decodeError(payload)
		default:
			return nil, fmt.Errorf("cluster: unexpected frame type %d from worker", typ)
		}
	}
}
