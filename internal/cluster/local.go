package cluster

import (
	"context"
	"sync"
	"time"

	"seedscan/internal/scanner"
)

// localBatch is how many shard targets a LocalWorker scans between
// heartbeats. Small enough that lease revocation and kill-switch tests
// land promptly, large enough that the scanner's batched hot path stays
// amortized.
const localBatch = 512

// LocalWorker runs shards on an in-process scanner — the worker flavour
// deterministic tests and cmd/experiments fan-out use. The scanner must
// replicate the coordinator's reference configuration (same secret, link,
// retries, rate) for byte-identical merges; NewLocalPool guarantees that.
//
// A LocalWorker models one probing host: it owns one scanner and executes
// one shard at a time (the mutex), which is also what makes its
// snapshot-delta stats exact.
type LocalWorker struct {
	id    string
	s     *scanner.Scanner
	batch int

	mu sync.Mutex

	// failHook, when set, is consulted between heartbeat batches; a
	// non-nil error simulates the worker crashing mid-shard. Tests only.
	failHook func(done int) error
}

// NewLocalWorker wraps s as a cluster worker.
func NewLocalWorker(id string, s *scanner.Scanner) *LocalWorker {
	return &LocalWorker{id: id, s: s, batch: localBatch}
}

// ID implements Worker.
func (w *LocalWorker) ID() string { return w.id }

// RunShard implements Worker: it scans the shard in heartbeat-sized
// batches and returns the shard's results with its exact stats delta.
func (w *LocalWorker) RunShard(ctx context.Context, job Job, shard Shard, beat func(done int)) (*ShardResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := time.Now()
	before := w.s.Stats()
	results := make([]scanner.Result, 0, len(shard.Targets))
	for off := 0; off < len(shard.Targets); off += w.batch {
		if w.failHook != nil {
			if err := w.failHook(len(results)); err != nil {
				return nil, err
			}
		}
		end := off + w.batch
		if end > len(shard.Targets) {
			end = len(shard.Targets)
		}
		rs, err := w.s.ScanContext(ctx, shard.Targets[off:end], job.Proto)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
		beat(len(results))
	}
	delta := w.s.Stats()
	delta.Sub(before)
	return &ShardResult{
		Shard:       shard.ID,
		Results:     results,
		Stats:       delta,
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}
