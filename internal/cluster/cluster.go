// Package cluster distributes one scan across many workers while keeping
// the outcome indistinguishable from a single-scanner run.
//
// A Coordinator hash-partitions the scan's canonical target order (the
// deduplicated, secret-shuffled order scanner.PlanOrder computes) into
// shards, leases shards to workers, and merges the per-shard results and
// stats back into one scanner.Result slice and one Stats snapshot that are
// byte-identical to probing everything through one scanner. Identity holds
// because per-target classification is a pure function of (target, secret,
// world replies): neither which worker probes an address nor in what order
// changes its outcome, so shard membership and scheduling are free
// variables the coordinator exploits for parallelism and fault tolerance.
//
// Workers come in two flavours behind the same Worker interface:
// LocalWorker runs a scanner in-process (deterministic tests,
// cmd/experiments fan-out), and RemoteWorker speaks a length-prefixed
// binary protocol over TCP to a `seedscan worker` process (see wire.go).
//
// Robustness is part of the contract, not an afterthought: every lease has
// a deadline refreshed by heartbeats; a crashed or hung worker's shard is
// reassigned and the run still converges to the identical merged result;
// the number of leased shards is bounded for backpressure; and the
// coordinator reports per-worker telemetry (shards leased / completed /
// reassigned, in-flight gauge, per-worker pps) through internal/telemetry.
package cluster

import (
	"context"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
)

// Job carries the scan parameters every shard of one run shares. Remote
// workers build their scanner from it; the coordinator derives it from its
// Config so worker scanners replicate the reference single scanner (same
// secret, retries, and rate — the world's replies depend on cookie-derived
// fields, so a mismatched secret would change outcomes).
type Job struct {
	Proto   proto.Protocol
	Secret  uint64
	Retries int
	RatePPS int
	// HeartbeatEvery is how often a worker must beat while holding a
	// lease; the coordinator sets it well below the lease timeout.
	HeartbeatEvery time.Duration
}

// Shard is one leased unit of work: a subset of the canonical target list.
type Shard struct {
	ID      int
	Targets []ipaddr.Addr
}

// ShardResult is a completed shard: one scanner result per shard target
// (in whatever order the worker probed them — the coordinator re-keys by
// address) plus the stats delta this shard alone contributed.
type ShardResult struct {
	Shard   int
	Results []scanner.Result
	// Stats is the shard's own counter contribution (snapshot delta on
	// the worker's scanner).
	Stats *scanner.Stats
	// WallSeconds is the worker-side wall-clock cost of the shard, the
	// denominator of the per-worker pps gauge.
	WallSeconds float64
}

// Worker executes shard scans for a coordinator. Implementations must call
// beat (with the number of targets finished so far) at least once per
// Job.HeartbeatEvery while making progress, or the coordinator will expire
// the lease and reassign the shard. RunShard must honour ctx cancellation:
// once the lease is revoked the coordinator has stopped waiting.
type Worker interface {
	ID() string
	RunShard(ctx context.Context, job Job, shard Shard, beat func(done int)) (*ShardResult, error)
}

// Partition hash-partitions targets into shards of roughly shardSize
// addresses. The shard an address lands in is a pure function of the
// address and the shard count — independent of the order targets arrive
// in — so any two runs over the same target set produce the same shards.
func Partition(targets []ipaddr.Addr, shardSize int) []Shard {
	if shardSize < 1 {
		shardSize = 1
	}
	n := (len(targets) + shardSize - 1) / shardSize
	if n == 0 {
		return nil
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i].ID = i
		shards[i].Targets = make([]ipaddr.Addr, 0, shardSize+shardSize/4)
	}
	for _, a := range targets {
		i := int(mix64(a.Hi(), a.Lo()) % uint64(n))
		shards[i].Targets = append(shards[i].Targets, a)
	}
	return shards
}

// mix64 folds 64-bit values through the splitmix finalizer (the package's
// local copy, same construction the scanner and world use).
func mix64(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		v += 0x9e3779b97f4a7c15
		v = (v ^ v>>30) * 0xbf58476d1ce4e5b9
		v = (v ^ v>>27) * 0x94d049bb133111eb
		h ^= v ^ v>>31
		h *= 0x9e3779b97f4a7c15
	}
	return h
}
