package cluster

import (
	"context"
	"fmt"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
)

// Config parameterizes a Coordinator. Zero values get defaults from
// fillDefaults; Secret/Retries/RatePPS must mirror the reference single
// scanner for byte-identical results (the zero values mirror the
// scanner's own defaults).
type Config struct {
	// Secret keys validation cookies and the canonical shuffle.
	Secret uint64
	// NoShuffle disables the canonical-order shuffle (tests).
	NoShuffle bool
	// Retries / RatePPS are shipped to workers in the Job so remote
	// scanners replicate the coordinator's reference configuration
	// (defaults 2 and 10000, the scanner's own defaults).
	Retries int
	RatePPS int
	// ShardSize is the target count per shard (default 2048).
	ShardSize int
	// MaxInflight bounds how many shards may be leased at once — the
	// backpressure knob. Default: one per worker.
	MaxInflight int
	// LeaseTimeout expires a lease whose worker has neither completed
	// nor heartbeat within it (default 30s).
	LeaseTimeout time.Duration
	// MaxShardAttempts fails the run when one shard keeps dying
	// (default 5 lease attempts).
	MaxShardAttempts int
	// WorkerFailureLimit retires a worker after this many consecutive
	// failed or expired leases (default 3); a completed shard resets it.
	WorkerFailureLimit int
	// Chain holds wire middlewares composed onto the link of every
	// worker NewLocalPool builds (outermost first, as wire.Chain). The
	// one shared chain instance sees the pool's aggregate traffic, so
	// taps and fault injectors behave identically under sharding.
	// Remote workers ignore it — their chains are configured where
	// their scanners are built (see ServeConfig.NewScanner).
	Chain []wire.Middleware
	// Telemetry receives the cluster.* metrics (nil: telemetry off).
	Telemetry *telemetry.Registry
	// Logf reports lease failures, expiries, and worker retirement —
	// events the merged result hides when recovery succeeds (nil: silent).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults(workers int) {
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RatePPS == 0 {
		c.RatePPS = 10000
	}
	if c.ShardSize == 0 {
		c.ShardSize = 2048
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = workers
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 30 * time.Second
	}
	if c.MaxShardAttempts == 0 {
		c.MaxShardAttempts = 5
	}
	if c.WorkerFailureLimit == 0 {
		c.WorkerFailureLimit = 3
	}
}

// Coordinator shards scans across a worker pool. It is stateless between
// Run calls; one Coordinator may serve many concurrent Runs.
type Coordinator struct {
	cfg Config
}

// NewCoordinator returns a coordinator with the given configuration.
func NewCoordinator(cfg Config) *Coordinator { return &Coordinator{cfg: cfg} }

// WorkerReport is one worker's contribution to a run.
type WorkerReport struct {
	ShardsCompleted int
	PacketsSent     int64
	WallSeconds     float64
}

// PPS is the worker's average probing rate over its completed shards.
func (r WorkerReport) PPS() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.PacketsSent) / r.WallSeconds
}

// RunResult is a merged cluster scan: Results in the canonical order (and
// with the exact contents) of the equivalent single-scanner run, Stats the
// sum of every completed shard's contribution.
type RunResult struct {
	Results    []scanner.Result
	Stats      *scanner.Stats
	Shards     int
	Reassigned int
	Workers    map[string]WorkerReport
}

// lease is one shard assignment. beatNs is touched by the worker's
// heartbeat callback and read by the coordinator's expiry sweep, hence the
// channel-free clock through the runner goroutine.
type lease struct {
	shard  int
	worker int
	cancel context.CancelFunc
	beat   chan struct{} // non-blocking heartbeat notifications
}

// doneEvent is a runner goroutine's terminal report.
type doneEvent struct {
	le  *lease
	res *ShardResult
	err error
}

// Run scans targets on p across workers and merges the shards. The merged
// Results and Stats are byte-identical to one scanner (configured with the
// coordinator's Secret/Retries/RatePPS over the same link) scanning
// targets directly, provided every worker's scanner replicates that
// reference configuration — LocalWorker pools built by NewLocalPool and
// `seedscan worker` processes both do.
func (c *Coordinator) Run(ctx context.Context, workers []Worker, targets []ipaddr.Addr, p proto.Protocol) (*RunResult, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	cfg := c.cfg
	cfg.fillDefaults(len(workers))
	reg := cfg.Telemetry

	canonical := scanner.PlanOrder(cfg.Secret, !cfg.NoShuffle, targets, p)
	shards := Partition(canonical, cfg.ShardSize)
	job := Job{
		Proto:          p,
		Secret:         cfg.Secret,
		Retries:        cfg.Retries,
		RatePPS:        cfg.RatePPS,
		HeartbeatEvery: cfg.LeaseTimeout / 4,
	}

	run := &runState{
		cfg:     cfg,
		workers: workers,
		job:     job,
		shards:  shards,
		leases:  make(map[int]*lease),
		results: make(map[int]*ShardResult, len(shards)),
		busy:    make([]bool, len(workers)),
		dead:    make([]bool, len(workers)),
		fails:   make([]int, len(workers)),
		// Buffered so a runner goroutine can always deliver its terminal
		// event even after Run has returned (stale workers never block).
		events:  make(chan doneEvent, len(workers)),
		reports: make(map[string]*WorkerReport, len(workers)),
		reg:     reg,
	}
	for i := len(shards) - 1; i >= 0; i-- {
		run.pending = append(run.pending, i)
	}
	run.attempts = make([]int, len(shards))

	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()

	if err := run.loop(rctx); err != nil {
		return nil, err
	}
	return run.merge(canonical)
}

// runState is the mutable state of one Run, owned by the event loop
// goroutine; runner goroutines communicate only through events and the
// per-lease heartbeat channel.
type runState struct {
	cfg     Config
	workers []Worker
	job     Job
	shards  []Shard

	pending  []int // shard ids awaiting a lease (LIFO)
	attempts []int
	leases   map[int]*lease
	results  map[int]*ShardResult
	busy     []bool // worker has a runner goroutine outstanding
	dead     []bool
	fails    []int

	events     chan doneEvent
	reassigned int
	reports    map[string]*WorkerReport
	reg        *telemetry.Registry
}

// loop drives leases until every shard has a result or the run fails.
func (r *runState) loop(ctx context.Context) error {
	// lastBeat lives here, keyed by lease, so the expiry sweep and the
	// heartbeat drain both run on the loop goroutine — no locking.
	lastBeat := make(map[*lease]time.Time)

	sweep := r.cfg.LeaseTimeout / 4
	if sweep < time.Millisecond {
		sweep = time.Millisecond
	}
	ticker := time.NewTicker(sweep)
	defer ticker.Stop()

	for len(r.results) < len(r.shards) {
		if err := r.assign(ctx, lastBeat); err != nil {
			return err
		}
		if len(r.leases) == 0 && !r.anyBusy() {
			// Nothing running, nothing assignable: every worker is retired
			// while shards remain.
			return fmt.Errorf("cluster: %d shards unfinished and no live workers remain",
				len(r.shards)-len(r.results))
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-r.events:
			r.handleDone(ev, lastBeat)
		case <-ticker.C:
			r.expire(lastBeat)
		}
		r.drainBeats(lastBeat)
	}
	return nil
}

// assign leases pending shards to idle live workers, bounded by
// MaxInflight.
func (r *runState) assign(ctx context.Context, lastBeat map[*lease]time.Time) error {
	for len(r.pending) > 0 && len(r.leases) < r.cfg.MaxInflight {
		wi := r.idleWorker()
		if wi < 0 {
			return nil
		}
		sid := r.pending[len(r.pending)-1]
		if r.attempts[sid] >= r.cfg.MaxShardAttempts {
			return fmt.Errorf("cluster: shard %d failed %d lease attempts", sid, r.attempts[sid])
		}
		r.pending = r.pending[:len(r.pending)-1]
		r.attempts[sid]++

		lctx, cancel := context.WithCancel(ctx)
		le := &lease{shard: sid, worker: wi, cancel: cancel, beat: make(chan struct{}, 1)}
		r.leases[sid] = le
		lastBeat[le] = time.Now()
		r.busy[wi] = true
		r.gaugeInflight()
		r.reg.Counter("cluster.shards.leased").Inc()
		r.reg.Counter("cluster.worker." + r.workers[wi].ID() + ".shards_leased").Inc()

		go func(w Worker, le *lease, sh Shard, job Job) {
			beat := func(int) {
				select {
				case le.beat <- struct{}{}:
				default:
				}
			}
			res, err := w.RunShard(lctx, job, sh, beat)
			r.events <- doneEvent{le: le, res: res, err: err}
		}(r.workers[wi], le, r.shards[sid], r.job)
	}
	return nil
}

// idleWorker returns a live worker without an outstanding runner, or -1.
func (r *runState) idleWorker() int {
	for i := range r.workers {
		if !r.busy[i] && !r.dead[i] {
			return i
		}
	}
	return -1
}

func (r *runState) anyBusy() bool {
	for _, b := range r.busy {
		if b {
			return true
		}
	}
	return false
}

// drainBeats moves queued heartbeats into lastBeat.
func (r *runState) drainBeats(lastBeat map[*lease]time.Time) {
	for _, le := range r.leases {
		select {
		case <-le.beat:
			lastBeat[le] = time.Now()
		default:
		}
	}
}

// expire revokes leases whose workers have gone quiet past the timeout and
// requeues their shards.
func (r *runState) expire(lastBeat map[*lease]time.Time) {
	now := time.Now()
	for sid, le := range r.leases {
		// A queued-but-undrained beat counts: drain first.
		select {
		case <-le.beat:
			lastBeat[le] = now
		default:
		}
		if now.Sub(lastBeat[le]) <= r.cfg.LeaseTimeout {
			continue
		}
		le.cancel()
		delete(r.leases, sid)
		delete(lastBeat, le)
		r.pending = append(r.pending, sid)
		r.reassigned++
		r.gaugeInflight()
		r.reg.Counter("cluster.shards.reassigned").Inc()
		r.logf("cluster: lease on shard %d expired after %v of silence from worker %s",
			sid, r.cfg.LeaseTimeout, r.workers[le.worker].ID())
		r.workerFailed(le.worker)
		// busy[worker] stays set until its runner goroutine reports: a hung
		// worker must not be leased another shard.
	}
}

// handleDone processes one runner goroutine's terminal report.
func (r *runState) handleDone(ev doneEvent, lastBeat map[*lease]time.Time) {
	wi := ev.le.worker
	r.busy[wi] = false
	current := r.leases[ev.le.shard] == ev.le
	if current {
		delete(r.leases, ev.le.shard)
		delete(lastBeat, ev.le)
		ev.le.cancel()
		r.gaugeInflight()
	}

	switch {
	case ev.err == nil && r.results[ev.le.shard] == nil:
		// First completion wins — whether the lease is still current or
		// was expired and the straggler finished late, the bytes are the
		// same, so accept it and drop any competing reassigned lease. The
		// dropped runner reports back through handleDone as a stale event
		// and is not charged a failure.
		if other, ok := r.leases[ev.le.shard]; ok && !current {
			other.cancel()
			delete(r.leases, ev.le.shard)
			delete(lastBeat, other)
			r.gaugeInflight()
		}
		r.removePending(ev.le.shard)
		r.record(wi, ev.res)
	case ev.err == nil:
		// Duplicate completion of an already-recorded shard: discard.
	case current && r.results[ev.le.shard] == nil:
		// Failure while holding the lease: requeue and charge the worker.
		r.pending = append(r.pending, ev.le.shard)
		r.reassigned++
		r.reg.Counter("cluster.shards.reassigned").Inc()
		r.logf("cluster: shard %d failed on worker %s: %v",
			ev.le.shard, r.workers[wi].ID(), ev.err)
		r.workerFailed(wi)
	default:
		// Failure on an expired or superseded lease — the shard has
		// already been requeued (or completed elsewhere); nothing to do.
	}
}

// workerFailed charges one failure and retires the worker at the limit.
func (r *runState) workerFailed(wi int) {
	r.fails[wi]++
	r.reg.Counter("cluster.worker." + r.workers[wi].ID() + ".failures").Inc()
	if r.fails[wi] >= r.cfg.WorkerFailureLimit && !r.dead[wi] {
		r.dead[wi] = true
		r.logf("cluster: retiring worker %s after %d consecutive failures",
			r.workers[wi].ID(), r.fails[wi])
	}
}

// logf reports through the configured sink, if any.
func (r *runState) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// record stores a completed shard and updates per-worker accounting.
func (r *runState) record(wi int, res *ShardResult) {
	r.results[res.Shard] = res
	r.fails[wi] = 0
	id := r.workers[wi].ID()
	rep := r.reports[id]
	if rep == nil {
		rep = &WorkerReport{}
		r.reports[id] = rep
	}
	rep.ShardsCompleted++
	rep.WallSeconds += res.WallSeconds
	sent := int64(0)
	if res.Stats != nil {
		sent = res.Stats.PacketsSent.Load()
	}
	rep.PacketsSent += sent
	r.reg.Counter("cluster.shards.completed").Inc()
	r.reg.Counter("cluster.worker." + id + ".shards_completed").Inc()
	r.reg.Counter("cluster.worker." + id + ".packets_sent").Add(sent)
	r.reg.Gauge("cluster.worker." + id + ".pps").Set(rep.PPS())
}

// removePending deletes sid from the pending queue if present.
func (r *runState) removePending(sid int) {
	for i, s := range r.pending {
		if s == sid {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return
		}
	}
}

func (r *runState) gaugeInflight() {
	r.reg.Gauge("cluster.shards.inflight").Set(float64(len(r.leases)))
}

// merge re-keys every shard result by address and emits the canonical
// order, summing shard stats into one snapshot.
func (r *runState) merge(canonical []ipaddr.Addr) (*RunResult, error) {
	merged := &scanner.Stats{}
	byAddr := make(map[ipaddr.Addr]scanner.Result, len(canonical))
	for _, sr := range r.results {
		merged.Add(sr.Stats)
		for _, res := range sr.Results {
			byAddr[res.Addr] = res
		}
	}
	out := make([]scanner.Result, len(canonical))
	for i, a := range canonical {
		res, ok := byAddr[a]
		if !ok {
			return nil, fmt.Errorf("cluster: merged shards missing result for %v", a)
		}
		out[i] = res
	}
	reports := make(map[string]WorkerReport, len(r.reports))
	for id, rep := range r.reports {
		reports[id] = *rep
	}
	return &RunResult{
		Results:    out,
		Stats:      merged,
		Shards:     len(r.shards),
		Reassigned: r.reassigned,
		Workers:    reports,
	}, nil
}
