package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/world"
)

const testSecret = 0x5eed

// testTargets mixes responsive hosts, lossy regions, and unrouted space so
// every result status and the retry machinery are exercised.
func testTargets(t testing.TB, w *world.World) []ipaddr.Addr {
	t.Helper()
	samp := w.NewSampler(77)
	targets := samp.ActiveHosts(600, proto.ICMP)
	base := ipaddr.MustParse("2001:db8:dead::")
	for i := 0; i < 400; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	// Duplicates: the canonical plan must dedup exactly like a scanner.
	return append(targets, targets[:100]...)
}

func clusterWorld(t testing.TB) *world.World {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 80, LossRate: 0.05})
	w.SetEpoch(world.ScanEpoch)
	return w
}

// baseline runs the reference single scanner the cluster must match.
func baseline(w *world.World, targets []ipaddr.Addr, p proto.Protocol) ([]scanner.Result, [7]int64) {
	s := scanner.New(w.Link(), scanner.WithSecret(testSecret))
	res := s.Scan(targets, p)
	return res, s.Stats().Values()
}

func assertIdentical(t *testing.T, p proto.Protocol, got *RunResult, wantRes []scanner.Result, wantStats [7]int64) {
	t.Helper()
	if len(got.Results) != len(wantRes) {
		t.Fatalf("%v: cluster returned %d results, single scanner %d", p, len(got.Results), len(wantRes))
	}
	for i := range wantRes {
		if got.Results[i] != wantRes[i] {
			t.Fatalf("%v: result %d diverges: cluster %+v, single %+v", p, i, got.Results[i], wantRes[i])
		}
	}
	if gotStats := got.Stats.Values(); gotStats != wantStats {
		t.Fatalf("%v: cluster stats %v != single-scanner stats %v", p, gotStats, wantStats)
	}
}

// TestClusterMatchesSingleScanner is the core identity property: a
// 3-worker cluster merge is byte-identical — results, order, attempts,
// stats — to one scanner scanning everything.
func TestClusterMatchesSingleScanner(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	for _, p := range proto.All {
		wantRes, wantStats := baseline(w, targets, p)
		pool := NewLocalPool(3, w.Link(), Config{Secret: testSecret, ShardSize: 128})
		got, err := pool.Run(context.Background(), targets, p)
		if err != nil {
			t.Fatalf("%v: cluster run: %v", p, err)
		}
		if got.Shards < 5 {
			t.Fatalf("%v: expected a real shard fan-out, got %d shards", p, got.Shards)
		}
		assertIdentical(t, p, got, wantRes, wantStats)
	}
}

// TestKillWorkerMidShard kills one of three workers partway through a
// shard and checks the lease is reassigned and the merged outcome is
// still byte-identical to the single-scanner baseline.
func TestKillWorkerMidShard(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	p := proto.TCP443
	wantRes, wantStats := baseline(w, targets, p)

	pool := NewLocalPool(3, w.Link(), Config{
		Secret:             testSecret,
		ShardSize:          128,
		LeaseTimeout:       2 * time.Second,
		WorkerFailureLimit: 2,
	})
	// Worker 1 dies after its first heartbeat batch of every shard it is
	// ever leased, until the coordinator retires it. Its batch is shrunk
	// below the shard size so the crash lands mid-shard, with real probes
	// already sent for the doomed lease.
	var kills atomic.Int64
	crasher := pool.workers[1].(*LocalWorker)
	crasher.batch = 64
	crasher.failHook = func(done int) error {
		if done > 0 {
			kills.Add(1)
			return errors.New("simulated worker crash")
		}
		return nil
	}

	got, err := pool.Run(context.Background(), targets, p)
	if err != nil {
		t.Fatalf("cluster run with crashing worker: %v", err)
	}
	if kills.Load() == 0 {
		t.Fatal("kill hook never fired; test exercised nothing")
	}
	if got.Reassigned == 0 {
		t.Fatal("crashed worker's shards were never reassigned")
	}
	assertIdentical(t, p, got, wantRes, wantStats)
}

// hangWorker hangs on its first lease until the lease is revoked, then
// behaves like a normal local worker — the "hung, not crashed" failure
// mode lease deadlines exist for.
type hangWorker struct {
	inner *LocalWorker
	hung  atomic.Bool
}

func (h *hangWorker) ID() string { return h.inner.ID() }

func (h *hangWorker) RunShard(ctx context.Context, job Job, shard Shard, beat func(int)) (*ShardResult, error) {
	if h.hung.CompareAndSwap(false, true) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return h.inner.RunShard(ctx, job, shard, beat)
}

// TestHungWorkerLeaseExpires checks that a worker that stops heartbeating
// loses its lease, the shard completes elsewhere, and the merge is still
// identical.
func TestHungWorkerLeaseExpires(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	p := proto.ICMP
	wantRes, wantStats := baseline(w, targets, p)

	mk := func(id string) *LocalWorker {
		return NewLocalWorker(id, scanner.New(w.Link(), scanner.WithSecret(testSecret)))
	}
	workers := []Worker{mk("w0"), &hangWorker{inner: mk("w1")}, mk("w2")}
	coord := NewCoordinator(Config{
		Secret:       testSecret,
		ShardSize:    128,
		LeaseTimeout: 150 * time.Millisecond,
	})
	got, err := coord.Run(context.Background(), workers, targets, p)
	if err != nil {
		t.Fatalf("cluster run with hung worker: %v", err)
	}
	if got.Reassigned == 0 {
		t.Fatal("hung worker's lease was never reassigned")
	}
	assertIdentical(t, p, got, wantRes, wantStats)
}

// gateWorker counts concurrent RunShard calls across the pool.
type gateWorker struct {
	inner   *LocalWorker
	cur     *atomic.Int64
	maxSeen *atomic.Int64
}

func (g *gateWorker) ID() string { return g.inner.ID() }

func (g *gateWorker) RunShard(ctx context.Context, job Job, shard Shard, beat func(int)) (*ShardResult, error) {
	n := g.cur.Add(1)
	for {
		m := g.maxSeen.Load()
		if n <= m || g.maxSeen.CompareAndSwap(m, n) {
			break
		}
	}
	defer g.cur.Add(-1)
	time.Sleep(time.Millisecond)
	return g.inner.RunShard(ctx, job, shard, beat)
}

// TestMaxInflightBoundsLeases checks the backpressure bound: with
// MaxInflight 2 and four willing workers, at most two shards are ever
// leased at once.
func TestMaxInflightBoundsLeases(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	var cur, maxSeen atomic.Int64
	workers := make([]Worker, 4)
	for i := range workers {
		workers[i] = &gateWorker{
			inner:   NewLocalWorker(workerName(i), scanner.New(w.Link(), scanner.WithSecret(testSecret))),
			cur:     &cur,
			maxSeen: &maxSeen,
		}
	}
	coord := NewCoordinator(Config{Secret: testSecret, ShardSize: 64, MaxInflight: 2})
	if _, err := coord.Run(context.Background(), workers, targets, proto.ICMP); err != nil {
		t.Fatal(err)
	}
	if m := maxSeen.Load(); m > 2 {
		t.Fatalf("saw %d concurrent leased shards, MaxInflight is 2", m)
	}
}

// TestAllWorkersFailingErrors: when every worker keeps dying the run must
// fail with an error instead of spinning.
func TestAllWorkersFailingErrors(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	pool := NewLocalPool(2, w.Link(), Config{Secret: testSecret, WorkerFailureLimit: 2})
	for _, wk := range pool.workers {
		wk.(*LocalWorker).failHook = func(int) error { return errors.New("dead on arrival") }
	}
	if _, err := pool.Run(context.Background(), targets, proto.ICMP); err == nil {
		t.Fatal("run with all workers failing returned nil error")
	}
}

// TestRunContextCancellation: cancelling the run context aborts promptly.
func TestRunContextCancellation(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := NewLocalPool(2, w.Link(), Config{Secret: testSecret})
	if _, err := pool.Run(ctx, targets, proto.ICMP); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestPartitionIsOrderIndependent: shard membership must depend only on
// the address, never on input order.
func TestPartitionIsOrderIndependent(t *testing.T) {
	targets := testTargets(t, clusterWorld(t))
	targets = ipaddr.Dedup(targets)
	a := Partition(targets, 100)
	rev := make([]ipaddr.Addr, len(targets))
	for i, x := range targets {
		rev[len(targets)-1-i] = x
	}
	b := Partition(rev, 100)
	if len(a) != len(b) {
		t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		as := ipaddr.NewSet(a[i].Targets...)
		bs := ipaddr.NewSet(b[i].Targets...)
		if as.Len() != bs.Len() || as.Diff(bs).Len() != 0 {
			t.Fatalf("shard %d membership differs under input reordering", i)
		}
	}
}

// TestPoolTelemetry: the coordinator must publish the inflight gauge and
// per-worker counters/pps through the registry.
func TestPoolTelemetry(t *testing.T) {
	w := clusterWorld(t)
	reg := telemetry.NewRegistry()
	pool := NewLocalPool(2, w.Link(), Config{Secret: testSecret, ShardSize: 128, Telemetry: reg})
	if _, err := pool.Run(context.Background(), testTargets(t, w), proto.ICMP); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.shards.completed"] == 0 {
		t.Error("cluster.shards.completed never incremented")
	}
	if snap.Counters["cluster.shards.leased"] < snap.Counters["cluster.shards.completed"] {
		t.Error("leased counter below completed counter")
	}
	if _, ok := snap.Gauges["cluster.shards.inflight"]; !ok {
		t.Error("cluster.shards.inflight gauge missing")
	}
	if snap.Counters["cluster.worker.w0.shards_completed"]+snap.Counters["cluster.worker.w1.shards_completed"] == 0 {
		t.Error("per-worker shard counters missing")
	}
	if _, ok := snap.Gauges["cluster.worker.w0.pps"]; !ok {
		t.Error("cluster.worker.w0.pps gauge missing")
	}
}

// TestConcurrentPoolRuns: one pool must serve concurrent scans (the
// experiment grids do exactly this) without races or cross-talk.
func TestConcurrentPoolRuns(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	pool := NewLocalPool(3, w.Link(), Config{Secret: testSecret, ShardSize: 128})
	want := make(map[proto.Protocol][]scanner.Result)
	for _, p := range proto.All {
		want[p], _ = baseline(w, targets, p)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(proto.All))
	for _, p := range proto.All {
		wg.Add(1)
		go func(p proto.Protocol) {
			defer wg.Done()
			res, err := pool.ScanContext(context.Background(), targets, p)
			if err != nil {
				errs <- err
				return
			}
			for i := range res {
				if res[i] != want[p][i] {
					errs <- errors.New(p.String() + ": concurrent run diverged from baseline")
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
