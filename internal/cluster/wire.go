package cluster

// The cluster wire protocol: length-prefixed binary frames over TCP,
// stdlib only. A connection carries exactly one conversation:
//
//	coordinator → worker   hello, then job, then shards (one at a time)
//	worker → coordinator   hello, then per shard: beats, finally a result
//	                       (or an error frame)
//
// Every frame is   | type u8 | length u32 | payload |   (big-endian), and
// the first frame in each direction must be a hello carrying the protocol
// magic and version, so both ends fail fast against strangers and future
// incompatible revisions. Integers are big-endian throughout; addresses
// travel as their 16 raw bytes; stats as the 7 counters of
// scanner.Stats.Values in declaration order.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
)

// wireMagic and wireVersion gate the handshake. Bump the version on any
// incompatible frame-layout change.
var wireMagic = [4]byte{'S', 'S', 'C', 'W'}

const wireVersion = 1

// Frame types.
const (
	msgHello byte = iota + 1
	msgJob
	msgShard
	msgBeat
	msgResult
	msgError
)

// maxFrame bounds a frame payload (64 MiB ≈ 3.7M targets per shard) so a
// corrupt or hostile length prefix cannot drive allocation.
const maxFrame = 64 << 20

// framer reads and writes frames on one connection. Reads are single-
// threaded (the protocol is half-duplex per shard); writes take a mutex
// because a worker's heartbeat goroutine writes concurrently with the
// serve loop.
type framer struct {
	conn net.Conn
	wmu  sync.Mutex
	lenb [5]byte
}

func newFramer(conn net.Conn) *framer { return &framer{conn: conn} }

// write sends one frame.
func (f *framer) write(typ byte, payload []byte) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := f.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.conn.Write(payload)
	return err
}

// read returns the next frame.
func (f *framer) read() (byte, []byte, error) {
	if _, err := io.ReadFull(f.conn, f.lenb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(f.lenb[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f.conn, payload); err != nil {
		return 0, nil, err
	}
	return f.lenb[0], payload, nil
}

// --- hello ---

func encodeHello(workerID string) []byte {
	b := make([]byte, 0, 7+len(workerID))
	b = append(b, wireMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, wireVersion)
	b = append(b, byte(len(workerID)))
	return append(b, workerID...)
}

func decodeHello(b []byte) (workerID string, err error) {
	if len(b) < 7 {
		return "", fmt.Errorf("cluster: short hello (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != wireMagic {
		return "", fmt.Errorf("cluster: bad protocol magic %q", b[:4])
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != wireVersion {
		return "", fmt.Errorf("cluster: protocol version %d, want %d", v, wireVersion)
	}
	n := int(b[6])
	if len(b) < 7+n {
		return "", fmt.Errorf("cluster: truncated hello id")
	}
	return string(b[7 : 7+n]), nil
}

// --- job ---

func encodeJob(j Job) []byte {
	b := make([]byte, 0, 23)
	b = append(b, byte(j.Proto))
	b = binary.BigEndian.AppendUint64(b, j.Secret)
	b = binary.BigEndian.AppendUint16(b, uint16(j.Retries))
	b = binary.BigEndian.AppendUint32(b, uint32(j.RatePPS))
	b = binary.BigEndian.AppendUint32(b, uint32(j.HeartbeatEvery/time.Millisecond))
	return b
}

func decodeJob(b []byte) (Job, error) {
	if len(b) != 19 {
		return Job{}, fmt.Errorf("cluster: job frame is %d bytes, want 19", len(b))
	}
	return Job{
		Proto:          proto.Protocol(b[0]),
		Secret:         binary.BigEndian.Uint64(b[1:9]),
		Retries:        int(binary.BigEndian.Uint16(b[9:11])),
		RatePPS:        int(binary.BigEndian.Uint32(b[11:15])),
		HeartbeatEvery: time.Duration(binary.BigEndian.Uint32(b[15:19])) * time.Millisecond,
	}, nil
}

// --- shard ---

func encodeShard(s Shard) []byte {
	b := make([]byte, 0, 8+16*len(s.Targets))
	b = binary.BigEndian.AppendUint32(b, uint32(s.ID))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Targets)))
	for _, a := range s.Targets {
		a16 := a.As16()
		b = append(b, a16[:]...)
	}
	return b
}

func decodeShard(b []byte) (Shard, error) {
	if len(b) < 8 {
		return Shard{}, fmt.Errorf("cluster: short shard frame")
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	if len(b) != 8+16*n {
		return Shard{}, fmt.Errorf("cluster: shard frame is %d bytes, want %d for %d targets", len(b), 8+16*n, n)
	}
	s := Shard{ID: int(binary.BigEndian.Uint32(b[:4])), Targets: make([]ipaddr.Addr, n)}
	for i := 0; i < n; i++ {
		s.Targets[i] = ipaddr.AddrFrom16([16]byte(b[8+16*i : 24+16*i]))
	}
	return s, nil
}

// --- beat ---

func encodeBeat(shardID, done int) []byte {
	b := make([]byte, 0, 8)
	b = binary.BigEndian.AppendUint32(b, uint32(shardID))
	return binary.BigEndian.AppendUint32(b, uint32(done))
}

func decodeBeat(b []byte) (shardID, done int, err error) {
	if len(b) != 8 {
		return 0, 0, fmt.Errorf("cluster: beat frame is %d bytes, want 8", len(b))
	}
	return int(binary.BigEndian.Uint32(b[:4])), int(binary.BigEndian.Uint32(b[4:8])), nil
}

// --- result ---

// perResult is the wire size of one scanner.Result: 16 address bytes +
// status + attempts. The protocol is carried by the job, not repeated.
const perResult = 18

func encodeResult(r *ShardResult) []byte {
	b := make([]byte, 0, 8+perResult*len(r.Results)+7*8+8)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Shard))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Results)))
	for _, res := range r.Results {
		a16 := res.Addr.As16()
		b = append(b, a16[:]...)
		b = append(b, byte(res.Status), byte(res.Attempts))
	}
	for _, v := range r.Stats.Values() {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	return binary.BigEndian.AppendUint64(b, math.Float64bits(r.WallSeconds))
}

func decodeResult(b []byte, p proto.Protocol) (*ShardResult, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("cluster: short result frame")
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	want := 8 + perResult*n + 7*8 + 8
	if len(b) != want {
		return nil, fmt.Errorf("cluster: result frame is %d bytes, want %d for %d results", len(b), want, n)
	}
	r := &ShardResult{
		Shard:   int(binary.BigEndian.Uint32(b[:4])),
		Results: make([]scanner.Result, n),
	}
	off := 8
	for i := 0; i < n; i++ {
		r.Results[i] = scanner.Result{
			Addr:     ipaddr.AddrFrom16([16]byte(b[off : off+16])),
			Proto:    p,
			Status:   scanner.Status(b[off+16]),
			Attempts: int(b[off+17]),
		}
		off += perResult
	}
	var vals [7]int64
	for i := range vals {
		vals[i] = int64(binary.BigEndian.Uint64(b[off : off+8]))
		off += 8
	}
	r.Stats = scanner.StatsFromValues(vals)
	r.WallSeconds = math.Float64frombits(binary.BigEndian.Uint64(b[off : off+8]))
	return r, nil
}

// --- error ---

func encodeError(err error) []byte { return []byte(err.Error()) }

func decodeError(b []byte) error { return fmt.Errorf("cluster: worker error: %s", b) }
