package cluster

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/world"
)

func TestWireCodecRoundTrips(t *testing.T) {
	job := Job{Proto: proto.UDP53, Secret: 0xdeadbeefcafe, Retries: 2, RatePPS: 10000, HeartbeatEvery: 250 * time.Millisecond}
	got, err := decodeJob(encodeJob(job))
	if err != nil {
		t.Fatal(err)
	}
	if got != job {
		t.Fatalf("job round-trip: %+v != %+v", got, job)
	}

	sh := Shard{ID: 42, Targets: []ipaddr.Addr{
		ipaddr.MustParse("2001:db8::1"),
		ipaddr.MustParse("fe80::dead:beef"),
	}}
	gsh, err := decodeShard(encodeShard(sh))
	if err != nil {
		t.Fatal(err)
	}
	if gsh.ID != sh.ID || len(gsh.Targets) != len(sh.Targets) {
		t.Fatalf("shard round-trip: %+v != %+v", gsh, sh)
	}
	for i := range sh.Targets {
		if gsh.Targets[i] != sh.Targets[i] {
			t.Fatalf("shard target %d: %v != %v", i, gsh.Targets[i], sh.Targets[i])
		}
	}

	stats := scanner.StatsFromValues([7]int64{10, 9, 8, 7, 6, 5, 4})
	res := &ShardResult{
		Shard: 42,
		Results: []scanner.Result{
			{Addr: sh.Targets[0], Proto: proto.UDP53, Status: scanner.StatusActive, Attempts: 1},
			{Addr: sh.Targets[1], Proto: proto.UDP53, Status: scanner.StatusSilent, Attempts: 3},
		},
		Stats:       stats,
		WallSeconds: 1.25,
	}
	gres, err := decodeResult(encodeResult(res), proto.UDP53)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Shard != res.Shard || gres.WallSeconds != res.WallSeconds {
		t.Fatalf("result round-trip header: %+v", gres)
	}
	for i := range res.Results {
		if gres.Results[i] != res.Results[i] {
			t.Fatalf("result %d: %+v != %+v", i, gres.Results[i], res.Results[i])
		}
	}
	if gres.Stats.Values() != stats.Values() {
		t.Fatalf("stats round-trip: %v != %v", gres.Stats.Values(), stats.Values())
	}

	id, err := decodeHello(encodeHello("probe-host-7"))
	if err != nil || id != "probe-host-7" {
		t.Fatalf("hello round-trip: %q, %v", id, err)
	}
}

func TestWireRejectsVersionMismatch(t *testing.T) {
	b := encodeHello("x")
	binary.BigEndian.PutUint16(b[4:6], wireVersion+1)
	if _, err := decodeHello(b); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	b = encodeHello("x")
	copy(b[:4], "NOPE")
	if _, err := decodeHello(b); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

// startWorker serves the wire protocol on a loopback listener backed by
// the shared test world, exactly as `seedscan worker` does.
func startWorker(t *testing.T, ctx context.Context, w *world.World, id string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServeConfig{
		WorkerID: id,
		NewScanner: func(job Job) (*scanner.Scanner, error) {
			return scanner.New(w.Link(),
				scanner.WithSecret(job.Secret),
				scanner.WithRetries(job.Retries),
				scanner.WithRatePPS(job.RatePPS)), nil
		},
	}
	go Serve(ctx, ln, cfg)
	return ln.Addr().String()
}

// TestTCPClusterMatchesSingleScanner runs the full wire protocol over
// loopback TCP: two worker servers, remote workers, coordinator — and the
// merge must still be byte-identical to the single-scanner baseline.
func TestTCPClusterMatchesSingleScanner(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	p := proto.TCP80
	wantRes, wantStats := baseline(w, targets, p)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers []Worker
	for i := 0; i < 2; i++ {
		addr := startWorker(t, ctx, w, "tw"+string(rune('0'+i)))
		rw, err := DialWorker(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer rw.Close()
		workers = append(workers, rw)
	}

	coord := NewCoordinator(Config{Secret: testSecret, ShardSize: 200})
	got, err := coord.Run(ctx, workers, targets, p)
	if err != nil {
		t.Fatalf("TCP cluster run: %v", err)
	}
	assertIdentical(t, p, got, wantRes, wantStats)

	// Worker IDs surface with their dial address for distinguishability.
	for id := range got.Workers {
		if !strings.Contains(id, "@127.0.0.1:") {
			t.Errorf("worker id %q lacks address suffix", id)
		}
	}
}

// TestTCPWorkerCrashRecovers kills one worker's listener process
// mid-run; the coordinator must finish identically on the survivor.
func TestTCPWorkerCrashRecovers(t *testing.T) {
	w := clusterWorld(t)
	targets := testTargets(t, w)
	p := proto.ICMP
	wantRes, wantStats := baseline(w, targets, p)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The doomed worker gets its own server context we can kill.
	dctx, die := context.WithCancel(ctx)
	doomedAddr := startWorker(t, dctx, w, "doomed")
	survivorAddr := startWorker(t, ctx, w, "survivor")

	doomed, err := DialWorker(doomedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()
	survivor, err := DialWorker(survivorAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	// Kill the doomed worker's server once the run is underway.
	go func() {
		time.Sleep(20 * time.Millisecond)
		die()
	}()

	coord := NewCoordinator(Config{
		Secret:             testSecret,
		ShardSize:          64,
		LeaseTimeout:       time.Second,
		WorkerFailureLimit: 2,
	})
	got, err := coord.Run(ctx, []Worker{doomed, survivor}, targets, p)
	if err != nil {
		t.Fatalf("TCP cluster run with crashed worker: %v", err)
	}
	assertIdentical(t, p, got, wantRes, wantStats)
}
