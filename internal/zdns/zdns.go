// Package zdns simulates the paper's domain-resolution stage: billions of
// domain names fed through ZDNS for AAAA lookups (Table 8's pipeline). A
// synthetic Zone maps generated domain names to world addresses with the
// response-rate characteristics the paper reports (toplists resolve far
// better than CT-log dumps), and a Resolver performs concurrent lookups
// with the counters Table 8 tabulates: domains tried, AAAA responses,
// unique addresses.
package zdns

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"seedscan/internal/ipaddr"
	"seedscan/internal/world"
)

// Zone is a synthetic DNS zone: domain names with (possibly empty) AAAA
// record sets. Lookups are deterministic functions of the zone seed.
type Zone struct {
	w    *world.World
	seed uint64
	// aaaaRate is the probability a name has any AAAA records.
	aaaaRate float64
	// hostPool backs the record targets.
	hostPool []ipaddr.Addr
	aliased  []ipaddr.Addr
	// aliasShare is the probability a resolving name points into an
	// aliased slab (wildcard CDN records).
	aliasShare float64
}

// ZoneConfig shapes a synthetic zone.
type ZoneConfig struct {
	// Seed keys name→record determinism.
	Seed uint64
	// AAAARate is the share of names with AAAA records (Table 8: ~4.7%
	// for CT-log domains, ~23-28% for toplists).
	AAAARate float64
	// AliasShare is the share of resolving names pointing into aliased
	// slabs (default 0.4, the wildcard-CDN effect).
	AliasShare float64
	// PoolSize bounds the host population backing the zone (default 4000).
	PoolSize int
}

// NewZone builds a zone over the world's domain-visible hosts.
func NewZone(w *world.World, cfg ZoneConfig) (*Zone, error) {
	if cfg.AAAARate <= 0 || cfg.AAAARate > 1 {
		return nil, fmt.Errorf("zdns: AAAARate %v out of range", cfg.AAAARate)
	}
	if cfg.AliasShare == 0 {
		cfg.AliasShare = 0.4
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4000
	}
	samp := w.NewSampler(mix(cfg.Seed, 0xd15), world.ClassWebServer, world.ClassCDNNode, world.ClassDNSServer)
	pool := samp.Hosts(cfg.PoolSize)
	if len(pool) == 0 {
		return nil, fmt.Errorf("zdns: world has no domain-visible hosts")
	}
	aliasSamp := w.NewSampler(mix(cfg.Seed, 0xd16))
	return &Zone{
		w: w, seed: cfg.Seed, aaaaRate: cfg.AAAARate,
		hostPool: pool, aliased: aliasSamp.Aliased(cfg.PoolSize / 2),
		aliasShare: cfg.AliasShare,
	}, nil
}

// Lookup returns the AAAA records for name (nil when it has none).
func (z *Zone) Lookup(name string) []ipaddr.Addr {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	h := mix(z.seed, hashString(name))
	if unit(h) >= z.aaaaRate {
		return nil
	}
	// 1-3 records.
	n := 1 + int(mix(h, 1)%3)
	out := make([]ipaddr.Addr, 0, n)
	for i := 0; i < n; i++ {
		hi := mix(h, uint64(i)+2)
		if len(z.aliased) > 0 && unit(mix(hi, 3)) < z.aliasShare {
			out = append(out, z.aliased[hi%uint64(len(z.aliased))])
		} else {
			out = append(out, z.hostPool[hi%uint64(len(z.hostPool))])
		}
	}
	return out
}

// GenerateNames produces n synthetic domain names (deterministic per
// seed), in the shape of the paper's inputs.
func GenerateNames(seed uint64, n int) []string {
	rng := rand.New(rand.NewSource(int64(seed)))
	labels := []string{"www", "mail", "api", "cdn", "shop", "blog", "app", "static", "img", "dev"}
	tlds := []string{"com", "net", "org", "io", "de", "jp", "br", "nl"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s.site%06d.%s",
			labels[rng.Intn(len(labels))], rng.Intn(n*4), tlds[rng.Intn(len(tlds))])
	}
	return out
}

// Stats tallies a resolution campaign, mirroring Table 8's columns.
type Stats struct {
	Domains   int
	AAAAs     int // names that returned at least one record
	Records   int
	UniqueIPs int
}

// Resolver performs concurrent AAAA lookups against a zone.
type Resolver struct {
	Zone    *Zone
	Workers int // default 8
}

// ResolveAll looks up every name and returns the unique addresses plus
// campaign statistics.
func (r *Resolver) ResolveAll(names []string) (*ipaddr.Set, Stats) {
	workers := r.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(names) {
		workers = len(names)
	}
	var (
		mu    sync.Mutex
		stats = Stats{Domains: len(names)}
		out   = ipaddr.NewSet()
		next  int
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(names) {
					mu.Unlock()
					return
				}
				name := names[next]
				next++
				mu.Unlock()
				records := r.Zone.Lookup(name)
				if len(records) == 0 {
					continue
				}
				mu.Lock()
				stats.AAAAs++
				stats.Records += len(records)
				out.AddAll(records)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.UniqueIPs = out.Len()
	return out, stats
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		v += 0x9e3779b97f4a7c15
		v = (v ^ v>>30) * 0xbf58476d1ce4e5b9
		v = (v ^ v>>27) * 0x94d049bb133111eb
		h ^= v ^ v>>31
		h *= 0x100000001b3
	}
	return h
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }
