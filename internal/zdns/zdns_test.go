package zdns

import (
	"testing"

	"seedscan/internal/world"
)

func testZone(t testing.TB, rate float64) *Zone {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	z, err := NewZone(w, ZoneConfig{Seed: 9, AAAARate: rate})
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestZoneConfigValidation(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 30})
	for _, rate := range []float64{0, -0.5, 1.5} {
		if _, err := NewZone(w, ZoneConfig{AAAARate: rate}); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestLookupDeterministicAndNormalized(t *testing.T) {
	z := testZone(t, 0.5)
	a := z.Lookup("WWW.Example.COM.")
	b := z.Lookup("www.example.com")
	if len(a) != len(b) {
		t.Fatal("case/trailing-dot normalization failed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lookup not deterministic")
		}
	}
}

func TestAAAARateRealized(t *testing.T) {
	z := testZone(t, 0.25)
	names := GenerateNames(3, 4000)
	hit := 0
	for _, n := range names {
		if len(z.Lookup(n)) > 0 {
			hit++
		}
	}
	frac := float64(hit) / float64(len(names))
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("AAAA rate = %.3f, want ~0.25", frac)
	}
}

func TestRecordsPointAtDomainVisibleSpace(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	z, err := NewZone(w, ZoneConfig{Seed: 9, AAAARate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	aliased, clean := 0, 0
	for _, n := range GenerateNames(4, 2000) {
		for _, a := range z.Lookup(n) {
			r, ok := w.RegionOf(a)
			if !ok {
				t.Fatalf("record %v unrouted", a)
			}
			if r.Aliased {
				aliased++
			} else {
				clean++
				if !w.ExistsAt(a, world.CollectEpoch) {
					t.Fatalf("clean record %v does not exist", a)
				}
			}
		}
	}
	if aliased == 0 {
		t.Fatal("no wildcard-CDN (aliased) records")
	}
	if clean == 0 {
		t.Fatal("no clean records")
	}
}

func TestResolveAllStats(t *testing.T) {
	z := testZone(t, 0.3)
	names := GenerateNames(5, 3000)
	set, stats := (&Resolver{Zone: z, Workers: 4}).ResolveAll(names)
	if stats.Domains != len(names) {
		t.Fatalf("domains = %d", stats.Domains)
	}
	if stats.AAAAs == 0 || stats.Records < stats.AAAAs {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
	if set.Len() != stats.UniqueIPs || set.Len() == 0 {
		t.Fatalf("unique = %d vs %d", set.Len(), stats.UniqueIPs)
	}
	// Table 8's shape: unique IPs < records (shared hosting collapses).
	if stats.UniqueIPs > stats.Records {
		t.Fatal("more unique IPs than records")
	}
}

func TestResolveAllDeterministic(t *testing.T) {
	z := testZone(t, 0.3)
	names := GenerateNames(6, 1500)
	s1, st1 := (&Resolver{Zone: z, Workers: 7}).ResolveAll(names)
	s2, st2 := (&Resolver{Zone: z, Workers: 2}).ResolveAll(names)
	if st1 != st2 {
		t.Fatalf("stats differ across worker counts: %+v vs %+v", st1, st2)
	}
	if s1.Diff(s2).Len() != 0 {
		t.Fatal("result sets differ")
	}
}

func TestGenerateNames(t *testing.T) {
	a := GenerateNames(1, 100)
	b := GenerateNames(1, 100)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("name generation not deterministic")
		}
	}
	c := GenerateNames(2, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds give identical names")
	}
}
