package wire

import (
	"errors"
	"sync"
	"sync/atomic"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/telemetry"
)

// SourceRotator rewrites each outgoing probe's source address across a
// fixed pool — modelling a scanner that originates from many addresses of
// its own prefix, a standard operational setup for large measurement
// campaigns. The vantage for a probe is a deterministic function of
// (seed, destination), so every retry to the same target leaves from the
// same pool address and runs reproduce exactly.
//
// Replies are NAT-ed back: the rotator rewrites each reply's destination
// (in place, inside the reply arena) to the scanner's original source, so
// validation and classification behave as if the rotation never happened —
// a rotated chain's scan results are byte-identical to an unrotated one.
// Checksums are recomputed on both rewrites; see probe.RewriteSrc.
//
// Telemetry: wire.rotator.rewrites.
type SourceRotator struct {
	pool []ipaddr.Addr
	seed uint64

	scratch  sync.Pool // *rotatorScratch
	rewrites atomic.Int64

	cRewrites *telemetry.Counter
}

// rotatorScratch is the per-exchange buffer set: rewritten probe copies in
// one arena plus each probe's original source for the reply NAT.
type rotatorScratch struct {
	arena []byte
	ends  []int
	out   [][]byte
	orig  []ipaddr.Addr
}

// NewSourceRotator rotates sources across pool, keyed by seed. The pool
// must not be empty.
func NewSourceRotator(seed uint64, pool ...ipaddr.Addr) (*SourceRotator, error) {
	if len(pool) == 0 {
		return nil, errors.New("wire: source rotator needs a non-empty pool")
	}
	return &SourceRotator{pool: append([]ipaddr.Addr(nil), pool...), seed: seed}, nil
}

// SetTelemetry mirrors the rotator's counters into reg under wire.rotator.*.
func (r *SourceRotator) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.cRewrites = reg.Counter("wire.rotator.rewrites")
}

// Rewrites returns how many probes have had their source rotated.
func (r *SourceRotator) Rewrites() int64 { return r.rewrites.Load() }

// pick selects the pool vantage for a probe to dst.
func (r *SourceRotator) pick(dst ipaddr.Addr) ipaddr.Addr {
	return r.pool[wiremix(r.seed, dst.Hi(), dst.Lo())%uint64(len(r.pool))]
}

// Wrap implements Middleware.
func (r *SourceRotator) Wrap(next Link) Link {
	return LinkFunc(func(pkts [][]byte, rb *probe.ReplyBuf) {
		st, _ := r.scratch.Get().(*rotatorScratch)
		if st == nil {
			st = &rotatorScratch{}
		}
		// Copy every probe into the scratch arena (the caller's buffers
		// must stay untouched), then rewrite each copy's source. Build
		// first, slice after: the arena may move while growing.
		st.arena = st.arena[:0]
		st.ends = st.ends[:0]
		st.orig = st.orig[:0]
		for _, pkt := range pkts {
			st.arena = append(st.arena, pkt...)
			st.ends = append(st.ends, len(st.arena))
		}
		st.out = st.out[:0]
		prev := 0
		for _, end := range st.ends {
			cp := st.arena[prev:end]
			prev = end
			st.out = append(st.out, cp)
			var orig, dst ipaddr.Addr
			if len(cp) >= probe.IPv6HeaderLen {
				var sb, db [16]byte
				copy(sb[:], cp[8:24])
				copy(db[:], cp[24:40])
				orig, dst = ipaddr.AddrFrom16(sb), ipaddr.AddrFrom16(db)
				if err := probe.RewriteSrc(cp, r.pick(dst)); err == nil {
					r.rewrites.Add(1)
					r.cRewrites.Inc()
				}
			}
			st.orig = append(st.orig, orig)
		}

		next.ExchangeBatchInto(st.out, rb)

		// NAT the replies back: whatever answered the rotated source is
		// rewritten to target the scanner's original source so cookie
		// validation sees the packet it expects.
		for i := range st.out {
			if reply := rb.Reply(i); reply != nil && !st.orig[i].IsZero() {
				_ = probe.RewriteDst(reply, st.orig[i])
			}
		}
		r.scratch.Put(st)
	})
}
