// Package wire_test pins the wire layer's behavioral contracts end to
// end: an empty chain is byte-identical to the bare link, middlewares are
// transparent or deterministically faulty exactly as documented, and the
// same chain composes unchanged under a local scanner, a sharded
// in-process cluster, and TCP workers.
package wire_test

import (
	"context"
	"net"
	"reflect"
	"sync"
	"testing"

	"seedscan/internal/cluster"
	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
	"seedscan/internal/world"
)

const testSecret = 0xfeed5eed

func testWorld(t testing.TB) (*world.World, []ipaddr.Addr) {
	t.Helper()
	w := world.New(world.Config{Seed: 21, NumASes: 40, LossRate: 0})
	samp := w.NewSampler(11)
	targets := samp.Hosts(1500)
	if len(targets) < 1000 {
		t.Fatalf("only %d targets", len(targets))
	}
	// Salt in unrouted addresses so silent/retry paths are exercised too.
	base := ipaddr.MustParse("2001:db8:dead::")
	for i := 0; i < 200; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	w.SetEpoch(world.ScanEpoch)
	return w, targets
}

// scanThrough runs one scan through link and returns results + stats.
func scanThrough(link wire.Link, targets []ipaddr.Addr, p proto.Protocol) ([]scanner.Result, [7]int64) {
	s := scanner.New(link, scanner.WithSecret(testSecret))
	res := s.Scan(targets, p)
	return res, s.Stats().Values()
}

// TestEmptyChainIsBareLink pins the zero-overhead guarantee twice over:
// Chain with no middlewares returns the base link itself, and a scan
// through it is result- and counter-identical to the unchained link.
func TestEmptyChainIsBareLink(t *testing.T) {
	w, targets := testWorld(t)
	base := w.Link()
	if got := wire.Chain(base); got != wire.Link(base) {
		t.Fatal("empty Chain did not return the base link itself")
	}
	for _, p := range proto.All {
		bare, bareStats := scanThrough(w.Link(), targets, p)
		chained, chainStats := scanThrough(wire.Chain(w.Link()), targets, p)
		if !reflect.DeepEqual(bare, chained) {
			t.Fatalf("%s: empty chain changed scan results", p)
		}
		if bareStats != chainStats {
			t.Fatalf("%s: empty chain changed stats: %v vs %v", p, bareStats, chainStats)
		}
	}
}

// legacyPacketWorld exposes the world through the deprecated
// single-packet link shape.
type legacyPacketWorld struct{ w *world.World }

func (l legacyPacketWorld) Exchange(pkt []byte) [][]byte { return l.w.HandlePacket(pkt) }

// legacyBatchWorld adds the deprecated slice-batched shape on top.
type legacyBatchWorld struct{ legacyPacketWorld }

func (l legacyBatchWorld) ExchangeBatch(pkts [][]byte) [][][]byte {
	out := make([][][]byte, len(pkts))
	for i, pkt := range pkts {
		out[i] = l.w.HandlePacket(pkt)
	}
	return out
}

// TestPromoteEquivalence pins that both legacy link generations, lifted
// with Promote, scan identically to the canonical arena link.
func TestPromoteEquivalence(t *testing.T) {
	w, targets := testWorld(t)
	want, wantStats := scanThrough(w.Link(), targets, proto.ICMP)
	for name, link := range map[string]wire.Link{
		"packet": wire.Promote(legacyPacketWorld{w}),
		"batch":  wire.Promote(legacyBatchWorld{legacyPacketWorld{w}}),
	} {
		got, gotStats := scanThrough(link, targets, proto.ICMP)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: promoted link diverges from arena link", name)
		}
		if wantStats != gotStats {
			t.Fatalf("%s: stats diverge: %v vs %v", name, wantStats, gotStats)
		}
	}
}

// TestTapTransparencyAndCounts runs a tapped scan concurrently from
// several goroutines (meaningful under -race): results must be unchanged
// and the tap's totals must equal the scanners' own packet counters.
func TestTapTransparencyAndCounts(t *testing.T) {
	w, targets := testWorld(t)
	want, _ := scanThrough(w.Link(), targets, proto.ICMP)

	var mu sync.Mutex
	perPkt, perReply := 0, 0
	tap := wire.NewTap(func(pkt, reply []byte) {
		mu.Lock()
		perPkt++
		if reply != nil {
			perReply++
		}
		mu.Unlock()
		if len(pkt) < probe.IPv6HeaderLen {
			t.Error("tap saw a runt probe")
		}
	})
	reg := telemetry.NewRegistry()
	tap.SetTelemetry(reg)
	link := wire.Chain(w.Link(), tap)

	const goroutines = 8
	var wg sync.WaitGroup
	var sent, recv int64
	var smu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, stats := scanThrough(link, targets, proto.ICMP)
			if !reflect.DeepEqual(want, res) {
				t.Error("tapped scan diverges from bare scan")
			}
			smu.Lock()
			sent += stats[0]
			recv += stats[1]
			smu.Unlock()
		}()
	}
	wg.Wait()

	if tap.Probes() != sent {
		t.Fatalf("tap probes = %d, scanners sent %d", tap.Probes(), sent)
	}
	if tap.Replies() != recv {
		t.Fatalf("tap replies = %d, scanners received %d", tap.Replies(), recv)
	}
	mu.Lock()
	if int64(perPkt) != sent {
		t.Fatalf("tap fn fired %d times, want one per probe (%d)", perPkt, sent)
	}
	if int64(perReply) != recv {
		t.Fatalf("tap fn saw %d replies, want %d", perReply, recv)
	}
	mu.Unlock()
	snap := reg.Snapshot()
	if got := snap.Counters["wire.tap.probes"]; got != sent {
		t.Fatalf("wire.tap.probes = %d, want %d", got, sent)
	}
	if got := snap.Counters["wire.tap.replies"]; got != recv {
		t.Fatalf("wire.tap.replies = %d, want %d", got, recv)
	}
}

// TestFaultsDeterministic pins seeded reproducibility: the same seed
// yields bit-identical scan outcomes run after run, a different seed
// yields different ones, and the loss knob actually loses probes.
func TestFaultsDeterministic(t *testing.T) {
	w, targets := testWorld(t)
	run := func(seed uint64) ([]scanner.Result, [7]int64, *wire.Faults) {
		f := wire.NewFaults(wire.FaultsConfig{Seed: seed, Loss: 0.3, Dupe: 0.1, Delay: 0.05})
		res, stats := scanThrough(wire.Chain(w.Link(), f), targets, proto.ICMP)
		return res, stats, f
	}
	resA, statsA, fA := run(1)
	resB, statsB, fB := run(1)
	if !reflect.DeepEqual(resA, resB) || statsA != statsB {
		t.Fatal("same-seed faulted scans diverge")
	}
	if fA.Dropped() != fB.Dropped() || fA.Duplicated() != fB.Duplicated() || fA.Delayed() != fB.Delayed() {
		t.Fatalf("same-seed fault counters diverge: %d/%d/%d vs %d/%d/%d",
			fA.Dropped(), fA.Duplicated(), fA.Delayed(), fB.Dropped(), fB.Duplicated(), fB.Delayed())
	}
	if fA.Dropped() == 0 || fA.Duplicated() == 0 {
		t.Fatalf("faults injected nothing: dropped=%d duplicated=%d", fA.Dropped(), fA.Duplicated())
	}
	resC, _, _ := run(2)
	if reflect.DeepEqual(resA, resC) {
		t.Fatal("different fault seeds produced identical scans")
	}
	// A faulted scan must actually differ from the clean one.
	clean, _ := scanThrough(w.Link(), targets, proto.ICMP)
	if reflect.DeepEqual(clean, resA) {
		t.Fatal("30% loss left the scan untouched")
	}
}

// TestMiddlewareOrder pins Chain's composition order: mws[0] is
// outermost, so a tap outside the fault injector counts every probe the
// scanner sent, while a tap inside it counts only the survivors.
func TestMiddlewareOrder(t *testing.T) {
	w, targets := testWorld(t)
	faults := func() *wire.Faults {
		return wire.NewFaults(wire.FaultsConfig{Seed: 9, Loss: 0.5})
	}

	outer := wire.NewTap(nil)
	_, stats := scanThrough(wire.Chain(w.Link(), outer, faults()), targets, proto.ICMP)
	if outer.Probes() != stats[0] {
		t.Fatalf("outer tap probes = %d, want all %d sent", outer.Probes(), stats[0])
	}

	inner := wire.NewTap(nil)
	f := faults()
	_, stats2 := scanThrough(wire.Chain(w.Link(), f, inner), targets, proto.ICMP)
	want := stats2[0] - f.Dropped() + f.Duplicated()
	if inner.Probes() != want {
		t.Fatalf("inner tap probes = %d, want %d (sent %d - dropped %d + duplicated %d)",
			inner.Probes(), want, stats2[0], f.Dropped(), f.Duplicated())
	}
	if inner.Probes() >= stats2[0] {
		t.Fatalf("inner tap saw %d probes, not fewer than the %d sent", inner.Probes(), stats2[0])
	}
}

// TestSourceRotatorTransparent pins the NAT invariant: rotation is
// invisible to the scanner (identical results), while an inner tap
// observes every forwarded probe leaving from a pool address.
func TestSourceRotatorTransparent(t *testing.T) {
	w, targets := testWorld(t)
	pool := []ipaddr.Addr{
		ipaddr.MustParse("2001:db8:feed::1"),
		ipaddr.MustParse("2001:db8:feed::2"),
		ipaddr.MustParse("2001:db8:feed::3"),
	}
	inPool := map[ipaddr.Addr]bool{}
	for _, a := range pool {
		inPool[a] = true
	}
	rot, err := wire.NewSourceRotator(77, pool...)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ipaddr.Addr]int{}
	var mu sync.Mutex
	inner := wire.NewTap(func(pkt, _ []byte) {
		p, err := probe.Parse(pkt)
		if err != nil {
			t.Errorf("rotated probe unparseable: %v", err)
			return
		}
		if !inPool[p.Header.Src] {
			t.Errorf("probe left from %v, not a pool address", p.Header.Src)
		}
		mu.Lock()
		seen[p.Header.Src]++
		mu.Unlock()
	})

	for _, p := range proto.All {
		want, wantStats := scanThrough(w.Link(), targets, p)
		got, gotStats := scanThrough(wire.Chain(w.Link(), rot, inner), targets, p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: rotation changed scan results", p)
		}
		if wantStats != gotStats {
			t.Fatalf("%s: rotation changed stats", p)
		}
	}
	if len(seen) != len(pool) {
		t.Fatalf("rotation used %d of %d pool addresses", len(seen), len(pool))
	}
	if rot.Rewrites() == 0 {
		t.Fatal("rotator counted no rewrites")
	}
}

// TestShaperAccounting pins the shaper's virtual clock: transparent to
// results, counts every packet, and models elapsed time as n*gap plus
// bounded jitter.
func TestShaperAccounting(t *testing.T) {
	w, targets := testWorld(t)
	const pps = 100_000
	sh := wire.NewShaper(pps, 0.5, 3)
	want, _ := scanThrough(w.Link(), targets, proto.ICMP)
	got, stats := scanThrough(wire.Chain(w.Link(), sh), targets, proto.ICMP)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("shaper changed scan results")
	}
	if sh.Packets() != stats[0] {
		t.Fatalf("shaper packets = %d, scanner sent %d", sh.Packets(), stats[0])
	}
	base := float64(sh.Packets()) / pps
	if el := sh.VirtualElapsed(); el < base || el > base*1.5+1 {
		t.Fatalf("virtual elapsed %.4fs outside [%.4f, %.4f]", el, base, base*1.5+1)
	}
}

// TestLocalClusterSharesChain fans a chained link across a 4-worker
// in-process pool: merged results stay byte-identical to the
// single-scanner scan over the same chain, and the shared tap accounts
// for every packet all workers sent. Run under -race this also hammers
// middleware concurrency-safety.
func TestLocalClusterSharesChain(t *testing.T) {
	w, targets := testWorld(t)
	tap := wire.NewTap(nil)
	want, _ := scanThrough(wire.Chain(w.Link(), tap), targets, proto.ICMP)
	soloProbes := tap.Probes()

	tap2 := wire.NewTap(nil)
	pool := cluster.NewLocalPool(4, w.Link(), cluster.Config{
		Secret:    testSecret,
		ShardSize: 128,
		Chain:     []wire.Middleware{tap2},
	})
	run, err := pool.Run(context.Background(), targets, proto.ICMP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, run.Results) {
		t.Fatal("clustered chained scan diverges from single scanner")
	}
	if tap2.Probes() != run.Stats.PacketsSent.Load() {
		t.Fatalf("cluster tap probes = %d, merged stats sent %d", tap2.Probes(), run.Stats.PacketsSent.Load())
	}
	if tap2.Probes() != soloProbes {
		t.Fatalf("cluster sent %d probes, solo sent %d", tap2.Probes(), soloProbes)
	}
}

// TestTCPWorkerChain serves a chained link over the real TCP wire
// protocol, as `seedscan worker -wire-taps` does: the coordinator's
// merged results match the unchained baseline (taps are transparent) and
// the worker-side tap saw every packet.
func TestTCPWorkerChain(t *testing.T) {
	w, targets := testWorld(t)
	want, wantStats := scanThrough(w.Link(), targets, proto.ICMP)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tap := wire.NewTap(nil)
	link := wire.Chain(w.Link(), tap)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cluster.Serve(ctx, ln, cluster.ServeConfig{
		WorkerID: "tapped",
		NewScanner: func(job cluster.Job) (*scanner.Scanner, error) {
			return scanner.New(link,
				scanner.WithSecret(job.Secret),
				scanner.WithRetries(job.Retries),
				scanner.WithRatePPS(job.RatePPS)), nil
		},
	})
	rw, err := cluster.DialWorker(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	run, err := cluster.NewCoordinator(cluster.Config{Secret: testSecret, ShardSize: 256}).
		Run(ctx, []cluster.Worker{rw}, targets, proto.ICMP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, run.Results) {
		t.Fatal("TCP chained scan diverges from bare baseline")
	}
	if got := run.Stats.Values(); got != wantStats {
		t.Fatalf("TCP chained stats %v, want %v", got, wantStats)
	}
	if tap.Probes() != wantStats[0] {
		t.Fatalf("worker tap probes = %d, want %d", tap.Probes(), wantStats[0])
	}
}
