// Package wire is the canonical packet transport of the stack: every
// subsystem that moves probes — the scanner, the simulated world, cluster
// workers, the longitudinal daemon — exchanges packets through exactly one
// interface, Link, and anything that wants to observe or shape traffic in
// flight composes onto it as a Middleware via Chain.
//
// Link is the arena-batched shape the scanner hot path was already built
// around (the former scanner.ArenaLink): one call exchanges a whole chunk
// of probes and answers into a caller-owned probe.ReplyBuf, so the
// steady-state exchange allocates nothing on either side. The two older
// link generations — per-packet Exchange and allocating ExchangeBatch —
// survive as PacketLink and BatchLink, and Promote lifts either into a
// Link so legacy implementations keep working without the scanner carrying
// a triple type-switch.
//
// Promotion rules: a promoted link preserves classification semantics
// exactly. The canonical contract allows at most one reply per probe;
// when a legacy link returns several, Promote keeps the first — the same
// "first validated reply wins" rule the scanner applies, so results are
// identical (extra replies could only bump receive counters, which no
// implementation in this repository ever produced). Promoted replies are
// copied into the caller's arena, so the legacy link's allocations do not
// leak past the exchange.
//
// Middlewares wrap a Link with a send-side hook (they see — and may
// rewrite, reorder, or drop — every probe before the inner link does) and
// an observe-side hook (they see every reply before the scanner does).
// The package ships four: Tap (record probe/reply pairs untouched — the
// telescope building block), Shaper (virtual-clock rate shaping and
// jitter), SourceRotator (rotate probe sources across an address pool),
// and Faults (deterministic seeded loss / duplication / reply delay).
// All are safe for concurrent use by many scanner workers.
//
// Telemetry: middlewares wired to a registry expose counters under the
// wire.* namespace — wire.tap.probes, wire.tap.replies,
// wire.shaper.packets, wire.rotator.rewrites, wire.faults.dropped,
// wire.faults.duplicated, wire.faults.delayed.
package wire

import (
	"fmt"

	"seedscan/internal/probe"
)

// Link is the canonical wire between a scanner and the Internet (real or
// simulated): one call exchanges a batch of packets, answering each into
// the caller-owned rb. Implementations must rb.Reset(len(pkts)) first,
// then record at most one reply per packet; replies alias rb's arena and
// are consumed before the caller's next exchange into the same buffer.
//
// Implementations must be safe for concurrent use and must not retain
// pkts or its packets past the call — the scanner reuses probe buffers.
type Link interface {
	ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf)
}

// LinkFunc adapts a function to Link.
type LinkFunc func(pkts [][]byte, rb *probe.ReplyBuf)

// ExchangeBatchInto calls f.
func (f LinkFunc) ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf) { f(pkts, rb) }

// PacketLink is the first-generation wire: send one packet, collect
// whatever comes back for it. Promote lifts one into a Link.
type PacketLink interface {
	Exchange(pkt []byte) [][]byte
}

// BatchLink is the second-generation wire: one allocating call per chunk,
// one reply set per packet (replies[i] answers pkts[i]). Promote lifts one
// into a Link.
type BatchLink interface {
	PacketLink
	ExchangeBatch(pkts [][]byte) [][][]byte
}

// ArenaLink is the historical name for links that implement the canonical
// arena-batched exchange alongside the legacy per-packet one. New code
// should implement and accept plain Link.
type ArenaLink interface {
	PacketLink
	Link
}

// Promote lifts any known link generation into the canonical Link. A
// value already implementing Link (however partially historical its other
// methods) is returned as-is; BatchLink and PacketLink implementations get
// an adapter that copies their replies into the caller's arena, keeping
// the first reply per packet (see the package comment for why that is
// semantics-preserving). Promote panics on nil or on a value implementing
// no known generation — both are wiring bugs, not runtime conditions.
func Promote(link any) Link {
	switch l := link.(type) {
	case Link:
		return l
	case BatchLink:
		return batchAdapter{l}
	case PacketLink:
		return packetAdapter{l}
	}
	panic(fmt.Sprintf("wire: %T implements no known link generation", link))
}

// batchAdapter lifts a BatchLink: one ExchangeBatch per exchange, replies
// copied into the arena.
type batchAdapter struct{ l BatchLink }

func (a batchAdapter) ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf) {
	replies := a.l.ExchangeBatch(pkts)
	rb.Reset(len(pkts))
	for i := range pkts {
		if i < len(replies) && len(replies[i]) > 0 {
			rb.PutRaw(i, replies[i][0])
		}
	}
}

// packetAdapter lifts a PacketLink: one Exchange per packet, replies
// copied into the arena.
type packetAdapter struct{ l PacketLink }

func (a packetAdapter) ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf) {
	rb.Reset(len(pkts))
	for i, pkt := range pkts {
		if rs := a.l.Exchange(pkt); len(rs) > 0 {
			rb.PutRaw(i, rs[0])
		}
	}
}
