package wire

import (
	"sync/atomic"

	"seedscan/internal/probe"
	"seedscan/internal/telemetry"
)

// TapFunc observes one probe/reply pair. reply is nil when the probe drew
// no answer. The slices alias the scanner's and link's reusable buffers:
// the function may read them during the call but must not retain them, and
// it must be safe for concurrent use — every scanner worker flows through
// the same tap.
type TapFunc func(pkt, reply []byte)

// Tap is the observe-everything middleware: it counts — and optionally
// hands to a TapFunc — every probe/reply pair crossing the link without
// touching either, so a tapped chain stays byte-identical to an untapped
// one. It is the building block for telescope-style studies (what does a
// passive observer on the wire see of a scan?) per ROADMAP item 5.
//
// Telemetry: wire.tap.probes, wire.tap.replies.
type Tap struct {
	fn      TapFunc
	probes  atomic.Int64
	replies atomic.Int64

	cProbes  *telemetry.Counter
	cReplies *telemetry.Counter
}

// NewTap builds a tap. fn may be nil for a count-only tap.
func NewTap(fn TapFunc) *Tap { return &Tap{fn: fn} }

// SetTelemetry mirrors the tap's counters into reg under wire.tap.*.
func (t *Tap) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.cProbes = reg.Counter("wire.tap.probes")
	t.cReplies = reg.Counter("wire.tap.replies")
}

// Probes returns how many probes have crossed the tap.
func (t *Tap) Probes() int64 { return t.probes.Load() }

// Replies returns how many of them drew a reply.
func (t *Tap) Replies() int64 { return t.replies.Load() }

// Wrap implements Middleware.
func (t *Tap) Wrap(next Link) Link {
	return LinkFunc(func(pkts [][]byte, rb *probe.ReplyBuf) {
		next.ExchangeBatchInto(pkts, rb)
		n := int64(len(pkts))
		var answered int64
		for i := range pkts {
			r := rb.Reply(i)
			if r != nil {
				answered++
			}
			if t.fn != nil {
				t.fn(pkts[i], r)
			}
		}
		t.probes.Add(n)
		t.replies.Add(answered)
		t.cProbes.Add(n)
		t.cReplies.Add(answered)
	})
}
