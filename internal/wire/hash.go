package wire

import "encoding/binary"

// wiremix is the package's copy of the split-mix fold used across the repo
// for deterministic seeded decisions (kept local so wire depends only on
// probe, ipaddr, and telemetry).
func wiremix(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = wiresmix(h ^ v)
	}
	return h
}

func wiresmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// hashBytes folds a packet's bytes into one word, eight at a time — the
// per-packet fault key. Probes vary per attempt (the scanner folds the
// attempt number into a wire field), so hashing the bytes means retries
// genuinely re-roll their fault draws.
func hashBytes(seed uint64, b []byte) uint64 {
	h := wiresmix(seed ^ uint64(len(b)))
	for len(b) >= 8 {
		h = wiresmix(h ^ binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	var tail uint64
	for _, c := range b {
		tail = tail<<8 | uint64(c)
	}
	return wiresmix(h ^ tail)
}

// frac maps a hash word onto [0, 1).
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }
