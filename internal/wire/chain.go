package wire

// Middleware wraps a Link with behavior on the send side (probes flowing
// down to the wire) and/or the observe side (replies flowing back up).
//
// The contract a Wrap result must honour:
//
//   - Pass-through middlewares (Tap, Shaper, SourceRotator) forward the
//     caller's pkts and rb to the inner link and must NOT Reset rb — the
//     innermost link resets it, exactly as the scanner expects from a bare
//     link. They may rewrite probe bytes before forwarding (into their own
//     scratch, never in the caller's buffers) and reply bytes in place
//     after the inner exchange returns.
//   - Filtering middlewares (Faults) that forward a different packet set
//     exchange through their own scratch ReplyBuf, then Reset the caller's
//     rb themselves and copy the surviving replies back by original index.
//   - Either way the middleware must be safe for concurrent use — scanner
//     workers share one chain — and must not retain pkts, replies, or rb
//     past the call.
type Middleware interface {
	// Wrap returns a Link that forwards to next. Wrap is called once at
	// chain-build time; the returned Link carries the per-exchange logic.
	Wrap(next Link) Link
}

// Chain composes middlewares onto base. mws[0] is the outermost layer —
// closest to the scanner, first to see probes and last to see replies —
// and mws[len-1] sits directly on base. Nil entries are skipped. An empty
// chain returns base itself: no wrapper, no overhead, byte-identical
// behavior to handing the scanner the bare link.
func Chain(base Link, mws ...Middleware) Link {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] == nil {
			continue
		}
		base = mws[i].Wrap(base)
	}
	return base
}
