package wire

import (
	"math"
	"sync/atomic"

	"seedscan/internal/probe"
	"seedscan/internal/telemetry"
)

// Shaper shapes the probe departure schedule on a virtual clock, the same
// accounting idiom as the scanner's own RateLimiter: instead of sleeping
// it advances simulated time by one inter-packet gap per probe, plus
// optional seeded jitter, so shaped experiments still run at full speed
// while VirtualElapsed reports what the shaped scan would cost on real
// hardware. Layer one under a scanner whose own limiter models the ethical
// aggregate cap to ask "what if the wire itself were slower or burstier?".
//
// Jitter draws one deterministic extra delay per exchange batch — a
// fraction of the gap in [0, jitter·gap) keyed by (seed, batch ordinal) —
// mimicking per-burst scheduling noise without breaking reproducibility.
//
// Telemetry: wire.shaper.packets.
type Shaper struct {
	gap    float64
	jitter float64
	seed   uint64

	n       atomic.Int64  // packets accounted
	batches atomic.Int64  // exchange batches seen (the jitter key)
	jbits   atomic.Uint64 // accumulated jitter seconds (float64 bits)

	cPackets *telemetry.Counter
}

// NewShaper shapes to pps packets per second with jitter in [0, 1] as the
// maximum per-batch extra delay in units of one inter-packet gap. seed
// keys the jitter draws.
func NewShaper(pps int, jitter float64, seed uint64) *Shaper {
	if pps <= 0 {
		pps = 1
	}
	if jitter < 0 {
		jitter = 0
	}
	return &Shaper{gap: 1 / float64(pps), jitter: jitter, seed: seed}
}

// SetTelemetry mirrors the shaper's counters into reg under wire.shaper.*.
func (s *Shaper) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.cPackets = reg.Counter("wire.shaper.packets")
}

// Packets returns how many packets the shaper has accounted.
func (s *Shaper) Packets() int64 { return s.n.Load() }

// VirtualElapsed returns the virtual seconds the shaped wire has consumed:
// packets times the gap plus all jitter drawn so far.
func (s *Shaper) VirtualElapsed() float64 {
	return float64(s.n.Load())*s.gap + math.Float64frombits(s.jbits.Load())
}

// addJitter accumulates j seconds into the jitter total, lock-free.
func (s *Shaper) addJitter(j float64) {
	for {
		old := s.jbits.Load()
		next := math.Float64bits(math.Float64frombits(old) + j)
		if s.jbits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Wrap implements Middleware. The shaper only accounts time; packets and
// replies pass through untouched, so a shaped chain is byte-identical to
// an unshaped one.
func (s *Shaper) Wrap(next Link) Link {
	return LinkFunc(func(pkts [][]byte, rb *probe.ReplyBuf) {
		n := int64(len(pkts))
		s.n.Add(n)
		s.cPackets.Add(n)
		if s.jitter > 0 {
			batch := uint64(s.batches.Add(1) - 1)
			frac := float64(wiremix(s.seed, batch)>>11) / (1 << 53)
			s.addJitter(frac * s.jitter * s.gap)
		}
		next.ExchangeBatchInto(pkts, rb)
	})
}
