package wire

import (
	"sync"
	"sync/atomic"

	"seedscan/internal/probe"
	"seedscan/internal/telemetry"
)

// FaultsConfig configures deterministic fault injection. Each probability
// is in [0, 1] and applies independently per probe.
type FaultsConfig struct {
	// Seed keys every fault draw. Two runs with the same seed over the
	// same packets make identical decisions.
	Seed uint64
	// Loss drops the probe before it reaches the inner link.
	Loss float64
	// Dupe sends the probe twice; the duplicate's reply is discarded
	// (the scanner contract allows at most one reply per probe).
	Dupe float64
	// Delay delivers the probe but loses the reply — a response arriving
	// after the attempt window, indistinguishable from loss to the
	// scanner but visible to the world (and to any tap inside this
	// middleware).
	Delay float64
}

// Faults injects seeded, reproducible packet-level faults for robustness
// testing: probe loss, probe duplication, and reply delay. Every decision
// is a pure function of (seed, probe bytes) — no shared RNG stream — so
// decisions do not depend on worker interleaving, runs reproduce exactly
// across processes and resumes, and retries genuinely re-roll (the scanner
// folds the attempt number into a wire field, so a retry is a different
// byte string).
//
// Telemetry: wire.faults.dropped, wire.faults.duplicated,
// wire.faults.delayed.
type Faults struct {
	cfg     FaultsConfig
	scratch sync.Pool // *faultScratch

	dropped    atomic.Int64
	duplicated atomic.Int64
	delayed    atomic.Int64

	cDropped    *telemetry.Counter
	cDuplicated *telemetry.Counter
	cDelayed    *telemetry.Counter
}

// faultScratch is the per-exchange state: the forwarded packet subset, the
// original index each forwarded slot answers (duplicates map to -1), the
// delayed flag per original index, and the inner reply buffer.
type faultScratch struct {
	fwd     [][]byte
	origIdx []int
	delay   []bool
	rb      probe.ReplyBuf
}

// NewFaults builds a fault injector.
func NewFaults(cfg FaultsConfig) *Faults { return &Faults{cfg: cfg} }

// SetTelemetry mirrors the injector's counters into reg under wire.faults.*.
func (f *Faults) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.cDropped = reg.Counter("wire.faults.dropped")
	f.cDuplicated = reg.Counter("wire.faults.duplicated")
	f.cDelayed = reg.Counter("wire.faults.delayed")
}

// Dropped returns how many probes were lost.
func (f *Faults) Dropped() int64 { return f.dropped.Load() }

// Duplicated returns how many probes were sent twice.
func (f *Faults) Duplicated() int64 { return f.duplicated.Load() }

// Delayed returns how many replies were discarded as late.
func (f *Faults) Delayed() int64 { return f.delayed.Load() }

// Wrap implements Middleware. Faults is a filtering middleware: it
// forwards the surviving packet subset through its own scratch ReplyBuf,
// then resets the caller's rb and copies the surviving replies back under
// their original indices.
func (f *Faults) Wrap(next Link) Link {
	return LinkFunc(func(pkts [][]byte, rb *probe.ReplyBuf) {
		st, _ := f.scratch.Get().(*faultScratch)
		if st == nil {
			st = &faultScratch{}
		}
		st.fwd = st.fwd[:0]
		st.origIdx = st.origIdx[:0]
		st.delay = st.delay[:0]

		var nDrop, nDupe, nDelay int64
		for i, pkt := range pkts {
			h := hashBytes(f.cfg.Seed, pkt)
			// Three independent draws from one hash: re-mix per fault
			// class so the loss and dupe decisions are uncorrelated.
			lost := frac(wiresmix(h^1)) < f.cfg.Loss
			duped := frac(wiresmix(h^2)) < f.cfg.Dupe
			late := frac(wiresmix(h^3)) < f.cfg.Delay
			st.delay = append(st.delay, late)
			if lost {
				nDrop++
				continue
			}
			st.fwd = append(st.fwd, pkt)
			st.origIdx = append(st.origIdx, i)
			if duped {
				nDupe++
				st.fwd = append(st.fwd, pkt)
				st.origIdx = append(st.origIdx, -1)
			}
		}

		next.ExchangeBatchInto(st.fwd, &st.rb)

		rb.Reset(len(pkts))
		for k, orig := range st.origIdx {
			if orig < 0 {
				continue // a duplicate's reply: discarded
			}
			reply := st.rb.Reply(k)
			if reply == nil {
				continue
			}
			if st.delay[orig] {
				nDelay++
				continue
			}
			rb.PutRaw(orig, reply)
		}

		f.dropped.Add(nDrop)
		f.duplicated.Add(nDupe)
		f.delayed.Add(nDelay)
		f.cDropped.Add(nDrop)
		f.cDuplicated.Add(nDupe)
		f.cDelayed.Add(nDelay)
		f.scratch.Put(st)
	})
}
