// Package probe implements the wire formats exchanged between the scanner
// and the simulated IPv6 Internet: IPv6 headers, ICMPv6 Echo and Destination
// Unreachable, TCP SYN/SYN-ACK/RST segments, and minimal DNS-over-UDP
// messages. Packets are real byte-encoded IPv6 datagrams with valid
// checksums; only the link they travel over is in-process.
//
// The scanner builds probes with the Build* functions and validates
// responses with Parse; the world does the reverse. Layout follows RFC 8200
// (IPv6), RFC 4443 (ICMPv6), RFC 9293 (TCP), RFC 768 (UDP), and RFC 1035
// (DNS).
package probe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"seedscan/internal/ipaddr"
)

// IPv6HeaderLen is the fixed IPv6 header size in bytes.
const IPv6HeaderLen = 40

// Next-header protocol numbers.
const (
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// DefaultHopLimit is the hop limit stamped on generated packets.
const DefaultHopLimit = 64

// Header is a decoded IPv6 fixed header.
type Header struct {
	PayloadLen uint16
	NextHeader uint8
	HopLimit   uint8
	Src, Dst   ipaddr.Addr
}

// ErrTruncated reports a packet shorter than its headers claim.
var ErrTruncated = errors.New("probe: truncated packet")

// ErrBadVersion reports a non-IPv6 version field.
var ErrBadVersion = errors.New("probe: not an IPv6 packet")

// ErrBadChecksum reports a failed transport checksum verification.
var ErrBadChecksum = errors.New("probe: bad checksum")

// grow extends buf by n bytes and returns the grown slice together with
// the new region. It is the allocation seam shared by the Append*
// builders: appending into a reused scratch buffer builds a packet with no
// per-packet allocation once the buffer has warmed up.
//
// The reused region is NOT zeroed — every Append* builder writes each byte
// of its packet, including reserved fields (the TCP urgent pointer, the
// DNS count words), precisely so this hot-path memclr can be skipped.
func grow(buf []byte, n int) (full, pkt []byte) {
	off := len(buf)
	if cap(buf)-off < n {
		nbuf := make([]byte, off+n, (off+n)*2)
		copy(nbuf, buf)
		return nbuf, nbuf[off:]
	}
	buf = buf[:off+n]
	return buf, buf[off:]
}

// putIPv6Header writes a 40-byte IPv6 header into b. The header is five
// 64-bit stores: version/class/flow + length + next + hop packed into one
// word, then the two address halves each — this is scanner hot-path code.
func putIPv6Header(b []byte, src, dst ipaddr.Addr, next uint8, payloadLen int) {
	_ = b[39]
	binary.BigEndian.PutUint64(b[0:8],
		6<<60|uint64(uint16(payloadLen))<<16|uint64(next)<<8|DefaultHopLimit)
	binary.BigEndian.PutUint64(b[8:16], src.Hi())
	binary.BigEndian.PutUint64(b[16:24], src.Lo())
	binary.BigEndian.PutUint64(b[24:32], dst.Hi())
	binary.BigEndian.PutUint64(b[32:40], dst.Lo())
}

// parseIPv6Header decodes the fixed header and returns it with the payload.
func parseIPv6Header(pkt []byte) (Header, []byte, error) {
	if len(pkt) < IPv6HeaderLen {
		return Header{}, nil, ErrTruncated
	}
	if pkt[0]>>4 != 6 {
		return Header{}, nil, ErrBadVersion
	}
	var h Header
	h.PayloadLen = binary.BigEndian.Uint16(pkt[4:6])
	h.NextHeader = pkt[6]
	h.HopLimit = pkt[7]
	var s, d [16]byte
	copy(s[:], pkt[8:24])
	copy(d[:], pkt[24:40])
	h.Src = ipaddr.AddrFrom16(s)
	h.Dst = ipaddr.AddrFrom16(d)
	payload := pkt[IPv6HeaderLen:]
	if len(payload) < int(h.PayloadLen) {
		return Header{}, nil, ErrTruncated
	}
	return h, payload[:h.PayloadLen], nil
}

// checksum computes the Internet checksum over the IPv6 pseudo-header plus
// the transport payload, per RFC 8200 §8.1.
//
// Per RFC 1071 §2(B) the 16-bit one's-complement sum may be computed over
// wider words and folded, so the pseudo-header addresses are summed as
// their native uint64 halves and the payload eight bytes at a time —
// roughly 5x faster than a 16-bit loop on the probe-build hot path. Each
// 64-bit word is pre-folded to 33 bits before accumulating so the running
// sum cannot overflow for any packet size dealt with here.
func checksum(src, dst ipaddr.Addr, next uint8, payload []byte) uint16 {
	sum := uint64(len(payload)) + uint64(next)
	sum += src.Hi()>>32 + src.Hi()&0xffffffff
	sum += src.Lo()>>32 + src.Lo()&0xffffffff
	sum += dst.Hi()>>32 + dst.Hi()&0xffffffff
	sum += dst.Lo()>>32 + dst.Lo()&0xffffffff
	p := payload
	for len(p) >= 8 {
		w := binary.BigEndian.Uint64(p)
		sum += w>>32 + w&0xffffffff
		p = p[8:]
	}
	if len(p) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(p))
		p = p[4:]
	}
	if len(p) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(p))
		p = p[2:]
	}
	if len(p) == 1 {
		sum += uint64(p[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// verifyChecksum checks the transport checksum of l4 against the stored
// 16-bit field at offset at, summing l4 in place with that field masked to
// zero. The mask replaces the per-packet "copy l4 and zero the field" the
// parsers used to do — the world's reply path parses millions of probes per
// second, and that copy was its dominant allocation.
func verifyChecksum(src, dst ipaddr.Addr, next uint8, l4 []byte, at int) bool {
	want := binary.BigEndian.Uint16(l4[at : at+2])
	sum := uint64(len(l4)) + uint64(next)
	sum += src.Hi()>>32 + src.Hi()&0xffffffff
	sum += src.Lo()>>32 + src.Lo()&0xffffffff
	sum += dst.Hi()>>32 + dst.Hi()&0xffffffff
	sum += dst.Lo()>>32 + dst.Lo()&0xffffffff
	p := l4
	off := 0
	for len(p) >= 8 {
		w := binary.BigEndian.Uint64(p)
		if at >= off && at < off+8 {
			w &^= uint64(0xffff) << (48 - 8*uint(at-off))
		}
		sum += w>>32 + w&0xffffffff
		p = p[8:]
		off += 8
	}
	if len(p) >= 4 {
		w := uint64(binary.BigEndian.Uint32(p))
		if at >= off && at < off+4 {
			w &^= uint64(0xffff) << (16 - 8*uint(at-off))
		}
		sum += w
		p = p[4:]
		off += 4
	}
	if len(p) >= 2 {
		w := uint64(binary.BigEndian.Uint16(p))
		if at == off {
			w = 0
		}
		sum += w
		p = p[2:]
	}
	if len(p) == 1 {
		sum += uint64(p[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum) == want
}

// Kind identifies the decoded packet type.
type Kind uint8

const (
	KindUnknown Kind = iota
	KindEchoRequest
	KindEchoReply
	KindUnreachable
	KindTCPSyn
	KindTCPSynAck
	KindTCPRst
	KindDNSQuery
	KindDNSResponse
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEchoRequest:
		return "EchoRequest"
	case KindEchoReply:
		return "EchoReply"
	case KindUnreachable:
		return "Unreachable"
	case KindTCPSyn:
		return "TCPSyn"
	case KindTCPSynAck:
		return "TCPSynAck"
	case KindTCPRst:
		return "TCPRst"
	case KindDNSQuery:
		return "DNSQuery"
	case KindDNSResponse:
		return "DNSResponse"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Packet is the decoded form of any probe or response.
type Packet struct {
	Header Header
	Kind   Kind

	// ICMP echo fields.
	EchoID, EchoSeq uint16
	Payload         []byte // echo payload or DNS question name bytes

	// Unreachable: code per RFC 4443 §3.1.
	UnreachCode uint8

	// TCP fields.
	SrcPort, DstPort uint16
	TCPSeq, TCPAck   uint32

	// DNS fields.
	DNSID uint16
}

// Parse decodes an IPv6 packet into a Packet, verifying transport
// checksums.
func Parse(pkt []byte) (Packet, error) {
	h, payload, err := parseIPv6Header(pkt)
	if err != nil {
		return Packet{}, err
	}
	p := Packet{Header: h}
	switch h.NextHeader {
	case ProtoICMPv6:
		return parseICMP(p, payload)
	case ProtoTCP:
		return parseTCP(p, payload)
	case ProtoUDP:
		return parseUDP(p, payload)
	default:
		return Packet{}, fmt.Errorf("probe: unsupported next header %d", h.NextHeader)
	}
}
