package probe_test

import (
	"fmt"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
)

func ExampleBuildEchoRequest() {
	src := ipaddr.MustParse("2001:db8::100")
	dst := ipaddr.MustParse("2600:9000::1")
	pkt := probe.BuildEchoRequest(src, dst, 0x1234, 1, []byte("cookie"))

	p, err := probe.Parse(pkt)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Kind, p.Header.Dst, p.EchoID, string(p.Payload))
	// Output: EchoRequest 2600:9000::1 4660 cookie
}

func ExampleParse_synAck() {
	src := ipaddr.MustParse("2001:db8::100")
	dst := ipaddr.MustParse("2600:9000::1")
	syn := probe.BuildTCPSyn(src, dst, 54321, 443, 99)
	// The listening host answers; ack must be seq+1.
	reply := probe.BuildTCPSynAck(dst, src, 443, 54321, 7, 100)

	q, _ := probe.Parse(syn)
	r, _ := probe.Parse(reply)
	fmt.Println(q.Kind, r.Kind, r.TCPAck == q.TCPSeq+1)
	// Output: TCPSyn TCPSynAck true
}
