package probe

import (
	"encoding/binary"
	"errors"
	"strings"

	"seedscan/internal/ipaddr"
)

// dnsHeaderLen is the fixed DNS message header size (RFC 1035 §4.1.1).
const dnsHeaderLen = 12

const udpHeaderLen = 8

// DNS query type and class used by the scanner (AAAA, IN), matching the
// version-bind-style liveness probes real UDP/53 scans send.
const (
	dnsTypeAAAA = 28
	dnsClassIN  = 1
)

// ErrBadName reports an unencodable or undecodable DNS name.
var ErrBadName = errors.New("probe: bad DNS name")

// BuildDNSQuery constructs a UDP/53 DNS query for qname (AAAA, IN). The
// transaction id and source port carry the scanner's validation cookie.
func BuildDNSQuery(src, dst ipaddr.Addr, srcPort, txid uint16, qname string) ([]byte, error) {
	q, err := encodeName(qname)
	if err != nil {
		return nil, err
	}
	return AppendDNSQueryWire(nil, src, dst, srcPort, txid, q), nil
}

// AppendDNSQueryWire appends a UDP/53 DNS query (AAAA, IN) for an already
// wire-encoded name (see EncodeName) to buf and returns the extended
// slice. Pre-encoding the name once and passing a reused scratch buffer
// builds the packet without allocating.
func AppendDNSQueryWire(buf []byte, src, dst ipaddr.Addr, srcPort, txid uint16, wireName []byte) []byte {
	msgLen := dnsHeaderLen + len(wireName) + 4
	buf, pkt := grow(buf, IPv6HeaderLen+udpHeaderLen+msgLen)
	putIPv6Header(pkt, src, dst, ProtoUDP, udpHeaderLen+msgLen)
	l4 := pkt[IPv6HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:2], srcPort)
	binary.BigEndian.PutUint16(l4[2:4], 53)
	binary.BigEndian.PutUint16(l4[4:6], uint16(len(l4)))
	l4[6], l4[7] = 0, 0 // checksum below (grow does not zero)
	msg := l4[udpHeaderLen:]
	binary.BigEndian.PutUint16(msg[0:2], txid)
	msg[2] = 0x01 // RD
	msg[3] = 0
	binary.BigEndian.PutUint16(msg[4:6], 1)
	msg[6], msg[7], msg[8], msg[9], msg[10], msg[11] = 0, 0, 0, 0, 0, 0 // AN/NS/AR counts
	copy(msg[dnsHeaderLen:], wireName)
	off := dnsHeaderLen + len(wireName)
	binary.BigEndian.PutUint16(msg[off:off+2], dnsTypeAAAA)
	binary.BigEndian.PutUint16(msg[off+2:off+4], dnsClassIN)
	binary.BigEndian.PutUint16(l4[6:8], checksum(src, dst, ProtoUDP, l4))
	return buf
}

// EncodeName converts "a.example.com" to DNS wire-format labels — the
// pre-encoding step for AppendDNSQueryWire.
func EncodeName(name string) ([]byte, error) { return encodeName(name) }

// BuildDNSResponse constructs the matching response: QR set, question
// echoed, zero answers (a REFUSED-style reply — enough to count liveness).
func BuildDNSResponse(src, dst ipaddr.Addr, dstPort, txid uint16, question []byte) []byte {
	return AppendDNSResponse(nil, src, dst, dstPort, txid, question)
}

// AppendDNSResponse appends the matching DNS response to buf and returns
// the extended slice — the allocation-free form responders use.
func AppendDNSResponse(buf []byte, src, dst ipaddr.Addr, dstPort, txid uint16, question []byte) []byte {
	msgLen := dnsHeaderLen + len(question)
	buf, pkt := grow(buf, IPv6HeaderLen+udpHeaderLen+msgLen)
	putIPv6Header(pkt, src, dst, ProtoUDP, udpHeaderLen+msgLen)
	l4 := pkt[IPv6HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:2], 53)
	binary.BigEndian.PutUint16(l4[2:4], dstPort)
	binary.BigEndian.PutUint16(l4[4:6], uint16(len(l4)))
	l4[6], l4[7] = 0, 0 // checksum below (grow does not zero)
	msg := l4[udpHeaderLen:]
	binary.BigEndian.PutUint16(msg[0:2], txid)
	msg[2] = 0x81 // QR + RD
	msg[3] = 0x05 // RA=0, rcode REFUSED
	binary.BigEndian.PutUint16(msg[4:6], 1)
	msg[6], msg[7], msg[8], msg[9], msg[10], msg[11] = 0, 0, 0, 0, 0, 0 // AN/NS/AR counts
	copy(msg[dnsHeaderLen:], question)
	binary.BigEndian.PutUint16(l4[6:8], checksum(src, dst, ProtoUDP, l4))
	return buf
}

func parseUDP(p Packet, l4 []byte) (Packet, error) {
	if len(l4) < udpHeaderLen {
		return Packet{}, ErrTruncated
	}
	if !verifyChecksum(p.Header.Src, p.Header.Dst, ProtoUDP, l4, 6) {
		return Packet{}, ErrBadChecksum
	}
	p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	p.DstPort = binary.BigEndian.Uint16(l4[2:4])
	msg := l4[udpHeaderLen:]
	if len(msg) < dnsHeaderLen {
		p.Kind = KindUnknown
		return p, nil
	}
	p.DNSID = binary.BigEndian.Uint16(msg[0:2])
	if msg[2]&0x80 != 0 {
		p.Kind = KindDNSResponse
	} else {
		p.Kind = KindDNSQuery
	}
	p.Payload = msg[dnsHeaderLen:] // question section onward
	return p, nil
}

// encodeName converts "a.example.com" to DNS wire format labels.
func encodeName(name string) ([]byte, error) {
	if name == "" || len(name) > 253 {
		return nil, ErrBadName
	}
	var out []byte
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" || len(label) > 63 {
			return nil, ErrBadName
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// DecodeName converts wire-format labels back to dotted form, returning the
// name and the number of bytes consumed. Compression pointers are not
// supported (our messages never use them).
func DecodeName(b []byte) (string, int, error) {
	var parts []string
	i := 0
	for {
		if i >= len(b) {
			return "", 0, ErrBadName
		}
		l := int(b[i])
		if l == 0 {
			i++
			break
		}
		if l > 63 || i+1+l > len(b) {
			return "", 0, ErrBadName
		}
		parts = append(parts, string(b[i+1:i+1+l]))
		i += 1 + l
	}
	return strings.Join(parts, "."), i, nil
}
