package probe

import (
	"testing"

	"seedscan/internal/ipaddr"
)

// FuzzParse guards the world's network interface: Parse consumes raw bytes
// straight off the (simulated) wire and must never panic or accept a
// packet whose framing lies about its size. The seed corpus covers every
// packet kind both builders emit, plus truncations of each.
func FuzzParse(f *testing.F) {
	src := ipaddr.MustParse("2001:db8::1")
	dst := ipaddr.MustParse("2001:db8::2")
	echo := BuildEchoRequest(src, dst, 0x1234, 7, []byte("cookie78"))
	seeds := [][]byte{
		echo,
		BuildEchoReply(dst, src, 0x1234, 7, []byte("cookie78")),
		BuildTCPSyn(src, dst, 0xc123, 443, 0xdeadbeef),
		BuildTCPSynAck(dst, src, 443, 0xc123, 0x22334455, 0xdeadbec0),
		BuildTCPRst(dst, src, 443, 0xc123, 0, 0xdeadbec0),
		BuildUnreachable(dst, src, UnreachAddr, echo),
	}
	if q, err := BuildDNSQuery(src, dst, 0xc123, 0x4242, "liveness.seedscan.example"); err == nil {
		seeds = append(seeds, q)
		name, _ := EncodeName("liveness.seedscan.example")
		seeds = append(seeds, BuildDNSResponse(dst, src, 0xc123, 0x4242, name))
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)-1])      // truncated tail
		f.Add(s[:IPv6HeaderLen]) // headers only
		f.Add(append([]byte{}, s[:8]...))
		corrupt := append([]byte{}, s...)
		corrupt[len(corrupt)-1] ^= 0xff // breaks the transport checksum
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		p, err := Parse(pkt)
		if err != nil {
			return
		}
		// Accepted packets must be at least a full IPv6 header declaring
		// version 6, and every parsed slice must point inside the input.
		if len(pkt) < IPv6HeaderLen || pkt[0]>>4 != 6 {
			t.Fatalf("accepted invalid framing: len=%d %x", len(pkt), pkt)
		}
		if int(p.Header.PayloadLen) > len(pkt)-IPv6HeaderLen {
			t.Fatalf("payload length %d exceeds packet body %d", p.Header.PayloadLen, len(pkt)-IPv6HeaderLen)
		}
		if len(p.Payload) > int(p.Header.PayloadLen) {
			t.Fatalf("parsed payload %d exceeds declared %d", len(p.Payload), p.Header.PayloadLen)
		}
	})
}
