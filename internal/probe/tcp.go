package probe

import (
	"encoding/binary"

	"seedscan/internal/ipaddr"
)

// TCP flag bits.
const (
	tcpFlagFin = 1 << 0
	tcpFlagSyn = 1 << 1
	tcpFlagRst = 1 << 2
	tcpFlagAck = 1 << 4
)

const tcpHeaderLen = 20

// BuildTCPSyn constructs a TCP SYN probe. seq carries the scanner's
// validation cookie (SYN cookies in reverse: the responder must ack seq+1).
func BuildTCPSyn(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, 0, tcpFlagSyn)
}

// BuildTCPSynAck constructs the SYN-ACK a listening port answers with:
// ack must be the probe's seq+1.
func BuildTCPSynAck(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, ack, tcpFlagSyn|tcpFlagAck)
}

// BuildTCPRst constructs the RST a live host with a closed port answers
// with. Per the paper's methodology (§4.1), RSTs are not counted as hits.
func BuildTCPRst(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, ack, tcpFlagRst|tcpFlagAck)
}

func buildTCP(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8) []byte {
	l4 := make([]byte, tcpHeaderLen)
	binary.BigEndian.PutUint16(l4[0:2], srcPort)
	binary.BigEndian.PutUint16(l4[2:4], dstPort)
	binary.BigEndian.PutUint32(l4[4:8], seq)
	binary.BigEndian.PutUint32(l4[8:12], ack)
	l4[12] = (tcpHeaderLen / 4) << 4 // data offset
	l4[13] = flags
	binary.BigEndian.PutUint16(l4[14:16], 65535) // window
	binary.BigEndian.PutUint16(l4[16:18], checksum(src, dst, ProtoTCP, l4))

	pkt := make([]byte, IPv6HeaderLen+len(l4))
	putIPv6Header(pkt, src, dst, ProtoTCP, len(l4))
	copy(pkt[IPv6HeaderLen:], l4)
	return pkt
}

func parseTCP(p Packet, l4 []byte) (Packet, error) {
	if len(l4) < tcpHeaderLen {
		return Packet{}, ErrTruncated
	}
	want := binary.BigEndian.Uint16(l4[16:18])
	cp := make([]byte, len(l4))
	copy(cp, l4)
	cp[16], cp[17] = 0, 0
	if checksum(p.Header.Src, p.Header.Dst, ProtoTCP, cp) != want {
		return Packet{}, ErrBadChecksum
	}
	p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	p.DstPort = binary.BigEndian.Uint16(l4[2:4])
	p.TCPSeq = binary.BigEndian.Uint32(l4[4:8])
	p.TCPAck = binary.BigEndian.Uint32(l4[8:12])
	flags := l4[13]
	switch {
	case flags&tcpFlagRst != 0:
		p.Kind = KindTCPRst
	case flags&tcpFlagSyn != 0 && flags&tcpFlagAck != 0:
		p.Kind = KindTCPSynAck
	case flags&tcpFlagSyn != 0:
		p.Kind = KindTCPSyn
	default:
		p.Kind = KindUnknown
	}
	return p, nil
}
