package probe

import (
	"encoding/binary"

	"seedscan/internal/ipaddr"
)

// TCP flag bits.
const (
	tcpFlagFin = 1 << 0
	tcpFlagSyn = 1 << 1
	tcpFlagRst = 1 << 2
	tcpFlagAck = 1 << 4
)

const tcpHeaderLen = 20

// BuildTCPSyn constructs a TCP SYN probe. seq carries the scanner's
// validation cookie (SYN cookies in reverse: the responder must ack seq+1).
func BuildTCPSyn(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, 0, tcpFlagSyn)
}

// AppendTCPSyn appends a TCP SYN probe to buf and returns the extended
// slice. Passing a reused scratch buffer builds the packet without
// allocating.
func AppendTCPSyn(buf []byte, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq uint32) []byte {
	return appendTCP(buf, src, dst, srcPort, dstPort, seq, 0, tcpFlagSyn)
}

// BuildTCPSynAck constructs the SYN-ACK a listening port answers with:
// ack must be the probe's seq+1.
func BuildTCPSynAck(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, ack, tcpFlagSyn|tcpFlagAck)
}

// AppendTCPSynAck appends a SYN-ACK to buf and returns the extended slice —
// the allocation-free form responders use.
func AppendTCPSynAck(buf []byte, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return appendTCP(buf, src, dst, srcPort, dstPort, seq, ack, tcpFlagSyn|tcpFlagAck)
}

// BuildTCPRst constructs the RST a live host with a closed port answers
// with. Per the paper's methodology (§4.1), RSTs are not counted as hits.
func BuildTCPRst(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return buildTCP(src, dst, srcPort, dstPort, seq, ack, tcpFlagRst|tcpFlagAck)
}

// AppendTCPRst appends a RST to buf and returns the extended slice — the
// allocation-free form responders use.
func AppendTCPRst(buf []byte, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	return appendTCP(buf, src, dst, srcPort, dstPort, seq, ack, tcpFlagRst|tcpFlagAck)
}

func buildTCP(src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8) []byte {
	return appendTCP(nil, src, dst, srcPort, dstPort, seq, ack, flags)
}

func appendTCP(buf []byte, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8) []byte {
	buf, pkt := grow(buf, IPv6HeaderLen+tcpHeaderLen)
	putIPv6Header(pkt, src, dst, ProtoTCP, tcpHeaderLen)
	l4 := pkt[IPv6HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:2], srcPort)
	binary.BigEndian.PutUint16(l4[2:4], dstPort)
	binary.BigEndian.PutUint32(l4[4:8], seq)
	binary.BigEndian.PutUint32(l4[8:12], ack)
	l4[12] = (tcpHeaderLen / 4) << 4 // data offset
	l4[13] = flags
	binary.BigEndian.PutUint16(l4[14:16], 65535) // window
	l4[16], l4[17] = 0, 0                        // checksum below
	l4[18], l4[19] = 0, 0                        // urgent pointer (grow does not zero)
	binary.BigEndian.PutUint16(l4[16:18], checksum(src, dst, ProtoTCP, l4))
	return buf
}

func parseTCP(p Packet, l4 []byte) (Packet, error) {
	if len(l4) < tcpHeaderLen {
		return Packet{}, ErrTruncated
	}
	if !verifyChecksum(p.Header.Src, p.Header.Dst, ProtoTCP, l4, 16) {
		return Packet{}, ErrBadChecksum
	}
	p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	p.DstPort = binary.BigEndian.Uint16(l4[2:4])
	p.TCPSeq = binary.BigEndian.Uint32(l4[4:8])
	p.TCPAck = binary.BigEndian.Uint32(l4[8:12])
	flags := l4[13]
	switch {
	case flags&tcpFlagRst != 0:
		p.Kind = KindTCPRst
	case flags&tcpFlagSyn != 0 && flags&tcpFlagAck != 0:
		p.Kind = KindTCPSynAck
	case flags&tcpFlagSyn != 0:
		p.Kind = KindTCPSyn
	default:
		p.Kind = KindUnknown
	}
	return p, nil
}
