package probe

import "seedscan/internal/ipaddr"

// RewriteSrc replaces pkt's IPv6 source address in place and refreshes the
// transport checksum (the pseudo-header covers both addresses, so the
// checksum must be recomputed, not patched). It is the building block for
// wire middlewares that rotate a scanner's origin across a source pool.
//
// pkt must be a well-formed packet as produced by the Append* builders;
// malformed or truncated input returns an error with pkt unchanged beyond
// the address bytes already written.
func RewriteSrc(pkt []byte, src ipaddr.Addr) error {
	return rewriteAddr(pkt, src, 8)
}

// RewriteDst is RewriteSrc for the destination address — the return half
// of a source-rotating middleware, NAT-ing replies back to the address the
// scanner expects.
func RewriteDst(pkt []byte, dst ipaddr.Addr) error {
	return rewriteAddr(pkt, dst, 24)
}

// rewriteAddr overwrites the 16 address bytes at off and recomputes the
// transport checksum for whichever protocol the next-header field names.
func rewriteAddr(pkt []byte, a ipaddr.Addr, off int) error {
	if len(pkt) < IPv6HeaderLen {
		return ErrTruncated
	}
	if pkt[0]>>4 != 6 {
		return ErrBadVersion
	}
	b := a.As16()
	copy(pkt[off:off+16], b[:])

	next := pkt[6]
	var at int
	switch next {
	case ProtoICMPv6:
		at = 2
	case ProtoTCP:
		at = 16
	case ProtoUDP:
		at = 6
	default:
		// Unknown transport: the address is rewritten but no checksum
		// covers it, which is all that can be done generically.
		return nil
	}
	l4 := pkt[IPv6HeaderLen:]
	if plen := int(uint16(pkt[4])<<8 | uint16(pkt[5])); plen <= len(l4) {
		l4 = l4[:plen]
	}
	if len(l4) < at+2 {
		return ErrTruncated
	}
	l4[at], l4[at+1] = 0, 0
	var s, d [16]byte
	copy(s[:], pkt[8:24])
	copy(d[:], pkt[24:40])
	ck := checksum(ipaddr.AddrFrom16(s), ipaddr.AddrFrom16(d), next, l4)
	l4[at] = byte(ck >> 8)
	l4[at+1] = byte(ck)
	return nil
}
