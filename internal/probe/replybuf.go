package probe

import "seedscan/internal/ipaddr"

// replySpan records one packet's [off, end) byte range in the arena; an
// empty span (off == end) means the packet drew no reply.
type replySpan struct{ off, end int32 }

// ReplyBuf collects the replies to a batch of packets in one caller-owned
// arena. A responder answering pkts[i] calls at most one Put* method with
// index i; the caller then reads each packet's reply back with Reply(i).
// Reusing one ReplyBuf across batches makes the whole reply path
// allocation-free once the arena has warmed up.
//
// Reply slices alias the arena: they are valid until the next Reset and
// must not be retained past it. A ReplyBuf is not safe for concurrent use;
// give each worker its own.
type ReplyBuf struct {
	arena []byte
	spans []replySpan
}

// Reset prepares the buffer for a batch of n packets, all initially without
// replies. The arena's capacity is retained.
func (rb *ReplyBuf) Reset(n int) {
	rb.arena = rb.arena[:0]
	if cap(rb.spans) < n {
		rb.spans = make([]replySpan, n)
		return
	}
	rb.spans = rb.spans[:n]
	for i := range rb.spans {
		rb.spans[i] = replySpan{}
	}
}

// Len returns the batch size of the last Reset.
func (rb *ReplyBuf) Len() int { return len(rb.spans) }

// Reply returns packet i's reply bytes, or nil when it has none.
func (rb *ReplyBuf) Reply(i int) []byte {
	s := rb.spans[i]
	if s.end == s.off {
		return nil
	}
	return rb.arena[s.off:s.end]
}

func (rb *ReplyBuf) record(i, off int) {
	rb.spans[i] = replySpan{off: int32(off), end: int32(len(rb.arena))}
}

// PutEchoReply stores an ICMPv6 Echo Reply as packet i's reply.
func (rb *ReplyBuf) PutEchoReply(i int, src, dst ipaddr.Addr, id, seq uint16, payload []byte) {
	off := len(rb.arena)
	rb.arena = AppendEchoReply(rb.arena, src, dst, id, seq, payload)
	rb.record(i, off)
}

// PutTCPSynAck stores a TCP SYN-ACK as packet i's reply.
func (rb *ReplyBuf) PutTCPSynAck(i int, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) {
	off := len(rb.arena)
	rb.arena = AppendTCPSynAck(rb.arena, src, dst, srcPort, dstPort, seq, ack)
	rb.record(i, off)
}

// PutTCPRst stores a TCP RST as packet i's reply.
func (rb *ReplyBuf) PutTCPRst(i int, src, dst ipaddr.Addr, srcPort, dstPort uint16, seq, ack uint32) {
	off := len(rb.arena)
	rb.arena = AppendTCPRst(rb.arena, src, dst, srcPort, dstPort, seq, ack)
	rb.record(i, off)
}

// PutDNSResponse stores a DNS response as packet i's reply.
func (rb *ReplyBuf) PutDNSResponse(i int, src, dst ipaddr.Addr, dstPort, txid uint16, question []byte) {
	off := len(rb.arena)
	rb.arena = AppendDNSResponse(rb.arena, src, dst, dstPort, txid, question)
	rb.record(i, off)
}

// PutRaw copies an already-encoded packet into the arena as packet i's
// reply. It is the seam the wire layer uses to lift legacy links (which
// return freshly allocated reply slices) and fault middlewares (which
// re-index replies between an inner and an outer buffer) into the arena
// contract. raw must not alias rb's own arena.
func (rb *ReplyBuf) PutRaw(i int, raw []byte) {
	off := len(rb.arena)
	rb.arena = append(rb.arena, raw...)
	rb.record(i, off)
}

// PutUnreachable stores an ICMPv6 Destination Unreachable as packet i's
// reply. invoking is the probe being answered; it must not alias the arena
// (probes live in the sender's buffers, so in practice it never does).
func (rb *ReplyBuf) PutUnreachable(i int, src, dst ipaddr.Addr, code uint8, invoking []byte) {
	off := len(rb.arena)
	rb.arena = AppendUnreachable(rb.arena, src, dst, code, invoking)
	rb.record(i, off)
}
