package probe

import (
	"bytes"
	"testing"
	"testing/quick"

	"seedscan/internal/ipaddr"
)

var (
	srcA = ipaddr.MustParse("2001:db8::100")
	dstA = ipaddr.MustParse("2600:9000::1")
)

func TestEchoRequestRoundTrip(t *testing.T) {
	payload := []byte("cookie-0123456789")
	pkt := BuildEchoRequest(srcA, dstA, 0x1234, 7, payload)
	p, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindEchoRequest {
		t.Fatalf("Kind = %v", p.Kind)
	}
	if p.Header.Src != srcA || p.Header.Dst != dstA {
		t.Fatal("addresses wrong")
	}
	if p.EchoID != 0x1234 || p.EchoSeq != 7 {
		t.Fatalf("id/seq = %x/%d", p.EchoID, p.EchoSeq)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.Header.HopLimit != DefaultHopLimit {
		t.Fatalf("hop limit = %d", p.Header.HopLimit)
	}
}

func TestEchoReplyMatchesRequest(t *testing.T) {
	req := BuildEchoRequest(srcA, dstA, 42, 1, []byte("xyz"))
	rp, err := Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	reply := BuildEchoReply(dstA, srcA, rp.EchoID, rp.EchoSeq, rp.Payload)
	p, err := Parse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindEchoReply || p.EchoID != 42 || p.EchoSeq != 1 || !bytes.Equal(p.Payload, []byte("xyz")) {
		t.Fatalf("reply mismatch: %+v", p)
	}
}

func TestUnreachableQuotesInvokingPacket(t *testing.T) {
	req := BuildEchoRequest(srcA, dstA, 1, 1, []byte("pad-pad-pad-pad-pad"))
	un := BuildUnreachable(dstA, srcA, UnreachAddr, req)
	p, err := Parse(un)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindUnreachable || p.UnreachCode != UnreachAddr {
		t.Fatalf("kind/code = %v/%d", p.Kind, p.UnreachCode)
	}
	if len(p.Payload) != IPv6HeaderLen+8 {
		t.Fatalf("quote length = %d", len(p.Payload))
	}
	if !bytes.Equal(p.Payload, req[:IPv6HeaderLen+8]) {
		t.Fatal("quote content wrong")
	}
}

func TestTCPSynSynAckRst(t *testing.T) {
	syn := BuildTCPSyn(srcA, dstA, 50000, 443, 0xdeadbeef)
	p, err := Parse(syn)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindTCPSyn || p.SrcPort != 50000 || p.DstPort != 443 || p.TCPSeq != 0xdeadbeef {
		t.Fatalf("syn = %+v", p)
	}

	synack := BuildTCPSynAck(dstA, srcA, 443, 50000, 99, p.TCPSeq+1)
	q, err := Parse(synack)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != KindTCPSynAck || q.TCPAck != 0xdeadbeef+1 {
		t.Fatalf("synack = %+v", q)
	}

	rst := BuildTCPRst(dstA, srcA, 443, 50000, 0, p.TCPSeq+1)
	r, err := Parse(rst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindTCPRst {
		t.Fatalf("rst kind = %v", r.Kind)
	}
}

func TestDNSQueryResponseRoundTrip(t *testing.T) {
	q, err := BuildDNSQuery(srcA, dstA, 55555, 0xbeef, "probe.seedscan.example")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindDNSQuery || p.DNSID != 0xbeef || p.SrcPort != 55555 || p.DstPort != 53 {
		t.Fatalf("query = %+v", p)
	}
	name, _, err := DecodeName(p.Payload)
	if err != nil || name != "probe.seedscan.example" {
		t.Fatalf("name = %q, %v", name, err)
	}

	resp := BuildDNSResponse(dstA, srcA, p.SrcPort, p.DNSID, p.Payload)
	r, err := Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindDNSResponse || r.DNSID != 0xbeef || r.DstPort != 55555 || r.SrcPort != 53 {
		t.Fatalf("response = %+v", r)
	}
}

func TestBadDNSNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	for _, n := range []string{"", string(long), "a..b"} {
		if _, err := BuildDNSQuery(srcA, dstA, 1, 1, n); err == nil {
			t.Errorf("BuildDNSQuery(%q) succeeded", n)
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	pkt := BuildEchoRequest(srcA, dstA, 1, 1, []byte("payload"))

	// Truncated.
	if _, err := Parse(pkt[:20]); err == nil {
		t.Error("truncated packet accepted")
	}
	// Bad version.
	bad := append([]byte(nil), pkt...)
	bad[0] = 4 << 4
	if _, err := Parse(bad); err == nil {
		t.Error("IPv4 version accepted")
	}
	// Flipped payload byte breaks checksum.
	bad = append([]byte(nil), pkt...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Parse(bad); err != ErrBadChecksum {
		t.Errorf("corrupted packet: err = %v, want ErrBadChecksum", err)
	}
	// Unknown next header.
	bad = append([]byte(nil), pkt...)
	bad[6] = 99
	if _, err := Parse(bad); err == nil {
		t.Error("unknown next header accepted")
	}
}

func TestChecksumBitFlipDetection(t *testing.T) {
	// The Internet checksum detects all single-bit errors in the L4 bytes.
	if err := quick.Check(func(hi, lo uint64, bitIdx uint16) bool {
		dst := ipaddr.AddrFrom64s(hi|1, lo) // avoid ::
		pkt := BuildTCPSyn(srcA, dst, 1234, 80, 0xabcdef01)
		i := IPv6HeaderLen + int(bitIdx)%(len(pkt)-IPv6HeaderLen)
		pkt[i] ^= 1 << (bitIdx % 8)
		_, err := Parse(pkt)
		return err == ErrBadChecksum
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNameErrors(t *testing.T) {
	cases := [][]byte{
		{},       // empty
		{5, 'a'}, // truncated label
		{64},     // oversized label
		{1, 'a'}, // missing terminator
	}
	for _, c := range cases {
		if _, _, err := DecodeName(c); err == nil {
			t.Errorf("DecodeName(%v) succeeded", c)
		}
	}
}

func TestParseBuildFuzzRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, id, seq uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		dst := ipaddr.AddrFrom64s(hi, lo)
		pkt := BuildEchoRequest(srcA, dst, id, seq, payload)
		p, err := Parse(pkt)
		if err != nil {
			return false
		}
		return p.Kind == KindEchoRequest && p.EchoID == id && p.EchoSeq == seq &&
			bytes.Equal(p.Payload, payload) && p.Header.Dst == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildEchoRequest(b *testing.B) {
	payload := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildEchoRequest(srcA, dstA, uint16(i), uint16(i>>16), payload)
	}
}

func BenchmarkParseTCP(b *testing.B) {
	pkt := BuildTCPSynAck(dstA, srcA, 443, 50000, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
