package probe

import (
	"encoding/binary"

	"seedscan/internal/ipaddr"
)

// ICMPv6 type values (RFC 4443).
const (
	icmpTypeUnreachable = 1
	icmpTypeEchoRequest = 128
	icmpTypeEchoReply   = 129
)

// Destination Unreachable codes we model.
const (
	UnreachNoRoute      = 0
	UnreachAdminProhib  = 1
	UnreachAddr         = 3
	UnreachPort         = 4
	unreachInvokedBytes = 8 // how much of the invoking packet we quote
)

// BuildEchoRequest constructs an ICMPv6 Echo Request datagram. The payload
// typically carries the scanner's validation cookie.
func BuildEchoRequest(src, dst ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	return appendEcho(nil, icmpTypeEchoRequest, src, dst, id, seq, payload)
}

// AppendEchoRequest appends an ICMPv6 Echo Request datagram to buf and
// returns the extended slice. Passing a reused scratch buffer builds the
// packet without allocating.
func AppendEchoRequest(buf []byte, src, dst ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	return appendEcho(buf, icmpTypeEchoRequest, src, dst, id, seq, payload)
}

// BuildEchoReply constructs the matching ICMPv6 Echo Reply, echoing id,
// seq, and payload per RFC 4443 §4.2.
func BuildEchoReply(src, dst ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	return appendEcho(nil, icmpTypeEchoReply, src, dst, id, seq, payload)
}

// AppendEchoReply appends an ICMPv6 Echo Reply to buf and returns the
// extended slice — the allocation-free form responders use.
func AppendEchoReply(buf []byte, src, dst ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	return appendEcho(buf, icmpTypeEchoReply, src, dst, id, seq, payload)
}

func appendEcho(buf []byte, typ uint8, src, dst ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	l4len := 8 + len(payload)
	buf, pkt := grow(buf, IPv6HeaderLen+l4len)
	putIPv6Header(pkt, src, dst, ProtoICMPv6, l4len)
	l4 := pkt[IPv6HeaderLen:]
	l4[0] = typ
	l4[1] = 0           // code
	l4[2], l4[3] = 0, 0 // checksum below (grow does not zero)
	binary.BigEndian.PutUint16(l4[4:6], id)
	binary.BigEndian.PutUint16(l4[6:8], seq)
	copy(l4[8:], payload)
	binary.BigEndian.PutUint16(l4[2:4], checksum(src, dst, ProtoICMPv6, l4))
	return buf
}

// BuildUnreachable constructs an ICMPv6 Destination Unreachable message
// quoting the start of the invoking packet, as routers do. The src is the
// responding router; dst is the original prober.
func BuildUnreachable(src, dst ipaddr.Addr, code uint8, invoking []byte) []byte {
	return AppendUnreachable(nil, src, dst, code, invoking)
}

// AppendUnreachable appends an ICMPv6 Destination Unreachable message to
// buf and returns the extended slice — the allocation-free form responders
// use.
func AppendUnreachable(buf []byte, src, dst ipaddr.Addr, code uint8, invoking []byte) []byte {
	quote := invoking
	if len(quote) > IPv6HeaderLen+unreachInvokedBytes {
		quote = quote[:IPv6HeaderLen+unreachInvokedBytes]
	}
	l4len := 8 + len(quote)
	buf, pkt := grow(buf, IPv6HeaderLen+l4len)
	putIPv6Header(pkt, src, dst, ProtoICMPv6, l4len)
	l4 := pkt[IPv6HeaderLen:]
	l4[0] = icmpTypeUnreachable
	l4[1] = code
	l4[2], l4[3] = 0, 0                     // checksum below (grow does not zero)
	l4[4], l4[5], l4[6], l4[7] = 0, 0, 0, 0 // unused per RFC 4443 §3.1
	copy(l4[8:], quote)
	binary.BigEndian.PutUint16(l4[2:4], checksum(src, dst, ProtoICMPv6, l4))
	return buf
}

func parseICMP(p Packet, l4 []byte) (Packet, error) {
	if len(l4) < 8 {
		return Packet{}, ErrTruncated
	}
	if !verifyChecksum(p.Header.Src, p.Header.Dst, ProtoICMPv6, l4, 2) {
		return Packet{}, ErrBadChecksum
	}
	switch l4[0] {
	case icmpTypeEchoRequest:
		p.Kind = KindEchoRequest
	case icmpTypeEchoReply:
		p.Kind = KindEchoReply
	case icmpTypeUnreachable:
		p.Kind = KindUnreachable
		p.UnreachCode = l4[1]
		p.Payload = l4[8:]
		return p, nil
	default:
		p.Kind = KindUnknown
		return p, nil
	}
	p.EchoID = binary.BigEndian.Uint16(l4[4:6])
	p.EchoSeq = binary.BigEndian.Uint16(l4[6:8])
	p.Payload = l4[8:]
	return p, nil
}
