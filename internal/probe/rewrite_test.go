package probe

import (
	"bytes"
	"testing"

	"seedscan/internal/ipaddr"
)

// rewriteCases builds one well-formed packet per transport the scanner
// emits.
func rewriteCases(t *testing.T) map[string][]byte {
	t.Helper()
	src := ipaddr.MustParse("2001:db8::1")
	dst := ipaddr.MustParse("2001:db8:ffff::2")
	dns, err := BuildDNSQuery(src, dst, 4444, 99, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"icmp-echo": BuildEchoRequest(src, dst, 7, 1, []byte("ping")),
		"tcp-syn":   BuildTCPSyn(src, dst, 5555, 443, 0xdeadbeef),
		"udp-dns":   dns,
	}
}

// TestRewriteKeepsChecksumsValid is the core contract of the rotator
// middleware: after rewriting either address, the packet still parses with
// a valid transport checksum and carries the new address.
func TestRewriteKeepsChecksumsValid(t *testing.T) {
	newSrc := ipaddr.MustParse("2001:db8:aaaa::99")
	newDst := ipaddr.MustParse("2001:db8:bbbb::42")
	for name, orig := range rewriteCases(t) {
		pkt := append([]byte(nil), orig...)
		if err := RewriteSrc(pkt, newSrc); err != nil {
			t.Fatalf("%s: RewriteSrc: %v", name, err)
		}
		p, err := Parse(pkt)
		if err != nil {
			t.Fatalf("%s: parse after RewriteSrc: %v", name, err)
		}
		if p.Header.Src != newSrc {
			t.Fatalf("%s: src = %v, want %v", name, p.Header.Src, newSrc)
		}

		if err := RewriteDst(pkt, newDst); err != nil {
			t.Fatalf("%s: RewriteDst: %v", name, err)
		}
		p, err = Parse(pkt)
		if err != nil {
			t.Fatalf("%s: parse after RewriteDst: %v", name, err)
		}
		if p.Header.Dst != newDst {
			t.Fatalf("%s: dst = %v, want %v", name, p.Header.Dst, newDst)
		}
	}
}

// TestRewriteRoundTripsBytes pins that rewriting an address away and back
// restores the original packet bit-for-bit — the NAT-return invariant the
// rotator relies on for replies.
func TestRewriteRoundTripsBytes(t *testing.T) {
	tmp := ipaddr.MustParse("2001:db8:aaaa::99")
	for name, orig := range rewriteCases(t) {
		pkt := append([]byte(nil), orig...)
		origSrc, _ := Parse(pkt)
		if err := RewriteSrc(pkt, tmp); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(pkt, orig) {
			t.Fatalf("%s: rewrite to a new src changed nothing", name)
		}
		if err := RewriteSrc(pkt, origSrc.Header.Src); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pkt, orig) {
			t.Fatalf("%s: round-trip rewrite did not restore the packet", name)
		}
	}
}

// TestRewriteRejectsMalformed covers the error paths: short packets and
// non-IPv6 bytes must be refused, not corrupted.
func TestRewriteRejectsMalformed(t *testing.T) {
	a := ipaddr.MustParse("2001:db8::1")
	if err := RewriteSrc(make([]byte, 39), a); err != ErrTruncated {
		t.Fatalf("short packet: err = %v, want ErrTruncated", err)
	}
	v4 := make([]byte, 40)
	v4[0] = 4 << 4
	if err := RewriteSrc(v4, a); err != ErrBadVersion {
		t.Fatalf("v4 packet: err = %v, want ErrBadVersion", err)
	}
}
