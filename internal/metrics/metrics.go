// Package metrics implements the paper's evaluation metrics (§4.1): hits
// (dealiased active addresses), active ASes (network diversity), alias
// counts, the Performance Ratio used throughout RQ1-RQ2, pairwise overlap
// matrices (Figures 1-2), and the greedy cumulative-contribution ordering
// of Figure 6.
package metrics

import (
	"seedscan/internal/asdb"
	"seedscan/internal/ipaddr"
)

// Outcome summarizes one TGA run under the paper's metrics.
type Outcome struct {
	Hits    int // dealiased active addresses
	ASes    int // distinct ASes among hits
	Aliases int // active addresses discarded as aliased
}

// Measure computes an Outcome from a run's hits and aliased hits.
// excludeASN drops hits originated by that AS before counting — the
// paper's AS12322 filter for ICMP evaluation (pass 0 to keep everything).
func Measure(hits, aliased []ipaddr.Addr, db *asdb.DB, excludeASN int) Outcome {
	var kept []ipaddr.Addr
	if excludeASN == 0 {
		kept = hits
	} else {
		kept = make([]ipaddr.Addr, 0, len(hits))
		for _, a := range hits {
			if asn, ok := db.Lookup(a); ok && asn == excludeASN {
				continue
			}
			kept = append(kept, a)
		}
	}
	return Outcome{
		Hits:    len(kept),
		ASes:    db.CountASes(kept),
		Aliases: len(aliased),
	}
}

// PerformanceRatio is §4.1's comparison metric between a changed and an
// original treatment: (changed-original)/original. 0 means no change, 1.0
// a doubling, -1.0 a halving. A zero original with a nonzero changed value
// saturates to +1 per unit of change (the paper never hits this case; we
// guard it for tiny scaled runs).
func PerformanceRatio(changed, original float64) float64 {
	if original == 0 {
		if changed == 0 {
			return 0
		}
		return changed // saturating: interpret as "changed× from nothing"
	}
	return (changed - original) / original
}

// RatioRow holds the three Performance Ratios Figures 3-5 plot per
// generator and protocol.
type RatioRow struct {
	Generator string
	Hits      float64
	ASes      float64
	Aliases   float64
}

// Contribution is one step of the greedy coverage ordering: the named set
// adds New previously-unseen items, bringing the cumulative total to
// Total.
type Contribution struct {
	Name  string
	New   int
	Total int
}

// GreedyCover orders the named sets by marginal contribution: at each
// step the set adding the most unseen items is chosen (Figure 6's
// construction). Ties break lexicographically for determinism.
func GreedyCover[K comparable](sets map[string]map[K]struct{}) []Contribution {
	covered := make(map[K]struct{})
	remaining := make(map[string]map[K]struct{}, len(sets))
	for n, s := range sets {
		remaining[n] = s
	}
	var out []Contribution
	for len(remaining) > 0 {
		bestName, bestNew := "", -1
		for n, s := range remaining {
			novel := 0
			for k := range s {
				if _, ok := covered[k]; !ok {
					novel++
				}
			}
			if novel > bestNew || (novel == bestNew && n < bestName) {
				bestName, bestNew = n, novel
			}
		}
		for k := range remaining[bestName] {
			covered[k] = struct{}{}
		}
		delete(remaining, bestName)
		out = append(out, Contribution{Name: bestName, New: bestNew, Total: len(covered)})
	}
	return out
}

// AddrSet converts an address slice to the set form GreedyCover expects.
func AddrSet(addrs []ipaddr.Addr) map[ipaddr.Addr]struct{} {
	s := make(map[ipaddr.Addr]struct{}, len(addrs))
	for _, a := range addrs {
		s[a] = struct{}{}
	}
	return s
}

// ASSetOf converts an address slice to its AS-number set.
func ASSetOf(addrs []ipaddr.Addr, db *asdb.DB) map[int]struct{} {
	return db.ASSet(addrs)
}

// OverlapMatrix holds Figures 1-2's pairwise overlap percentages:
// Frac[i][j] is the fraction of set i's items also present in set j, and
// AnyOther[i] is the fraction of set i present in at least one other set.
type OverlapMatrix struct {
	Names    []string
	Frac     [][]float64
	AnyOther []float64
}

// Overlaps builds an OverlapMatrix over named item sets, in the given name
// order.
func Overlaps[K comparable](names []string, sets map[string]map[K]struct{}) OverlapMatrix {
	m := OverlapMatrix{
		Names:    names,
		Frac:     make([][]float64, len(names)),
		AnyOther: make([]float64, len(names)),
	}
	for i, ni := range names {
		m.Frac[i] = make([]float64, len(names))
		si := sets[ni]
		if len(si) == 0 {
			continue
		}
		anyCount := 0
		for k := range si {
			inOther := false
			for j, nj := range names {
				if i == j {
					continue
				}
				if _, ok := sets[nj][k]; ok {
					inOther = true
					m.Frac[i][j]++
				}
			}
			if inOther {
				anyCount++
			}
		}
		for j := range m.Frac[i] {
			m.Frac[i][j] /= float64(len(si))
		}
		m.Frac[i][i] = 1
		m.AnyOther[i] = float64(anyCount) / float64(len(si))
	}
	return m
}
