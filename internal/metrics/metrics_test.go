package metrics

import (
	"math"
	"testing"

	"seedscan/internal/asdb"
	"seedscan/internal/ipaddr"
)

func testDB() *asdb.DB {
	db := asdb.New()
	db.Register(&asdb.AS{Number: 100, Prefixes: []ipaddr.Prefix{ipaddr.MustParsePrefix("2001:db8::/32")}})
	db.Register(&asdb.AS{Number: 200, Prefixes: []ipaddr.Prefix{ipaddr.MustParsePrefix("2600::/16")}})
	db.Register(&asdb.AS{Number: 12322, Prefixes: []ipaddr.Prefix{ipaddr.MustParsePrefix("2a01::/16")}})
	return db
}

func TestMeasure(t *testing.T) {
	db := testDB()
	hits := []ipaddr.Addr{
		ipaddr.MustParse("2001:db8::1"),
		ipaddr.MustParse("2001:db8::2"),
		ipaddr.MustParse("2600::1"),
	}
	aliased := []ipaddr.Addr{ipaddr.MustParse("2600::ff")}
	o := Measure(hits, aliased, db, 0)
	if o.Hits != 3 || o.ASes != 2 || o.Aliases != 1 {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestMeasureExcludesPathologicalAS(t *testing.T) {
	db := testDB()
	hits := []ipaddr.Addr{
		ipaddr.MustParse("2001:db8::1"),
		ipaddr.MustParse("2a01::1"), // AS12322
		ipaddr.MustParse("2a01::2"),
	}
	o := Measure(hits, nil, db, 12322)
	if o.Hits != 1 || o.ASes != 1 {
		t.Fatalf("filtered outcome = %+v", o)
	}
	unfiltered := Measure(hits, nil, db, 0)
	if unfiltered.Hits != 3 || unfiltered.ASes != 2 {
		t.Fatalf("unfiltered outcome = %+v", unfiltered)
	}
}

func TestPerformanceRatio(t *testing.T) {
	cases := []struct{ changed, original, want float64 }{
		{100, 100, 0},
		{200, 100, 1},
		{50, 100, -0.5},
		{0, 100, -1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := PerformanceRatio(c.changed, c.original); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PR(%v,%v) = %v, want %v", c.changed, c.original, got, c.want)
		}
	}
}

func TestGreedyCoverOrdering(t *testing.T) {
	sets := map[string]map[int]struct{}{
		"big":     {1: {}, 2: {}, 3: {}, 4: {}},
		"overlap": {3: {}, 4: {}, 5: {}},
		"tiny":    {1: {}},
	}
	order := GreedyCover(sets)
	if len(order) != 3 {
		t.Fatalf("steps = %d", len(order))
	}
	if order[0].Name != "big" || order[0].New != 4 || order[0].Total != 4 {
		t.Fatalf("step0 = %+v", order[0])
	}
	if order[1].Name != "overlap" || order[1].New != 1 || order[1].Total != 5 {
		t.Fatalf("step1 = %+v", order[1])
	}
	if order[2].Name != "tiny" || order[2].New != 0 || order[2].Total != 5 {
		t.Fatalf("step2 = %+v", order[2])
	}
}

func TestGreedyCoverDeterministicTies(t *testing.T) {
	sets := map[string]map[int]struct{}{
		"b": {1: {}},
		"a": {2: {}},
	}
	for i := 0; i < 10; i++ {
		order := GreedyCover(sets)
		if order[0].Name != "a" {
			t.Fatal("tie not broken lexicographically")
		}
	}
}

func TestOverlapsMatrix(t *testing.T) {
	sets := map[string]map[int]struct{}{
		"x": {1: {}, 2: {}},
		"y": {2: {}, 3: {}},
		"z": {9: {}},
	}
	m := Overlaps([]string{"x", "y", "z"}, sets)
	if m.Frac[0][1] != 0.5 || m.Frac[1][0] != 0.5 {
		t.Fatalf("x/y overlap = %v / %v", m.Frac[0][1], m.Frac[1][0])
	}
	if m.Frac[0][0] != 1 {
		t.Fatal("diagonal must be 1")
	}
	if m.AnyOther[0] != 0.5 || m.AnyOther[2] != 0 {
		t.Fatalf("AnyOther = %v", m.AnyOther)
	}
}

func TestOverlapsEmptySet(t *testing.T) {
	sets := map[string]map[int]struct{}{"e": {}, "f": {1: {}}}
	m := Overlaps([]string{"e", "f"}, sets)
	if m.AnyOther[0] != 0 {
		t.Fatal("empty set overlap must be 0")
	}
}

func TestAddrSetAndASSetOf(t *testing.T) {
	db := testDB()
	addrs := []ipaddr.Addr{ipaddr.MustParse("2001:db8::1"), ipaddr.MustParse("2600::1")}
	if got := len(AddrSet(addrs)); got != 2 {
		t.Fatalf("AddrSet = %d", got)
	}
	if got := len(ASSetOf(addrs, db)); got != 2 {
		t.Fatalf("ASSetOf = %d", got)
	}
}
