package metrics_test

import (
	"fmt"

	"seedscan/internal/metrics"
)

func ExamplePerformanceRatio() {
	// §4.1: 0 = unchanged, +1 = doubled, -1 = gone.
	fmt.Println(metrics.PerformanceRatio(200, 100))
	fmt.Println(metrics.PerformanceRatio(100, 100))
	fmt.Println(metrics.PerformanceRatio(50, 100))
	// Output:
	// 1
	// 0
	// -0.5
}

func ExampleGreedyCover() {
	// Figure 6's construction: order generators by marginal contribution.
	sets := map[string]map[int]struct{}{
		"6Sense": {1: {}, 2: {}, 3: {}},
		"6Tree":  {3: {}, 4: {}},
		"6Scan":  {4: {}},
	}
	for _, c := range metrics.GreedyCover(sets) {
		fmt.Printf("%s +%d -> %d\n", c.Name, c.New, c.Total)
	}
	// Output:
	// 6Sense +3 -> 3
	// 6Scan +1 -> 4
	// 6Tree +0 -> 4
}
