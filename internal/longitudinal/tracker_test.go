package longitudinal

import (
	"math"
	"testing"

	"seedscan/internal/ipaddr"
)

func addr(lo uint64) ipaddr.Addr {
	return ipaddr.MustParse("2001:db8::").AddLo(lo)
}

// observe runs one epoch over a fixed probe list with the given subset up.
func observe(t *Tracker, epoch int, probed []ipaddr.Addr, up ...ipaddr.Addr) ObserveStats {
	return t.Observe(epoch, probed, ipaddr.NewSet(up...))
}

func TestTrackerLifetimeAndFlaps(t *testing.T) {
	tr := NewTracker(0.5, 3)
	a := addr(1)
	probed := []ipaddr.Addr{a}

	observe(tr, 1, probed, a)  // up
	observe(tr, 2, probed, a)  // up
	observe(tr, 3, probed)     // down  (flap 1)
	observe(tr, 4, probed, a)  // up    (flap 2)
	st := tr.State(a)
	if st == nil {
		t.Fatal("no state")
	}
	if st.FirstSeen != 1 || st.LastSeen != 4 || st.Lifetime() != 4 {
		t.Fatalf("lifetime fields: %+v", st)
	}
	if st.Observed != 4 || st.UpCount != 3 || st.Flaps != 2 {
		t.Fatalf("counters: %+v", st)
	}
	if !st.Up || st.ConsecUp != 1 || st.ConsecDown != 0 {
		t.Fatalf("streaks: %+v", st)
	}
	// EWMA with alpha=0.5 over changed-indicators 0,0,1,1: 0, 0, .5, .75.
	if math.Abs(st.Volatility-0.75) > 1e-9 {
		t.Fatalf("volatility = %v, want 0.75", st.Volatility)
	}
	// Holding steady decays it geometrically.
	observe(tr, 5, probed, a)
	if math.Abs(st.Volatility-0.375) > 1e-9 {
		t.Fatalf("decayed volatility = %v, want 0.375", st.Volatility)
	}
}

func TestTrackerStaleConfirmationAndResurrection(t *testing.T) {
	tr := NewTracker(0.5, 3)
	a := addr(7)
	probed := []ipaddr.Addr{a}

	observe(tr, 1, probed, a)
	for e := 2; e <= 4; e++ {
		stats := observe(tr, e, probed)
		wantStale := e == 4 // third consecutive down
		if got := stats.NewlyStale == 1; got != wantStale {
			t.Fatalf("epoch %d: newly stale = %v", e, stats.NewlyStale)
		}
	}
	st := tr.State(a)
	if !st.Stale || st.ConsecDown != 3 {
		t.Fatalf("not confirmed stale: %+v", st)
	}
	if got := tr.ConfirmedStale(); len(got) != 1 || got[0] != a {
		t.Fatalf("ConfirmedStale = %v", got)
	}
	if tr.Alive().Contains(a) {
		t.Fatal("stale address reported alive")
	}

	// A response resurrects it.
	stats := observe(tr, 5, probed, a)
	if stats.Resurrected != 1 || st.Stale || tr.StaleCount() != 0 {
		t.Fatalf("resurrection failed: stats=%+v state=%+v", stats, st)
	}
}

func TestTrackerPrefix64Aggregation(t *testing.T) {
	tr := NewTracker(0.5, 3)
	// Two /64s: one with a flappy member, one all-stable.
	p1a, p1b := addr(1), addr(2)
	p2 := ipaddr.MustParse("2001:db8:0:1::").AddLo(1)
	probed := []ipaddr.Addr{p1a, p1b, p2}

	observe(tr, 1, probed, p1a, p1b, p2)
	observe(tr, 2, probed, p1b, p2) // p1a flaps down
	observe(tr, 3, probed, p1a, p1b, p2)

	prefixes := tr.Prefixes64()
	if len(prefixes) != 2 {
		t.Fatalf("got %d /64s", len(prefixes))
	}
	flappy, stable := prefixes[0], prefixes[1]
	if flappy.Members != 2 || flappy.Flaps != 2 || flappy.Alive != 2 {
		t.Fatalf("flappy /64: %+v", flappy)
	}
	if flappy.Volatility <= stable.Volatility {
		t.Fatalf("flappy /64 volatility %v not above stable %v", flappy.Volatility, stable.Volatility)
	}
	if stable.Flaps != 0 || stable.Volatility != 0 {
		t.Fatalf("stable /64: %+v", stable)
	}
}

func TestSchedulerPriorityAndBudget(t *testing.T) {
	tr := NewTracker(0.5, 3)
	fresh := addr(100)                       // never probed
	down := addr(101)                        // pending stale confirmation
	flappy := addr(102)                      // volatile
	stale := addr(103)                       // confirmed stale
	stables := []ipaddr.Addr{}
	for i := uint64(0); i < 8; i++ {
		stables = append(stables, ipaddr.MustParse("2001:db8:1::").AddLo(i))
	}

	warm := append([]ipaddr.Addr{down, flappy, stale}, stables...)
	observe(tr, 1, warm, append([]ipaddr.Addr{down, flappy}, stables...)...)
	observe(tr, 2, warm, append([]ipaddr.Addr{down}, stables...)...) // flappy down, stale down 1
	observe(tr, 3, warm, append([]ipaddr.Addr{flappy}, stables...)...)
	observe(tr, 4, warm, append([]ipaddr.Addr{flappy}, stables...)...) // stale: down 3 → confirmed

	if tr.State(stale).Stale != true {
		t.Fatal("setup: stale not confirmed")
	}

	universe := ipaddr.DedupSorted(append([]ipaddr.Addr{fresh, down, flappy, stale}, stables...))
	s := NewScheduler(SchedulerConfig{StableEvery: 4, VolatilityFloor: 0.05})
	sel := s.Select(5, universe, tr)

	if sel.Eligible != len(universe)-1 {
		t.Fatalf("eligible = %d, want %d (stale excluded)", sel.Eligible, len(universe)-1)
	}
	inTargets := func(a ipaddr.Addr) bool {
		for _, x := range sel.Targets {
			if x == a {
				return true
			}
		}
		return false
	}
	if !inTargets(fresh) || sel.New != 1 {
		t.Fatalf("fresh candidate not scheduled: %+v", sel)
	}
	if !inTargets(down) || sel.PendingStale != 1 {
		t.Fatalf("pending-stale not scheduled: %+v", sel)
	}
	if !inTargets(flappy) || sel.Volatile < 1 {
		t.Fatalf("volatile not scheduled: %+v", sel)
	}
	if inTargets(stale) {
		t.Fatal("confirmed-stale scheduled")
	}
	if sel.StableRefresh >= len(stables) {
		t.Fatalf("stable rotation probed everything (%d of %d)", sel.StableRefresh, len(stables))
	}
	if sel.Saved != sel.Eligible-len(sel.Targets) || sel.Saved <= 0 {
		t.Fatalf("saved = %d (eligible %d, probed %d)", sel.Saved, sel.Eligible, len(sel.Targets))
	}

	// A hard budget truncates in priority order: the fresh candidate and
	// the pending-stale confirmation survive a budget of 2.
	tight := NewScheduler(SchedulerConfig{Budget: 2, StableEvery: 4})
	tsel := tight.Select(5, universe, tr)
	if len(tsel.Targets) != 2 || tsel.New != 1 || tsel.PendingStale != 1 || tsel.Volatile != 0 {
		t.Fatalf("budget truncation: %+v", tsel)
	}
}

// TestSchedulerRotationCoversStableMass asserts every stable address is
// probed at least once within any StableEvery consecutive epochs — the
// staleness-detection lag bound.
func TestSchedulerRotationCoversStableMass(t *testing.T) {
	tr := NewTracker(0.5, 3)
	var universe []ipaddr.Addr
	for i := uint64(0); i < 500; i++ {
		universe = append(universe, ipaddr.MustParse("2001:db8:2::").AddLo(i*7))
	}
	universe = ipaddr.DedupSorted(universe)
	observe(tr, 1, universe, universe...) // all stable and up

	const stableEvery = 4
	s := NewScheduler(SchedulerConfig{StableEvery: stableEvery})
	probed := ipaddr.NewSet()
	for e := 2; e < 2+stableEvery; e++ {
		sel := s.Select(e, universe, tr)
		probed.AddAll(sel.Targets)
		// Each slice is roughly a quarter of the mass, never all of it.
		if len(sel.Targets) == len(universe) {
			t.Fatalf("epoch %d probed the full universe", e)
		}
	}
	if probed.Len() != len(universe) {
		t.Fatalf("rotation covered %d of %d within %d epochs", probed.Len(), len(universe), stableEvery)
	}

	// Determinism: the same epoch plans the same targets.
	a := s.Select(9, universe, tr)
	b := s.Select(9, universe, tr)
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("selection not deterministic")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatal("selection not deterministic")
		}
	}
}
