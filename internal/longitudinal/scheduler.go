package longitudinal

import (
	"sort"

	"seedscan/internal/ipaddr"
)

// Default scheduler parameters.
const (
	// DefaultStableEvery is the stable-host refresh period: a host the
	// model considers stable is re-probed once every this many epochs, on
	// a rotation determined by its address hash — the bound on how long a
	// quiet death can go unnoticed.
	DefaultStableEvery = 4
	// DefaultVolatilityFloor separates "probe every epoch" from "rotate":
	// addresses whose predicted volatility is below it join the stable
	// rotation instead of the per-epoch volatile class.
	DefaultVolatilityFloor = 0.05
)

// SchedulerConfig sizes a Scheduler. Zero values get defaults; Budget 0
// means unlimited.
type SchedulerConfig struct {
	// Budget caps how many targets one epoch may probe.
	Budget int
	// StableEvery is the stable-host refresh period.
	StableEvery int
	// VolatilityFloor is the volatile-class threshold.
	VolatilityFloor float64
	// Seed keys the rotation hash, so two daemons over the same universe
	// can stagger their refresh phases.
	Seed uint64
}

func (c *SchedulerConfig) fillDefaults() {
	if c.StableEvery <= 0 {
		c.StableEvery = DefaultStableEvery
	}
	if c.VolatilityFloor <= 0 {
		c.VolatilityFloor = DefaultVolatilityFloor
	}
}

// Selection is one epoch's probe plan. Targets is sorted; the class
// counters report how the budget was spent and Saved how many eligible
// (non-stale) universe addresses were skipped — the probes a full
// re-scan would have spent.
type Selection struct {
	Targets []ipaddr.Addr
	// New counts never-probed candidates; PendingStale addresses mid
	// stale confirmation; Volatile the predicted-volatile class;
	// StableRefresh the rotation slice of the stable mass.
	New, PendingStale, Volatile, StableRefresh int
	// Eligible is the non-stale universe size; Saved = Eligible − probed.
	Eligible, Saved int
}

// Scheduler turns tracker state into a budgeted, volatility-prioritized
// probe plan. Selection is deterministic: identical tracker state and
// universe produce identical plans, which the daemon's resume depends on.
type Scheduler struct {
	cfg SchedulerConfig
}

// NewScheduler builds a scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg.fillDefaults()
	return &Scheduler{cfg: cfg}
}

// rotHash is a splitmix64-style mix placing an address on the stable
// rotation wheel.
func rotHash(seed uint64, a ipaddr.Addr) uint64 {
	x := seed ^ a.Hi() ^ (a.Lo() * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Select plans one epoch's probes over the universe (sorted, deduplicated
// addresses). Priority order under the budget cap:
//
//  1. never-probed candidates (every address deserves one observation),
//  2. addresses pending stale confirmation (down, not yet confirmed —
//     probed every epoch until resolved, the cool-down),
//  3. the volatile class, most volatile first (predicted volatility is
//     the address EWMA blended with its /64's mean, so one flappy host
//     raises suspicion on its whole prefix),
//  4. the stable rotation slice for this epoch.
//
// Confirmed-stale addresses are not probed at all — they re-enter only
// through the universe changing (or a later resurrection policy).
func (s *Scheduler) Select(epoch int, universe []ipaddr.Addr, tr *Tracker) Selection {
	// Pass 1: per-/64 mean volatility over the observed universe.
	type agg struct {
		sum float64
		n   int
	}
	vol64 := make(map[uint64]*agg)
	for _, a := range universe {
		if st := tr.State(a); st != nil {
			g, ok := vol64[a.Hi()]
			if !ok {
				g = &agg{}
				vol64[a.Hi()] = g
			}
			g.sum += st.Volatility
			g.n++
		}
	}
	mean64 := func(a ipaddr.Addr) float64 {
		if g, ok := vol64[a.Hi()]; ok && g.n > 0 {
			return g.sum / float64(g.n)
		}
		return 0
	}

	// Pass 2: classify.
	type volAddr struct {
		a ipaddr.Addr
		v float64
	}
	var (
		sel      Selection
		news     []ipaddr.Addr
		pending  []ipaddr.Addr
		volatile []volAddr
		stable   []ipaddr.Addr
	)
	for _, a := range universe {
		st := tr.State(a)
		switch {
		case st == nil:
			news = append(news, a)
		case st.Stale:
			continue // dropped from probing entirely
		case st.ConsecDown >= 1:
			pending = append(pending, a)
		default:
			v := st.Volatility
			if m := mean64(a) / 2; m > v {
				v = m
			}
			if v >= s.cfg.VolatilityFloor {
				volatile = append(volatile, volAddr{a, v})
			} else {
				stable = append(stable, a)
			}
		}
		sel.Eligible++
	}
	sort.SliceStable(volatile, func(i, j int) bool {
		if volatile[i].v != volatile[j].v {
			return volatile[i].v > volatile[j].v
		}
		return volatile[i].a.Less(volatile[j].a)
	})

	budget := s.cfg.Budget
	if budget <= 0 {
		budget = sel.Eligible
	}
	take := func(n int) int {
		if room := budget - len(sel.Targets); n > room {
			n = room
		}
		return n
	}

	n := take(len(news))
	sel.Targets = append(sel.Targets, news[:n]...)
	sel.New = n

	n = take(len(pending))
	sel.Targets = append(sel.Targets, pending[:n]...)
	sel.PendingStale = n

	n = take(len(volatile))
	for _, va := range volatile[:n] {
		sel.Targets = append(sel.Targets, va.a)
	}
	sel.Volatile = n

	phase := uint64(epoch) % uint64(s.cfg.StableEvery)
	for _, a := range stable {
		if len(sel.Targets) >= budget {
			break
		}
		if rotHash(s.cfg.Seed, a)%uint64(s.cfg.StableEvery) == phase {
			sel.Targets = append(sel.Targets, a)
			sel.StableRefresh++
		}
	}

	sel.Saved = sel.Eligible - len(sel.Targets)
	sort.Slice(sel.Targets, func(i, j int) bool { return sel.Targets[i].Less(sel.Targets[j]) })
	return sel
}
