// Package longitudinal runs scanning as an ongoing service rather than a
// one-shot experiment: an epoch-driven daemon re-scans a budgeted target
// set as the world's epoch clock advances, tracks per-address and per-/64
// lifetime, stability, and volatility, confirms stale seeds instead of
// trusting a single miss, and publishes each epoch's believed-alive view
// as a new hitlistdb generation.
//
// This is the paper's §6.2 staleness critique turned into machinery: the
// published hitlist decays between builds, and a scanner that re-scans
// everything every epoch wastes most of its budget confirming what it
// already knows. The volatility-prioritized scheduler spends probes where
// the answer is uncertain — new candidates, hosts pending stale
// confirmation, flappy addresses — and only rotates slowly through the
// stable mass.
//
// The package deliberately does not import internal/experiment: the
// experiment harness builds RQ5's metrics-over-time table on top of a
// Daemon, not the other way around.
package longitudinal

import (
	"sort"

	"seedscan/internal/ipaddr"
)

// Default tracker parameters.
const (
	// DefaultStaleAfter is how many consecutive down observations confirm
	// an address stale. One miss is routinely a flap or packet loss; the
	// cool-down mirrors the dealiasing daemon's confirm-then-cool rule.
	DefaultStaleAfter = 3
	// DefaultAlpha is the EWMA weight of the newest flap observation.
	DefaultAlpha = 0.5
)

// AddrState is the tracked longitudinal state of one address. Epoch
// numbers are world epochs; counters cover probed epochs only (an epoch
// the scheduler skipped an address leaves its state untouched).
type AddrState struct {
	// FirstSeen / LastSeen are the first and most recent epochs the
	// address answered. Zero values are meaningless until UpCount > 0.
	FirstSeen int
	LastSeen  int
	// LastProbed is the most recent epoch the address was probed.
	LastProbed int
	// Observed counts probed epochs; UpCount how many answered.
	Observed int
	UpCount  int
	// Flaps counts observed up↔down transitions (either direction).
	Flaps int
	// ConsecDown / ConsecUp are the current observation streaks.
	ConsecDown int
	ConsecUp   int
	// Up is the most recent observation.
	Up bool
	// Volatility is the EWMA of the state-changed indicator: 1 when an
	// observation differed from the previous one, 0 when it repeated it.
	// It decays geometrically while an address holds steady, so a host
	// that flapped long ago eventually reads as stable again.
	Volatility float64
	// Stale is set once ConsecDown reaches the tracker's threshold and
	// cleared if the address ever answers again (a resurrection).
	Stale bool
}

// Lifetime is the observed alive span in epochs (inclusive); zero before
// the first response.
func (s *AddrState) Lifetime() int {
	if s.UpCount == 0 {
		return 0
	}
	return s.LastSeen - s.FirstSeen + 1
}

// ObserveStats summarizes one Observe call.
type ObserveStats struct {
	// Probed / Up are the observation counts of this epoch.
	Probed, Up int
	// Flaps counts state changes observed this epoch.
	Flaps int
	// NewlyStale counts addresses whose stale status was confirmed this
	// epoch; Resurrected counts confirmed-stale addresses that answered.
	NewlyStale, Resurrected int
}

// Tracker folds per-epoch scan observations into longitudinal state. It
// is a deterministic pure fold: replaying the same (epoch, probed,
// responsive) sequence reproduces identical state, which is what lets a
// killed daemon rebuild itself from checkpointed cell results.
//
// Not safe for concurrent use; the daemon observes one epoch at a time.
type Tracker struct {
	alpha      float64
	staleAfter int
	states     map[ipaddr.Addr]*AddrState
}

// NewTracker builds a tracker. Non-positive parameters get the defaults.
func NewTracker(alpha float64, staleAfter int) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	return &Tracker{alpha: alpha, staleAfter: staleAfter, states: make(map[ipaddr.Addr]*AddrState)}
}

// StaleAfter returns the confirmation threshold.
func (t *Tracker) StaleAfter() int { return t.staleAfter }

// Len reports how many addresses have been observed at least once.
func (t *Tracker) Len() int { return len(t.states) }

// State returns the tracked state of a, or nil if a was never probed.
// The returned pointer is live; callers must not mutate it.
func (t *Tracker) State(a ipaddr.Addr) *AddrState { return t.states[a] }

// Observe folds one epoch's scan into the tracker: every address in
// probed was sent a probe, and responded iff it is in responsive.
func (t *Tracker) Observe(epoch int, probed []ipaddr.Addr, responsive *ipaddr.Set) ObserveStats {
	var stats ObserveStats
	for _, a := range probed {
		up := responsive != nil && responsive.Contains(a)
		st, ok := t.states[a]
		if !ok {
			st = &AddrState{}
			t.states[a] = st
		}
		changed := st.Observed > 0 && st.Up != up
		st.LastProbed = epoch
		st.Observed++
		stats.Probed++
		if changed {
			st.Flaps++
			stats.Flaps++
			st.Volatility = t.alpha + (1-t.alpha)*st.Volatility
		} else {
			st.Volatility = (1 - t.alpha) * st.Volatility
		}
		st.Up = up
		if up {
			stats.Up++
			st.UpCount++
			st.ConsecUp++
			st.ConsecDown = 0
			if st.UpCount == 1 {
				st.FirstSeen = epoch
			}
			st.LastSeen = epoch
			if st.Stale {
				st.Stale = false
				stats.Resurrected++
			}
		} else {
			st.ConsecDown++
			st.ConsecUp = 0
			if !st.Stale && st.ConsecDown >= t.staleAfter {
				st.Stale = true
				stats.NewlyStale++
			}
		}
	}
	return stats
}

// Alive returns the believed-alive set: every address whose most recent
// observation was a response and which is not confirmed stale.
func (t *Tracker) Alive() *ipaddr.Set {
	out := ipaddr.NewSet()
	for a, st := range t.states {
		if st.Up && !st.Stale {
			out.Add(a)
		}
	}
	return out
}

// ConfirmedStale returns the confirmed-stale addresses, sorted — the
// seeds a treatment construction should drop.
func (t *Tracker) ConfirmedStale() []ipaddr.Addr {
	var out []ipaddr.Addr
	for a, st := range t.states {
		if st.Stale {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// StaleCount reports how many addresses are currently confirmed stale.
func (t *Tracker) StaleCount() int {
	n := 0
	for _, st := range t.states {
		if st.Stale {
			n++
		}
	}
	return n
}

// Prefix64 aggregates tracked state over one /64 — the granularity the
// paper's TGAs target and the natural unit of routing-level churn.
type Prefix64 struct {
	Prefix  ipaddr.Prefix
	Members int
	Flaps   int
	// Volatility is the mean member volatility.
	Volatility float64
	// Alive counts believed-alive members.
	Alive int
}

// Prefixes64 returns the per-/64 aggregation, sorted by prefix.
func (t *Tracker) Prefixes64() []Prefix64 {
	agg := make(map[uint64]*Prefix64)
	for a, st := range t.states {
		hi := a.Hi()
		p, ok := agg[hi]
		if !ok {
			p = &Prefix64{Prefix: ipaddr.PrefixFrom(a, 64)}
			agg[hi] = p
		}
		p.Members++
		p.Flaps += st.Flaps
		p.Volatility += st.Volatility
		if st.Up && !st.Stale {
			p.Alive++
		}
	}
	out := make([]Prefix64, 0, len(agg))
	for _, p := range agg {
		p.Volatility /= float64(p.Members)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Addr().Less(out[j].Prefix.Addr()) })
	return out
}
