package longitudinal

import (
	"context"
	"fmt"
	"time"

	"seedscan/internal/alias"
	"seedscan/internal/experiment/grid"
	"seedscan/internal/hitlist"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/world"
)

// Prober is the daemon's scanning dependency (satisfied by
// *scanner.Scanner and *cluster.Pool) — an alias of the shared
// scanner.Prober definition.
type Prober = scanner.Prober

// ContextProber is the cancellable prober variant; when the configured
// Prober also implements it, epoch scans honor mid-scan cancellation.
type ContextProber = scanner.ContextProber

// Cohort is a named address set whose persistence the daemon reports per
// epoch — e.g. the hits of a TGA run, re-checked epoch after epoch.
// Cohort members join the scan universe.
type Cohort struct {
	Name  string
	Addrs []ipaddr.Addr
}

// Config assembles a Daemon.
type Config struct {
	// World is the synthetic Internet whose epoch clock the daemon
	// advances; Prober scans against it.
	World  *world.World
	Prober Prober
	// Corpus is the initial seed universe (typically the union of seed
	// sources, dealiased).
	Corpus []ipaddr.Addr
	// Cohorts are extra tracked address sets (see Cohort).
	Cohorts []Cohort
	// Proto is the probing protocol.
	Proto proto.Protocol
	// StartEpoch is the first scan epoch (default world.ScanEpoch);
	// Epochs how many consecutive epochs to run (required).
	StartEpoch int
	Epochs     int
	// Budget caps probes per epoch (0 = unlimited); BatchSize is recorded
	// on the grid cells (default 1024).
	Budget    int
	BatchSize int
	// StaleAfter / StableEvery / VolatilityFloor / Alpha tune the tracker
	// and scheduler (zero values get the package defaults).
	StaleAfter      int
	StableEvery     int
	VolatilityFloor float64
	Alpha           float64
	// Fingerprint is the environment content address for cell keys; Store
	// checkpoints per-epoch cells so a killed daemon resumes
	// byte-identically. Nil Store still runs (no persistence).
	Fingerprint string
	Store       grid.Store
	// Publish, when set, receives one hitlistdb generation per epoch: the
	// believed-alive view, stamped with the epoch. On resume, epochs at
	// or below the published epoch are not re-published.
	Publish *hitlistdb.Store
	// AliasedPrefixes is the known aliased-prefix list, published with
	// every snapshot and used to classify alias hits per epoch.
	AliasedPrefixes []ipaddr.Prefix
	// Telemetry receives longitudinal.* metrics and epoch spans.
	Telemetry *telemetry.Tracer
}

// CohortStat is one cohort's believed state after an epoch.
type CohortStat struct {
	Name string
	// Alive members responded at their most recent probe; Seen members
	// have been probed at least once; Total is the cohort size.
	Alive, Seen, Total int
}

// EpochReport is one epoch's outcome. Everything except Duration and
// Generation is a pure function of the seed and configuration, which is
// what the resume-equivalence guarantee is stated over.
type EpochReport struct {
	Epoch  int
	Probed int
	Hits   int
	// Scheduler class sizes and savings (see Selection).
	New, PendingStale, Volatile, StableRefresh int
	Eligible, Saved                            int
	// Flaps / NewlyStale / Resurrected are this epoch's observations;
	// ConfirmedStale is the cumulative confirmed-stale count after it.
	Flaps, NewlyStale, Resurrected int
	ConfirmedStale                 int
	// Alive is the believed-alive universe size after the epoch;
	// AliveSeeds restricts that to the original corpus (the seed decay
	// curve).
	Alive, AliveSeeds int
	// AliasPrefixes are the /96s (alias.AliasPrefixBits) of this epoch's
	// hits inside the known aliased-prefix list, sorted — consecutive
	// epochs' symmetric difference is the alias-set drift metric.
	AliasPrefixes []ipaddr.Prefix
	// Cohorts reports per-cohort persistence.
	Cohorts []CohortStat
	// Generation is the hitlistdb generation this epoch published (0 when
	// publishing is disabled); Duration the wall-clock epoch time.
	Generation uint64
	Duration   time.Duration
}

// Daemon is the longitudinal scanning service: per epoch it selects a
// budgeted target set, scans it as one checkpointed grid cell, folds the
// observations into the tracker, and publishes the believed-alive view.
type Daemon struct {
	cfg     Config
	tr      *telemetry.Tracer
	tracker *Tracker
	sched   *Scheduler
	engine  *grid.Engine
	offline *alias.OfflineList

	universe  []ipaddr.Addr // corpus ∪ cohorts, sorted unique
	corpusSet *ipaddr.Set

	// pending carries the current epoch's targets to the cell executor
	// (cells embed only the target digest; the daemon runs one cell at a
	// time, so a single slot suffices).
	pending []ipaddr.Addr

	reports []EpochReport
}

// New assembles a daemon.
func New(cfg Config) (*Daemon, error) {
	if cfg.World == nil || cfg.Prober == nil {
		return nil, fmt.Errorf("longitudinal: world and prober required")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("longitudinal: Epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.StartEpoch <= 0 {
		cfg.StartEpoch = world.ScanEpoch
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	tr := cfg.Telemetry
	if tr == nil {
		tr = telemetry.NewTracer(nil)
	}
	d := &Daemon{
		cfg:     cfg,
		tr:      tr,
		tracker: NewTracker(cfg.Alpha, cfg.StaleAfter),
		sched: NewScheduler(SchedulerConfig{
			Budget:          cfg.Budget,
			StableEvery:     cfg.StableEvery,
			VolatilityFloor: cfg.VolatilityFloor,
		}),
		offline:   alias.NewOfflineList(cfg.AliasedPrefixes),
		corpusSet: ipaddr.NewSet(cfg.Corpus...),
	}
	universe := append([]ipaddr.Addr(nil), cfg.Corpus...)
	for _, c := range cfg.Cohorts {
		universe = append(universe, c.Addrs...)
	}
	d.universe = ipaddr.DedupSorted(universe)
	d.engine = grid.NewEngine(grid.Config{
		Fingerprint: cfg.Fingerprint,
		Store:       cfg.Store,
		Workers:     1, // epochs are inherently sequential
		Telemetry:   tr,
		Exec:        d.exec,
	})
	return d, nil
}

// Universe returns the daemon's full target universe (sorted).
func (d *Daemon) Universe() []ipaddr.Addr { return d.universe }

// Tracker exposes the longitudinal state (read-only use).
func (d *Daemon) Tracker() *Tracker { return d.tracker }

// Reports returns the per-epoch reports accumulated so far.
func (d *Daemon) Reports() []EpochReport { return d.reports }

// LiveSeeds returns the corpus minus confirmed-stale addresses, sorted —
// the treatment-construction feedback loop: a TGA seeded from this list
// does not waste model mass on seeds the daemon has confirmed dead.
func (d *Daemon) LiveSeeds() []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, a := range d.corpusSet.Sorted() {
		if st := d.tracker.State(a); st == nil || !st.Stale {
			out = append(out, a)
		}
	}
	return out
}

// epochCell is the content address of one epoch's scan: the epoch and
// the digest of the exact target set, so a resumed daemon only reuses a
// checkpoint when its replayed scheduling chose the same targets.
func (d *Daemon) epochCell(epoch int, targets []ipaddr.Addr) grid.Cell {
	return grid.Cell{
		Gen:       "daemon",
		Treatment: grid.Treatment(fmt.Sprintf("epoch:%d|targets:%016x", epoch, ipaddr.Digest(targets))),
		Proto:     d.cfg.Proto,
		Budget:    len(targets),
		BatchSize: d.cfg.BatchSize,
	}
}

// exec scans the pending target set at the pending epoch. The world's
// epoch was already advanced by Run; hits are sorted so the checkpointed
// result is canonical regardless of scan-plan shuffling.
func (d *Daemon) exec(ctx context.Context, c grid.Cell) (grid.CellResult, error) {
	targets := append([]ipaddr.Addr(nil), d.pending...) // scanners shuffle in place
	var hits []ipaddr.Addr
	if cp, ok := d.cfg.Prober.(ContextProber); ok {
		var err error
		hits, err = cp.ScanActiveContext(ctx, targets, d.cfg.Proto)
		if err != nil {
			return grid.CellResult{}, err
		}
	} else {
		hits = d.cfg.Prober.ScanActive(targets, d.cfg.Proto)
	}
	return grid.CellResult{Hits: ipaddr.DedupSorted(hits)}, nil
}

// Run executes the configured epoch range. It restores the world's epoch
// on return so surrounding code (the experiment harness) is undisturbed.
// Reports cover every epoch run in this call; on context cancellation the
// completed epochs' reports are returned alongside the error.
func (d *Daemon) Run(ctx context.Context) ([]EpochReport, error) {
	prevEpoch := d.cfg.World.Epoch()
	defer d.cfg.World.SetEpoch(prevEpoch)
	reg := d.tr.Registry()

	first := len(d.reports)
	for e := d.cfg.StartEpoch; e < d.cfg.StartEpoch+d.cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return d.reports[first:], err
		}
		rep, err := d.runEpoch(ctx, e)
		if err != nil {
			return d.reports[first:], err
		}
		d.reports = append(d.reports, rep)
		reg.Counter("longitudinal.epochs").Inc()
		reg.Histogram("longitudinal.epoch.seconds").Observe(rep.Duration.Seconds())
		reg.Counter("longitudinal.probes.sent").Add(int64(rep.Probed))
		reg.Counter("longitudinal.probes.saved").Add(int64(rep.Saved))
		reg.Gauge("longitudinal.stale.confirmed").Set(float64(rep.ConfirmedStale))
		reg.Gauge("longitudinal.alive").Set(float64(rep.Alive))
		reg.Gauge("longitudinal.epoch").Set(float64(e))
	}
	return d.reports[first:], nil
}

// runEpoch runs one epoch: select, scan (checkpointed), observe, publish.
func (d *Daemon) runEpoch(ctx context.Context, epoch int) (EpochReport, error) {
	start := time.Now()
	span := d.tr.StartSpan("longitudinal.epoch", telemetry.Attrs{"epoch": epoch})

	sel := d.sched.Select(epoch, d.universe, d.tracker)
	d.cfg.World.SetEpoch(epoch)

	var hits []ipaddr.Addr
	if len(sel.Targets) > 0 {
		cell := d.epochCell(epoch, sel.Targets)
		d.pending = sel.Targets
		res, err := d.engine.Run(ctx, grid.Spec{Name: fmt.Sprintf("longitudinal-epoch-%d", epoch), Cells: []grid.Cell{cell}})
		d.pending = nil
		if err != nil {
			span.EndWith(telemetry.Attrs{"error": err.Error()})
			return EpochReport{}, err
		}
		hits = res.Of(cell).Hits
	}
	hitSet := ipaddr.NewSet(hits...)
	obs := d.tracker.Observe(epoch, sel.Targets, hitSet)

	rep := EpochReport{
		Epoch:          epoch,
		Probed:         len(sel.Targets),
		Hits:           len(hits),
		New:            sel.New,
		PendingStale:   sel.PendingStale,
		Volatile:       sel.Volatile,
		StableRefresh:  sel.StableRefresh,
		Eligible:       sel.Eligible,
		Saved:          sel.Saved,
		Flaps:          obs.Flaps,
		NewlyStale:     obs.NewlyStale,
		Resurrected:    obs.Resurrected,
		ConfirmedStale: d.tracker.StaleCount(),
	}

	alive := d.tracker.Alive()
	rep.Alive = alive.Len()
	alive.Each(func(a ipaddr.Addr) {
		if d.corpusSet.Contains(a) {
			rep.AliveSeeds++
		}
	})

	// Alias hits: this epoch's responsive addresses inside the known
	// aliased-prefix list, folded to /96s.
	aliasSet := make(map[ipaddr.Prefix]struct{})
	for _, a := range hits {
		if d.offline.Contains(a) {
			aliasSet[ipaddr.PrefixFrom(a, alias.AliasPrefixBits)] = struct{}{}
		}
	}
	for p := range aliasSet {
		rep.AliasPrefixes = append(rep.AliasPrefixes, p)
	}
	hitlist.SortPrefixes(rep.AliasPrefixes)

	for _, c := range d.cfg.Cohorts {
		cs := CohortStat{Name: c.Name, Total: len(c.Addrs)}
		for _, a := range c.Addrs {
			if st := d.tracker.State(a); st != nil {
				cs.Seen++
				if st.Up && !st.Stale {
					cs.Alive++
				}
			}
		}
		rep.Cohorts = append(rep.Cohorts, cs)
	}

	if d.cfg.Publish != nil {
		gen, err := d.publish(epoch, alive)
		if err != nil {
			span.EndWith(telemetry.Attrs{"error": err.Error()})
			return EpochReport{}, err
		}
		rep.Generation = gen
	}

	rep.Duration = time.Since(start)
	span.EndWith(telemetry.Attrs{
		"probed": rep.Probed, "hits": rep.Hits, "saved": rep.Saved,
		"stale": rep.ConfirmedStale, "generation": rep.Generation,
	})
	return rep, nil
}

// publish writes the epoch's believed-alive view as the next hitlistdb
// generation. A resumed daemon replaying already-published epochs skips
// them: the store's current epoch is authoritative, so a kill+restart
// produces no spurious generations.
func (d *Daemon) publish(epoch int, alive *ipaddr.Set) (uint64, error) {
	if cur := d.cfg.Publish.Current(); cur != nil && cur.Epoch() >= epoch {
		d.tr.Registry().Counter("longitudinal.publish.skipped").Inc()
		return cur.Generation(), nil
	}
	snap := &hitlist.Snapshot{
		BuiltAt:         time.Now(),
		Epoch:           epoch,
		Input:           len(d.universe),
		Responsive:      alive,
		AliasedPrefixes: append([]ipaddr.Prefix(nil), d.cfg.AliasedPrefixes...),
	}
	hitlist.SortPrefixes(snap.AliasedPrefixes)
	for _, p := range proto.All {
		snap.PerProtocol[p] = ipaddr.NewSet()
	}
	snap.PerProtocol[d.cfg.Proto] = alive
	db, err := d.cfg.Publish.Publish(snap)
	if err != nil {
		return 0, fmt.Errorf("longitudinal: publish epoch %d: %w", epoch, err)
	}
	d.tr.Registry().Counter("longitudinal.publishes").Inc()
	return db.Generation(), nil
}
