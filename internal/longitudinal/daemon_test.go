package longitudinal

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"seedscan/internal/experiment/grid"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/world"
)

// oracleProber answers directly from the world's ground truth at its
// current epoch — deterministic and loss-free, so daemon tests can reason
// exactly about recall.
type oracleProber struct{ w *world.World }

func (p oracleProber) ScanActive(targets []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr {
	var hits []ipaddr.Addr
	for _, a := range targets {
		if p.w.ActiveOn(a, pr, p.w.Epoch()) {
			hits = append(hits, a)
		}
	}
	return hits
}

// Scan completes the shared scanner.Prober surface; the daemon scans only
// through the ScanActive side.
func (p oracleProber) Scan(targets []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	out := make([]scanner.Result, len(targets))
	for i, a := range targets {
		st := scanner.StatusSilent
		if p.w.ActiveOn(a, pr, p.w.Epoch()) {
			st = scanner.StatusActive
		}
		out[i] = scanner.Result{Addr: a, Proto: pr, Status: st, Attempts: 1}
	}
	return out
}

// killProber fails the Nth scan call — the moral equivalent of kill -9
// mid-epoch: the interrupted epoch's cell is never checkpointed.
type killProber struct {
	inner  oracleProber
	calls  int
	failAt int
}

func (k *killProber) ScanActive(targets []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr {
	return k.inner.ScanActive(targets, pr)
}

func (k *killProber) ScanActiveContext(_ context.Context, targets []ipaddr.Addr, pr proto.Protocol) ([]ipaddr.Addr, error) {
	k.calls++
	if k.calls == k.failAt {
		return nil, context.Canceled
	}
	return k.inner.ScanActive(targets, pr), nil
}

// Scan / ScanContext complete the shared prober surfaces; the daemon's
// epoch scans go through ScanActiveContext, where the kill is planted.
func (k *killProber) Scan(targets []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	return k.inner.Scan(targets, pr)
}

func (k *killProber) ScanContext(ctx context.Context, targets []ipaddr.Addr, pr proto.Protocol) ([]scanner.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return k.inner.Scan(targets, pr), nil
}

// testCorpus collects the union of every seed source from a fresh world.
func testCorpus(t testing.TB, seed uint64) (*world.World, []ipaddr.Addr) {
	t.Helper()
	w := world.New(world.Config{Seed: seed, NumASes: 40, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.3})
	set := ipaddr.NewSet()
	for _, ds := range srcs {
		set.AddSet(ds.Addrs)
	}
	corpus := set.Sorted()
	if len(corpus) < 500 {
		t.Fatalf("corpus too thin: %d", len(corpus))
	}
	return w, corpus
}

// normalize strips the two fields resume cannot reproduce: wall-clock
// duration and (for replayed epochs) the reported generation.
func normalize(reps []EpochReport) []EpochReport {
	out := append([]EpochReport(nil), reps...)
	for i := range out {
		out[i].Duration = 0
		out[i].Generation = 0
	}
	return out
}

// TestDaemonResumeEquivalence is the tentpole guarantee: a daemon killed
// mid-epoch and restarted over the same checkpoint store reproduces the
// reference run's per-epoch reports exactly, and publishes each epoch's
// generation exactly once.
func TestDaemonResumeEquivalence(t *testing.T) {
	const epochs = 6
	cfg := func(w *world.World, corpus []ipaddr.Addr, p Prober, st grid.Store, pub *hitlistdb.Store) Config {
		return Config{
			World: w, Prober: p, Corpus: corpus, Proto: proto.ICMP,
			StartEpoch: 1, Epochs: epochs, StaleAfter: 2, StableEvery: 3,
			Fingerprint: "test-env", Store: st, Publish: pub,
		}
	}

	// Reference run: fresh everything, no interruption.
	wA, corpus := testCorpus(t, 42)
	pubA, err := hitlistdb.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dA, err := New(cfg(wA, corpus, oracleProber{wA}, grid.NewMemStore(), pubA))
	if err != nil {
		t.Fatal(err)
	}
	repsA, err := dA.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(repsA) != epochs {
		t.Fatalf("reference ran %d epochs", len(repsA))
	}

	// Killed run: same seed, its own store and publish dir; the prober
	// dies during the 4th epoch's scan.
	wB, corpusB := testCorpus(t, 42)
	storePath := filepath.Join(t.TempDir(), "cells.jsonl")
	stB1, err := grid.OpenJSONL(storePath)
	if err != nil {
		t.Fatal(err)
	}
	pubDir := t.TempDir()
	pubB1, err := hitlistdb.OpenStore(pubDir)
	if err != nil {
		t.Fatal(err)
	}
	dB1, err := New(cfg(wB, corpusB, &killProber{inner: oracleProber{wB}, failAt: 4}, stB1, pubB1))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := dB1.Run(context.Background())
	if err == nil {
		t.Fatal("killed run did not fail")
	}
	if len(partial) != 3 {
		t.Fatalf("killed run completed %d epochs, want 3", len(partial))
	}
	if stB1.Len() != 3 {
		t.Fatalf("store holds %d cells after kill, want 3", stB1.Len())
	}
	stB1.Close()

	// Resumed run: a fresh daemon over the same store and publish dir
	// replays epochs 1-3 from checkpoints and scans 4-6 live.
	stB2, err := grid.OpenJSONL(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer stB2.Close()
	pubB2, err := hitlistdb.OpenStore(pubDir)
	if err != nil {
		t.Fatal(err)
	}
	wB2, corpusB2 := testCorpus(t, 42)
	dB2, err := New(cfg(wB2, corpusB2, oracleProber{wB2}, stB2, pubB2))
	if err != nil {
		t.Fatal(err)
	}
	repsB, err := dB2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(normalize(repsA), normalize(repsB)) {
		t.Fatalf("resumed reports diverge from reference:\nA: %+v\nB: %+v", normalize(repsA), normalize(repsB))
	}
	if stB2.Len() != epochs {
		t.Fatalf("store holds %d cells after resume, want %d", stB2.Len(), epochs)
	}

	// Publish idempotence: one generation per epoch across kill+restart,
	// each stamped with its epoch; no spurious re-publishes of 1-3.
	for _, pub := range []*hitlistdb.Store{pubA, pubB2} {
		db := pub.Current()
		if db == nil || db.Generation() != epochs || db.Epoch() != epochs {
			t.Fatalf("final generation/epoch = %v", db)
		}
	}

	// The prioritized scheduler actually saves probes once state warms up.
	saved := 0
	for _, r := range repsA[1:] {
		saved += r.Saved
	}
	if saved == 0 {
		t.Fatal("no probes saved across warmed-up epochs")
	}
}

// TestDaemonStaleRecall pins the headline trade: volatility-prioritized
// scheduling probes strictly fewer addresses than full re-scanning while
// confirming the same true deaths (recall no worse), measured against the
// world's ground truth.
func TestDaemonStaleRecall(t *testing.T) {
	const (
		startEpoch  = 1
		epochs      = 10
		staleAfter  = 2
		stableEvery = 3
	)
	run := func(stableEveryCfg int) (*Daemon, []EpochReport, int) {
		w, corpus := testCorpus(t, 5)
		d, err := New(Config{
			World: w, Prober: oracleProber{w}, Corpus: corpus, Proto: proto.ICMP,
			StartEpoch: startEpoch, Epochs: epochs,
			StaleAfter: staleAfter, StableEvery: stableEveryCfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		probes := 0
		for _, r := range reps {
			probes += r.Probed
		}
		return d, reps, probes
	}

	// StableEvery=1 degenerates the scheduler into a full re-scan: every
	// non-stale address is probed every epoch.
	prio, _, prioProbes := run(stableEvery)
	full, _, fullProbes := run(1)

	if prioProbes >= fullProbes {
		t.Fatalf("prioritized used %d probes, full re-scan %d", prioProbes, fullProbes)
	}

	// Ground truth: corpus addresses active at the start epoch but down at
	// every epoch from the cutoff on — deaths old enough that both
	// schedulers had time to confirm them (rotation lag + confirmation).
	w, corpus := testCorpus(t, 5)
	cutoff := startEpoch + epochs - 1 - (stableEvery - 1) - staleAfter
	trueDead := ipaddr.NewSet()
	for _, a := range corpus {
		if !w.ActiveOn(a, proto.ICMP, startEpoch) {
			continue
		}
		dead := true
		for e := cutoff; e < startEpoch+epochs; e++ {
			if w.ActiveOn(a, proto.ICMP, e) {
				dead = false
				break
			}
		}
		if dead {
			trueDead.Add(a)
		}
	}
	if trueDead.Len() == 0 {
		t.Fatal("no ground-truth deaths; churn too low for this test to mean anything")
	}

	recall := func(d *Daemon) float64 {
		confirmed := 0
		for _, a := range d.Tracker().ConfirmedStale() {
			if trueDead.Contains(a) {
				confirmed++
			}
		}
		return float64(confirmed) / float64(trueDead.Len())
	}
	rPrio, rFull := recall(prio), recall(full)
	t.Logf("trueDead=%d prio: %d probes recall %.3f; full: %d probes recall %.3f",
		trueDead.Len(), prioProbes, rPrio, fullProbes, rFull)
	if rPrio < rFull {
		t.Fatalf("prioritized recall %.3f below full re-scan %.3f", rPrio, rFull)
	}
	if rPrio < 0.95 {
		t.Fatalf("prioritized recall %.3f; confirmed-stale tracking is broken", rPrio)
	}
}
