package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("counter handle not stable")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	r.ObserveDuration("d", 1)
	r.StartTimer("e").Stop()
	if got := r.Counter("a").Load(); got != 0 {
		t.Fatalf("nil counter = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var tr *Tracer
	sp := tr.StartSpan("x", nil)
	sp.Child("y", nil).EndWith(Attrs{"k": 1})
	sp.Annotate("z", nil)
	sp.End()
	tr.Progress("p", 1, 2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race this is the concurrency contract check.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Counter("own").Add(2)
				r.Gauge("gauge").Set(float64(i))
				r.Histogram("hist").Observe(float64(i%7) + 0.5)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != goroutines*perG {
		t.Fatalf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("own").Load(); got != 2*goroutines*perG {
		t.Fatalf("own = %d", got)
	}
	h := r.Histogram("hist").Stats()
	if h.Count != goroutines*perG {
		t.Fatalf("hist count = %d", h.Count)
	}
	if h.Min != 0.5 || h.Max != 6.5 {
		t.Fatalf("hist min/max = %v/%v", h.Min, h.Max)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 || s.Sum != 31 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 16 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if got := s.Mean(); got != 6.2 {
		t.Fatalf("mean = %v", got)
	}
	// Log-bucket quantiles are exact for powers of two.
	if s.P50 != 4 {
		t.Fatalf("p50 = %v, want 4", s.P50)
	}
	if s.P95 != 16 {
		t.Fatalf("p95 = %v, want 16", s.P95)
	}
	// Non-positive and tiny observations fold into the lowest bucket
	// without panicking.
	h.Observe(0)
	h.Observe(-3)
	h.Observe(1e-12)
	if got := h.Stats().Count; got != 8 {
		t.Fatalf("count = %d", got)
	}
}

func TestTimers(t *testing.T) {
	r := NewRegistry()
	tm := r.StartTimer("wall")
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Fatalf("elapsed = %v", d)
	}
	if got := r.Histogram("wall").Stats().Count; got != 1 {
		t.Fatalf("wall count = %d", got)
	}
	// Virtual-clock durations are recorded as-is.
	r.ObserveDuration("virtual", 12.5)
	s := r.Histogram("virtual").Stats()
	if s.Count != 1 || s.Sum != 12.5 {
		t.Fatalf("virtual = %+v", s)
	}
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner.probes_sent.ICMP").Add(42)
	r.Gauge("scanner.ratelimit.virtual_elapsed_seconds").Set(1.5)
	r.Histogram("scan.seconds").Observe(0.25)
	out := r.Snapshot().Render()
	for _, want := range []string{"scanner.probes_sent.ICMP", "42", "scan.seconds", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
