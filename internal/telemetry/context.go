package telemetry

import "context"

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// EnsureContext attaches t only when ctx does not already carry a tracer —
// callers that accept an external context keep the caller's wiring, while
// context-free wrappers still get their component's default tracer.
func EnsureContext(ctx context.Context, t *Tracer) context.Context {
	if FromContext(ctx) != nil {
		return ctx
	}
	return NewContext(ctx, t)
}

// FromContext returns the tracer carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's current span (or as a
// root span of the context's tracer when none is active) and returns a
// context carrying it. When ctx has no telemetry, the returned span is nil
// — still safe to use — and ctx is returned unchanged.
func StartSpan(ctx context.Context, name string, attrs Attrs) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.Child(name, attrs)
		return ContextWithSpan(ctx, s), s
	}
	if t := FromContext(ctx); t != nil {
		s := t.StartSpan(name, attrs)
		return ContextWithSpan(ctx, s), s
	}
	return ctx, nil
}
