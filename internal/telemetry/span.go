package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attrs carries structured key/value annotations on spans and events.
type Attrs map[string]any

// Event is the unit every sink receives. One JSONL line per event.
type Event struct {
	// Type is one of "span_start", "span_end", "event", "progress",
	// "metrics".
	Type string `json:"type"`
	// TimeUnixNano is the wall-clock emission time.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Span and Parent identify the span (span_* events) or the enclosing
	// span (point events); 0 means none.
	Span   int64 `json:"span,omitempty"`
	Parent int64 `json:"parent,omitempty"`
	// Name is the span or event name.
	Name string `json:"name,omitempty"`
	// DurationMS is set on span_end events.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Done/Total are set on progress events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Attrs holds structured annotations.
	Attrs Attrs `json:"attrs,omitempty"`
	// Metrics holds the registry snapshot on "metrics" events.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Sink consumes telemetry events. Implementations must tolerate concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
	Close() error
}

// Tracer creates spans and dispatches events to its sinks. It owns (or is
// given) a Registry so metric updates and trace events share one wiring
// point. A nil Tracer is fully usable: every method no-ops.
type Tracer struct {
	reg    *Registry
	sinks  []Sink
	nextID atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewTracer builds a tracer over the given registry (a fresh one is
// created when reg is nil) emitting to sinks. Zero sinks is valid: the
// tracer then only carries the registry.
func NewTracer(reg *Registry, sinks ...Sink) *Tracer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Tracer{reg: reg, sinks: sinks}
}

// Registry returns the tracer's metrics registry (nil for a nil tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// emit fans an event out to every sink.
func (t *Tracer) emit(ev Event) {
	if t == nil || len(t.sinks) == 0 {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	sinks := t.sinks
	t.mu.Unlock()
	for _, s := range sinks {
		s.Emit(ev)
	}
}

// Span is one node of the hierarchical trace: a named interval with a
// parent, annotations, and an ID shared by its start/end events. A nil
// Span is usable; Child on a nil span returns nil.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	ended  atomic.Bool
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string, attrs Attrs) *Span {
	return t.startSpan(name, 0, attrs)
}

func (t *Tracer) startSpan(name string, parent int64, attrs Attrs) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	t.emit(Event{
		Type:         "span_start",
		TimeUnixNano: s.start.UnixNano(),
		Span:         s.id,
		Parent:       parent,
		Name:         name,
		Attrs:        attrs,
	})
	return s
}

// Child opens a sub-span of s.
func (s *Span) Child(name string, attrs Attrs) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(name, s.id, attrs)
}

// ID returns the span's identifier (0 for nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Annotate emits a point event inside the span.
func (s *Span) Annotate(name string, attrs Attrs) {
	if s == nil {
		return
	}
	s.t.emit(Event{
		Type:         "event",
		TimeUnixNano: time.Now().UnixNano(),
		Span:         s.id,
		Name:         name,
		Attrs:        attrs,
	})
}

// End closes the span. Idempotent; later calls are ignored.
func (s *Span) End() { s.EndWith(nil) }

// EndWith closes the span, attaching final annotations (batch counts,
// budget consumed, hit totals...) to the span_end event.
func (s *Span) EndWith(attrs Attrs) {
	if s == nil || s.ended.Swap(true) {
		return
	}
	now := time.Now()
	s.t.emit(Event{
		Type:         "span_end",
		TimeUnixNano: now.UnixNano(),
		Span:         s.id,
		Parent:       s.parent,
		Name:         s.name,
		DurationMS:   float64(now.Sub(s.start)) / float64(time.Millisecond),
		Attrs:        attrs,
	})
}

// Event emits a free-standing point event (no span).
func (t *Tracer) Event(name string, attrs Attrs) {
	if t == nil {
		return
	}
	t.emit(Event{Type: "event", TimeUnixNano: time.Now().UnixNano(), Name: name, Attrs: attrs})
}

// Progress reports done-of-total completion for a long-running unit (an
// experiment grid, a multi-batch run). Sinks may render or log it; the
// JSONL sink records it like any other event.
func (t *Tracer) Progress(name string, done, total int) {
	if t == nil {
		return
	}
	t.emit(Event{
		Type:         "progress",
		TimeUnixNano: time.Now().UnixNano(),
		Name:         name,
		Done:         done,
		Total:        total,
	})
}

// Close emits a final "metrics" event carrying the registry snapshot, then
// closes every sink. Safe to call once; a nil tracer no-ops.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	sinks := t.sinks
	t.mu.Unlock()

	snap := t.reg.Snapshot()
	ev := Event{Type: "metrics", TimeUnixNano: time.Now().UnixNano(), Metrics: &snap}
	var firstErr error
	for _, s := range sinks {
		s.Emit(ev)
	}

	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	for _, s := range sinks {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
