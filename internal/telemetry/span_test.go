package telemetry

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// memSink records events for assertions.
type memSink struct {
	mu     sync.Mutex
	events []Event
	closed bool
}

func (m *memSink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

func (m *memSink) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

func (m *memSink) byType(typ string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, ev := range m.events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func TestSpanNesting(t *testing.T) {
	sink := &memSink{}
	tr := NewTracer(nil, sink)

	run := tr.StartSpan("run", Attrs{"generator": "6Tree"})
	batch := run.Child("batch", Attrs{"index": 0})
	gen := batch.Child("generate", nil)
	gen.EndWith(Attrs{"proposed": 128})
	scan := batch.Child("scan", nil)
	scan.End()
	batch.End()
	run.EndWith(Attrs{"hits": 7})

	starts := sink.byType("span_start")
	ends := sink.byType("span_end")
	if len(starts) != 4 || len(ends) != 4 {
		t.Fatalf("starts/ends = %d/%d", len(starts), len(ends))
	}
	byName := map[string]Event{}
	for _, ev := range starts {
		byName[ev.Name] = ev
	}
	if byName["run"].Parent != 0 {
		t.Fatal("run span should be a root")
	}
	if byName["batch"].Parent != byName["run"].Span {
		t.Fatal("batch not nested under run")
	}
	if byName["generate"].Parent != byName["batch"].Span {
		t.Fatal("generate not nested under batch")
	}
	if byName["scan"].Parent != byName["batch"].Span {
		t.Fatal("scan not nested under batch")
	}
	// End events carry durations and final attrs.
	for _, ev := range ends {
		if ev.DurationMS < 0 {
			t.Fatalf("negative duration on %s", ev.Name)
		}
		if ev.Name == "run" && ev.Attrs["hits"] != 7 {
			t.Fatalf("run end attrs = %v", ev.Attrs)
		}
	}
	// Double End is idempotent.
	run.End()
	if got := len(sink.byType("span_end")); got != 4 {
		t.Fatalf("double end emitted: %d", got)
	}
}

func TestProgressAndMetricsEvents(t *testing.T) {
	sink := &memSink{}
	tr := NewTracer(nil, sink)
	tr.Registry().Counter("jobs").Add(3)
	tr.Progress("grid", 1, 10)
	tr.Progress("grid", 2, 10)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	prog := sink.byType("progress")
	if len(prog) != 2 || prog[1].Done != 2 || prog[1].Total != 10 {
		t.Fatalf("progress events = %+v", prog)
	}
	mets := sink.byType("metrics")
	if len(mets) != 1 || mets[0].Metrics == nil || mets[0].Metrics.Counters["jobs"] != 3 {
		t.Fatalf("metrics event = %+v", mets)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
	// Emission after Close is dropped, not racy.
	tr.StartSpan("late", nil).End()
	if got := len(sink.byType("span_start")); got != 0 {
		t.Fatalf("post-close span emitted: %d", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(nil, NewJSONLSink(&buf))
	tr.Registry().Counter("scanner.probes_sent.ICMP").Add(99)
	run := tr.StartSpan("run", Attrs{"budget": 1000})
	batch := run.Child("batch", nil)
	tr.Progress("run", 1, 4)
	batch.EndWith(Attrs{"generated": 64})
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 2 starts + 2 ends + 1 progress + 1 metrics.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	var sawBatchEnd, sawMetrics, sawProgress bool
	for _, ev := range events {
		switch {
		case ev.Type == "span_end" && ev.Name == "batch":
			sawBatchEnd = true
			// JSON round-trips numbers as float64.
			if ev.Attrs["generated"].(float64) != 64 {
				t.Fatalf("batch attrs = %v", ev.Attrs)
			}
		case ev.Type == "metrics":
			sawMetrics = true
			if ev.Metrics.Counters["scanner.probes_sent.ICMP"] != 99 {
				t.Fatalf("metrics = %+v", ev.Metrics)
			}
		case ev.Type == "progress":
			sawProgress = true
		}
	}
	if !sawBatchEnd || !sawMetrics || !sawProgress {
		t.Fatalf("missing events: batchEnd=%v metrics=%v progress=%v",
			sawBatchEnd, sawMetrics, sawProgress)
	}
}

func TestConcurrentSpansOneSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(nil, NewJSONLSink(&buf))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.StartSpan("work", nil)
				s.Child("stage", nil).End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 8×50×(2 starts + 2 ends) + metrics: every line must parse cleanly.
	if len(events) != 8*50*4+1 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestContextPropagation(t *testing.T) {
	sink := &memSink{}
	tr := NewTracer(nil, sink)
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("tracer not in context")
	}
	// EnsureContext keeps an existing tracer.
	other := NewTracer(nil)
	if FromContext(EnsureContext(ctx, other)) != tr {
		t.Fatal("EnsureContext replaced existing tracer")
	}
	if FromContext(EnsureContext(context.Background(), other)) != other {
		t.Fatal("EnsureContext did not attach tracer")
	}

	ctx1, root := StartSpan(ctx, "outer", nil)
	ctx2, child := StartSpan(ctx1, "inner", nil)
	if SpanFromContext(ctx2) != child {
		t.Fatal("inner span not current")
	}
	child.End()
	root.End()
	starts := sink.byType("span_start")
	if len(starts) != 2 || starts[1].Parent != starts[0].Span {
		t.Fatalf("context nesting broken: %+v", starts)
	}

	// A telemetry-free context yields nil spans that are safe to use.
	ctx3, sp := StartSpan(context.Background(), "nope", nil)
	if sp != nil || SpanFromContext(ctx3) != nil {
		t.Fatal("expected nil span without tracer")
	}
	sp.Child("x", nil).End()
	sp.End()
}

func TestSummarySink(t *testing.T) {
	sum := NewSummarySink()
	tr := NewTracer(nil, sum)
	for i := 0; i < 3; i++ {
		s := tr.StartSpan("scan", nil)
		s.End()
	}
	tr.StartSpan("generate", nil).End()
	tr.Close()
	out := sum.Render()
	if !strings.Contains(out, "scan") || !strings.Contains(out, "generate") {
		t.Fatalf("summary missing spans:\n%s", out)
	}
	if !strings.Contains(out, "       3") {
		t.Fatalf("summary missing count 3:\n%s", out)
	}
}
