// Package telemetry is the instrumentation layer for the seedscan
// pipeline: a concurrent metrics registry (counters, gauges, histograms
// with wall-clock and virtual-clock timers), hierarchical spans emitted to
// pluggable sinks (JSONL event log, human-readable summary), and progress
// events for long experiment grids.
//
// The package is dependency-free (standard library only) and every type is
// nil-receiver safe: instrumented code calls Counter.Inc, Span.Child,
// Tracer.Progress, and so on unconditionally, and a nil registry, tracer,
// or span turns the call into a no-op. That keeps hot paths free of
// "if telemetry != nil" guards and lets telemetry be wired — or not — at
// construction time only.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (0 for a nil receiver).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v with 2^(i-histZero-1) < v <= 2^(i-histZero);
// values at or below 2^-histZero land in bucket 0.
const (
	histBuckets = 96
	histZero    = 32 // buckets below this hold sub-1.0 observations
)

// Histogram accumulates float64 observations into logarithmic buckets,
// tracking count, sum, min, and max exactly and quantiles approximately
// (within a factor of two). Durations are recorded in seconds, whether
// they come from the wall clock or the scanner's virtual clock.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// bucketOf maps an observation to its logarithmic bucket.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	// Frexp: v = frac × 2^exp with frac in [0.5, 1).
	_, exp := math.Frexp(v)
	b := exp + histZero
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketFloor is the lower bound of bucket b — the quantile
// representative, chosen so that exact powers of two report exactly.
func bucketFloor(b int) float64 {
	return math.Ldexp(1, b-histZero-1)
}

// HistogramStats is a point-in-time summary of a Histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Stats snapshots the histogram. Zero value for a nil receiver.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	return s
}

// quantileLocked returns the approximate q-quantile (bucket upper bound),
// clamped to the exact observed min/max. Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			u := bucketFloor(b)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Registry is a concurrent, name-indexed collection of counters, gauges,
// and histograms. Metric handles are created lazily on first use and are
// stable thereafter, so hot paths can resolve them once and hold them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil —
// itself a usable no-op — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timer measures one wall-clock interval into a histogram (in seconds).
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins a wall-clock measurement recorded into the named
// histogram when Stop is called.
func (r *Registry) StartTimer(name string) Timer {
	return Timer{h: r.Histogram(name), start: time.Now()}
}

// Stop records the elapsed wall time and returns it in seconds.
func (t Timer) Stop() float64 {
	d := time.Since(t.start).Seconds()
	t.h.Observe(d)
	return d
}

// ObserveDuration records a duration in seconds into the named histogram.
// It is the virtual-clock counterpart of StartTimer/Stop: callers that
// account simulated time (the scanner's rate limiter) report the elapsed
// virtual seconds here.
func (r *Registry) ObserveDuration(name string, seconds float64) {
	r.Histogram(name).Observe(seconds)
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Empty for nil.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stats()
	}
	return s
}

// Render formats the snapshot as a sorted, human-readable block.
func (s Snapshot) Render() string {
	var sb strings.Builder
	sb.WriteString("telemetry metrics\n")
	sb.WriteString(strings.Repeat("-", 60))
	sb.WriteByte('\n')
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "  %-44s %12d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "  %-44s %12.3f\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&sb, "  %-44s n=%d mean=%.4gs p50=%.4gs p95=%.4gs max=%.4gs\n",
			k, h.Count, h.Mean(), h.P50, h.P95, h.Max)
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
