package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// JSONLSink writes one JSON object per event to a writer — the trace
// format behind the CLIs' -trace flag. Events from concurrent goroutines
// are serialized; output is line-buffered and flushed on Close.
type JSONLSink struct {
	mu    sync.Mutex
	buf   *bufio.Writer
	owned io.Closer // closed by Close when the sink opened the file itself
}

// NewJSONLSink wraps an existing writer. The caller keeps ownership of w;
// Close flushes but does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{buf: bufio.NewWriter(w)}
}

// CreateJSONLFile creates (truncating) a trace file owned by the sink.
func CreateJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create trace: %w", err)
	}
	return &JSONLSink{buf: bufio.NewWriter(f), owned: f}, nil
}

// Emit writes one event line. Marshalling errors are swallowed: telemetry
// must never fail the pipeline it observes.
func (s *JSONLSink) Emit(ev Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.buf.Write(b)
	s.buf.WriteByte('\n')
	s.mu.Unlock()
}

// Close flushes buffered lines and closes the file if the sink owns one.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.buf.Flush()
	if s.owned != nil {
		if cerr := s.owned.Close(); err == nil {
			err = cerr
		}
		s.owned = nil
	}
	return err
}

// ReadEvents parses a JSONL trace back into events — the read half of the
// round-trip, used by tests and trace tooling.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return out, fmt.Errorf("telemetry: bad trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// SummarySink aggregates span durations by name in memory; Render prints a
// compact per-stage table. It backs the CLIs' -metrics flag without
// requiring a trace file.
type SummarySink struct {
	mu     sync.Mutex
	spans  map[string]*spanAgg
	events int
}

type spanAgg struct {
	count int
	total float64 // milliseconds
	max   float64
}

// NewSummarySink returns an empty summary aggregator.
func NewSummarySink() *SummarySink {
	return &SummarySink{spans: make(map[string]*spanAgg)}
}

// Emit aggregates span_end events and counts the rest.
func (s *SummarySink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events++
	if ev.Type != "span_end" {
		return
	}
	a := s.spans[ev.Name]
	if a == nil {
		a = &spanAgg{}
		s.spans[ev.Name] = a
	}
	a.count++
	a.total += ev.DurationMS
	if ev.DurationMS > a.max {
		a.max = ev.DurationMS
	}
}

// Close is a no-op; the sink keeps its aggregates for Render.
func (s *SummarySink) Close() error { return nil }

// Render formats the span aggregates, sorted by total time descending.
func (s *SummarySink) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.spans))
	for n := range s.spans {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.spans[names[i]].total != s.spans[names[j]].total {
			return s.spans[names[i]].total > s.spans[names[j]].total
		}
		return names[i] < names[j]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "telemetry spans (%d events)\n", s.events)
	sb.WriteString(strings.Repeat("-", 60))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-28s %8s %12s %12s\n", "span", "count", "total ms", "max ms")
	for _, n := range names {
		a := s.spans[n]
		fmt.Fprintf(&sb, "  %-28s %8d %12.2f %12.2f\n", n, a.count, a.total, a.max)
	}
	return sb.String()
}
