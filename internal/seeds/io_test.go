package seeds

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"seedscan/internal/ipaddr"
)

func TestDatasetWriteReadRoundTrip(t *testing.T) {
	d := FromAddrs("round-trip", addrsOf("2001:db8::1", "2001:db8::2", "fe80::1"))
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom("in", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Diff(d, "x").Len() != 0 {
		t.Fatalf("round trip lost addresses: %d vs %d", got.Len(), d.Len())
	}
}

func addrsOf(ss ...string) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipaddr.MustParse(s)
	}
	return out
}

func TestReadFromSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n2001:db8::1\n  \n# trailing\n2001:db8::2\n"
	d, err := ReadFrom("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestReadFromReportsLineNumbers(t *testing.T) {
	in := "2001:db8::1\nnot-an-address\n"
	_, err := ReadFrom("bad", strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestFileRoundTripPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	d := FromAddrs("files", addrsOf("2001:db8::1", "2600:9000::42"))
	for _, name := range []string{"plain.txt", "compressed.txt.gz"} {
		path := filepath.Join(dir, name)
		if err := d.WriteFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != 2 {
			t.Fatalf("%s: len = %d", name, got.Len())
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestPrefixListRoundTrip(t *testing.T) {
	in := []ipaddr.Prefix{
		ipaddr.MustParsePrefix("2001:db8::/32"),
		ipaddr.MustParsePrefix("2600:9000:1::/48"),
	}
	var buf bytes.Buffer
	if err := WritePrefixes(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPrefixes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("round trip = %v", got)
	}
}

func TestReadPrefixesRejectsGarbage(t *testing.T) {
	if _, err := ReadPrefixes(strings.NewReader("2001:db8::/32\ngarbage\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWrittenFileIsSortedWithHeader(t *testing.T) {
	d := FromAddrs("sorted", addrsOf("2001:db8::9", "2001:db8::1"))
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("missing header comment")
	}
	if lines[1] != "2001:db8::1" || lines[2] != "2001:db8::9" {
		t.Fatalf("not sorted: %v", lines[1:])
	}
}
