package seeds

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"seedscan/internal/ipaddr"
)

// Dataset file I/O in the formats the IPv6 measurement community uses:
// one address per line, '#' comments, optional gzip. This is how real
// hitlists (the IPv6 Hitlist service, AddrMiner dumps) ship, so datasets
// produced here interoperate with external tooling and vice versa.

// WriteTo writes the dataset one address per line in sorted order,
// preceded by a comment header.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "# seedscan dataset: %s (%d addresses)\n", d.Name, d.Len())
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, a := range d.Addrs.Sorted() {
		k, err := fmt.Fprintln(bw, a)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteFile writes the dataset to path; a ".gz" suffix enables gzip.
func (d *Dataset) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("seeds: write %s: %w", path, err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if _, err := d.WriteTo(w); err != nil {
		return fmt.Errorf("seeds: write %s: %w", path, err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("seeds: write %s: %w", path, err)
		}
	}
	return f.Close()
}

// ReadFrom parses one address per line, skipping blanks and '#' comments.
// Malformed lines are reported with their line number.
func ReadFrom(name string, r io.Reader) (*Dataset, error) {
	d := NewDataset(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ipaddr.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("seeds: %s line %d: %w", name, lineNo, err)
		}
		d.Addrs.Add(a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seeds: %s: %w", name, err)
	}
	return d, nil
}

// ReadFile loads a dataset from path; a ".gz" suffix enables gzip.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seeds: read %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("seeds: read %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadFrom(path, r)
}

// WritePrefixes writes a prefix list (one CIDR per line) — the format of
// the IPv6 Hitlist's published aliased-prefix list.
func WritePrefixes(w io.Writer, prefixes []ipaddr.Prefix) error {
	bw := bufio.NewWriter(w)
	for _, p := range prefixes {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPrefixes parses a prefix list, skipping blanks and comments.
func ReadPrefixes(r io.Reader) ([]ipaddr.Prefix, error) {
	var out []ipaddr.Prefix
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := ipaddr.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("seeds: prefix list line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
