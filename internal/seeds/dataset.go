package seeds

import (
	"sort"
	"sync"

	"seedscan/internal/asdb"
	"seedscan/internal/ipaddr"
)

// Dataset is a named collection of seed addresses.
type Dataset struct {
	Name  string
	Addrs *ipaddr.Set

	sortOnce   sync.Once
	sortedView []ipaddr.Addr
}

// NewDataset builds an empty dataset.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name, Addrs: ipaddr.NewSet()}
}

// FromAddrs builds a dataset from a slice (deduplicating).
func FromAddrs(name string, addrs []ipaddr.Addr) *Dataset {
	d := NewDataset(name)
	d.Addrs.AddAll(addrs)
	return d
}

// FromSet wraps an existing set (not copied).
func FromSet(name string, s *ipaddr.Set) *Dataset {
	return &Dataset{Name: name, Addrs: s}
}

// Len returns the number of unique addresses.
func (d *Dataset) Len() int { return d.Addrs.Len() }

// Slice returns the addresses in unspecified order.
func (d *Dataset) Slice() []ipaddr.Addr { return d.Addrs.Slice() }

// SortedSlice returns the addresses in canonical ascending order — the
// order Generator.Init expects — computed once and cached, so a treatment
// used across many grid cells sorts once instead of per run. The returned
// slice is shared: callers must treat it as read-only, and the dataset
// must not be mutated after the first call.
func (d *Dataset) SortedSlice() []ipaddr.Addr {
	d.sortOnce.Do(func() {
		s := d.Addrs.Slice()
		sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
		d.sortedView = s
	})
	return d.sortedView
}

// Clone deep-copies the dataset under a new name.
func (d *Dataset) Clone(name string) *Dataset {
	return &Dataset{Name: name, Addrs: d.Addrs.Clone()}
}

// Union returns a new dataset with the addresses of both.
func (d *Dataset) Union(o *Dataset, name string) *Dataset {
	return &Dataset{Name: name, Addrs: d.Addrs.Union(o.Addrs)}
}

// Intersect returns a new dataset with the common addresses.
func (d *Dataset) Intersect(o *Dataset, name string) *Dataset {
	return &Dataset{Name: name, Addrs: d.Addrs.Intersect(o.Addrs)}
}

// Diff returns a new dataset with d's addresses not in o.
func (d *Dataset) Diff(o *Dataset, name string) *Dataset {
	return &Dataset{Name: name, Addrs: d.Addrs.Diff(o.Addrs)}
}

// Filter returns a new dataset keeping only addresses where keep is true.
func (d *Dataset) Filter(name string, keep func(ipaddr.Addr) bool) *Dataset {
	return &Dataset{Name: name, Addrs: d.Addrs.Filter(keep)}
}

// Restrict returns a new dataset with only the addresses also in allowed.
func (d *Dataset) Restrict(name string, allowed *ipaddr.Set) *Dataset {
	return d.Filter(name, allowed.Contains)
}

// ASCount returns the number of distinct ASes covered.
func (d *Dataset) ASCount(db *asdb.DB) int {
	return db.CountASes(d.Addrs.Slice())
}

// OverlapFraction returns the fraction of d's addresses present in others
// (the "Overlap" column of Figures 1-2).
func (d *Dataset) OverlapFraction(others ...*Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	n := 0
	d.Addrs.Each(func(a ipaddr.Addr) {
		for _, o := range others {
			if o != d && o.Addrs.Contains(a) {
				n++
				return
			}
		}
	})
	return float64(n) / float64(d.Len())
}

// ASOverlapFraction returns the fraction of d's ASes also seen by any
// other dataset.
func (d *Dataset) ASOverlapFraction(db *asdb.DB, others ...*Dataset) float64 {
	mine := db.ASSet(d.Addrs.Slice())
	if len(mine) == 0 {
		return 0
	}
	theirs := make(map[int]struct{})
	for _, o := range others {
		if o == d {
			continue
		}
		for asn := range db.ASSet(o.Addrs.Slice()) {
			theirs[asn] = struct{}{}
		}
	}
	n := 0
	for asn := range mine {
		if _, ok := theirs[asn]; ok {
			n++
		}
	}
	return float64(n) / float64(len(mine))
}

// UnionAll merges datasets into one.
func UnionAll(name string, ds ...*Dataset) *Dataset {
	out := NewDataset(name)
	for _, d := range ds {
		out.Addrs.AddSet(d.Addrs)
	}
	return out
}
