// Package seeds implements the paper's seed-dataset layer (§5): twelve
// collectors model the bias of each real-world source — domain sources see
// web/CDN servers and drag in aliased wildcard records, traceroute sources
// see routers in nearly every AS but with many dead hops, hitlists are
// broad but partly stale, AddrMiner is huge and alias-heavy — plus the
// Dataset type with the set algebra the experiments need.
package seeds

import "fmt"

// Source identifies one of the twelve seed data sources of Table 3.
type Source uint8

const (
	SourceCensys Source = iota
	SourceRapid7
	SourceUmbrella
	SourceMajestic
	SourceTranco
	SourceSecRank
	SourceRadar
	SourceCAIDADNS
	SourceScamper
	SourceRIPEAtlas
	SourceHitlist
	SourceAddrMiner

	SourceCount
)

// AllSources lists every source in Table 3 order.
var AllSources = []Source{
	SourceCensys, SourceRapid7, SourceUmbrella, SourceMajestic,
	SourceTranco, SourceSecRank, SourceRadar, SourceCAIDADNS,
	SourceScamper, SourceRIPEAtlas, SourceHitlist, SourceAddrMiner,
}

// String returns the paper's label.
func (s Source) String() string {
	switch s {
	case SourceCensys:
		return "Censys CT"
	case SourceRapid7:
		return "Rapid7"
	case SourceUmbrella:
		return "Umbrella"
	case SourceMajestic:
		return "Majestic"
	case SourceTranco:
		return "Tranco"
	case SourceSecRank:
		return "SecRank"
	case SourceRadar:
		return "Radar"
	case SourceCAIDADNS:
		return "CAIDA DNS"
	case SourceScamper:
		return "Scamper"
	case SourceRIPEAtlas:
		return "RIPE Atlas"
	case SourceHitlist:
		return "IPv6 Hitlist"
	case SourceAddrMiner:
		return "AddrMiner"
	}
	return fmt.Sprintf("Source(%d)", uint8(s))
}

// Category returns Table 3's population tag: "D" (domains), "R" (routers),
// or "Both" (hitlists).
func (s Source) Category() string {
	switch s {
	case SourceCensys, SourceRapid7, SourceUmbrella, SourceMajestic,
		SourceTranco, SourceSecRank, SourceRadar, SourceCAIDADNS:
		return "D"
	case SourceScamper, SourceRIPEAtlas:
		return "R"
	}
	return "Both"
}

// IsToplist reports whether s is a domain toplist.
func (s Source) IsToplist() bool {
	switch s {
	case SourceUmbrella, SourceMajestic, SourceTranco, SourceSecRank, SourceRadar:
		return true
	}
	return false
}
