package seeds

import "testing"

func TestMetaCoversAllSources(t *testing.T) {
	for _, src := range AllSources {
		m, ok := Meta[src]
		if !ok {
			t.Fatalf("no metadata for %v", src)
		}
		if m.Collected == "" || m.Description == "" {
			t.Fatalf("%v metadata incomplete", src)
		}
		if m.PaperUnique <= 0 || m.PaperDealiased <= 0 || m.PaperActive <= 0 || m.PaperASes <= 0 {
			t.Fatalf("%v paper columns missing", src)
		}
		// Table 3 invariant: active ⊆ dealiased ⊆ unique.
		if m.PaperActive > m.PaperDealiased || m.PaperDealiased > m.PaperUnique {
			t.Fatalf("%v paper columns inconsistent: %+v", src, m)
		}
	}
}

func TestMetaDomainVolumes(t *testing.T) {
	for _, src := range AllSources {
		m := Meta[src]
		if src.Category() == "D" {
			if m.PaperDomains == 0 || m.PaperAAAA == 0 {
				t.Fatalf("%v missing Table 8 volumes", src)
			}
			if m.PaperAAAA > m.PaperDomains {
				t.Fatalf("%v AAAA > domains", src)
			}
		} else if m.PaperDomains != 0 {
			t.Fatalf("%v is not a domain source but has domain volumes", src)
		}
	}
}

func TestMetaProfileOrderingMatchesPaper(t *testing.T) {
	// Our collector base volumes keep the paper's relative ordering for
	// the headline sources.
	bigger := func(a, b Source) bool {
		return profiles[a].baseCount > profiles[b].baseCount
	}
	if !bigger(SourceRapid7, SourceHitlist) || !bigger(SourceHitlist, SourceScamper) ||
		!bigger(SourceScamper, SourceUmbrella) {
		t.Fatal("collector volumes violate the paper's source ordering")
	}
	// AddrMiner's paper alias share (86%) must be reflected in its
	// profile's alias fraction being the largest.
	for _, src := range AllSources {
		if src == SourceAddrMiner {
			continue
		}
		if profiles[src].aliasFrac > profiles[SourceAddrMiner].aliasFrac {
			t.Fatalf("%v alias fraction exceeds AddrMiner's", src)
		}
	}
}
