package seeds

// SourceMeta documents each seed source as the paper describes it:
// collection dates (Table 7), domain-resolution volumes (Table 8), and the
// paper's measured composition (Table 3). These constants let the
// experiment harness print paper-versus-measured columns without
// hard-coding numbers at call sites.
type SourceMeta struct {
	// Collected is Table 7's collection date (MM-DD-YYYY).
	Collected string
	// Description summarizes what the source is and how it is gathered.
	Description string
	// PaperUnique / PaperDealiased / PaperActive / PaperASes are Table 3's
	// columns for this source in the paper's 2023-2024 collection.
	PaperUnique    int
	PaperDealiased int
	PaperActive    int
	PaperASes      int
	// PaperDomains / PaperAAAA are Table 8's volumes (domain sources only).
	PaperDomains int64
	PaperAAAA    int64
}

// Meta records the paper's per-source facts.
var Meta = map[Source]SourceMeta{
	SourceCensys: {
		Collected:   "12-11-2023",
		Description: "AAAA resolution of domains from Certificate Transparency logs via Censys",
		PaperUnique: 19_446_042, PaperDealiased: 7_482_129, PaperActive: 3_654_876, PaperASes: 13_950,
		PaperDomains: 2_517_952_172, PaperAAAA: 117_503_681,
	},
	SourceRapid7: {
		Collected:   "11-26-2021",
		Description: "Rapid7 Forward DNS archive (2021 snapshot, licensing-frozen) plus archival AAAA lookups",
		PaperUnique: 24_537_629, PaperDealiased: 6_930_413, PaperActive: 2_028_611, PaperASes: 13_840,
		PaperDomains: 1_931_094_237, PaperAAAA: 97_487_730,
	},
	SourceUmbrella: {
		Collected:   "12-01-2023",
		Description: "Cisco Umbrella popularity toplist, AAAA-resolved",
		PaperUnique: 261_717, PaperDealiased: 59_039, PaperActive: 49_927, PaperASes: 2_764,
		PaperDomains: 1_000_000, PaperAAAA: 229_207,
	},
	SourceMajestic: {
		Collected:   "12-12-2023",
		Description: "Majestic Million toplist, AAAA-resolved",
		PaperUnique: 130_751, PaperDealiased: 21_646, PaperActive: 18_519, PaperASes: 1_973,
		PaperDomains: 1_000_000, PaperAAAA: 285_110,
	},
	SourceTranco: {
		Collected:   "11-30-2023",
		Description: "Tranco research toplist, AAAA-resolved",
		PaperUnique: 141_325, PaperDealiased: 24_509, PaperActive: 20_145, PaperASes: 3_321,
		PaperDomains: 1_000_000, PaperAAAA: 278_461,
	},
	SourceSecRank: {
		Collected:   "11-30-2023",
		Description: "SecRank voting-based toplist (China-heavy), AAAA-resolved",
		PaperUnique: 127_963, PaperDealiased: 13_065, PaperActive: 9_909, PaperASes: 1_381,
		PaperDomains: 999_505, PaperAAAA: 113_809,
	},
	SourceRadar: {
		Collected:   "12-04-2023",
		Description: "Cloudflare Radar toplist, AAAA-resolved",
		PaperUnique: 150_319, PaperDealiased: 27_374, PaperActive: 22_516, PaperASes: 3_239,
		PaperDomains: 1_000_011, PaperAAAA: 284_459,
	},
	SourceCAIDADNS: {
		Collected:   "11-30-2023",
		Description: "CAIDA IPv6 DNS Names (router PTR records)",
		PaperUnique: 59_348, PaperDealiased: 56_318, PaperActive: 37_006, PaperASes: 1_800,
		PaperDomains: 1_004_287, PaperAAAA: 57_197,
	},
	SourceScamper: {
		Collected:   "12-07-2023",
		Description: "CAIDA IPv6 Topology traceroutes (Scamper/Ark)",
		PaperUnique: 5_194_955, PaperDealiased: 2_414_558, PaperActive: 492_506, PaperASes: 31_122,
	},
	SourceRIPEAtlas: {
		Collected:   "12-11-2023",
		Description: "RIPE Atlas measurement-network traceroute hops",
		PaperUnique: 2_214_546, PaperDealiased: 2_113_404, PaperActive: 1_278_586, PaperASes: 30_787,
	},
	SourceHitlist: {
		Collected:   "12-06-2023",
		Description: "IPv6 Hitlist service responsive addresses (Gasser et al.)",
		PaperUnique: 9_063_317, PaperDealiased: 8_993_074, PaperActive: 7_619_875, PaperASes: 23_104,
	},
	SourceAddrMiner: {
		Collected:   "12-12-2023",
		Description: "AddrMiner long-term TGA-derived hitlist",
		PaperUnique: 74_348_374, PaperDealiased: 10_378_135, PaperActive: 4_659_058, PaperASes: 20_610,
	},
}

// PaperTotals is Table 3's "All Sources" row.
var PaperTotals = SourceMeta{
	PaperUnique: 118_729_345, PaperDealiased: 27_179_296, PaperActive: 10_999_613, PaperASes: 31_389,
}
