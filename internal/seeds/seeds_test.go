package seeds

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/world"
)

func testWorld(t testing.TB) *world.World {
	t.Helper()
	return world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
}

func TestSourceMetadata(t *testing.T) {
	if len(AllSources) != int(SourceCount) {
		t.Fatalf("AllSources lists %d, want %d", len(AllSources), SourceCount)
	}
	seen := map[string]bool{}
	for _, s := range AllSources {
		if s.String() == "" || seen[s.String()] {
			t.Fatalf("bad/duplicate name for %d", s)
		}
		seen[s.String()] = true
		if c := s.Category(); c != "D" && c != "R" && c != "Both" {
			t.Fatalf("%v category %q", s, c)
		}
	}
	if !SourceUmbrella.IsToplist() || SourceCensys.IsToplist() {
		t.Fatal("IsToplist wrong")
	}
	if SourceScamper.Category() != "R" || SourceHitlist.Category() != "Both" {
		t.Fatal("categories wrong")
	}
}

func TestCollectVolumesAndDeterminism(t *testing.T) {
	w := testWorld(t)
	cfg := CollectConfig{Seed: 1}
	ds := CollectAll(w, cfg)
	if len(ds) != len(AllSources) {
		t.Fatalf("collected %d sources", len(ds))
	}
	// Relative volumes: Censys and Rapid7 and AddrMiner are the big ones;
	// toplists are small.
	if ds[SourceCensys].Len() < 10*ds[SourceUmbrella].Len() {
		t.Fatalf("Censys (%d) should dwarf Umbrella (%d)",
			ds[SourceCensys].Len(), ds[SourceUmbrella].Len())
	}
	if ds[SourceAddrMiner].Len() < ds[SourceRIPEAtlas].Len() {
		t.Fatal("AddrMiner should be larger than RIPE Atlas")
	}
	// Determinism.
	again := Collect(w, SourceCensys, cfg)
	if again.Len() != ds[SourceCensys].Len() {
		t.Fatal("collection not deterministic")
	}
	d := again.Diff(ds[SourceCensys], "d")
	if d.Len() != 0 {
		t.Fatalf("same-seed collections differ by %d addrs", d.Len())
	}
}

func TestCollectScale(t *testing.T) {
	w := testWorld(t)
	small := Collect(w, SourceScamper, CollectConfig{Seed: 1, Scale: 0.1})
	big := Collect(w, SourceScamper, CollectConfig{Seed: 1, Scale: 1})
	if small.Len() >= big.Len() {
		t.Fatalf("scale had no effect: %d vs %d", small.Len(), big.Len())
	}
}

func TestSourceBiases(t *testing.T) {
	w := testWorld(t)
	ds := CollectAll(w, CollectConfig{Seed: 1})
	db := w.ASDB()

	// Traceroute sources cover far more ASes relative to their size.
	scamperASes := ds[SourceScamper].ASCount(db)
	censysASes := ds[SourceCensys].ASCount(db)
	if scamperASes < censysASes/2 {
		t.Fatalf("Scamper AS coverage %d too low vs Censys %d", scamperASes, censysASes)
	}
	// Scamper samples only infrastructure: routers and dark space (plus
	// alias pollution).
	infraOnly := 0
	ds[SourceScamper].Addrs.Each(func(a ipaddr.Addr) {
		if r, ok := w.RegionOf(a); ok &&
			(r.Class == world.ClassRouter || r.Class == world.ClassDark || r.Aliased) {
			infraOnly++
		}
	})
	if got := float64(infraOnly) / float64(ds[SourceScamper].Len()); got < 0.95 {
		t.Fatalf("Scamper infrastructure fraction = %.2f", got)
	}

	// AddrMiner is alias-heavy; Hitlist is alias-light.
	aliasFrac := func(d *Dataset) float64 {
		n := 0
		d.Addrs.Each(func(a ipaddr.Addr) {
			if w.IsAliased(a) {
				n++
			}
		})
		return float64(n) / float64(d.Len())
	}
	if am, hl := aliasFrac(ds[SourceAddrMiner]), aliasFrac(ds[SourceHitlist]); am < 0.5 || hl > 0.1 {
		t.Fatalf("alias fractions: AddrMiner %.2f (want >0.5), Hitlist %.2f (want <0.1)", am, hl)
	}

	// Hitlist is mostly existing hosts at collection time.
	alive := 0
	ds[SourceHitlist].Addrs.Each(func(a ipaddr.Addr) {
		if w.ExistsAt(a, world.CollectEpoch) || w.IsAliased(a) {
			alive++
		}
	})
	if got := float64(alive) / float64(ds[SourceHitlist].Len()); got < 0.7 {
		t.Fatalf("Hitlist alive fraction = %.2f", got)
	}
}

func TestToplistsOverlap(t *testing.T) {
	w := testWorld(t)
	ds := CollectAll(w, CollectConfig{Seed: 1})
	// The shared popularity ranking should make toplists overlap far more
	// than independent random samples would.
	u, tr := ds[SourceUmbrella], ds[SourceTranco]
	inter := u.Intersect(tr, "x").Len()
	if inter == 0 {
		t.Fatal("toplists share no addresses")
	}
}

func TestDatasetAlgebra(t *testing.T) {
	a := FromAddrs("a", []ipaddr.Addr{ipaddr.MustParse("::1"), ipaddr.MustParse("::2")})
	b := FromAddrs("b", []ipaddr.Addr{ipaddr.MustParse("::2"), ipaddr.MustParse("::3")})
	if got := a.Union(b, "u").Len(); got != 3 {
		t.Fatalf("union = %d", got)
	}
	if got := a.Intersect(b, "i").Len(); got != 1 {
		t.Fatalf("intersect = %d", got)
	}
	if got := a.Diff(b, "d").Len(); got != 1 {
		t.Fatalf("diff = %d", got)
	}
	if got := UnionAll("all", a, b).Len(); got != 3 {
		t.Fatalf("UnionAll = %d", got)
	}
	c := a.Clone("c")
	c.Addrs.Add(ipaddr.MustParse("::9"))
	if a.Len() != 2 || c.Len() != 3 {
		t.Fatal("Clone not independent")
	}
	r := a.Restrict("r", b.Addrs)
	if r.Len() != 1 || !r.Addrs.Contains(ipaddr.MustParse("::2")) {
		t.Fatal("Restrict wrong")
	}
}

func TestOverlapFraction(t *testing.T) {
	a := FromAddrs("a", []ipaddr.Addr{ipaddr.MustParse("::1"), ipaddr.MustParse("::2")})
	b := FromAddrs("b", []ipaddr.Addr{ipaddr.MustParse("::2")})
	c := FromAddrs("c", []ipaddr.Addr{ipaddr.MustParse("::9")})
	if got := a.OverlapFraction(b, c); got != 0.5 {
		t.Fatalf("overlap = %v", got)
	}
	if got := a.OverlapFraction(a); got != 0 {
		t.Fatalf("self overlap must be excluded: %v", got)
	}
	empty := NewDataset("e")
	if got := empty.OverlapFraction(a); got != 0 {
		t.Fatalf("empty overlap = %v", got)
	}
}

func TestFullDatasetComposition(t *testing.T) {
	w := testWorld(t)
	ds := CollectAll(w, CollectConfig{Seed: 1})
	all := CombineAll(ds)
	// The union must be smaller than the sum (overlap exists) but larger
	// than any single source.
	sum := 0
	for _, d := range ds {
		sum += d.Len()
		if d.Len() > all.Len() {
			t.Fatalf("source %s larger than union", d.Name)
		}
	}
	if all.Len() >= sum {
		t.Fatal("no overlap between sources at all")
	}
	if all.Len() < 50000 {
		t.Fatalf("full dataset too small: %d", all.Len())
	}
}
