package seeds

import (
	"math/rand"

	"seedscan/internal/ipaddr"
	"seedscan/internal/world"
)

// CollectConfig scales and seeds collection. The zero value is completed
// with defaults.
type CollectConfig struct {
	// Seed drives the collectors' sampling; independent of the world seed.
	Seed uint64
	// Scale multiplies every source's base volume (default 1). The base
	// volumes keep Table 3's relative proportions at roughly 1/500 of the
	// paper's counts.
	Scale float64
}

func (c *CollectConfig) fillDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
}

// profile captures a source's collection bias: where it looks, how big it
// is, and how polluted it is with aliases and dead addresses. Fractions
// follow Table 3's unique/dealiased/active ratios.
type profile struct {
	classes   []world.HostClass
	baseCount int
	hostFrac  float64 // sampled existing hosts (may still be churned later)
	aliasFrac float64 // sampled from aliased regions (wildcard records etc.)
	noiseFrac float64 // in-template addresses never verified to exist
	popular   float64 // >0: keep only hosts with popularity below threshold
	staleFrac float64 // extra share of hosts sampled ignoring existence
	// (archival data: Rapid7's 2021 snapshot)
	sharedFrac float64 // share of hosts/aliases drawn from the common
	// domain pool — sources that resolve overlapping domain sets see the
	// same addresses, which is Figure 1's domain-overlap block
}

var domainClasses = []world.HostClass{world.ClassWebServer, world.ClassCDNNode, world.ClassDNSServer}

var profiles = map[Source]profile{
	SourceCensys: {classes: domainClasses, baseCount: 39000,
		hostFrac: 0.30, aliasFrac: 0.38, noiseFrac: 0.32, sharedFrac: 0.5},
	SourceRapid7: {classes: domainClasses, baseCount: 49000,
		hostFrac: 0.18, aliasFrac: 0.44, noiseFrac: 0.38, staleFrac: 0.3, sharedFrac: 0.5},
	SourceUmbrella: {classes: domainClasses, baseCount: 650,
		hostFrac: 0.20, aliasFrac: 0.72, noiseFrac: 0.08, popular: 0.08},
	SourceMajestic: {classes: domainClasses, baseCount: 330,
		hostFrac: 0.15, aliasFrac: 0.78, noiseFrac: 0.07, popular: 0.08},
	SourceTranco: {classes: domainClasses, baseCount: 360,
		hostFrac: 0.16, aliasFrac: 0.76, noiseFrac: 0.08, popular: 0.08},
	SourceSecRank: {classes: domainClasses, baseCount: 320,
		hostFrac: 0.10, aliasFrac: 0.84, noiseFrac: 0.06, popular: 0.10},
	SourceRadar: {classes: domainClasses, baseCount: 380,
		hostFrac: 0.17, aliasFrac: 0.75, noiseFrac: 0.08, popular: 0.08},
	SourceCAIDADNS: {classes: []world.HostClass{world.ClassRouter}, baseCount: 150,
		hostFrac: 0.62, aliasFrac: 0.03, noiseFrac: 0.35},
	SourceScamper: {classes: []world.HostClass{world.ClassRouter, world.ClassDark}, baseCount: 13000,
		hostFrac: 0.4, aliasFrac: 0.48, noiseFrac: 0.12},
	SourceRIPEAtlas: {classes: []world.HostClass{world.ClassRouter, world.ClassISPCustomer, world.ClassWebServer}, baseCount: 5500,
		hostFrac: 0.60, aliasFrac: 0.04, noiseFrac: 0.36},
	SourceHitlist: {classes: []world.HostClass{world.ClassRouter, world.ClassWebServer, world.ClassCDNNode, world.ClassDNSServer, world.ClassISPCustomer}, baseCount: 22000,
		hostFrac: 0.84, aliasFrac: 0.01, noiseFrac: 0.15, sharedFrac: 0.25},
	SourceAddrMiner: {classes: []world.HostClass{world.ClassCDNNode, world.ClassWebServer, world.ClassISPCustomer, world.ClassDNSServer}, baseCount: 35000,
		hostFrac: 0.08, aliasFrac: 0.84, noiseFrac: 0.08},
}

// popularPoolSize bounds the shared pool of "popular" hosts and aliased
// records every toplist draws from. Real toplists overlap heavily because
// they resolve the same popular domains; the shared pool reproduces that
// (Figure 1's domain-source overlap block).
const popularPoolSize = 1500

// domainPool returns the common domain-visible population: the hosts and
// aliased records that any AAAA-resolving collector can stumble on. Its
// size scales with collection scale so overlap fractions stay stable.
func domainPool(w *world.World, scale float64) (hosts, aliased []ipaddr.Addr) {
	n := int(6000 * scale)
	if n < 100 {
		n = 100
	}
	samp := w.NewSampler(mixSeed(w.Seed(), 0xd0d0d0d0), domainClasses...)
	hosts = samp.Hosts(n)
	aliasSamp := w.NewSampler(mixSeed(w.Seed(), 0xd0d0d0d1))
	aliased = aliasSamp.Aliased(int(5000 * scale))
	return hosts, aliased
}

// popularPools returns the popular slice of the common domain pool: the
// hosts and aliased records behind the Internet's most-visited domains.
// Popular ⊂ domain-visible, so toplists overlap both each other and the
// big AAAA collectors (Censys, Rapid7), as Figure 1 shows.
func popularPools(w *world.World, scale float64) (hosts, aliased []ipaddr.Addr) {
	poolHosts, poolAliased := domainPool(w, scale)
	hn, an := popularPoolSize, popularPoolSize
	if hn > len(poolHosts) {
		hn = len(poolHosts)
	}
	if an > len(poolAliased) {
		an = len(poolAliased)
	}
	return poolHosts[:hn], poolAliased[:an]
}

// Collect gathers one source's seed dataset from the world at the
// collection epoch.
func Collect(w *world.World, src Source, cfg CollectConfig) *Dataset {
	cfg.fillDefaults()
	p, ok := profiles[src]
	if !ok {
		return NewDataset(src.String())
	}
	n := int(float64(p.baseCount) * cfg.Scale)
	ds := NewDataset(src.String())
	seed := mixSeed(cfg.Seed, uint64(src))

	hosts := int(float64(n) * p.hostFrac)
	aliases := int(float64(n) * p.aliasFrac)
	noise := n - hosts - aliases

	if p.popular > 0 {
		// Toplists draw from the shared popular pools, so distinct
		// toplists overlap on the same hosts and aliased records.
		poolHosts, poolAliased := popularPools(w, cfg.Scale)
		rng := newPoolRand(seed)
		for i := 0; i < hosts && len(poolHosts) > 0; i++ {
			ds.Addrs.Add(poolHosts[rng.Intn(len(poolHosts))])
		}
		for i := 0; i < aliases && len(poolAliased) > 0; i++ {
			ds.Addrs.Add(poolAliased[rng.Intn(len(poolAliased))])
		}
	} else {
		fromPoolHosts, fromPoolAliases := 0, 0
		if p.sharedFrac > 0 {
			fromPoolHosts = int(float64(hosts) * p.sharedFrac)
			fromPoolAliases = int(float64(aliases) * p.sharedFrac)
			poolHosts, poolAliased := domainPool(w, cfg.Scale)
			rng := newPoolRand(mixSeed(seed, 4))
			for i := 0; i < fromPoolHosts && len(poolHosts) > 0; i++ {
				ds.Addrs.Add(poolHosts[rng.Intn(len(poolHosts))])
			}
			for i := 0; i < fromPoolAliases && len(poolAliased) > 0; i++ {
				ds.Addrs.Add(poolAliased[rng.Intn(len(poolAliased))])
			}
		}
		samp := w.NewSampler(seed, p.classes...)
		ds.Addrs.AddAll(samp.Hosts(hosts - fromPoolHosts))
		// Aliased pollution comes from the full region set, not the class
		// filter: wildcard DNS and TGA output land in aliased slabs
		// wherever they are.
		aliasSamp := w.NewSampler(mixSeed(seed, 2))
		ds.Addrs.AddAll(aliasSamp.Aliased(aliases - fromPoolAliases))
	}

	noiseSamp := w.NewSampler(mixSeed(seed, 3), p.classes...)
	ds.Addrs.AddAll(noiseSamp.TemplateNoise(noise))

	if p.staleFrac > 0 {
		// Archival snapshots include extra unverified in-template records.
		extra := int(float64(n) * p.staleFrac)
		ds.Addrs.AddAll(noiseSamp.TemplateNoise(extra))
	}
	return ds
}

// CollectAll gathers every source.
func CollectAll(w *world.World, cfg CollectConfig) map[Source]*Dataset {
	out := make(map[Source]*Dataset, len(AllSources))
	for _, s := range AllSources {
		out[s] = Collect(w, s, cfg)
	}
	return out
}

// CombineAll unions per-source datasets into the paper's "Full Dataset".
func CombineAll(bySource map[Source]*Dataset) *Dataset {
	all := NewDataset("All Sources")
	for _, s := range AllSources {
		if d, ok := bySource[s]; ok {
			all.Addrs.AddSet(d.Addrs)
		}
	}
	return all
}

func mixSeed(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = smix(h ^ v)
	}
	return h
}

func unitHash(vals ...uint64) float64 {
	return float64(mixSeed(vals...)>>11) / float64(1<<53)
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// newPoolRand builds the deterministic RNG a toplist uses to draw from the
// popular pools.
func newPoolRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}
