package all_test

import (
	"context"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga"
	"seedscan/internal/tga/all"
	"seedscan/internal/tga/modelcache"
)

// offlineNames are the generators the driver pipelines.
var offlineNames = []string{"6Tree", "6Graph", "6Gen", "EIP", "6Prob"}

func runResultsEqual(t *testing.T, name string, want, got *tga.RunResult) {
	t.Helper()
	if got.Generated != want.Generated {
		t.Errorf("%s: generated %d, serial %d", name, got.Generated, want.Generated)
	}
	if got.Exhausted != want.Exhausted {
		t.Errorf("%s: exhausted %v, serial %v", name, got.Exhausted, want.Exhausted)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("%s: %d hits, serial %d", name, len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("%s: hit %d = %v, serial %v", name, i, got.Hits[i], want.Hits[i])
		}
	}
	if len(got.AliasedHits) != len(want.AliasedHits) {
		t.Fatalf("%s: %d aliased, serial %d", name, len(got.AliasedHits), len(want.AliasedHits))
	}
	for i := range want.AliasedHits {
		if got.AliasedHits[i] != want.AliasedHits[i] {
			t.Fatalf("%s: aliased %d differs", name, i)
		}
	}
}

// TestPipelineMatchesSerial pins the tentpole invariant: for offline
// generators the pipelined driver produces the serial driver's RunResult
// exactly — same hits in the same order, same generated count, same
// exhaustion — on a real world/scanner/dealiaser fixture. Run under -race
// this also exercises the producer/consumer handoff.
func TestPipelineMatchesSerial(t *testing.T) {
	_, sc, seeds := setup(t)
	const budget = 3000
	for _, name := range offlineNames {
		cfg := tga.RunConfig{
			Budget: budget, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, ExcludeSeeds: true,
		}
		cfg.Dealiaser = alias.New(alias.ModeOnline, nil, sc, proto.ICMP, 91)
		cfg.Serial = true
		serial, err := tga.Run(all.MustNew(name), seeds, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		cfg.Dealiaser = alias.New(alias.ModeOnline, nil, sc, proto.ICMP, 91)
		cfg.Serial = false
		piped, err := tga.Run(all.MustNew(name), seeds, cfg)
		if err != nil {
			t.Fatalf("%s pipelined: %v", name, err)
		}
		runResultsEqual(t, name, serial, piped)
	}
}

// TestPipelineWithModelCacheMatchesSerial adds the cross-run model cache:
// the first pipelined run mines the model, the second adopts it, and both
// match the serial baseline.
func TestPipelineWithModelCacheMatchesSerial(t *testing.T) {
	_, sc, seeds := setup(t)
	const budget = 2000
	cache := modelcache.New()
	reg := telemetry.NewRegistry()
	cache.SetTelemetry(reg)
	for _, name := range offlineNames {
		cfg := tga.RunConfig{
			Budget: budget, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, ExcludeSeeds: true, Serial: true,
		}
		serial, err := tga.Run(all.MustNew(name), seeds, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		cfg.Serial = false
		cfg.Models = cache
		for run := 0; run < 2; run++ {
			res, err := tga.Run(all.MustNew(name), seeds, cfg)
			if err != nil {
				t.Fatalf("%s cached run %d: %v", name, run, err)
			}
			runResultsEqual(t, name, serial, res)
		}
	}
	if misses := reg.Counter("tga.modelcache.misses").Load(); misses != int64(len(offlineNames)) {
		t.Errorf("misses = %d, want %d (one mine per generator)", misses, len(offlineNames))
	}
	if hits := reg.Counter("tga.modelcache.hits").Load(); hits != int64(len(offlineNames)) {
		t.Errorf("hits = %d, want %d (second runs reuse)", hits, len(offlineNames))
	}
}

// TestModelCacheSharedAcrossProtocols is the paper's reuse pattern: the
// seed treatment is fixed, only the probed port varies, and the mined
// model is built once.
func TestModelCacheSharedAcrossProtocols(t *testing.T) {
	_, sc, seeds := setup(t)
	cache := modelcache.New()
	reg := telemetry.NewRegistry()
	cache.SetTelemetry(reg)
	for _, p := range proto.All {
		cfg := tga.RunConfig{
			Budget: 1000, BatchSize: 512, Proto: p,
			Prober: sc, ExcludeSeeds: true, Models: cache,
		}
		if _, err := tga.Run(all.MustNew("6Tree"), seeds, cfg); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if misses := reg.Counter("tga.modelcache.misses").Load(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if hits := reg.Counter("tga.modelcache.hits").Load(); hits != int64(len(proto.All)-1) {
		t.Errorf("hits = %d, want %d", hits, len(proto.All)-1)
	}
}

// TestPipelineCancellation stops a pipelined run mid-flight and expects a
// partial result plus ctx.Err, like the lockstep driver.
func TestPipelineCancellation(t *testing.T) {
	_, sc, seeds := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	pr := &cancelAfterProber{inner: sc, cancel: cancel, after: 2}
	res, err := tga.RunContext(ctx, all.MustNew("6Tree"), seeds, tga.RunConfig{
		Budget: 100000, BatchSize: 256, Proto: proto.ICMP,
		Prober: pr, ExcludeSeeds: true,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Generated == 0 {
		t.Fatal("no partial result")
	}
	if res.Generated >= 100000 {
		t.Fatal("run was not actually cut short")
	}
}

// cancelAfterProber cancels the run's context after a fixed number of
// scan calls, forwarding each scan to the real scanner. It deliberately
// does not implement ContextProber, so the driver notices the
// cancellation at the batch boundary.
type cancelAfterProber struct {
	inner  *scanner.Scanner
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancelAfterProber) Scan(ts []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	p.calls++
	if p.calls >= p.after {
		p.cancel()
	}
	return p.inner.Scan(ts, pr)
}

// ScanActive completes the shared scanner.Prober surface; the driver
// scans through Scan.
func (p *cancelAfterProber) ScanActive(ts []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr {
	return p.inner.ScanActive(ts, pr)
}
