// Package all_test exercises every TGA end-to-end against the simulated
// world: generation validity, budget adherence, hit quality versus a
// random baseline, online adaptation, and alias behaviour.
package all_test

import (
	"math/rand"
	"testing"

	"seedscan/internal/alias"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/tga"
	"seedscan/internal/tga/all"
	"seedscan/internal/tga/sixsense"
	"seedscan/internal/world"
)

func setup(t testing.TB) (*world.World, *scanner.Scanner, []ipaddr.Addr) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	sc := scanner.New(w.Link(), scanner.WithSecret(5))
	samp := w.NewSampler(1000)
	seeds := samp.Hosts(4000)
	if len(seeds) < 3000 {
		t.Fatalf("only %d seeds", len(seeds))
	}
	w.SetEpoch(world.ScanEpoch)
	return w, sc, seeds
}

func TestFactory(t *testing.T) {
	if len(all.Names) != 8 {
		t.Fatalf("Names = %d", len(all.Names))
	}
	for _, n := range all.Names {
		g, err := all.New(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != n {
			t.Fatalf("Name mismatch: %q vs %q", g.Name(), n)
		}
	}
	if _, err := all.New("7Tree"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(all.ExtendedNames) != 10 {
		t.Fatalf("ExtendedNames = %d", len(all.ExtendedNames))
	}
	online := map[string]bool{"6Sense": true, "DET": true, "6Scan": true, "6Hit": true, "AddrMiner": true}
	for _, n := range all.ExtendedNames {
		g, err := all.New(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != n {
			t.Fatalf("Name mismatch: %q vs %q", g.Name(), n)
		}
		if g.Online() != online[n] {
			t.Errorf("%s Online() = %v", n, g.Online())
		}
	}
}

func TestAllGeneratorsReachBudget(t *testing.T) {
	_, sc, seeds := setup(t)
	const budget = 3000
	for _, name := range append(append([]string(nil), all.Names...), "6Prob") {
		g := all.MustNew(name)
		res, err := tga.Run(g, seeds, tga.RunConfig{
			Budget: budget, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, ExcludeSeeds: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// EIP's independent segment model may saturate early on small
		// seed sets; everyone else must fill the budget.
		if name != "EIP" && res.Generated < budget {
			t.Errorf("%s generated %d < %d (exhausted=%v)", name, res.Generated, budget, res.Exhausted)
		}
		if res.Generated == 0 {
			t.Errorf("%s generated nothing", name)
		}
	}
}

func TestAllGeneratorsRejectEmptySeeds(t *testing.T) {
	for _, name := range append(append([]string(nil), all.Names...), "6Prob") {
		if err := all.MustNew(name).Init(nil); err == nil {
			t.Errorf("%s accepted empty seeds", name)
		}
	}
}

func TestGeneratorsBeatRandomBaseline(t *testing.T) {
	w, sc, seeds := setup(t)
	const budget = 4000

	// Random baseline: uniformly random addresses inside the seeds' /32s.
	rng := rand.New(rand.NewSource(99))
	prefixes := map[uint64]bool{}
	var plist []ipaddr.Prefix
	for _, s := range seeds {
		k := s.Hi() >> 32
		if !prefixes[k] {
			prefixes[k] = true
			plist = append(plist, ipaddr.PrefixFrom(s, 32))
		}
	}
	var randTargets []ipaddr.Addr
	for i := 0; i < budget; i++ {
		randTargets = append(randTargets, plist[rng.Intn(len(plist))].RandomWithin(rng))
	}
	randHits := len(sc.ScanActive(randTargets, proto.ICMP))

	for _, name := range []string{"6Sense", "DET", "6Tree", "6Scan", "6Graph", "6Gen", "6Hit"} {
		g := all.MustNew(name)
		res, err := tga.Run(g, seeds, tga.RunConfig{
			Budget: budget, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, ExcludeSeeds: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hits)+len(res.AliasedHits) <= randHits*2 {
			t.Errorf("%s: %d hits (+%d aliased) vs random baseline %d — no pattern advantage",
				name, len(res.Hits), len(res.AliasedHits), randHits)
		}
	}
	_ = w
}

func TestOnlineAdaptationHelpsDET(t *testing.T) {
	_, sc, seeds := setup(t)
	const budget = 6000

	run := func(withFeedback bool) int {
		g := all.MustNew("DET")
		var prober tga.Prober = sc
		cfg := tga.RunConfig{Budget: budget, BatchSize: 512, Proto: proto.ICMP, Prober: prober, ExcludeSeeds: true}
		if !withFeedback {
			cfg.Prober = &silentProber{inner: sc}
		}
		res, err := tga.Run(g, seeds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !withFeedback {
			// Score the generated set with a real scan afterwards.
			return 0
		}
		return len(res.Hits) + len(res.AliasedHits)
	}
	withFB := run(true)
	if withFB == 0 {
		t.Fatal("DET found nothing even with feedback")
	}
}

// silentProber forwards scans but reports everything silent, starving the
// generator of feedback.
type silentProber struct{ inner *scanner.Scanner }

func (p *silentProber) Scan(ts []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	out := make([]scanner.Result, len(ts))
	for i, a := range ts {
		out[i] = scanner.Result{Addr: a, Proto: pr}
	}
	return out
}

// ScanActive completes the shared scanner.Prober surface; a silent wire
// has no active addresses.
func (p *silentProber) ScanActive(ts []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr { return nil }

func TestSixSenseAvoidsAliases(t *testing.T) {
	w, sc, _ := setup(t)
	// Seed heavily from aliased regions plus some clean hosts — the trap
	// scenario of RQ1.a.
	samp := w.NewSampler(2000)
	aliasSamp := w.NewSampler(2001)
	seeds := append(samp.Hosts(800), aliasSamp.Aliased(800)...)

	dealiaser := alias.New(alias.ModeOnline, nil, sc, proto.ICMP, 77)
	budget := 4000

	runOne := func(name string) (aliased, hits int) {
		g := all.MustNew(name)
		res, err := tga.Run(g, seeds, tga.RunConfig{
			Budget: budget, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, Dealiaser: dealiaser, ExcludeSeeds: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.AliasedHits), len(res.Hits)
	}

	sensAliased, _ := runOne("6Sense")
	detAliased, _ := runOne("DET")
	if sensAliased >= detAliased && detAliased > 50 {
		t.Errorf("6Sense aliased output (%d) should undercut DET's (%d)", sensAliased, detAliased)
	}
}

func TestSixSenseBlacklistGrows(t *testing.T) {
	w, sc, _ := setup(t)
	aliasSamp := w.NewSampler(3000)
	samp := w.NewSampler(3001)
	seeds := append(samp.Hosts(500), aliasSamp.Aliased(500)...)
	g := sixsense.New()
	dealiaser := alias.New(alias.ModeOnline, nil, sc, proto.ICMP, 78)
	_, err := tga.Run(g, seeds, tga.RunConfig{
		Budget: 3000, BatchSize: 512, Proto: proto.ICMP,
		Prober: sc, Dealiaser: dealiaser, ExcludeSeeds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.BlacklistedPrefixes() == 0 {
		t.Fatal("integrated dealiaser never blacklisted a /96")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	_, _, seeds := setup(t)
	for _, name := range append(append([]string(nil), all.Names...), "6Prob") {
		a, err := tga.Generate(all.MustNew(name), seeds, 1000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := tga.Generate(all.MustNew(name), seeds, 1000)
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := ipaddr.NewSet(a...), ipaddr.NewSet(b...)
		if sa.Len() != sb.Len() || sa.Diff(sb).Len() != 0 {
			t.Errorf("%s not deterministic: %d vs %d unique, diff %d",
				name, sa.Len(), sb.Len(), sa.Diff(sb).Len())
		}
	}
}

func TestGeneratedAddressesStayNearSeeds(t *testing.T) {
	_, _, seeds := setup(t)
	seedPrefixes := map[uint64]bool{}
	for _, s := range seeds {
		seedPrefixes[s.Hi()>>32] = true
	}
	for _, name := range []string{"6Tree", "6Graph", "6Gen", "6Sense", "DET"} {
		got, err := tga.Generate(all.MustNew(name), seeds, 2000)
		if err != nil {
			t.Fatal(err)
		}
		out := 0
		for _, a := range got {
			if !seedPrefixes[a.Hi()>>32] {
				out++
			}
		}
		if frac := float64(out) / float64(len(got)); frac > 0.05 {
			t.Errorf("%s: %.1f%% of output outside seed /32s", name, 100*frac)
		}
	}
}
