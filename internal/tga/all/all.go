// Package all registers every implemented TGA behind one factory. Two
// tiers: Names is the paper's study set (the eight TGAs §4 evaluates, in
// canonical presentation order); ExtendedNames adds the generators
// implemented beyond the study set (AddrMiner, 6Prob). Experiments that
// reproduce the paper iterate Names; the extended grid measures what the
// paper never did.
package all

import (
	"fmt"

	"seedscan/internal/tga"
	"seedscan/internal/tga/addrminer"
	"seedscan/internal/tga/det"
	"seedscan/internal/tga/entropyip"
	"seedscan/internal/tga/sixgen"
	"seedscan/internal/tga/sixgraph"
	"seedscan/internal/tga/sixhit"
	"seedscan/internal/tga/sixprob"
	"seedscan/internal/tga/sixscan"
	"seedscan/internal/tga/sixsense"
	"seedscan/internal/tga/sixtree"
)

// Names lists the eight TGAs in the paper's canonical order.
var Names = []string{"6Sense", "DET", "6Tree", "6Scan", "6Graph", "6Gen", "6Hit", "EIP"}

// All eight studied TGAs plus 6Prob support the model/run-state split,
// which is what lets the model cache reuse their mined seed models across
// protocols. AddrMiner is deliberately absent: its model depends on the
// mutable long-term Store (see the addrminer package).
var (
	_ tga.ModelBuilder = (*sixsense.Generator)(nil)
	_ tga.ModelBuilder = (*det.Generator)(nil)
	_ tga.ModelBuilder = (*sixtree.Generator)(nil)
	_ tga.ModelBuilder = (*sixscan.Generator)(nil)
	_ tga.ModelBuilder = (*sixgraph.Generator)(nil)
	_ tga.ModelBuilder = (*sixgen.Generator)(nil)
	_ tga.ModelBuilder = (*sixhit.Generator)(nil)
	_ tga.ModelBuilder = (*entropyip.Generator)(nil)
	_ tga.ModelBuilder = (*sixprob.Generator)(nil)
)

// ExtendedNames adds the generators implemented beyond the paper's study
// set: AddrMiner (the DET-derived long-term miner whose hitlist §5.1
// consumes as a seed source) and 6Prob (the probability-trie generator
// from the modern structure-aware family).
var ExtendedNames = append(append([]string(nil), Names...), "AddrMiner", "6Prob")

// New constructs a fresh generator by name.
func New(name string) (tga.Generator, error) {
	switch name {
	case "6Sense":
		return sixsense.New(), nil
	case "DET":
		return det.New(), nil
	case "6Tree":
		return sixtree.New(), nil
	case "6Scan":
		return sixscan.New(), nil
	case "6Graph":
		return sixgraph.New(), nil
	case "6Gen":
		return sixgen.New(), nil
	case "6Hit":
		return sixhit.New(), nil
	case "EIP":
		return entropyip.New(), nil
	case "AddrMiner":
		return addrminer.New(nil), nil
	case "6Prob":
		return sixprob.New(), nil
	}
	return nil, fmt.Errorf("tga/all: unknown generator %q", name)
}

// MustNew is New but panics on unknown names; for tables driven by Names.
func MustNew(name string) tga.Generator {
	g, err := New(name)
	if err != nil {
		panic(err)
	}
	return g
}

// NewAll constructs one fresh instance of every generator, in order.
func NewAll() []tga.Generator {
	out := make([]tga.Generator, 0, len(Names))
	for _, n := range Names {
		out = append(out, MustNew(n))
	}
	return out
}
