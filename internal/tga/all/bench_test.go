package all_test

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
	"seedscan/internal/tga/all"
	"seedscan/internal/world"
)

// Generation-throughput benchmarks: addresses proposed per second for each
// TGA, with no scanning in the loop (offline generation path). 6Sense and
// the online tree models additionally pay their feedback costs in real
// runs; see the experiment benches at the repository root for end-to-end
// figures.

func benchSeeds(b *testing.B) []ipaddr.Addr {
	b.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	samp := w.NewSampler(1)
	seeds := samp.Hosts(5000)
	if len(seeds) < 4000 {
		b.Fatalf("seeds = %d", len(seeds))
	}
	return seeds
}

func BenchmarkGeneration(b *testing.B) {
	seeds := benchSeeds(b)
	for _, name := range all.Names {
		b.Run(name, func(b *testing.B) {
			g := all.MustNew(name)
			if err := g.Init(seeds); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			produced := 0
			for produced < b.N {
				batch := g.NextBatch(4096)
				if len(batch) == 0 {
					// Model saturated (EIP on small seeds): restart on a
					// fresh instance to keep the measurement honest.
					g = all.MustNew(name)
					if err := g.Init(seeds); err != nil {
						b.Fatal(err)
					}
					continue
				}
				produced += len(batch)
			}
			b.ReportMetric(float64(produced), "addrs")
		})
	}
}

func BenchmarkInit(b *testing.B) {
	seeds := benchSeeds(b)
	for _, name := range all.Names {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := all.MustNew(name).Init(seeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFeedback(b *testing.B) {
	seeds := benchSeeds(b)
	for _, name := range []string{"6Sense", "DET", "6Scan", "6Hit"} {
		b.Run(name, func(b *testing.B) {
			g := all.MustNew(name)
			if err := g.Init(seeds); err != nil {
				b.Fatal(err)
			}
			batch := g.NextBatch(2048)
			fb := make([]tga.ProbeResult, len(batch))
			for i, a := range batch {
				fb[i] = tga.ProbeResult{Addr: a, Active: i%3 == 0}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Feedback(fb)
			}
		})
	}
}
