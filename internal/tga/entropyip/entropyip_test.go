package entropyip

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func structuredSeeds() []ipaddr.Addr {
	// Fixed prefix, two variable tail nybbles, fixed "service" nybbles.
	var out []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8:0:1::1234:0")
	for i := 0; i < 60; i++ {
		out = append(out, base.AddLo(uint64(i)))
	}
	return out
}

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "EIP" || g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestSegmentation(t *testing.T) {
	g := New()
	if err := g.Init(structuredSeeds()); err != nil {
		t.Fatal(err)
	}
	if g.SegmentCount() < 2 {
		t.Fatalf("segments = %d, want entropy-based split", g.SegmentCount())
	}
}

func TestGenerationRespectsLowEntropySegments(t *testing.T) {
	g := New()
	seeds := structuredSeeds()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	p := ipaddr.MustParsePrefix("2001:db8:0:1::/64")
	batch := g.NextBatch(100)
	if len(batch) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range batch {
		// The fixed prefix is a zero-entropy segment: candidates keep it.
		if !p.Contains(a) {
			t.Fatalf("candidate %v broke the fixed segment", a)
		}
	}
}

func TestNoDuplicates(t *testing.T) {
	g := New()
	if err := g.Init(structuredSeeds()); err != nil {
		t.Fatal(err)
	}
	seen := ipaddr.NewSet()
	for i := 0; i < 5; i++ {
		for _, a := range g.NextBatch(100) {
			if !seen.Add(a) {
				t.Fatalf("duplicate %v", a)
			}
		}
	}
}

func TestModelSaturates(t *testing.T) {
	// Two seeds → tiny model: generation must terminate, not spin.
	g := New()
	if err := g.Init([]ipaddr.Addr{
		ipaddr.MustParse("2001:db8::1"),
		ipaddr.MustParse("2001:db8::2"),
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 100; i++ {
		b := g.NextBatch(1000)
		if len(b) == 0 {
			break
		}
		total += len(b)
	}
	if total == 0 {
		t.Fatal("generated nothing")
	}
	if total > 100000 {
		t.Fatalf("tiny model generated %d — should saturate", total)
	}
}

func TestIndependentSegmentsCrossCombine(t *testing.T) {
	// Seeds where segment values correlate: (a...a), (b...b). EIP's
	// independence assumption must produce cross-combinations like
	// (a...b) — the very behaviour that tanks its hitrate in the paper.
	var seeds []ipaddr.Addr
	for i := 0; i < 30; i++ {
		seeds = append(seeds,
			ipaddr.MustParse("2001:db8::aa00").AddLo(uint64(i)),
			ipaddr.MustParse("2001:db8::bb40").AddLo(uint64(i)))
	}
	g := New()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	seedSet := ipaddr.NewSet(seeds...)
	novel := 0
	for i := 0; i < 10; i++ {
		for _, a := range g.NextBatch(200) {
			if !seedSet.Contains(a) {
				novel++
			}
		}
	}
	if novel == 0 {
		t.Fatal("no novel cross-combinations generated")
	}
}

func TestFeedbackIgnored(t *testing.T) {
	g := New()
	if err := g.Init(structuredSeeds()); err != nil {
		t.Fatal(err)
	}
	g.Feedback([]tga.ProbeResult{{Active: true}})
	if len(g.NextBatch(10)) == 0 {
		t.Fatal("generation stopped after feedback")
	}
}
