package sixsense

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func denseSeeds() []ipaddr.Addr {
	var out []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8::")
	b := ipaddr.MustParse("2600:9000:1::")
	for i := 1; i <= 50; i++ {
		out = append(out, a.AddLo(uint64(i)), b.AddLo(uint64(i)))
	}
	return out
}

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "6Sense" || !g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestArmsPerPrefix(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	if g.ArmCount() != 2 {
		t.Fatalf("arms = %d, want one per /32", g.ArmCount())
	}
}

func TestGenerationFollowsArmModels(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	p1 := ipaddr.MustParsePrefix("2001:db8::/32")
	p2 := ipaddr.MustParsePrefix("2600:9000::/32")
	batch := g.NextBatch(200)
	if len(batch) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range batch {
		if !p1.Contains(a) && !p2.Contains(a) {
			t.Fatalf("candidate %v outside both seed /32s", a)
		}
	}
}

func TestIntegratedDealiasingBlacklists(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	batch := g.NextBatch(64)
	if len(batch) == 0 {
		t.Fatal("no candidates")
	}
	// Flag the first few candidates as aliased.
	fb := make([]tga.ProbeResult, len(batch))
	for i, a := range batch {
		fb[i] = tga.ProbeResult{Addr: a, Active: true, Aliased: i < 8}
	}
	g.Feedback(fb)
	if g.BlacklistedPrefixes() == 0 {
		t.Fatal("aliased feedback did not blacklist")
	}
	// Future candidates avoid blacklisted /96s.
	flagged := ipaddr.PrefixFrom(batch[0], 96)
	for i := 0; i < 10; i++ {
		for _, a := range g.NextBatch(128) {
			if flagged.Contains(a) {
				t.Fatalf("candidate %v inside blacklisted /96", a)
			}
		}
	}
}

func TestDiversityShareReachesColdArms(t *testing.T) {
	// One hot arm (many seeds) + many one-seed arms: the diversity share
	// must still probe the cold arms.
	var seeds []ipaddr.Addr
	hot := ipaddr.MustParse("2001:db8::")
	for i := 1; i <= 200; i++ {
		seeds = append(seeds, hot.AddLo(uint64(i)))
	}
	var coldPrefixes []ipaddr.Prefix
	for i := 0; i < 10; i++ {
		base := ipaddr.AddrFrom64s(0x2600_0000_0000_0000|uint64(i+1)<<32, 0)
		seeds = append(seeds, base.AddLo(1))
		coldPrefixes = append(coldPrefixes, ipaddr.PrefixFrom(base, 32))
	}
	g := New()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	batch := g.NextBatch(500)
	coldTouched := 0
	for _, p := range coldPrefixes {
		for _, a := range batch {
			if p.Contains(a) {
				coldTouched++
				break
			}
		}
	}
	if coldTouched < 5 {
		t.Fatalf("diversity share touched only %d/10 cold arms", coldTouched)
	}
}

func TestHitsSharpenModel(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	target := ipaddr.MustParsePrefix("2001:db8::/32")
	// Reward the 2001:db8 arm heavily.
	for round := 0; round < 5; round++ {
		batch := g.NextBatch(256)
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: target.Contains(a)}
		}
		g.Feedback(fb)
	}
	batch := g.NextBatch(400)
	in := 0
	for _, a := range batch {
		if target.Contains(a) {
			in++
		}
	}
	// Exploit share (75%) should lean to the rewarded arm.
	if frac := float64(in) / float64(len(batch)); frac < 0.55 {
		t.Fatalf("rewarded arm got only %.2f of the batch", frac)
	}
}
