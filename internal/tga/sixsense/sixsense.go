// Package sixsense implements 6Sense (Williams et al., USENIX Security
// 2024): an online reinforcement-learning TGA. Seeds are grouped into
// per-/32 "arms"; each arm holds a position-conditioned first-order Markov
// model over the remaining 24 nybbles (the lightweight stand-in for
// 6Sense's per-segment deep generator). Every batch, the probe budget is
// split between exploiting high-reward arms and a dedicated
// network-diversity share spent on the least-probed arms — 6Sense's
// AS-coverage budget. Probe outcomes both update arm rewards and sharpen
// the winning arm's Markov model.
//
// Uniquely among the studied TGAs, 6Sense dealiases online during
// generation: hits flagged as aliased are treated as misses, their /96 is
// blacklisted, and future candidates inside blacklisted prefixes are
// discarded before probing. This is why its output stays nearly
// alias-free even on fully aliased seed datasets (Table 4).
package sixsense

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

const (
	prefixNybbles = 8  // arm granularity: /32
	modelStart    = 8  // first modelled position
	aliasBits     = 96 // blacklist granularity
)

// arm is one /32 prefix group with its generation model and statistics.
type arm struct {
	prefixHi uint64 // top 32 bits (nybbles 0..7) in the high word's top half
	fixed    [prefixNybbles]byte
	// counts[pos-modelStart][prev][next] is the Markov transition tally.
	counts [ipaddr.NybbleCount - modelStart][16][16]int
	// marginal[pos-modelStart][v] backs off when a context is unseen.
	marginal [ipaddr.NybbleCount - modelStart][16]int
	seeds    int
	probes   int
	hits     int
}

func (a *arm) observe(addr ipaddr.Addr, weight int) {
	prev := addr.Nybble(modelStart - 1)
	for pos := modelStart; pos < ipaddr.NybbleCount; pos++ {
		v := addr.Nybble(pos)
		a.counts[pos-modelStart][prev][v] += weight
		a.marginal[pos-modelStart][v] += weight
		prev = v
	}
}

// sample draws one address from the arm's model.
func (a *arm) sample(rng *rand.Rand) ipaddr.Addr {
	var out ipaddr.Addr
	for i, v := range a.fixed {
		out = out.WithNybble(i, v)
	}
	prev := a.fixed[prefixNybbles-1]
	for pos := modelStart; pos < ipaddr.NybbleCount; pos++ {
		row := a.counts[pos-modelStart][prev]
		total := 0
		for _, c := range row {
			total += c
		}
		var v byte
		if total == 0 {
			// Back off to the positional marginal.
			m := a.marginal[pos-modelStart]
			mt := 0
			for _, c := range m {
				mt += c
			}
			if mt == 0 {
				v = 0
			} else {
				v = weightedPick(m[:], mt, rng)
			}
		} else {
			v = weightedPick(row[:], total, rng)
		}
		out = out.WithNybble(pos, v)
		prev = v
	}
	return out
}

func weightedPick(counts []int, total int, rng *rand.Rand) byte {
	u := rng.Intn(total)
	for v, c := range counts {
		if u < c {
			return byte(v)
		}
		u -= c
	}
	return 0
}

func (a *arm) reward() float64 {
	return (float64(a.hits) + 1) / (float64(a.probes) + 2)
}

// Generator is the 6Sense TGA. Construct with New.
type Generator struct {
	// ASShare is the budget fraction dedicated to network diversity —
	// probing the least-explored arms (default 0.25).
	ASShare float64
	// Seed drives sampling (default 1).
	Seed int64

	rng     *rand.Rand
	arms    []*arm
	byHi    map[uint64]*arm
	pending map[ipaddr.Addr]*arm
	emitted *ipaddr.Set
	// aliasBlacklist holds /96s flagged by the integrated dealiaser.
	aliasBlacklist *ipaddr.Trie
	dry            int
}

// New returns a 6Sense generator with default parameters.
func New() *Generator { return &Generator{ASShare: 0.25, Seed: 1} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Sense" }

// Online implements tga.Generator.
func (g *Generator) Online() bool { return true }

// Model is 6Sense's cacheable mined model: the seed-trained /32 arms.
// Runs sharpen their arms online (observe with weight 2 on hits), so
// InitFromModel deep-copies every arm — the cached Model itself is never
// written after mining.
type Model struct {
	arms []arm
}

// ArmCount reports the number of trained arms.
func (m *Model) ArmCount() int { return len(m.arms) }

// ModelParams implements tga.ModelBuilder. The arm granularity and Markov
// structure are fixed; ASShare and Seed only steer the online search and
// sampling, so no parameter shapes the mined model.
func (g *Generator) ModelParams() string { return "" }

// BuildModel implements tga.ModelBuilder: it groups seeds into /32 arms
// and trains each arm's Markov model over its own seeds. Arms are
// independent, so training fans out per arm on large seed sets; grouping
// preserves first-seen arm order and per-arm seed order, so the result is
// identical to the serial pass for any seed order.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixsense: empty seed set")
	}
	keyIdx := make(map[uint64]int)
	var groups [][]int // seed indices per arm, in seed order
	for i, s := range seeds {
		k := s.Hi() >> 32
		gi, ok := keyIdx[k]
		if !ok {
			gi = len(groups)
			keyIdx[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	arms := make([]arm, len(groups))
	trainOne := func(i int) {
		first := seeds[groups[i][0]]
		a := &arms[i]
		a.prefixHi = first.Hi() >> 32
		for p := 0; p < prefixNybbles; p++ {
			a.fixed[p] = first.Nybble(p)
		}
		for _, j := range groups[i] {
			a.observe(seeds[j], 1)
			a.seeds++
		}
	}
	if len(seeds) >= tga.ParallelMineThreshold {
		tga.MineParallel(len(groups), trainOne)
	} else {
		for i := range groups {
			trainOne(i)
		}
	}
	return &Model{arms: arms}, nil
}

// InitFromModel implements tga.ModelBuilder.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	mm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("sixsense: model type %T", m)
	}
	if g.ASShare <= 0 || g.ASShare >= 1 {
		g.ASShare = 0.25
	}
	g.rng = rand.New(rand.NewSource(g.Seed))
	g.byHi = make(map[uint64]*arm, len(mm.arms))
	g.arms = make([]*arm, len(mm.arms))
	g.pending = make(map[ipaddr.Addr]*arm)
	g.emitted = ipaddr.NewSet()
	g.aliasBlacklist = ipaddr.NewTrie()
	g.dry = 0
	for i := range mm.arms {
		cp := mm.arms[i] // array-valued fields copy by value
		g.arms[i] = &cp
		g.byHi[cp.prefixHi] = &cp
	}
	return nil
}

// Init groups seeds into arms and trains the per-arm models.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// NextBatch splits the batch between reward-ranked arms and the
// diversity share, sampling candidates from each arm's Markov model and
// discarding blacklisted-alias candidates before they cost probes.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	if len(g.arms) == 0 || g.dry > 4 {
		return nil
	}
	out := make([]ipaddr.Addr, 0, n)
	sampleFrom := func(a *arm, k int) {
		misses := 0
		for got := 0; got < k && misses < 8*k+16; {
			c := a.sample(g.rng)
			if !g.emitted.Contains(c) && !g.aliasBlacklist.Contains(c) {
				g.emitted.Add(c)
				out = append(out, c)
				g.pending[c] = a
				a.probes++
				got++
				continue
			}
			// The model path is saturated: explore its immediate
			// neighbourhood instead of resampling from scratch. The real
			// 6Sense's neural generator has full support over the nybble
			// alphabet; single-position perturbation restores that without
			// abandoning the learned pattern.
			c = c.WithNybble(modelStart+g.rng.Intn(ipaddr.NybbleCount-modelStart), byte(g.rng.Intn(16)))
			if g.emitted.Contains(c) || g.aliasBlacklist.Contains(c) {
				misses++
				continue
			}
			g.emitted.Add(c)
			out = append(out, c)
			g.pending[c] = a
			a.probes++
			got++
		}
	}

	exploit := n - int(float64(n)*g.ASShare)
	byReward := append([]*arm(nil), g.arms...)
	sort.SliceStable(byReward, func(i, j int) bool { return byReward[i].reward() > byReward[j].reward() })
	share := exploit / 2
	for _, a := range byReward {
		if len(out) >= exploit {
			break
		}
		if share < 1 {
			share = 1
		}
		if rem := exploit - len(out); share > rem {
			share = rem
		}
		sampleFrom(a, share)
		share /= 2
	}

	// Diversity share: least-probed arms first, one candidate each.
	byProbes := append([]*arm(nil), g.arms...)
	sort.SliceStable(byProbes, func(i, j int) bool { return byProbes[i].probes < byProbes[j].probes })
	for _, a := range byProbes {
		if len(out) >= n {
			break
		}
		sampleFrom(a, 1)
	}
	if len(out) == 0 {
		g.dry++
	} else {
		g.dry = 0
	}
	return out
}

// Feedback applies the integrated dealiasing and reinforcement update:
// aliased hits blacklist their /96 and count as misses; genuine hits
// reinforce both the arm's reward and its Markov model.
func (g *Generator) Feedback(results []tga.ProbeResult) {
	for _, r := range results {
		a, ok := g.pending[r.Addr]
		if !ok {
			continue
		}
		delete(g.pending, r.Addr)
		if r.Aliased {
			g.aliasBlacklist.Insert(ipaddr.PrefixFrom(r.Addr, aliasBits), true)
			continue
		}
		if r.Active {
			a.hits++
			// Online model sharpening: hits are high-quality training data.
			a.observe(r.Addr, 2)
		}
	}
}

// ArmCount reports the number of /32 arms (diagnostics).
func (g *Generator) ArmCount() int { return len(g.arms) }

// BlacklistedPrefixes reports how many /96s the integrated dealiaser has
// blacklisted (diagnostics).
func (g *Generator) BlacklistedPrefixes() int { return g.aliasBlacklist.Len() }
