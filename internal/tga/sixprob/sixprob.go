// Package sixprob implements 6Prob, a probabilistic target generation
// algorithm from the modern structure-aware family the paper's study set
// does not cover. The mined model is a probability-weighted generation
// trie over the 32 nybble positions of the seed addresses: every node
// carries the number of seeds that pass through it, so an edge's weight
// is the empirical probability of its value given the prefix above it.
// Single-seed subtrees are path-compressed into tails, which keeps the
// trie near-linear in the seed count and lets it scale to hitlist-sized
// inputs (mining fans out across CPUs above tga.ParallelMineThreshold).
//
// Generation is a deterministic best-first walk: a max-heap of partial
// addresses ordered by accumulated log-probability. Expanding a partial
// address either follows an existing trie edge (probability proportional
// to its visit count, discounted by 1-Eps) or mutates the position to a
// value the trie has not seen there (probability Eps times the value's
// smoothed global frequency at that position), after which the walk
// borrows the heaviest sibling subtree to complete the address. At least
// one mutation is required — zero-mutation completions are the seeds
// themselves — and at most MaxMutations, which bounds the candidate
// space. Candidates therefore pop in highest-probability-first order,
// reproducibly: ties are broken by a hash keyed on the run seed, so a
// run is deterministic under its seed.
package sixprob

import (
	"fmt"
	"math"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Defaults for the generation knobs. Eps, MaxMutations, TopMutations and
// Beam shape candidate drawing only, not the mined model, so they stay
// out of ModelParams.
const (
	DefaultEps          = 0.05
	DefaultMaxMutations = 3
	DefaultTopMutations = 6
	DefaultBeam         = 1 << 16
)

// Model is the immutable mined artifact: the counted generation trie plus
// the global per-position value frequencies used to weight mutations.
type Model struct {
	root  *node
	freq  [ipaddr.NybbleCount][16]int
	byFrq [ipaddr.NybbleCount][16]byte // values at each position, most frequent first
	total int
}

// node is one trie node. A node reached by the value at position d-1
// describes positions d and below: kids[v] is the subtree of seeds with
// value v at position d, count the number of seeds underneath. Subtrees
// holding a single seed are compressed: kids is nil and tail lists the
// seed's remaining nybbles.
type node struct {
	count int
	kids  *[16]*node
	tail  []byte
}

// Generator implements tga.Generator and tga.ModelBuilder.
type Generator struct {
	// Eps is the probability mass reserved for mutating a position to a
	// value unseen there, split across candidates by global frequency.
	Eps float64
	// MaxMutations caps mutated positions per candidate.
	MaxMutations int
	// TopMutations caps how many mutation values are tried per position
	// (most globally frequent first).
	TopMutations int
	// Beam caps the search heap; on overflow the worst half is dropped
	// deterministically. Bounds memory on large budgets.
	Beam int
	// Seed breaks log-probability ties; same seed, same draw order.
	Seed uint64

	model    *Model
	frontier candHeap
	emitted  map[ipaddr.Addr]struct{}
	tick     uint64

	// Derived once per InitFromModel so the hot path never calls math.Log:
	// lnKeep/lnEps are the follow/mutate discounts, mutLP[pos][v] the full
	// mutation term lnEps+log((freq+1)/(total+16)), maxMutLP its maximum
	// over v (the cheapest possible mutation at a position — used to skip
	// positions no mutation can survive the floor at).
	lnKeep   float64
	lnEps    float64
	mutLP    [ipaddr.NybbleCount][16]float64
	maxMutLP [ipaddr.NybbleCount]float64
	// floor is the worst log-probability to survive the last beam prune;
	// pushes strictly below it are dropped in O(1) — they would not
	// outlive the next prune either, and dropping them deterministically
	// keeps the frontier from thrashing through repeated sorts.
	floor    float64
	hasFloor bool
}

// New returns a 6Prob generator with default knobs.
func New() *Generator {
	return &Generator{
		Eps:          DefaultEps,
		MaxMutations: DefaultMaxMutations,
		TopMutations: DefaultTopMutations,
		Beam:         DefaultBeam,
		Seed:         1,
	}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Prob" }

// Online implements tga.Generator: 6Prob is offline, so it rides the
// pipelined driver and the model cache.
func (g *Generator) Online() bool { return false }

// ModelParams implements tga.ModelBuilder. The trie is a pure function of
// the seeds — every generation knob is runtime-only — so the encoding
// carries only a format version.
func (g *Generator) ModelParams() string { return "v=1" }

// BuildModel implements tga.ModelBuilder: it mines the counted trie and
// the global value frequencies. Input is canonicalized first — the trie's
// linear grouping sweep requires sorted seeds, and unsorted input would
// silently drop every non-contiguous value run.
func (g *Generator) BuildModel(seedAddrs []ipaddr.Addr) (tga.Model, error) {
	if len(seedAddrs) == 0 {
		return nil, fmt.Errorf("sixprob: no seeds")
	}
	seedAddrs = tga.CanonicalSeeds(seedAddrs)
	m := &Model{total: len(seedAddrs)}
	m.freq = tga.ValueCounts(seedAddrs)
	for pos := 0; pos < ipaddr.NybbleCount; pos++ {
		for v := 0; v < 16; v++ {
			m.byFrq[pos][v] = byte(v)
		}
		f := m.freq[pos]
		order := m.byFrq[pos][:]
		sort.SliceStable(order, func(i, j int) bool {
			return f[order[i]] > f[order[j]]
		})
	}
	m.root = buildTrie(seedAddrs, 0, len(seedAddrs) >= tga.ParallelMineThreshold)
	return m, nil
}

// buildTrie recurses over a sorted, contiguous seed range. Sorted input
// means every value at the current position is a contiguous run, so
// grouping is a linear sweep. At the top level of large inputs the
// independent value groups mine in parallel.
func buildTrie(seedAddrs []ipaddr.Addr, depth int, parallel bool) *node {
	n := &node{count: len(seedAddrs)}
	if len(seedAddrs) == 0 || depth == ipaddr.NybbleCount {
		return n
	}
	if len(seedAddrs) == 1 {
		tail := make([]byte, ipaddr.NybbleCount-depth)
		for i := range tail {
			tail[i] = seedAddrs[0].Nybble(depth + i)
		}
		n.tail = tail
		return n
	}
	type group struct {
		v    byte
		span []ipaddr.Addr
	}
	var groups []group
	for lo := 0; lo < len(seedAddrs); {
		v := seedAddrs[lo].Nybble(depth)
		hi := lo + 1
		for hi < len(seedAddrs) && seedAddrs[hi].Nybble(depth) == v {
			hi++
		}
		groups = append(groups, group{v, seedAddrs[lo:hi]})
		lo = hi
	}
	n.kids = new([16]*node)
	if parallel {
		tga.MineParallel(len(groups), func(i int) {
			n.kids[groups[i].v] = buildTrie(groups[i].span, depth+1, false)
		})
	} else {
		for _, gr := range groups {
			n.kids[gr.v] = buildTrie(gr.span, depth+1, false)
		}
	}
	return n
}

// Init implements tga.Generator: BuildModel + InitFromModel.
func (g *Generator) Init(seedAddrs []ipaddr.Addr) error {
	m, err := g.BuildModel(seedAddrs)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seedAddrs)
}

// InitFromModel implements tga.ModelBuilder: it adopts a mined model
// (possibly from the cross-run cache) and builds fresh run state. The
// model is never written through. Generation knobs (Eps, TopMutations,
// ...) must be set before this call — the log-probability tables are
// derived here.
func (g *Generator) InitFromModel(m tga.Model, _ []ipaddr.Addr) error {
	mm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("sixprob: model type %T", m)
	}
	g.model = mm
	g.emitted = make(map[ipaddr.Addr]struct{})
	g.frontier = candHeap{}
	g.tick = 0
	g.hasFloor = false
	g.lnKeep = math.Log(1 - g.Eps)
	g.lnEps = math.Log(g.Eps)
	denom := float64(mm.total + 16)
	for pos := 0; pos < ipaddr.NybbleCount; pos++ {
		g.maxMutLP[pos] = math.Inf(-1)
		for v := 0; v < 16; v++ {
			g.mutLP[pos][v] = g.lnEps + math.Log((float64(mm.freq[pos][v])+1)/denom)
			if g.mutLP[pos][v] > g.maxMutLP[pos] {
				g.maxMutLP[pos] = g.mutLP[pos][v]
			}
		}
	}
	if mm.total > 0 {
		g.push(cand{n: mm.root, tail: mm.root.tail, lp: 0})
	}
	return nil
}

// cand is a partial address: positions [0,depth) are fixed in addr, the
// continuation is either a trie node (kids consulted at position depth)
// or a compressed tail. lp is the accumulated log-probability.
type cand struct {
	lp    float64
	addr  ipaddr.Addr
	depth int
	muts  int
	n     *node // nil when completing along a tail
	tail  []byte
	tie   uint64
	tick  uint64
}

// NextBatch implements tga.Generator: it pops complete addresses in
// highest-probability-first order, expanding partial ones as it goes.
func (g *Generator) NextBatch(nwant int) []ipaddr.Addr {
	if g.model == nil || nwant <= 0 {
		return nil
	}
	out := make([]ipaddr.Addr, 0, nwant)
	for len(out) < nwant && g.frontier.Len() > 0 {
		c := g.frontier.pop()
		if c.depth == ipaddr.NybbleCount {
			// Complete. Pure-trie completions are the seeds themselves;
			// only mutated addresses are candidates.
			if c.muts == 0 {
				continue
			}
			if _, dup := g.emitted[c.addr]; dup {
				continue
			}
			g.emitted[c.addr] = struct{}{}
			out = append(out, c.addr)
			continue
		}
		g.expand(c)
	}
	return out
}

// expand pushes every extension of c: the trie's own edges discounted by
// 1-Eps, plus up to TopMutations mutated values per position weighted by
// Eps times their smoothed global frequency. Compressed tails expand in
// bulk — one pop pushes the pure completion plus the mutations at every
// remaining position, with the same log-probabilities the one-position
// walk would accumulate, so the heap never carries the long chain of
// intermediate pure-path candidates.
func (g *Generator) expand(c cand) {
	if c.tail != nil {
		g.expandTail(c)
		return
	}
	pos := c.depth
	total := float64(c.n.count)
	var heaviest *node
	for v := 0; v < 16; v++ {
		child := c.n.kids[v]
		if child == nil {
			continue
		}
		if heaviest == nil || child.count > heaviest.count {
			heaviest = child
		}
		g.push(cand{
			lp:    c.lp + math.Log(float64(child.count)/total) + g.lnKeep,
			addr:  c.addr.WithNybble(pos, byte(v)),
			depth: pos + 1,
			muts:  c.muts,
			n:     child,
			tail:  child.tail,
		})
	}
	if c.muts < g.MaxMutations && heaviest != nil {
		// Mutations to values without an edge borrow the heaviest
		// sibling's subtree to complete the low half of the address.
		g.pushMutationsAt(c.addr, pos, c.lp, c.muts, func(v byte) bool { return c.n.kids[v] != nil }, heaviest.tail, heaviest)
	}
}

// expandTail bulk-expands a path-compressed continuation: the pure
// completion (skipped at zero mutations — those are the seeds), then the
// mutation candidates at each tail position, each priced as if the walk
// had followed the tail one position at a time.
func (g *Generator) expandTail(c cand) {
	pos := c.depth
	if c.muts > 0 {
		addr := c.addr
		for i, v := range c.tail {
			addr = addr.WithNybble(pos+i, v)
		}
		g.push(cand{
			lp:    c.lp + float64(len(c.tail))*g.lnKeep,
			addr:  addr,
			depth: ipaddr.NybbleCount,
			muts:  c.muts,
		})
	}
	if c.muts >= g.MaxMutations {
		return
	}
	prefix := c.addr
	for i, v := range c.tail {
		// Skip positions where even the best mutation lands under the
		// floor; the floor only rises while we push, so the snapshot
		// taken here is conservative.
		lp := c.lp + float64(i)*g.lnKeep
		if floor, ok := g.activeFloor(); ok && lp+g.maxMutLP[pos+i] < floor {
			prefix = prefix.WithNybble(pos+i, v)
			continue
		}
		g.pushMutationsAt(prefix, pos+i, lp, c.muts,
			func(w byte) bool { return w == v }, c.tail[i+1:], nil)
		prefix = prefix.WithNybble(pos+i, v)
	}
}

// pushMutationsAt pushes the top globally-frequent mutation values at one
// position, skipping values the trie already covers there (skip), with
// the given continuation. byFrq order means mutLP is non-increasing along
// the walk, so the first value under the floor ends the position.
func (g *Generator) pushMutationsAt(prefix ipaddr.Addr, pos int, lp float64, muts int,
	skip func(byte) bool, tail []byte, n *node) {
	floor, gated := g.activeFloor()
	pushed := 0
	for _, v := range g.model.byFrq[pos] {
		if gated && lp+g.mutLP[pos][v] < floor {
			return
		}
		if skip(v) {
			continue
		}
		g.push(cand{
			lp:    lp + g.mutLP[pos][v],
			addr:  prefix.WithNybble(pos, v),
			depth: pos + 1,
			muts:  muts + 1,
			n:     n,
			tail:  tail,
		})
		if pushed++; pushed == g.TopMutations {
			return
		}
	}
}

// activeFloor reports the beam floor when it is in force: the frontier
// holds at least Beam/2 entries, so a candidate under the last prune's
// cut line has no chance of surviving. Once pops drain the frontier below
// half capacity there is room again and the floor stops gating, exactly
// as a beam with free slots keeps low scorers.
func (g *Generator) activeFloor() (float64, bool) {
	if g.hasFloor && g.frontier.Len() >= g.Beam/2 {
		return g.floor, true
	}
	return 0, false
}

// push stamps the candidate's deterministic tie-break key and inserts it,
// pruning the frontier to the Beam/2 best entries when it outgrows Beam.
// Candidates scoring strictly below the active floor are dropped up
// front — the next prune would discard them anyway, and the O(1) drop is
// what keeps mutation fan-out from forcing a sort every Beam/2 pushes.
func (g *Generator) push(c cand) {
	if floor, ok := g.activeFloor(); ok && c.lp < floor {
		return
	}
	if c.n != nil && c.n.tail != nil {
		c.n = nil // normalize: tail continuation owns the remainder
	}
	c.tie = mix64(g.Seed, c.addr.Hi(), c.addr.Lo(), uint64(c.depth))
	c.tick = g.tick
	g.tick++
	g.frontier.push(c)
	if g.Beam > 0 && g.frontier.Len() > g.Beam {
		g.floor = g.frontier.prune(g.Beam / 2)
		g.hasFloor = true
	}
}

// Feedback implements tga.Generator; 6Prob is offline and ignores it.
func (g *Generator) Feedback([]tga.ProbeResult) {}

// before is the draw order: higher probability first, then the seeded
// tie-break hash, then insertion order.
func (c cand) before(o cand) bool {
	if c.lp != o.lp {
		return c.lp > o.lp
	}
	if c.tie != o.tie {
		return c.tie < o.tie
	}
	return c.tick < o.tick
}

// candHeap is an index max-heap: the heap order lives in idx, so sifts
// and prunes move 4-byte indices instead of the ~90-byte cand structs,
// which sit in a reusable slab addressed through a free list.
type candHeap struct {
	slab []cand
	free []int32
	idx  []int32
}

func (h *candHeap) Len() int { return len(h.idx) }

func (h *candHeap) less(i, j int) bool { return h.slab[h.idx[i]].before(h.slab[h.idx[j]]) }

func (h *candHeap) push(c cand) {
	var slot int32
	if n := len(h.free); n > 0 {
		slot = h.free[n-1]
		h.free = h.free[:n-1]
		h.slab[slot] = c
	} else {
		slot = int32(len(h.slab))
		h.slab = append(h.slab, c)
	}
	h.idx = append(h.idx, slot)
	h.up(len(h.idx) - 1)
}

func (h *candHeap) pop() cand {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if last > 0 {
		h.down(0)
	}
	c := h.slab[top]
	h.slab[top] = cand{} // release the node/tail pointers for GC
	h.free = append(h.free, top)
	return c
}

// prune keeps the best `keep` candidates, frees the rest, and returns the
// worst surviving log-probability — the new beam floor.
func (h *candHeap) prune(keep int) float64 {
	sort.Slice(h.idx, func(i, j int) bool { return h.less(i, j) })
	for _, slot := range h.idx[keep:] {
		h.slab[slot] = cand{}
		h.free = append(h.free, slot)
	}
	h.idx = h.idx[:keep]
	for i := keep/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h.slab[h.idx[keep-1]].lp
}

func (h *candHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.idx[i], h.idx[p] = h.idx[p], h.idx[i]
		i = p
	}
}

func (h *candHeap) down(i int) {
	n := len(h.idx)
	for {
		kid := 2*i + 1
		if kid >= n {
			return
		}
		if r := kid + 1; r < n && h.less(r, kid) {
			kid = r
		}
		if !h.less(kid, i) {
			return
		}
		h.idx[i], h.idx[kid] = h.idx[kid], h.idx[i]
		i = kid
	}
}

// mix64 folds values into a well-mixed 64-bit hash (splitmix64 chain).
func mix64(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h = (h ^ h>>30) * 0xbf58476d1ce4e5b9
		h = (h ^ h>>27) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
