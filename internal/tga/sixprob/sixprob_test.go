package sixprob

import (
	"fmt"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// testSeeds builds a structured seed set: a few /64s with low-entropy
// host patterns, the shape 6Prob's trie is meant to exploit.
func testSeeds(n int) []ipaddr.Addr {
	var out []ipaddr.Addr
	for i := 0; len(out) < n; i++ {
		a := ipaddr.MustParse(fmt.Sprintf("2001:db8:%x:%x::%x", i%7, i%13, i))
		out = append(out, a)
	}
	return tga.CanonicalSeeds(out)
}

func drain(t *testing.T, g tga.Generator, seeds []ipaddr.Addr, n int) []ipaddr.Addr {
	t.Helper()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	var out []ipaddr.Addr
	for len(out) < n {
		b := g.(*Generator).NextBatch(n - len(out))
		if len(b) == 0 {
			break
		}
		out = append(out, b...)
	}
	return out
}

func TestDeterministicDraws(t *testing.T) {
	seeds := testSeeds(200)
	a := drain(t, New(), seeds, 500)
	b := drain(t, New(), seeds, 500)
	if len(a) == 0 {
		t.Fatal("no candidates")
	}
	if len(a) != len(b) {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCandidatesAreNotSeeds(t *testing.T) {
	seeds := testSeeds(100)
	seedSet := ipaddr.NewSet(seeds...)
	got := drain(t, New(), seeds, 1000)
	if len(got) < 100 {
		t.Fatalf("only %d candidates from 100 seeds", len(got))
	}
	dup := ipaddr.NewSet()
	for _, a := range got {
		if seedSet.Contains(a) {
			t.Fatalf("candidate %v is a seed", a)
		}
		if dup.Contains(a) {
			t.Fatalf("candidate %v emitted twice", a)
		}
		dup.Add(a)
	}
}

// TestModelRunStateSplit pins the ModelBuilder contract: Init and
// BuildModel+InitFromModel draw identically, and a shared model instance
// is not written through by a run.
func TestModelRunStateSplit(t *testing.T) {
	seeds := testSeeds(150)
	direct := drain(t, New(), seeds, 400)

	builder := New()
	m, err := builder.BuildModel(seeds)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		g := New()
		if err := g.InitFromModel(m, seeds); err != nil {
			t.Fatal(err)
		}
		var got []ipaddr.Addr
		for len(got) < 400 {
			b := g.NextBatch(400 - len(got))
			if len(b) == 0 {
				break
			}
			got = append(got, b...)
		}
		if len(got) != len(direct) {
			t.Fatalf("round %d: %d draws vs %d direct", round, len(got), len(direct))
		}
		for i := range got {
			if got[i] != direct[i] {
				t.Fatalf("round %d draw %d: %v vs %v", round, i, got[i], direct[i])
			}
		}
	}
}

// TestParallelMiningMatchesSerial pins that fanning the trie build across
// CPUs changes nothing about the draws.
func TestParallelMiningMatchesSerial(t *testing.T) {
	old := tga.ParallelMineThreshold
	defer func() { tga.ParallelMineThreshold = old }()

	seeds := testSeeds(300)
	tga.ParallelMineThreshold = 1 << 30
	serial := drain(t, New(), seeds, 300)
	tga.ParallelMineThreshold = 1
	parallel := drain(t, New(), seeds, 300)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

// TestHighestProbabilityFirst checks the drawing order is sensible: the
// very first candidate must be a single mutation of the densest seed
// structure, never a MaxMutations-deep rewrite.
func TestHighestProbabilityFirst(t *testing.T) {
	seeds := testSeeds(120)
	got := drain(t, New(), seeds, 50)
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	best := got[0]
	minDist := ipaddr.NybbleCount + 1
	for _, s := range seeds {
		d := 0
		for i := 0; i < ipaddr.NybbleCount; i++ {
			if s.Nybble(i) != best.Nybble(i) {
				d++
			}
		}
		if d < minDist {
			minDist = d
		}
	}
	if minDist != 1 {
		t.Fatalf("first draw is %d nybbles from the nearest seed, want 1", minDist)
	}
}

func TestEmptyAndTinySeeds(t *testing.T) {
	if err := New().Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
	one := []ipaddr.Addr{ipaddr.MustParse("2001:db8::1")}
	got := drain(t, New(), one, 50)
	if len(got) == 0 {
		t.Fatal("single seed produced nothing")
	}
	for _, a := range got {
		if a == one[0] {
			t.Fatal("single seed re-emitted")
		}
	}
}

// TestBeamPruneKeepsDeterminism forces the beam cap low enough to prune
// and checks draws stay reproducible.
func TestBeamPruneKeepsDeterminism(t *testing.T) {
	seeds := testSeeds(200)
	mk := func() *Generator {
		g := New()
		g.Beam = 64
		return g
	}
	a := drain(t, mk(), seeds, 300)
	b := drain(t, mk(), seeds, 300)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs under pruning", i)
		}
	}
}
