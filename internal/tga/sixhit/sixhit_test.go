package sixhit

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func denseSeeds() []ipaddr.Addr {
	var out []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8::")
	b := ipaddr.MustParse("2600:9000:1::")
	for i := 1; i <= 40; i++ {
		out = append(out, a.AddLo(uint64(i)), b.AddLo(uint64(i*8)))
	}
	return out
}

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "6Hit" || !g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestQValuesSteerTowardRewardedRegion(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	reward := ipaddr.MustParsePrefix("2600:9000::/32")
	for round := 0; round < 8; round++ {
		batch := g.NextBatch(256)
		if len(batch) == 0 {
			t.Fatal("generator dry")
		}
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: reward.Contains(a)}
		}
		g.Feedback(fb)
	}
	batch := g.NextBatch(512)
	in := 0
	for _, a := range batch {
		if reward.Contains(a) {
			in++
		}
	}
	if frac := float64(in) / float64(len(batch)); frac < 0.5 {
		t.Fatalf("rewarded region share = %.2f", frac)
	}
}

func TestEpsilonExplorationPersists(t *testing.T) {
	g := New()
	g.Epsilon = 0.3
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	reward := ipaddr.MustParsePrefix("2600:9000::/32")
	other := ipaddr.MustParsePrefix("2001:db8::/32")
	for round := 0; round < 6; round++ {
		batch := g.NextBatch(256)
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: reward.Contains(a)}
		}
		g.Feedback(fb)
	}
	// Even with a clear winner, the ε share keeps probing the loser.
	batch := g.NextBatch(512)
	out := 0
	for _, a := range batch {
		if other.Contains(a) {
			out++
		}
	}
	if out == 0 {
		t.Fatal("exploration starved the unrewarded region entirely")
	}
}

func TestPeriodicRebuild(t *testing.T) {
	g := New()
	g.RebuildEvery = 2
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	seen := ipaddr.NewSet()
	for round := 0; round < 8; round++ {
		batch := g.NextBatch(128)
		if len(batch) == 0 {
			break
		}
		for _, a := range batch {
			if !seen.Add(a) {
				t.Fatalf("duplicate %v across rebuilds", a)
			}
		}
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: i%2 == 0}
		}
		g.Feedback(fb)
	}
	if seen.Len() == 0 {
		t.Fatal("nothing generated")
	}
}

func TestDeterministicWithFixedSeed(t *testing.T) {
	run := func() []ipaddr.Addr {
		g := New()
		g.Seed = 99
		if err := g.Init(denseSeeds()); err != nil {
			t.Fatal(err)
		}
		var out []ipaddr.Addr
		for i := 0; i < 3; i++ {
			batch := g.NextBatch(100)
			out = append(out, batch...)
			fb := make([]tga.ProbeResult, len(batch))
			for j, a := range batch {
				fb[j] = tga.ProbeResult{Addr: a, Active: a.Lo()%3 == 0}
			}
			g.Feedback(fb)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverges at %d", i)
		}
	}
}
