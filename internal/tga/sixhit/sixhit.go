// Package sixhit implements 6Hit (Hou et al., INFOCOM 2021): the first
// fully online tree TGA. It builds a 6Tree-style space tree, then treats
// leaf selection as a multi-armed bandit: each leaf carries a Q-value
// updated from batch hit rates, and generation is ε-greedy — mostly the
// best-Q leaves, with a random exploration slice. The tree is recreated
// periodically around accumulated hits.
package sixhit

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Hit TGA. Construct with New.
type Generator struct {
	// MinLeaf stops splitting below this many seeds (default 4).
	MinLeaf int
	// Epsilon is the random-exploration share (default 0.1).
	Epsilon float64
	// Alpha is the Q-value learning rate (default 0.3).
	Alpha float64
	// RebuildEvery recreates the tree after this many feedback rounds
	// (default 16).
	RebuildEvery int
	// Seed drives exploration randomness (default 1).
	Seed int64

	rng     *rand.Rand
	seeds   []ipaddr.Addr
	leaves  []*tga.TreeNode
	q       map[*tga.TreeNode]float64
	batchN  map[*tga.TreeNode]int // probes this round
	batchH  map[*tga.TreeNode]int // hits this round
	pending map[ipaddr.Addr]*tga.TreeNode
	emitted *ipaddr.Set
	hits    []ipaddr.Addr
	rounds  int
}

// New returns a 6Hit generator with default parameters.
func New() *Generator {
	return &Generator{MinLeaf: 4, Epsilon: 0.1, Alpha: 0.3, RebuildEvery: 16, Seed: 1}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Hit" }

// Online implements tga.Generator.
func (g *Generator) Online() bool { return true }

func (g *Generator) minLeaf() int {
	if g.MinLeaf <= 0 {
		return 4
	}
	return g.MinLeaf
}

// ModelParams implements tga.ModelBuilder. Only MinLeaf shapes the initial
// tree; the bandit knobs (Epsilon, Alpha, RebuildEvery, Seed) steer the
// online search and are excluded.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("minleaf=%d", g.minLeaf())
}

// BuildModel implements tga.ModelBuilder: the initial 6Tree-style space
// tree over the (deduplicated) seeds. Later rebuilds fold hits in and stay
// per-run.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixhit: empty seed set")
	}
	uniq := ipaddr.DedupSorted(seeds)
	return tga.SnapshotTree(tga.BuildTreeAuto(uniq, g.minLeaf(), tga.SplitLeftmost)), nil
}

// InitFromModel implements tga.ModelBuilder.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	tm, ok := m.(*tga.TreeModel)
	if !ok {
		return fmt.Errorf("sixhit: model type %T", m)
	}
	if g.Epsilon <= 0 {
		g.Epsilon = 0.1
	}
	if g.Alpha <= 0 {
		g.Alpha = 0.3
	}
	if g.RebuildEvery <= 0 {
		g.RebuildEvery = 16
	}
	g.MinLeaf = g.minLeaf()
	g.rng = rand.New(rand.NewSource(g.Seed))
	g.seeds = seeds
	g.emitted = ipaddr.NewSet()
	g.pending = make(map[ipaddr.Addr]*tga.TreeNode)
	g.adopt(tm.Leaves())
	return nil
}

// Init builds the initial tree.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// adopt installs a fresh leaf set and resets the bandit state over it.
func (g *Generator) adopt(leaves []*tga.TreeNode) {
	g.leaves = leaves
	g.q = make(map[*tga.TreeNode]float64, len(g.leaves))
	g.batchN = make(map[*tga.TreeNode]int)
	g.batchH = make(map[*tga.TreeNode]int)
	for _, l := range g.leaves {
		// Optimistic initialization encourages trying every region once.
		g.q[l] = 0.5
	}
}

func (g *Generator) rebuild() {
	pool := ipaddr.NewOASetFrom(g.seeds)
	for _, h := range g.hits {
		pool.Add(h)
	}
	root := tga.BuildTreeAuto(pool.Slice(), g.MinLeaf, tga.SplitLeftmost)
	g.adopt(root.Leaves())
}

func (g *Generator) live() []*tga.TreeNode {
	out := g.leaves[:0:0]
	for _, l := range g.leaves {
		if l.Gen != nil {
			out = append(out, l)
		}
	}
	return out
}

// NextBatch spends (1-ε) of the batch on the highest-Q leaves and ε on
// uniformly random leaves.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	live := g.live()
	if len(live) == 0 {
		return nil
	}
	sort.SliceStable(live, func(i, j int) bool { return g.q[live[i]] > g.q[live[j]] })

	out := make([]ipaddr.Addr, 0, n)
	take := func(l *tga.TreeNode, k int) {
		for got := 0; got < k; {
			a, ok := l.Gen.Next()
			if !ok {
				l.Gen = nil
				return
			}
			if !g.emitted.Add(a) {
				continue
			}
			out = append(out, a)
			g.pending[a] = l
			g.batchN[l]++
			got++
		}
	}

	exploit := n - int(float64(n)*g.Epsilon)
	// Greedy: top leaf gets half the exploit budget, next gets half of the
	// remainder, and so on.
	share := exploit / 2
	for _, l := range live {
		if len(out) >= exploit {
			break
		}
		if share < 1 {
			share = 1
		}
		if rem := exploit - len(out); share > rem {
			share = rem
		}
		take(l, share)
		share /= 2
	}
	// Explore: random leaves.
	for tries := 0; len(out) < n && tries < 8*len(live); tries++ {
		l := live[g.rng.Intn(len(live))]
		if l.Gen != nil {
			take(l, 1)
		}
	}
	return out
}

// Feedback updates Q-values from the round's hit rates and periodically
// recreates the tree.
func (g *Generator) Feedback(results []tga.ProbeResult) {
	for _, r := range results {
		l, ok := g.pending[r.Addr]
		if !ok {
			continue
		}
		delete(g.pending, r.Addr)
		if r.Active {
			g.batchH[l]++
			l.Hits++
			g.hits = append(g.hits, r.Addr)
		}
		l.Probes++
	}
	for l, n := range g.batchN {
		if n == 0 {
			continue
		}
		reward := float64(g.batchH[l]) / float64(n)
		g.q[l] = (1-g.Alpha)*g.q[l] + g.Alpha*reward
	}
	g.batchN = make(map[*tga.TreeNode]int)
	g.batchH = make(map[*tga.TreeNode]int)

	g.rounds++
	if g.rounds%g.RebuildEvery == 0 {
		g.rebuild()
		g.pending = make(map[ipaddr.Addr]*tga.TreeNode)
	}
}
