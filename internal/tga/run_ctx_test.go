package tga

import (
	"context"
	"sync"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// cancellingProber cancels the run after a fixed number of scan calls.
type cancellingProber struct {
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancellingProber) Scan(ts []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	p.calls++
	if p.calls >= p.after {
		p.cancel()
	}
	out := make([]scanner.Result, len(ts))
	for i, a := range ts {
		out[i] = scanner.Result{Addr: a, Proto: pr}
	}
	return out
}

// ScanActive completes the shared scanner.Prober surface; these tests
// exercise only Scan.
func (p *cancellingProber) ScanActive(ts []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr {
	return nil
}

func manyAddrs(n int) []ipaddr.Addr {
	base := ipaddr.MustParse("2001:db8::")
	out := make([]ipaddr.Addr, n)
	for i := range out {
		out[i] = base.AddLo(uint64(i))
	}
	return out
}

func TestRunContextCancelsBetweenBatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := &staticGen{addrs: manyAddrs(1000)}
	pr := &cancellingProber{cancel: cancel, after: 2}
	res, err := RunContext(ctx, g, nil, RunConfig{Budget: 1000, BatchSize: 100, Prober: pr})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Generated != 200 {
		t.Fatalf("partial result generated = %v, want 200 (2 batches)", res)
	}
	if pr.calls != 2 {
		t.Fatalf("prober calls = %d, want 2", pr.calls)
	}
}

// ctxProber verifies the driver routes through ScanContext when offered.
type ctxProber struct {
	nullProber
	ctxCalls int
}

func (p *ctxProber) ScanContext(ctx context.Context, ts []ipaddr.Addr, pr proto.Protocol) ([]scanner.Result, error) {
	p.ctxCalls++
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.Scan(ts, pr), nil
}

// ScanActiveContext completes the shared scanner.ContextProber surface;
// the driver routes its scans through ScanContext.
func (p *ctxProber) ScanActiveContext(ctx context.Context, ts []ipaddr.Addr, pr proto.Protocol) ([]ipaddr.Addr, error) {
	return nil, ctx.Err()
}

func TestRunContextPrefersContextProber(t *testing.T) {
	g := &staticGen{addrs: manyAddrs(64)}
	pr := &ctxProber{}
	if _, err := RunContext(context.Background(), g, nil,
		RunConfig{Budget: 64, BatchSize: 16, Prober: pr}); err != nil {
		t.Fatal(err)
	}
	if pr.ctxCalls == 0 {
		t.Fatal("ScanContext never used")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := &staticGen{addrs: manyAddrs(10)}
	res, err := RunContext(ctx, g, nil, RunConfig{Budget: 10, Prober: &nullProber{}})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if res.Generated != 0 {
		t.Fatalf("generated = %d", res.Generated)
	}
}

// collectSink gathers events for span assertions.
type collectSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *collectSink) Emit(ev telemetry.Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func (c *collectSink) Close() error { return nil }

func TestRunContextEmitsNestedStageSpans(t *testing.T) {
	sink := &collectSink{}
	tr := telemetry.NewTracer(nil, sink)
	ctx := telemetry.NewContext(context.Background(), tr)

	g := &staticGen{addrs: manyAddrs(64)}
	if _, err := RunContext(ctx, g, nil,
		RunConfig{Budget: 64, BatchSize: 32, Prober: &nullProber{}}); err != nil {
		t.Fatal(err)
	}

	starts := map[string][]telemetry.Event{}
	for _, ev := range sink.events {
		if ev.Type == "span_start" {
			starts[ev.Name] = append(starts[ev.Name], ev)
		}
	}
	if len(starts["run"]) != 1 {
		t.Fatalf("run spans = %d", len(starts["run"]))
	}
	if len(starts["batch"]) < 2 {
		t.Fatalf("batch spans = %d, want >= 2", len(starts["batch"]))
	}
	runID := starts["run"][0].Span
	batchIDs := map[int64]bool{}
	for _, b := range starts["batch"] {
		if b.Parent != runID {
			t.Fatalf("batch parent = %d, want run %d", b.Parent, runID)
		}
		batchIDs[b.Span] = true
	}
	for _, stage := range []string{"generate", "scan", "feedback"} {
		if len(starts[stage]) == 0 {
			t.Fatalf("no %s spans", stage)
		}
		for _, ev := range starts[stage] {
			if !batchIDs[ev.Parent] {
				t.Fatalf("%s span not nested under a batch", stage)
			}
		}
	}
	// tga.* counters accumulate in the tracer's registry.
	if got := tr.Registry().Counter("tga.generated").Load(); got != 64 {
		t.Fatalf("tga.generated = %d", got)
	}
	if tr.Registry().Counter("tga.batches").Load() < 2 {
		t.Fatal("tga.batches not counted")
	}
}
