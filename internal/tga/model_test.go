package tga

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"seedscan/internal/ipaddr"
)

// synthSeeds builds a sorted seed set spread over several /32s with
// clustered low nybbles, enough structure for nontrivial trees.
func synthSeeds(t testing.TB, n int) []ipaddr.Addr {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	set := ipaddr.NewOASet(n)
	prefixes := []string{"2001:db8::", "2001:db9::", "2a01:4f8::", "2400:cb00::"}
	for set.Len() < n {
		base := ipaddr.MustParse(prefixes[rng.Intn(len(prefixes))])
		set.Add(base.AddLo(uint64(rng.Intn(1 << 14))))
	}
	seeds := append([]ipaddr.Addr(nil), set.Slice()...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Less(seeds[j]) })
	return seeds
}

func treesEqual(t *testing.T, a, b *TreeNode) {
	t.Helper()
	if a.SplitPos != b.SplitPos {
		t.Fatalf("SplitPos %d != %d", a.SplitPos, b.SplitPos)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("seed count %d != %d", len(a.Seeds), len(b.Seeds))
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
	if a.Masks != b.Masks {
		t.Fatalf("masks differ at node with %d seeds", len(a.Seeds))
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("child count %d != %d", len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		treesEqual(t, a.Children[i], b.Children[i])
	}
}

func TestBuildTreeParallelMatchesSerial(t *testing.T) {
	seeds := synthSeeds(t, 6000)
	for _, h := range []struct {
		name string
		fn   SplitHeuristic
	}{{"leftmost", SplitLeftmost}, {"minentropy", SplitMinEntropy}} {
		t.Run(h.name, func(t *testing.T) {
			serial := BuildTree(seeds, 4, h.fn)
			par := BuildTreeParallel(seeds, 4, h.fn)
			treesEqual(t, serial, par)
			if serial.CountNodes() != par.CountNodes() {
				t.Fatalf("node count %d != %d", serial.CountNodes(), par.CountNodes())
			}
		})
	}
}

func TestBuildTreeAutoThreshold(t *testing.T) {
	seeds := synthSeeds(t, 512)
	old := ParallelMineThreshold
	defer func() { ParallelMineThreshold = old }()
	ParallelMineThreshold = 1 // force the parallel path on a small set
	treesEqual(t, BuildTree(seeds, 4, SplitLeftmost), BuildTreeAuto(seeds, 4, SplitLeftmost))
}

func TestTreeModelLeavesIndependent(t *testing.T) {
	seeds := synthSeeds(t, 1000)
	root := BuildTree(seeds, 4, SplitLeftmost)
	m := SnapshotTree(root)
	if m.LeafCount() != len(root.Leaves()) {
		t.Fatalf("leaf count %d != %d", m.LeafCount(), len(root.Leaves()))
	}
	if m.NodeCount != root.CountNodes() {
		t.Fatalf("node count %d != %d", m.NodeCount, root.CountNodes())
	}
	a, b := m.Leaves(), m.Leaves()
	// Materialized leaves are mutable run state: advancing one run's
	// LeafGen or counters must not leak into another run over the model.
	a[0].Probes = 99
	a[0].Gen.Next()
	if b[0].Probes != 0 {
		t.Fatal("online counters shared between materializations")
	}
	if b[0].Gen == a[0].Gen {
		t.Fatal("LeafGen shared between materializations")
	}
}

func TestMineParallelCoversAll(t *testing.T) {
	const n = 1000
	var marks [n]int32
	MineParallel(n, func(i int) { atomic.AddInt32(&marks[i], 1) })
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
	MineParallel(0, func(i int) { t.Fatal("called for n=0") })
}
