// Package tga defines the Target Generation Algorithm interface and the
// driver that runs a generator against the scanner, plus the pattern-mining
// machinery (observed-value masks, per-position entropy, space trees, and
// leaf enumerators) shared by the eight TGA implementations in the
// subpackages.
//
// The eight generators reproduce the paper's study set: Entropy/IP, 6Gen,
// 6Tree, 6Hit, DET, 6Graph, 6Scan, and 6Sense. Offline generators ignore
// Feedback; online generators (DET, 6Hit, 6Scan, 6Sense) adapt their
// allocation to probe results, which is also what makes them susceptible
// to aliased-region traps when seeds are not dealiased.
package tga

import (
	"context"
	"fmt"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// ProbeResult tells an online generator how one of its candidates fared.
type ProbeResult struct {
	Addr ipaddr.Addr
	// Active is the raw scan outcome (pre-dealiasing) — online models in
	// the wild adapt to raw responses, which is how they fall into aliased
	// regions.
	Active bool
	// Aliased is the output dealiaser's verdict for the address. Only
	// generators with integrated dealiasing (6Sense) consult it.
	Aliased bool
}

// Generator is a Target Generation Algorithm.
type Generator interface {
	// Name returns the paper's label for the algorithm.
	Name() string
	// Online reports whether the generator adapts to Feedback.
	Online() bool
	// Init ingests the seed dataset. It may be called once per run.
	Init(seeds []ipaddr.Addr) error
	// NextBatch proposes up to n candidate addresses. An empty result
	// means the generator is exhausted.
	NextBatch(n int) []ipaddr.Addr
	// Feedback reports scan outcomes for previously proposed candidates.
	// Offline generators ignore it.
	Feedback(results []ProbeResult)
}

// Prober abstracts the scanner for the driver.
type Prober interface {
	Scan(targets []ipaddr.Addr, p proto.Protocol) []scanner.Result
}

// ContextProber is the cancellable prober surface. When a RunConfig's
// Prober also implements it (as *scanner.Scanner does), the driver routes
// scans through ScanContext so an in-flight scan stops with the run.
type ContextProber interface {
	ScanContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]scanner.Result, error)
}

// Dealiaser abstracts output dealiasing for the driver.
type Dealiaser interface {
	Split(addrs []ipaddr.Addr) (clean, aliased []ipaddr.Addr)
}

// RunConfig parameterizes a generation-and-scan run.
type RunConfig struct {
	// Budget is the number of unique candidate addresses to generate
	// (the paper's 50M, scaled down).
	Budget int
	// BatchSize is the generate→scan→feedback granularity (default 4096).
	BatchSize int
	// Proto selects the probe type.
	Proto proto.Protocol
	// Prober runs the scans (nil: generation-only run, no feedback).
	Prober Prober
	// Dealiaser classifies active outputs (nil: nothing flagged aliased).
	Dealiaser Dealiaser
	// ExcludeSeeds removes seed addresses from the generated set, so the
	// budget buys genuinely new candidates.
	ExcludeSeeds bool
}

// RunResult aggregates a run's outcome.
type RunResult struct {
	Generator string
	Proto     proto.Protocol
	// Generated is the number of unique candidates produced.
	Generated int
	// Hits are dealiased active addresses — the paper's headline metric.
	Hits []ipaddr.Addr
	// AliasedHits are active addresses the dealiaser discarded.
	AliasedHits []ipaddr.Addr
	// Exhausted reports whether the generator ran dry before the budget.
	Exhausted bool
}

// HitSet returns the hits as a set.
func (r *RunResult) HitSet() *ipaddr.Set { return ipaddr.NewSet(r.Hits...) }

// Run drives g: Init with seeds, then batches of generate→scan→feedback
// until the budget is reached or the generator is exhausted. It is
// RunContext with a background context.
func Run(g Generator, seeds []ipaddr.Addr, cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), g, seeds, cfg)
}

// RunContext drives g under ctx: Init with seeds, then batches of
// generate→scan→feedback until the budget is reached, the generator is
// exhausted, or ctx is cancelled. On cancellation the partial result
// gathered so far is returned together with ctx.Err().
//
// When ctx carries a telemetry tracer (telemetry.NewContext), the driver
// emits a span hierarchy — run → batch → generate/scan/dealias/feedback —
// with per-batch budget consumption, and accumulates tga.* counters in the
// tracer's registry.
func RunContext(ctx context.Context, g Generator, seeds []ipaddr.Addr, cfg RunConfig) (*RunResult, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("tga: budget must be positive, got %d", cfg.Budget)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	ctx, runSpan := telemetry.StartSpan(ctx, "run", telemetry.Attrs{
		"generator": g.Name(),
		"proto":     cfg.Proto.String(),
		"budget":    cfg.Budget,
		"batch":     cfg.BatchSize,
		"seeds":     len(seeds),
	})
	reg := telemetry.FromContext(ctx).Registry()
	res := &RunResult{Generator: g.Name(), Proto: cfg.Proto}
	endRun := func(err error) {
		runSpan.EndWith(telemetry.Attrs{
			"generated": res.Generated,
			"hits":      len(res.Hits),
			"aliased":   len(res.AliasedHits),
			"exhausted": res.Exhausted,
			"cancelled": err != nil,
		})
	}

	if err := g.Init(sortedCopy(seeds)); err != nil {
		endRun(err)
		return nil, fmt.Errorf("tga: init %s: %w", g.Name(), err)
	}

	seedSet := ipaddr.NewSet()
	if cfg.ExcludeSeeds {
		seedSet.AddAll(seeds)
	}
	generated := ipaddr.NewSetCap(cfg.Budget)

	idleRounds := 0
	batchIdx := 0
	for generated.Len() < cfg.Budget {
		if err := ctx.Err(); err != nil {
			res.Generated = generated.Len()
			endRun(err)
			return res, err
		}
		batchSpan := runSpan.Child("batch", telemetry.Attrs{"index": batchIdx})
		batchIdx++
		reg.Counter("tga.batches").Inc()

		// Always request a full batch, even when little budget remains:
		// tiny requests starve on seed-or-duplicate candidates (a 1-seed
		// leaf's first enumeration is the seed itself). Extras beyond the
		// budget are discarded.
		genSpan := batchSpan.Child("generate", nil)
		batch := g.NextBatch(cfg.BatchSize)
		rem := cfg.Budget - generated.Len()
		fresh := make([]ipaddr.Addr, 0, len(batch))
		for _, a := range batch {
			if len(fresh) >= rem {
				break
			}
			if cfg.ExcludeSeeds && seedSet.Contains(a) {
				continue
			}
			if generated.Add(a) {
				fresh = append(fresh, a)
			}
		}
		genSpan.EndWith(telemetry.Attrs{"proposed": len(batch), "fresh": len(fresh)})
		reg.Counter("tga.generated").Add(int64(len(fresh)))

		if len(batch) == 0 {
			res.Exhausted = true
			batchSpan.EndWith(telemetry.Attrs{"budget_used": generated.Len(), "exhausted": true})
			break
		}
		if len(fresh) == 0 {
			// The generator is looping over already-produced addresses.
			idleRounds++
			batchSpan.EndWith(telemetry.Attrs{"budget_used": generated.Len(), "idle": true})
			if idleRounds > 64 {
				res.Exhausted = true
				break
			}
			continue
		}
		idleRounds = 0

		if cfg.Prober == nil {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": generated.Len()})
			continue
		}
		scanSpan := batchSpan.Child("scan", nil)
		results, err := scanBatch(ctx, cfg.Prober, fresh, cfg.Proto)
		var active []ipaddr.Addr
		for _, r := range results {
			if r.Active() {
				active = append(active, r.Addr)
			}
		}
		scanSpan.EndWith(telemetry.Attrs{"targets": len(fresh), "active": len(active)})
		if err != nil {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": generated.Len(), "cancelled": true})
			res.Generated = generated.Len()
			endRun(err)
			return res, err
		}

		clean, aliased := active, []ipaddr.Addr(nil)
		if cfg.Dealiaser != nil {
			dealiasSpan := batchSpan.Child("dealias", nil)
			clean, aliased = cfg.Dealiaser.Split(active)
			dealiasSpan.EndWith(telemetry.Attrs{"clean": len(clean), "aliased": len(aliased)})
		}
		res.Hits = append(res.Hits, clean...)
		res.AliasedHits = append(res.AliasedHits, aliased...)
		reg.Counter("tga.hits").Add(int64(len(clean)))
		reg.Counter("tga.aliased_hits").Add(int64(len(aliased)))

		if g.Online() {
			fbSpan := batchSpan.Child("feedback", nil)
			aliasSet := ipaddr.NewSet(aliased...)
			fb := make([]ProbeResult, len(results))
			for i, r := range results {
				fb[i] = ProbeResult{
					Addr:    r.Addr,
					Active:  r.Active(),
					Aliased: aliasSet.Contains(r.Addr),
				}
			}
			g.Feedback(fb)
			fbSpan.EndWith(telemetry.Attrs{"results": len(fb)})
		}
		batchSpan.EndWith(telemetry.Attrs{
			"budget_used": generated.Len(),
			"hits":        len(clean),
			"aliased":     len(aliased),
		})
	}
	res.Generated = generated.Len()
	endRun(nil)
	return res, nil
}

// scanBatch routes one batch through the prober, using the cancellable
// surface when available.
func scanBatch(ctx context.Context, p Prober, targets []ipaddr.Addr, pr proto.Protocol) ([]scanner.Result, error) {
	if cp, ok := p.(ContextProber); ok {
		return cp.ScanContext(ctx, targets, pr)
	}
	return p.Scan(targets, pr), nil
}

// sortedCopy hands generators their seeds in a canonical order. Several
// algorithms are seed-order-sensitive (6Sense's arm creation, 6Gen's
// greedy clustering), and callers often produce seed slices from map-
// backed sets whose order varies run to run; sorting here keeps every
// run reproducible without burdening generators.
func sortedCopy(seeds []ipaddr.Addr) []ipaddr.Addr {
	out := append([]ipaddr.Addr(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// generateBatch is the request granularity Generate uses regardless of
// remaining budget, mirroring RunContext's batching (see below).
const generateBatch = 4096

// Generate runs g without scanning and returns up to budget unique
// candidates — useful for offline analysis and tests.
//
// Like RunContext, it always requests a full batch even when little
// budget remains: tiny requests starve on seed-or-duplicate candidates
// (a 1-seed leaf's first enumeration is the seed itself), which used to
// make Generate falsely report exhaustion near the budget. Extras beyond
// the budget are discarded.
func Generate(g Generator, seeds []ipaddr.Addr, budget int) ([]ipaddr.Addr, error) {
	if err := g.Init(sortedCopy(seeds)); err != nil {
		return nil, err
	}
	out := ipaddr.NewSetCap(budget)
	idle := 0
	for out.Len() < budget {
		batch := g.NextBatch(generateBatch)
		if len(batch) == 0 {
			break
		}
		before := out.Len()
		for _, a := range batch {
			if out.Len() >= budget {
				break
			}
			out.Add(a)
		}
		if out.Len() == before {
			idle++
			if idle > 64 {
				break
			}
		} else {
			idle = 0
		}
	}
	return out.Slice(), nil
}
