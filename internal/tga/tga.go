// Package tga defines the Target Generation Algorithm interface and the
// driver that runs a generator against the scanner, plus the pattern-mining
// machinery (observed-value masks, per-position entropy, space trees, and
// leaf enumerators) shared by the TGA implementations in the
// subpackages.
//
// Eight generators reproduce the paper's study set: Entropy/IP, 6Gen,
// 6Tree, 6Hit, DET, 6Graph, 6Scan, and 6Sense; two more (AddrMiner,
// 6Prob) extend beyond it — see tga/all for the paper-set vs extended-set
// split. Offline generators ignore Feedback; online generators (DET,
// 6Hit, 6Scan, 6Sense, AddrMiner) adapt their allocation to probe
// results, which is also what makes them susceptible to aliased-region
// traps when seeds are not dealiased.
//
// The driver has two execution modes. Online generators run the classic
// lockstep loop — generate, scan, dealias, feedback — because each batch's
// proposals depend on the previous batch's probe results. Offline
// generators run a bounded-depth pipeline: a producer goroutine generates
// and dedups batches ahead of the scanner, so generation overlaps
// scanning and dealiasing. Both modes share the same dedup, budget, and
// idle-round accounting, and produce identical RunResults for offline
// generators (pinned by tests under -race).
package tga

import (
	"context"
	"fmt"
	"sort"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// ProbeResult tells an online generator how one of its candidates fared.
type ProbeResult struct {
	Addr ipaddr.Addr
	// Active is the raw scan outcome (pre-dealiasing) — online models in
	// the wild adapt to raw responses, which is how they fall into aliased
	// regions.
	Active bool
	// Aliased is the output dealiaser's verdict for the address. Only
	// generators with integrated dealiasing (6Sense) consult it.
	Aliased bool
}

// Generator is a Target Generation Algorithm.
type Generator interface {
	// Name returns the paper's label for the algorithm.
	Name() string
	// Online reports whether the generator adapts to Feedback.
	Online() bool
	// Init ingests the seed dataset. It may be called once per run. Seeds
	// arrive in canonical ascending order and must be treated as
	// read-only; several algorithms (6Sense's arm creation, 6Gen's greedy
	// clustering) are order-sensitive, and the canonical order is what
	// makes runs reproducible and mined models cacheable.
	Init(seeds []ipaddr.Addr) error
	// NextBatch proposes up to n candidate addresses. An empty result
	// means the generator is exhausted.
	NextBatch(n int) []ipaddr.Addr
	// Feedback reports scan outcomes for previously proposed candidates.
	// Offline generators ignore it.
	Feedback(results []ProbeResult)
}

// Prober abstracts the scanner for the driver — an alias of the shared
// scanner.Prober, one definition for the whole stack instead of a local
// copy per consumer.
type Prober = scanner.Prober

// ContextProber is the cancellable prober surface. When a RunConfig's
// Prober also implements it (as *scanner.Scanner does), the driver routes
// scans through ScanContext so an in-flight scan stops with the run.
type ContextProber = scanner.ContextProber

// Dealiaser abstracts output dealiasing for the driver.
type Dealiaser interface {
	Split(addrs []ipaddr.Addr) (clean, aliased []ipaddr.Addr)
}

// RunConfig parameterizes a generation-and-scan run.
type RunConfig struct {
	// Budget is the number of unique candidate addresses to generate
	// (the paper's 50M, scaled down).
	Budget int
	// BatchSize is the generate→scan→feedback granularity (default 4096).
	BatchSize int
	// Proto selects the probe type.
	Proto proto.Protocol
	// Prober runs the scans (nil: generation-only run, no feedback).
	Prober Prober
	// Dealiaser classifies active outputs (nil: nothing flagged aliased).
	Dealiaser Dealiaser
	// ExcludeSeeds removes seed addresses from the generated set, so the
	// budget buys genuinely new candidates.
	ExcludeSeeds bool
	// Serial forces the lockstep loop even for offline generators.
	// Online generators always run lockstep regardless.
	Serial bool
	// PipelineDepth bounds how many generated batches may queue ahead of
	// the scanner in the pipelined (offline) mode (default 2). Depth
	// bounds memory, not correctness.
	PipelineDepth int
	// Models resolves mined seed models for generators that implement
	// ModelBuilder — typically the cross-run modelcache, so grid cells
	// sharing a seed treatment reuse the model across protocols. Nil:
	// the generator's own Init mines the model.
	Models ModelSource
	// CollectCandidates records every unique candidate in
	// RunResult.Candidates, in generation order. GenerateContext uses it;
	// scan-oriented callers leave it off to avoid the copy.
	CollectCandidates bool
}

// RunResult aggregates a run's outcome.
type RunResult struct {
	Generator string
	Proto     proto.Protocol
	// Generated is the number of unique candidates produced.
	Generated int
	// Hits are dealiased active addresses — the paper's headline metric.
	Hits []ipaddr.Addr
	// AliasedHits are active addresses the dealiaser discarded.
	AliasedHits []ipaddr.Addr
	// Exhausted reports whether the generator ran dry before the budget.
	Exhausted bool
	// Candidates holds every unique generated address in generation
	// order, only when RunConfig.CollectCandidates is set.
	Candidates []ipaddr.Addr
}

// HitSet returns the hits as a set.
func (r *RunResult) HitSet() *ipaddr.Set { return ipaddr.NewSet(r.Hits...) }

// maxIdleRounds is how many consecutive batches may propose nothing new
// before the driver declares the generator exhausted. Generators that loop
// over already-produced addresses (a converged online model, a small
// pattern space) would otherwise spin forever.
const maxIdleRounds = 64

// Run drives g: Init with seeds, then batches of generate→scan→feedback
// until the budget is reached or the generator is exhausted. It is
// RunContext with a background context.
func Run(g Generator, seeds []ipaddr.Addr, cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), g, seeds, cfg)
}

// RunContext drives g under ctx: Init with seeds, then batches of
// generate→scan→feedback until the budget is reached, the generator is
// exhausted, or ctx is cancelled. On cancellation the partial result
// gathered so far is returned together with ctx.Err().
//
// Offline generators (Online() == false) run pipelined: generation and
// dedup proceed on a producer goroutine up to PipelineDepth batches ahead
// of the scanner. Pass Serial to force lockstep.
//
// When ctx carries a telemetry tracer (telemetry.NewContext), the driver
// emits a span hierarchy — run → batch → generate/scan/dealias/feedback —
// with per-batch budget consumption, and accumulates tga.* counters in the
// tracer's registry. Pipelined runs additionally record tga.pipeline.*
// stall and backpressure histograms.
func RunContext(ctx context.Context, g Generator, seeds []ipaddr.Addr, cfg RunConfig) (*RunResult, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("tga: budget must be positive, got %d", cfg.Budget)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 2
	}
	pipelined := !cfg.Serial && !g.Online() && cfg.Prober != nil
	seeds = CanonicalSeeds(seeds)
	ctx, runSpan := telemetry.StartSpan(ctx, "run", telemetry.Attrs{
		"generator": g.Name(),
		"proto":     cfg.Proto.String(),
		"budget":    cfg.Budget,
		"batch":     cfg.BatchSize,
		"seeds":     len(seeds),
		"pipelined": pipelined,
	})
	d := &driver{
		g:       g,
		cfg:     cfg,
		reg:     telemetry.FromContext(ctx).Registry(),
		runSpan: runSpan,
		res:     &RunResult{Generator: g.Name(), Proto: cfg.Proto},
	}

	if err := d.init(ctx, seeds); err != nil {
		d.endRun(err)
		return nil, fmt.Errorf("tga: init %s: %w", g.Name(), err)
	}
	if cfg.ExcludeSeeds {
		d.seedSet = ipaddr.NewOASetFrom(seeds)
	}
	d.generated = ipaddr.NewOASet(cfg.Budget)

	var err error
	if pipelined {
		d.reg.Counter("tga.pipeline.runs").Inc()
		err = d.runPipelined(ctx)
	} else {
		err = d.runLockstep(ctx)
	}
	d.res.Generated = d.generated.Len()
	if d.cfg.CollectCandidates {
		d.res.Candidates = append([]ipaddr.Addr(nil), d.generated.Slice()...)
	}
	d.endRun(err)
	if err != nil {
		return d.res, err
	}
	return d.res, nil
}

// driver carries one run's state. The lockstep mode uses it from a single
// goroutine; the pipelined mode hands the generator, dedup sets, and
// idle/exhaustion accounting to the producer goroutine while the consumer
// only touches res and the scan path, with the batch channel ordering
// every cross-goroutine access.
type driver struct {
	g       Generator
	cfg     RunConfig
	reg     *telemetry.Registry
	runSpan *telemetry.Span
	res     *RunResult

	seedSet   *ipaddr.OASet // nil unless ExcludeSeeds
	generated *ipaddr.OASet
	idle      int
	batchIdx  int
}

// init resolves the generator's model — through the configured
// ModelSource when the generator supports the ModelBuilder split — and
// initializes run state.
func (d *driver) init(ctx context.Context, seeds []ipaddr.Addr) error {
	initSpan := d.runSpan.Child("init", nil)
	start := time.Now()
	var err error
	if mb, ok := d.g.(ModelBuilder); ok && d.cfg.Models != nil {
		var m Model
		m, err = d.cfg.Models.GetOrBuild(ctx, mb, seeds)
		if err == nil {
			err = mb.InitFromModel(m, seeds)
		}
	} else {
		err = d.g.Init(seeds)
	}
	d.reg.ObserveDuration("tga.init_seconds", time.Since(start).Seconds())
	initSpan.EndWith(telemetry.Attrs{"cached_model": d.cfg.Models != nil})
	return err
}

func (d *driver) endRun(err error) {
	d.runSpan.EndWith(telemetry.Attrs{
		"generated": d.res.Generated,
		"hits":      len(d.res.Hits),
		"aliased":   len(d.res.AliasedHits),
		"exhausted": d.res.Exhausted,
		"cancelled": err != nil,
	})
}

// produce asks the generator for one full batch and filters it against the
// seed set and previously generated addresses, capped at rem. It returns
// the fresh candidates and whether the driver should keep going: false
// means the generator is exhausted (res.Exhausted is set) — either it
// proposed nothing or it spent maxIdleRounds batches proposing only
// duplicates. The caller owns the parent span for the generate stage.
//
// Always requesting a full batch, even when little budget remains,
// matters: tiny requests starve on seed-or-duplicate candidates (a 1-seed
// leaf's first enumeration is the seed itself). Extras beyond the budget
// are discarded.
func (d *driver) produce(parent *telemetry.Span) (fresh []ipaddr.Addr, cont bool) {
	genSpan := parent.Child("generate", nil)
	batch := d.g.NextBatch(d.cfg.BatchSize)
	rem := d.cfg.Budget - d.generated.Len()
	fresh = make([]ipaddr.Addr, 0, min(len(batch), rem))
	for _, a := range batch {
		if len(fresh) >= rem {
			break
		}
		if d.seedSet != nil && d.seedSet.Contains(a) {
			continue
		}
		if d.generated.Add(a) {
			fresh = append(fresh, a)
		}
	}
	genSpan.EndWith(telemetry.Attrs{"proposed": len(batch), "fresh": len(fresh)})
	d.reg.Counter("tga.generated").Add(int64(len(fresh)))
	if len(batch) == 0 {
		d.res.Exhausted = true
		return nil, false
	}
	if len(fresh) == 0 {
		d.idle++
		if d.idle > maxIdleRounds {
			d.res.Exhausted = true
			return nil, false
		}
		return nil, true
	}
	d.idle = 0
	return fresh, true
}

// consume scans one fresh batch, splits the actives, accumulates hits, and
// feeds results back to online generators. batchSpan is the parent for the
// stage spans; the caller ends it.
func (d *driver) consume(ctx context.Context, batchSpan *telemetry.Span, fresh []ipaddr.Addr) (hits, aliased int, err error) {
	scanSpan := batchSpan.Child("scan", nil)
	results, err := scanBatch(ctx, d.cfg.Prober, fresh, d.cfg.Proto)
	var active []ipaddr.Addr
	for _, r := range results {
		if r.Active() {
			active = append(active, r.Addr)
		}
	}
	scanSpan.EndWith(telemetry.Attrs{"targets": len(fresh), "active": len(active)})
	if err != nil {
		return 0, 0, err
	}

	clean, aliasedAddrs := active, []ipaddr.Addr(nil)
	if d.cfg.Dealiaser != nil {
		dealiasSpan := batchSpan.Child("dealias", nil)
		clean, aliasedAddrs = d.cfg.Dealiaser.Split(active)
		dealiasSpan.EndWith(telemetry.Attrs{"clean": len(clean), "aliased": len(aliasedAddrs)})
	}
	d.res.Hits = append(d.res.Hits, clean...)
	d.res.AliasedHits = append(d.res.AliasedHits, aliasedAddrs...)
	d.reg.Counter("tga.hits").Add(int64(len(clean)))
	d.reg.Counter("tga.aliased_hits").Add(int64(len(aliasedAddrs)))

	if d.g.Online() {
		fbSpan := batchSpan.Child("feedback", nil)
		aliasSet := ipaddr.NewOASetFrom(aliasedAddrs)
		fb := make([]ProbeResult, len(results))
		for i, r := range results {
			fb[i] = ProbeResult{
				Addr:    r.Addr,
				Active:  r.Active(),
				Aliased: aliasSet.Contains(r.Addr),
			}
		}
		d.g.Feedback(fb)
		fbSpan.EndWith(telemetry.Attrs{"results": len(fb)})
	}
	return len(clean), len(aliasedAddrs), nil
}

// runLockstep is the classic serial loop: one batch generates, scans,
// dealiases, and feeds back before the next batch generates. Required for
// online generators and for generation-only runs.
func (d *driver) runLockstep(ctx context.Context) error {
	for d.generated.Len() < d.cfg.Budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		batchSpan := d.runSpan.Child("batch", telemetry.Attrs{"index": d.batchIdx})
		d.batchIdx++
		d.reg.Counter("tga.batches").Inc()

		fresh, cont := d.produce(batchSpan)
		if !cont {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "exhausted": true})
			break
		}
		if len(fresh) == 0 {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "idle": true})
			continue
		}
		if d.cfg.Prober == nil {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len()})
			continue
		}
		hits, aliased, err := d.consume(ctx, batchSpan, fresh)
		if err != nil {
			batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "cancelled": true})
			return err
		}
		batchSpan.EndWith(telemetry.Attrs{
			"budget_used": d.generated.Len(),
			"hits":        hits,
			"aliased":     aliased,
		})
	}
	return nil
}

// producedBatch is one unit of pipelined work: the deduped fresh
// candidates and their batch span, opened by the producer (who closed its
// generate child) and ended by the consumer after scan/dealias.
type producedBatch struct {
	fresh []ipaddr.Addr
	span  *telemetry.Span
}

// runPipelined overlaps generation with scanning for offline generators.
// The producer goroutine owns the generator and all dedup/idle/exhaustion
// state; the consumer owns the result. The bounded channel is the only
// rendezvous: sends happen-before receives, and the consumer only reads
// producer-owned state after the producer is done (channel closed and,
// on early exit, drained).
//
// Offline generators ignore Feedback, so running generation ahead of the
// scan cannot change what is generated — the pipelined run produces
// exactly the lockstep run's result.
func (d *driver) runPipelined(ctx context.Context) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan producedBatch, d.cfg.PipelineDepth)

	go func() {
		defer close(ch)
		for d.generated.Len() < d.cfg.Budget {
			if pctx.Err() != nil {
				return
			}
			batchSpan := d.runSpan.Child("batch", telemetry.Attrs{"index": d.batchIdx})
			d.batchIdx++
			d.reg.Counter("tga.batches").Inc()
			d.reg.Counter("tga.pipeline.batches").Inc()

			fresh, cont := d.produce(batchSpan)
			if !cont {
				batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "exhausted": true})
				return
			}
			if len(fresh) == 0 {
				batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "idle": true})
				continue
			}
			// Blocked send = the scanner is the bottleneck (backpressure).
			wait := time.Now()
			select {
			case ch <- producedBatch{fresh: fresh, span: batchSpan}:
				d.reg.ObserveDuration("tga.pipeline.backpressure_seconds", time.Since(wait).Seconds())
			case <-pctx.Done():
				batchSpan.EndWith(telemetry.Attrs{"budget_used": d.generated.Len(), "cancelled": true})
				return
			}
		}
	}()

	fail := func(err error) error {
		cancel()
		for b := range ch { // release the producer, then drain
			b.span.EndWith(telemetry.Attrs{"cancelled": true})
		}
		return err
	}
	for {
		// Blocked receive = generation is the bottleneck (producer stall).
		wait := time.Now()
		b, ok := <-ch
		if !ok {
			break
		}
		d.reg.ObserveDuration("tga.pipeline.producer_stall_seconds", time.Since(wait).Seconds())
		if err := ctx.Err(); err != nil {
			b.span.EndWith(telemetry.Attrs{"cancelled": true})
			return fail(err)
		}
		hits, aliased, err := d.consume(ctx, b.span, b.fresh)
		if err != nil {
			b.span.EndWith(telemetry.Attrs{"cancelled": true})
			return fail(err)
		}
		b.span.EndWith(telemetry.Attrs{"hits": hits, "aliased": aliased})
	}
	return ctx.Err()
}

// scanBatch routes one batch through the prober, using the cancellable
// surface when available.
func scanBatch(ctx context.Context, p Prober, targets []ipaddr.Addr, pr proto.Protocol) ([]scanner.Result, error) {
	if cp, ok := p.(ContextProber); ok {
		return cp.ScanContext(ctx, targets, pr)
	}
	return p.Scan(targets, pr), nil
}

// CanonicalSeeds returns seeds in the canonical ascending order every
// Generator.Init expects. Already-sorted input (the common case now that
// experiment treatments sort once) is returned as-is, without copying;
// otherwise a sorted copy is made so the caller's slice is untouched.
func CanonicalSeeds(seeds []ipaddr.Addr) []ipaddr.Addr {
	if sort.SliceIsSorted(seeds, func(i, j int) bool { return seeds[i].Less(seeds[j]) }) {
		return seeds
	}
	out := append([]ipaddr.Addr(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Generate runs g without scanning and returns up to budget unique
// candidates in generation order — useful for offline analysis and tests.
// It is GenerateContext with a background context and no exclusions.
func Generate(g Generator, seeds []ipaddr.Addr, budget int) ([]ipaddr.Addr, error) {
	return GenerateContext(context.Background(), g, seeds, GenerateConfig{Budget: budget})
}

// GenerateConfig parameterizes a generation-only run.
type GenerateConfig struct {
	// Budget is the number of unique candidates to generate.
	Budget int
	// BatchSize is the request granularity (default 4096).
	BatchSize int
	// ExcludeSeeds removes seed addresses from the output.
	ExcludeSeeds bool
	// Models resolves mined models, as in RunConfig.
	Models ModelSource
}

// GenerateContext runs g without scanning under ctx, sharing the driver's
// batch loop — the same full-batch requests, dedup, idle-round exhaustion,
// and optional seed exclusion as RunContext, minus the prober.
func GenerateContext(ctx context.Context, g Generator, seeds []ipaddr.Addr, cfg GenerateConfig) ([]ipaddr.Addr, error) {
	res, err := RunContext(ctx, g, seeds, RunConfig{
		Budget:            cfg.Budget,
		BatchSize:         cfg.BatchSize,
		ExcludeSeeds:      cfg.ExcludeSeeds,
		Models:            cfg.Models,
		CollectCandidates: true,
	})
	if err != nil {
		return nil, err
	}
	return res.Candidates, nil
}
