// Package tga defines the Target Generation Algorithm interface and the
// driver that runs a generator against the scanner, plus the pattern-mining
// machinery (observed-value masks, per-position entropy, space trees, and
// leaf enumerators) shared by the eight TGA implementations in the
// subpackages.
//
// The eight generators reproduce the paper's study set: Entropy/IP, 6Gen,
// 6Tree, 6Hit, DET, 6Graph, 6Scan, and 6Sense. Offline generators ignore
// Feedback; online generators (DET, 6Hit, 6Scan, 6Sense) adapt their
// allocation to probe results, which is also what makes them susceptible
// to aliased-region traps when seeds are not dealiased.
package tga

import (
	"fmt"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
)

// ProbeResult tells an online generator how one of its candidates fared.
type ProbeResult struct {
	Addr ipaddr.Addr
	// Active is the raw scan outcome (pre-dealiasing) — online models in
	// the wild adapt to raw responses, which is how they fall into aliased
	// regions.
	Active bool
	// Aliased is the output dealiaser's verdict for the address. Only
	// generators with integrated dealiasing (6Sense) consult it.
	Aliased bool
}

// Generator is a Target Generation Algorithm.
type Generator interface {
	// Name returns the paper's label for the algorithm.
	Name() string
	// Online reports whether the generator adapts to Feedback.
	Online() bool
	// Init ingests the seed dataset. It may be called once per run.
	Init(seeds []ipaddr.Addr) error
	// NextBatch proposes up to n candidate addresses. An empty result
	// means the generator is exhausted.
	NextBatch(n int) []ipaddr.Addr
	// Feedback reports scan outcomes for previously proposed candidates.
	// Offline generators ignore it.
	Feedback(results []ProbeResult)
}

// Prober abstracts the scanner for the driver.
type Prober interface {
	Scan(targets []ipaddr.Addr, p proto.Protocol) []scanner.Result
}

// Dealiaser abstracts output dealiasing for the driver.
type Dealiaser interface {
	Split(addrs []ipaddr.Addr) (clean, aliased []ipaddr.Addr)
}

// RunConfig parameterizes a generation-and-scan run.
type RunConfig struct {
	// Budget is the number of unique candidate addresses to generate
	// (the paper's 50M, scaled down).
	Budget int
	// BatchSize is the generate→scan→feedback granularity (default 4096).
	BatchSize int
	// Proto selects the probe type.
	Proto proto.Protocol
	// Prober runs the scans (nil: generation-only run, no feedback).
	Prober Prober
	// Dealiaser classifies active outputs (nil: nothing flagged aliased).
	Dealiaser Dealiaser
	// ExcludeSeeds removes seed addresses from the generated set, so the
	// budget buys genuinely new candidates.
	ExcludeSeeds bool
}

// RunResult aggregates a run's outcome.
type RunResult struct {
	Generator string
	Proto     proto.Protocol
	// Generated is the number of unique candidates produced.
	Generated int
	// Hits are dealiased active addresses — the paper's headline metric.
	Hits []ipaddr.Addr
	// AliasedHits are active addresses the dealiaser discarded.
	AliasedHits []ipaddr.Addr
	// Exhausted reports whether the generator ran dry before the budget.
	Exhausted bool
}

// HitSet returns the hits as a set.
func (r *RunResult) HitSet() *ipaddr.Set { return ipaddr.NewSet(r.Hits...) }

// Run drives g: Init with seeds, then batches of generate→scan→feedback
// until the budget is reached or the generator is exhausted.
func Run(g Generator, seeds []ipaddr.Addr, cfg RunConfig) (*RunResult, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("tga: budget must be positive, got %d", cfg.Budget)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if err := g.Init(sortedCopy(seeds)); err != nil {
		return nil, fmt.Errorf("tga: init %s: %w", g.Name(), err)
	}

	seedSet := ipaddr.NewSet()
	if cfg.ExcludeSeeds {
		seedSet.AddAll(seeds)
	}
	generated := ipaddr.NewSetCap(cfg.Budget)
	res := &RunResult{Generator: g.Name(), Proto: cfg.Proto}

	idleRounds := 0
	for generated.Len() < cfg.Budget {
		// Always request a full batch, even when little budget remains:
		// tiny requests starve on seed-or-duplicate candidates (a 1-seed
		// leaf's first enumeration is the seed itself). Extras beyond the
		// budget are discarded.
		batch := g.NextBatch(cfg.BatchSize)
		if len(batch) == 0 {
			res.Exhausted = true
			break
		}
		rem := cfg.Budget - generated.Len()
		fresh := make([]ipaddr.Addr, 0, len(batch))
		for _, a := range batch {
			if len(fresh) >= rem {
				break
			}
			if cfg.ExcludeSeeds && seedSet.Contains(a) {
				continue
			}
			if generated.Add(a) {
				fresh = append(fresh, a)
			}
		}
		if len(fresh) == 0 {
			// The generator is looping over already-produced addresses.
			idleRounds++
			if idleRounds > 64 {
				res.Exhausted = true
				break
			}
			continue
		}
		idleRounds = 0

		if cfg.Prober == nil {
			continue
		}
		results := cfg.Prober.Scan(fresh, cfg.Proto)
		var active []ipaddr.Addr
		for _, r := range results {
			if r.Active() {
				active = append(active, r.Addr)
			}
		}
		clean, aliased := active, []ipaddr.Addr(nil)
		if cfg.Dealiaser != nil {
			clean, aliased = cfg.Dealiaser.Split(active)
		}
		res.Hits = append(res.Hits, clean...)
		res.AliasedHits = append(res.AliasedHits, aliased...)

		if g.Online() {
			aliasSet := ipaddr.NewSet(aliased...)
			fb := make([]ProbeResult, len(results))
			for i, r := range results {
				fb[i] = ProbeResult{
					Addr:    r.Addr,
					Active:  r.Active(),
					Aliased: aliasSet.Contains(r.Addr),
				}
			}
			g.Feedback(fb)
		}
	}
	res.Generated = generated.Len()
	return res, nil
}

// sortedCopy hands generators their seeds in a canonical order. Several
// algorithms are seed-order-sensitive (6Sense's arm creation, 6Gen's
// greedy clustering), and callers often produce seed slices from map-
// backed sets whose order varies run to run; sorting here keeps every
// run reproducible without burdening generators.
func sortedCopy(seeds []ipaddr.Addr) []ipaddr.Addr {
	out := append([]ipaddr.Addr(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Generate runs g without scanning and returns up to budget unique
// candidates — useful for offline analysis and tests.
func Generate(g Generator, seeds []ipaddr.Addr, budget int) ([]ipaddr.Addr, error) {
	if err := g.Init(sortedCopy(seeds)); err != nil {
		return nil, err
	}
	out := ipaddr.NewSetCap(budget)
	idle := 0
	for out.Len() < budget {
		batch := g.NextBatch(budget - out.Len())
		if len(batch) == 0 {
			break
		}
		before := out.Len()
		out.AddAll(batch)
		if out.Len() == before {
			idle++
			if idle > 64 {
				break
			}
		} else {
			idle = 0
		}
	}
	return out.Slice(), nil
}
