// Package modelcache provides the cross-run TGA model cache: mined seed
// models (6Gen's clustering, Entropy/IP's segment tables, the tree TGAs'
// space trees, 6Sense's arms) keyed by (generator name, model params, seed
// digest) so grid cells that share a seed treatment reuse the model across
// protocols instead of re-mining it per cell.
//
// What is safe to reuse: the model is a pure function of the canonical
// seed list and the generator's model-shaping parameters, so any two runs
// with the same key — across protocols, probers, budgets, or dealiasers —
// share it. What is not: anything fed by scan results (online rebuilds,
// reward state) is per-run state that ModelBuilder.InitFromModel creates
// fresh, and generators whose effective seed set includes mutable state
// (AddrMiner's long-term memory) don't implement ModelBuilder at all.
package modelcache

import (
	"context"
	"sync"
	"time"

	"seedscan/internal/ipaddr"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga"
)

// key identifies one mined model.
type key struct {
	name   string // generator name
	params string // ModelParams: every model-shaping knob, canonical form
	count  int    // seed count (cheap digest-collision guard)
	digest uint64 // order-sensitive digest of the canonical seed list
}

// entry is a singleflight slot: the first requester builds, everyone else
// waits on ready.
type entry struct {
	ready chan struct{}
	model tga.Model
	err   error
}

// Cache is a concurrency-safe model cache implementing tga.ModelSource.
// The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[key]*entry
	reg     *telemetry.Registry
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: map[key]*entry{}}
}

// SetTelemetry routes tga.modelcache.* counters and the build-time
// histogram to reg (nil disables, the default).
func (c *Cache) SetTelemetry(reg *telemetry.Registry) {
	c.mu.Lock()
	c.reg = reg
	c.mu.Unlock()
}

// Len reports the number of completed or in-flight models.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// GetOrBuild implements tga.ModelSource: it returns the cached model for
// (g, seeds), mining it on the first request. Concurrent requests for the
// same key mine once — later requesters block until the first build
// finishes (or ctx is done). Seeds must be in canonical sorted order; the
// digest is order-sensitive by design, so a non-canonical order would
// fragment the cache, not corrupt it. A failed build is not cached:
// errors propagate to every waiter of that flight, then the slot is
// cleared so a later request may retry.
func (c *Cache) GetOrBuild(ctx context.Context, g tga.ModelBuilder, seeds []ipaddr.Addr) (tga.Model, error) {
	k := key{
		name:   g.Name(),
		params: g.ModelParams(),
		count:  len(seeds),
		digest: ipaddr.Digest(seeds),
	}
	c.mu.Lock()
	reg := c.reg
	if e, ok := c.entries[k]; ok {
		c.mu.Unlock()
		reg.Counter("tga.modelcache.hits").Inc()
		select {
		case <-e.ready:
			return e.model, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[k] = e
	c.mu.Unlock()

	reg.Counter("tga.modelcache.misses").Inc()
	start := time.Now()
	e.model, e.err = g.BuildModel(seeds)
	reg.ObserveDuration("tga.modelcache.build_seconds", time.Since(start).Seconds())
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	return e.model, e.err
}
