package modelcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/telemetry"
	"seedscan/internal/tga"
	"seedscan/internal/tga/sixtree"
)

// countingBuilder wraps a real ModelBuilder and counts BuildModel calls.
type countingBuilder struct {
	*sixtree.Generator
	builds atomic.Int64
	fail   bool
}

func (b *countingBuilder) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	b.builds.Add(1)
	if b.fail {
		return nil, errors.New("boom")
	}
	return b.Generator.BuildModel(seeds)
}

func someSeeds(n int) []ipaddr.Addr {
	base := ipaddr.MustParse("2001:db8::")
	out := make([]ipaddr.Addr, n)
	for i := range out {
		out[i] = base.AddLo(uint64(i))
	}
	return out
}

func TestGetOrBuildCachesByKey(t *testing.T) {
	c := New()
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)
	b := &countingBuilder{Generator: sixtree.New()}
	seeds := someSeeds(100)

	m1, err := c.GetOrBuild(context.Background(), b, seeds)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.GetOrBuild(context.Background(), b, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same key returned different models")
	}
	if got := b.builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d", c.Len())
	}
	if reg.Counter("tga.modelcache.hits").Load() != 1 ||
		reg.Counter("tga.modelcache.misses").Load() != 1 {
		t.Fatalf("counters hits=%d misses=%d",
			reg.Counter("tga.modelcache.hits").Load(),
			reg.Counter("tga.modelcache.misses").Load())
	}
}

func TestKeySensitivity(t *testing.T) {
	c := New()
	b := &countingBuilder{Generator: sixtree.New()}
	ctx := context.Background()
	if _, err := c.GetOrBuild(ctx, b, someSeeds(100)); err != nil {
		t.Fatal(err)
	}
	// Different seeds → different key.
	if _, err := c.GetOrBuild(ctx, b, someSeeds(101)); err != nil {
		t.Fatal(err)
	}
	// Different params → different key.
	b2 := &countingBuilder{Generator: &sixtree.Generator{MinLeaf: 8}}
	if _, err := c.GetOrBuild(ctx, b2, someSeeds(100)); err != nil {
		t.Fatal(err)
	}
	if got := b.builds.Load() + b2.builds.Load(); got != 3 {
		t.Fatalf("builds = %d, want 3", got)
	}
	if c.Len() != 3 {
		t.Fatalf("cache len = %d", c.Len())
	}
}

func TestConcurrentSingleflight(t *testing.T) {
	c := New()
	b := &countingBuilder{Generator: sixtree.New()}
	seeds := someSeeds(500)
	var wg sync.WaitGroup
	models := make([]tga.Model, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.GetOrBuild(context.Background(), b, seeds)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	if got := b.builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", got)
	}
	for i := 1; i < 16; i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent requesters got different models")
		}
	}
}

func TestFailedBuildNotCached(t *testing.T) {
	c := New()
	b := &countingBuilder{Generator: sixtree.New(), fail: true}
	seeds := someSeeds(10)
	if _, err := c.GetOrBuild(context.Background(), b, seeds); err == nil {
		t.Fatal("expected error")
	}
	if c.Len() != 0 {
		t.Fatalf("failed build cached, len = %d", c.Len())
	}
	b.fail = false
	if _, err := c.GetOrBuild(context.Background(), b, seeds); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if got := b.builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
}
