package tga

import (
	"math/bits"
	"sort"
	"sync"

	"seedscan/internal/ipaddr"
)

// SplitHeuristic picks the nybble position a tree node splits on, from the
// candidate positions (those with more than one observed value). Returning
// -1 makes the node a leaf.
type SplitHeuristic func(seeds []ipaddr.Addr, candidates []int) int

// SplitLeftmost is 6Tree's divisive hierarchical clustering order: split on
// the most significant varying nybble, mirroring allocation hierarchy.
func SplitLeftmost(seeds []ipaddr.Addr, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[0]
}

// SplitMinEntropy is DET/6Graph's heuristic: split where the value
// distribution has the least (nonzero) entropy, isolating the strongest
// structure first.
func SplitMinEntropy(seeds []ipaddr.Addr, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	h := PositionEntropy(seeds)
	best, bestH := -1, 0.0
	for _, c := range candidates {
		if best == -1 || h[c] < bestH {
			best, bestH = c, h[c]
		}
	}
	return best
}

// TreeNode is one node of a space tree. Leaves carry the pattern masks and
// per-leaf online statistics.
type TreeNode struct {
	Seeds    []ipaddr.Addr
	SplitPos int
	Children []*TreeNode

	// Leaf state.
	Masks [ipaddr.NybbleCount]ValueMask
	Gen   *LeafGen

	// Online statistics, updated by adaptive generators.
	Probes int
	Hits   int
	Alias  int
}

// IsLeaf reports whether the node has no children.
func (n *TreeNode) IsLeaf() bool { return len(n.Children) == 0 }

// Density is the seed density of the leaf's initial pattern space.
func (n *TreeNode) Density() float64 {
	size := MaskSize(n.Masks)
	if size == 0 {
		return 0
	}
	return float64(len(n.Seeds)) / size
}

// Reward is the smoothed online hit rate used by adaptive generators.
func (n *TreeNode) Reward() float64 {
	return (float64(n.Hits) + 1) / (float64(n.Probes) + 2)
}

// BuildTree grows a space tree over the seeds: each node splits on the
// position chosen by h until minLeaf seeds or no varying position remains.
// Every leaf gets its observed-value masks and a LeafGen.
func BuildTree(seeds []ipaddr.Addr, minLeaf int, h SplitHeuristic) *TreeNode {
	if minLeaf < 1 {
		minLeaf = 1
	}
	root := &TreeNode{Seeds: seeds}
	build(root, minLeaf, h, 0)
	return root
}

// BuildTreeAuto is BuildTree with the construction strategy picked by seed
// count: at or above ParallelMineThreshold subtrees are built across CPUs,
// below it serially. Both strategies produce the same tree, so callers
// (including the online TGAs' periodic rebuilds) can use it everywhere.
func BuildTreeAuto(seeds []ipaddr.Addr, minLeaf int, h SplitHeuristic) *TreeNode {
	if len(seeds) >= ParallelMineThreshold {
		return BuildTreeParallel(seeds, minLeaf, h)
	}
	return BuildTree(seeds, minLeaf, h)
}

// BuildTreeParallel builds the same tree as BuildTree with sibling
// subtrees constructed concurrently. Subtrees over disjoint seed groups
// never interact, and children are assembled into their value-sorted slots
// before workers descend, so the result is byte-for-byte the serial tree.
func BuildTreeParallel(seeds []ipaddr.Addr, minLeaf int, h SplitHeuristic) *TreeNode {
	if minLeaf < 1 {
		minLeaf = 1
	}
	root := &TreeNode{Seeds: seeds}
	// Tokens bound concurrency; a worker that cannot claim one recurses
	// inline, so construction never blocks on the semaphore.
	tokens := make(chan struct{}, MineWorkers())
	var wg sync.WaitGroup
	buildP(root, minLeaf, h, 0, tokens, &wg)
	wg.Wait()
	return root
}

// buildP is build with concurrent child descent.
func buildP(n *TreeNode, minLeaf int, h SplitHeuristic, depth int, tokens chan struct{}, wg *sync.WaitGroup) {
	groups, pos := splitGroups(n, minLeaf, h, depth)
	if groups == nil {
		return // made a leaf
	}
	n.SplitPos = pos
	for _, g := range groups {
		child := &TreeNode{Seeds: g}
		n.Children = append(n.Children, child)
	}
	for _, child := range n.Children {
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(c *TreeNode) {
				defer wg.Done()
				buildP(c, minLeaf, h, depth+1, tokens, wg)
				<-tokens
			}(child)
		default:
			buildP(child, minLeaf, h, depth+1, tokens, wg)
		}
	}
}

// splitGroups decides whether n splits and, if so, returns the child seed
// groups in ascending split-value order and the split position. A nil
// return means n was finalized as a leaf. Shared by the serial and
// parallel builders so they cannot diverge.
func splitGroups(n *TreeNode, minLeaf int, h SplitHeuristic, depth int) ([][]ipaddr.Addr, int) {
	masks := ObservedMasks(n.Seeds)
	var prefixCandidates []int
	for i := 0; i < prefixPositions; i++ {
		if bits.OnesCount16(masks[i]) > 1 {
			prefixCandidates = append(prefixCandidates, i)
		}
	}
	if len(prefixCandidates) == 0 && (len(n.Seeds) <= minLeaf || depth >= ipaddr.NybbleCount) {
		makeLeaf(n, masks)
		return nil, -1
	}
	var candidates []int
	if len(prefixCandidates) > 0 {
		candidates = prefixCandidates
	} else {
		for i, m := range masks {
			if bits.OnesCount16(m) > 1 {
				candidates = append(candidates, i)
			}
		}
	}
	pos := h(n.Seeds, candidates)
	if pos < 0 {
		makeLeaf(n, masks)
		return nil, -1
	}
	groups := make(map[byte][]ipaddr.Addr)
	for _, a := range n.Seeds {
		v := a.Nybble(pos)
		groups[v] = append(groups[v], a)
	}
	if len(groups) <= 1 {
		makeLeaf(n, masks)
		return nil, -1
	}
	vals := make([]int, 0, len(groups))
	for v := range groups {
		vals = append(vals, int(v))
	}
	sort.Ints(vals)
	ordered := make([][]ipaddr.Addr, 0, len(vals))
	for _, v := range vals {
		ordered = append(ordered, groups[byte(v)])
	}
	return ordered, pos
}

// prefixPositions is how many leading nybbles are always fully split:
// top-level allocations (distinct /32s) must never share a leaf, or merged
// patterns would generate into address space no seed came from.
const prefixPositions = 8

func build(n *TreeNode, minLeaf int, h SplitHeuristic, depth int) {
	masks := ObservedMasks(n.Seeds)
	var prefixCandidates []int
	for i := 0; i < prefixPositions; i++ {
		if bits.OnesCount16(masks[i]) > 1 {
			prefixCandidates = append(prefixCandidates, i)
		}
	}
	if len(prefixCandidates) == 0 && (len(n.Seeds) <= minLeaf || depth >= ipaddr.NybbleCount) {
		makeLeaf(n, masks)
		return
	}
	var candidates []int
	if len(prefixCandidates) > 0 {
		candidates = prefixCandidates
	} else {
		for i, m := range masks {
			if bits.OnesCount16(m) > 1 {
				candidates = append(candidates, i)
			}
		}
	}
	pos := h(n.Seeds, candidates)
	if pos < 0 {
		makeLeaf(n, masks)
		return
	}
	groups := make(map[byte][]ipaddr.Addr)
	for _, a := range n.Seeds {
		v := a.Nybble(pos)
		groups[v] = append(groups[v], a)
	}
	if len(groups) <= 1 {
		makeLeaf(n, masks)
		return
	}
	n.SplitPos = pos
	vals := make([]int, 0, len(groups))
	for v := range groups {
		vals = append(vals, int(v))
	}
	sort.Ints(vals)
	for _, v := range vals {
		child := &TreeNode{Seeds: groups[byte(v)]}
		build(child, minLeaf, h, depth+1)
		n.Children = append(n.Children, child)
	}
}

func makeLeaf(n *TreeNode, masks [ipaddr.NybbleCount]ValueMask) {
	n.SplitPos = -1
	n.Masks = masks
	n.Gen = NewLeafGen(masks, nil)
}

// Leaves returns the leaves in DHC (depth-first, value-sorted) order.
func (n *TreeNode) Leaves() []*TreeNode {
	var out []*TreeNode
	var walk func(*TreeNode)
	walk = func(x *TreeNode) {
		if x.IsLeaf() {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// CountNodes returns the total node count.
func (n *TreeNode) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}
