// Package sixgraph implements 6Graph (Yang et al., Computer Networks
// 2022): entropy-guided divisive clustering like DET, but offline, with a
// graph-theoretic pattern-merging pass. Leaves whose patterns differ in
// few positions are connected in a pattern graph; connected components are
// merged into wider patterns whose value masks are unioned, and generation
// expands the merged patterns.
package sixgraph

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Graph TGA. Construct with New.
type Generator struct {
	// MinLeaf stops splitting below this many seeds (default 4).
	MinLeaf int
	// MergeDistance joins two leaf patterns when their masks differ in at
	// most this many positions (default 2).
	MergeDistance int

	clusters []*cluster
	produced []int
	emitted  *ipaddr.Set
}

type cluster struct {
	masks [ipaddr.NybbleCount]tga.ValueMask
	seeds int
	gen   *tga.LeafGen
}

// bucketPositions is how many leading nybble positions must match exactly
// for two leaf patterns to be merge candidates.
const bucketPositions = 8

// New returns a 6Graph generator with default parameters.
func New() *Generator { return &Generator{MinLeaf: 4, MergeDistance: 2} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Graph" }

// Online implements tga.Generator. 6Graph is offline.
func (g *Generator) Online() bool { return false }

// Model is 6Graph's cacheable mined model: the merged patterns in
// biggest-first order, without per-run enumerator state.
type Model struct {
	Clusters []ClusterModel
}

// ClusterModel is one merged pattern.
type ClusterModel struct {
	Masks [ipaddr.NybbleCount]tga.ValueMask
	Seeds int
}

func (g *Generator) minLeaf() int {
	if g.MinLeaf <= 0 {
		return 4
	}
	return g.MinLeaf
}

func (g *Generator) mergeDistance() int {
	if g.MergeDistance <= 0 {
		return 2
	}
	return g.MergeDistance
}

// ModelParams implements tga.ModelBuilder.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("minleaf=%d,mergedist=%d", g.minLeaf(), g.mergeDistance())
}

// BuildModel implements tga.ModelBuilder: the entropy tree (built across
// CPUs on large seed sets) with similar leaves merged into patterns.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixgraph: empty seed set")
	}
	mergeDist := g.mergeDistance()
	root := tga.BuildTreeAuto(seeds, g.minLeaf(), tga.SplitMinEntropy)
	leaves := root.Leaves()

	// Pattern graph: union-find over leaves within MergeDistance.
	parent := make([]int, len(leaves))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Bucket leaves by their leading-position masks: leaves from different
	// top-level allocations differ in many prefix positions and can never
	// merge, so only same-bucket pairs are compared. This keeps the pass
	// near-linear on Internet-scale seed sets.
	buckets := make(map[[bucketPositions]tga.ValueMask][]int)
	for i, l := range leaves {
		var key [bucketPositions]tga.ValueMask
		copy(key[:], l.Masks[:bucketPositions])
		buckets[key] = append(buckets[key], i)
	}
	for _, idx := range buckets {
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				if maskDistance(leaves[idx[x]].Masks, leaves[idx[y]].Masks) <= mergeDist {
					union(idx[x], idx[y])
				}
			}
		}
	}

	// Merge components in deterministic (leaf index) order.
	comp := make(map[int]*ClusterModel)
	var clusters []*ClusterModel
	for i, l := range leaves {
		r := find(i)
		c, ok := comp[r]
		if !ok {
			c = &ClusterModel{}
			comp[r] = c
			clusters = append(clusters, c)
		}
		for p := 0; p < ipaddr.NybbleCount; p++ {
			c.Masks[p] |= l.Masks[p]
		}
		c.Seeds += len(l.Seeds)
	}
	// Deterministic order: biggest clusters first.
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].Seeds > clusters[j].Seeds })
	m := &Model{Clusters: make([]ClusterModel, len(clusters))}
	for i, c := range clusters {
		m.Clusters[i] = *c
	}
	return m, nil
}

// InitFromModel implements tga.ModelBuilder: it materializes fresh
// per-run enumerators over the merged patterns.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	mm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("sixgraph: model type %T", m)
	}
	g.MinLeaf = g.minLeaf()
	g.MergeDistance = g.mergeDistance()
	g.clusters = make([]*cluster, len(mm.Clusters))
	for i, cm := range mm.Clusters {
		g.clusters[i] = &cluster{
			masks: cm.Masks,
			seeds: cm.Seeds,
			gen:   tga.NewLeafGen(cm.Masks, nil),
		}
	}
	g.produced = make([]int, len(g.clusters))
	g.emitted = ipaddr.NewSet()
	return nil
}

// Init builds the entropy tree and merges similar leaves.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// maskDistance counts positions where two mask arrays differ.
func maskDistance(a, b [ipaddr.NybbleCount]tga.ValueMask) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// NextBatch allocates proportionally to cluster seed counts.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	out := make([]ipaddr.Addr, 0, n)
	for len(out) < n {
		best, bestScore := -1, -1.0
		for i, c := range g.clusters {
			if c.gen == nil {
				continue
			}
			// Logarithmic weighting visits every pattern near-uniformly
			// with a mild bias to seed-rich ones; breadth across patterns
			// is what gives 6Graph its AS diversity.
			score := (1 + math.Log2(float64(c.seeds)+1)) / float64(g.produced[i]+1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		c := g.clusters[best]
		chunk := c.seeds
		if chunk < 8 {
			chunk = 8
		}
		if chunk > n/4 {
			chunk = n/4 + 1
		}
		got := 0
		for got < chunk && len(out) < n {
			a, ok := c.gen.Next()
			if !ok {
				c.gen = nil
				break
			}
			if !g.emitted.Add(a) {
				continue
			}
			out = append(out, a)
			got++
		}
		g.produced[best] += got
	}
	return out
}

// Feedback implements tga.Generator; 6Graph ignores scan results.
func (g *Generator) Feedback([]tga.ProbeResult) {}

// ClusterCount reports the number of merged patterns (diagnostics).
func (g *Generator) ClusterCount() int { return len(g.clusters) }

// ClusterWidth reports the total variable positions across clusters — a
// measure of how much merging widened the patterns (diagnostics).
func (g *Generator) ClusterWidth() int {
	total := 0
	for _, c := range g.clusters {
		for _, m := range c.masks {
			if bits.OnesCount16(m) > 1 {
				total++
			}
		}
	}
	return total
}
