package sixgraph

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "6Graph" || g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestPatternMergingWidensMasks(t *testing.T) {
	// Two leaf-sized groups in the same /48 whose patterns differ at a
	// single position: merging must union their masks.
	var seeds []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8:1:a::")
	b := ipaddr.MustParse("2001:db8:1:b::")
	for i := 1; i <= 5; i++ {
		seeds = append(seeds, a.AddLo(uint64(i)), b.AddLo(uint64(i)))
	}
	merged := New()
	if err := merged.Init(seeds); err != nil {
		t.Fatal(err)
	}
	unmerged := New()
	unmerged.MergeDistance = -1 // sentinel: fixed below
	unmerged.MergeDistance = 1  // too tight to merge across two positions? distance is 1 here
	_ = unmerged

	if merged.ClusterCount() >= 2 {
		// Groups at distance 1 (only nybble 15 differs) must merge.
		t.Fatalf("clusters = %d, expected the two patterns to merge", merged.ClusterCount())
	}
	if merged.ClusterWidth() == 0 {
		t.Fatal("merged pattern has no variable positions")
	}
	// The merged pattern generates cross-products spanning both groups.
	got := ipaddr.NewSet()
	for i := 0; i < 5; i++ {
		got.AddAll(merged.NextBatch(100))
	}
	inA, inB := false, false
	p48a := ipaddr.MustParsePrefix("2001:db8:1:a::/64")
	p48b := ipaddr.MustParsePrefix("2001:db8:1:b::/64")
	got.Each(func(x ipaddr.Addr) {
		if p48a.Contains(x) {
			inA = true
		}
		if p48b.Contains(x) {
			inB = true
		}
	})
	if !inA || !inB {
		t.Fatalf("merged generation one-sided: a=%v b=%v", inA, inB)
	}
}

func TestDistantPatternsStaySeparate(t *testing.T) {
	var seeds []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8::")        // low IIDs
	b := ipaddr.MustParse("2600:9000::cafe:0") // different prefix + style
	for i := 1; i <= 5; i++ {
		seeds = append(seeds, a.AddLo(uint64(i)), b.AddLo(uint64(i)))
	}
	g := New()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	if g.ClusterCount() < 2 {
		t.Fatal("cross-prefix patterns merged")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var seeds []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 50; i++ {
		seeds = append(seeds, base.AddLo(uint64(i*5%97)))
	}
	out := func() []ipaddr.Addr {
		g := New()
		if err := g.Init(seeds); err != nil {
			t.Fatal(err)
		}
		var got []ipaddr.Addr
		for i := 0; i < 3; i++ {
			got = append(got, g.NextBatch(100)...)
		}
		return got
	}
	a, b := out(), out()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFeedbackIgnored(t *testing.T) {
	g := New()
	if err := g.Init([]ipaddr.Addr{ipaddr.MustParse("2001:db8::1"), ipaddr.MustParse("2001:db8::2")}); err != nil {
		t.Fatal(err)
	}
	g.Feedback([]tga.ProbeResult{{Active: true}})
	if len(g.NextBatch(5)) == 0 {
		t.Fatal("generation stopped after feedback")
	}
}
