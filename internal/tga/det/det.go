// Package det implements DET (Song et al., ToN 2022): a space tree split
// by minimum entropy, searched online. Each batch is allocated to leaves
// by their observed hit rate, and the tree is periodically rebuilt with
// discovered active addresses folded into the seed set, letting DET hone
// in on productive regions — or, when seeds contain aliases, dive straight
// into aliased regions (the RQ1.a failure mode).
package det

import (
	"errors"
	"fmt"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the DET TGA. Construct with New.
type Generator struct {
	// MinLeaf stops splitting below this many seeds (default 4).
	MinLeaf int
	// RebuildEvery rebuilds the tree after this many feedback rounds
	// (default 16).
	RebuildEvery int
	// Explore is the budget share spent uniformly across leaves regardless
	// of reward (default 0.35).
	Explore float64

	seeds    []ipaddr.Addr
	leaves   []*tga.TreeNode
	pending  map[ipaddr.Addr]*tga.TreeNode // candidate → proposing leaf
	emitted  *ipaddr.Set                   // never re-propose after a rebuild
	hits     []ipaddr.Addr
	rounds   int
	rebuilds int
}

// New returns a DET generator with default parameters.
func New() *Generator {
	return &Generator{MinLeaf: 4, RebuildEvery: 16, Explore: 0.35}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "DET" }

// Online implements tga.Generator.
func (g *Generator) Online() bool { return true }

func (g *Generator) minLeaf() int {
	if g.MinLeaf <= 0 {
		return 4
	}
	return g.MinLeaf
}

// ModelParams implements tga.ModelBuilder. Only MinLeaf shapes the initial
// tree; RebuildEvery and Explore steer the online search and are excluded.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("minleaf=%d", g.minLeaf())
}

// BuildModel implements tga.ModelBuilder: the initial min-entropy space
// tree over the (deduplicated) seeds. Online rebuilds fold hits in and are
// per-run state, so only this first tree is cacheable.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("det: empty seed set")
	}
	uniq := ipaddr.DedupSorted(seeds)
	return tga.SnapshotTree(tga.BuildTreeAuto(uniq, g.minLeaf(), tga.SplitMinEntropy)), nil
}

// InitFromModel implements tga.ModelBuilder.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	tm, ok := m.(*tga.TreeModel)
	if !ok {
		return fmt.Errorf("det: model type %T", m)
	}
	if g.RebuildEvery <= 0 {
		g.RebuildEvery = 16
	}
	if g.Explore <= 0 {
		g.Explore = 0.35
	}
	g.MinLeaf = g.minLeaf()
	g.seeds = seeds
	g.pending = make(map[ipaddr.Addr]*tga.TreeNode)
	g.emitted = ipaddr.NewSet()
	g.leaves = tm.Leaves()
	g.rebuilds++
	return nil
}

// Init builds the initial entropy-split tree.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

func (g *Generator) rebuild() {
	seedSet := ipaddr.NewOASetFrom(g.seeds)
	for _, h := range g.hits {
		seedSet.Add(h)
	}
	root := tga.BuildTreeAuto(seedSet.Slice(), g.MinLeaf, tga.SplitMinEntropy)
	g.leaves = root.Leaves()
	g.rebuilds++
}

// NextBatch allocates (1-Explore) of the batch to leaves by descending
// reward and the rest uniformly.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	if len(g.leaves) == 0 {
		return nil
	}
	order := make([]*tga.TreeNode, 0, len(g.leaves))
	for _, l := range g.leaves {
		if l.Gen != nil {
			order = append(order, l)
		}
	}
	if len(order) == 0 {
		return nil
	}
	// Score: smoothed hit rate with a mildly pessimistic prior, so probed
	// productive leaves outrank untouched ones; ties (notably all-untouched
	// leaves early on) break by seed density, which is what the entropy
	// tree encodes about where hits live.
	score := func(l *tga.TreeNode) float64 {
		return (float64(l.Hits) + 1) / (float64(l.Probes) + 8)
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := score(order[i]), score(order[j])
		if si != sj {
			return si > sj
		}
		return len(order[i].Seeds) > len(order[j].Seeds)
	})

	out := make([]ipaddr.Addr, 0, n)
	exploit := int(float64(n) * (1 - g.Explore))
	// Exploit: top leaves get geometric shares.
	take := func(l *tga.TreeNode, k int) {
		for got := 0; got < k; {
			a, ok := l.Gen.Next()
			if !ok {
				l.Gen = nil
				return
			}
			if !g.emitted.Add(a) {
				continue // already proposed before a rebuild
			}
			out = append(out, a)
			g.pending[a] = l
			l.Probes++
			got++
		}
	}
	share := exploit / 2
	for _, l := range order {
		if share < 1 {
			share = 1
		}
		if len(out) >= exploit {
			break
		}
		if rem := exploit - len(out); share > rem {
			share = rem
		}
		take(l, share)
		share /= 2
	}
	// Explore: round-robin over all live leaves.
	i := 0
	for len(out) < n && i < 4*len(order) {
		l := order[i%len(order)]
		if l.Gen != nil {
			take(l, 1)
		}
		i++
	}
	return out
}

// Feedback updates leaf rewards and folds hits into the seed pool;
// periodically the tree is rebuilt around them.
func (g *Generator) Feedback(results []tga.ProbeResult) {
	for _, r := range results {
		l, ok := g.pending[r.Addr]
		if !ok {
			continue
		}
		delete(g.pending, r.Addr)
		if r.Active {
			l.Hits++
			g.hits = append(g.hits, r.Addr)
		}
		if r.Aliased {
			l.Alias++
		}
	}
	g.rounds++
	if g.rounds%g.RebuildEvery == 0 {
		g.rebuild()
		g.pending = make(map[ipaddr.Addr]*tga.TreeNode)
	}
}

// Rebuilds reports how many times the tree was rebuilt (diagnostics).
func (g *Generator) Rebuilds() int { return g.rebuilds }
