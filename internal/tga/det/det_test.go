package det

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func seedsFrom(ss ...string) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipaddr.MustParse(s)
	}
	return out
}

func denseSeeds() []ipaddr.Addr {
	var out []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8::")
	b := ipaddr.MustParse("2600:9000:1::")
	for i := 1; i <= 40; i++ {
		out = append(out, a.AddLo(uint64(i)), b.AddLo(uint64(i*16)))
	}
	return out
}

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "DET" || !g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestFeedbackSteersAllocation(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	rewardPrefix := ipaddr.MustParsePrefix("2001:db8::/32")

	// Reward only candidates in 2001:db8::/32 for several rounds.
	for round := 0; round < 6; round++ {
		batch := g.NextBatch(256)
		if len(batch) == 0 {
			t.Fatal("generator dry")
		}
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: rewardPrefix.Contains(a)}
		}
		g.Feedback(fb)
	}
	// Allocation must now lean toward the rewarded prefix.
	batch := g.NextBatch(512)
	in := 0
	for _, a := range batch {
		if rewardPrefix.Contains(a) {
			in++
		}
	}
	if frac := float64(in) / float64(len(batch)); frac < 0.5 {
		t.Fatalf("only %.2f of the batch targets the rewarded prefix", frac)
	}
}

func TestRebuildFoldsHitsIn(t *testing.T) {
	g := New()
	g.RebuildEvery = 2
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		batch := g.NextBatch(128)
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: i%3 == 0}
		}
		g.Feedback(fb)
	}
	if g.Rebuilds() < 2 {
		t.Fatalf("rebuilds = %d", g.Rebuilds())
	}
	// After rebuilds, generation continues without duplicates.
	seen := ipaddr.NewSet()
	for i := 0; i < 4; i++ {
		for _, a := range g.NextBatch(128) {
			if !seen.Add(a) {
				t.Fatalf("duplicate %v emitted after rebuild", a)
			}
		}
	}
}

func TestNoDuplicateEmissionsEver(t *testing.T) {
	g := New()
	g.RebuildEvery = 1 // stress: rebuild after every feedback
	if err := g.Init(seedsFrom("2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::9")); err != nil {
		t.Fatal(err)
	}
	seen := ipaddr.NewSet()
	for round := 0; round < 10; round++ {
		batch := g.NextBatch(64)
		if len(batch) == 0 {
			break
		}
		for _, a := range batch {
			if !seen.Add(a) {
				t.Fatalf("duplicate %v", a)
			}
		}
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: a.Lo()%2 == 0}
		}
		g.Feedback(fb)
	}
}
