package sixscan

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func denseSeeds() []ipaddr.Addr {
	var out []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8::")
	b := ipaddr.MustParse("2600:9000:1::")
	for i := 1; i <= 30; i++ {
		out = append(out, a.AddLo(uint64(i)), b.AddLo(uint64(i)))
	}
	return out
}

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "6Scan" || !g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestRegionFeedbackReprioritizes(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	reward := ipaddr.MustParsePrefix("2600:9000::/32")
	for round := 0; round < 5; round++ {
		batch := g.NextBatch(200)
		if len(batch) == 0 {
			t.Fatal("generator dry")
		}
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: reward.Contains(a)}
		}
		g.Feedback(fb)
	}
	batch := g.NextBatch(400)
	in := 0
	for _, a := range batch {
		if reward.Contains(a) {
			in++
		}
	}
	if frac := float64(in) / float64(len(batch)); frac < 0.5 {
		t.Fatalf("hot-region share = %.2f after region feedback", frac)
	}
}

func TestColdShareKeepsRoundRobin(t *testing.T) {
	g := New()
	g.TopShare = 0.5
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	reward := ipaddr.MustParsePrefix("2600:9000::/32")
	for round := 0; round < 4; round++ {
		batch := g.NextBatch(200)
		fb := make([]tga.ProbeResult, len(batch))
		for i, a := range batch {
			fb[i] = tga.ProbeResult{Addr: a, Active: reward.Contains(a)}
		}
		g.Feedback(fb)
	}
	batch := g.NextBatch(400)
	cold := 0
	for _, a := range batch {
		if !reward.Contains(a) {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("cold regions fully starved")
	}
}

func TestLowDuplicateRate(t *testing.T) {
	// Widened leaves may overlap each other's space, so cross-leaf
	// duplicates are possible (the run driver dedups globally); the rate
	// must stay low.
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	seen := ipaddr.NewSet()
	total, dups := 0, 0
	for i := 0; i < 6; i++ {
		batch := g.NextBatch(150)
		for _, a := range batch {
			total++
			if !seen.Add(a) {
				dups++
			}
		}
		g.Feedback(nil)
	}
	if total == 0 {
		t.Fatal("nothing generated")
	}
	if rate := float64(dups) / float64(total); rate > 0.2 {
		t.Fatalf("duplicate rate %.2f too high", rate)
	}
}

func TestFeedbackForUnknownAddrHarmless(t *testing.T) {
	g := New()
	if err := g.Init(denseSeeds()); err != nil {
		t.Fatal(err)
	}
	g.Feedback([]tga.ProbeResult{{Addr: ipaddr.MustParse("fe80::1"), Active: true}})
	if len(g.NextBatch(10)) == 0 {
		t.Fatal("generation stopped")
	}
}
