// Package sixscan implements 6Scan (Hou et al., ToN 2023): a 6Tree-style
// space tree scanned dynamically. The real tool encodes the originating
// region in each probe's payload so responses re-prioritize regions
// without per-probe state; running in-process we keep the candidate→region
// map directly (the paper's authors had to patch 6Scan's scanner anyway,
// see §4.1). Regions are re-sorted by observed hit counts after every
// feedback round.
//
// 6Scan's algorithmic kinship with 6Tree is why RQ4 finds it contributes
// almost nothing when the two run together.
package sixscan

import (
	"errors"
	"fmt"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Scan TGA. Construct with New.
type Generator struct {
	// MinLeaf stops splitting below this many seeds (default 4).
	MinLeaf int
	// TopShare is the batch share given to the currently hottest regions
	// (default 0.7).
	TopShare float64

	leaves  []*tga.TreeNode
	pending map[ipaddr.Addr]*tga.TreeNode
	emitted *ipaddr.Set
	rr      int // round-robin cursor for the cold share
}

// New returns a 6Scan generator with default parameters.
func New() *Generator { return &Generator{MinLeaf: 4, TopShare: 0.7} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Scan" }

// Online implements tga.Generator.
func (g *Generator) Online() bool { return true }

func (g *Generator) minLeaf() int {
	if g.MinLeaf <= 0 {
		return 4
	}
	return g.MinLeaf
}

// ModelParams implements tga.ModelBuilder. TopShare only steers the online
// allocation and is excluded.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("minleaf=%d", g.minLeaf())
}

// BuildModel implements tga.ModelBuilder: the 6Tree-style space tree.
// 6Scan never rebuilds, so the whole tree is cacheable.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixscan: empty seed set")
	}
	return tga.SnapshotTree(tga.BuildTreeAuto(seeds, g.minLeaf(), tga.SplitLeftmost)), nil
}

// InitFromModel implements tga.ModelBuilder.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	tm, ok := m.(*tga.TreeModel)
	if !ok {
		return fmt.Errorf("sixscan: model type %T", m)
	}
	if g.TopShare <= 0 || g.TopShare >= 1 {
		g.TopShare = 0.7
	}
	g.MinLeaf = g.minLeaf()
	g.leaves = tm.Leaves()
	g.pending = make(map[ipaddr.Addr]*tga.TreeNode)
	g.emitted = ipaddr.NewSet()
	return nil
}

// Init builds the space tree with 6Tree's splitting order.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// NextBatch spends TopShare of the batch on regions sorted by region
// encoding feedback (hit count, then seed count) and the rest round-robin
// across all live regions.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	live := make([]*tga.TreeNode, 0, len(g.leaves))
	for _, l := range g.leaves {
		if l.Gen != nil {
			live = append(live, l)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].Hits != live[j].Hits {
			return live[i].Hits > live[j].Hits
		}
		return len(live[i].Seeds) > len(live[j].Seeds)
	})

	out := make([]ipaddr.Addr, 0, n)
	take := func(l *tga.TreeNode, k int) {
		for got := 0; got < k; {
			a, ok := l.Gen.Next()
			if !ok {
				l.Gen = nil
				return
			}
			if !g.emitted.Add(a) {
				continue
			}
			out = append(out, a)
			g.pending[a] = l
			l.Probes++
			got++
		}
	}
	hot := int(float64(n) * g.TopShare)
	share := hot / 2
	for _, l := range live {
		if len(out) >= hot {
			break
		}
		if share < 1 {
			share = 1
		}
		if rem := hot - len(out); share > rem {
			share = rem
		}
		take(l, share)
		share /= 2
	}
	for tries := 0; len(out) < n && tries < 4*len(live); tries++ {
		l := live[g.rr%len(live)]
		g.rr++
		if l.Gen != nil {
			take(l, 1)
		}
	}
	return out
}

// Feedback decodes each result back to its region (the in-process
// equivalent of the payload region encoding) and bumps hit counters.
func (g *Generator) Feedback(results []tga.ProbeResult) {
	for _, r := range results {
		l, ok := g.pending[r.Addr]
		if !ok {
			continue
		}
		delete(g.pending, r.Addr)
		if r.Active {
			l.Hits++
		}
		if r.Aliased {
			l.Alias++
		}
	}
}
