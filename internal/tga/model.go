package tga

import (
	"context"
	"runtime"
	"sync"

	"seedscan/internal/ipaddr"
)

// Model is an opaque seed model mined by a ModelBuilder: the expensive,
// immutable product of Init (6Gen's clustering, Entropy/IP's segment
// tables, the tree TGAs' space trees, 6Sense's Markov arms) separated from
// the per-run mutable state (enumerators, dedup sets, reward counters).
// A Model must be treated as read-only by every holder, which is what
// makes it safe to share across runs, protocols, and goroutines.
type Model any

// ModelBuilder is the optional generator surface that splits model
// construction out of Init. All eight studied TGAs implement it; the
// driver and the cross-run model cache (internal/tga/modelcache) use it to
// mine a seed model once and reuse it for every run over the same
// treatment.
//
// The contract: BuildModel is deterministic given canonically sorted
// seeds, touches no run state, and returns an immutable Model.
// InitFromModel replaces Init, adopting a Model previously produced by
// BuildModel with the same seeds and ModelParams; it must create fresh
// mutable run state and must not write through the Model. Init remains
// equivalent to BuildModel followed by InitFromModel.
type ModelBuilder interface {
	Generator
	// ModelParams canonically encodes every parameter that shapes the
	// mined model (clustering radius, entropy threshold, leaf size...).
	// Runtime-only knobs — sampling seeds, exploration shares — are
	// excluded: they do not change what BuildModel produces.
	ModelParams() string
	// BuildModel mines the seed model. Seeds must be in canonical sorted
	// order (Generator.Init's contract).
	BuildModel(seeds []ipaddr.Addr) (Model, error)
	// InitFromModel adopts m (built from the same seeds and params) in
	// place of Init.
	InitFromModel(m Model, seeds []ipaddr.Addr) error
}

// ModelSource resolves a generator's mined model, typically from a
// cross-run cache. RunConfig.Models plugs one into the driver.
type ModelSource interface {
	GetOrBuild(ctx context.Context, g ModelBuilder, seeds []ipaddr.Addr) (Model, error)
}

// ParallelMineThreshold is the seed count at or above which model mining
// (tree construction, clustering, per-segment value counting, arm
// training) fans out across CPUs. Below it the serial path wins on
// overhead. Parallel and serial mining produce identical models; tests
// lower this to pin that.
var ParallelMineThreshold = 4096

// MineWorkers is the mining fan-out width.
func MineWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MineParallel runs fn(0..n-1) on up to MineWorkers goroutines and waits.
// Work items must be independent; fn is responsible for writing results to
// disjoint slots so the combined output is deterministic.
func MineParallel(n int, fn func(i int)) {
	workers := MineWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next int64
		mu   sync.Mutex
	)
	claim := func() int {
		mu.Lock()
		i := int(next)
		next++
		mu.Unlock()
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// TreeLeafModel is one leaf of a snapshotted space tree: the mined pattern
// masks and the seed group that produced them. Both are read-only.
type TreeLeafModel struct {
	Masks [ipaddr.NybbleCount]ValueMask
	Seeds []ipaddr.Addr
}

// TreeModel is the reusable product of space-tree construction: the leaves
// in DHC (depth-first, value-sorted) order, decoupled from the mutable
// TreeNode run state (LeafGen cursors, online probe/hit counters). It is
// the shared Model type of the four tree TGAs (6Tree, DET, 6Hit, 6Scan)
// and the input to 6Graph's pattern merging.
type TreeModel struct {
	LeafModels []TreeLeafModel
	NodeCount  int
}

// SnapshotTree captures root's leaves as an immutable TreeModel.
func SnapshotTree(root *TreeNode) *TreeModel {
	leaves := root.Leaves()
	m := &TreeModel{
		LeafModels: make([]TreeLeafModel, len(leaves)),
		NodeCount:  root.CountNodes(),
	}
	for i, l := range leaves {
		m.LeafModels[i] = TreeLeafModel{Masks: l.Masks, Seeds: l.Seeds}
	}
	return m
}

// Leaves materializes fresh mutable leaf nodes — new LeafGens, zeroed
// online counters — over the model's read-only patterns and seed groups.
// Each call returns independent nodes, so many runs can adopt one model.
func (m *TreeModel) Leaves() []*TreeNode {
	out := make([]*TreeNode, len(m.LeafModels))
	for i, lm := range m.LeafModels {
		out[i] = &TreeNode{
			Seeds:    lm.Seeds,
			SplitPos: -1,
			Masks:    lm.Masks,
			Gen:      NewLeafGen(lm.Masks, nil),
		}
	}
	return out
}

// LeafCount reports the number of leaves.
func (m *TreeModel) LeafCount() int { return len(m.LeafModels) }
