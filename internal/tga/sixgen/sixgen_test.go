package sixgen

import (
	"testing"

	"seedscan/internal/ipaddr"
)

func TestMetadataAndInit(t *testing.T) {
	g := New()
	if g.Name() != "6Gen" || g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestClusteringGroupsNearbySeeds(t *testing.T) {
	g := New()
	// Two tight groups in distinct /64s of the same /32.
	var seeds []ipaddr.Addr
	a := ipaddr.MustParse("2001:db8:0:1::10")
	b := ipaddr.MustParse("2001:db8:0:2::90")
	for i := 0; i < 8; i++ {
		seeds = append(seeds, a.AddLo(uint64(i)), b.AddLo(uint64(i)))
	}
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	// The nybble-distance radius keeps the two groups apart: their subnet
	// nybble and IID nybbles differ beyond radius 4 in combination.
	if g.ClusterCount() < 2 {
		t.Fatalf("clusters = %d", g.ClusterCount())
	}
}

func TestSeparatePrefixesNeverCluster(t *testing.T) {
	g := New()
	seeds := []ipaddr.Addr{
		ipaddr.MustParse("2001:db8::1"),
		ipaddr.MustParse("2600:9000::1"),
	}
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	if g.ClusterCount() != 2 {
		t.Fatalf("clusters = %d, want 2", g.ClusterCount())
	}
}

func TestGenerationEnumeratesClusterRanges(t *testing.T) {
	g := New()
	var seeds []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	// Seeds at ::11, ::12, ::21, ::22 → range {1,2}x{1,2}.
	for _, lo := range []uint64{0x11, 0x12, 0x21, 0x22} {
		seeds = append(seeds, base.AddLo(lo))
	}
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	got := ipaddr.NewSet()
	for i := 0; i < 3; i++ {
		got.AddAll(g.NextBatch(50))
	}
	// The range's cross-combinations must appear early.
	// (Seeds themselves may be emitted; the driver filters those.)
	if !got.Contains(base.AddLo(0x11)) && !got.Contains(base.AddLo(0x21)) {
		t.Fatal("range enumeration missing in-range values")
	}
	for _, a := range got.Slice() {
		if !ipaddr.MustParsePrefix("2001:db8::/32").Contains(a) {
			t.Fatalf("candidate %v escaped the cluster prefix", a)
		}
	}
}

func TestNoDuplicates(t *testing.T) {
	g := New()
	var seeds []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 40; i++ {
		seeds = append(seeds, base.AddLo(uint64(i*3)))
	}
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	seen := ipaddr.NewSet()
	for i := 0; i < 5; i++ {
		for _, a := range g.NextBatch(200) {
			if !seen.Add(a) {
				t.Fatalf("duplicate %v", a)
			}
		}
	}
}

func TestMaxClustersCap(t *testing.T) {
	g := New()
	g.MaxClusters = 4
	var seeds []ipaddr.Addr
	// Many far-apart seeds within one /32 (distinct at >radius distance).
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 40; i++ {
		a := base
		for pos := 16; pos < 28; pos++ {
			a = a.WithNybble(pos, byte((i*7+pos)%16))
		}
		seeds = append(seeds, a)
	}
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	if g.ClusterCount() > 4 {
		t.Fatalf("clusters = %d, cap ignored", g.ClusterCount())
	}
}
