// Package sixgen implements 6Gen (Murdock et al., IMC 2017): seed
// clustering by nybble Hamming distance. Each cluster's range is the
// per-position union of its members' values; clusters grow greedily by
// absorbing the nearest seeds while the seed density of the resulting
// range stays highest. Generation enumerates the densest cluster ranges
// first.
//
// 6Gen also originated the online /96 dealiasing test this repository's
// alias package implements; as a generator it runs offline.
package sixgen

import (
	"errors"
	"math"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Gen TGA. Construct with New.
type Generator struct {
	// MaxClusterRadius is the nybble distance within which seeds join an
	// existing cluster (default 4).
	MaxClusterRadius int
	// MaxClusters caps the number of tracked clusters; further seeds join
	// their nearest cluster regardless of radius (default 4096).
	MaxClusters int

	clusters []*cluster
	produced []int
	emitted  *ipaddr.Set
}

type cluster struct {
	rep   ipaddr.Addr // first member, the cluster representative
	masks [ipaddr.NybbleCount]tga.ValueMask
	size  int
	gen   *tga.LeafGen
}

// New returns a 6Gen generator with default parameters.
func New() *Generator { return &Generator{MaxClusterRadius: 4, MaxClusters: 4096} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Gen" }

// Online implements tga.Generator. 6Gen generation is offline.
func (g *Generator) Online() bool { return false }

// Init clusters the seeds and prepares range enumerators.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	if len(seeds) == 0 {
		return errors.New("sixgen: empty seed set")
	}
	if g.MaxClusterRadius <= 0 {
		g.MaxClusterRadius = 4
	}
	if g.MaxClusters <= 0 {
		g.MaxClusters = 4096
	}

	// Greedy clustering with a prefix index: seeds sharing their top 16
	// nybbles are clustering candidates (cross-prefix seeds are farther
	// than any useful radius anyway).
	byPrefix := make(map[uint64][]*cluster)
	g.clusters = g.clusters[:0]
	for _, a := range seeds {
		key := a.Hi()
		var best *cluster
		bestDist := g.MaxClusterRadius + 1
		for _, c := range byPrefix[key] {
			if d := c.rep.NybbleDistance(a); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == nil && len(g.clusters) >= g.MaxClusters && len(byPrefix[key]) > 0 {
			best = byPrefix[key][0]
		}
		if best == nil {
			c := &cluster{rep: a, size: 1}
			for i := 0; i < ipaddr.NybbleCount; i++ {
				c.masks[i] = 1 << a.Nybble(i)
			}
			byPrefix[key] = append(byPrefix[key], c)
			g.clusters = append(g.clusters, c)
			continue
		}
		for i := 0; i < ipaddr.NybbleCount; i++ {
			best.masks[i] |= 1 << a.Nybble(i)
		}
		best.size++
	}

	// Density order: seeds per range combination, descending.
	sort.SliceStable(g.clusters, func(i, j int) bool {
		di := float64(g.clusters[i].size) / tga.MaskSize(g.clusters[i].masks)
		dj := float64(g.clusters[j].size) / tga.MaskSize(g.clusters[j].masks)
		if di != dj {
			return di > dj
		}
		return g.clusters[i].size > g.clusters[j].size
	})
	for _, c := range g.clusters {
		c.gen = tga.NewLeafGen(c.masks, nil)
	}
	g.produced = make([]int, len(g.clusters))
	g.emitted = ipaddr.NewSet()
	return nil
}

// NextBatch enumerates ranges weighted by cluster size, densest-first.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	out := make([]ipaddr.Addr, 0, n)
	for len(out) < n {
		best, bestScore := -1, -1.0
		for i, c := range g.clusters {
			if c.gen == nil {
				continue
			}
			score := math.Sqrt(float64(c.size)) / float64(g.produced[i]+1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		c := g.clusters[best]
		chunk := 4 * c.size
		if chunk < 8 {
			chunk = 8
		}
		if chunk > n/4 {
			chunk = n/4 + 1
		}
		got := 0
		for got < chunk && len(out) < n {
			a, ok := c.gen.Next()
			if !ok {
				c.gen = nil
				break
			}
			if !g.emitted.Add(a) {
				continue
			}
			out = append(out, a)
			got++
		}
		g.produced[best] += got
	}
	return out
}

// Feedback implements tga.Generator; 6Gen ignores scan results.
func (g *Generator) Feedback([]tga.ProbeResult) {}

// ClusterCount reports the number of clusters built (diagnostics).
func (g *Generator) ClusterCount() int { return len(g.clusters) }
