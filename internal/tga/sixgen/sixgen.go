// Package sixgen implements 6Gen (Murdock et al., IMC 2017): seed
// clustering by nybble Hamming distance. Each cluster's range is the
// per-position union of its members' values; clusters grow greedily by
// absorbing the nearest seeds while the seed density of the resulting
// range stays highest. Generation enumerates the densest cluster ranges
// first.
//
// 6Gen also originated the online /96 dealiasing test this repository's
// alias package implements; as a generator it runs offline.
package sixgen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Gen TGA. Construct with New.
type Generator struct {
	// MaxClusterRadius is the nybble distance within which seeds join an
	// existing cluster (default 4).
	MaxClusterRadius int
	// MaxClusters caps the number of tracked clusters; further seeds join
	// their nearest cluster regardless of radius (default 4096).
	MaxClusters int

	clusters []*cluster
	produced []int
	emitted  *ipaddr.Set
}

type cluster struct {
	rep   ipaddr.Addr // first member, the cluster representative
	masks [ipaddr.NybbleCount]tga.ValueMask
	size  int
	gen   *tga.LeafGen
}

// Model is 6Gen's cacheable mined model: the clusters in density order,
// without per-run enumerator state.
type Model struct {
	Clusters []ClusterModel
}

// ClusterModel is one mined cluster.
type ClusterModel struct {
	Rep   ipaddr.Addr
	Masks [ipaddr.NybbleCount]tga.ValueMask
	Size  int
}

// New returns a 6Gen generator with default parameters.
func New() *Generator { return &Generator{MaxClusterRadius: 4, MaxClusters: 4096} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Gen" }

// Online implements tga.Generator. 6Gen generation is offline.
func (g *Generator) Online() bool { return false }

func (g *Generator) radius() int {
	if g.MaxClusterRadius <= 0 {
		return 4
	}
	return g.MaxClusterRadius
}

func (g *Generator) maxClusters() int {
	if g.MaxClusters <= 0 {
		return 4096
	}
	return g.MaxClusters
}

// ModelParams implements tga.ModelBuilder.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("radius=%d,maxclusters=%d", g.radius(), g.maxClusters())
}

// clusterRun greedily clusters one prefix's seeds (given by index, all
// sharing Hi()), with no global cluster cap. This is exactly the serial
// algorithm restricted to a single prefix: the prefix index already
// confines clustering candidates to the same prefix, so per-prefix shards
// are independent.
func clusterRun(seeds []ipaddr.Addr, idx []int, radius int) []*cluster {
	var clusters []*cluster
	for _, j := range idx {
		a := seeds[j]
		var best *cluster
		bestDist := radius + 1
		for _, c := range clusters {
			if d := c.rep.NybbleDistance(a); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == nil {
			c := &cluster{rep: a, size: 1}
			for i := 0; i < ipaddr.NybbleCount; i++ {
				c.masks[i] = 1 << a.Nybble(i)
			}
			clusters = append(clusters, c)
			continue
		}
		for i := 0; i < ipaddr.NybbleCount; i++ {
			best.masks[i] |= 1 << a.Nybble(i)
		}
		best.size++
	}
	return clusters
}

// clusterSerial is the reference greedy clustering with the global
// MaxClusters cap: once the cap is reached, seeds join their prefix's
// first cluster regardless of radius.
func clusterSerial(seeds []ipaddr.Addr, radius, maxClusters int) []*cluster {
	// Greedy clustering with a prefix index: seeds sharing their top 16
	// nybbles are clustering candidates (cross-prefix seeds are farther
	// than any useful radius anyway).
	byPrefix := make(map[uint64][]*cluster)
	var clusters []*cluster
	for _, a := range seeds {
		key := a.Hi()
		var best *cluster
		bestDist := radius + 1
		for _, c := range byPrefix[key] {
			if d := c.rep.NybbleDistance(a); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == nil && len(clusters) >= maxClusters && len(byPrefix[key]) > 0 {
			best = byPrefix[key][0]
		}
		if best == nil {
			c := &cluster{rep: a, size: 1}
			for i := 0; i < ipaddr.NybbleCount; i++ {
				c.masks[i] = 1 << a.Nybble(i)
			}
			byPrefix[key] = append(byPrefix[key], c)
			clusters = append(clusters, c)
			continue
		}
		for i := 0; i < ipaddr.NybbleCount; i++ {
			best.masks[i] |= 1 << a.Nybble(i)
		}
		best.size++
	}
	return clusters
}

// mineClusters clusters the seeds, in parallel per-prefix shards when the
// seed set is large. The prefix index confines clustering candidates to
// their own prefix, so cap-free shards (grouped by prefix in first-seen
// order, each processing its seeds in seed order) reproduce the serial
// result exactly. The one coupling between prefixes is the global
// MaxClusters cap: if the cap-free total exceeds it, the cap would have
// bound serially too, and we redo the mine with the exact serial
// semantics. (Conversely, a cap-free total at or under the cap proves the
// serial run never force-joined, so the shard concatenation is the serial
// result up to cluster order, which the density sort canonicalizes.)
func (g *Generator) mineClusters(seeds []ipaddr.Addr) []*cluster {
	radius, maxClusters := g.radius(), g.maxClusters()
	if len(seeds) >= tga.ParallelMineThreshold {
		keyIdx := make(map[uint64]int)
		var groups [][]int
		for i, a := range seeds {
			k := a.Hi()
			gi, ok := keyIdx[k]
			if !ok {
				gi = len(groups)
				keyIdx[k] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], i)
		}
		perGroup := make([][]*cluster, len(groups))
		tga.MineParallel(len(groups), func(i int) {
			perGroup[i] = clusterRun(seeds, groups[i], radius)
		})
		total := 0
		for _, cs := range perGroup {
			total += len(cs)
		}
		if total <= maxClusters {
			out := make([]*cluster, 0, total)
			for _, cs := range perGroup {
				out = append(out, cs...)
			}
			return out
		}
	}
	return clusterSerial(seeds, radius, maxClusters)
}

// BuildModel implements tga.ModelBuilder: it mines the clusters and
// snapshots them in density order.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixgen: empty seed set")
	}
	clusters := g.mineClusters(seeds)
	// Density order: seeds per range combination, descending.
	sort.SliceStable(clusters, func(i, j int) bool {
		di := float64(clusters[i].size) / tga.MaskSize(clusters[i].masks)
		dj := float64(clusters[j].size) / tga.MaskSize(clusters[j].masks)
		if di != dj {
			return di > dj
		}
		return clusters[i].size > clusters[j].size
	})
	m := &Model{Clusters: make([]ClusterModel, len(clusters))}
	for i, c := range clusters {
		m.Clusters[i] = ClusterModel{Rep: c.rep, Masks: c.masks, Size: c.size}
	}
	return m, nil
}

// InitFromModel implements tga.ModelBuilder: it materializes fresh
// per-run enumerators over the mined clusters.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	mm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("sixgen: model type %T", m)
	}
	g.MaxClusterRadius = g.radius()
	g.MaxClusters = g.maxClusters()
	g.clusters = make([]*cluster, len(mm.Clusters))
	for i, cm := range mm.Clusters {
		g.clusters[i] = &cluster{
			rep:   cm.Rep,
			masks: cm.Masks,
			size:  cm.Size,
			gen:   tga.NewLeafGen(cm.Masks, nil),
		}
	}
	g.produced = make([]int, len(g.clusters))
	g.emitted = ipaddr.NewSet()
	return nil
}

// Init clusters the seeds and prepares range enumerators.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// NextBatch enumerates ranges weighted by cluster size, densest-first.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	out := make([]ipaddr.Addr, 0, n)
	for len(out) < n {
		best, bestScore := -1, -1.0
		for i, c := range g.clusters {
			if c.gen == nil {
				continue
			}
			score := math.Sqrt(float64(c.size)) / float64(g.produced[i]+1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		c := g.clusters[best]
		chunk := 4 * c.size
		if chunk < 8 {
			chunk = 8
		}
		if chunk > n/4 {
			chunk = n/4 + 1
		}
		got := 0
		for got < chunk && len(out) < n {
			a, ok := c.gen.Next()
			if !ok {
				c.gen = nil
				break
			}
			if !g.emitted.Add(a) {
				continue
			}
			out = append(out, a)
			got++
		}
		g.produced[best] += got
	}
	return out
}

// Feedback implements tga.Generator; 6Gen ignores scan results.
func (g *Generator) Feedback([]tga.ProbeResult) {}

// ClusterCount reports the number of clusters built (diagnostics).
func (g *Generator) ClusterCount() int { return len(g.clusters) }
