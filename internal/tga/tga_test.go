package tga

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
)

func seedsFrom(ss ...string) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipaddr.MustParse(s)
	}
	return out
}

func TestObservedMasks(t *testing.T) {
	seeds := seedsFrom("2001:db8::1", "2001:db8::2")
	m := ObservedMasks(seeds)
	if m[31] != 1<<1|1<<2 {
		t.Fatalf("mask[31] = %x", m[31])
	}
	if m[0] != 1<<2 {
		t.Fatalf("mask[0] = %x", m[0])
	}
}

func TestPositionEntropy(t *testing.T) {
	seeds := seedsFrom("2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::4")
	h := PositionEntropy(seeds)
	if h[0] != 0 {
		t.Fatalf("fixed position entropy = %v", h[0])
	}
	if h[31] != 2 { // four equiprobable values
		t.Fatalf("h[31] = %v, want 2", h[31])
	}
	var empty [0]ipaddr.Addr
	_ = empty
	if got := PositionEntropy(nil); got[0] != 0 {
		t.Fatal("entropy of empty seeds must be zero")
	}
}

func TestMaskEnumOdometer(t *testing.T) {
	var values [ipaddr.NybbleCount][]byte
	for i := range values {
		values[i] = []byte{0}
	}
	values[31] = []byte{1, 2}
	values[30] = []byte{0, 5}
	e := newMaskEnum(values)
	var got []ipaddr.Addr
	for {
		a, ok := e.next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) != 4 {
		t.Fatalf("enumerated %d, want 4", len(got))
	}
	// Least significant varies fastest.
	if got[0] != ipaddr.MustParse("::1") || got[1] != ipaddr.MustParse("::2") ||
		got[2] != ipaddr.MustParse("::51") || got[3] != ipaddr.MustParse("::52") {
		t.Fatalf("order wrong: %v", got)
	}
}

func TestLeafGenNoDuplicatesAndWidens(t *testing.T) {
	seeds := seedsFrom("2001:db8::11", "2001:db8::12", "2001:db8::21")
	masks := ObservedMasks(seeds)
	g := NewLeafGen(masks, nil)
	seen := ipaddr.NewSet()
	n := 0
	for n < 500 {
		a, ok := g.Next()
		if !ok {
			break
		}
		if !seen.Add(a) {
			t.Fatalf("duplicate %v after %d", a, n)
		}
		n++
	}
	// Initial product is 2x2=4; widening must carry it well beyond.
	if n < 100 {
		t.Fatalf("generated only %d", n)
	}
}

func TestLeafGenExhaustsFullyWidenedSpace(t *testing.T) {
	// Fix everything except position 31: space is at most 16.
	var masks [ipaddr.NybbleCount]ValueMask
	for i := range masks {
		masks[i] = 1 << 0
	}
	masks[31] = 1 << 5
	g := NewLeafGen(masks, []int{31})
	count := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		count++
		if count > 16 {
			t.Fatal("generated more than the space allows")
		}
	}
	if count != 16 {
		t.Fatalf("generated %d, want 16", count)
	}
}

func TestBuildTreeShape(t *testing.T) {
	seeds := seedsFrom(
		"2001:db8:a::1", "2001:db8:a::2", "2001:db8:a::3",
		"2001:db8:b::1", "2001:db8:b::2",
	)
	root := BuildTree(seeds, 1, SplitLeftmost)
	leaves := root.Leaves()
	if len(leaves) < 2 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	total := 0
	for _, l := range leaves {
		total += len(l.Seeds)
		if !l.IsLeaf() || l.Gen == nil {
			t.Fatal("leaf not initialized")
		}
	}
	if total != len(seeds) {
		t.Fatalf("leaves cover %d seeds, want %d", total, len(seeds))
	}
	if root.CountNodes() < 3 {
		t.Fatalf("nodes = %d", root.CountNodes())
	}
}

func TestSplitHeuristics(t *testing.T) {
	seeds := seedsFrom("2001:db8:a::1", "2001:db8:b::2", "2001:db8:a::3")
	if got := SplitLeftmost(seeds, []int{11, 31}); got != 11 {
		t.Fatalf("leftmost = %d", got)
	}
	if got := SplitLeftmost(seeds, nil); got != -1 {
		t.Fatal("leftmost on no candidates should be -1")
	}
	// Position 11 has 2 values {a,b} with seed counts 2/1 → entropy ~0.918;
	// position 31 has 3 values → entropy ~1.585. Min-entropy picks 11.
	if got := SplitMinEntropy(seeds, []int{11, 31}); got != 11 {
		t.Fatalf("min-entropy = %d", got)
	}
}

func TestNodeRewardAndDensity(t *testing.T) {
	n := &TreeNode{}
	if got := n.Reward(); got != 0.5 {
		t.Fatalf("prior reward = %v", got)
	}
	n.Probes, n.Hits = 100, 50
	if got := n.Reward(); got < 0.49 || got > 0.51 {
		t.Fatalf("reward = %v", got)
	}
}

// staticGen is a trivial generator for driver tests.
type staticGen struct {
	addrs []ipaddr.Addr
	i     int
	fb    int
}

func (g *staticGen) Name() string                   { return "static" }
func (g *staticGen) Online() bool                   { return true }
func (g *staticGen) Init(seeds []ipaddr.Addr) error { return nil }
func (g *staticGen) Feedback(rs []ProbeResult)      { g.fb += len(rs) }
func (g *staticGen) NextBatch(n int) []ipaddr.Addr {
	if g.i >= len(g.addrs) {
		return nil
	}
	end := g.i + n
	if end > len(g.addrs) {
		end = len(g.addrs)
	}
	out := g.addrs[g.i:end]
	g.i = end
	return out
}

// nullProber marks everything silent.
type nullProber struct{ calls int }

func (p *nullProber) Scan(ts []ipaddr.Addr, pr proto.Protocol) []scanner.Result {
	p.calls++
	out := make([]scanner.Result, len(ts))
	for i, a := range ts {
		out[i] = scanner.Result{Addr: a, Proto: pr}
	}
	return out
}

// ScanActive completes the shared scanner.Prober surface; the driver
// tests exercise only Scan.
func (p *nullProber) ScanActive(ts []ipaddr.Addr, pr proto.Protocol) []ipaddr.Addr { return nil }

func TestRunBudgetAndDedup(t *testing.T) {
	var addrs []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 100; i++ {
		addrs = append(addrs, base.AddLo(uint64(i%50))) // 50 unique, repeated
	}
	g := &staticGen{addrs: addrs}
	pr := &nullProber{}
	res, err := Run(g, nil, RunConfig{Budget: 40, BatchSize: 16, Prober: pr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 40 {
		t.Fatalf("generated = %d", res.Generated)
	}
	if g.fb == 0 {
		t.Fatal("online generator got no feedback")
	}
}

func TestRunExhaustion(t *testing.T) {
	g := &staticGen{addrs: seedsFrom("::1", "::2")}
	res, err := Run(g, nil, RunConfig{Budget: 100, Prober: &nullProber{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Generated != 2 {
		t.Fatalf("exhausted=%v generated=%d", res.Exhausted, res.Generated)
	}
}

func TestRunExcludesSeeds(t *testing.T) {
	seeds := seedsFrom("::1", "::2")
	g := &staticGen{addrs: seedsFrom("::1", "::2", "::3")}
	res, err := Run(g, seeds, RunConfig{Budget: 10, Prober: &nullProber{}, ExcludeSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 1 {
		t.Fatalf("generated = %d, want 1 (seeds excluded)", res.Generated)
	}
}

func TestRunRejectsBadBudget(t *testing.T) {
	if _, err := Run(&staticGen{}, nil, RunConfig{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

// dupPrefixGen is a stateless generator that always returns the first n
// candidates of a fixed enumeration whose head contains duplicates — the
// shape that starves tiny NextBatch requests (a 1-seed leaf's first
// enumeration is the seed itself).
type dupPrefixGen struct{ seq []ipaddr.Addr }

func (g *dupPrefixGen) Name() string                   { return "dupprefix" }
func (g *dupPrefixGen) Online() bool                   { return false }
func (g *dupPrefixGen) Init(seeds []ipaddr.Addr) error { return nil }
func (g *dupPrefixGen) Feedback([]ProbeResult)         {}
func (g *dupPrefixGen) NextBatch(n int) []ipaddr.Addr {
	if n > len(g.seq) {
		n = len(g.seq)
	}
	return g.seq[:n]
}

// TestGenerateFullBatchAvoidsStarvation is the regression test for
// Generate's tiny-request starvation: requesting budget-out.Len() made the
// final rounds ask for 1-2 candidates, which a duplicate-heavy generator
// answers with already-seen addresses forever — Generate falsely reported
// exhaustion one short of the budget. Like RunContext, it must request
// full batches and discard extras.
func TestGenerateFullBatchAvoidsStarvation(t *testing.T) {
	// Enumeration head repeats the first address; 6 unique total.
	seq := seedsFrom("::1", "::1", "::2", "::3", "::4", "::5", "::6")
	got, err := Generate(&dupPrefixGen{seq: seq}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("generated %d of budget 5 (starved on duplicate head)", len(got))
	}
	seen := make(map[ipaddr.Addr]bool)
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate %v in output", a)
		}
		seen[a] = true
	}
}

// TestGenerateStopsAtBudget pins the discard-extras side of the fix: a
// full-batch request must not push the output past the budget.
func TestGenerateStopsAtBudget(t *testing.T) {
	var seq []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 500; i++ {
		seq = append(seq, base.AddLo(uint64(i)))
	}
	got, err := Generate(&dupPrefixGen{seq: seq}, nil, 123)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 123 {
		t.Fatalf("generated %d, want exactly the 123 budget", len(got))
	}
}
