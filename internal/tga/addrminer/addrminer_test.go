package addrminer

import (
	"path/filepath"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/tga"
	"seedscan/internal/world"
)

func setup(t testing.TB) (*world.World, *scanner.Scanner, []ipaddr.Addr) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	samp := w.NewSampler(500)
	seeds := samp.Hosts(2000)
	w.SetEpoch(world.ScanEpoch)
	return w, scanner.New(w.Link(), scanner.WithSecret(5)), seeds
}

func TestMetadata(t *testing.T) {
	g := New(nil)
	if g.Name() != "AddrMiner" || !g.Online() {
		t.Fatal("metadata wrong")
	}
	if err := g.Init(nil); err == nil {
		t.Fatal("empty seeds + empty memory accepted")
	}
}

func TestMemoryAccumulatesAcrossRuns(t *testing.T) {
	_, sc, seeds := setup(t)
	store := NewStore()

	run := func() int {
		g := New(store)
		res, err := tga.Run(g, seeds, tga.RunConfig{
			Budget: 2500, BatchSize: 512, Proto: proto.ICMP,
			Prober: sc, ExcludeSeeds: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Hits)
	}
	first := run()
	if first == 0 {
		t.Fatal("first run found nothing")
	}
	memAfterFirst := store.Len()
	if memAfterFirst == 0 {
		t.Fatal("memory empty after a run with hits")
	}
	run()
	if store.Len() < memAfterFirst {
		t.Fatal("memory shrank")
	}
}

func TestMemorySeedsSecondRun(t *testing.T) {
	// A second run can start from memory alone: long-term measurement
	// without re-collecting seeds.
	_, sc, seeds := setup(t)
	store := NewStore()
	g := New(store)
	if _, err := tga.Run(g, seeds, tga.RunConfig{
		Budget: 2500, BatchSize: 512, Proto: proto.ICMP, Prober: sc, ExcludeSeeds: true,
	}); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Skip("no hits to remember in this configuration")
	}
	g2 := New(store)
	res, err := tga.Run(g2, nil, tga.RunConfig{
		Budget: 1500, BatchSize: 512, Proto: proto.ICMP, Prober: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("memory-only run generated nothing")
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memory.txt")

	s, err := LoadStore(path) // missing file: empty store
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("missing file should load empty")
	}
	s.Remember([]ipaddr.Addr{ipaddr.MustParse("2001:db8::1"), ipaddr.MustParse("2001:db8::2")})
	if err := s.Save(""); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != 2 {
		t.Fatalf("reloaded %d addresses", reloaded.Len())
	}
}

func TestAliasedHitsNotRemembered(t *testing.T) {
	store := NewStore()
	g := New(store)
	if err := g.Init([]ipaddr.Addr{ipaddr.MustParse("2001:db8::1"), ipaddr.MustParse("2001:db8::2")}); err != nil {
		t.Fatal(err)
	}
	batch := g.NextBatch(16)
	if len(batch) == 0 {
		t.Fatal("no batch")
	}
	g.Feedback([]tga.ProbeResult{
		{Addr: batch[0], Active: true, Aliased: true},
	})
	if store.Len() != 0 {
		t.Fatal("aliased hit was remembered")
	}
}
