// Package addrminer implements AddrMiner (Song et al., USENIX ATC 2022) as
// an extension beyond the paper's eight studied TGAs: a DET-derived
// generator organized around long-term measurement. AddrMiner's defining
// addition is persistence — every run's discoveries are folded into a
// durable memory that seeds future runs, which is how the AddrMiner
// hitlist the paper uses as a seed source (§5.1) came to exist.
//
// The generation core reuses DET (entropy-split space tree with online
// reward allocation); this package adds the memory store with optional
// file persistence in the standard hitlist format.
package addrminer

import (
	"sync"

	"seedscan/internal/ipaddr"
	"seedscan/internal/seeds"
	"seedscan/internal/tga"
	"seedscan/internal/tga/det"
)

// Store is AddrMiner's long-term memory: every address ever confirmed
// active. Safe for concurrent use; one Store may back many runs.
type Store struct {
	mu   sync.Mutex
	set  *ipaddr.Set
	path string
}

// NewStore returns an empty in-memory store.
func NewStore() *Store { return &Store{set: ipaddr.NewSet()} }

// LoadStore reads a store from a hitlist-format file; a missing file
// yields an empty store bound to the path.
func LoadStore(path string) (*Store, error) {
	s := &Store{set: ipaddr.NewSet(), path: path}
	ds, err := seeds.ReadFile(path)
	if err != nil {
		return s, nil // first run: nothing persisted yet
	}
	s.set.AddSet(ds.Addrs)
	return s, nil
}

// Len reports the number of remembered addresses.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Len()
}

// Remember records active addresses.
func (s *Store) Remember(addrs []ipaddr.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.set.AddAll(addrs)
}

// Snapshot returns a copy of the remembered addresses.
func (s *Store) Snapshot() []ipaddr.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Slice()
}

// Save writes the store to its bound path (or the given override).
func (s *Store) Save(path string) error {
	if path == "" {
		path = s.path
	}
	s.mu.Lock()
	ds := seeds.FromSet("addrminer-memory", s.set.Clone())
	s.mu.Unlock()
	return ds.WriteFile(path)
}

// Generator is the AddrMiner TGA: DET plus long-term memory.
type Generator struct {
	// Memory persists across runs; nil gets a fresh private store.
	Memory *Store

	inner *det.Generator
}

// New returns an AddrMiner generator over the given store (nil for a
// fresh one).
func New(store *Store) *Generator {
	if store == nil {
		store = NewStore()
	}
	return &Generator{Memory: store, inner: det.New()}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "AddrMiner" }

// Online implements tga.Generator.
func (g *Generator) Online() bool { return true }

// Init unions the run's seeds with the long-term memory before handing
// them to the DET core — the accumulated knowledge is what lets AddrMiner
// keep improving across measurement campaigns.
//
// AddrMiner deliberately does NOT implement tga.ModelBuilder: its
// effective seed set depends on the Store's current contents, which grow
// with every run, so a model keyed only on (seeds, params) would go stale
// the moment memory changes. The DET core still mines in parallel on
// large pools via BuildTreeAuto.
func (g *Generator) Init(seedAddrs []ipaddr.Addr) error {
	pool := ipaddr.NewOASetFrom(seedAddrs)
	for _, a := range g.Memory.Snapshot() {
		pool.Add(a)
	}
	return g.inner.Init(pool.Slice())
}

// NextBatch delegates to the DET core.
func (g *Generator) NextBatch(n int) []ipaddr.Addr { return g.inner.NextBatch(n) }

// Feedback forwards results to DET and commits genuine hits to memory.
func (g *Generator) Feedback(results []tga.ProbeResult) {
	g.inner.Feedback(results)
	var hits []ipaddr.Addr
	for _, r := range results {
		if r.Active && !r.Aliased {
			hits = append(hits, r.Addr)
		}
	}
	if len(hits) > 0 {
		g.Memory.Remember(hits)
	}
}
