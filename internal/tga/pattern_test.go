package tga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seedscan/internal/ipaddr"
)

func TestMaskEnumCountsMatchProduct(t *testing.T) {
	// For random small masks, the enumerator must produce exactly the
	// cartesian product size, all distinct.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var values [ipaddr.NybbleCount][]byte
		expect := 1
		for i := range values {
			values[i] = []byte{0}
		}
		// Up to three variable positions with 1-3 values each.
		for k := 0; k < 3; k++ {
			pos := rng.Intn(ipaddr.NybbleCount)
			n := 1 + rng.Intn(3)
			vals := map[byte]bool{}
			for len(vals) < n {
				vals[byte(rng.Intn(16))] = true
			}
			var vs []byte
			for v := range vals {
				vs = append(vs, v)
			}
			// Replacing a position replaces its contribution.
			expect = expect / len(values[pos]) * len(vs)
			values[pos] = vs
		}
		e := newMaskEnum(values)
		seen := ipaddr.NewSet()
		count := 0
		for {
			a, ok := e.next()
			if !ok {
				break
			}
			if !seen.Add(a) {
				return false // duplicate
			}
			count++
			if count > expect {
				return false
			}
		}
		return count == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskEnumEmptyPosition(t *testing.T) {
	var values [ipaddr.NybbleCount][]byte
	for i := range values {
		values[i] = []byte{0}
	}
	values[5] = nil // impossible position
	e := newMaskEnum(values)
	if _, ok := e.next(); ok {
		t.Fatal("enumerated with an empty position")
	}
}

func TestNearestUnsetProperties(t *testing.T) {
	f := func(m uint16) bool {
		v, ok := nearestUnset(m)
		if m == 0xffff {
			return !ok
		}
		if !ok {
			return false // any non-full mask must have a candidate
		}
		return m&(1<<v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeafGenMatchesWidenedMasks(t *testing.T) {
	// Every generated address must conform to the leaf's current masks
	// (which only ever widen), and its fixed prefix must never change.
	seeds := seedsFrom("2001:db8::1", "2001:db8::2", "2001:db8::11")
	masks := ObservedMasks(seeds)
	g := NewLeafGen(masks, nil)
	prefix := ipaddr.MustParsePrefix("2001:db8::/64")
	for i := 0; i < 2000; i++ {
		a, ok := g.Next()
		if !ok {
			break
		}
		if !prefix.Contains(a) {
			t.Fatalf("candidate %v escaped the fixed prefix", a)
		}
	}
}

func TestMaskSizeEdgeCases(t *testing.T) {
	var masks [ipaddr.NybbleCount]ValueMask
	if MaskSize(masks) != 0 {
		t.Fatal("all-empty mask must have size 0")
	}
	for i := range masks {
		masks[i] = 1
	}
	if MaskSize(masks) != 1 {
		t.Fatal("all-pinned mask must have size 1")
	}
	masks[0] = 0xffff
	if MaskSize(masks) != 16 {
		t.Fatal("one full position must give 16")
	}
}

func TestMaskValuesOrdered(t *testing.T) {
	vs := MaskValues(1<<3 | 1<<0 | 1<<15)
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 3 || vs[2] != 15 {
		t.Fatalf("MaskValues = %v", vs)
	}
	if len(MaskValues(0)) != 0 {
		t.Fatal("empty mask values")
	}
}
