package sixtree

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

func seedsFrom(ss ...string) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipaddr.MustParse(s)
	}
	return out
}

func TestInitRejectsEmpty(t *testing.T) {
	if err := New().Init(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestMetadata(t *testing.T) {
	g := New()
	if g.Name() != "6Tree" || g.Online() {
		t.Fatal("metadata wrong")
	}
}

func TestTreeSplitsPerPrefix(t *testing.T) {
	g := New()
	err := g.Init(seedsFrom(
		"2001:db8:a::1", "2001:db8:a::2", "2001:db8:a::3", "2001:db8:a::4", "2001:db8:a::5",
		"2600:9000::1", "2600:9000::2", "2600:9000::3", "2600:9000::4", "2600:9000::5",
	))
	if err != nil {
		t.Fatal(err)
	}
	if g.LeafCount() < 2 {
		t.Fatalf("leaves = %d, want per-prefix separation", g.LeafCount())
	}
}

func TestGenerationStaysNearSeedsInitially(t *testing.T) {
	g := New()
	seeds := seedsFrom("2001:db8::11", "2001:db8::12", "2001:db8::13", "2001:db8::21", "2001:db8::22")
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	p32 := ipaddr.MustParsePrefix("2001:db8::/32")
	batch := g.NextBatch(50)
	if len(batch) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range batch {
		if !p32.Contains(a) {
			t.Fatalf("candidate %v escaped the seed /32", a)
		}
	}
}

func TestBatchesSpreadAcrossLeaves(t *testing.T) {
	// Many distinct /48s, one seed pair each: a batch must touch many.
	var seeds []ipaddr.Addr
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < 64; i++ {
		s := base.WithNybble(9, byte(i%16)).WithNybble(10, byte(i/16))
		seeds = append(seeds, s.AddLo(1), s.AddLo(2))
	}
	g := New()
	if err := g.Init(seeds); err != nil {
		t.Fatal(err)
	}
	batch := g.NextBatch(640)
	prefixes := ipaddr.NewSet()
	for _, a := range batch {
		prefixes.Add(ipaddr.PrefixFrom(a, 44).Addr())
	}
	if prefixes.Len() < 32 {
		t.Fatalf("batch covered only %d distinct /44s", prefixes.Len())
	}
}

func TestFeedbackIsNoOp(t *testing.T) {
	g := New()
	if err := g.Init(seedsFrom("2001:db8::1", "2001:db8::2")); err != nil {
		t.Fatal(err)
	}
	before := g.NextBatch(10)
	g.Feedback([]tga.ProbeResult{{Addr: before[0], Active: true}})
	// No panic, no state corruption: generation continues.
	if len(g.NextBatch(10)) == 0 {
		t.Fatal("generation stopped after feedback")
	}
}
