// Package sixtree implements 6Tree (Liu et al., Computer Networks 2019):
// divisive hierarchical clustering of the seed set into a space tree,
// splitting on the most significant varying nybble, followed by expansion
// of leaf regions in seed-density order. 6Tree is the ancestor of most
// tree-based TGAs and — per the paper's RQ4 — still outperforms several of
// its successors.
package sixtree

import (
	"errors"
	"fmt"

	"seedscan/internal/ipaddr"
	"seedscan/internal/tga"
)

// Generator is the 6Tree TGA. Construct with New.
type Generator struct {
	// MinLeaf stops splitting below this many seeds (default 4).
	MinLeaf int

	leaves []*tga.TreeNode
	weight []float64
	// produced tracks per-leaf output for proportional allocation.
	produced []int
	// emitted guards against cross-leaf duplicates once leaves widen into
	// each other's space.
	emitted *ipaddr.OASet
	total   int
}

// New returns a 6Tree generator with default parameters.
func New() *Generator { return &Generator{MinLeaf: 4} }

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Tree" }

// Online implements tga.Generator. 6Tree generates from the static tree.
func (g *Generator) Online() bool { return false }

func (g *Generator) minLeaf() int {
	if g.MinLeaf <= 0 {
		return 4
	}
	return g.MinLeaf
}

// ModelParams implements tga.ModelBuilder.
func (g *Generator) ModelParams() string {
	return fmt.Sprintf("minleaf=%d", g.minLeaf())
}

// BuildModel implements tga.ModelBuilder: it mines the space tree, fanning
// subtree construction across CPUs on large seed sets.
func (g *Generator) BuildModel(seeds []ipaddr.Addr) (tga.Model, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sixtree: empty seed set")
	}
	return tga.SnapshotTree(tga.BuildTreeAuto(seeds, g.minLeaf(), tga.SplitLeftmost)), nil
}

// InitFromModel implements tga.ModelBuilder: it adopts a mined tree and
// builds fresh run state over it.
func (g *Generator) InitFromModel(m tga.Model, seeds []ipaddr.Addr) error {
	tm, ok := m.(*tga.TreeModel)
	if !ok {
		return fmt.Errorf("sixtree: model type %T", m)
	}
	g.leaves = tm.Leaves()
	g.weight = make([]float64, len(g.leaves))
	g.produced = make([]int, len(g.leaves))
	g.emitted = ipaddr.NewOASet(len(seeds))
	for i, l := range g.leaves {
		// Density-ordered expansion: regions holding more seeds relative
		// to their pattern size are searched harder.
		g.weight[i] = float64(len(l.Seeds))
	}
	return nil
}

// Init builds the space tree.
func (g *Generator) Init(seeds []ipaddr.Addr) error {
	m, err := g.BuildModel(seeds)
	if err != nil {
		return err
	}
	return g.InitFromModel(m, seeds)
}

// NextBatch allocates n candidates across leaves proportionally to seed
// weight, skipping exhausted leaves.
func (g *Generator) NextBatch(n int) []ipaddr.Addr {
	if len(g.leaves) == 0 {
		return nil
	}
	out := make([]ipaddr.Addr, 0, n)
	// Repeatedly pick the leaf with the highest weight-per-produced ratio:
	// a deterministic proportional-share scheduler.
	for len(out) < n {
		best, bestScore := -1, -1.0
		for i, l := range g.leaves {
			if l.Gen == nil {
				continue
			}
			score := g.weight[i] / float64(g.produced[i]+1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		l := g.leaves[best]
		// Chunk scales with the leaf's seed weight so small leaves are
		// visited briefly and the batch spreads across many regions —
		// 6Tree's breadth is what makes it competitive on AS diversity.
		chunk := 4 * int(g.weight[best])
		if chunk < 8 {
			chunk = 8
		}
		got := 0
		for got < chunk && len(out) < n {
			a, ok := l.Gen.Next()
			if !ok {
				l.Gen = nil // exhausted
				break
			}
			if !g.emitted.Add(a) {
				continue // another leaf already proposed it
			}
			out = append(out, a)
			got++
		}
		g.produced[best] += got
		if l.Gen == nil && got == 0 {
			continue
		}
	}
	g.total += len(out)
	return out
}

// Feedback implements tga.Generator; 6Tree ignores scan results.
func (g *Generator) Feedback([]tga.ProbeResult) {}

// LeafCount reports the number of tree leaves (for diagnostics and tests).
func (g *Generator) LeafCount() int { return len(g.leaves) }
