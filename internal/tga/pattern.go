package tga

import (
	"math"
	"math/bits"

	"seedscan/internal/ipaddr"
)

// ValueMask is a 16-bit set of hex values observed or allowed at one
// nybble position.
type ValueMask = uint16

// ObservedMasks returns, per nybble position, the set of values seen in
// the seeds — the raw material of every pattern miner.
func ObservedMasks(seeds []ipaddr.Addr) [ipaddr.NybbleCount]ValueMask {
	var m [ipaddr.NybbleCount]ValueMask
	for _, a := range seeds {
		for i := 0; i < ipaddr.NybbleCount; i++ {
			m[i] |= 1 << a.Nybble(i)
		}
	}
	return m
}

// ValueCounts tallies value frequencies per position.
func ValueCounts(seeds []ipaddr.Addr) [ipaddr.NybbleCount][16]int {
	var c [ipaddr.NybbleCount][16]int
	for _, a := range seeds {
		for i := 0; i < ipaddr.NybbleCount; i++ {
			c[i][a.Nybble(i)]++
		}
	}
	return c
}

// PositionEntropy returns the Shannon entropy (bits) of the value
// distribution at each position — Entropy/IP's segmentation signal and
// DET's splitting heuristic.
func PositionEntropy(seeds []ipaddr.Addr) [ipaddr.NybbleCount]float64 {
	counts := ValueCounts(seeds)
	var h [ipaddr.NybbleCount]float64
	n := float64(len(seeds))
	if n == 0 {
		return h
	}
	for i := range counts {
		for _, c := range counts[i] {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			h[i] -= p * math.Log2(p)
		}
	}
	return h
}

// MaskValues lists the values set in m in ascending order.
func MaskValues(m ValueMask) []byte {
	out := make([]byte, 0, bits.OnesCount16(m))
	for v := byte(0); v < 16; v++ {
		if m&(1<<v) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// maskEnum enumerates the cartesian product of per-position value lists in
// odometer order (least significant position varies fastest).
type maskEnum struct {
	values [ipaddr.NybbleCount][]byte
	idx    [ipaddr.NybbleCount]int
	done   bool
	primed bool
}

func newMaskEnum(values [ipaddr.NybbleCount][]byte) *maskEnum {
	e := &maskEnum{values: values}
	for i := range e.values {
		if len(e.values[i]) == 0 {
			e.done = true
		}
	}
	return e
}

// next returns the next address, or false when exhausted.
func (e *maskEnum) next() (ipaddr.Addr, bool) {
	if e.done {
		return ipaddr.Addr{}, false
	}
	if !e.primed {
		e.primed = true
		return e.current(), true
	}
	// Odometer increment from position 31 down.
	for i := ipaddr.NybbleCount - 1; i >= 0; i-- {
		e.idx[i]++
		if e.idx[i] < len(e.values[i]) {
			return e.current(), true
		}
		e.idx[i] = 0
	}
	e.done = true
	return ipaddr.Addr{}, false
}

func (e *maskEnum) current() ipaddr.Addr {
	var a ipaddr.Addr
	for i := 0; i < ipaddr.NybbleCount; i++ {
		a = a.WithNybble(i, e.values[i][e.idx[i]])
	}
	return a
}

// LeafGen generates addresses for one pattern region: first the cartesian
// product of observed values, then progressive widening — adding one
// adjacent value at a time to the most promising positions, enumerating
// exactly the new combinations each widening unlocks. It never emits the
// same address twice.
type LeafGen struct {
	masks [ipaddr.NybbleCount]ValueMask // current allowed values
	jobs  []*maskEnum
	// widen state
	widenPos []int // positions in widening preference order
	nextW    int
}

// NewLeafGen builds a generator from per-position observed masks.
// widenOrder lists the positions allowed to widen, most preferred first;
// nil allows IID positions 31..16 that were variable, then fixed IID
// positions, a sensible default for tree leaves.
func NewLeafGen(masks [ipaddr.NybbleCount]ValueMask, widenOrder []int) *LeafGen {
	g := &LeafGen{masks: masks}
	var values [ipaddr.NybbleCount][]byte
	for i, m := range masks {
		values[i] = MaskValues(m)
	}
	g.jobs = append(g.jobs, newMaskEnum(values))
	if widenOrder == nil {
		// Variable IID positions first (least significant first), then
		// fixed IID positions.
		for i := ipaddr.NybbleCount - 1; i >= 16; i-- {
			if bits.OnesCount16(masks[i]) > 1 {
				widenOrder = append(widenOrder, i)
			}
		}
		for i := ipaddr.NybbleCount - 1; i >= 16; i-- {
			if bits.OnesCount16(masks[i]) == 1 {
				widenOrder = append(widenOrder, i)
			}
		}
	}
	g.widenPos = widenOrder
	return g
}

// Next returns the next fresh candidate, or false when the region cannot
// produce more (fully widened and enumerated).
func (g *LeafGen) Next() (ipaddr.Addr, bool) {
	for {
		for len(g.jobs) > 0 {
			job := g.jobs[0]
			if a, ok := job.next(); ok {
				return a, true
			}
			g.jobs = g.jobs[1:]
		}
		if !g.widen() {
			return ipaddr.Addr{}, false
		}
	}
}

// widen adds one new value to one position and queues the job enumerating
// the newly unlocked combinations. Returns false when nothing is left to
// widen.
func (g *LeafGen) widen() bool {
	for tries := 0; tries < len(g.widenPos)*16+1; tries++ {
		if len(g.widenPos) == 0 {
			return false
		}
		pos := g.widenPos[g.nextW%len(g.widenPos)]
		g.nextW++
		v, ok := nearestUnset(g.masks[pos])
		if !ok {
			continue
		}
		g.masks[pos] |= 1 << v
		var values [ipaddr.NybbleCount][]byte
		for i, m := range g.masks {
			if i == pos {
				values[i] = []byte{v}
			} else {
				values[i] = MaskValues(m)
			}
		}
		g.jobs = append(g.jobs, newMaskEnum(values))
		return true
	}
	return false
}

// nearestUnset returns the unset value closest to the set ones (pattern
// neighbourhoods first).
func nearestUnset(m ValueMask) (byte, bool) {
	if m == 0xffff {
		return 0, false
	}
	if m == 0 {
		return 0, true
	}
	for dist := 1; dist < 16; dist++ {
		for v := 0; v < 16; v++ {
			if m&(1<<v) == 0 {
				continue
			}
			if nv := v + dist; nv < 16 && m&(1<<nv) == 0 {
				return byte(nv), true
			}
			if nv := v - dist; nv >= 0 && m&(1<<nv) == 0 {
				return byte(nv), true
			}
		}
	}
	return 0, false
}

// MaskSize returns the number of combinations of a mask array (capped to
// avoid overflow; 2^63-1 max).
func MaskSize(masks [ipaddr.NybbleCount]ValueMask) float64 {
	s := 1.0
	for _, m := range masks {
		n := bits.OnesCount16(m)
		if n == 0 {
			return 0
		}
		s *= float64(n)
		if s > math.MaxFloat64/16 {
			return math.MaxFloat64
		}
	}
	return s
}
