package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
)

// raceSnapshot builds generation-distinguishable content: generation g
// contains exactly the addresses 2001:db8::0 .. ::g-1, all responsive.
// Any response mixing two generations is therefore detectable from the
// response alone: the reported generation fully determines membership.
func raceSnapshot(g int) *hitlist.Snapshot {
	snap := &hitlist.Snapshot{
		BuiltAt:    time.Unix(0, int64(g)),
		Input:      g,
		Responsive: ipaddr.NewSet(),
	}
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < g; i++ {
		snap.Responsive.Add(base.AddLo(uint64(i)))
	}
	return snap
}

// checkConsistent asserts one response is internally single-generation:
// address i must be found iff i < generation, and the header generation
// must match the body generation.
func checkConsistent(gen uint64, headerGen string, results []LookupResult, probes []int) error {
	if headerGen != strconv.FormatUint(gen, 10) {
		return fmt.Errorf("header generation %s != body generation %d", headerGen, gen)
	}
	for k, idx := range probes {
		want := uint64(idx) < gen
		if results[k].Found != want {
			return fmt.Errorf("generation %d: addr index %d found=%v, want %v",
				gen, idx, results[k].Found, want)
		}
	}
	return nil
}

// TestServeUnderSwap is the atomic-swap proof for the full HTTP path: eight
// readers hammer /v1/lookup and /v1/bulk while the writer publishes twenty
// generations. Run under -race (the CI serve job does) this checks both
// memory safety and response consistency — no torn or mixed-generation
// answers, ever.
func TestServeUnderSwap(t *testing.T) {
	st, err := hitlistdb.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(raceSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const generations = 20
	base := ipaddr.MustParse("2001:db8::")
	// Probe a spread of indices so both membership transitions (absent →
	// present as generations grow) are exercised.
	probes := []int{0, 1, generations / 2, generations - 1}
	var probeAddrs []string
	for _, i := range probes {
		probeAddrs = append(probeAddrs, base.AddLo(uint64(i)).String())
	}
	bulkBody, _ := json.Marshal(bulkRequest{Addrs: probeAddrs})

	done := make(chan struct{})
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		// Point-lookup readers: one address per request, so consistency is
		// checked via header-vs-body generation and the membership rule.
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/v1/lookup?addr=" + probeAddrs[idx%len(probeAddrs)])
				if err != nil {
					report(err)
					return
				}
				var got lookupResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				hdr := resp.Header.Get(generationHeader)
				resp.Body.Close()
				if err != nil {
					report(err)
					return
				}
				if err := checkConsistent(got.Generation, hdr,
					[]LookupResult{got.LookupResult}, probes[idx%len(probes):idx%len(probes)+1]); err != nil {
					report(err)
					return
				}
				idx++
			}
		}(r)
		// Bulk readers: several addresses per request — the strongest mixed-
		// generation detector, since all answers must come from one DB.
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/v1/bulk", "application/json", bytes.NewReader(bulkBody))
				if err != nil {
					report(err)
					return
				}
				var got bulkResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				hdr := resp.Header.Get(generationHeader)
				resp.Body.Close()
				if err != nil {
					report(err)
					return
				}
				if len(got.Results) != len(probes) {
					report(fmt.Errorf("bulk returned %d results", len(got.Results)))
					return
				}
				if err := checkConsistent(got.Generation, hdr, got.Results, probes); err != nil {
					report(err)
					return
				}
			}
		}()
	}

	for g := 2; g <= generations; g++ {
		if _, err := st.Publish(raceSnapshot(g)); err != nil {
			t.Fatal(err)
		}
	}
	// Let readers observe the final generation before stopping.
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the dust settles every query answers from the final generation.
	resp, err := http.Get(ts.URL + "/v1/lookup?addr=" + probeAddrs[len(probeAddrs)-1])
	if err != nil {
		t.Fatal(err)
	}
	var got lookupResponse
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Generation != generations || !got.Found {
		t.Fatalf("final state: %+v", got)
	}
}
