// Package serve exposes a hitlistdb store over a versioned HTTP+JSON API —
// the "hitlist as a service" daemon behind `seedscan serve`.
//
// Endpoints (all under /v1/):
//
//	GET  /v1/healthz            liveness + current generation
//	GET  /v1/lookup?addr=A      point lookup: responsive? which protocols?
//	POST /v1/bulk               JSON {"addrs": [...]} → per-address answers
//	GET  /v1/prefix-walk?prefix=P[&limit=N]  records inside P, in order
//	GET  /v1/snapshot           raw database image download
//
// Every handler captures the store's current *DB exactly once and answers
// the whole request from it, so a generation swap mid-request can never
// produce a mixed-generation response; the read path takes no locks at all
// (Store.Current is one atomic pointer load). Responses carry the serving
// generation in both the JSON body and an X-Seedscan-Generation header so
// clients can detect swaps across requests.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
)

// apiVersion prefixes every route; bump it only on incompatible response
// changes (additive fields are fine).
const apiVersion = "v1"

// generationHeader carries the serving generation on every response.
const generationHeader = "X-Seedscan-Generation"

// Option configures a Server.
type Option func(*settings)

type settings struct {
	maxBulk int
	maxWalk int
	tele    *telemetry.Registry
}

func defaultSettings() settings {
	return settings{maxBulk: 4096, maxWalk: 65536}
}

// WithMaxBulk caps how many addresses one /v1/bulk request may carry
// (default 4096); larger requests get 413.
func WithMaxBulk(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxBulk = n
		}
	}
}

// WithMaxWalk caps how many records one /v1/prefix-walk response may carry
// (default 65536); walks are truncated at the cap and marked as such.
func WithMaxWalk(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxWalk = n
		}
	}
}

// WithTelemetry wires per-endpoint serve.* counters and latency histograms.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *settings) { s.tele = reg }
}

// Server answers hitlist queries over HTTP from a hitlistdb.Store.
type Server struct {
	store *hitlistdb.Store
	set   settings
	mux   *http.ServeMux
}

// New builds a Server over store.
func New(store *hitlistdb.Store, opts ...Option) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	set := defaultSettings()
	for _, o := range opts {
		o(&set)
	}
	s := &Server{store: store, set: set, mux: http.NewServeMux()}
	s.route("lookup", s.handleLookup)
	s.route("bulk", s.handleBulk)
	s.route("prefix-walk", s.handleWalk)
	s.route("snapshot", s.handleSnapshot)
	s.route("healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers one endpoint wrapped with telemetry: a request counter,
// an error counter, and a latency histogram per endpoint name.
func (s *Server) route(name string, h func(http.ResponseWriter, *http.Request) int) {
	s.mux.HandleFunc("/"+apiVersion+"/"+name, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := h(w, r)
		s.set.tele.Counter("serve." + name + ".requests").Inc()
		if status >= 400 {
			s.set.tele.Counter("serve." + name + ".errors").Inc()
		}
		s.set.tele.Histogram("serve." + name + ".seconds").Observe(time.Since(start).Seconds())
	})
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON emits one JSON response and returns the status for telemetry.
func writeJSON(w http.ResponseWriter, status int, gen uint64, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(generationHeader, strconv.FormatUint(gen, 10))
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, gen uint64, format string, args ...any) int {
	return writeJSON(w, status, gen, errorBody{Error: fmt.Sprintf(format, args...)})
}

// current resolves the DB a request will be answered from. Each handler
// calls it exactly once — everything after is served from that immutable
// generation.
func (s *Server) current(w http.ResponseWriter) (*hitlistdb.DB, bool) {
	db := s.store.Current()
	if db == nil {
		writeError(w, http.StatusServiceUnavailable, 0, "no hitlist published yet")
		return nil, false
	}
	return db, true
}

// LookupResult is the per-address answer shared by /v1/lookup and /v1/bulk.
type LookupResult struct {
	Addr       string   `json:"addr"`
	Found      bool     `json:"found"`
	Responsive bool     `json:"responsive,omitempty"`
	Protocols  []string `json:"protocols,omitempty"`
	// Alias names the published aliased prefix covering the address, when
	// one does: the "don't scan this, it's one router" signal.
	Alias string `json:"alias,omitempty"`
}

// lookupOne answers one address against one generation.
func lookupOne(db *hitlistdb.DB, a ipaddr.Addr) LookupResult {
	res := LookupResult{Addr: a.String()}
	if rec, ok := db.Lookup(a); ok {
		res.Found = true
		res.Responsive = rec.Responsive
		for _, p := range rec.Protocols() {
			res.Protocols = append(res.Protocols, p.String())
		}
	}
	if p, ok := db.AliasContaining(a); ok {
		res.Alias = p.String()
	}
	return res
}

// lookupResponse wraps one point lookup.
type lookupResponse struct {
	Generation uint64 `json:"generation"`
	LookupResult
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, 0, "GET only")
	}
	db, ok := s.current(w)
	if !ok {
		return http.StatusServiceUnavailable
	}
	a, err := ipaddr.Parse(r.URL.Query().Get("addr"))
	if err != nil {
		return writeError(w, http.StatusBadRequest, db.Generation(), "bad addr: %v", err)
	}
	return writeJSON(w, http.StatusOK, db.Generation(), lookupResponse{
		Generation:   db.Generation(),
		LookupResult: lookupOne(db, a),
	})
}

// bulkRequest is the /v1/bulk input shape.
type bulkRequest struct {
	Addrs []string `json:"addrs"`
}

// bulkResponse answers every requested address from one generation.
type bulkResponse struct {
	Generation uint64         `json:"generation"`
	Results    []LookupResult `json:"results"`
}

func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, 0, "POST only")
	}
	db, ok := s.current(w)
	if !ok {
		return http.StatusServiceUnavailable
	}
	var req bulkRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22)).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, db.Generation(), "bad body: %v", err)
	}
	if len(req.Addrs) > s.set.maxBulk {
		return writeError(w, http.StatusRequestEntityTooLarge, db.Generation(),
			"%d addrs exceeds limit %d", len(req.Addrs), s.set.maxBulk)
	}
	resp := bulkResponse{Generation: db.Generation(), Results: make([]LookupResult, 0, len(req.Addrs))}
	for _, raw := range req.Addrs {
		a, err := ipaddr.Parse(raw)
		if err != nil {
			return writeError(w, http.StatusBadRequest, db.Generation(), "bad addr %q: %v", raw, err)
		}
		resp.Results = append(resp.Results, lookupOne(db, a))
	}
	return writeJSON(w, http.StatusOK, db.Generation(), resp)
}

// walkResponse lists the records inside one prefix, in ascending order.
type walkResponse struct {
	Generation uint64         `json:"generation"`
	Prefix     string         `json:"prefix"`
	Results    []LookupResult `json:"results"`
	// Truncated is set when the walk stopped at the server's record cap;
	// the client should narrow the prefix.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, 0, "GET only")
	}
	db, ok := s.current(w)
	if !ok {
		return http.StatusServiceUnavailable
	}
	p, err := ipaddr.ParsePrefix(r.URL.Query().Get("prefix"))
	if err != nil {
		return writeError(w, http.StatusBadRequest, db.Generation(), "bad prefix: %v", err)
	}
	limit := s.set.maxWalk
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return writeError(w, http.StatusBadRequest, db.Generation(), "bad limit %q", raw)
		}
		if n < limit {
			limit = n
		}
	}
	resp := walkResponse{Generation: db.Generation(), Prefix: p.String()}
	db.WalkPrefix(p, func(rec hitlistdb.Record) bool {
		if len(resp.Results) == limit {
			resp.Truncated = true
			return false
		}
		res := LookupResult{Addr: rec.Addr.String(), Found: true, Responsive: rec.Responsive}
		for _, pr := range rec.Protocols() {
			res.Protocols = append(res.Protocols, pr.String())
		}
		resp.Results = append(resp.Results, res)
		return true
	})
	return writeJSON(w, http.StatusOK, db.Generation(), resp)
}

// handleSnapshot streams the raw database image — the bulk-transfer path
// for mirroring a hitlist to another site.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, 0, "GET only")
	}
	db, ok := s.current(w)
	if !ok {
		return http.StatusServiceUnavailable
	}
	data := db.Bytes()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set(generationHeader, strconv.FormatUint(db.Generation(), 10))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

// healthzResponse reports liveness plus what the daemon is serving. Epoch
// and GenerationAge are the staleness view: which world epoch the served
// build scanned at, and how long ago it was built.
type healthzResponse struct {
	OK          bool      `json:"ok"`
	Generation  uint64    `json:"generation"`
	Epoch       int       `json:"epoch"`
	Addrs       int       `json:"addrs"`
	Prefixes    int       `json:"prefixes"`
	BuiltAt     time.Time `json:"built_at"`
	// GenerationAge is seconds since the served build was produced.
	GenerationAge float64  `json:"generation_age_seconds"`
	Protocols     []string `json:"protocols"`
	APIVersions   []string `json:"api_versions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	resp := healthzResponse{OK: true, APIVersions: []string{apiVersion}}
	for _, p := range proto.All {
		resp.Protocols = append(resp.Protocols, p.String())
	}
	gen := uint64(0)
	if db := s.store.Current(); db != nil {
		gen = db.Generation()
		resp.Generation = gen
		resp.Epoch = db.Epoch()
		resp.Addrs = db.AddrCount()
		resp.Prefixes = db.PrefixCount()
		resp.BuiltAt = db.BuiltAt()
		resp.GenerationAge = time.Since(db.BuiltAt()).Seconds()
	}
	return writeJSON(w, http.StatusOK, gen, resp)
}
