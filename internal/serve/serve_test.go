package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seedscan/internal/hitlist"
	"seedscan/internal/hitlistdb"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/telemetry"
	"seedscan/internal/world"
)

// startServer publishes one real hitlist build into a fresh store and
// returns an httptest server over it plus the snapshot it serves.
func startServer(t *testing.T, opts ...Option) (*httptest.Server, *hitlist.Snapshot, *hitlistdb.Store) {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.2})
	w.SetEpoch(world.ScanEpoch)
	sc := scanner.New(w.Link(), scanner.WithSecret(3))
	svc, err := hitlist.New(hitlist.WithProber(sc), hitlist.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceAddrMiner])
	if err != nil {
		t.Fatal(err)
	}
	snap.Epoch = world.ScanEpoch // as the longitudinal daemon stamps it
	st, err := hitlistdb.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(snap); err != nil {
		t.Fatal(err)
	}
	srv, err := New(st, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, snap, st
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestLookupEndpoint(t *testing.T) {
	ts, snap, _ := startServer(t)

	hit := snap.Responsive.Sorted()[0]
	var got lookupResponse
	resp := getJSON(t, ts.URL+"/v1/lookup?addr="+hit.String(), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(generationHeader) != "1" || got.Generation != 1 {
		t.Fatal("generation missing from response")
	}
	if !got.Found || !got.Responsive {
		t.Fatalf("responsive %v reported %+v", hit, got)
	}
	wantProtos := 0
	for _, p := range proto.All {
		if snap.PerProtocol[p].Contains(hit) {
			wantProtos++
		}
	}
	if len(got.Protocols) != wantProtos {
		t.Fatalf("protocols = %v, want %d entries", got.Protocols, wantProtos)
	}

	// Miss: well-formed answer, found=false.
	var miss lookupResponse
	getJSON(t, ts.URL+"/v1/lookup?addr=2001:db8:ffff::1", &miss)
	if miss.Found {
		t.Fatal("absent address found")
	}

	// An address inside a published aliased prefix reports the alias.
	if len(snap.AliasedPrefixes) > 0 {
		inside := snap.AliasedPrefixes[0].Addr().AddLo(123)
		var al lookupResponse
		getJSON(t, ts.URL+"/v1/lookup?addr="+inside.String(), &al)
		if al.Alias == "" {
			t.Fatalf("no alias reported for %v", inside)
		}
	}

	// Bad input → 400 with a JSON error body.
	var e errorBody
	resp = getJSON(t, ts.URL+"/v1/lookup?addr=not-an-ip", &e)
	if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("bad addr: status %d body %+v", resp.StatusCode, e)
	}
}

func TestBulkEndpoint(t *testing.T) {
	ts, snap, _ := startServer(t, WithMaxBulk(10))

	addrs := snap.Responsive.Sorted()
	req := bulkRequest{Addrs: []string{addrs[0].String(), addrs[1].String(), "2001:db8:ffff::1"}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/bulk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bulkResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(got.Results) != 3 {
		t.Fatalf("status %d, %d results", resp.StatusCode, len(got.Results))
	}
	if !got.Results[0].Found || !got.Results[1].Found || got.Results[2].Found {
		t.Fatalf("membership wrong: %+v", got.Results)
	}

	// Over the cap → 413.
	big := bulkRequest{Addrs: make([]string, 11)}
	for i := range big.Addrs {
		big.Addrs[i] = "::1"
	}
	body, _ = json.Marshal(big)
	resp, err = http.Post(ts.URL+"/v1/bulk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap status %d", resp.StatusCode)
	}

	// GET is rejected.
	resp, err = http.Get(ts.URL + "/v1/bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestPrefixWalkEndpoint(t *testing.T) {
	ts, snap, _ := startServer(t)

	first := snap.Responsive.Sorted()[0]
	p := ipaddr.PrefixFrom(first, 32)
	var got walkResponse
	resp := getJSON(t, ts.URL+"/v1/prefix-walk?prefix="+p.String(), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Results) == 0 || got.Truncated {
		t.Fatalf("walk returned %d results, truncated=%v", len(got.Results), got.Truncated)
	}
	for i := 1; i < len(got.Results); i++ {
		a := ipaddr.MustParse(got.Results[i-1].Addr)
		b := ipaddr.MustParse(got.Results[i].Addr)
		if !a.Less(b) {
			t.Fatal("walk results out of order")
		}
	}

	// A limit below the population truncates.
	var lim walkResponse
	getJSON(t, ts.URL+"/v1/prefix-walk?prefix="+p.String()+"&limit=1", &lim)
	if len(lim.Results) != 1 || !lim.Truncated {
		t.Fatalf("limit=1 returned %d results, truncated=%v", len(lim.Results), lim.Truncated)
	}

	var e errorBody
	resp = getJSON(t, ts.URL+"/v1/prefix-walk?prefix=bogus", &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad prefix status %d", resp.StatusCode)
	}
}

// TestSnapshotEndpoint downloads the raw image and re-opens it: the
// download path must be byte-faithful enough to mirror a hitlist.
func TestSnapshotEndpoint(t *testing.T) {
	ts, snap, st := startServer(t)

	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, st.Current().Bytes()) {
		t.Fatal("downloaded image differs from the served one")
	}
	db, err := hitlistdb.FromBytes(data)
	if err != nil {
		t.Fatalf("downloaded image does not open: %v", err)
	}
	if db.Snapshot().Responsive.Len() != snap.Responsive.Len() {
		t.Fatal("downloaded snapshot lost records")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts, snap, _ := startServer(t)
	var got healthzResponse
	resp := getJSON(t, ts.URL+"/v1/healthz", &got)
	if resp.StatusCode != http.StatusOK || !got.OK {
		t.Fatalf("healthz status %d, %+v", resp.StatusCode, got)
	}
	if got.Generation != 1 || got.Addrs == 0 {
		t.Fatalf("healthz payload %+v", got)
	}
	if got.Epoch != world.ScanEpoch {
		t.Fatalf("healthz epoch = %d, want %d", got.Epoch, world.ScanEpoch)
	}
	if got.GenerationAge < 0 || got.GenerationAge > 600 {
		t.Fatalf("healthz generation age = %v seconds", got.GenerationAge)
	}
	_ = snap
}

// TestEmptyStoreServes503 pins the cold-start behavior: a daemon pointed at
// an empty directory is alive (healthz OK) but answers queries with 503.
func TestEmptyStoreServes503(t *testing.T) {
	st, err := hitlistdb.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var h healthzResponse
	resp := getJSON(t, ts.URL+"/v1/healthz", &h)
	if resp.StatusCode != http.StatusOK || !h.OK || h.Generation != 0 {
		t.Fatalf("empty healthz: %d %+v", resp.StatusCode, h)
	}
	for _, path := range []string{"/v1/lookup?addr=::1", "/v1/prefix-walk?prefix=::/0", "/v1/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on empty store: status %d", path, resp.StatusCode)
		}
	}
}

func TestServeTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts, snap, _ := startServer(t, WithTelemetry(reg))

	var ok lookupResponse
	getJSON(t, ts.URL+"/v1/lookup?addr="+snap.Responsive.Sorted()[0].String(), &ok)
	var e errorBody
	getJSON(t, ts.URL+"/v1/lookup?addr=junk", &e)

	if got := reg.Counter("serve.lookup.requests").Load(); got != 2 {
		t.Fatalf("request counter = %d", got)
	}
	if got := reg.Counter("serve.lookup.errors").Load(); got != 1 {
		t.Fatalf("error counter = %d", got)
	}
	if reg.Histogram("serve.lookup.seconds").Stats().Count != 2 {
		t.Fatal("latency histogram not populated")
	}
}

func TestNilStoreRejected(t *testing.T) {
	if _, err := New(nil); err == nil || !strings.Contains(err.Error(), "nil store") {
		t.Fatalf("New(nil) = %v", err)
	}
}
