package scanner

import (
	"context"
	"sync"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
	"seedscan/internal/world"
)

// TestScanDoesNotMutateCallerSlice is the regression test for the in-place
// dedup/shuffle bug: Scan used to reorder shared seed/candidate lists
// between runs.
func TestScanDoesNotMutateCallerSlice(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(31)
	targets := samp.Hosts(200)
	// Plant duplicates so dedup has work to do.
	targets = append(targets, targets[0], targets[1])
	before := append([]ipaddr.Addr(nil), targets...)

	s := New(w.Link(), WithSecret(41))
	s.Scan(targets, proto.ICMP)

	if len(targets) != len(before) {
		t.Fatalf("caller slice resized: %d -> %d", len(before), len(targets))
	}
	for i := range before {
		if targets[i] != before[i] {
			t.Fatalf("caller slice mutated at %d: %v != %v", i, targets[i], before[i])
		}
	}
}

// TestWithRetriesZeroProbesOnce covers the configuration the old Config
// struct could not express: zero retries, one packet per silent target.
func TestWithRetriesZeroProbesOnce(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 50; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	s := New(w.Link(), WithSecret(5), WithRetries(0))
	res := s.Scan(targets, proto.ICMP)
	for _, r := range res {
		if r.Attempts != 1 {
			t.Fatalf("attempts = %d, want 1", r.Attempts)
		}
	}
	if got := s.Stats().PacketsSent.Load(); got != int64(len(targets)) {
		t.Fatalf("packets = %d, want %d", got, len(targets))
	}
}

// TestConfigAdapterKeepsDefaults pins the deprecated NewWithConfig
// behavior: zero values still mean §4.2 defaults.
func TestConfigAdapterKeepsDefaults(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 10; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	// A legacy single-packet link, so the adapter also covers the
	// wire.Promote lift NewWithConfig performs.
	s := NewWithConfig(packetWorldLink{w}, Config{Secret: 5})
	res := s.Scan(targets, proto.ICMP)
	for _, r := range res {
		if r.Attempts != 3 {
			t.Fatalf("attempts = %d, want 3 (2 retries)", r.Attempts)
		}
	}
}

// packetWorldLink answers through the world one packet at a time — the
// first-generation link shape, kept to exercise the wire.Promote lift.
type packetWorldLink struct{ w *world.World }

func (l packetWorldLink) Exchange(pkt []byte) [][]byte { return l.w.HandlePacket(pkt) }

// slowLink delays each exchange until released, so a scan can be caught
// mid-flight deterministically.
type slowLink struct {
	inner   wire.Link
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (l *slowLink) ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf) {
	l.once.Do(func() { close(l.started) })
	<-l.release
	l.inner.ExchangeBatchInto(pkts, rb)
}

func TestScanContextCancellationMidScan(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 500; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	link := &slowLink{inner: w.Link(), started: make(chan struct{}), release: make(chan struct{})}
	s := New(link, WithSecret(5), WithWorkers(2))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res []Result
	var err error
	go func() {
		res, err = s.ScanContext(ctx, targets, proto.ICMP)
		close(done)
	}()
	<-link.started
	cancel()
	close(link.release)
	<-done

	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) >= len(targets) {
		t.Fatalf("scan did not stop early: %d results of %d targets", len(res), len(targets))
	}
	// Returned results must be fully probed ones.
	for _, r := range res {
		if r.Attempts == 0 {
			t.Fatalf("unprobed result returned: %+v", r)
		}
	}
}

func TestScanContextPreCancelled(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(w.Link(), WithSecret(5))
	res, err := s.ScanContext(ctx, []ipaddr.Addr{ipaddr.MustParse("3fff::1")}, proto.ICMP)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("results = %d, want 0", len(res))
	}
	if s.Stats().PacketsSent.Load() != 0 {
		t.Fatal("pre-cancelled scan sent packets")
	}
}

func TestScannerTelemetryCounters(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(23)
	var targets []ipaddr.Addr
	for _, a := range samp.ActiveHosts(40, proto.ICMP) {
		r, _ := w.RegionOf(a)
		if r.RespRate == 1 {
			targets = append(targets, a)
		}
	}
	reg := telemetry.NewRegistry()
	s := New(w.Link(), WithSecret(5), WithTelemetry(reg))
	s.Scan(targets, proto.ICMP)

	snap := reg.Snapshot()
	if got := snap.Counters["scanner.probes_sent.ICMP"]; got != s.Stats().PacketsSent.Load() {
		t.Fatalf("probes_sent = %d, stats = %d", got, s.Stats().PacketsSent.Load())
	}
	if got := snap.Counters["scanner.hits.ICMP"]; got != int64(len(targets)) {
		t.Fatalf("hits = %d, want %d", got, len(targets))
	}
	h := snap.Histograms["scanner.scan.virtual_seconds"]
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("virtual_seconds = %+v", h)
	}
	if snap.Histograms["scanner.scan.wall_seconds"].Count != 1 {
		t.Fatal("wall_seconds not recorded")
	}
	if snap.Gauges["scanner.ratelimit.virtual_elapsed_seconds"] != s.VirtualElapsed() {
		t.Fatal("rate-limit gauge mismatch")
	}
}
