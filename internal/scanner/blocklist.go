package scanner

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"seedscan/internal/ipaddr"
)

// Blocklist support. The paper's ethics appendix stresses that scanners
// must honour opt-out requests — and notes that 6Scan's scanner shipped
// without blocklisting, which the authors had to add. Here blocklists are
// first-class: a prefix trie consulted before any probe leaves the
// scanner.

// LoadBlocklist parses a blocklist in ZMap's conf format: one IPv6 prefix
// or address per line, '#' comments and blank lines ignored. Bare
// addresses block exactly that /128.
func LoadBlocklist(r io.Reader) (*ipaddr.Trie, error) {
	t := ipaddr.NewTrie()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.ContainsRune(line, '/') {
			p, err := ipaddr.ParsePrefix(line)
			if err != nil {
				return nil, fmt.Errorf("scanner: blocklist line %d: %w", lineNo, err)
			}
			t.Insert(p, true)
			continue
		}
		a, err := ipaddr.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("scanner: blocklist line %d: %w", lineNo, err)
		}
		t.Insert(ipaddr.PrefixFrom(a, 128), true)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scanner: blocklist: %w", err)
	}
	return t, nil
}

// LoadBlocklistFile loads a blocklist from a file path.
func LoadBlocklistFile(path string) (*ipaddr.Trie, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scanner: blocklist %s: %w", path, err)
	}
	defer f.Close()
	return LoadBlocklist(f)
}
