package scanner

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/world"
)

func testWorld(t testing.TB) *world.World {
	t.Helper()
	return world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
}

func TestScanFindsGroundTruthActives(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	s := New(w.Link(), WithSecret(99))

	for _, p := range proto.All {
		samp := w.NewSampler(uint64(p) + 500)
		active := samp.ActiveHosts(100, p)
		if len(active) < 50 {
			t.Fatalf("%v: only %d ground-truth actives", p, len(active))
		}
		// Full-rate targets only: rate-limited PoPs legitimately drop.
		var targets []ipaddr.Addr
		for _, a := range active {
			r, _ := w.RegionOf(a)
			if r.RespRate == 1 {
				targets = append(targets, a)
			}
		}
		hits := s.ScanActive(targets, p)
		if len(hits) != len(targets) {
			t.Errorf("%v: %d/%d actives confirmed", p, len(hits), len(targets))
		}
	}
}

func TestScanRejectsInactives(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	s := New(w.Link(), WithSecret(99))

	// Unrouted space must never produce hits.
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 200; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	for _, p := range proto.All {
		res := s.Scan(targets, p)
		for _, r := range res {
			if r.Active() {
				t.Fatalf("%v: unrouted %v reported active", p, r.Addr)
			}
			if r.Status != StatusSilent {
				t.Fatalf("%v: unrouted %v status %v", p, r.Addr, r.Status)
			}
		}
	}
}

func TestRSTAndUnreachableAreNotHits(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	s := New(w.Link(), WithSecret(7))

	// Probe existing hosts on TCP80; those not listening must come back
	// RST or silent, never active.
	samp := w.NewSampler(77)
	hosts := samp.Hosts(2000)
	var closed []ipaddr.Addr
	for _, a := range hosts {
		if !w.ActiveOn(a, proto.TCP80, world.CollectEpoch) {
			closed = append(closed, a)
		}
	}
	if len(closed) < 100 {
		t.Fatalf("only %d closed hosts", len(closed))
	}
	sawRST := false
	for _, r := range s.Scan(closed, proto.TCP80) {
		if r.Active() {
			t.Fatalf("closed host %v counted as hit", r.Addr)
		}
		if r.Status == StatusRST {
			sawRST = true
		}
	}
	if !sawRST {
		t.Fatal("no RSTs observed across closed hosts")
	}
	if s.Stats().RSTs.Load() == 0 {
		t.Fatal("RST counter not incremented")
	}
}

func TestUnreachableClassified(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	s := New(w.Link(), WithSecret(7))

	// Dead in-template addresses inside regions that send unreachables.
	var targets []ipaddr.Addr
	for _, r := range w.Regions() {
		if r.Aliased || r.SendsUnreach < 0.3 {
			continue
		}
		for _, a := range r.Template.Enumerate(500) {
			if !w.ExistsAt(a, world.CollectEpoch) {
				targets = append(targets, a)
			}
			if len(targets) >= 300 {
				break
			}
		}
		if len(targets) >= 300 {
			break
		}
	}
	res := s.Scan(targets, proto.ICMP)
	un := 0
	for _, r := range res {
		if r.Active() {
			t.Fatalf("dead %v reported active", r.Addr)
		}
		if r.Status == StatusUnreachable {
			un++
		}
	}
	if un == 0 {
		t.Fatal("no unreachables classified")
	}
}

func TestBlocklistHonoured(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(11)
	active := samp.ActiveHosts(50, proto.ICMP)
	if len(active) == 0 {
		t.Fatal("no actives")
	}

	bl := ipaddr.NewTrie()
	bl.Insert(ipaddr.PrefixFrom(active[0], 128), nil)
	s := New(w.Link(), WithSecret(3), WithBlocklist(bl))
	res := s.Scan(active[:1], proto.ICMP)
	if res[0].Status != StatusBlocked {
		t.Fatalf("status = %v, want blocked", res[0].Status)
	}
	if s.Stats().PacketsSent.Load() != 0 {
		t.Fatal("blocked target was probed")
	}
}

func TestRetriesRecoverFromLoss(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0.35})
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(13)
	var targets []ipaddr.Addr
	for _, a := range samp.ActiveHosts(300, proto.ICMP) {
		r, _ := w.RegionOf(a)
		if r.RespRate == 1 {
			targets = append(targets, a)
		}
	}
	// With 35% loss and 3 attempts, expected miss rate is 4.3%; with only
	// one attempt it is 35%.
	s3 := New(w.Link(), WithSecret(5), WithRetries(2))
	hits3 := len(s3.ScanActive(targets, proto.ICMP))
	// With 35% loss and 3 attempts the expected miss rate is ~4.3%.
	if got, want := float64(hits3)/float64(len(targets)), 0.90; got < want {
		t.Fatalf("hit rate with retries = %.3f, want >= %.2f", got, want)
	}
}

func TestScanDedupsTargets(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(17)
	a := samp.ActiveHosts(1, proto.ICMP)
	if len(a) != 1 {
		t.Fatal("no active host")
	}
	s := New(w.Link(), WithSecret(5))
	res := s.Scan([]ipaddr.Addr{a[0], a[0], a[0]}, proto.ICMP)
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1 after dedup", len(res))
	}
}

func TestCookieValidationRejectsForgery(t *testing.T) {
	w := testWorld(t)
	s := New(w.Link(), WithSecret(21))
	dst := ipaddr.MustParse("2001:db8::1")
	c := s.cookie(dst, proto.ICMP)

	// A reply with the wrong cookie payload must not classify as active.
	var forged [8]byte
	putUint64(forged[:], c^1)
	reply := buildForgedEchoReply(s.set.source, dst, uint16(c>>48), 0, forged[:])
	if st, ok := s.classify(reply, dst, proto.ICMP, c, 0); ok && st == StatusActive {
		t.Fatal("forged cookie accepted")
	}
	// The genuine cookie is accepted.
	var good [8]byte
	putUint64(good[:], c)
	reply = buildForgedEchoReply(s.set.source, dst, uint16(c>>48), 0, good[:])
	if st, ok := s.classify(reply, dst, proto.ICMP, c, 0); !ok || st != StatusActive {
		t.Fatal("genuine cookie rejected")
	}
}

func TestVirtualRateAccounting(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	s := New(w.Link(), WithSecret(5), WithRatePPS(1000))
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 100; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	s.Scan(targets, proto.ICMP)
	// 100 silent targets × 3 attempts = 300 packets at 1000 pps = 0.3 s.
	if got := s.VirtualElapsed(); got < 0.29 || got > 0.31 {
		t.Fatalf("virtual elapsed = %v, want ~0.3", got)
	}
}

func TestRateLimiterMonotonic(t *testing.T) {
	rl := NewRateLimiter(100)
	last := -1.0
	for i := 0; i < 50; i++ {
		ts := rl.Take()
		if ts <= last {
			t.Fatal("timestamps not increasing")
		}
		last = ts
	}
	if got := rl.VirtualElapsed(); got < 0.49 || got > 0.51 {
		t.Fatalf("elapsed = %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	w := testWorld(t)
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(23)
	var targets []ipaddr.Addr
	for _, a := range samp.ActiveHosts(50, proto.ICMP) {
		r, _ := w.RegionOf(a)
		if r.RespRate == 1 {
			targets = append(targets, a)
		}
	}
	s := New(w.Link(), WithSecret(5))
	s.Scan(targets, proto.ICMP)
	if got := s.Stats().Hits.Load(); got != int64(len(targets)) {
		t.Fatalf("hits = %d, want %d", got, len(targets))
	}
	if s.Stats().PacketsSent.Load() < int64(len(targets)) {
		t.Fatal("sent counter too low")
	}
}

// buildForgedEchoReply lets the test synthesize replies without the world.
func buildForgedEchoReply(scanAddr, from ipaddr.Addr, id, seq uint16, payload []byte) []byte {
	return probe.BuildEchoReply(from, scanAddr, id, seq, payload)
}
