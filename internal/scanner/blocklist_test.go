package scanner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seedscan/internal/ipaddr"
)

func TestLoadBlocklist(t *testing.T) {
	in := `
# opt-out ranges
2001:db8::/32      # research prefix
2600:9000::1       # single host opt-out

fe80::/10
`
	bl, err := LoadBlocklist(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want bool
	}{
		{"2001:db8:1234::1", true},
		{"2600:9000::1", true},
		{"2600:9000::2", false},
		{"fe80::abcd", true},
		{"2607::1", false},
	}
	for _, c := range cases {
		if got := bl.Contains(ipaddr.MustParse(c.addr)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestLoadBlocklistErrors(t *testing.T) {
	for _, in := range []string{"not-an-address\n", "2001:db8::/200\n", "1.2.3.0/24\n"} {
		if _, err := LoadBlocklist(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestLoadBlocklistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blocklist.conf")
	if err := os.WriteFile(path, []byte("2001:db8::/32\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBlocklistFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bl.Contains(ipaddr.MustParse("2001:db8::5")) {
		t.Fatal("loaded blocklist not effective")
	}
	if _, err := LoadBlocklistFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBlocklistIntegratesWithScan(t *testing.T) {
	w := testWorld(t)
	bl, err := LoadBlocklist(strings.NewReader("2000::/3\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(w.Link(), WithSecret(9), WithBlocklist(bl))
	samp := w.NewSampler(99)
	targets := samp.Hosts(50)
	res := s.Scan(targets, 0)
	for _, r := range res {
		if r.Status != StatusBlocked {
			t.Fatalf("%v not blocked", r.Addr)
		}
	}
	if s.Stats().PacketsSent.Load() != 0 {
		t.Fatal("packets escaped the blocklist")
	}
}
