package scanner

import (
	"seedscan/internal/ipaddr"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
)

// Option configures a Scanner at construction time. The options replace
// the old zero-value-means-default Config convention: every setting is
// explicit, so WithRetries(0) genuinely means "probe once, no retry" —
// a configuration the Config struct could not express.
type Option func(*settings)

// settings is the resolved configuration an option set produces.
type settings struct {
	source    ipaddr.Addr
	retries   int
	workers   int
	ratePPS   int
	chunk     int
	blocklist *ipaddr.Trie
	secret    uint64
	shuffle   bool
	tele      *telemetry.Registry
}

// defaultChunk is the number of targets a worker claims (and, on a
// BatchLink, probes per exchange) per loop iteration. Large enough to
// amortize claim/rate-limit/counter updates, small enough that
// cancellation still lands promptly and tail chunks stay balanced.
const defaultChunk = 64

// defaultSettings mirrors §4.2 of the paper: 2 retries (3 packets total),
// 8 workers, the 10k pps ethical rate cap, shuffled scan order.
func defaultSettings() settings {
	return settings{
		source:  ipaddr.MustParse("2001:db8:5ca0::1"),
		retries: 2,
		workers: 8,
		ratePPS: 10000,
		chunk:   defaultChunk,
		shuffle: true,
	}
}

// WithSourceAddr sets the scanner's own address, stamped on probes.
func WithSourceAddr(a ipaddr.Addr) Option {
	return func(s *settings) { s.source = a }
}

// WithRetries sets the number of additional attempts after the first probe
// goes unanswered. Zero means probe exactly once. Negative values clamp
// to zero.
func WithRetries(n int) Option {
	return func(s *settings) {
		if n < 0 {
			n = 0
		}
		s.retries = n
	}
}

// WithWorkers sets the number of concurrent probe workers (minimum 1).
func WithWorkers(n int) Option {
	return func(s *settings) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithRatePPS caps the aggregate probe rate on the virtual clock
// (minimum 1 pps).
func WithRatePPS(pps int) Option {
	return func(s *settings) {
		if pps < 1 {
			pps = 1
		}
		s.ratePPS = pps
	}
}

// WithProbeChunk sets how many targets a worker claims per loop iteration
// — the batch size handed to the wire per exchange (minimum 1). Scan
// results are identical for any chunk size; only dispatch amortization
// changes.
func WithProbeChunk(n int) Option {
	return func(s *settings) {
		if n < 1 {
			n = 1
		}
		s.chunk = n
	}
}

// WithBlocklist installs prefixes that must never be probed.
func WithBlocklist(t *ipaddr.Trie) Option {
	return func(s *settings) { s.blocklist = t }
}

// WithSecret keys the validation cookies and the scan-order shuffle.
func WithSecret(secret uint64) Option {
	return func(s *settings) { s.secret = secret }
}

// WithoutShuffle disables the ethical scan-order randomization — useful
// for deterministic unit tests.
func WithoutShuffle() Option {
	return func(s *settings) { s.shuffle = false }
}

// WithTelemetry wires a metrics registry into the scanner: per-protocol
// probe/retry/hit counters, cookie-failure counts, and rate-limiter
// accounting. A nil registry is accepted and leaves telemetry off.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *settings) { s.tele = reg }
}

// Config tunes a Scanner. Zero values get sensible defaults from
// NewWithConfig.
//
// Deprecated: Config cannot represent Retries: 0 (probe once) because zero
// means "default". Use New with functional options (WithRetries,
// WithWorkers, ...) instead; Config remains only as an adapter for old
// call sites.
type Config struct {
	// SourceAddr is the scanner's own address, stamped on probes.
	SourceAddr ipaddr.Addr
	// Retries is the number of additional attempts after the first probe
	// goes unanswered (default 2, i.e. 3 packets total, matching §4.2).
	Retries int
	// Workers is the number of concurrent probe workers (default 8).
	Workers int
	// RatePPS caps the aggregate probe rate on a virtual clock (default
	// 10_000, the paper's ethical rate limit).
	RatePPS int
	// Blocklist holds prefixes that must never be probed (opt-out ranges).
	Blocklist *ipaddr.Trie
	// Secret keys the validation cookies and the scan-order shuffle.
	Secret uint64
	// NoShuffle disables the ethical scan-order randomization.
	NoShuffle bool
}

// Options converts the legacy Config to the equivalent option list,
// preserving its zero-value-means-default semantics.
func (c Config) Options() []Option {
	var opts []Option
	if !c.SourceAddr.IsZero() {
		opts = append(opts, WithSourceAddr(c.SourceAddr))
	}
	if c.Retries != 0 {
		opts = append(opts, WithRetries(c.Retries))
	}
	if c.Workers != 0 {
		opts = append(opts, WithWorkers(c.Workers))
	}
	if c.RatePPS != 0 {
		opts = append(opts, WithRatePPS(c.RatePPS))
	}
	if c.Blocklist != nil {
		opts = append(opts, WithBlocklist(c.Blocklist))
	}
	opts = append(opts, WithSecret(c.Secret))
	if c.NoShuffle {
		opts = append(opts, WithoutShuffle())
	}
	return opts
}

// NewWithConfig builds a Scanner from the legacy Config struct over a
// legacy single-packet link, lifted through wire.Promote.
//
// Deprecated: use New with functional options over a wire.Link.
func NewWithConfig(link Link, cfg Config) *Scanner {
	return New(wire.Promote(link), cfg.Options()...)
}
