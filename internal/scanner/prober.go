package scanner

import (
	"context"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// Prober is the shared scanning surface the rest of the stack probes
// through — one definition instead of the four structurally identical
// copies that tga, hitlist, alias, and longitudinal used to carry (those
// packages keep aliases for compatibility). *Scanner implements it, as
// does a cluster pool; tests substitute oracles.
//
// Scan returns one classified Result per unique target; ScanActive is the
// hit-addresses-only convenience most consumers want.
type Prober interface {
	Scan(targets []ipaddr.Addr, p proto.Protocol) []Result
	ScanActive(targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr
}

// ContextProber is the cancellable variant of Prober. Consumers that hold
// a Prober type-assert for it and prefer the context-aware calls when
// available, falling back to the blocking ones otherwise.
type ContextProber interface {
	ScanContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]Result, error)
	ScanActiveContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]ipaddr.Addr, error)
}
