package scanner

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/world"
)

// quietLink answers nothing; every target stays silent.
type quietLink struct{}

func (quietLink) ExchangeBatchInto(pkts [][]byte, rb *probe.ReplyBuf) { rb.Reset(len(pkts)) }

// addrRange returns n consecutive addresses in unrouted space.
func addrRange(n int) []ipaddr.Addr {
	out := make([]ipaddr.Addr, n)
	base := ipaddr.MustParse("2001:db8:57a7::")
	for i := range out {
		out[i] = base.AddLo(uint64(i))
	}
	return out
}

// TestStatsMergeEqualsWholeRun splits one target list into shards scanned
// by independent scanners and checks that summing the per-shard snapshots
// with Stats.Add reproduces the whole-run snapshot exactly — the property
// the cluster merger depends on. Per-target outcomes are pure functions of
// (target, secret, world), so the partitioning must not matter.
func TestStatsMergeEqualsWholeRun(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0.05})
	w.SetEpoch(world.ScanEpoch)
	samp := w.NewSampler(1234)
	targets := samp.ActiveHosts(300, proto.ICMP)
	targets = append(targets, addrRange(200)...)

	for _, p := range []proto.Protocol{proto.ICMP, proto.TCP443} {
		whole := New(w.Link(), WithSecret(7))
		whole.Scan(targets, p)
		want := whole.Stats().Values()

		merged := &Stats{}
		const shards = 4
		for i := 0; i < shards; i++ {
			part := New(w.Link(), WithSecret(7))
			part.Scan(targets[i*len(targets)/shards:(i+1)*len(targets)/shards], p)
			merged.Add(part.Stats())
		}
		if got := merged.Values(); got != want {
			t.Errorf("%v: merged shard stats %v != whole-run stats %v", p, got, want)
		}
	}
}

// TestStatsSubIsSnapshotDelta checks that Sub turns two snapshots of one
// scanner into the contribution of the work between them.
func TestStatsSubIsSnapshotDelta(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.ScanEpoch)
	s := New(w.Link(), WithSecret(7))
	targets := addrRange(128)

	s.Scan(targets[:64], proto.ICMP)
	before := s.Stats()
	s.Scan(targets[64:], proto.ICMP)
	after := s.Stats()
	after.Sub(before)

	fresh := New(w.Link(), WithSecret(7))
	fresh.Scan(targets[64:], proto.ICMP)
	if got, want := after.Values(), fresh.Stats().Values(); got != want {
		t.Errorf("snapshot delta %v != fresh-run stats %v", got, want)
	}
}

// TestPlanOrderMatchesScanOrder pins PlanOrder to the order ScanContext
// actually probes and returns results in.
func TestPlanOrderMatchesScanOrder(t *testing.T) {
	targets := addrRange(500)
	// Duplicate some entries: PlanOrder must dedup exactly like Scan.
	targets = append(targets, targets[:50]...)

	s := New(quietLink{}, WithSecret(99))
	res := s.Scan(targets, proto.TCP80)
	plan := PlanOrder(99, true, targets, proto.TCP80)
	if len(res) != len(plan) {
		t.Fatalf("plan has %d targets, scan returned %d results", len(plan), len(res))
	}
	for i := range plan {
		if res[i].Addr != plan[i] {
			t.Fatalf("order diverges at %d: plan %v, scan %v", i, plan[i], res[i].Addr)
		}
	}
}
