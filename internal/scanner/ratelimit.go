package scanner

import "sync/atomic"

// RateLimiter implements the paper's ethical probe-rate cap (10k pps) on a
// virtual clock: instead of sleeping, it advances simulated time by one
// inter-packet gap per Take. Experiments therefore run at full speed while
// VirtualElapsed reports how long the scan would take on real hardware —
// the figure EXPERIMENTS.md quotes when comparing against the paper's
// two-month scanning window.
//
// The clock is a single atomic packet counter multiplied by the fixed gap,
// so Take and TakeN are lock-free: eight workers taking concurrently never
// serialize on a mutex, they only contend on one cache line for the
// duration of an atomic add.
type RateLimiter struct {
	gap float64      // seconds per packet
	n   atomic.Int64 // packets accounted so far
}

// NewRateLimiter caps at pps packets per second.
func NewRateLimiter(pps int) *RateLimiter {
	if pps <= 0 {
		pps = 1
	}
	return &RateLimiter{gap: 1 / float64(pps)}
}

// Take accounts for one packet and returns the virtual send time in
// seconds since the limiter was created.
func (r *RateLimiter) Take() float64 {
	return float64(r.n.Add(1)-1) * r.gap
}

// TakeN accounts for n packets at once — the batched hot path's amortized
// Take — and returns the virtual send time of the first of them.
func (r *RateLimiter) TakeN(n int) float64 {
	return float64(r.n.Add(int64(n))-int64(n)) * r.gap
}

// Gap returns the inter-packet gap in seconds (1/pps).
func (r *RateLimiter) Gap() float64 { return r.gap }

// Packets returns how many packets have been accounted so far.
func (r *RateLimiter) Packets() int64 { return r.n.Load() }

// VirtualElapsed returns the total virtual seconds consumed so far.
func (r *RateLimiter) VirtualElapsed() float64 {
	return float64(r.n.Load()) * r.gap
}
