package scanner

import "sync"

// RateLimiter implements the paper's ethical probe-rate cap (10k pps) on a
// virtual clock: instead of sleeping, it advances simulated time by one
// inter-packet gap per Take. Experiments therefore run at full speed while
// VirtualElapsed reports how long the scan would take on real hardware —
// the figure EXPERIMENTS.md quotes when comparing against the paper's
// two-month scanning window.
type RateLimiter struct {
	mu      sync.Mutex
	gap     float64 // seconds per packet
	elapsed float64 // virtual seconds consumed
}

// NewRateLimiter caps at pps packets per second.
func NewRateLimiter(pps int) *RateLimiter {
	if pps <= 0 {
		pps = 1
	}
	return &RateLimiter{gap: 1 / float64(pps)}
}

// Take accounts for one packet and returns the virtual send time in
// seconds since the limiter was created.
func (r *RateLimiter) Take() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.elapsed
	r.elapsed += r.gap
	return t
}

// VirtualElapsed returns the total virtual seconds consumed so far.
func (r *RateLimiter) VirtualElapsed() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed
}
