package scanner

import (
	"context"
	"sync"
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
	"seedscan/internal/world"
)

// exchangeOnly answers through the world one packet at a time — the
// first-generation link shape, so tests can pin the wire.Promote lift of
// a per-packet link against the canonical arena-batched path.
type exchangeOnly struct{ w *world.World }

func (e exchangeOnly) Exchange(pkt []byte) [][]byte { return e.w.HandlePacket(pkt) }

// statsEqual compares two merged snapshots field by field.
func statsEqual(t *testing.T, got, want *Stats) {
	t.Helper()
	checks := []struct {
		name      string
		got, want int64
	}{
		{"PacketsSent", got.PacketsSent.Load(), want.PacketsSent.Load()},
		{"PacketsRecv", got.PacketsRecv.Load(), want.PacketsRecv.Load()},
		{"Hits", got.Hits.Load(), want.Hits.Load()},
		{"RSTs", got.RSTs.Load(), want.RSTs.Load()},
		{"Unreachables", got.Unreachables.Load(), want.Unreachables.Load()},
		{"Blocked", got.Blocked.Load(), want.Blocked.Load()},
		{"InvalidCookie", got.InvalidCookie.Load(), want.InvalidCookie.Load()},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("stats %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestBatchedMatchesUnbatched pins the semantics-preserving claim behind
// wire.Promote: scanning through a promoted per-packet legacy link must
// produce results and counters byte-identical to the canonical
// arena-batched exchange, for every protocol.
func TestBatchedMatchesUnbatched(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0.1})
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(19)
	targets := samp.Hosts(700)

	for _, p := range proto.All {
		batched := New(w.Link(), WithSecret(33))
		unbatched := New(wire.Promote(exchangeOnly{w}), WithSecret(33))
		rb := batched.Scan(targets, p)
		ru := unbatched.Scan(targets, p)
		if len(rb) != len(ru) {
			t.Fatalf("%v: %d vs %d results", p, len(rb), len(ru))
		}
		for i := range rb {
			if rb[i] != ru[i] {
				t.Fatalf("%v: result %d differs: batched %+v, unbatched %+v", p, i, rb[i], ru[i])
			}
		}
		statsEqual(t, batched.Stats(), unbatched.Stats())
		if got, want := batched.VirtualElapsed(), unbatched.VirtualElapsed(); got != want {
			t.Fatalf("%v: virtual elapsed %v vs %v", p, got, want)
		}
	}
}

// TestChunkSizeDoesNotChangeResults sweeps chunk sizes around the target
// count so tail chunks, chunk==1, and chunk>len(targets) are all covered.
func TestChunkSizeDoesNotChangeResults(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(29)
	targets := samp.Hosts(130)

	ref := New(w.Link(), WithSecret(8), WithProbeChunk(1)).Scan(targets, proto.ICMP)
	for _, chunk := range []int{2, 7, 64, 129, 130, 1000} {
		got := New(w.Link(), WithSecret(8), WithProbeChunk(chunk)).Scan(targets, proto.ICMP)
		if len(got) != len(ref) {
			t.Fatalf("chunk %d: %d results, want %d", chunk, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("chunk %d: result %d differs", chunk, i)
			}
		}
	}
}

// TestConcurrentScansSharedScanner runs several ScanContext calls on one
// Scanner under -race: each scan's results must match a sequential
// reference, and the sharded stats must merge to the sum of all scans.
func TestConcurrentScansSharedScanner(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	samp := w.NewSampler(37)
	hosts := samp.Hosts(800)

	const scans = 4
	sets := make([][]ipaddr.Addr, scans)
	for i := range sets {
		sets[i] = hosts[i*200 : (i+1)*200]
	}

	// Sequential reference on a fresh scanner per set (classification is a
	// pure function of target, cookie, and link, so results must agree).
	refs := make([][]Result, scans)
	var wantSent, wantHits int64
	for i, set := range sets {
		ref := New(w.Link(), WithSecret(13))
		refs[i] = ref.Scan(set, proto.ICMP)
		wantSent += ref.Stats().PacketsSent.Load()
		wantHits += ref.Stats().Hits.Load()
	}

	shared := New(w.Link(), WithSecret(13))
	var wg sync.WaitGroup
	got := make([][]Result, scans)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = shared.ScanContext(context.Background(), sets[i], proto.ICMP)
		}(i)
	}
	wg.Wait()

	for i := range refs {
		if len(got[i]) != len(refs[i]) {
			t.Fatalf("scan %d: %d results, want %d", i, len(got[i]), len(refs[i]))
		}
		for j := range refs[i] {
			if got[i][j] != refs[i][j] {
				t.Fatalf("scan %d: result %d differs under concurrency", i, j)
			}
		}
	}
	if got := shared.Stats().PacketsSent.Load(); got != wantSent {
		t.Errorf("merged PacketsSent = %d, want %d", got, wantSent)
	}
	if got := shared.Stats().Hits.Load(); got != wantHits {
		t.Errorf("merged Hits = %d, want %d", got, wantHits)
	}
}

// batchSlowLink gates the first ExchangeBatch so a batched scan can be
// cancelled deterministically mid-flight. It keeps the second-generation
// BatchLink shape, so the cancellation test also rides through the
// wire.Promote batch adapter.
type batchSlowLink struct {
	w       *world.World
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (l *batchSlowLink) Exchange(pkt []byte) [][]byte { return l.w.HandlePacket(pkt) }

func (l *batchSlowLink) ExchangeBatch(pkts [][]byte) [][][]byte {
	l.once.Do(func() { close(l.started) })
	<-l.release
	replies := make([][][]byte, len(pkts))
	for i, pkt := range pkts {
		replies[i] = l.w.HandlePacket(pkt)
	}
	return replies
}

// TestBatchedCancelReturnsProbedPrefix pins the partial-results invariant
// for the chunked claim loop: on cancellation the returned slice is
// exactly the fully-probed claimed prefix, in scan order.
func TestBatchedCancelReturnsProbedPrefix(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	var targets []ipaddr.Addr
	base := ipaddr.MustParse("3fff::")
	for i := 0; i < 2000; i++ {
		targets = append(targets, base.AddLo(uint64(i)))
	}
	link := &batchSlowLink{w: w, started: make(chan struct{}), release: make(chan struct{})}
	// WithoutShuffle so scan order == deduped input order and the prefix
	// can be checked against the caller's slice.
	s := New(wire.Promote(link), WithSecret(5), WithWorkers(2), WithoutShuffle())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res []Result
	var err error
	go func() {
		res, err = s.ScanContext(ctx, targets, proto.ICMP)
		close(done)
	}()
	<-link.started
	cancel()
	close(link.release)
	<-done

	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) == 0 || len(res) >= len(targets) {
		t.Fatalf("probed prefix = %d of %d, want partial", len(res), len(targets))
	}
	for i, r := range res {
		if r.Addr != targets[i] {
			t.Fatalf("result %d out of scan order: %v != %v", i, r.Addr, targets[i])
		}
		if r.Attempts == 0 && r.Status != StatusBlocked {
			t.Fatalf("unprobed result returned at %d: %+v", i, r)
		}
	}
}

// TestVirtualSecondsPerScanAttribution is the regression test for the
// virtual_seconds mis-attribution bug: two concurrent scans on one
// Scanner used to each absorb the other's packets via the shared
// rate-limiter delta. Each scan must observe exactly its own
// packet-count × gap.
func TestVirtualSecondsPerScanAttribution(t *testing.T) {
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	reg := telemetry.NewRegistry()
	s := New(w.Link(), WithSecret(5), WithRatePPS(1000), WithTelemetry(reg))

	// Two scans of 100 silent targets × 3 attempts = 300 packets each:
	// 0.3 virtual seconds per scan at 1000 pps, whatever the interleaving.
	mk := func(off uint64) []ipaddr.Addr {
		var ts []ipaddr.Addr
		base := ipaddr.MustParse("3fff::").AddLo(off)
		for i := 0; i < 100; i++ {
			ts = append(ts, base.AddLo(uint64(i)))
		}
		return ts
	}
	var wg sync.WaitGroup
	for _, off := range []uint64{0, 1 << 20} {
		wg.Add(1)
		go func(off uint64) {
			defer wg.Done()
			s.Scan(mk(off), proto.ICMP)
		}(off)
	}
	wg.Wait()

	h := reg.Snapshot().Histograms["scanner.scan.virtual_seconds"]
	if h.Count != 2 {
		t.Fatalf("observations = %d, want 2", h.Count)
	}
	if h.Min < 0.29 || h.Max > 0.31 {
		t.Fatalf("per-scan virtual seconds [%v, %v], want both ~0.3", h.Min, h.Max)
	}
	if got := s.VirtualElapsed(); got < 0.59 || got > 0.61 {
		t.Fatalf("total virtual elapsed = %v, want ~0.6", got)
	}
}

// TestRateLimiterTakeN pins the amortized limiter: TakeN(n) must advance
// the clock exactly as n sequential Takes do and return the first slot.
func TestRateLimiterTakeN(t *testing.T) {
	rl := NewRateLimiter(100)
	if got := rl.TakeN(5); got != 0 {
		t.Fatalf("first TakeN start = %v, want 0", got)
	}
	if got := rl.Take(); got < 0.0499 || got > 0.0501 {
		t.Fatalf("Take after TakeN(5) = %v, want 0.05", got)
	}
	if got, want := rl.Packets(), int64(6); got != want {
		t.Fatalf("Packets = %d, want %d", got, want)
	}
	if got := rl.VirtualElapsed(); got < 0.0599 || got > 0.0601 {
		t.Fatalf("VirtualElapsed = %v, want 0.06", got)
	}
}

// TestRateLimiterConcurrentTake hammers the lock-free limiter from many
// goroutines under -race: the final clock must account every packet
// exactly once.
func TestRateLimiterConcurrentTake(t *testing.T) {
	rl := NewRateLimiter(1000)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%10 == 0 {
					rl.TakeN(3)
				} else {
					rl.Take()
				}
			}
		}()
	}
	wg.Wait()
	// Per goroutine: 100 TakeN(3) + 900 Take = 1200 packets.
	if got, want := rl.Packets(), int64(goroutines*1200); got != want {
		t.Fatalf("Packets = %d, want %d", got, want)
	}
}
