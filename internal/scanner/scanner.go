// Package scanner reimplements Scanv6, the Go scanner the paper uses for
// all TGA output scans (§4.2): it takes lists of IPv6 targets, emits
// ICMPv6 Echo / TCP SYN / UDP DNS probes with validation cookies, honours a
// blocklist, rate-limits, retries unanswered targets, verifies every
// response packet, and classifies outcomes.
//
// Following §4.1 of the paper, TCP RSTs and ICMP Destination Unreachable
// messages are NOT counted as hits — they prove a router or host exists but
// not that the probed service does.
//
// Scanners are built with functional options (New plus WithRetries,
// WithWorkers, WithRatePPS, WithBlocklist, WithTelemetry, ...) and scans
// are cancellable through ScanContext; Scan remains as a context-free
// wrapper.
package scanner

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
)

// Link is the wire between the scanner and the Internet (real or
// simulated): send one packet, collect whatever comes back for it.
// Implementations must be safe for concurrent use.
type Link interface {
	Exchange(pkt []byte) [][]byte
}

// Status classifies the outcome of probing one target.
type Status uint8

const (
	// StatusSilent means no response survived retries.
	StatusSilent Status = iota
	// StatusActive means a validated positive response (Echo Reply,
	// SYN-ACK, or DNS response) arrived: a hit.
	StatusActive
	// StatusRST means the host answered a TCP probe with RST: alive but
	// closed; not a hit.
	StatusRST
	// StatusUnreachable means a router answered with ICMPv6 Destination
	// Unreachable; not a hit.
	StatusUnreachable
	// StatusBlocked means the target matched the blocklist and was never
	// probed.
	StatusBlocked
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSilent:
		return "silent"
	case StatusActive:
		return "active"
	case StatusRST:
		return "rst"
	case StatusUnreachable:
		return "unreachable"
	case StatusBlocked:
		return "blocked"
	}
	return "unknown"
}

// Result is the outcome for a single target.
type Result struct {
	Addr     ipaddr.Addr
	Proto    proto.Protocol
	Status   Status
	Attempts int
}

// Active reports whether the result is a hit.
func (r Result) Active() bool { return r.Status == StatusActive }

// Stats aggregates counters over a scanner's lifetime.
type Stats struct {
	PacketsSent   atomic.Int64
	PacketsRecv   atomic.Int64
	Hits          atomic.Int64
	RSTs          atomic.Int64
	Unreachables  atomic.Int64
	Blocked       atomic.Int64
	InvalidCookie atomic.Int64
}

// protoCounters are the telemetry handles resolved once per protocol so
// the per-packet hot path never touches the registry's maps.
type protoCounters struct {
	sent    *telemetry.Counter
	retries *telemetry.Counter
	hits    *telemetry.Counter
}

// Scanner probes targets over a Link. Safe for concurrent Scan calls.
type Scanner struct {
	link  Link
	set   settings
	stats Stats
	rl    *RateLimiter

	// Telemetry handles (nil-safe when no registry is wired).
	pc         [proto.Count]protoCounters
	cRecv      *telemetry.Counter
	cCookieBad *telemetry.Counter
	cBlocked   *telemetry.Counter
}

// New builds a Scanner over link. With no options it matches the paper's
// §4.2 setup: 2 retries, 8 workers, 10k pps, shuffled scan order.
func New(link Link, opts ...Option) *Scanner {
	set := defaultSettings()
	for _, o := range opts {
		o(&set)
	}
	s := &Scanner{link: link, set: set, rl: NewRateLimiter(set.ratePPS)}
	if reg := set.tele; reg != nil {
		for _, p := range proto.All {
			s.pc[p] = protoCounters{
				sent:    reg.Counter("scanner.probes_sent." + p.String()),
				retries: reg.Counter("scanner.retries." + p.String()),
				hits:    reg.Counter("scanner.hits." + p.String()),
			}
		}
		s.cRecv = reg.Counter("scanner.packets_recv")
		s.cCookieBad = reg.Counter("scanner.cookie_failures")
		s.cBlocked = reg.Counter("scanner.blocked")
	}
	return s
}

// Stats exposes the scanner's counters.
func (s *Scanner) Stats() *Stats { return &s.stats }

// Telemetry returns the wired metrics registry (nil when none).
func (s *Scanner) Telemetry() *telemetry.Registry { return s.set.tele }

// VirtualElapsed reports how long the scan would have taken at the
// configured packet rate.
func (s *Scanner) VirtualElapsed() float64 { return s.rl.VirtualElapsed() }

// cookie derives the per-target validation cookie.
func (s *Scanner) cookie(a ipaddr.Addr, p proto.Protocol) uint64 {
	return mix64(s.set.secret, a.Hi(), a.Lo(), uint64(p))
}

// Scan probes every target on p and returns one Result per unique target.
// It is ScanContext with a background context; see there for semantics.
func (s *Scanner) Scan(targets []ipaddr.Addr, p proto.Protocol) []Result {
	res, _ := s.ScanContext(context.Background(), targets, p)
	return res
}

// ScanContext probes every target on p and returns one Result per unique
// target. Targets are deduplicated, shuffled (unless WithoutShuffle),
// blocklist-filtered, and probed with retries. The caller's slice is never
// mutated; dedup and shuffle operate on a private copy.
//
// Cancelling ctx stops the scan between targets: already-probed results
// are returned (in scan order) together with ctx.Err().
func (s *Scanner) ScanContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]Result, error) {
	// Copy before mutating: callers routinely pass shared seed/candidate
	// lists, and dedup+shuffle must not silently reorder them between
	// runs.
	targets = ipaddr.Dedup(append([]ipaddr.Addr(nil), targets...))
	if s.set.shuffle {
		rng := rand.New(rand.NewSource(int64(mix64(s.set.secret, uint64(p), uint64(len(targets))))))
		rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	}

	reg := s.set.tele
	wall := reg.StartTimer("scanner.scan.wall_seconds")
	virtualStart := s.rl.VirtualElapsed()

	results := make([]Result, len(targets))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := s.set.workers
	if workers > len(targets) {
		workers = len(targets)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					return
				}
				results[i] = s.probeOne(targets[i], p)
			}
		}()
	}
	wg.Wait()

	if reg != nil {
		wall.Stop()
		reg.ObserveDuration("scanner.scan.virtual_seconds", s.rl.VirtualElapsed()-virtualStart)
		reg.Gauge("scanner.ratelimit.virtual_elapsed_seconds").Set(s.rl.VirtualElapsed())
	}
	if err := ctx.Err(); err != nil {
		// Workers claim indices in order, and every claimed index below
		// len(targets) was fully probed before the worker exited.
		probed := int(next.Load())
		if probed > len(targets) {
			probed = len(targets)
		}
		return results[:probed], err
	}
	return results, nil
}

// ScanActive is a convenience wrapper returning only hit addresses.
func (s *Scanner) ScanActive(targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, r := range s.Scan(targets, p) {
		if r.Active() {
			out = append(out, r.Addr)
		}
	}
	return out
}

// probeOne sends up to 1+retries probes to one target and classifies the
// outcome.
func (s *Scanner) probeOne(dst ipaddr.Addr, p proto.Protocol) Result {
	res := Result{Addr: dst, Proto: p}
	if s.set.blocklist != nil && s.set.blocklist.Contains(dst) {
		res.Status = StatusBlocked
		s.stats.Blocked.Add(1)
		s.cBlocked.Inc()
		return res
	}
	c := s.cookie(dst, p)
	for attempt := 0; attempt <= s.set.retries; attempt++ {
		res.Attempts = attempt + 1
		s.rl.Take()
		pkt := s.buildProbe(dst, p, c, attempt)
		s.stats.PacketsSent.Add(1)
		s.pc[p].sent.Inc()
		if attempt > 0 {
			s.pc[p].retries.Inc()
		}
		for _, raw := range s.link.Exchange(pkt) {
			s.stats.PacketsRecv.Add(1)
			s.cRecv.Inc()
			st, ok := s.classify(raw, dst, p, c, attempt)
			if !ok {
				s.stats.InvalidCookie.Add(1)
				s.cCookieBad.Inc()
				continue
			}
			switch st {
			case StatusActive:
				s.stats.Hits.Add(1)
				s.pc[p].hits.Inc()
			case StatusRST:
				s.stats.RSTs.Add(1)
			case StatusUnreachable:
				s.stats.Unreachables.Add(1)
			}
			res.Status = st
			return res
		}
	}
	res.Status = StatusSilent
	return res
}

// buildProbe constructs the wire packet for one attempt. The attempt number
// is folded into a varying field so losses genuinely re-roll.
func (s *Scanner) buildProbe(dst ipaddr.Addr, p proto.Protocol, cookie uint64, attempt int) []byte {
	switch p {
	case proto.ICMP:
		var payload [8]byte
		putUint64(payload[:], cookie)
		return probe.BuildEchoRequest(s.set.source, dst,
			uint16(cookie>>48), uint16(attempt), payload[:])
	case proto.TCP80, proto.TCP443:
		return probe.BuildTCPSyn(s.set.source, dst,
			srcPortFor(cookie), p.Port(), uint32(cookie)+uint32(attempt))
	case proto.UDP53:
		q, err := probe.BuildDNSQuery(s.set.source, dst,
			srcPortFor(cookie), uint16(cookie)^uint16(attempt*7+1), "liveness.seedscan.example")
		if err != nil {
			panic("scanner: impossible DNS build failure: " + err.Error())
		}
		return q
	}
	panic("scanner: unknown protocol")
}

// classify validates a response packet against the probe's cookie. The
// second return value is false for spoofed/mismatched packets.
func (s *Scanner) classify(raw []byte, dst ipaddr.Addr, p proto.Protocol, cookie uint64, attempt int) (Status, bool) {
	pk, err := probe.Parse(raw)
	if err != nil {
		return StatusSilent, false
	}
	if pk.Header.Dst != s.set.source {
		return StatusSilent, false
	}
	switch pk.Kind {
	case probe.KindEchoReply:
		if p != proto.ICMP || pk.Header.Src != dst {
			return StatusSilent, false
		}
		if pk.EchoID != uint16(cookie>>48) || len(pk.Payload) < 8 || getUint64(pk.Payload) != cookie {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindTCPSynAck:
		if !p.IsTCP() || pk.Header.Src != dst || pk.SrcPort != p.Port() {
			return StatusSilent, false
		}
		if pk.TCPAck != uint32(cookie)+uint32(attempt)+1 {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindTCPRst:
		if !p.IsTCP() || pk.Header.Src != dst {
			return StatusSilent, false
		}
		if pk.TCPAck != uint32(cookie)+uint32(attempt)+1 {
			return StatusSilent, false
		}
		return StatusRST, true
	case probe.KindDNSResponse:
		if p != proto.UDP53 || pk.Header.Src != dst || pk.DstPort != srcPortFor(cookie) {
			return StatusSilent, false
		}
		if pk.DNSID != uint16(cookie)^uint16(attempt*7+1) {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindUnreachable:
		// Unreachables come from routers; validate the quoted probe
		// targeted our destination.
		if len(pk.Payload) >= probe.IPv6HeaderLen {
			quoted, _, qerr := parseQuotedHeader(pk.Payload)
			if qerr == nil && quoted == dst {
				return StatusUnreachable, true
			}
		}
		return StatusSilent, false
	}
	return StatusSilent, false
}

// parseQuotedHeader extracts the destination of the quoted invoking packet
// inside an unreachable message.
func parseQuotedHeader(quote []byte) (ipaddr.Addr, ipaddr.Addr, error) {
	if len(quote) < probe.IPv6HeaderLen {
		return ipaddr.Addr{}, ipaddr.Addr{}, probe.ErrTruncated
	}
	var sb, db [16]byte
	copy(sb[:], quote[8:24])
	copy(db[:], quote[24:40])
	return ipaddr.AddrFrom16(db), ipaddr.AddrFrom16(sb), nil
}

// srcPortFor derives an ephemeral source port from the cookie.
func srcPortFor(cookie uint64) uint16 {
	return 0xc000 | uint16(cookie>>16)&0x3fff
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// mix64 is the scanner's local copy of the split-mix fold (kept local so
// the package has no dependency on the world's internals).
func mix64(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = smix(h ^ v)
	}
	return h
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
