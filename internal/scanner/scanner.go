// Package scanner reimplements Scanv6, the Go scanner the paper uses for
// all TGA output scans (§4.2): it takes lists of IPv6 targets, emits
// ICMPv6 Echo / TCP SYN / UDP DNS probes with validation cookies, honours a
// blocklist, rate-limits, retries unanswered targets, verifies every
// response packet, and classifies outcomes.
//
// Following §4.1 of the paper, TCP RSTs and ICMP Destination Unreachable
// messages are NOT counted as hits — they prove a router or host exists but
// not that the probed service does.
//
// Scanners are built with functional options (New plus WithRetries,
// WithWorkers, WithRatePPS, WithBlocklist, WithTelemetry, ...) and scans
// are cancellable through ScanContext; Scan remains as a context-free
// wrapper.
//
// The per-packet hot path is contention-free: the rate limiter is an
// atomic virtual clock (no mutex), counters are sharded per worker and
// merged on read, probes are built into reused per-worker scratch buffers,
// and every exchange moves a whole chunk of probes through the canonical
// arena-batched wire.Link, which answers into a per-worker reply arena —
// the steady-state exchange loop is allocation-free on both sides.
//
// The scanner exchanges packets exclusively through internal/wire: New
// takes a wire.Link (compose middlewares onto it with wire.Chain), and
// legacy single-packet or allocating-batch links are lifted with
// wire.Promote. The historical Link/BatchLink/ArenaLink names remain as
// deprecated aliases of the wire package's shapes.
package scanner

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"

	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/telemetry"
	"seedscan/internal/wire"
)

// Link is the first-generation single-packet wire.
//
// Deprecated: the scanner exchanges packets exclusively through the
// canonical wire.Link; lift legacy implementations with wire.Promote.
type Link = wire.PacketLink

// BatchLink is the second-generation allocating batched wire.
//
// Deprecated: implement wire.Link (ExchangeBatchInto) instead; existing
// implementations are lifted with wire.Promote.
type BatchLink = wire.BatchLink

// ArenaLink is the historical name for links that implement the canonical
// arena-batched exchange alongside the legacy per-packet one.
//
// Deprecated: new code should implement and accept wire.Link.
type ArenaLink = wire.ArenaLink

// dnsQueryName is the fixed liveness qname stamped on UDP/53 probes.
const dnsQueryName = "liveness.seedscan.example"

// Status classifies the outcome of probing one target.
type Status uint8

const (
	// StatusSilent means no response survived retries.
	StatusSilent Status = iota
	// StatusActive means a validated positive response (Echo Reply,
	// SYN-ACK, or DNS response) arrived: a hit.
	StatusActive
	// StatusRST means the host answered a TCP probe with RST: alive but
	// closed; not a hit.
	StatusRST
	// StatusUnreachable means a router answered with ICMPv6 Destination
	// Unreachable; not a hit.
	StatusUnreachable
	// StatusBlocked means the target matched the blocklist and was never
	// probed.
	StatusBlocked
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSilent:
		return "silent"
	case StatusActive:
		return "active"
	case StatusRST:
		return "rst"
	case StatusUnreachable:
		return "unreachable"
	case StatusBlocked:
		return "blocked"
	}
	return "unknown"
}

// Result is the outcome for a single target.
type Result struct {
	Addr     ipaddr.Addr
	Proto    proto.Protocol
	Status   Status
	Attempts int
}

// Active reports whether the result is a hit.
func (r Result) Active() bool { return r.Status == StatusActive }

// Stats is a point-in-time snapshot of a scanner's counters, merged
// across the per-worker shards by Scanner.Stats.
type Stats struct {
	PacketsSent   atomic.Int64
	PacketsRecv   atomic.Int64
	Hits          atomic.Int64
	RSTs          atomic.Int64
	Unreachables  atomic.Int64
	Blocked       atomic.Int64
	InvalidCookie atomic.Int64
}

// Add accumulates o's counters into s. It is the merge step for sharded
// scanning: a cluster coordinator sums per-shard snapshots into one
// whole-run snapshot instead of reaching into individual fields.
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	s.PacketsSent.Add(o.PacketsSent.Load())
	s.PacketsRecv.Add(o.PacketsRecv.Load())
	s.Hits.Add(o.Hits.Load())
	s.RSTs.Add(o.RSTs.Load())
	s.Unreachables.Add(o.Unreachables.Load())
	s.Blocked.Add(o.Blocked.Load())
	s.InvalidCookie.Add(o.InvalidCookie.Load())
}

// Sub subtracts o's counters from s — the delta between two snapshots of
// the same scanner, i.e. what one shard contributed.
func (s *Stats) Sub(o *Stats) {
	if o == nil {
		return
	}
	s.PacketsSent.Add(-o.PacketsSent.Load())
	s.PacketsRecv.Add(-o.PacketsRecv.Load())
	s.Hits.Add(-o.Hits.Load())
	s.RSTs.Add(-o.RSTs.Load())
	s.Unreachables.Add(-o.Unreachables.Load())
	s.Blocked.Add(-o.Blocked.Load())
	s.InvalidCookie.Add(-o.InvalidCookie.Load())
}

// Values returns the counters as a fixed array in declaration order —
// the wire encoding the cluster protocol ships between worker and
// coordinator.
func (s *Stats) Values() [7]int64 {
	return [7]int64{
		s.PacketsSent.Load(),
		s.PacketsRecv.Load(),
		s.Hits.Load(),
		s.RSTs.Load(),
		s.Unreachables.Load(),
		s.Blocked.Load(),
		s.InvalidCookie.Load(),
	}
}

// StatsFromValues rebuilds a snapshot from Values order.
func StatsFromValues(v [7]int64) *Stats {
	s := &Stats{}
	s.PacketsSent.Store(v[0])
	s.PacketsRecv.Store(v[1])
	s.Hits.Store(v[2])
	s.RSTs.Store(v[3])
	s.Unreachables.Store(v[4])
	s.Blocked.Store(v[5])
	s.InvalidCookie.Store(v[6])
	return s
}

// statShard is one worker's slice of the scanner counters. Each shard is
// padded out to its own cache lines so eight workers incrementing seven
// counters stop bouncing the same lines between cores; Scanner.Stats sums
// the shards on read.
type statShard struct {
	packetsSent   atomic.Int64
	packetsRecv   atomic.Int64
	hits          atomic.Int64
	rsts          atomic.Int64
	unreachables  atomic.Int64
	blocked       atomic.Int64
	invalidCookie atomic.Int64
	_             [72]byte // pad the 56 counter bytes to two cache lines
}

// protoCounters are the telemetry handles resolved once per protocol so
// the per-packet hot path never touches the registry's maps.
type protoCounters struct {
	sent    *telemetry.Counter
	retries *telemetry.Counter
	hits    *telemetry.Counter
}

// Scanner probes targets over a wire.Link. Safe for concurrent Scan calls.
type Scanner struct {
	link wire.Link
	set  settings
	rl   *RateLimiter

	shards   []statShard // len is a power of two
	shardSeq atomic.Int64
	wsPool   sync.Pool // recycled *workerState scratch across scans

	dnsName []byte // pre-encoded wire form of dnsQueryName

	// Telemetry handles (nil-safe when no registry is wired).
	pc         [proto.Count]protoCounters
	cRecv      *telemetry.Counter
	cCookieBad *telemetry.Counter
	cBlocked   *telemetry.Counter
}

// New builds a Scanner over link — the canonical arena-batched wire,
// typically a world's WireLink or a wire.Chain composed onto one; lift
// legacy links with wire.Promote. With no options it matches the paper's
// §4.2 setup: 2 retries, 8 workers, 10k pps, shuffled scan order.
func New(link wire.Link, opts ...Option) *Scanner {
	set := defaultSettings()
	for _, o := range opts {
		o(&set)
	}
	name, err := probe.EncodeName(dnsQueryName)
	if err != nil {
		panic("scanner: impossible DNS name encode failure: " + err.Error())
	}
	s := &Scanner{
		link:    link,
		set:     set,
		rl:      NewRateLimiter(set.ratePPS),
		shards:  make([]statShard, nextPow2(set.workers)),
		dnsName: name,
	}
	if reg := set.tele; reg != nil {
		for _, p := range proto.All {
			s.pc[p] = protoCounters{
				sent:    reg.Counter("scanner.probes_sent." + p.String()),
				retries: reg.Counter("scanner.retries." + p.String()),
				hits:    reg.Counter("scanner.hits." + p.String()),
			}
		}
		s.cRecv = reg.Counter("scanner.packets_recv")
		s.cCookieBad = reg.Counter("scanner.cookie_failures")
		s.cBlocked = reg.Counter("scanner.blocked")
	}
	return s
}

// nextPow2 rounds n up to a power of two (minimum 1), so shard selection
// is a mask instead of a modulo.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats returns a merged snapshot of the scanner's counters. The snapshot
// is consistent per counter (each is summed atomically across shards) but
// not across counters while scans are in flight.
func (s *Scanner) Stats() *Stats {
	var sent, recv, hits, rsts, unreach, blocked, badCookie int64
	for i := range s.shards {
		sh := &s.shards[i]
		sent += sh.packetsSent.Load()
		recv += sh.packetsRecv.Load()
		hits += sh.hits.Load()
		rsts += sh.rsts.Load()
		unreach += sh.unreachables.Load()
		blocked += sh.blocked.Load()
		badCookie += sh.invalidCookie.Load()
	}
	out := &Stats{}
	out.PacketsSent.Store(sent)
	out.PacketsRecv.Store(recv)
	out.Hits.Store(hits)
	out.RSTs.Store(rsts)
	out.Unreachables.Store(unreach)
	out.Blocked.Store(blocked)
	out.InvalidCookie.Store(badCookie)
	return out
}

// Telemetry returns the wired metrics registry (nil when none).
func (s *Scanner) Telemetry() *telemetry.Registry { return s.set.tele }

// VirtualElapsed reports how long all packets sent so far would have taken
// at the configured packet rate.
func (s *Scanner) VirtualElapsed() float64 { return s.rl.VirtualElapsed() }

// cookie derives the per-target validation cookie.
func (s *Scanner) cookie(a ipaddr.Addr, p proto.Protocol) uint64 {
	return mix64(s.set.secret, a.Hi(), a.Lo(), uint64(p))
}

// Scan probes every target on p and returns one Result per unique target.
// It is ScanContext with a background context; see there for semantics.
func (s *Scanner) Scan(targets []ipaddr.Addr, p proto.Protocol) []Result {
	res, _ := s.ScanContext(context.Background(), targets, p)
	return res
}

// workerState is the per-worker scratch a scan goroutine owns for its
// lifetime: a counter shard and reusable probe/dispatch buffers, so the
// steady-state hot path performs no allocation and no cross-worker writes
// outside its shard.
type workerState struct {
	shard   *statShard
	arena   []byte // packet build area, reused per attempt
	ends    []int  // arena end offset of each pending packet
	pkts    [][]byte
	pending []pendingProbe
	rb      probe.ReplyBuf // reply arena the wire answers each exchange into
}

// pendingProbe tracks one not-yet-answered target within a chunk.
type pendingProbe struct {
	idx    int // index into the chunk
	cookie uint64
}

// newWorkerState hands a worker its scratch state: pooled when a previous
// scan's worker released one (its warmed arenas come back with it), fresh
// otherwise with a round-robin counter shard, so concurrent scans spread
// across the shard pool.
func (s *Scanner) newWorkerState() *workerState {
	if st, ok := s.wsPool.Get().(*workerState); ok {
		return st
	}
	id := int(s.shardSeq.Add(1) - 1)
	return &workerState{shard: &s.shards[id&(len(s.shards)-1)]}
}

// putWorkerState releases a worker's scratch for reuse by later scans.
func (s *Scanner) putWorkerState(st *workerState) { s.wsPool.Put(st) }

// ScanContext probes every target on p and returns one Result per unique
// target. Targets are deduplicated, shuffled (unless WithoutShuffle),
// blocklist-filtered, and probed with retries. The caller's slice is never
// mutated; dedup and shuffle operate on a private copy.
//
// Workers claim contiguous chunks of the target list and probe each chunk
// through one arena-batched exchange per attempt round. Results are
// independent of the chunk size — per-target classification depends only
// on the target, its cookie, and the link's replies.
//
// Cancelling ctx stops the scan between chunks: already-probed results
// are returned (a prefix of the scan order) together with ctx.Err().
func (s *Scanner) ScanContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]Result, error) {
	targets = PlanOrder(s.set.secret, s.set.shuffle, targets, p)

	reg := s.set.tele
	wall := reg.StartTimer("scanner.scan.wall_seconds")

	results := make([]Result, len(targets))
	// next is the chunk claim cursor; sent counts only this scan's packets
	// so virtual-time attribution stays correct under concurrent scans.
	var next, sent atomic.Int64
	var wg sync.WaitGroup
	workers := s.set.workers
	if workers > len(targets) {
		workers = len(targets)
	}
	chunk := s.set.chunk
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := s.newWorkerState()
			defer s.putWorkerState(st)
			for ctx.Err() == nil {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= len(targets) {
					return
				}
				end := start + chunk
				if end > len(targets) {
					end = len(targets)
				}
				s.probeChunk(st, targets[start:end], p, results[start:end], &sent)
			}
		}()
	}
	wg.Wait()

	if reg != nil {
		wall.Stop()
		// This scan's own packets × gap: a VirtualElapsed delta would
		// absorb packets of scans running concurrently on this scanner.
		reg.ObserveDuration("scanner.scan.virtual_seconds", float64(sent.Load())*s.rl.Gap())
		reg.Gauge("scanner.ratelimit.virtual_elapsed_seconds").Set(s.rl.VirtualElapsed())
	}
	if err := ctx.Err(); err != nil {
		// Workers claim chunks in order and fully probe every claimed
		// index below len(targets) before exiting, so the claimed prefix
		// is exactly the probed prefix.
		probed := int(next.Load())
		if probed > len(targets) {
			probed = len(targets)
		}
		return results[:probed], err
	}
	return results, nil
}

// PlanOrder computes the exact probe order a scanner configured with
// (secret, shuffle) uses for one ScanContext call: targets deduplicated
// into a fresh slice and, when shuffle is set, permuted by the
// secret-keyed shuffle. Dedup always copies, so the caller's (routinely
// shared) seed/candidate list is never reordered.
//
// It is exported so a cluster coordinator can pre-compute the canonical
// result order of the equivalent single-scanner run before
// hash-partitioning the targets across workers.
func PlanOrder(secret uint64, shuffle bool, targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr {
	targets = ipaddr.Dedup(targets)
	if shuffle {
		rng := rand.New(rand.NewSource(int64(mix64(secret, uint64(p), uint64(len(targets))))))
		rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	}
	return targets
}

// ScanActive is a convenience wrapper returning only hit addresses.
func (s *Scanner) ScanActive(targets []ipaddr.Addr, p proto.Protocol) []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, r := range s.Scan(targets, p) {
		if r.Active() {
			out = append(out, r.Addr)
		}
	}
	return out
}

// ScanActiveContext is the cancellable variant of ScanActive: it scans
// through ScanContext and returns only hit addresses, or ctx's error.
func (s *Scanner) ScanActiveContext(ctx context.Context, targets []ipaddr.Addr, p proto.Protocol) ([]ipaddr.Addr, error) {
	results, err := s.ScanContext(ctx, targets, p)
	if err != nil {
		return nil, err
	}
	var out []ipaddr.Addr
	for _, r := range results {
		if r.Active() {
			out = append(out, r.Addr)
		}
	}
	return out, nil
}

// prepareChunk initializes a claimed chunk: zeroed results, blocklist
// filtering, and the pending set of targets still awaiting an answer.
func (s *Scanner) prepareChunk(w *workerState, targets []ipaddr.Addr, p proto.Protocol, results []Result) {
	w.pending = w.pending[:0]
	for i, dst := range targets {
		results[i] = Result{Addr: dst, Proto: p}
		if s.set.blocklist != nil && s.set.blocklist.Contains(dst) {
			results[i].Status = StatusBlocked
			w.shard.blocked.Add(1)
			s.cBlocked.Inc()
			continue
		}
		w.pending = append(w.pending, pendingProbe{idx: i, cookie: s.cookie(dst, p)})
	}
}

// buildAttempt builds one probe per pending target into the worker's shared
// arena and slices them out into w.pkts, then charges the rate limiter and
// send counters for the round.
func (s *Scanner) buildAttempt(w *workerState, targets []ipaddr.Addr, p proto.Protocol, attempt int, sent *atomic.Int64) {
	n := len(w.pending)
	// Build every probe into the shared arena first (it may move while
	// growing), then slice the packets out by their recorded ends.
	w.arena = w.arena[:0]
	w.ends = w.ends[:0]
	for _, pd := range w.pending {
		w.arena = s.appendProbe(w.arena, targets[pd.idx], p, pd.cookie, attempt)
		w.ends = append(w.ends, len(w.arena))
	}
	w.pkts = w.pkts[:0]
	prev := 0
	for _, end := range w.ends {
		w.pkts = append(w.pkts, w.arena[prev:end])
		prev = end
	}
	s.rl.TakeN(n)
	sent.Add(int64(n))
	w.shard.packetsSent.Add(int64(n))
	s.pc[p].sent.Add(int64(n))
	if attempt > 0 {
		s.pc[p].retries.Add(int64(n))
	}
}

// probeChunk probes one claimed chunk of targets through the canonical
// arena-batched wire: one ExchangeBatchInto per attempt round, answered
// into the worker's ReplyBuf so the exchange allocates nothing on either
// side, with targets leaving the pending set as soon as a validated
// response arrives. The wire contract records at most one reply per
// packet, which matches classification exactly — the first validated
// reply wins; whatever is still pending after the retries stays
// StatusSilent with Attempts already set to the full retry count.
func (s *Scanner) probeChunk(w *workerState, targets []ipaddr.Addr, p proto.Protocol, results []Result, sent *atomic.Int64) {
	s.prepareChunk(w, targets, p, results)
	for attempt := 0; attempt <= s.set.retries && len(w.pending) > 0; attempt++ {
		s.buildAttempt(w, targets, p, attempt, sent)
		s.link.ExchangeBatchInto(w.pkts, &w.rb)

		keep := w.pending[:0]
		for j, pd := range w.pending {
			res := &results[pd.idx]
			res.Attempts = attempt + 1
			answered := false
			if raw := w.rb.Reply(j); raw != nil {
				st, ok := s.consumeReply(w, raw, res.Addr, p, pd.cookie, attempt)
				if ok {
					res.Status = st
					answered = true
				}
			}
			if !answered {
				keep = append(keep, pd)
			}
		}
		w.pending = keep
	}
}

// consumeReply counts and classifies one raw reply to dst; ok is false for
// spoofed or cookie-mismatched packets (which count as invalid, not as an
// answer).
func (s *Scanner) consumeReply(w *workerState, raw []byte, dst ipaddr.Addr, p proto.Protocol, cookie uint64, attempt int) (Status, bool) {
	w.shard.packetsRecv.Add(1)
	s.cRecv.Inc()
	st, ok := s.classify(raw, dst, p, cookie, attempt)
	if !ok {
		w.shard.invalidCookie.Add(1)
		s.cCookieBad.Inc()
		return StatusSilent, false
	}
	s.countStatus(w, p, st)
	return st, true
}

// countStatus bumps the counters for one validated response.
func (s *Scanner) countStatus(w *workerState, p proto.Protocol, st Status) {
	switch st {
	case StatusActive:
		w.shard.hits.Add(1)
		s.pc[p].hits.Inc()
	case StatusRST:
		w.shard.rsts.Add(1)
	case StatusUnreachable:
		w.shard.unreachables.Add(1)
	}
}

// appendProbe builds the wire packet for one attempt into buf. The attempt
// number is folded into a varying field so losses genuinely re-roll.
func (s *Scanner) appendProbe(buf []byte, dst ipaddr.Addr, p proto.Protocol, cookie uint64, attempt int) []byte {
	switch p {
	case proto.ICMP:
		var payload [8]byte
		putUint64(payload[:], cookie)
		return probe.AppendEchoRequest(buf, s.set.source, dst,
			uint16(cookie>>48), uint16(attempt), payload[:])
	case proto.TCP80, proto.TCP443:
		return probe.AppendTCPSyn(buf, s.set.source, dst,
			srcPortFor(cookie), p.Port(), uint32(cookie)+uint32(attempt))
	case proto.UDP53:
		return probe.AppendDNSQueryWire(buf, s.set.source, dst,
			srcPortFor(cookie), uint16(cookie)^uint16(attempt*7+1), s.dnsName)
	}
	panic("scanner: unknown protocol")
}

// classify validates a response packet against the probe's cookie. The
// second return value is false for spoofed/mismatched packets.
func (s *Scanner) classify(raw []byte, dst ipaddr.Addr, p proto.Protocol, cookie uint64, attempt int) (Status, bool) {
	pk, err := probe.Parse(raw)
	if err != nil {
		return StatusSilent, false
	}
	if pk.Header.Dst != s.set.source {
		return StatusSilent, false
	}
	switch pk.Kind {
	case probe.KindEchoReply:
		if p != proto.ICMP || pk.Header.Src != dst {
			return StatusSilent, false
		}
		if pk.EchoID != uint16(cookie>>48) || len(pk.Payload) < 8 || getUint64(pk.Payload) != cookie {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindTCPSynAck:
		if !p.IsTCP() || pk.Header.Src != dst || pk.SrcPort != p.Port() {
			return StatusSilent, false
		}
		if pk.TCPAck != uint32(cookie)+uint32(attempt)+1 {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindTCPRst:
		if !p.IsTCP() || pk.Header.Src != dst {
			return StatusSilent, false
		}
		if pk.TCPAck != uint32(cookie)+uint32(attempt)+1 {
			return StatusSilent, false
		}
		return StatusRST, true
	case probe.KindDNSResponse:
		if p != proto.UDP53 || pk.Header.Src != dst || pk.DstPort != srcPortFor(cookie) {
			return StatusSilent, false
		}
		if pk.DNSID != uint16(cookie)^uint16(attempt*7+1) {
			return StatusSilent, false
		}
		return StatusActive, true
	case probe.KindUnreachable:
		// Unreachables come from routers; validate the quoted probe
		// targeted our destination.
		if len(pk.Payload) >= probe.IPv6HeaderLen {
			quoted, _, qerr := parseQuotedHeader(pk.Payload)
			if qerr == nil && quoted == dst {
				return StatusUnreachable, true
			}
		}
		return StatusSilent, false
	}
	return StatusSilent, false
}

// parseQuotedHeader extracts the destination of the quoted invoking packet
// inside an unreachable message.
func parseQuotedHeader(quote []byte) (ipaddr.Addr, ipaddr.Addr, error) {
	if len(quote) < probe.IPv6HeaderLen {
		return ipaddr.Addr{}, ipaddr.Addr{}, probe.ErrTruncated
	}
	var sb, db [16]byte
	copy(sb[:], quote[8:24])
	copy(db[:], quote[24:40])
	return ipaddr.AddrFrom16(db), ipaddr.AddrFrom16(sb), nil
}

// srcPortFor derives an ephemeral source port from the cookie.
func srcPortFor(cookie uint64) uint16 {
	return 0xc000 | uint16(cookie>>16)&0x3fff
}

func putUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

func getUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// mix64 is the scanner's local copy of the split-mix fold (kept local so
// the package has no dependency on the world's internals).
func mix64(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = smix(h ^ v)
	}
	return h
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
