package hitlistdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seedscan/internal/hitlist"
	"seedscan/internal/telemetry"
)

// manifestName is the swap point of a store directory: it is always
// written with a temp-file-plus-rename, so a reader never observes a
// partially written manifest, and the data file it names is always fully
// on disk before the manifest starts pointing at it.
const manifestName = "MANIFEST.json"

// manifest is the on-disk pointer to the current generation. The build
// metadata fields (epoch, built-at, record counts) are informational
// duplicates of the data file's header so operators and external watchers
// can read serving staleness without opening the database image; they are
// additive and absent in pre-epoch manifests.
type manifest struct {
	Schema     string `json:"schema"`
	Generation uint64 `json:"generation"`
	File       string `json:"file"`
	// Epoch is the world epoch the published build scanned at.
	Epoch int `json:"epoch,omitempty"`
	// BuiltUnixNano is the build timestamp of the published generation.
	BuiltUnixNano int64 `json:"built_unixnano,omitempty"`
	// Addrs and Prefixes are the published record counts.
	Addrs    int `json:"addrs,omitempty"`
	Prefixes int `json:"prefixes,omitempty"`
}

const manifestSchema = "seedscan-hitlistdb/v1"

// StoreOption configures OpenStore.
type StoreOption func(*storeSettings)

type storeSettings struct {
	keep int
	tele *telemetry.Registry
}

// KeepGenerations sets how many generation files Publish retains on disk
// (minimum 1, default 3). In-process readers are unaffected by pruning —
// a *DB holds the full image in memory — but external late readers of a
// pruned file will fall back to the manifest's current generation.
func KeepGenerations(n int) StoreOption {
	return func(s *storeSettings) {
		if n < 1 {
			n = 1
		}
		s.keep = n
	}
}

// StoreTelemetry wires hitlistdb.* counters and gauges: publishes,
// publish errors, refreshes, the current generation, and record counts.
func StoreTelemetry(reg *telemetry.Registry) StoreOption {
	return func(s *storeSettings) { s.tele = reg }
}

// Store manages a directory of generation-numbered snapshot databases with
// one atomically-swapped current pointer.
//
// Concurrency model: Publish and Refresh serialize on an internal mutex;
// Current is a single atomic pointer load, so the query path takes no
// locks and keeps serving the old generation until the new one is fully
// durable.
type Store struct {
	dir string
	set storeSettings

	mu  sync.Mutex // serializes writers (Publish, Refresh)
	cur atomic.Pointer[DB]
}

// OpenStore opens (creating if necessary) a store directory and loads the
// current generation, if the manifest names one.
func OpenStore(dir string, opts ...StoreOption) (*Store, error) {
	set := storeSettings{keep: 3}
	for _, o := range opts {
		o(&set)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hitlistdb: open store: %w", err)
	}
	s := &Store{dir: dir, set: set}
	if _, _, err := s.Refresh(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Current returns the current generation's database, or nil when nothing
// has been published yet. The returned DB is immutable; callers may keep
// using it across any number of later publishes.
func (s *Store) Current() *DB { return s.cur.Load() }

// Generation returns the current generation number (0 when empty).
func (s *Store) Generation() uint64 {
	if db := s.Current(); db != nil {
		return db.Generation()
	}
	return 0
}

// genFile names the data file of generation g.
func genFile(g uint64) string { return fmt.Sprintf("gen-%08d.hldb", g) }

// Publish writes snap as the next generation and atomically makes it
// current: data file first (temp+rename+fsync), then the manifest rename —
// the swap point. Readers holding the previous *DB are undisturbed;
// new Current calls observe the new generation.
func (s *Store) Publish(snap *hitlist.Snapshot) (*DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Next generation: one past the newer of the in-memory current and the
	// on-disk manifest, so interleaved external publishers cannot make us
	// reuse a number.
	gen := s.Generation()
	if m, err := s.readManifest(); err == nil && m.Generation > gen {
		gen = m.Generation
	}
	gen++

	path := filepath.Join(s.dir, genFile(gen))
	if err := WriteFile(path, snap, gen); err != nil {
		s.set.tele.Counter("hitlistdb.store.publish_errors").Inc()
		return nil, err
	}
	// Re-open through the same validation path every reader uses; this is
	// also the paranoia check that what we just wrote is servable.
	db, err := Open(path)
	if err != nil {
		s.set.tele.Counter("hitlistdb.store.publish_errors").Inc()
		return nil, err
	}
	if err := s.writeManifest(manifest{
		Schema:        manifestSchema,
		Generation:    gen,
		File:          genFile(gen),
		Epoch:         db.Epoch(),
		BuiltUnixNano: db.BuiltAt().UnixNano(),
		Addrs:         db.AddrCount(),
		Prefixes:      db.PrefixCount(),
	}); err != nil {
		s.set.tele.Counter("hitlistdb.store.publish_errors").Inc()
		return nil, err
	}
	s.cur.Store(db)
	s.set.tele.Counter("hitlistdb.store.publishes").Inc()
	s.set.tele.Gauge("hitlistdb.store.generation").Set(float64(gen))
	s.set.tele.Gauge("hitlistdb.store.addrs").Set(float64(db.AddrCount()))
	s.prune(gen)
	return db, nil
}

// Refresh re-reads the manifest and swaps in the generation it names when
// that differs from the in-memory current one — the pickup path for a
// serve daemon watching a directory some other process publishes into.
// It returns the current DB and whether a swap happened.
func (s *Store) Refresh() (*DB, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest()
	if os.IsNotExist(err) {
		return s.cur.Load(), false, nil // empty store
	}
	if err != nil {
		return s.cur.Load(), false, err
	}
	if cur := s.cur.Load(); cur != nil && cur.Generation() == m.Generation {
		return cur, false, nil
	}
	db, err := Open(filepath.Join(s.dir, m.File))
	if err != nil {
		return s.cur.Load(), false, err
	}
	if db.Generation() != m.Generation {
		return s.cur.Load(), false, fmt.Errorf("hitlistdb: manifest names generation %d but %s holds %d",
			m.Generation, m.File, db.Generation())
	}
	s.cur.Store(db)
	s.set.tele.Counter("hitlistdb.store.refreshes").Inc()
	s.set.tele.Gauge("hitlistdb.store.generation").Set(float64(db.Generation()))
	s.set.tele.Gauge("hitlistdb.store.addrs").Set(float64(db.AddrCount()))
	return db, true, nil
}

func (s *Store) readManifest() (manifest, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return manifest{}, fmt.Errorf("hitlistdb: corrupt manifest: %w", err)
	}
	if m.Schema != manifestSchema {
		return manifest{}, fmt.Errorf("hitlistdb: manifest schema %q, want %q", m.Schema, manifestSchema)
	}
	if strings.Contains(m.File, "/") || strings.Contains(m.File, "..") {
		return manifest{}, fmt.Errorf("hitlistdb: manifest names suspicious file %q", m.File)
	}
	return m, nil
}

func (s *Store) writeManifest(m manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(s.dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("hitlistdb: write manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("hitlistdb: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("hitlistdb: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("hitlistdb: swap manifest: %w", err)
	}
	return syncDir(s.dir)
}

// prune removes generation files older than the keep window. The current
// generation is never pruned; errors are ignored (a leftover file is
// harmless).
func (s *Store) prune(current uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "gen-%d.hldb", &g); err == nil && g != current {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for i, g := range gens {
		if i >= s.set.keep-1 { // current plus keep-1 predecessors stay
			os.Remove(filepath.Join(s.dir, genFile(g)))
		}
	}
}
