package hitlistdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"sort"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// DB is one opened snapshot database. It is immutable: every method is
// safe for unlimited concurrent use with no locking, which is what lets
// the serve daemon answer queries over one shared *DB per generation.
type DB struct {
	data []byte
	hdr  headerInfo

	addrOff   int
	prefixOff int
	indexOff  int

	// index is the decoded fixed-stride index: the first address of every
	// stride-sized record block. ~n/stride entries, decoded once at Open.
	index []ipaddr.Addr

	// aliasIdx is the containment-query view of the alias list: sorted
	// prefixes with any prefix already covered by a coarser one dropped,
	// so the prefixes are pairwise disjoint and a point query needs only a
	// predecessor lookup. The on-disk list is preserved verbatim for
	// AliasedPrefixes and Snapshot.
	aliasIdx []ipaddr.Prefix
}

// Record is one point-lookup answer.
type Record struct {
	// Addr is the looked-up address.
	Addr ipaddr.Addr
	// Responsive reports membership in the published responsive list.
	Responsive bool
	// flags holds the per-protocol bits.
	flags byte
}

// On reports whether the address was responsive on protocol p.
func (r Record) On(p proto.Protocol) bool { return r.flags&(1<<uint(p)) != 0 }

// Protocols lists the protocols the address answered on, in canonical
// order.
func (r Record) Protocols() []proto.Protocol {
	var out []proto.Protocol
	for _, p := range proto.All {
		if r.On(p) {
			out = append(out, p)
		}
	}
	return out
}

// Open reads and validates the snapshot database at path.
func Open(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hitlistdb: open: %w", err)
	}
	db, err := FromBytes(data)
	if err != nil {
		return nil, fmt.Errorf("hitlistdb: open %s: %w", path, err)
	}
	return db, nil
}

// FromBytes builds a DB over a complete snapshot image. The slice is
// retained and must not be modified afterwards.
func FromBytes(data []byte) (*DB, error) {
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	nIndex := 0
	if hdr.addrCount > 0 {
		nIndex = (hdr.addrCount + hdr.stride - 1) / hdr.stride
	}
	want := headerSize + recordSize*hdr.addrCount + prefixSize*hdr.prefixCount + 16*nIndex + crcSize
	if len(data) != want {
		return nil, fmt.Errorf("hitlistdb: file is %d bytes, want %d for %d records + %d prefixes",
			len(data), want, hdr.addrCount, hdr.prefixCount)
	}
	body := data[:len(data)-crcSize]
	wantCRC := binary.BigEndian.Uint64(data[len(data)-crcSize:])
	if got := crc64.Checksum(body, crcTable); got != wantCRC {
		return nil, fmt.Errorf("hitlistdb: checksum mismatch (file corrupt or torn)")
	}

	db := &DB{
		data:      data,
		hdr:       hdr,
		addrOff:   headerSize,
		prefixOff: headerSize + recordSize*hdr.addrCount,
	}
	db.indexOff = db.prefixOff + prefixSize*hdr.prefixCount

	db.index = make([]ipaddr.Addr, nIndex)
	for i := range db.index {
		off := db.indexOff + 16*i
		db.index[i] = ipaddr.AddrFrom16([16]byte(data[off : off+16]))
	}

	// Validate sort order while building the alias containment view: a
	// file with out-of-order records would silently break binary search.
	prev := ipaddr.Addr{}
	for i := 0; i < hdr.addrCount; i++ {
		a := db.recordAddr(i)
		if i > 0 && !prev.Less(a) {
			return nil, fmt.Errorf("hitlistdb: address records not strictly sorted at %d", i)
		}
		prev = a
	}
	db.aliasIdx = make([]ipaddr.Prefix, 0, hdr.prefixCount)
	for i := 0; i < hdr.prefixCount; i++ {
		p, err := db.prefixAt(i)
		if err != nil {
			return nil, err
		}
		if n := len(db.aliasIdx); n > 0 {
			last := db.aliasIdx[n-1]
			if last.ContainsPrefix(p) {
				continue // covered by a coarser published prefix
			}
			if !last.Addr().Less(p.Addr()) && last.Addr() != p.Addr() {
				return nil, fmt.Errorf("hitlistdb: alias prefixes not sorted at %d", i)
			}
		}
		db.aliasIdx = append(db.aliasIdx, p)
	}
	return db, nil
}

// recordAddr returns the address of record i.
func (db *DB) recordAddr(i int) ipaddr.Addr {
	off := db.addrOff + recordSize*i
	return ipaddr.AddrFrom16([16]byte(db.data[off : off+16]))
}

// recordFlags returns the flag byte of record i.
func (db *DB) recordFlags(i int) byte {
	return db.data[db.addrOff+recordSize*i+16]
}

// prefixAt decodes alias-prefix record i.
func (db *DB) prefixAt(i int) (ipaddr.Prefix, error) {
	off := db.prefixOff + prefixSize*i
	bits := int(db.data[off+16])
	if bits > 128 {
		return ipaddr.Prefix{}, fmt.Errorf("hitlistdb: alias prefix %d has length %d", i, bits)
	}
	return ipaddr.PrefixFrom(ipaddr.AddrFrom16([16]byte(db.data[off:off+16])), bits), nil
}

// Generation returns the snapshot's generation number.
func (db *DB) Generation() uint64 { return db.hdr.generation }

// BuiltAt returns the snapshot's build time.
func (db *DB) BuiltAt() time.Time { return db.hdr.builtAt }

// Epoch returns the world epoch the build scanned at (zero for batch
// builds and files written before the epoch header field existed).
func (db *DB) Epoch() int { return db.hdr.epoch }

// AddrCount returns the number of address records.
func (db *DB) AddrCount() int { return db.hdr.addrCount }

// PrefixCount returns the number of published alias prefixes.
func (db *DB) PrefixCount() int { return db.hdr.prefixCount }

// InputCount returns the build's unique-input count.
func (db *DB) InputCount() int { return db.hdr.input }

// AliasedAddrCount returns how many input addresses the build discarded as
// aliased.
func (db *DB) AliasedAddrCount() int { return db.hdr.aliasedAddrs }

// Bytes returns the raw snapshot image (for dataset download). Callers
// must not modify it.
func (db *DB) Bytes() []byte { return db.data }

// find returns the record index holding a, or (insertion point, false).
// It binary-searches the fixed-stride index first, then one record block.
func (db *DB) find(a ipaddr.Addr) (int, bool) {
	if db.hdr.addrCount == 0 {
		return 0, false
	}
	// Last index block whose first address is <= a.
	blk := sort.Search(len(db.index), func(i int) bool { return a.Less(db.index[i]) }) - 1
	if blk < 0 {
		return 0, false
	}
	lo := blk * db.hdr.stride
	hi := lo + db.hdr.stride
	if hi > db.hdr.addrCount {
		hi = db.hdr.addrCount
	}
	i := lo + sort.Search(hi-lo, func(i int) bool { return !db.recordAddr(lo+i).Less(a) })
	if i < db.hdr.addrCount && db.recordAddr(i) == a {
		return i, true
	}
	return i, false
}

// Lookup returns the record for a, if present.
func (db *DB) Lookup(a ipaddr.Addr) (Record, bool) {
	i, ok := db.find(a)
	if !ok {
		return Record{}, false
	}
	f := db.recordFlags(i)
	return Record{Addr: a, Responsive: f&flagResponsive != 0, flags: f &^ flagResponsive}, true
}

// AliasContaining returns the published aliased prefix covering a, if any.
func (db *DB) AliasContaining(a ipaddr.Addr) (ipaddr.Prefix, bool) {
	// The containment view is disjoint and sorted, so the only candidate
	// is the last prefix whose base is <= a.
	i := sort.Search(len(db.aliasIdx), func(i int) bool { return a.Less(db.aliasIdx[i].Addr()) }) - 1
	if i >= 0 && db.aliasIdx[i].Contains(a) {
		return db.aliasIdx[i], true
	}
	return ipaddr.Prefix{}, false
}

// WalkPrefix calls fn for every record inside p in ascending address
// order, stopping early when fn returns false. It reports how many records
// were visited.
func (db *DB) WalkPrefix(p ipaddr.Prefix, fn func(Record) bool) int {
	i, _ := db.find(p.Addr())
	last := p.Last()
	visited := 0
	for ; i < db.hdr.addrCount; i++ {
		a := db.recordAddr(i)
		if last.Less(a) {
			break
		}
		f := db.recordFlags(i)
		visited++
		if !fn(Record{Addr: a, Responsive: f&flagResponsive != 0, flags: f &^ flagResponsive}) {
			break
		}
	}
	return visited
}

// AliasedPrefixes returns the published alias list exactly as stored.
func (db *DB) AliasedPrefixes() []ipaddr.Prefix {
	out := make([]ipaddr.Prefix, 0, db.hdr.prefixCount)
	for i := 0; i < db.hdr.prefixCount; i++ {
		p, _ := db.prefixAt(i) // validated at Open
		out = append(out, p)
	}
	return out
}

// Snapshot reconstructs the hitlist build this database was written from.
// Marshal(db.Snapshot(), db.Generation()) reproduces the identical image —
// the lossless round-trip the write path is tested against.
func (db *DB) Snapshot() *hitlist.Snapshot {
	snap := &hitlist.Snapshot{
		BuiltAt:         db.hdr.builtAt,
		Epoch:           db.hdr.epoch,
		Input:           db.hdr.input,
		AliasedAddrs:    db.hdr.aliasedAddrs,
		Responsive:      ipaddr.NewSetCap(db.hdr.addrCount),
		AliasedPrefixes: db.AliasedPrefixes(),
	}
	for _, p := range proto.All {
		snap.PerProtocol[p] = ipaddr.NewSet()
	}
	for i := 0; i < db.hdr.addrCount; i++ {
		a := db.recordAddr(i)
		f := db.recordFlags(i)
		if f&flagResponsive != 0 {
			snap.Responsive.Add(a)
		}
		for _, p := range proto.All {
			if f&(1<<uint(p)) != 0 {
				snap.PerProtocol[p].Add(a)
			}
		}
	}
	return snap
}
