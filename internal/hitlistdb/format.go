// Package hitlistdb stores hitlist snapshots in a compact, immutable
// on-disk format and serves point lookups, alias containment checks, and
// prefix walks over them — the storage layer behind `seedscan serve`.
//
// A snapshot file is a single flat byte image designed so Open is cheap
// (parse a 64-byte header, decode a small fixed-stride index) and every
// query runs by binary search directly over the raw record bytes — no
// per-record decode pass, no heap graph, and therefore no locks: a *DB is
// immutable after Open and safe to share across any number of readers.
//
// Layout (all integers big-endian):
//
//	header   64 bytes: magic "SSHL", version u16, index stride u16,
//	         generation u64, built-at unixnano i64, input u64,
//	         aliased-addrs u64, addr count u64, prefix count u64,
//	         epoch u32 (the world epoch the build scanned at; zero for
//	         batch builds and pre-epoch files)
//	records  addr count × 17 bytes: address[16] | flags u8, sorted
//	         ascending, unique. Flag bits 0..proto.Count-1 mark
//	         per-protocol responsiveness; bit 7 marks membership in the
//	         published responsive set.
//	aliases  prefix count × 17 bytes: base address[16] | bits u8, sorted
//	         by (base, bits), unique — the aliased-prefix artifact
//	         verbatim, so a snapshot round-trips losslessly.
//	index    ceil(count/stride) × 16 bytes: the first address of every
//	         stride-sized record block. Lookups binary-search the index,
//	         then only one block of records — the only part of the file a
//	         point lookup must touch besides its final record.
//	crc      u64: CRC-64/ECMA of everything above, so a torn or corrupt
//	         file is rejected at Open instead of serving wrong answers.
//
// Builds are published through a Store: generation-numbered files plus an
// atomically-renamed manifest, so a writer can publish a new build while
// readers keep serving the old one (see store.go).
package hitlistdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// Format constants. Bump formatVersion on any incompatible layout change;
// Open rejects mismatched versions.
const (
	formatVersion = 1
	headerSize    = 64
	recordSize    = 17 // 16 address bytes + 1 flag byte
	prefixSize    = 17 // 16 base-address bytes + 1 length byte
	crcSize       = 8

	// defaultIndexStride is the number of records per index block: small
	// enough that a point lookup's second binary search touches one cache
	// window of records, large enough that the index stays ~1.5% of the
	// record section.
	defaultIndexStride = 64

	// flagResponsive marks membership in the published responsive set
	// (bits 0..proto.Count-1 are the per-protocol bits).
	flagResponsive = 0x80
)

var formatMagic = [4]byte{'S', 'S', 'H', 'L'}

// crcTable is the ECMA polynomial table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Marshal encodes one snapshot as a generation-numbered database image.
// The record set is the union of the snapshot's responsive and
// per-protocol sets; the alias-prefix list is written verbatim (sorted,
// deduplicated), so Unmarshal→Snapshot is lossless.
func Marshal(snap *hitlist.Snapshot, generation uint64) []byte {
	// Union the sets: an address can in principle appear in a per-protocol
	// set only, and the flags byte preserves exactly which sets it was in.
	union := ipaddr.NewSetCap(snap.Responsive.Len())
	union.AddSet(snap.Responsive)
	for _, p := range proto.All {
		if snap.PerProtocol[p] != nil {
			union.AddSet(snap.PerProtocol[p])
		}
	}
	addrs := union.Sorted()

	prefixes := dedupPrefixes(snap.AliasedPrefixes)

	nIndex := (len(addrs) + defaultIndexStride - 1) / defaultIndexStride
	size := headerSize + recordSize*len(addrs) + prefixSize*len(prefixes) + 16*nIndex + crcSize
	b := make([]byte, 0, size)

	// Header.
	b = append(b, formatMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, formatVersion)
	b = binary.BigEndian.AppendUint16(b, defaultIndexStride)
	b = binary.BigEndian.AppendUint64(b, generation)
	b = binary.BigEndian.AppendUint64(b, uint64(snap.BuiltAt.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, uint64(snap.Input))
	b = binary.BigEndian.AppendUint64(b, uint64(snap.AliasedAddrs))
	b = binary.BigEndian.AppendUint64(b, uint64(len(addrs)))
	b = binary.BigEndian.AppendUint64(b, uint64(len(prefixes)))
	b = binary.BigEndian.AppendUint32(b, uint32(snap.Epoch))
	for len(b) < headerSize {
		b = append(b, 0)
	}

	// Address records.
	for _, a := range addrs {
		a16 := a.As16()
		b = append(b, a16[:]...)
		var flags byte
		if snap.Responsive.Contains(a) {
			flags |= flagResponsive
		}
		for _, p := range proto.All {
			if snap.PerProtocol[p].Contains(a) {
				flags |= 1 << uint(p)
			}
		}
		b = append(b, flags)
	}

	// Alias-prefix records.
	for _, p := range prefixes {
		a16 := p.Addr().As16()
		b = append(b, a16[:]...)
		b = append(b, byte(p.Bits()))
	}

	// Fixed-stride index.
	for i := 0; i < len(addrs); i += defaultIndexStride {
		a16 := addrs[i].As16()
		b = append(b, a16[:]...)
	}

	return binary.BigEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
}

// dedupPrefixes returns the canonical published prefix list: sorted by
// (base, bits) with exact duplicates removed. Overlapping prefixes are
// preserved — normalization for containment queries happens at Open, so
// the file stays a lossless image of the snapshot.
func dedupPrefixes(prefixes []ipaddr.Prefix) []ipaddr.Prefix {
	out := append([]ipaddr.Prefix(nil), prefixes...)
	hitlist.SortPrefixes(out)
	j := 0
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			out[j] = p
			j++
		}
	}
	return out[:j]
}

// WriteFile atomically writes the marshaled snapshot to path: the image
// goes to a temporary file in the same directory, is fsynced, and then
// renamed over path, so a crash never leaves a half-written database where
// a reader could open it.
func WriteFile(path string, snap *hitlist.Snapshot, generation uint64) error {
	data := Marshal(snap, generation)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hitlistdb-*")
	if err != nil {
		return fmt.Errorf("hitlistdb: write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("hitlistdb: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("hitlistdb: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("hitlistdb: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("hitlistdb: publish %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Filesystems that refuse directory fsync (some CI overlays) are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// headerInfo is the decoded fixed header.
type headerInfo struct {
	stride       int
	generation   uint64
	builtAt      time.Time
	input        int
	aliasedAddrs int
	addrCount    int
	prefixCount  int
	epoch        int
}

// parseHeader validates the magic/version and decodes the header fields.
func parseHeader(b []byte) (headerInfo, error) {
	if len(b) < headerSize+crcSize {
		return headerInfo{}, fmt.Errorf("hitlistdb: file too short (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != formatMagic {
		return headerInfo{}, fmt.Errorf("hitlistdb: bad magic %q", b[:4])
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != formatVersion {
		return headerInfo{}, fmt.Errorf("hitlistdb: format version %d, want %d", v, formatVersion)
	}
	h := headerInfo{
		stride:       int(binary.BigEndian.Uint16(b[6:8])),
		generation:   binary.BigEndian.Uint64(b[8:16]),
		builtAt:      time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24]))),
		input:        int(binary.BigEndian.Uint64(b[24:32])),
		aliasedAddrs: int(binary.BigEndian.Uint64(b[32:40])),
		addrCount:    int(binary.BigEndian.Uint64(b[40:48])),
		prefixCount:  int(binary.BigEndian.Uint64(b[48:56])),
		epoch:        int(binary.BigEndian.Uint32(b[56:60])),
	}
	if h.stride <= 0 {
		return headerInfo{}, fmt.Errorf("hitlistdb: invalid index stride %d", h.stride)
	}
	if h.addrCount < 0 || h.prefixCount < 0 {
		return headerInfo{}, fmt.Errorf("hitlistdb: negative record counts")
	}
	return h, nil
}
