package hitlistdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/ipaddr"
	"seedscan/internal/telemetry"
)

// smallSnapshot builds a tiny synthetic snapshot whose responsive count is
// n, cheap enough to publish many generations in a loop.
func smallSnapshot(n int) *hitlist.Snapshot {
	snap := &hitlist.Snapshot{
		BuiltAt:    time.Unix(0, int64(n)),
		Input:      n,
		Responsive: ipaddr.NewSet(),
	}
	base := ipaddr.MustParse("2001:db8::")
	for i := 0; i < n; i++ {
		snap.Responsive.Add(base.AddLo(uint64(i)))
	}
	return snap
}

func TestStorePublishAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Current() != nil || st.Generation() != 0 {
		t.Fatal("fresh store is not empty")
	}

	db, err := st.Publish(smallSnapshot(10))
	if err != nil {
		t.Fatal(err)
	}
	if db.Generation() != 1 || st.Generation() != 1 {
		t.Fatalf("first publish generation = %d", db.Generation())
	}
	if st.Current() != db {
		t.Fatal("Current does not return the published DB")
	}

	db2, err := st.Publish(smallSnapshot(20))
	if err != nil {
		t.Fatal(err)
	}
	if db2.Generation() != 2 {
		t.Fatalf("second publish generation = %d", db2.Generation())
	}
	// The old DB stays fully usable after the swap.
	if db.AddrCount() != 10 || db2.AddrCount() != 20 {
		t.Fatal("generations mixed up")
	}

	// A fresh open of the same directory resumes at the latest generation.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 2 || st2.Current().AddrCount() != 20 {
		t.Fatalf("reopen landed on generation %d", st2.Generation())
	}
	// ...and continues the numbering rather than restarting it.
	db3, err := st2.Publish(smallSnapshot(30))
	if err != nil {
		t.Fatal(err)
	}
	if db3.Generation() != 3 {
		t.Fatalf("post-reopen publish generation = %d", db3.Generation())
	}
}

// TestStoreRefreshPicksUpExternalPublish models the serve-daemon deployment:
// one store publishes, a second store watching the same directory swaps in
// the new generation on Refresh.
func TestStoreRefreshPicksUpExternalPublish(t *testing.T) {
	dir := t.TempDir()
	writer, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, swapped, err := reader.Refresh(); err != nil || swapped {
		t.Fatalf("refresh on empty store: swapped=%v err=%v", swapped, err)
	}

	if _, err := writer.Publish(smallSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	db, swapped, err := reader.Refresh()
	if err != nil || !swapped {
		t.Fatalf("refresh after publish: swapped=%v err=%v", swapped, err)
	}
	if db.Generation() != 1 || db.AddrCount() != 5 {
		t.Fatal("refresh loaded the wrong generation")
	}
	// No change → no swap.
	if _, swapped, _ := reader.Refresh(); swapped {
		t.Fatal("refresh swapped with no new publish")
	}
}

func TestStorePrune(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, KeepGenerations(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := st.Publish(smallSnapshot(i)); err != nil {
			t.Fatal(err)
		}
	}
	var kept []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".hldb" {
			kept = append(kept, e.Name())
		}
	}
	if len(kept) != 2 {
		t.Fatalf("kept %v, want generations 4 and 5 only", kept)
	}
	for _, want := range []string{genFile(4), genFile(5)} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("%s pruned: %v", want, err)
		}
	}
}

// TestStoreManifestMetadata pins the additive build-metadata fields: a
// publish must mirror the data file's epoch, build time, and record counts
// into the manifest, and a minimal pre-epoch manifest must still parse.
func TestStoreManifestMetadata(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := smallSnapshot(4)
	snap.Epoch = 9
	db, err := st.Publish(snap)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 9 {
		t.Fatalf("published DB epoch = %d, want 9", db.Epoch())
	}
	m, err := st.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 9 || m.Addrs != 4 || m.Prefixes != 0 ||
		m.BuiltUnixNano != snap.BuiltAt.UnixNano() {
		t.Fatalf("manifest metadata = %+v", m)
	}

	// A manifest without the metadata fields (written by an older publisher)
	// still opens; the fields just read as zero.
	old := fmt.Sprintf(`{"schema":%q,"generation":1,"file":%q}`, manifestSchema, genFile(1))
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("pre-epoch manifest rejected: %v", err)
	}
	if st2.Generation() != 1 {
		t.Fatalf("pre-epoch manifest landed on generation %d", st2.Generation())
	}
}

func TestStoreRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(smallSnapshot(3)); err != nil {
		t.Fatal(err)
	}

	for name, body := range map[string]string{
		"not json":       "{",
		"wrong schema":   `{"schema":"other/v9","generation":1,"file":"gen-00000001.hldb"}`,
		"path traversal": `{"schema":"seedscan-hitlistdb/v1","generation":1,"file":"../evil.hldb"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(dir); err == nil {
			t.Fatalf("%s manifest accepted", name)
		}
	}
}

// TestStoreSwapUnderReaders hammers Current from many goroutines while a
// writer publishes generations; run under -race this is the core atomicity
// proof for the storage layer. Every observed DB must be internally
// consistent: its record count must match what its generation published.
func TestStoreSwapUnderReaders(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	st, err := OpenStore(dir, StoreTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(smallSnapshot(1)); err != nil {
		t.Fatal(err)
	}

	const generations = 20
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				db := st.Current()
				// Generation g was published from smallSnapshot(g): the
				// invariant ties the two header fields of one file together,
				// so a torn swap would trip it.
				if got, want := db.AddrCount(), int(db.Generation()); got != want {
					select {
					case errs <- fmt.Errorf("generation %d has %d records", db.Generation(), got):
					default:
					}
					return
				}
				if _, ok := db.Lookup(ipaddr.MustParse("2001:db8::")); !ok {
					select {
					case errs <- fmt.Errorf("generation %d lost its first record", db.Generation()):
					default:
					}
					return
				}
			}
		}()
	}
	for g := 2; g <= generations; g++ {
		if _, err := st.Publish(smallSnapshot(g)); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if st.Generation() != generations {
		t.Fatalf("final generation = %d", st.Generation())
	}
}
