package hitlistdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seedscan/internal/hitlist"
	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/seeds"
	"seedscan/internal/world"
)

// buildSnapshot runs the real hitlist pipeline over a small world — the
// same artifact `seedscan build-db` publishes.
func buildSnapshot(t testing.TB) *hitlist.Snapshot {
	t.Helper()
	w := world.New(world.Config{Seed: 42, NumASes: 60, LossRate: 0})
	w.SetEpoch(world.CollectEpoch)
	srcs := seeds.CollectAll(w, seeds.CollectConfig{Seed: 7, Scale: 0.2})
	w.SetEpoch(world.ScanEpoch)
	sc := scanner.New(w.Link(), scanner.WithSecret(3))
	svc, err := hitlist.New(hitlist.WithProber(sc), hitlist.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Build(srcs[seeds.SourceHitlist], srcs[seeds.SourceAddrMiner], srcs[seeds.SourceScamper])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Responsive.Len() == 0 || len(snap.AliasedPrefixes) == 0 {
		t.Fatal("test snapshot is degenerate")
	}
	return snap
}

func openSnapshot(t testing.TB, snap *hitlist.Snapshot, gen uint64) *DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.hldb")
	if err := WriteFile(path, snap, gen); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRoundTrip pins losslessness: write → open → Snapshot must reproduce
// the build exactly, including every per-protocol set, and re-marshaling
// the reconstruction must be byte-identical.
func TestRoundTrip(t *testing.T) {
	snap := buildSnapshot(t)
	snap.Epoch = 5 // daemon-style epoch stamp must survive the round trip
	db := openSnapshot(t, snap, 7)

	if db.Generation() != 7 {
		t.Fatalf("generation = %d", db.Generation())
	}
	if db.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", db.Epoch())
	}
	if db.InputCount() != snap.Input || db.AliasedAddrCount() != snap.AliasedAddrs {
		t.Fatalf("counts diverge: %d/%d vs %d/%d",
			db.InputCount(), db.AliasedAddrCount(), snap.Input, snap.AliasedAddrs)
	}
	if got := db.BuiltAt(); !got.Equal(snap.BuiltAt.Truncate(time.Nanosecond)) {
		t.Fatalf("BuiltAt = %v, want %v", got, snap.BuiltAt)
	}

	back := db.Snapshot()
	if back.Input != snap.Input || back.AliasedAddrs != snap.AliasedAddrs || back.Epoch != snap.Epoch {
		t.Fatal("header fields lost")
	}
	if back.Responsive.Len() != snap.Responsive.Len() ||
		back.Responsive.Diff(snap.Responsive).Len() != 0 {
		t.Fatal("responsive set lost in round trip")
	}
	for _, p := range proto.All {
		if back.PerProtocol[p].Len() != snap.PerProtocol[p].Len() ||
			back.PerProtocol[p].Diff(snap.PerProtocol[p]).Len() != 0 {
			t.Fatalf("%v set lost in round trip", p)
		}
	}
	if len(back.AliasedPrefixes) != len(snap.AliasedPrefixes) {
		t.Fatalf("prefix list %d vs %d", len(back.AliasedPrefixes), len(snap.AliasedPrefixes))
	}
	for i := range back.AliasedPrefixes {
		if back.AliasedPrefixes[i] != snap.AliasedPrefixes[i] {
			t.Fatalf("prefix %d: %v vs %v", i, back.AliasedPrefixes[i], snap.AliasedPrefixes[i])
		}
	}
	if !bytes.Equal(Marshal(back, 7), db.Bytes()) {
		t.Fatal("re-marshaled reconstruction is not byte-identical")
	}
}

func TestLookup(t *testing.T) {
	snap := buildSnapshot(t)
	db := openSnapshot(t, snap, 1)

	// Every responsive address must be found with the right protocol bits.
	checked := 0
	snap.Responsive.Each(func(a ipaddr.Addr) {
		if checked >= 500 {
			return
		}
		checked++
		rec, ok := db.Lookup(a)
		if !ok || !rec.Responsive {
			t.Fatalf("responsive %v not found", a)
		}
		for _, p := range proto.All {
			if rec.On(p) != snap.PerProtocol[p].Contains(a) {
				t.Fatalf("%v bit for %v wrong", p, a)
			}
		}
	})
	// Absent addresses miss.
	if _, ok := db.Lookup(ipaddr.MustParse("2001:db8:ffff:ffff::1234")); ok {
		t.Fatal("absent address found")
	}
	// Protocols() agrees with On().
	a := snap.Responsive.Sorted()[0]
	rec, _ := db.Lookup(a)
	want := 0
	for _, p := range proto.All {
		if rec.On(p) {
			want++
		}
	}
	if len(rec.Protocols()) != want {
		t.Fatalf("Protocols() = %v", rec.Protocols())
	}
}

func TestAliasContaining(t *testing.T) {
	snap := buildSnapshot(t)
	db := openSnapshot(t, snap, 1)

	for _, p := range snap.AliasedPrefixes[:min(20, len(snap.AliasedPrefixes))] {
		inside := p.Addr().AddLo(99)
		got, ok := db.AliasContaining(inside)
		if !ok {
			t.Fatalf("no alias covering %v (expected %v)", inside, p)
		}
		if !got.Contains(inside) {
			t.Fatalf("returned prefix %v does not contain %v", got, inside)
		}
	}
	if _, ok := db.AliasContaining(ipaddr.MustParse("fe80::1")); ok {
		t.Fatal("unaliased address matched")
	}
}

// TestAliasContainingCoarse pins the containment view against overlapping
// published prefixes: a coarse known-list prefix plus finer /96s inside it
// must all resolve, and the stored list must stay verbatim.
func TestAliasContainingCoarse(t *testing.T) {
	coarse := ipaddr.MustParsePrefix("2001:db8:aaaa::/64")
	fine1 := ipaddr.MustParsePrefix("2001:db8:aaaa::/96")
	fine2 := ipaddr.MustParsePrefix("2001:db8:aaaa:0:0:5::/96")
	other := ipaddr.MustParsePrefix("2001:db8:bbbb::/96")
	snap := &hitlist.Snapshot{
		BuiltAt:         time.Unix(0, 12345),
		Responsive:      ipaddr.NewSet(),
		AliasedPrefixes: []ipaddr.Prefix{coarse, fine1, fine2, other},
	}
	for _, p := range proto.All {
		snap.PerProtocol[p] = ipaddr.NewSet()
	}
	db := openSnapshot(t, snap, 1)

	if got := db.AliasedPrefixes(); len(got) != 4 {
		t.Fatalf("stored prefix list = %v, want all 4 verbatim", got)
	}
	for _, a := range []ipaddr.Addr{
		fine1.Addr().AddLo(1), fine2.Addr().AddLo(1),
		coarse.Addr().AddLo(1 << 40), other.Addr().AddLo(3),
	} {
		got, ok := db.AliasContaining(a)
		if !ok || !got.Contains(a) {
			t.Fatalf("AliasContaining(%v) = %v, %v", a, got, ok)
		}
	}
	if _, ok := db.AliasContaining(ipaddr.MustParse("2001:db8:cccc::1")); ok {
		t.Fatal("uncovered address matched")
	}
}

func TestWalkPrefix(t *testing.T) {
	snap := buildSnapshot(t)
	db := openSnapshot(t, snap, 1)

	// Walk the /32 around the first responsive address and cross-check
	// against a brute-force filter of the snapshot.
	first := snap.Responsive.Sorted()[0]
	p := ipaddr.PrefixFrom(first, 32)
	var walked []ipaddr.Addr
	db.WalkPrefix(p, func(r Record) bool {
		walked = append(walked, r.Addr)
		return true
	})
	want := 0
	for _, a := range db.Snapshot().Responsive.Sorted() {
		if p.Contains(a) {
			want++
		}
	}
	if len(walked) != want {
		t.Fatalf("walk visited %d, want %d", len(walked), want)
	}
	for i := 1; i < len(walked); i++ {
		if !walked[i-1].Less(walked[i]) {
			t.Fatal("walk out of order")
		}
	}
	// Early stop.
	n := 0
	db.WalkPrefix(p, func(Record) bool { n++; return n < 3 })
	if n != 3 && want >= 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestEmptySnapshot(t *testing.T) {
	snap := &hitlist.Snapshot{BuiltAt: time.Unix(0, 1), Responsive: ipaddr.NewSet()}
	db := openSnapshot(t, snap, 1)
	if db.AddrCount() != 0 || db.PrefixCount() != 0 {
		t.Fatal("empty snapshot has records")
	}
	if _, ok := db.Lookup(ipaddr.MustParse("::1")); ok {
		t.Fatal("lookup hit in empty db")
	}
	if _, ok := db.AliasContaining(ipaddr.MustParse("::1")); ok {
		t.Fatal("alias hit in empty db")
	}
	if db.WalkPrefix(ipaddr.MustParsePrefix("::/0"), func(Record) bool { return true }) != 0 {
		t.Fatal("walk visited records in empty db")
	}
	back := db.Snapshot()
	if back.Summary() == "" || back.ResponsiveFraction() != 0 {
		t.Fatal("empty reconstruction unusable")
	}
}

// TestCorruptionRejected flips bytes across the image and asserts Open
// refuses every damaged variant instead of serving wrong answers.
func TestCorruptionRejected(t *testing.T) {
	snap := buildSnapshot(t)
	data := Marshal(snap, 3)

	if _, err := FromBytes(data); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, headerSize + 3, len(data) - 4, len(data) / 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if _, err := FromBytes(bad); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	// Truncation (a torn write) must be rejected too.
	for _, cut := range []int{1, crcSize, crcSize + 1, len(data) / 2} {
		if _, err := FromBytes(data[:len(data)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	if _, err := FromBytes(nil); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.hldb")); err == nil {
		t.Fatal("missing file opened")
	}
}

// TestWriteFileAtomic asserts a failed writer leaves no partial target
// file behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.hldb")
	snap := buildSnapshot(t)
	if err := WriteFile(path, snap, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.hldb" {
		t.Fatalf("directory holds %v, want only snap.hldb", entries)
	}
}
