package world

import (
	"math/rand"
	"sync"
	"testing"

	"seedscan/internal/ipaddr"
)

// epochTestAddrs samples a deterministic mix of template addresses from
// every non-aliased region — enough of each region's density axis to
// exercise cohort 0, every birth cohort, and the churn/flap rolls.
func epochTestAddrs(w *World, perRegion int) []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, r := range w.Regions() {
		if r.Aliased {
			continue
		}
		rng := rand.New(rand.NewSource(int64(r.Prefix.Addr().Hi() ^ r.Prefix.Addr().Lo())))
		for i := 0; i < perRegion; i++ {
			out = append(out, r.Template.Random(rng))
		}
	}
	return ipaddr.DedupSorted(out)
}

// existsSet folds ExistsAt over addrs at one epoch into a bitmap.
func existsSet(w *World, addrs []ipaddr.Addr, epoch int) []bool {
	out := make([]bool, len(addrs))
	for i, a := range addrs {
		out[i] = w.ExistsAt(a, epoch)
	}
	return out
}

// TestEpochZeroOneUnchanged pins the N-epoch generalization to the
// original two-epoch model: at epochs 0 and 1, existence must equal the
// legacy formula (density cut, single churn hash, single birth band)
// hash for hash. This is what keeps every golden experiment output valid.
func TestEpochZeroOneUnchanged(t *testing.T) {
	w := New(Config{Seed: 42, NumASes: 40})
	addrs := epochTestAddrs(w, 64)
	if len(addrs) < 1000 {
		t.Fatalf("only %d sample addresses", len(addrs))
	}
	for _, a := range addrs {
		r, ok := w.RegionOf(a)
		if !ok || r.Aliased || !r.Template.Matches(a) {
			continue
		}
		u := unit(mix64(w.seed, tagExists, a.Hi(), a.Lo()))
		legacy0 := u < r.Density
		var legacy1 bool
		if legacy0 {
			legacy1 = unit(mix64(w.seed, tagChurn, a.Hi(), a.Lo())) >= r.Churn
		} else {
			legacy1 = u < r.Density*(1+r.Birth)
		}
		if got := w.ExistsAt(a, CollectEpoch); got != legacy0 {
			t.Fatalf("epoch 0 diverged from legacy model at %v: got %v", a, got)
		}
		if got := w.ExistsAt(a, ScanEpoch); got != legacy1 {
			t.Fatalf("epoch 1 diverged from legacy model at %v: got %v", a, got)
		}
	}
}

// TestEpochDeterminism asserts the same seed produces identical
// survivor/birth sets per epoch across repeated evaluations, across
// separately built worlds, and across concurrent goroutines (run under
// -race to catch any shared mutable state in the epoch path).
func TestEpochDeterminism(t *testing.T) {
	w1 := New(Config{Seed: 99, NumASes: 30})
	w2 := New(Config{Seed: 99, NumASes: 30})
	addrs := epochTestAddrs(w1, 48)

	const maxEpoch = 6
	want := make([][]bool, maxEpoch+1)
	for e := 0; e <= maxEpoch; e++ {
		want[e] = existsSet(w1, addrs, e)
	}

	// A separately built world agrees epoch by epoch.
	for e := 0; e <= maxEpoch; e++ {
		got := existsSet(w2, addrs, e)
		for i := range got {
			if got[i] != want[e][i] {
				t.Fatalf("epoch %d: world rebuilt from the same seed diverges at %v", e, addrs[i])
			}
		}
	}

	// Concurrent re-evaluation over one shared world agrees too.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			got := existsSet(w1, addrs, e)
			for i := range got {
				if got[i] != want[e][i] {
					errs <- addrs[i].String()
					return
				}
			}
		}(g % (maxEpoch + 1))
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent evaluation diverged at %s", bad)
	}
}

// TestEpochCohortsAndChurn checks the structural properties of the
// N-epoch model: births keep arriving in later epochs (disjoint cohorts),
// deaths happen every transition, and a host that disappears by churn
// (rather than flap) never returns.
func TestEpochCohortsAndChurn(t *testing.T) {
	w := New(Config{Seed: 7, NumASes: 40})
	addrs := epochTestAddrs(w, 64)

	const maxEpoch = 6
	alive := make([][]bool, maxEpoch+1)
	for e := 0; e <= maxEpoch; e++ {
		alive[e] = existsSet(w, addrs, e)
	}

	bornLater, diedLater := 0, 0
	for e := 2; e <= maxEpoch; e++ {
		for i := range addrs {
			if alive[e][i] && !alive[e-1][i] && !alive[0][i] {
				bornLater++
			}
			if !alive[e][i] && alive[e-1][i] {
				diedLater++
			}
		}
	}
	if bornLater == 0 {
		t.Fatal("no births after epoch 1: the birth cohorts are not advancing")
	}
	if diedLater == 0 {
		t.Fatal("no deaths after epoch 1: churn is not applied per transition")
	}

	// Down-then-up transitions exist (flap recoveries and later births),
	// and every one is explained by the model: a churn death is permanent,
	// so any host alive at e+1 after being down at e must either have been
	// born at e+1 or have been flap-down at e with clean churn rolls.
	recoveries := 0
	for i, a := range addrs {
		r, ok := w.RegionOf(a)
		if !ok || r.Aliased || !r.Template.Matches(a) {
			continue
		}
		for e := 2; e < maxEpoch; e++ {
			if !alive[e][i] && alive[e+1][i] && alive[e-1][i] {
				// Alive on both sides of a one-epoch gap: that can only be a
				// flap, and the flap hash must say so.
				flapped := unit(mix64(w.seed, tagFlap, a.Hi(), a.Lo(), uint64(e))) < r.Churn*flapFraction
				if !flapped {
					t.Fatalf("%v down at epoch %d without a flap roll", a, e)
				}
				recoveries++
			}
		}
	}
	if recoveries == 0 {
		t.Fatal("no flap recoveries observed across epochs 2..6; flap model inert")
	}
}

// TestFlapDowntimeIsTransient pins the flap mechanism: a cohort-0 host
// whose churn rolls survive every transition through maxEpoch is down at
// epoch e iff its flap hash fires at e, and flap never affects epochs 0-1.
func TestFlapDowntimeIsTransient(t *testing.T) {
	w := New(Config{Seed: 11, NumASes: 40})
	addrs := epochTestAddrs(w, 64)

	const maxEpoch = 6
	checked := 0
	for _, a := range addrs {
		r, ok := w.RegionOf(a)
		if !ok || r.Aliased || !r.Template.Matches(a) || r.Churn <= 0 {
			continue
		}
		u := unit(mix64(w.seed, tagExists, a.Hi(), a.Lo()))
		if u >= r.Density {
			continue // only cohort 0 here
		}
		// Geometric survival: one draw against the cumulative death
		// probability decides whether the host outlives every transition
		// through maxEpoch.
		if unit(w.churnHash(a)) < r.deathBy(maxEpoch) {
			continue
		}
		checked++
		for e := 2; e <= maxEpoch; e++ {
			flapped := unit(mix64(w.seed, tagFlap, a.Hi(), a.Lo(), uint64(e))) < r.Churn*flapFraction
			if got := w.ExistsAt(a, e); got != !flapped {
				t.Fatalf("epoch %d: %v exists=%v, flap=%v", e, a, got, flapped)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d never-churned cohort-0 hosts checked; sample too thin", checked)
	}
}
