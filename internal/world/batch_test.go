package world

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"seedscan/internal/cluster"
	"seedscan/internal/ipaddr"
	"seedscan/internal/probe"
	"seedscan/internal/proto"
	"seedscan/internal/scanner"
	"seedscan/internal/telemetry"
)

// batchTestPackets builds a diverse probe mix against w: every probe kind,
// routed and unrouted targets, odd ports, aliased slabs, the pathological
// AS, and malformed wire bytes.
func batchTestPackets(t *testing.T, w *World) [][]byte {
	t.Helper()
	src := ipaddr.MustParse("2001:db8::ffff")
	s := w.NewSampler(1)
	var targets []ipaddr.Addr
	targets = append(targets, s.Hosts(200)...)
	targets = append(targets, s.TemplateNoise(100)...)
	targets = append(targets, s.Aliased(40)...)
	// Unrouted space, plus the gap between the AS spine and the
	// pathological slot.
	targets = append(targets,
		ipaddr.MustParse("2001:db8::1"),
		asBase(w.cfg.NumASes+3).AddLo(1),
		asBase(w.cfg.NumASes+8).AddLo(1), // pathological AS, ::1 IID
	)
	if len(targets) < 200 {
		t.Fatalf("only %d targets sampled", len(targets))
	}
	var pkts [][]byte
	for i, dst := range targets {
		switch i % 5 {
		case 0:
			pkts = append(pkts, probe.BuildEchoRequest(src, dst, uint16(i), uint16(i*3), []byte("batch-equiv")))
		case 1:
			pkts = append(pkts, probe.BuildTCPSyn(src, dst, 0xc123, 80, uint32(i)*7919))
		case 2:
			pkts = append(pkts, probe.BuildTCPSyn(src, dst, 0xc124, 443, uint32(i)*104729))
		case 3:
			pkts = append(pkts, probe.BuildTCPSyn(src, dst, 0xc125, 8080, uint32(i))) // off-study port
		default:
			q, err := probe.BuildDNSQuery(src, dst, 0xc321, uint16(i), "equiv.example")
			if err != nil {
				t.Fatalf("BuildDNSQuery: %v", err)
			}
			pkts = append(pkts, q)
		}
	}
	// Malformed packets the Internet silently drops.
	pkts = append(pkts, nil, []byte{0x60}, pkts[0][:probe.IPv6HeaderLen-1], bytes.Repeat([]byte{0xab}, 60))
	return pkts
}

// TestHandleBatchMatchesHandlePacket pins the batched reply path to the
// per-packet path byte for byte — across epochs, every probe kind, routed,
// unrouted, aliased, pathological, and malformed input — on both a warm
// world and a cold (still lazy) one built from the same seed.
func TestHandleBatchMatchesHandlePacket(t *testing.T) {
	cfg := Config{Seed: 1234, NumASes: 60}
	w := New(cfg)
	pkts := batchTestPackets(t, w)
	cold := New(cfg) // materializes only what the packets touch
	var rb probe.ReplyBuf
	for _, epoch := range []int{0, 1, 2, 5} {
		w.SetEpoch(epoch)
		cold.SetEpoch(epoch)
		cold.HandleBatch(pkts, &rb)
		if rb.Len() != len(pkts) {
			t.Fatalf("epoch %d: ReplyBuf holds %d slots for %d packets", epoch, rb.Len(), len(pkts))
		}
		replies := 0
		for i, pkt := range pkts {
			want := w.HandlePacket(pkt)
			got := rb.Reply(i)
			switch {
			case len(want) == 0:
				if got != nil {
					t.Fatalf("epoch %d pkt %d: batch replied %x, per-packet was silent", epoch, i, got)
				}
			case got == nil:
				t.Fatalf("epoch %d pkt %d: batch silent, per-packet replied %x", epoch, i, want[0])
			default:
				replies++
				if !bytes.Equal(got, want[0]) {
					t.Fatalf("epoch %d pkt %d: batch reply differs\n got %x\nwant %x", epoch, i, got, want[0])
				}
			}
		}
		if epoch == 0 && replies < 50 {
			t.Fatalf("only %d replies at epoch 0; probe mix too silent to prove anything", replies)
		}
	}
}

// TestHandleBatchTelemetry checks the world.* counters documented on
// SetTelemetry move with the batch path.
func TestHandleBatchTelemetry(t *testing.T) {
	w := New(Config{Seed: 5, NumASes: 20})
	reg := telemetry.NewRegistry()
	w.SetTelemetry(reg)
	pkts := batchTestPackets(t, w)
	var rb probe.ReplyBuf
	w.HandleBatch(pkts, &rb)
	if got := reg.Counter("world.batches").Load(); got != 1 {
		t.Fatalf("world.batches = %d, want 1", got)
	}
	if got := reg.Counter("world.batch.packets").Load(); got != int64(len(pkts)) {
		t.Fatalf("world.batch.packets = %d, want %d", got, len(pkts))
	}
	replies := 0
	for i := range pkts {
		if rb.Reply(i) != nil {
			replies++
		}
	}
	if got := reg.Counter("world.batch.replies").Load(); got != int64(replies) {
		t.Fatalf("world.batch.replies = %d, want %d", got, replies)
	}
	if got := reg.Counter("world.groups_materialized").Load(); got == 0 {
		t.Fatal("world.groups_materialized never moved despite routed traffic")
	}
	w.SetTelemetry(nil) // unwire must not panic the next batch
	w.HandleBatch(pkts, &rb)
}

// TestHandleBatchConcurrentWithSetEpoch runs batched handling from many
// goroutines while the epoch clock advances — the longitudinal daemon's
// shape. Run under -race; each goroutine owns its ReplyBuf, and every
// reply must still be a valid reply for its probe's epoch window.
func TestHandleBatchConcurrentWithSetEpoch(t *testing.T) {
	w := New(Config{Seed: 77, NumASes: 30})
	pkts := batchTestPackets(t, w)
	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for e := 0; ; e++ {
			select {
			case <-stop:
				return
			default:
				w.SetEpoch(e % 7)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			var rb probe.ReplyBuf
			for round := 0; round < 50; round++ {
				w.HandleBatch(pkts, &rb)
				for i := range pkts {
					if r := rb.Reply(i); r != nil && len(r) < probe.IPv6HeaderLen {
						t.Errorf("round %d pkt %d: truncated reply (%d bytes)", round, i, len(r))
						return
					}
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	flipper.Wait()
}

// TestLazyMaterializationConcurrent hammers a cold world from many
// goroutines mixing routing lookups, registry reads, and full
// materialization; the result must match an identically-seeded world built
// by a single goroutine. Run under -race.
func TestLazyMaterializationConcurrent(t *testing.T) {
	cfg := Config{Seed: 31, NumASes: 40}
	ref := New(cfg)
	refRegions := ref.Regions()

	w := New(cfg)
	pkts := batchTestPackets(t, ref)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				var rb probe.ReplyBuf
				w.HandleBatch(pkts, &rb)
			case 1:
				if n := w.ASDB().Len(); n != cfg.NumASes+1 {
					t.Errorf("ASDB has %d entries, want %d", n, cfg.NumASes+1)
				}
			default:
				w.Regions()
			}
		}(g)
	}
	wg.Wait()

	got := w.Regions()
	if len(got) != len(refRegions) {
		t.Fatalf("concurrently materialized world has %d regions, reference %d", len(got), len(refRegions))
	}
	for i := range got {
		if got[i].String() != refRegions[i].String() || got[i].Template != refRegions[i].Template {
			t.Fatalf("region %d diverged: %v vs %v", i, got[i], refRegions[i])
		}
	}
}

// TestRegionsReturnsCopy pins the Regions contract: callers may reorder
// the returned slice without corrupting the world's canonical order.
func TestRegionsReturnsCopy(t *testing.T) {
	w := New(Config{Seed: 3, NumASes: 10})
	a := w.Regions()
	if len(a) < 2 {
		t.Fatalf("world too small: %d regions", len(a))
	}
	a[0], a[1] = a[1], a[0]
	b := w.Regions()
	if b[0] != a[1] || b[1] != a[0] {
		t.Fatal("Regions() exposed internal state: caller reorder leaked into the world")
	}
}

// TestWorldAtScale builds a 10^8-host world and drives it through the
// multi-worker cluster path. The lazy builder must keep the build flat
// (well under 2s even with every group materialized) and cluster scans
// must stay byte-identical to a lone reference scanner.
func TestWorldAtScale(t *testing.T) {
	start := time.Now()
	w := New(Config{Seed: 9, SizeScale: 100, LossRate: 0.001}) // default 500 ASes
	st := w.Stats()                                            // forces full materialization
	buildTime := time.Since(start)
	if buildTime > 2*time.Second {
		t.Fatalf("scaled world took %v to fully materialize (budget 2s)", buildTime)
	}
	if st.ExpectedHosts < 1e8 {
		t.Fatalf("SizeScale=100 world holds only %.3g expected hosts, want >= 1e8", st.ExpectedHosts)
	}

	s := w.NewSampler(2)
	targets := s.ActiveHosts(300, proto.ICMP)
	targets = append(targets, s.TemplateNoise(100)...)
	if len(targets) < 350 {
		t.Fatalf("only %d scan targets sampled", len(targets))
	}

	// Retries/RatePPS are pinned explicitly so the reference scanner below
	// provably replicates what NewLocalPool's fillDefaults hands workers.
	ccfg := cluster.Config{Secret: 0xfeed, Retries: 2, RatePPS: 10000}
	pool := cluster.NewLocalPool(4, w.Link(), ccfg)
	got, err := pool.ScanContext(context.Background(), targets, proto.ICMP)
	if err != nil {
		t.Fatalf("cluster scan: %v", err)
	}
	ref := scanner.New(w.Link(),
		scanner.WithSecret(ccfg.Secret),
		scanner.WithRetries(ccfg.Retries),
		scanner.WithRatePPS(ccfg.RatePPS))
	want := ref.Scan(targets, proto.ICMP)
	if len(got) != len(want) {
		t.Fatalf("cluster returned %d results, reference %d", len(got), len(want))
	}
	hits := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged: cluster %+v, reference %+v", i, got[i], want[i])
		}
		if got[i].Active() {
			hits++
		}
	}
	if hits < len(targets)/2 {
		t.Fatalf("only %d/%d hits scanning sampled-active hosts at scale", hits, len(targets))
	}
}
