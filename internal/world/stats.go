package world

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"seedscan/internal/proto"
)

// Stats summarizes the world's ground truth: what a perfect oracle would
// know about the simulated Internet. Experiments use it for denominators
// ("what fraction of discoverable hosts did the TGA find?") and tests use
// it to pin the world's shape.
type Stats struct {
	ASes           int
	Regions        int
	AliasedRegions int
	// ExpectedHosts is the expected number of existing hosts at the
	// collection epoch (aliased slabs count as one device each).
	ExpectedHosts float64
	// ExpectedActive is the expected number of hosts listening per
	// protocol at the collection epoch.
	ExpectedActive [proto.Count]float64
	// ByClass tallies regions and expected hosts per host class.
	ByClass map[HostClass]ClassStats
	// DarkHosts is the expected host count in regions that answer almost
	// nothing (max per-protocol response < 5%).
	DarkHosts float64
}

// ClassStats is the per-class slice of Stats.
type ClassStats struct {
	Regions       int
	ExpectedHosts float64
}

// Stats computes the ground-truth summary.
func (w *World) Stats() Stats {
	all := w.materializeAll()
	s := Stats{
		ASes:    w.ASDB().Len(),
		Regions: len(all),
		ByClass: make(map[HostClass]ClassStats),
	}
	for _, r := range all {
		if r.Aliased {
			s.AliasedRegions++
			continue
		}
		hosts := r.ExpectedHosts()
		s.ExpectedHosts += hosts
		cs := s.ByClass[r.Class]
		cs.Regions++
		cs.ExpectedHosts += hosts
		s.ByClass[r.Class] = cs
		maxResp := 0.0
		for _, p := range proto.All {
			s.ExpectedActive[p] += hosts * r.Resp[p]
			if r.Resp[p] > maxResp {
				maxResp = r.Resp[p]
			}
		}
		if maxResp < 0.05 {
			s.DarkHosts += hosts
		}
	}
	return s
}

// String renders a human-readable summary.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d ASes, %d regions (%d aliased), ~%.0f hosts (%.0f dark)\n",
		s.ASes, s.Regions, s.AliasedRegions, s.ExpectedHosts, s.DarkHosts)
	for _, p := range proto.All {
		fmt.Fprintf(&sb, "  expected %s-active: %.0f\n", p, s.ExpectedActive[p])
	}
	classes := make([]HostClass, 0, len(s.ByClass))
	for c := range s.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		cs := s.ByClass[c]
		fmt.Fprintf(&sb, "  %-12s %4d regions, ~%.0f hosts\n", c, cs.Regions, cs.ExpectedHosts)
	}
	return sb.String()
}

// RegionsByASN returns the regions originated by one AS.
func (w *World) RegionsByASN(asn int) []*Region {
	var out []*Region
	for _, r := range w.materializeAll() {
		if r.ASN == asn {
			out = append(out, r)
		}
	}
	return out
}

// EstimateActiveFraction empirically samples n in-template addresses from
// region r and reports the fraction active on p at the given epoch — a
// Monte-Carlo check that the deterministic activity hash realizes the
// region's configured density and response rates.
func (w *World) EstimateActiveFraction(r *Region, p proto.Protocol, epoch, n int, seed uint64) float64 {
	if n <= 0 {
		return 0
	}
	rng := newRand(seed)
	active := 0
	for i := 0; i < n; i++ {
		a := r.Template.Random(rng)
		if w.activeOn(a, r, p, epoch) {
			active++
		}
	}
	return float64(active) / float64(n)
}

// newRand builds the deterministic RNG used by Monte-Carlo estimators.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}
