package world

import (
	"testing"

	"seedscan/internal/proto"
)

// TestConfiguredRatesRealized Monte-Carlo checks that the deterministic
// activity hash realizes each region's configured density × response rate,
// across classes and protocols — the statistical contract every experiment
// rests on.
func TestConfiguredRatesRealized(t *testing.T) {
	w := smallWorld(t)
	checked := 0
	for _, r := range w.Regions() {
		if r.Aliased || r.Density < 0.05 || checked >= 12 {
			continue
		}
		checked++
		for _, p := range []proto.Protocol{proto.ICMP, proto.TCP443} {
			want := r.Density * r.Resp[p]
			got := w.EstimateActiveFraction(r, p, CollectEpoch, 3000, 77+uint64(checked))
			tol := 0.05 + want*0.2
			if got < want-tol || got > want+tol {
				t.Errorf("region %v %v: measured %.3f, configured %.3f", r.Prefix, p, got, want)
			}
		}
	}
	if checked < 8 {
		t.Fatalf("only %d regions checked", checked)
	}
}

// TestChurnRateRealized verifies the epoch-1 survivor fraction matches
// 1-Churn per region.
func TestChurnRateRealized(t *testing.T) {
	w := smallWorld(t)
	checked := 0
	for _, r := range w.Regions() {
		if r.Aliased || r.Density < 0.2 || r.Churn < 0.1 || checked >= 5 {
			continue
		}
		checked++
		rng := newTestRand(int64(1000 + checked))
		alive0, alive1 := 0, 0
		for i := 0; i < 6000; i++ {
			a := r.Template.Random(rng)
			if w.existsAt(a, r, CollectEpoch) {
				alive0++
				if w.existsAt(a, r, ScanEpoch) {
					alive1++
				}
			}
		}
		if alive0 < 300 {
			continue
		}
		got := 1 - float64(alive1)/float64(alive0)
		if got < r.Churn-0.08 || got > r.Churn+0.08 {
			t.Errorf("region %v: measured churn %.3f, configured %.3f", r.Prefix, got, r.Churn)
		}
	}
	if checked == 0 {
		t.Fatal("no churn-prone regions checked")
	}
}

// TestAliasedRegionsAnswerAllProtocols pins the ground truth dealiasers
// rely on: every address of an aliased region is active on its advertised
// protocols at every epoch.
func TestAliasedRegionsAnswerAllProtocols(t *testing.T) {
	w := smallWorld(t)
	rng := newTestRand(2024)
	for _, r := range w.Regions() {
		if !r.Aliased {
			continue
		}
		for i := 0; i < 10; i++ {
			a := r.Prefix.RandomWithin(rng)
			for _, p := range proto.All {
				want := r.Resp[p] > 0.5
				if got := w.ActiveOn(a, p, ScanEpoch); got != want {
					t.Fatalf("aliased %v on %v: active=%v want %v", a, p, got, want)
				}
			}
		}
	}
}
