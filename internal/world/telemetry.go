package world

import "seedscan/internal/telemetry"

// worldTele holds the counter handles the reply path bumps, resolved once
// so the per-batch hot path never touches the registry's maps.
type worldTele struct {
	batches      *telemetry.Counter // world.batches
	batchPackets *telemetry.Counter // world.batch.packets
	batchReplies *telemetry.Counter // world.batch.replies
	groupsMat    *telemetry.Counter // world.groups_materialized
}

// SetTelemetry wires reg into the world's reply path. Counters:
//
//	world.batches              HandleBatch calls served
//	world.batch.packets        probes received across batches
//	world.batch.replies        replies emitted across batches
//	world.groups_materialized  AS region groups built on demand
//
// Passing nil unwires telemetry. Safe to call concurrently with in-flight
// HandleBatch calls (the handle set swaps atomically).
func (w *World) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		w.tele.Store(nil)
		return
	}
	w.tele.Store(&worldTele{
		batches:      reg.Counter("world.batches"),
		batchPackets: reg.Counter("world.batch.packets"),
		batchReplies: reg.Counter("world.batch.replies"),
		groupsMat:    reg.Counter("world.groups_materialized"),
	})
}
