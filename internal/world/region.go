package world

import (
	"fmt"
	"math"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// HostClass describes what kind of hosts populate a region. Seed collectors
// use it to model their source bias (domain sources see servers, traceroute
// sources see routers, and so on).
type HostClass uint8

const (
	ClassRouter HostClass = iota
	ClassWebServer
	ClassCDNNode
	ClassDNSServer
	ClassISPCustomer
	ClassEndhost
	// ClassDark marks existing-but-unresponsive space: firewalled
	// infrastructure and since-renumbered blocks that still appear in
	// traceroutes and stale DNS.
	ClassDark
	classCount
)

// String names the class.
func (c HostClass) String() string {
	switch c {
	case ClassRouter:
		return "Router"
	case ClassWebServer:
		return "WebServer"
	case ClassCDNNode:
		return "CDNNode"
	case ClassDNSServer:
		return "DNSServer"
	case ClassISPCustomer:
		return "ISPCustomer"
	case ClassEndhost:
		return "Endhost"
	case ClassDark:
		return "Dark"
	}
	return fmt.Sprintf("HostClass(%d)", uint8(c))
}

// Region is a contiguous slab of the address space with a single addressing
// pattern and service profile. Regions are the atoms of the simulated
// Internet: activity of any address is decided by the deepest region
// containing it.
type Region struct {
	// Prefix bounds the region; the template's leading nybbles equal it.
	Prefix ipaddr.Prefix
	// ASN is the autonomous system originating the region.
	ASN int
	// Class is the dominant host type.
	Class HostClass
	// Template is the addressing pattern within the prefix.
	Template Template
	// Density is the fraction of in-template addresses that exist as hosts.
	Density float64
	// Resp is, per protocol, the probability an existing host listens there.
	Resp [proto.Count]float64
	// Aliased marks the whole prefix as answering for every address (one
	// device bound to the entire prefix). Aliased regions ignore Template
	// and Density: all addresses respond on protocols with Resp > 0.5.
	Aliased bool
	// Churn is the fraction of hosts active at the seed-collection epoch
	// that are gone by the scan epoch.
	Churn float64
	// Birth is the fraction of hosts absent at collection that appear by
	// scan time (address churn's other half).
	Birth float64
	// RespRate models ICMP/SYN rate limiting: the fraction of probes a
	// live host actually answers (1 = never drops). Retries can recover
	// misses; heavy limiting defeats online dealiasing, as the paper
	// observes for one Amazon prefix.
	RespRate float64
	// SendsRST is the probability an existing host answers a closed TCP
	// port with RST rather than dropping the SYN.
	SendsRST float64
	// SendsUnreach is the probability probes to nonexistent addresses in
	// this region draw an ICMP Destination Unreachable from the region's
	// router.
	SendsUnreach float64

	// death memoizes the cumulative death probability by host age:
	// death[k] is the chance a host has died within k epoch transitions
	// under geometric survival at rate Churn. Built once per region so the
	// per-packet existence check never loops over epochs.
	death []float64
}

// deathTableEpochs bounds the memoized death table; ages beyond it fall
// back to the closed form (clamped monotone against the table tail).
const deathTableEpochs = 64

// buildDeathTable precomputes the cumulative churn factors. Called once
// when a region materializes; deathBy stays correct (just slower and
// float-derived for k > 1) when it never runs.
func (r *Region) buildDeathTable() {
	if r.Churn <= 0 || r.Aliased {
		return
	}
	d := make([]float64, deathTableEpochs+1)
	d[1] = r.Churn // exactly Churn: epochs 0/1 must stay hash-identical
	surv := 1 - r.Churn
	for k := 2; k <= deathTableEpochs; k++ {
		surv *= 1 - r.Churn
		d[k] = 1 - surv
	}
	r.death = d
}

// deathBy returns the probability a host has died within k epoch
// transitions of its birth: 1-(1-Churn)^k, memoized.
func (r *Region) deathBy(k int) float64 {
	if k <= 0 || r.Churn <= 0 {
		return 0
	}
	if k == 1 {
		return r.Churn
	}
	if k < len(r.death) {
		return r.death[k]
	}
	v := 1 - math.Pow(1-r.Churn, float64(k))
	// Clamp against the table tail so the closed form can never dip below
	// a memoized value by an ulp and resurrect a dead host.
	if n := len(r.death); n > 0 && v < r.death[n-1] {
		v = r.death[n-1]
	}
	return v
}

// ExpectedHosts estimates the number of existing hosts in the region (at
// the collection epoch).
func (r *Region) ExpectedHosts() float64 {
	if r.Aliased {
		return 1 // one device, however many addresses
	}
	return r.Template.Size() * r.Density
}

// ExpectedActive estimates hosts listening on p at the collection epoch.
func (r *Region) ExpectedActive(p proto.Protocol) float64 {
	if r.Aliased {
		if r.Resp[p] > 0.5 {
			return 1
		}
		return 0
	}
	return r.ExpectedHosts() * r.Resp[p]
}

// RouterAddr returns the address unreachables from this region are sourced
// from (the ::1 of the region prefix).
func (r *Region) RouterAddr() ipaddr.Addr {
	return r.Prefix.Addr().AddLo(1)
}

func (r *Region) String() string {
	return fmt.Sprintf("%s AS%d %s density=%g aliased=%v", r.Prefix, r.ASN, r.Class, r.Density, r.Aliased)
}
