package world

import (
	"testing"

	"seedscan/internal/ipaddr"
	"seedscan/internal/proto"
)

// smallWorld builds a compact deterministic world shared across tests.
func smallWorld(t testing.TB) *World {
	t.Helper()
	return New(Config{Seed: 42, NumASes: 60, LossRate: 0})
}

func TestBuildDeterminism(t *testing.T) {
	w1 := New(Config{Seed: 7, NumASes: 30})
	w2 := New(Config{Seed: 7, NumASes: 30})
	if len(w1.Regions()) != len(w2.Regions()) {
		t.Fatalf("region counts differ: %d vs %d", len(w1.Regions()), len(w2.Regions()))
	}
	for i := range w1.Regions() {
		a, b := w1.Regions()[i], w2.Regions()[i]
		if a.Prefix != b.Prefix || a.ASN != b.ASN || a.Class != b.Class || a.Density != b.Density {
			t.Fatalf("region %d differs: %v vs %v", i, a, b)
		}
	}
	// Different seed produces a different world.
	w3 := New(Config{Seed: 8, NumASes: 30})
	same := len(w3.Regions()) == len(w1.Regions())
	if same {
		diff := false
		for i := range w1.Regions() {
			if w1.Regions()[i].Prefix != w3.Regions()[i].Prefix {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t)
	if w.ASDB().Len() < 60 {
		t.Fatalf("AS count = %d", w.ASDB().Len())
	}
	if len(w.Regions()) < 100 {
		t.Fatalf("region count = %d", len(w.Regions()))
	}
	// Must contain aliased regions and the pathological AS.
	if len(w.AliasedPrefixes()) == 0 {
		t.Fatal("no aliased prefixes")
	}
	if _, ok := w.ASDB().Get(PathologicalASN); !ok {
		t.Fatal("pathological AS missing")
	}
	// Every region is routed to its own ASN.
	for _, r := range w.Regions() {
		asn, ok := w.ASNOf(r.Prefix.Addr().AddLo(5))
		if !ok {
			t.Fatalf("region %v unrouted", r)
		}
		if asn != r.ASN {
			t.Fatalf("region %v routes to AS%d", r, asn)
		}
	}
}

func TestActivityInvariants(t *testing.T) {
	w := smallWorld(t)
	s := w.NewSampler(1)
	addrs := s.Hosts(500)
	if len(addrs) < 400 {
		t.Fatalf("sampled only %d hosts", len(addrs))
	}
	for _, a := range addrs {
		if !w.ExistsAt(a, CollectEpoch) {
			t.Fatalf("sampled host %v does not exist at collect epoch", a)
		}
		r, ok := w.RegionOf(a)
		if !ok {
			t.Fatalf("host %v has no region", a)
		}
		if !r.Aliased && !r.Template.Matches(a) {
			t.Fatalf("host %v does not match its region template", a)
		}
		// ActiveOn implies ExistsAt for non-aliased regions.
		for _, p := range proto.All {
			if w.ActiveOn(a, p, CollectEpoch) && !w.ExistsAt(a, CollectEpoch) {
				t.Fatalf("%v active but nonexistent", a)
			}
		}
	}
}

func TestActivityDeterministic(t *testing.T) {
	w := smallWorld(t)
	s := w.NewSampler(2)
	for _, a := range s.Hosts(200) {
		for _, p := range proto.All {
			if w.ActiveOn(a, p, ScanEpoch) != w.ActiveOn(a, p, ScanEpoch) {
				t.Fatal("activity not deterministic")
			}
		}
	}
}

func TestChurnShrinksAndBirthAdds(t *testing.T) {
	w := smallWorld(t)
	s := w.NewSampler(3)
	addrs := s.Hosts(3000)
	churned, alive := 0, 0
	for _, a := range addrs {
		if w.ExistsAt(a, ScanEpoch) {
			alive++
		} else {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("no churn observed: every collected host still alive")
	}
	if alive == 0 {
		t.Fatal("everything churned")
	}
	// Churn should be a minority effect.
	if float64(churned) > 0.6*float64(len(addrs)) {
		t.Fatalf("churn too aggressive: %d/%d", churned, len(addrs))
	}

	// Birth: some addresses exist at scan epoch that did not at collection.
	born := 0
	for _, r := range w.Regions() {
		if r.Aliased || r.Birth == 0 || r.Density < minSampleDensity {
			continue
		}
		tpl := r.Template
		for i, a := range tpl.Enumerate(2000) {
			_ = i
			if !w.ExistsAt(a, CollectEpoch) && w.ExistsAt(a, ScanEpoch) {
				born++
			}
		}
		if born > 0 {
			break
		}
	}
	if born == 0 {
		t.Fatal("no births observed")
	}
}

func TestAliasedRegionAnswersEverything(t *testing.T) {
	w := smallWorld(t)
	var aliased *Region
	for _, r := range w.Regions() {
		if r.Aliased && r.RespRate == 1 {
			aliased = r
			break
		}
	}
	if aliased == nil {
		t.Skip("no full-rate aliased region in this seed")
	}
	s := w.NewSampler(4)
	_ = s
	rng := newTestRand(5)
	for i := 0; i < 50; i++ {
		a := aliased.Prefix.RandomWithin(rng)
		if !w.IsAliased(a) {
			t.Fatalf("%v not reported aliased", a)
		}
		if !w.ActiveOn(a, proto.ICMP, ScanEpoch) {
			t.Fatalf("aliased %v not ICMP active", a)
		}
		if !w.ActiveOn(a, proto.TCP443, ScanEpoch) {
			t.Fatalf("aliased %v not TCP443 active", a)
		}
	}
}

func TestPathologicalPattern(t *testing.T) {
	w := smallWorld(t)
	var path *Region
	for _, r := range w.Regions() {
		if r.ASN == PathologicalASN {
			path = r
			break
		}
	}
	if path == nil {
		t.Fatal("pathological region missing")
	}
	// Roughly Density of in-template addresses are ICMP-active.
	rng := newTestRand(6)
	active := 0
	const n = 2000
	for i := 0; i < n; i++ {
		a := path.Template.Random(rng)
		if w.ActiveOn(a, proto.ICMP, CollectEpoch) {
			active++
		}
	}
	frac := float64(active) / n
	if frac < path.Density-0.08 || frac > path.Density+0.08 {
		t.Fatalf("pathological active fraction %.3f, want ~%.2f", frac, path.Density)
	}
}

func TestUnroutedSilence(t *testing.T) {
	w := smallWorld(t)
	a := ipaddr.MustParse("fe80::1")
	if w.ExistsAt(a, ScanEpoch) || w.ActiveOn(a, proto.ICMP, ScanEpoch) || w.IsAliased(a) {
		t.Fatal("link-local address should be dead")
	}
	if _, ok := w.RegionOf(a); ok {
		t.Fatal("unrouted address has region")
	}
}

func TestEpochSwitch(t *testing.T) {
	w := smallWorld(t)
	if w.Epoch() != CollectEpoch {
		t.Fatalf("initial epoch = %d", w.Epoch())
	}
	w.SetEpoch(ScanEpoch)
	if w.Epoch() != ScanEpoch {
		t.Fatalf("epoch after set = %d", w.Epoch())
	}
}
